// fig09_bert_energy — reproduces paper Fig. 9: the energy breakdown of a
// single BERT-base inference (sequence length 128) on LT-B, comparing
// the traditional-DAC system against the P-DAC system at 4-bit and 8-bit
// operand precision.  Paper-reported savings: total 11.2 % (4-bit) and
// 32.3 % (8-bit); attention 18.3 % / 42.1 %; FFN 11.0 % / 32.1 %.
#include <iostream>

#include "arch/energy_model.hpp"
#include "eval/report.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const nn::TransformerConfig model = nn::bert_base(128);
  const nn::WorkloadTrace trace = nn::trace_forward(model);

  std::cout << "Fig. 9 — energy breakdown of BERT-base, seq 128, one inference\n"
            << "model: " << model.layers << " layers, d_model " << model.d_model << ", "
            << model.heads << " heads, d_ff " << model.d_ff << ", "
            << trace.total_macs() / 1000000 << " MMACs/inference\n\n";

  std::vector<eval::Scored> scoreboard;
  const double paper_total[2] = {11.2, 32.3};
  const double paper_attn[2] = {18.3, 42.1};
  const double paper_ffn[2] = {11.0, 32.1};

  int idx = 0;
  for (int bits : {4, 8}) {
    const auto cmp = arch::compare_energy(trace, cfg, params, bits);
    std::cout << eval::render_energy_comparison(
                     "Fig. 9(" + std::string(bits == 4 ? "a" : "b") + ") BERT-base", cmp)
              << "\n";
    const std::string suffix = ", " + std::to_string(bits) + "-bit";
    scoreboard.push_back({"total energy saving" + suffix, paper_total[idx],
                          100.0 * cmp.total_saving(), "%"});
    scoreboard.push_back({"attention energy saving" + suffix, paper_attn[idx],
                          100.0 * cmp.saving(nn::OpClass::kAttention), "%"});
    scoreboard.push_back({"ffn energy saving" + suffix, paper_ffn[idx],
                          100.0 * cmp.saving(nn::OpClass::kFfn), "%"});
    ++idx;
  }

  std::cout << eval::render_scoreboard(
      "Fig. 9", scoreboard,
      "note: absolute energies depend on the substituted simulator; the savings\n"
      "structure (attention > ffn, 8-bit >> 4-bit) is the reproduced result.");
  return 0;
}
