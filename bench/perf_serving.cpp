// perf_serving — A24: continuous-batching serving over a guarded backend
// pool (DESIGN.md §14, serve/engine.hpp).
//
// Three measurements, each with its own PASS/FAIL gate:
//
//   1. Batching is numerically invisible — at fault rate 0 the engine's
//      per-request token digests must be bit-identical to a solo replay
//      of every request on a single identically-fabricated backend, for
//      every request, regardless of how the scheduler batched and placed
//      them.  All requests must complete (nothing shed, nothing failed).
//   2. Tokens keep flowing through fault storms — at every fault rate
//      the pool must sustain goodput > 0 while escalation rungs (retry /
//      re-trim / fence / degraded re-run) fire mid-batch, and every
//      request must reach a terminal verdict: completed + shed + failed
//      == submitted, never a silent drop.
//   3. Serving economics — p50/p99 inter-token latency, request latency,
//      pool energy (data + checksum lanes, recovery re-runs included)
//      and goodput-per-joule, reported per fault rate.
//
// Writes machine-readable BENCH_serving.json (default: repository root).
//
// Usage:
//   perf_serving            # full sweep
//   perf_serving --smoke    # CI smoke: same code paths, small counts
//   perf_serving --out FILE # JSON destination
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "eval/report.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

constexpr std::uint64_t kSeed = 2033;

faults::LaneBankConfig bank_config(std::size_t wavelengths) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = wavelengths;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = kSeed;  // one fabrication draw for every slot
  return cfg;
}

faults::FaultScheduleConfig schedule_config(std::size_t lanes, double fault_rate,
                                            std::uint64_t seed) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = lanes;
  cfg.bits = 8;
  // Sized so the schedule actually fires inside the serving run: the
  // storm clock ticks once per tile and a sweep run covers a few
  // hundred tiles.  Per-lane discrete faults only — a global bias walk
  // or laser droop would (correctly) fence the entire bank once the
  // re-trim budget clamps, which tests annihilation, not serving.
  cfg.horizon_steps = 512;
  cfg.hard_fault_rate = 0.5 * fault_rate;
  cfg.drift_fault_rate = fault_rate;
  cfg.bias_walk_sigma_per_step = 0.0;
  cfg.laser_droop_per_step = 0.0;
  cfg.seed = seed;
  return cfg;
}

serve::BackendPoolConfig pool_config(std::size_t backends) {
  serve::BackendPoolConfig cfg;
  cfg.backends = backends;
  cfg.bank = bank_config(8);
  cfg.guarded.array_rows = 8;
  cfg.guarded.array_cols = 8;
  cfg.retrim_budget = 2;
  cfg.retrim_window = 2048;
  // Route the pool's tile dots through the fastest numeric tier the
  // fabricated lanes support (quant → simd → kernel, DESIGN.md §15).
  // Perturbed physical lanes are never on the quantizer grid, so this
  // resolves to the SIMD tier on wide hosts and the scalar kernel
  // otherwise; the solo-replay reference below is built from the same
  // config, so the bit-identity gate judges the selected tier itself.
  faults::LaneBank probe(cfg.bank);
  cfg.guarded.path = faults::auto_execution_path(probe);
  // Quarantine/readmission (DESIGN.md §16): inert at fault rate 0 (no
  // trigger ever fires, so the identity gate is untouched) and active
  // in the storm sweep, where chronically-implicated backends leave
  // rotation and earn their way back through canary probes.
  cfg.quarantine.enabled = true;
  cfg.quarantine.unrecovered_products = 2;
  cfg.quarantine.fence_events = 3;
  cfg.quarantine.probe_backoff = 256;
  return cfg;
}

std::vector<nn::Linear> make_models(std::size_t count, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Linear> models;
  models.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    models.emplace_back(d, d);
    models.back().init_random(rng);
  }
  return models;
}

double price_uj(const ptc::EventCounter& ev, const arch::LtConfig& lt,
                const arch::PowerParams& params) {
  return arch::event_energy(ev, lt, params, 8, arch::SystemVariant::kPdacBased).joules() * 1e6;
}

/// Pool energy: per-backend data-path events (recovery re-runs included)
/// plus the pure checksum-lane charge.  retry_events is a subset of the
/// data counter and is reported separately, not re-added.
double pool_energy_uj(const serve::ServingReport& rep, const arch::LtConfig& lt,
                      const arch::PowerParams& params) {
  double uj = 0.0;
  for (const serve::BackendServeStats& b : rep.backends) {
    uj += price_uj(b.events, lt, params);
    uj += price_uj(b.health.checksum_events, lt, params);
  }
  return uj;
}

eval::ServingSummary summarize(const serve::ServingReport& rep, std::size_t requests,
                               double energy_uj) {
  eval::ServingSummary s;
  s.requests = requests;
  s.completed = rep.completed;
  s.shed = rep.shed;
  s.failed = rep.failed;
  s.tokens = rep.tokens_emitted;
  s.goodput_tokens = rep.goodput_tokens;
  s.makespan_cycles = rep.makespan;
  s.p50_token_gap = serve::percentile(rep.token_gaps, 50.0);
  s.p99_token_gap = serve::percentile(rep.token_gaps, 99.0);
  s.p50_request_latency = serve::percentile(rep.request_latencies, 50.0);
  s.p99_request_latency = serve::percentile(rep.request_latencies, 99.0);
  s.energy_uj = energy_uj;
  s.goodput_per_joule =
      energy_uj > 0.0 ? static_cast<double>(rep.goodput_tokens) / (energy_uj * 1e-6) : 0.0;
  s.throttled_products = rep.throttled_products;
  s.quarantines = rep.quarantines;
  s.readmissions = rep.readmissions;
  s.canary_probes = rep.canary_probes;
  for (const serve::BackendServeStats& b : rep.backends) {
    eval::ServingBackendRow row;
    row.tokens = b.tokens;
    row.products = b.products;
    row.utilization = rep.makespan > 0 ? static_cast<double>(b.busy_cycles) /
                                             static_cast<double>(rep.makespan)
                                       : 0.0;
    row.final_health = b.final_health;
    row.alive = b.alive;
    row.quarantined = b.quarantined;
    row.fences = b.health.fences;
    row.unrecovered = b.health.unrecovered;
    row.drifting_lanes = b.drift.drifting;
    row.excursion_lanes = b.drift.excursions;
    s.backends.push_back(row);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_serving.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  std::printf("A24 — continuous-batching serving over a guarded backend pool (%s)\n\n",
              smoke ? "smoke" : "full");

  const arch::LtConfig lt = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const std::size_t backends = 3;
  const std::size_t d_model = 48;
  const std::size_t n_models = 2;
  bool all_pass = true;

  // --- 1. continuous batching is bit-identical to solo decode --------------
  serve::WorkloadConfig wl;
  wl.requests = smoke ? 24 : 72;
  wl.mean_interarrival = 24.0;  // enough pressure to form real batches
  wl.d_model = d_model;
  wl.models = n_models;
  wl.deadline_slack = 0.0;  // no deadlines: completion is the only exit
  wl.seed = kSeed;
  const std::vector<serve::Request> identity_reqs = serve::generate_workload(wl);

  std::vector<nn::Linear> models = make_models(n_models, d_model, kSeed + 1);

  serve::BackendPoolConfig pool_cfg = pool_config(backends);
  serve::BackendPool pool(pool_cfg);
  serve::ServingConfig scfg;
  scfg.max_batch = 4;
  scfg.max_queue = wl.requests;  // admission must never shed this gate
  serve::ServingEngine engine(pool, models, scfg);
  const serve::ServingReport clean = engine.run(identity_reqs);

  faults::LaneBank ref_bank(pool_cfg.bank);
  faults::production_trim(ref_bank);
  faults::GuardedBackend ref_backend(ref_bank, pool_cfg.guarded);
  const std::vector<serve::RequestRecord> ref =
      serve::run_reference(identity_reqs, models, ref_backend);

  std::size_t digest_mismatches = 0;
  for (std::size_t q = 0; q < identity_reqs.size(); ++q) {
    if (clean.records[q].digest != ref[q].digest) ++digest_mismatches;
  }
  const bool identity_pass = clean.completed == identity_reqs.size() && digest_mismatches == 0 &&
                             clean.reconciled(identity_reqs.size());
  const double clean_uj = pool_energy_uj(clean, lt, params);
  std::printf("%s\n",
              eval::render_serving("fault rate 0 (identity gate)",
                                   summarize(clean, identity_reqs.size(), clean_uj))
                  .c_str());
  std::printf("all %zu requests completed, %zu digest mismatches vs solo reference -> %s\n\n",
              identity_reqs.size(), digest_mismatches, identity_pass ? "PASS" : "FAIL");
  all_pass = all_pass && identity_pass;

  // --- 2/3. fault-storm sweep: goodput, verdicts, latency, economics --------
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.3} : std::vector<double>{0.1, 0.3, 0.6};
  struct SweepRow {
    double fault_rate;
    eval::ServingSummary s;
    bool reconciled;
  };
  std::vector<SweepRow> sweep;
  bool storm_pass = true;

  serve::WorkloadConfig storm_wl = wl;
  storm_wl.requests = smoke ? 24 : 48;
  storm_wl.deadline_slack = 12.0;  // deadlines live: shedding is allowed
  storm_wl.nominal_token_cycles = 64;
  storm_wl.seed = kSeed + 11;
  const std::vector<serve::Request> storm_reqs = serve::generate_workload(storm_wl);

  for (const double rate : rates) {
    serve::BackendPool storm_pool(pool_cfg);
    for (std::size_t b = 0; b < storm_pool.size(); ++b) {
      storm_pool.attach_storm(
          b,
          faults::generate_fault_schedule(schedule_config(
              storm_pool.bank(b).lanes(), rate, kSeed + 101 * (b + 1))),
          1);
    }
    serve::ServingConfig storm_cfg;
    storm_cfg.max_batch = 4;
    storm_cfg.max_queue = 16;  // bounded queue: overload sheds, explicitly
    serve::ServingEngine storm_engine(storm_pool, models, storm_cfg);
    const serve::ServingReport rep = storm_engine.run(storm_reqs);

    const double uj = pool_energy_uj(rep, lt, params);
    SweepRow row{rate, summarize(rep, storm_reqs.size(), uj),
                 rep.reconciled(storm_reqs.size())};
    sweep.push_back(row);

    char title[64];
    std::snprintf(title, sizeof(title), "fault rate %.0f%%", 100.0 * rate);
    std::printf("%s\n", eval::render_serving(title, row.s).c_str());
    const bool ok = row.reconciled && rep.goodput_tokens > 0;
    std::printf("verdicts reconcile (%zu+%zu+%zu == %zu) and goodput > 0 -> %s\n\n",
                rep.completed, rep.shed, rep.failed, storm_reqs.size(), ok ? "PASS" : "FAIL");
    storm_pass = storm_pass && ok;
  }
  all_pass = all_pass && storm_pass;

  // CSV for plotting.
  std::vector<std::vector<double>> csv;
  for (const SweepRow& row : sweep) {
    csv.push_back({row.fault_rate, static_cast<double>(row.s.completed),
                   static_cast<double>(row.s.shed), static_cast<double>(row.s.failed),
                   static_cast<double>(row.s.goodput_tokens), row.s.p50_token_gap,
                   row.s.p99_token_gap, row.s.energy_uj, row.s.goodput_per_joule});
  }
  std::printf("%s\n",
              eval::to_csv({"fault_rate", "completed", "shed", "failed", "goodput_tokens",
                            "p50_token_gap", "p99_token_gap", "energy_uj", "goodput_per_joule"},
                           csv)
                  .c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f,
               "  \"identity\": {\"requests\": %zu, \"completed\": %zu, "
               "\"digest_mismatches\": %zu, \"bit_identical\": %s},\n",
               identity_reqs.size(), clean.completed, digest_mismatches,
               identity_pass ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepRow& row = sweep[i];
    std::fprintf(f,
                 "%s{\"fault_rate\": %.2f, \"completed\": %zu, \"shed\": %zu, "
                 "\"failed\": %zu,\n            \"goodput_tokens\": %zu, "
                 "\"p50_token_gap\": %.1f, \"p99_token_gap\": %.1f,\n            "
                 "\"p50_request_latency\": %.1f, \"p99_request_latency\": %.1f,\n"
                 "            \"energy_uj\": %.4f, \"goodput_per_joule\": %.1f, "
                 "\"throttled_products\": %zu,\n            \"quarantines\": %zu, "
                 "\"readmissions\": %zu, \"canary_probes\": %zu, \"reconciled\": %s}",
                 i == 0 ? "" : ",\n            ", row.fault_rate, row.s.completed, row.s.shed,
                 row.s.failed, row.s.goodput_tokens, row.s.p50_token_gap, row.s.p99_token_gap,
                 row.s.p50_request_latency, row.s.p99_request_latency, row.s.energy_uj,
                 row.s.goodput_per_joule, row.s.throttled_products, row.s.quarantines,
                 row.s.readmissions, row.s.canary_probes, row.reconciled ? "true" : "false");
  }
  std::fprintf(f, "],\n  \"pass\": %s\n}\n", all_pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::printf(
      "\nFindings: continuous batching over the guarded pool is numerically\n"
      "invisible — per-request unit max-abs normalization pins the quantizer\n"
      "scale at 1.0, so a token's bits never depend on its batchmates and\n"
      "the engine digests match the solo replay exactly.  Under storms the\n"
      "pool keeps emitting tokens while individual backends stall on\n"
      "escalation rungs: health-aware placement shifts load away from\n"
      "implicated arrays, the re-trim budget caps probe burn per window,\n"
      "and every submitted request still ends completed, shed or failed —\n"
      "the tail pays in p99 inter-token latency, not in silent drops.\n");

  if (!all_pass) {
    std::fprintf(stderr, "FAIL: one or more A24 acceptance gates failed\n");
    return 1;
  }
  return 0;
}
