// perf_gemm_scaling — wall-clock scaling of the tile-parallel GEMM
// execution engine (DESIGN.md §9), the start of the perf trajectory.
//
// Runs the full-optics photonic GEMM at a sweep of thread counts and
// matrix shapes, verifies every parallel result is BIT-identical to the
// serial baseline, and writes machine-readable BENCH_gemm.json
// (threads × shape × wall-time × speedup) next to the working directory
// so CI can archive a perf point per build.
//
// Usage:
//   perf_gemm_scaling            # full shapes (256³ and 768³)
//   perf_gemm_scaling --smoke    # tiny shapes for CI smoke coverage
//   perf_gemm_scaling --out FILE # JSON destination (default:
//                                # BENCH_gemm.json in the repository root,
//                                # so the perf trajectory is tracked)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ptc/gemm_engine.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

struct Shape {
  std::size_t m, k, n;
};

struct Sample {
  Shape shape;
  std::size_t threads;
  double wall_ms;
  double speedup;
  bool bit_identical;
};

double time_multiply(const pdac::ptc::PhotonicGemm& gemm, const pdac::Matrix& a,
                     const pdac::Matrix& b, pdac::ptc::GemmResult* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = gemm.multiply(a, b);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Median-of-N wall time after one untimed warmup run.  The warmup pays
/// the pool spin-up, scratch growth and cache faults once; the median is
/// robust to a single scheduler hiccup where best-of-two was not, which
/// kept the smoke-mode threads=2 point from flaking below threads=1.
double measured_multiply(const pdac::ptc::PhotonicGemm& gemm, const pdac::Matrix& a,
                         const pdac::Matrix& b, std::size_t iters, pdac::ptc::GemmResult* out) {
  pdac::ptc::GemmResult warmup;
  (void)time_multiply(gemm, a, b, &warmup);
  std::vector<double> ms(iters);
  for (std::size_t i = 0; i < iters; ++i) ms[i] = time_multiply(gemm, a, b, out);
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

bool bit_identical(const pdac::Matrix& a, const pdac::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_gemm.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // Smoke shapes must still be large enough that the parallel dispatch
  // amortizes its fork/join cost — at the old 24³-class shapes the
  // threads=2 point sat inside scheduler noise and flaked below 1x on
  // CI.  ~100³ keeps the smoke run in the hundreds of milliseconds while
  // giving every worker dozens of tiles.  One ragged shape stays in the
  // sweep so smoke coverage still crosses partial-tile edges.
  const std::vector<Shape> shapes = smoke
                                        ? std::vector<Shape>{{96, 128, 96}, {161, 160, 157}}
                                        : std::vector<Shape>{{256, 256, 256}, {768, 768, 768}};
  const std::vector<std::size_t> thread_counts{1, 2, 4, 8};
  const std::size_t iters = smoke ? 5 : 3;

  std::printf("perf_gemm_scaling — tile-parallel GEMM engine, %s mode\n", smoke ? "smoke" : "full");
  std::printf("hardware concurrency: %u\n\n", std::thread::hardware_concurrency());

  const auto drv = core::make_pdac_driver(8);
  std::vector<Sample> samples;
  bool all_identical = true;

  for (const Shape& s : shapes) {
    Rng rng(42);
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng);

    ptc::GemmResult baseline;
    double base_ms = 0.0;
    Table t({"threads", "wall ms", "speedup", "bit-identical"});
    for (std::size_t threads : thread_counts) {
      ptc::GemmConfig cfg;
      cfg.dot.use_full_optics = true;
      // This bench measures tile-parallel *dispatch* scaling, so it pins
      // the device-graph execution path: the fused kernel (DESIGN.md §13,
      // perf_kernel) makes the smoke shapes so cheap that fork/join
      // overhead swamps the thread sweep, and keeping the historical
      // per-tile cost keeps the BENCH_gemm.json trajectory comparable.
      cfg.path = ptc::ExecutionPath::kDeviceGraph;
      cfg.threads = threads;
      const ptc::PhotonicGemm gemm(*drv, cfg);
      ptc::GemmResult res;
      const double ms = measured_multiply(gemm, a, b, iters, &res);
      bool identical = true;
      if (threads == 1) {
        baseline = std::move(res);
        base_ms = ms;
      } else {
        identical = bit_identical(res.c, baseline.c);
        all_identical = all_identical && identical;
      }
      samples.push_back(Sample{s, threads, ms, base_ms / ms, identical});
      t.add_row({std::to_string(threads), Table::num(ms, 2), Table::num(base_ms / ms, 2) + "x",
                 identical ? "yes" : "NO"});
    }
    std::printf("GEMM %zux%zux%zu (full optics, 8-bit P-DAC)\n%s\n", s.m, s.k, s.n,
                t.to_string().c_str());
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"gemm_scaling\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n  \"results\": [\n",
               std::thread::hardware_concurrency());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const Sample& smp = samples[i];
    std::fprintf(f,
                 "    {\"m\": %zu, \"k\": %zu, \"n\": %zu, \"threads\": %zu, "
                 "\"wall_ms\": %.3f, \"speedup\": %.3f, \"bit_identical\": %s}%s\n",
                 smp.shape.m, smp.shape.k, smp.shape.n, smp.threads, smp.wall_ms, smp.speedup,
                 smp.bit_identical ? "true" : "false", i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: a parallel result diverged from the serial baseline\n");
    return 1;
  }
  return 0;
}
