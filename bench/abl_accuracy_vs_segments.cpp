// abl_accuracy_vs_segments — ablation A2: numerical fidelity of the
// P-DAC encoding, from the device level up to a transformer encoder
// layer running end-to-end through the simulated photonic core.
//
//  1. device level: worst-case and average encode error for the
//     1-segment Taylor program, the paper's 3-segment program, higher-
//     order Taylor references and the ideal-DAC baseline;
//  2. expected error under operand distributions (uniform vs the
//     near-zero-concentrated Gaussians typical of LLM activations);
//  3. GEMM level: relative Frobenius error of photonic products;
//  4. model level: one tiny encoder layer, P-DAC vs ideal-DAC vs exact,
//     reporting cosine similarity of the outputs — the quantitative
//     backing for the paper's "LLMs tolerate the 8.5 % worst case".
#include <cmath>
#include <iostream>

#include "common/math_utils.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/arccos_approx.hpp"
#include "core/error_model.hpp"
#include "core/multi_segment_approx.hpp"
#include "core/modulator_driver.hpp"
#include "nn/backend.hpp"
#include "nn/encoder_layer.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;

/// A driver using the 1-segment Taylor mapping (Eq. 15) for comparison.
class TaylorDriver final : public core::ModulatorDriver {
 public:
  explicit TaylorDriver(int bits) : bits_(bits), quant_(bits) {}
  [[nodiscard]] double encode(double r) const override {
    const double rq = quant_.quantize(pdac::math::clamp_unit(r));
    return std::cos(core::arccos_taylor1(rq));
  }
  [[nodiscard]] int bits() const override { return bits_; }
  [[nodiscard]] std::string name() const override { return "taylor-1"; }
  [[nodiscard]] units::Energy conversion_energy() const override { return units::Energy{}; }

 private:
  int bits_;
  converters::Quantizer quant_;
};

stats::VectorError layer_error(nn::GemmBackend& test_backend) {
  const auto cfg = nn::tiny_transformer(12, 48, 4, 1);
  nn::EncoderLayer layer(cfg.d_model, cfg.heads, cfg.d_ff);
  Rng rng(7);
  layer.init_random(rng);
  Rng in_rng(11);
  const Matrix x = Matrix::random_gaussian(cfg.seq_len, cfg.d_model, in_rng, 0.0, 0.5);

  nn::ReferenceBackend ref;
  const Matrix exact = layer.forward(x, ref);
  const Matrix approx = layer.forward(x, test_backend);
  return stats::compare(approx.data(), exact.data());
}

}  // namespace

int main() {
  std::cout << "Ablation A2 — P-DAC numerical accuracy, device to model level\n\n";

  // --- device-level sweep -----------------------------------------------------
  Table dev({"encoder (8-bit)", "worst rel err", "mean abs err", "worst at r"});
  {
    const TaylorDriver taylor(8);
    const auto pd = core::make_pdac_driver(8);
    const auto ideal = core::make_ideal_dac_driver(8);
    for (const core::ModulatorDriver* d :
         {static_cast<const core::ModulatorDriver*>(&taylor),
          static_cast<const core::ModulatorDriver*>(pd.get()),
          static_cast<const core::ModulatorDriver*>(ideal.get())}) {
      const auto rep = core::sweep_encode_error(*d);
      dev.add_row({d->name(), Table::pct(rep.worst_rel, 2),
                   Table::num(rep.abs_error.mean(), 5), Table::num(rep.worst_rel_at, 3)});
    }
  }
  std::cout << dev.to_string() << "\n";

  // --- expected error under operand distributions -----------------------------
  Table dist({"operand distribution", "E|cos(f(r)) - r| (3-seg)", "E|...| (1-seg Taylor)"});
  const auto paper = core::PiecewiseLinearArccos::paper();
  // A 1-segment program is the same class with the breakpoint pushed to 1.
  const auto taylor_only = core::PiecewiseLinearArccos::with_breakpoint(0.999999);
  struct Density {
    const char* name;
    std::function<double(double)> pdf;
  };
  const Density densities[] = {
      {"uniform[-1,1]", core::uniform_pdf},
      {"gaussian std 0.5 (LLM-like)", core::gaussian_pdf(0.5)},
      {"gaussian std 0.25 (LLM-like)", core::gaussian_pdf(0.25)},
      {"gaussian std 0.1", core::gaussian_pdf(0.1)},
  };
  for (const auto& d : densities) {
    dist.add_row({d.name, Table::num(core::expected_abs_error(paper, d.pdf), 5),
                  Table::num(core::expected_abs_error(taylor_only, d.pdf), 5)});
  }
  std::cout << dist.to_string()
            << "activations concentrated near zero see almost no approximation error —\n"
            << "the middle segment is the exact first-order Taylor series.\n\n";

  // --- segment-count scaling (beyond the paper's 3 segments) ------------------
  Table seg({"segments/half", "nodes", "max err (uniform)", "max err (optimized)",
             "weight banks", "comparators"});
  for (std::size_t n : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const auto uni = core::MultiSegmentArccos::uniform(n);
    const auto opt = core::MultiSegmentArccos::optimized(n);
    std::string node_list;
    for (double x : opt.nodes()) node_list += Table::num(x, 2) + " ";
    seg.add_row({std::to_string(n), node_list, Table::pct(uni.max_decode_error(), 2),
                 Table::pct(opt.max_decode_error(), 2), std::to_string(opt.weight_banks()),
                 std::to_string(opt.comparators())});
  }
  std::cout << seg.to_string()
            << "paper reference: the Eq. 18 program (2 pieces/half, tangent middle)\n"
            << "achieves 8.5%; chord programs halve the error roughly every added\n"
            << "segment at the cost of one comparator pair each.\n\n";

  // --- GEMM + encoder-layer level ----------------------------------------------
  Table model({"backend (vs fp64 reference)", "GEMM rel-Frobenius", "layer cosine sim",
               "layer rel-Frobenius"});
  for (int use_pdac = 1; use_pdac >= 0; --use_pdac) {
    auto backend = use_pdac ? nn::make_photonic_pdac_backend(8)
                            : nn::make_photonic_ideal_dac_backend(8);
    // Standalone GEMM error.
    Rng rng(3);
    const Matrix a = Matrix::random_gaussian(24, 32, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(32, 20, rng, 0.0, 1.0);
    const Matrix exact = matmul_reference(a, b);
    const Matrix got = backend->matmul(a, b);
    const auto gemm_err = stats::compare(got.data(), exact.data());
    const auto layer_err = layer_error(*backend);
    model.add_row({backend->name(), Table::num(gemm_err.rel_frobenius, 4),
                   Table::num(layer_err.cosine, 5), Table::num(layer_err.rel_frobenius, 4)});
  }
  std::cout << model.to_string()
            << "\nThe P-DAC layer output stays within a few percent of the ideal-DAC\n"
            << "output (cosine similarity ~1), supporting the paper's claim that the\n"
            << "8.5% worst-case encode error is tolerable for transformer inference.\n";
  return 0;
}
