// abl_batch_decode — ablation A15: batched LLM serving.
//
// A5/A7 showed single-sequence decode is movement- and
// utilization-starved.  Serving systems batch many sequences: the
// weight GEMVs fuse into (batch × d) GEMMs that re-amortize weight
// traffic and refill the DDot rows, while per-sequence KV streaming
// stays.  This bench sweeps the batch size and reports how much of the
// prefill-class P-DAC saving batching recovers — per token, the number
// a serving deployment cares about.
#include <cstdio>

#include "arch/accelerator.hpp"
#include "common/table.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const auto model = nn::bert_base(128);
  arch::AcceleratorConfig cfg;
  cfg.memory.hbm_bandwidth_gb_s = 1024.0;
  const arch::Accelerator acc(cfg);
  const std::size_t ctx = 512;

  std::printf("Ablation A15 — batched decode (ctx=%zu, 8-bit, 1 TB/s HBM)\n\n", ctx);

  Table t({"batch", "E/token DAC", "E/token P-DAC", "saving", "DDot util",
           "tokens/s"});
  for (std::size_t batch : {1u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const auto trace = nn::trace_decode_step_batched(model, ctx, batch);
    const auto rep = acc.run(trace);
    const double per_token = 1.0 / static_cast<double>(batch);
    t.add_row(
        {std::to_string(batch),
         Table::millijoules(rep.energy.baseline.total().total().joules() * per_token, 4),
         Table::millijoules(rep.energy.pdac.total().total().joules() * per_token, 4),
         Table::pct(rep.energy.total_saving()),
         Table::pct(rep.schedule.ddot_utilization()),
         Table::num(rep.throughput(acc.config().organization) * static_cast<double>(batch),
                    0)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nBatching restores weight reuse (batch MACs per weight) and fills the\n"
      "DDot rows, so energy per token collapses and the P-DAC saving climbs\n"
      "from the single-stream ~4%% back toward the prefill-class 30%%+.  The\n"
      "KV-cache streaming term is per-sequence and does not amortize, which\n"
      "is what caps the recovery at large batch.\n");
  return 0;
}
