// abl_interconnect — ablation A16: electrical vs optical operand
// distribution (the paper's §I motivation, quantified).
//
// Prices the SRAM→modulator link both ways across distance, shows the
// energy crossover and the WDM bandwidth advantage, and totals the
// distribution energy for one BERT-base inference — the traffic that
// §III-B routes optically so the P-DAC can consume optical digital
// words directly.
#include <cstdio>

#include "arch/interconnect.hpp"
#include "common/table.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  using namespace pdac::arch;

  std::printf("Ablation A16 — electrical vs optical operand distribution\n\n");

  Table t({"distance", "electrical pJ/b", "optical pJ/b", "winner", "Gb/s per wire",
           "Gb/s per waveguide"});
  for (double mm : {0.5, 1.0, 2.8, 5.0, 10.0, 20.0, 50.0}) {
    InterconnectConfig e;
    e.kind = LinkKind::kElectrical;
    e.distance_mm = mm;
    InterconnectConfig o;
    o.kind = LinkKind::kOptical;
    o.distance_mm = mm;
    const auto em = evaluate_link(e);
    const auto om = evaluate_link(o);
    t.add_row({Table::num(mm, 1) + " mm", Table::num(em.energy_per_bit.picojoules(), 2),
               Table::num(om.energy_per_bit.picojoules(), 2),
               em.energy_per_bit.joules() < om.energy_per_bit.joules() ? "electrical"
                                                                       : "optical",
               Table::num(em.bandwidth_gbps, 0), Table::num(om.bandwidth_gbps, 0)});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf("crossover at %.1f mm with these constants; chip-scale spans (~10-20 mm\n"
              "between a shared M2 SRAM and the DPTC clusters) sit firmly on the\n"
              "optical side, and one WDM waveguide carries ~%.0fx the bandwidth of a\n"
              "wire — the paper's one-to-two-orders claim.\n\n",
              optical_crossover_mm(InterconnectConfig{}),
              evaluate_link([] {
                InterconnectConfig o;
                o.kind = LinkKind::kOptical;
                return o;
              }()).bandwidth_gbps /
                  evaluate_link([] {
                    InterconnectConfig e;
                    e.kind = LinkKind::kElectrical;
                    return e;
                  }()).bandwidth_gbps);

  // Whole-inference distribution energy, BERT-base at 8-bit.
  const auto trace = nn::trace_forward(nn::bert_base(128));
  const std::uint64_t bits = distribution_bits(trace, 8);
  Table w({"link @10 mm", "distribution energy / inference"});
  for (LinkKind kind : {LinkKind::kElectrical, LinkKind::kOptical}) {
    InterconnectConfig cfg;
    cfg.kind = kind;
    cfg.distance_mm = 10.0;
    const auto m = evaluate_link(cfg);
    w.add_row({to_string(kind), Table::millijoules(m.transfer_energy(bits).joules())});
  }
  std::printf("BERT-base moves %.1f MB of operands per inference (8-bit):\n%s",
              static_cast<double>(bits) / 8e6, w.to_string().c_str());
  std::printf(
      "\nAt 10 mm the optical link saves ~3.6x on distribution energy alone —\n"
      "the \"pre-convert data from the memory side\" saving the paper cites in\n"
      "SIII-B, and the reason the P-DAC's optical-digital input format costs\n"
      "nothing extra: the words already arrive as light.\n");
  return 0;
}
