// perf_kernel — fused flat-array kernel vs the device-graph path on the
// GEMM hot loop (DESIGN.md §13), measured as decode throughput.
//
// Replays BERT-base KV-cache decode (the perf_weight_cache trace) on the
// full-optics + ADC configuration three times — with
// ptc::ExecutionPath::kDeviceGraph (every chunk staged through the
// WdmField/device objects), kKernel (the bit-exact fused
// coefficient-table kernel) and kKernelSimd (the vector-blocked fast
// tier) — and reports tokens/s for each.  The scalar kernel's contract
// is exactness, so the bench GATES on bit-identity, not just speed:
//   * clean decode: kernel output == device-graph output (memcmp) and
//     every EventCounter field equal;
//   * ABFT-guarded decode: same, plus identical guard verdicts;
//   * fault storm: GuardedBackend under a mid-product storm with the
//     faults-layer coefficient table (lane_table.hpp) on vs off —
//     bit-identical outputs, events and health verdicts.
// The SIMD tier's contract is tolerance-banded identity (DESIGN.md §13):
//   * raw GEMMs land every element within the ABFT guard band of the
//     scalar kernel (band = rescale · guard_tolerance with
//     calibrate_guard_sigma — the same machinery the runtime guard uses);
//   * event accounting matches the scalar kernel field for field;
//   * end-to-end decode output stays within a model-accuracy gate
//     (cosine vs the scalar kernel) so low-bit ADC-code straddles cannot
//     compound into a real accuracy change;
//   * guarded decode reports the same guard verdict counts as scalar.
// The integer quant tier (kKernelQuant, DESIGN.md §15) carries the same
// banded-identity/event/guard/cosine contract vs the scalar kernel, runs
// on the bit-true DAC chain (its on-grid precondition), and must
// additionally show <= 0.55x the SIMD tier's operand bytes per tile —
// the "halves memory traffic" claim, measured not asserted.
// Any divergence exits non-zero, so CI fails on an identity regression.
// In full mode the kernel must additionally clear the >=3x tokens/s bar
// vs the device graph, the SIMD tier the >=1.5x bar vs the scalar
// kernel (2x is the target; the gate leaves headroom for CI hosts), and
// the quant tier the >=1.3x bar vs the SIMD tier on the same driver.
//
// Writes machine-readable BENCH_kernel.json (default: repository root).
//
// Usage:
//   perf_kernel             # full BERT-base shapes, 3x gate enforced
//   perf_kernel --smoke     # tiny shapes, identity gates only
//   perf_kernel --layers N  # override the layer count
//   perf_kernel --out FILE  # JSON destination
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"
#include "nn/ops.hpp"
#include "ptc/abft.hpp"
#include "ptc/gemm_engine.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

struct DecodeShapes {
  std::size_t d_model, heads, d_ff, context;
  [[nodiscard]] std::size_t d_head() const { return d_model / heads; }
};

struct DecodeLayer {
  nn::Linear q, k, v, o, up, down;
  std::vector<Matrix> kh_t;  ///< per head: (d_head × context), already Kᵀ
  std::vector<Matrix> vh;    ///< per head: (context × d_head)

  DecodeLayer(const DecodeShapes& s, Rng& rng)
      : q(s.d_model, s.d_model),
        k(s.d_model, s.d_model),
        v(s.d_model, s.d_model),
        o(s.d_model, s.d_model),
        up(s.d_model, s.d_ff),
        down(s.d_ff, s.d_model) {
    q.init_random(rng);
    k.init_random(rng);
    v.init_random(rng);
    o.init_random(rng);
    up.init_random(rng);
    down.init_random(rng);
    for (std::size_t h = 0; h < s.heads; ++h) {
      kh_t.push_back(Matrix::random_gaussian(s.d_head(), s.context, rng, 0.0, 0.5));
      vh.push_back(Matrix::random_gaussian(s.context, s.d_head(), rng, 0.0, 0.5));
    }
  }
};

Matrix head_slice(const Matrix& m, std::size_t h, std::size_t dh) {
  Matrix out(m.rows(), dh);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < dh; ++c) out(r, c) = m(r, h * dh + c);
  }
  return out;
}

Matrix decode_token(const Matrix& x0, const std::vector<DecodeLayer>& layers,
                    const DecodeShapes& s, nn::GemmBackend& backend) {
  Matrix x = x0;
  const std::size_t dh = s.d_head();
  for (const DecodeLayer& layer : layers) {
    const Matrix q = layer.q.forward(x, backend);
    (void)layer.k.forward(x, backend);
    (void)layer.v.forward(x, backend);

    Matrix context(1, s.d_model);
    for (std::size_t h = 0; h < s.heads; ++h) {
      const Matrix qh = head_slice(q, h, dh);
      Matrix scores = backend.matmul(qh, layer.kh_t[h]);
      nn::scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
      nn::softmax_rows(scores);
      const Matrix ctx_h = backend.matmul(scores, layer.vh[h]);
      for (std::size_t c = 0; c < dh; ++c) context(0, h * dh + c) = ctx_h(0, c);
    }
    x = layer.o.forward(context, backend);

    Matrix hidden = layer.up.forward(x, backend);
    nn::gelu(hidden);
    x = layer.down.forward(hidden, backend);
  }
  return x;
}

/// Median-of-N per-token wall time with a warm operand cache (one
/// untimed warmup token fills it and pages the weights in).
double time_tokens(const Matrix& x0, const std::vector<DecodeLayer>& layers,
                   const DecodeShapes& s, nn::GemmBackend& backend, std::size_t iters,
                   Matrix* out) {
  (void)decode_token(x0, layers, s, backend);  // warmup + cache fill
  std::vector<double> ms(iters);
  for (std::size_t i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    *out = decode_token(x0, layers, s, backend);
    const auto t1 = std::chrono::steady_clock::now();
    ms[i] = std::chrono::duration<double, std::milli>(t1 - t0).count();
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)) == 0;
}

bool events_equal(const ptc::EventCounter& a, const ptc::EventCounter& b) {
  return a.modulation_events == b.modulation_events &&
         a.detection_events == b.detection_events && a.adc_events == b.adc_events &&
         a.ddot_ops == b.ddot_ops && a.macs == b.macs && a.cycles == b.cycles;
}

/// The hot-path configuration the kernel targets: full optics + ADC.
ptc::GemmConfig hot_config(ptc::ExecutionPath path) {
  ptc::GemmConfig cfg;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.path = path;
  return cfg;
}

/// Cosine similarity between two equal-shape matrices (1.0 = parallel).
double cosine(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a.data()[i] * b.data()[i];
    na += a.data()[i] * a.data()[i];
    nb += b.data()[i] * b.data()[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

/// Tolerance-banded identity on raw GEMMs: a fast tier must land every
/// element within the ABFT guard band of the bit-exact scalar kernel.
/// The band is rescale · guard_tolerance(k, fan=1, |mag|=k) with the
/// noise sigma calibrated to the ADC step — exactly the bound the
/// runtime guard would apply to a single output, so "within band" means
/// "indistinguishable from the scalar kernel by the guard itself".
/// Event accounting must match field for field on every shape.
/// `bit_true` selects the driver: the quant tier's on-grid precondition
/// holds only for core::BitTrueDacDriver, so it is checked on that
/// chain; the SIMD tier is checked on the physical P-DAC transfer.
bool band_identity(bool bit_true, ptc::ExecutionPath fast_path) {
  Rng rng(1234);
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 768, 768}, {12, 128, 64}, {5, 333, 17}};
  const auto drv = bit_true ? core::make_bit_true_driver(8) : core::make_pdac_driver(8);
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng, 0.0, 1.0);
    const ptc::PhotonicGemm scalar_gemm(*drv, hot_config(ptc::ExecutionPath::kKernel));
    const ptc::PhotonicGemm fast_gemm(*drv, hot_config(fast_path));
    const ptc::GemmResult sr = scalar_gemm.multiply(a, b);
    const ptc::GemmResult vr = fast_gemm.multiply(a, b);
    if (!events_equal(vr.events, sr.events)) return false;
    ptc::GuardConfig g;  // default fp_slack / zscore
    g.noise_sigma = ptc::calibrate_guard_sigma(hot_config(ptc::ExecutionPath::kKernel).dot, s.k);
    const double band = sr.a_scale * sr.b_scale *
                        ptc::guard_tolerance(g, s.k, 1, static_cast<double>(s.k));
    if (vr.c.rows() != sr.c.rows() || vr.c.cols() != sr.c.cols()) return false;
    for (std::size_t i = 0; i < sr.c.size(); ++i) {
      if (std::abs(vr.c.data()[i] - sr.c.data()[i]) > band) return false;
    }
  }
  return true;
}

/// Operand bytes one 8×8 tile step moves at reduction length k, computed
/// from the element sizes the tier actually touches: (h+w)·k operand
/// loads, h·w double output stores, plus the fast tiers' per-column
/// cached Σy² scratch.  The quant tier streams int16 codes where the
/// double tiers stream 8-byte amplitudes — the "halves memory traffic"
/// claim, derived from sizeof rather than asserted.
std::size_t tier_bytes_per_tile(ptc::ExecutionPath path, std::size_t k) {
  const std::size_t h = 8, w = 8;
  const std::size_t elem = path == ptc::ExecutionPath::kKernelQuant ? sizeof(std::int16_t)
                                                                    : sizeof(double);
  std::size_t bytes = (h + w) * k * elem + h * w * sizeof(double);
  if (path == ptc::ExecutionPath::kKernelSimd || path == ptc::ExecutionPath::kKernelQuant) {
    bytes += w * sizeof(double);  // run_tile_fast/_quant column Σy² scratch
  }
  return bytes;
}

/// One GuardedBackend product under the shared mid-product fault storm
/// (a stuck MRR at tile 2, a TIA gain step at tile 4), parameterized on
/// the lane table and the numeric tier.
void storm_run(bool use_table, ptc::ExecutionPath path, Matrix* out, ptc::EventCounter* ev,
               faults::HealthSnapshot* snap) {
  Rng rng(77);
  const Matrix a = Matrix::random_gaussian(24, 40, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(40, 20, rng, 0.0, 1.0);

  faults::LaneBankConfig bc;
  bc.pdac.bits = 8;
  bc.wavelengths = 6;
  bc.variation.tia_gain_sigma = 0.01;
  bc.variation.bias_sigma = 0.002;
  bc.variation.seed = 21;
  faults::LaneBank bank(bc);
  faults::production_trim(bank);

  faults::FaultSchedule sched;
  sched.cfg.lanes = bank.lanes();
  sched.cfg.bits = 8;
  sched.cfg.horizon_steps = 16;
  faults::FaultEvent stuck;
  stuck.step = 2;
  stuck.lane = 3;
  stuck.kind = faults::FaultKind::kStuckMrr;
  stuck.magnitude = 0.5;
  sched.events.push_back(stuck);
  faults::FaultEvent tia;
  tia.step = 4;
  tia.lane = 8;
  tia.kind = faults::FaultKind::kTiaGainStep;
  tia.magnitude = 1.4;
  tia.bit = 3;
  sched.events.push_back(tia);

  faults::GuardedBackendConfig cfg;
  cfg.use_lane_table = use_table;
  cfg.path = path;
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultInjector injector(bank, sched);
  backend.attach_storm(&injector, 1);
  *out = backend.matmul(a, b);
  *ev = backend.events();
  *snap = backend.monitor().snapshot();
}

/// Mid-product fault storm: GuardedBackend with the faults-layer
/// coefficient table on vs off must be bit-identical through detection,
/// escalation and re-prepare.  Returns true when every bit matches.
bool storm_identity() {
  Matrix c_on, c_off;
  ptc::EventCounter ev_on, ev_off;
  faults::HealthSnapshot snap_on, snap_off;
  storm_run(true, ptc::ExecutionPath::kKernel, &c_on, &ev_on, &snap_on);
  storm_run(false, ptc::ExecutionPath::kKernel, &c_off, &ev_off, &snap_off);
  return bit_identical(c_on, c_off) && events_equal(ev_on, ev_off) &&
         snap_on.detections == snap_off.detections &&
         snap_on.mismatched_tiles == snap_off.mismatched_tiles &&
         snap_on.worst_residual == snap_off.worst_residual;
}

/// Guard-verdict consistency under the same storm when the quant tier is
/// requested: the perturbed lanes are never on-grid, so the tier
/// degrades per-product to the double fast path — and detection,
/// mismatch counts and the (closed-form) event charges must be exactly
/// those of the scalar path.  The tier ladder may change arithmetic, it
/// must never change what the guard sees.
bool storm_verdicts_consistent() {
  Matrix c_k, c_q;
  ptc::EventCounter ev_k, ev_q;
  faults::HealthSnapshot snap_k, snap_q;
  storm_run(true, ptc::ExecutionPath::kKernel, &c_k, &ev_k, &snap_k);
  storm_run(true, ptc::ExecutionPath::kKernelQuant, &c_q, &ev_q, &snap_q);
  return events_equal(ev_k, ev_q) && snap_k.detections == snap_q.detections &&
         snap_k.mismatched_tiles == snap_q.mismatched_tiles &&
         cosine(c_q, c_k) >= 1.0 - 1e-9;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::size_t layer_override = 0;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--layers") == 0 && i + 1 < argc) {
      layer_override = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const DecodeShapes shapes = smoke ? DecodeShapes{64, 4, 256, 16}
                                    : DecodeShapes{768, 12, 3072, 128};
  const std::size_t n_layers = layer_override != 0 ? layer_override : (smoke ? 2 : 12);
  const std::size_t iters = 3;

  std::printf("perf_kernel — fused kernel vs device graph, %s mode\n", smoke ? "smoke" : "full");
  std::printf("model: d_model=%zu heads=%zu d_ff=%zu context=%zu layers=%zu "
              "(full optics + ADC, threads=1)\n\n",
              shapes.d_model, shapes.heads, shapes.d_ff, shapes.context, n_layers);

  Rng rng(42);
  std::vector<DecodeLayer> layers;
  layers.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) layers.emplace_back(shapes, rng);
  const Matrix x0 = Matrix::random_gaussian(1, shapes.d_model, rng, 0.0, 0.5);

  nn::OperandCacheConfig cache_cfg;
  cache_cfg.capacity_bytes = 2ull << 30;

  // ---- clean decode: device graph vs kernel -------------------------
  nn::PhotonicBackend device_backend(core::make_pdac_driver(8),
                                     hot_config(ptc::ExecutionPath::kDeviceGraph), cache_cfg);
  nn::PhotonicBackend kernel_backend(core::make_pdac_driver(8),
                                     hot_config(ptc::ExecutionPath::kKernel), cache_cfg);

  Matrix device_out, kernel_out;
  const double device_ms = time_tokens(x0, layers, shapes, device_backend, iters, &device_out);
  device_backend.reset_events();
  (void)decode_token(x0, layers, shapes, device_backend);
  const ptc::EventCounter device_ev = device_backend.events();

  const double kernel_ms = time_tokens(x0, layers, shapes, kernel_backend, iters, &kernel_out);
  kernel_backend.reset_events();
  (void)decode_token(x0, layers, shapes, kernel_backend);
  const ptc::EventCounter kernel_ev = kernel_backend.events();

  const double speedup = kernel_ms > 0.0 ? device_ms / kernel_ms : 0.0;
  const bool clean_identical =
      bit_identical(kernel_out, device_out) && events_equal(kernel_ev, device_ev);

  // ---- SIMD fast tier: tolerance-banded identity + speedup ----------
  nn::PhotonicBackend simd_backend(core::make_pdac_driver(8),
                                   hot_config(ptc::ExecutionPath::kKernelSimd), cache_cfg);
  Matrix simd_out;
  const double simd_ms = time_tokens(x0, layers, shapes, simd_backend, iters, &simd_out);
  simd_backend.reset_events();
  (void)decode_token(x0, layers, shapes, simd_backend);
  const ptc::EventCounter simd_ev = simd_backend.events();

  const double simd_speedup = simd_ms > 0.0 ? kernel_ms / simd_ms : 0.0;
  const bool simd_events_ok = events_equal(simd_ev, kernel_ev);
  const bool simd_band_ok = band_identity(false, ptc::ExecutionPath::kKernelSimd);
  // Model-accuracy gate: 12 layers of full-optics + ADC decode may
  // straddle single ADC codes differently under the fast tier's
  // reassociation, but those last-bit flips must never compound into a
  // real accuracy change.  Measured cosine is ~1 - 1e-12; the gate
  // leaves six orders of magnitude of headroom.
  const double simd_cosine = cosine(simd_out, kernel_out);
  const bool simd_accuracy_ok = simd_cosine >= 1.0 - 1e-6;

  // ---- ABFT-guarded decode ------------------------------------------
  nn::PhotonicBackend device_guarded(
      core::make_pdac_driver(8),
      nn::guarded_gemm_config({}, hot_config(ptc::ExecutionPath::kDeviceGraph)), cache_cfg);
  nn::PhotonicBackend kernel_guarded(
      core::make_pdac_driver(8),
      nn::guarded_gemm_config({}, hot_config(ptc::ExecutionPath::kKernel)), cache_cfg);
  const Matrix dg_out = decode_token(x0, layers, shapes, device_guarded);
  const Matrix kg_out = decode_token(x0, layers, shapes, kernel_guarded);
  const nn::GuardStats* dg = device_guarded.guard_stats();
  const nn::GuardStats* kg = kernel_guarded.guard_stats();
  const bool guarded_identical =
      bit_identical(kg_out, dg_out) && events_equal(kernel_guarded.events(), device_guarded.events()) &&
      dg != nullptr && kg != nullptr && kg->tiles_checked == dg->tiles_checked &&
      kg->mismatched_tiles == dg->mismatched_tiles && kg->worst_residual == dg->worst_residual;

  // SIMD tier under the guard: same tiles checked, same verdict counts —
  // the guard must not see the fast tier as corruption.
  nn::PhotonicBackend simd_guarded(
      core::make_pdac_driver(8),
      nn::guarded_gemm_config({}, hot_config(ptc::ExecutionPath::kKernelSimd)), cache_cfg);
  const Matrix sg_out = decode_token(x0, layers, shapes, simd_guarded);
  const nn::GuardStats* sg = simd_guarded.guard_stats();
  const bool simd_guard_ok = sg != nullptr && kg != nullptr &&
                             sg->tiles_checked == kg->tiles_checked &&
                             sg->mismatched_tiles == kg->mismatched_tiles &&
                             events_equal(simd_guarded.events(), kernel_guarded.events()) &&
                             cosine(sg_out, kg_out) >= 1.0 - 1e-6;

  // ---- integer quant tier (bit-true DAC chain) ----------------------
  // The quant tier's precondition is an encode LUT that sits bitwise on
  // the quantizer grid, which the physical P-DAC/ideal-DAC transfers
  // never satisfy — so this trio runs on core::BitTrueDacDriver and the
  // speedup bar is judged like-for-like vs the SIMD tier on that driver.
  nn::PhotonicBackend bt_kernel_backend(core::make_bit_true_driver(8),
                                        hot_config(ptc::ExecutionPath::kKernel), cache_cfg);
  nn::PhotonicBackend bt_simd_backend(core::make_bit_true_driver(8),
                                      hot_config(ptc::ExecutionPath::kKernelSimd), cache_cfg);
  nn::PhotonicBackend quant_backend(core::make_bit_true_driver(8),
                                    hot_config(ptc::ExecutionPath::kKernelQuant), cache_cfg);
  Matrix bt_kernel_out, bt_simd_out, quant_out;
  const double bt_kernel_ms =
      time_tokens(x0, layers, shapes, bt_kernel_backend, iters, &bt_kernel_out);
  const double bt_simd_ms = time_tokens(x0, layers, shapes, bt_simd_backend, iters, &bt_simd_out);
  const double quant_ms = time_tokens(x0, layers, shapes, quant_backend, iters, &quant_out);
  bt_kernel_backend.reset_events();
  (void)decode_token(x0, layers, shapes, bt_kernel_backend);
  quant_backend.reset_events();
  (void)decode_token(x0, layers, shapes, quant_backend);

  const double quant_speedup = quant_ms > 0.0 ? bt_simd_ms / quant_ms : 0.0;
  const bool quant_events_ok = events_equal(quant_backend.events(), bt_kernel_backend.events());
  const bool quant_band_ok = band_identity(true, ptc::ExecutionPath::kKernelQuant);
  // Same model-accuracy gate as the SIMD tier, against the scalar kernel
  // on the same driver: the integer dots are exact and rounded once, so
  // the only divergence left is the scalar kernel's own fp accumulation.
  const double quant_cosine = cosine(quant_out, bt_kernel_out);
  const bool quant_accuracy_ok = quant_cosine >= 1.0 - 1e-12;

  // Quant tier under the guard: same tiles, same verdicts.
  nn::PhotonicBackend bt_kernel_guarded(
      core::make_bit_true_driver(8),
      nn::guarded_gemm_config({}, hot_config(ptc::ExecutionPath::kKernel)), cache_cfg);
  nn::PhotonicBackend quant_guarded(
      core::make_bit_true_driver(8),
      nn::guarded_gemm_config({}, hot_config(ptc::ExecutionPath::kKernelQuant)), cache_cfg);
  const Matrix bkg_out = decode_token(x0, layers, shapes, bt_kernel_guarded);
  const Matrix qg_out = decode_token(x0, layers, shapes, quant_guarded);
  const nn::GuardStats* bkg = bt_kernel_guarded.guard_stats();
  const nn::GuardStats* qg = quant_guarded.guard_stats();
  const bool quant_guard_ok = qg != nullptr && bkg != nullptr &&
                              qg->tiles_checked == bkg->tiles_checked &&
                              qg->mismatched_tiles == bkg->mismatched_tiles &&
                              events_equal(quant_guarded.events(), bt_kernel_guarded.events()) &&
                              cosine(qg_out, bkg_out) >= 1.0 - 1e-6;

  // The runtime ladder (nn::fastest_gemm_config) must pick the quant
  // tier exactly when its precondition holds: on the bit-true chain and
  // never on the transcendental P-DAC transfer.
  const bool auto_path_ok =
      nn::fastest_gemm_config(*core::make_bit_true_driver(8)).path ==
          ptc::ExecutionPath::kKernelQuant &&
      nn::fastest_gemm_config(*core::make_pdac_driver(8)).path !=
          ptc::ExecutionPath::kKernelQuant;

  // Bytes moved per 8×8 tile step at the model's reduction length.
  const std::size_t bytes_kernel = tier_bytes_per_tile(ptc::ExecutionPath::kKernel, shapes.d_model);
  const std::size_t bytes_simd =
      tier_bytes_per_tile(ptc::ExecutionPath::kKernelSimd, shapes.d_model);
  const std::size_t bytes_quant =
      tier_bytes_per_tile(ptc::ExecutionPath::kKernelQuant, shapes.d_model);
  const double bytes_ratio = static_cast<double>(bytes_quant) / static_cast<double>(bytes_simd);
  const bool bytes_ok = bytes_ratio <= 0.55;

  // ---- fault storm (faults-layer coefficient table) -----------------
  const bool storm_identical = storm_identity();
  const bool quant_storm_ok = storm_verdicts_consistent();

  std::printf("device graph per-token: %.2f ms  (%.2f tok/s)\n", device_ms, 1000.0 / device_ms);
  std::printf("fused kernel per-token: %.2f ms  (%.2f tok/s)\n", kernel_ms, 1000.0 / kernel_ms);
  std::printf("SIMD tier per-token:    %.2f ms  (%.2f tok/s)  [isa: %s]\n", simd_ms,
              1000.0 / simd_ms, simd::active_isa());
  std::printf("quant tier per-token:   %.2f ms  (%.2f tok/s)  [bit-true chain: "
              "scalar %.2f ms, simd %.2f ms]\n",
              quant_ms, 1000.0 / quant_ms, bt_kernel_ms, bt_simd_ms);
  std::printf("kernel speedup:         %.2fx (vs device graph)\n", speedup);
  std::printf("SIMD speedup:           %.2fx (vs scalar kernel)\n", simd_speedup);
  std::printf("quant speedup:          %.2fx (vs SIMD tier, same driver)\n", quant_speedup);
  std::printf("bytes/tile (k=%zu):     kernel %zu, simd %zu, quant %zu (ratio %.3f)\n",
              shapes.d_model, bytes_kernel, bytes_simd, bytes_quant, bytes_ratio);
  std::printf("bit-identical (clean):  %s\n", clean_identical ? "yes" : "NO");
  std::printf("bit-identical (guard):  %s\n", guarded_identical ? "yes" : "NO");
  std::printf("bit-identical (storm):  %s\n", storm_identical ? "yes" : "NO");
  std::printf("SIMD within guard band: %s\n", simd_band_ok ? "yes" : "NO");
  std::printf("SIMD events == scalar:  %s\n", simd_events_ok ? "yes" : "NO");
  std::printf("SIMD guard verdicts ==: %s\n", simd_guard_ok ? "yes" : "NO");
  std::printf("SIMD decode cosine:     %.12f\n", simd_cosine);
  std::printf("quant within guard band:%s\n", quant_band_ok ? "yes" : "NO");
  std::printf("quant events == scalar: %s\n", quant_events_ok ? "yes" : "NO");
  std::printf("quant guard verdicts ==:%s\n", quant_guard_ok ? "yes" : "NO");
  std::printf("quant storm verdicts ==:%s\n", quant_storm_ok ? "yes" : "NO");
  std::printf("quant auto-path ladder: %s\n", auto_path_ok ? "yes" : "NO");
  std::printf("quant decode cosine:    %.15f\n\n", quant_cosine);

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernel\",\n  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"model\": {\"d_model\": %zu, \"heads\": %zu, \"d_ff\": %zu, "
               "\"context\": %zu, \"layers\": %zu},\n",
               shapes.d_model, shapes.heads, shapes.d_ff, shapes.context, n_layers);
  std::fprintf(f, "  \"tiers\": [\n");
  std::fprintf(f, "    {\"path\": \"device_graph\", \"ms_per_token\": %.3f, "
               "\"tokens_per_s\": %.3f, \"bytes_per_tile\": %zu},\n",
               device_ms, 1000.0 / device_ms, bytes_kernel);
  std::fprintf(f, "    {\"path\": \"kernel\", \"ms_per_token\": %.3f, "
               "\"tokens_per_s\": %.3f, \"bytes_per_tile\": %zu},\n",
               kernel_ms, 1000.0 / kernel_ms, bytes_kernel);
  std::fprintf(f, "    {\"path\": \"kernel_simd\", \"ms_per_token\": %.3f, "
               "\"tokens_per_s\": %.3f, \"isa\": \"%s\", \"bytes_per_tile\": %zu},\n",
               simd_ms, 1000.0 / simd_ms, simd::active_isa(), bytes_simd);
  std::fprintf(f, "    {\"path\": \"kernel_quant\", \"ms_per_token\": %.3f, "
               "\"tokens_per_s\": %.3f, \"isa\": \"%s\", \"bytes_per_tile\": %zu, "
               "\"driver\": \"bit-true-dac\"}\n  ],\n",
               quant_ms, 1000.0 / quant_ms, simd::active_isa(), bytes_quant);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"simd_speedup_vs_scalar\": %.3f,\n", simd_speedup);
  std::fprintf(f, "  \"quant_speedup_vs_simd\": %.3f,\n", quant_speedup);
  std::fprintf(f, "  \"quant_bytes_ratio_vs_simd\": %.3f,\n", bytes_ratio);
  std::fprintf(f, "  \"bit_identical_clean\": %s,\n", clean_identical ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_guarded\": %s,\n", guarded_identical ? "true" : "false");
  std::fprintf(f, "  \"bit_identical_storm\": %s,\n", storm_identical ? "true" : "false");
  std::fprintf(f, "  \"simd_within_guard_band\": %s,\n", simd_band_ok ? "true" : "false");
  std::fprintf(f, "  \"simd_events_equal\": %s,\n", simd_events_ok ? "true" : "false");
  std::fprintf(f, "  \"simd_guard_consistent\": %s,\n", simd_guard_ok ? "true" : "false");
  std::fprintf(f, "  \"simd_decode_cosine\": %.15f,\n", simd_cosine);
  std::fprintf(f, "  \"quant_within_guard_band\": %s,\n", quant_band_ok ? "true" : "false");
  std::fprintf(f, "  \"quant_events_equal\": %s,\n", quant_events_ok ? "true" : "false");
  std::fprintf(f, "  \"quant_guard_consistent\": %s,\n", quant_guard_ok ? "true" : "false");
  std::fprintf(f, "  \"quant_storm_consistent\": %s,\n", quant_storm_ok ? "true" : "false");
  std::fprintf(f, "  \"quant_auto_path_ok\": %s,\n", auto_path_ok ? "true" : "false");
  std::fprintf(f, "  \"quant_decode_cosine\": %.15f\n}\n", quant_cosine);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!clean_identical || !guarded_identical || !storm_identical) {
    std::fprintf(stderr, "FAIL: kernel path diverged from the device-graph/model baseline\n");
    return 1;
  }
  if (!simd_band_ok || !simd_events_ok || !simd_guard_ok || !simd_accuracy_ok) {
    std::fprintf(stderr,
                 "FAIL: SIMD tier broke its contract (band=%d events=%d guard=%d "
                 "cosine=%.12f)\n",
                 simd_band_ok ? 1 : 0, simd_events_ok ? 1 : 0, simd_guard_ok ? 1 : 0,
                 simd_cosine);
    return 1;
  }
  if (!quant_band_ok || !quant_events_ok || !quant_guard_ok || !quant_storm_ok ||
      !quant_accuracy_ok || !auto_path_ok || !bytes_ok) {
    std::fprintf(stderr,
                 "FAIL: quant tier broke its contract (band=%d events=%d guard=%d storm=%d "
                 "auto=%d bytes_ratio=%.3f cosine=%.15f)\n",
                 quant_band_ok ? 1 : 0, quant_events_ok ? 1 : 0, quant_guard_ok ? 1 : 0,
                 quant_storm_ok ? 1 : 0, auto_path_ok ? 1 : 0, bytes_ratio, quant_cosine);
    return 1;
  }
  // >=3x tokens/s is the acceptance bar at full BERT-base shapes; smoke
  // shapes are too small for a stable ratio and only gate identity.
  if (!smoke && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: kernel speedup %.2fx below the 3x acceptance bar\n", speedup);
    return 1;
  }
  // The SIMD tier targets 2x over the scalar kernel on BERT-base decode;
  // the gate is 1.5x so a noisy or narrow-vector CI host cannot flake a
  // genuinely healthy build.
  if (!smoke && simd_speedup < 1.5) {
    std::fprintf(stderr, "FAIL: SIMD speedup %.2fx below the 1.5x acceptance bar\n",
                 simd_speedup);
    return 1;
  }
  // The quant tier halves operand bytes and quadruples integer lane
  // width over the double SIMD tier; >=1.3x at BERT-base decode is the
  // conservative acceptance bar (same-driver comparison).
  if (!smoke && quant_speedup < 1.3) {
    std::fprintf(stderr, "FAIL: quant speedup %.2fx below the 1.3x acceptance bar\n",
                 quant_speedup);
    return 1;
  }
  return 0;
}
