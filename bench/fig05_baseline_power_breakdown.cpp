// fig05_baseline_power_breakdown — reproduces paper Fig. 5: the power
// breakdown of LT-B with traditional electrical DACs, showing the DAC
// share of 21.8 % at 4-bit and 50.5 % at 8-bit precision that motivates
// the P-DAC.
#include <iostream>

#include "arch/component_power.hpp"
#include "eval/report.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();

  std::cout << "Fig. 5 — power breakdown of LT-B with traditional DACs\n\n";

  std::vector<eval::Scored> scoreboard;
  for (int bits : {4, 8}) {
    const auto breakdown =
        arch::compute_power_breakdown(cfg, params, bits, arch::SystemVariant::kDacBased);
    std::cout << eval::render_power_breakdown(
                     "Fig. 5(" + std::string(bits == 4 ? "a" : "b") + ") LT-B baseline",
                     breakdown)
              << "\n";
    scoreboard.push_back({"DAC share of total power, " + std::to_string(bits) + "-bit",
                          bits == 4 ? 21.8 : 50.5,
                          100.0 * breakdown.share(arch::Component::kDac), "%"});
  }

  std::cout << eval::render_scoreboard(
      "Fig. 5", scoreboard,
      "note: component table calibrated per DESIGN.md §5; shares are model output.");
  return 0;
}
