// abl_ddot_throughput — ablation A3 (google-benchmark): simulator
// throughput of the DDot datapath and the photonic GEMM under the
// different execution paths and drivers.  This measures the *simulator*,
// not the hardware — it documents the cost of full-optics fidelity vs
// the algebraically equivalent fast path and the overhead of each
// modulator driver model.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modulator_driver.hpp"
#include "ptc/ddot.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;

void BM_DdotFullOptics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto x = rng.uniform_vector(n, -1.0, 1.0);
  const auto y = rng.uniform_vector(n, -1.0, 1.0);
  ptc::Ddot ddot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ddot.compute(x, y).value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DdotFullOptics)->Arg(8)->Arg(64)->Arg(512);

void BM_DotEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const bool full_optics = state.range(1) != 0;
  Rng rng(2);
  const auto x = rng.uniform_vector(n, -1.0, 1.0);
  const auto y = rng.uniform_vector(n, -1.0, 1.0);
  const auto driver = core::make_pdac_driver(8);
  ptc::DotEngineConfig cfg;
  cfg.use_full_optics = full_optics;
  const ptc::PhotonicDotEngine engine(*driver, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dot(x, y));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
  state.SetLabel(full_optics ? "full-optics" : "fast-path");
}
BENCHMARK(BM_DotEngine)->Args({512, 0})->Args({512, 1})->Args({4096, 0})->Args({4096, 1});

void BM_PhotonicGemm(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const bool pdac = state.range(1) != 0;
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(dim, dim, rng);
  const Matrix b = Matrix::random_gaussian(dim, dim, rng);
  const auto driver =
      pdac ? core::make_pdac_driver(8) : core::make_ideal_dac_driver(8);
  const ptc::PhotonicGemm gemm(*driver, ptc::GemmConfig{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(gemm.multiply(a, b).c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * dim * dim * dim);
  state.SetLabel(pdac ? "p-dac" : "ideal-dac");
}
BENCHMARK(BM_PhotonicGemm)->Args({32, 1})->Args({32, 0})->Args({64, 1})->Args({64, 0});

}  // namespace

BENCHMARK_MAIN();
