// abl_sparsity_gating — ablation A18: what the P-DAC gives up by
// deleting the controller — zero-skipping.
//
// An electrical drive chain has a controller that can gate DAC
// conversions for zero-valued operands (common with ReLU CNNs, ~50 %
// activation sparsity, and with sparsified transformers).  The P-DAC
// deliberately has no controller, so every operand — zero or not — is
// converted.  This bench asks the adversarial question: at what
// activation sparsity does a zero-gated DAC system catch up?
//
// Modulation energy under gating: the activation-side conversions scale
// with density d, the weight side stays dense:
//   E_mod_gated = E_mod · (w_side + d·a_side)/(w_side + a_side)
// where for the LT tiling both sides contribute equally ((H+W)·k split
// H rows activations / W cols weights with H = W).
#include <cstdio>

#include "arch/component_power.hpp"
#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/cnn_trace.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  const auto cfg = arch::lt_base();
  const auto params = arch::lt_power_params();

  std::printf("Ablation A18 — zero-gated DAC vs P-DAC under activation sparsity\n\n");

  for (const auto& [name, trace] :
       {std::pair{"BERT-base prefill", nn::trace_forward(nn::bert_base(128))},
        std::pair{"VGG11-like (ReLU CNN)", nn::trace_cnn_forward(nn::vgg11_like())}}) {
    const auto cmp = arch::compare_energy(trace, cfg, params, 8);
    const double e_mod_dac = cmp.baseline.total().modulation.joules();
    const double e_mod_pdac = cmp.pdac.total().modulation.joules();
    const double e_rest = cmp.baseline.total().total().joules() - e_mod_dac;

    Table t({"activation density", "gated-DAC total", "P-DAC total", "P-DAC still saves"});
    for (double density : {1.0, 0.75, 0.5, 0.25, 0.0}) {
      // Half of the (H+W)·k conversions are the activation side (H = W).
      const double gated = e_mod_dac * (0.5 + 0.5 * density);
      const double dac_total = e_rest + gated;
      const double pdac_total = e_rest + e_mod_pdac;
      t.add_row({Table::pct(density, 0), Table::millijoules(dac_total),
                 Table::millijoules(pdac_total),
                 Table::pct(1.0 - pdac_total / dac_total)});
    }
    std::printf("%s:\n%s\n", name, t.to_string().c_str());
  }

  std::printf(
      "Even a perfect zero-gater (0%% density) leaves the weight-side DAC\n"
      "conversions, which alone cost ~2.8x the P-DAC's entire conversion\n"
      "energy — so deleting the controller costs the P-DAC nothing it could\n"
      "not afford.  The gap narrows but never closes; the controller's other\n"
      "casualty (dynamic per-tensor scaling tricks) is likewise absorbed by\n"
      "the max-abs calibration the quantizer already performs.\n");
  return 0;
}
