// abl_fault_tolerance — robustness ablation: end-to-end LLM accuracy vs
// device fault rate, with the detection/recovery loop on and off.
//
// The fault pipeline under test (DESIGN.md "Robustness pipeline"):
//   seeded FaultSchedule → FaultInjector (stuck MRRs, dead/degraded PDs,
//   TIA gain steps, bias random walk, laser droop) → self-test BIST →
//   re-trim drift faults / fence hard faults → degraded mapping.
//
// Three operating modes at each fault rate:
//   no-detect  — faults land and nothing notices: dead lanes keep
//                feeding garbage into reductions (the accuracy cliff);
//   detect     — the BIST fences every out-of-budget lane but never
//                re-trims, trading throughput for accuracy;
//   recover    — drift-class faults are re-trimmed back into budget and
//                only true hard faults are fenced.
//
// Accuracy is a transformer encoder layer (BERT-style pre-norm block,
// scaled-down shape so the per-lane device simulation stays tractable)
// run through the surviving lanes and compared against the fp64
// reference; throughput and recalibration energy come from mapping the
// full BERT-base trace onto LT-B with the measured degraded capacity.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/lt_config.hpp"
#include "arch/mapper.hpp"
#include "arch/power_params.hpp"
#include "common/stats.hpp"
#include "eval/report.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/self_test.hpp"
#include "nn/encoder_layer.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace {

using namespace pdac;

enum class Mode { kNoDetect, kDetectOnly, kDetectRecover };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNoDetect: return "no-detect";
    case Mode::kDetectOnly: return "detect-only (mask)";
    case Mode::kDetectRecover: return "detect + recover";
  }
  return "?";
}

constexpr std::uint64_t kHorizon = 32;
constexpr std::uint64_t kSeed = 2026;
constexpr double kErrorBudget = 0.085;  // the paper's approximation bound

faults::FaultScheduleConfig schedule_config(std::size_t lanes, double fault_rate,
                                            std::uint64_t seed) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = lanes;
  cfg.bits = 8;
  cfg.horizon_steps = kHorizon;
  cfg.hard_fault_rate = 0.5 * fault_rate;  // latched MRRs / dead PDs
  cfg.drift_fault_rate = fault_rate;       // recoverable drift events
  cfg.bias_walk_sigma_per_step = 0.012 * fault_rate;
  cfg.laser_droop_per_step = 0.0003;
  cfg.seed = seed;
  return cfg;
}

faults::LaneBankConfig bank_config(std::size_t wavelengths, std::uint64_t seed) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = wavelengths;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

/// Encoder-layer accuracy through one (possibly degraded) lane bank.
double layer_cosine(const faults::LaneBank& bank) {
  const auto cfg = nn::tiny_transformer(12, 48, 4, 1);
  nn::EncoderLayer layer(cfg.d_model, cfg.heads, cfg.d_ff);
  Rng rng(7);
  layer.init_random(rng);
  Rng in_rng(11);
  const Matrix x = Matrix::random_gaussian(cfg.seq_len, cfg.d_model, in_rng, 0.0, 0.5);

  nn::ReferenceBackend ref;
  const Matrix exact = layer.forward(x, ref);
  faults::DegradedBackend photonic(bank);
  const Matrix approx = layer.forward(x, photonic);
  return stats::compare(approx.data(), exact.data()).cosine;
}

struct ModeRow {
  eval::FaultRateRow row;
  double accuracy_lane0{};  ///< cosine through the measured array
};

/// ABFT-guard detection latency at one fault rate (bench A22 measures
/// the full sweep; this column makes A19 and A22 directly comparable):
/// one guarded 100-tile product under a mid-product storm drawn from the
/// same schedule family, reporting mean tiles-scanned-until-detection.
/// Returns −1 (rendered "-") when the schedule never strikes a used lane.
double measure_detect_latency(double fault_rate) {
  faults::LaneBank bank(bank_config(8, kSeed + 999));
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  faults::FaultScheduleConfig cfg =
      schedule_config(bank.lanes(), fault_rate, kSeed + 997);
  // The continuous processes (bias walk, laser droop) perturb every lane
  // every step, so the guard flags them at the very first tile — true,
  // but an uninformative constant.  The latency column isolates the
  // *discrete* strikes (stuck MRRs, dead PDs, TIA gain steps): tiles
  // scanned until the first scheduled event lands in-band.
  cfg.bias_walk_sigma_per_step = 0.0;
  cfg.laser_droop_per_step = 0.0;
  faults::FaultInjector injector(bank, faults::generate_fault_schedule(cfg));
  backend.attach_storm(&injector, 1);
  Rng rng(23);
  const Matrix a = Matrix::random_gaussian(80, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 80, rng, 0.0, 1.0);
  (void)backend.matmul(a, b);
  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  return snap.detections == 0 ? -1.0 : snap.mean_detection_latency();
}

/// Simulate every array of the LT pool at one (rate, mode) point.
ModeRow evaluate_point(double fault_rate, Mode mode, const arch::LtConfig& lt,
                       const arch::PowerParams& params, std::uint64_t healthy_makespan) {
  ModeRow out;
  out.row.fault_rate = fault_rate;

  arch::RecalibrationCost recal;
  std::size_t healthy_arrays = 0;
  double availability_sum = 0.0;
  std::vector<const faults::LaneBank*> accuracy_banks;
  std::vector<faults::LaneBank> banks;
  banks.reserve(lt.arrays());

  // Every array is its own fabricated instance with its own fault draw.
  const std::size_t min_usable = std::max<std::size_t>(1, lt.wavelengths / 4);
  for (std::size_t arr = 0; arr < lt.arrays(); ++arr) {
    banks.emplace_back(bank_config(lt.wavelengths, kSeed + 17 * arr));
    faults::LaneBank& bank = banks.back();
    faults::production_trim(bank);  // factory calibration precedes deployment
    faults::FaultInjector injector(
        bank, faults::generate_fault_schedule(
                  schedule_config(bank.lanes(), fault_rate, kSeed + 101 * arr)));
    injector.advance_to(kHorizon);

    if (mode != Mode::kNoDetect) {
      faults::SelfTestConfig st;
      st.error_budget = kErrorBudget;
      st.attempt_recovery = mode == Mode::kDetectRecover;
      const faults::SelfTestReport rep = faults::run_self_test(bank, st);
      recal.probe_events += rep.probe_events;
      recal.retrims += rep.retrims;
      out.row.lanes_dead += rep.dead;
      out.row.lanes_recovered += rep.recovered;
    }

    const std::size_t usable = bank.usable_channels();
    // Scheduling policy: an array that lost more than 3/4 of its WDM
    // channels computes too narrow to be worth keeping — fence it whole
    // and remap its tiles so the survivors run near full reduction width.
    if (usable >= min_usable) {
      ++healthy_arrays;
      availability_sum += static_cast<double>(usable) /
                          static_cast<double>(lt.wavelengths);
      if (accuracy_banks.size() < 4) accuracy_banks.push_back(&bank);
    }
  }

  // Accuracy averaged over a few surviving arrays (they are statistically
  // identical, so this just tames sampling noise); a fully fenced pool is
  // an outage.
  double cosine_sum = 0.0;
  for (const faults::LaneBank* b : accuracy_banks) cosine_sum += layer_cosine(*b);
  out.accuracy_lane0 =
      accuracy_banks.empty()
          ? 0.0
          : cosine_sum / static_cast<double>(accuracy_banks.size());
  out.row.cosine_accuracy = out.accuracy_lane0;

  const auto trace = nn::trace_forward(nn::bert_base());
  if (healthy_arrays == 0) {
    out.row.throughput_scale = 0.0;
  } else {
    arch::DegradedCapacity cap;
    cap.healthy_arrays = healthy_arrays;
    cap.wavelength_availability =
        mode == Mode::kNoDetect ? 1.0  // nothing fenced, nothing stretched
                                : availability_sum / static_cast<double>(healthy_arrays);
    const arch::Schedule degraded = arch::schedule_trace(trace, lt, cap);
    recal.remapped_tiles += degraded.remapped_tiles;
    out.row.throughput_scale = static_cast<double>(healthy_makespan) /
                               static_cast<double>(degraded.makespan_cycles);
  }

  out.row.recal_energy_uj =
      arch::recalibration_energy(recal, lt, params, 8, arch::SystemVariant::kPdacBased)
          .joules() *
      1e6;
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation A19 — fault tolerance: LLM accuracy vs device fault rate\n");
  std::printf("(schedule seed %llu, horizon %llu steps, error budget %.1f%%)\n\n",
              static_cast<unsigned long long>(kSeed),
              static_cast<unsigned long long>(kHorizon), 100.0 * kErrorBudget);

  const arch::LtConfig lt = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const auto healthy =
      arch::schedule_trace(nn::trace_forward(nn::bert_base()), lt);

  // Reproducibility: the same config must regenerate the same schedule.
  {
    const auto cfg = schedule_config(2 * lt.wavelengths, 0.4, kSeed + 101);
    const auto a = faults::generate_fault_schedule(cfg);
    const auto b = faults::generate_fault_schedule(cfg);
    bool same = a.events.size() == b.events.size();
    for (std::size_t i = 0; same && i < a.events.size(); ++i) {
      same = faults::to_string(a.events[i]) == faults::to_string(b.events[i]);
    }
    std::printf("schedule replay determinism: %s (%zu events at rate 40%%)\n\n",
                same ? "PASS" : "FAIL", a.events.size());
  }

  const std::vector<double> rates = {0.0, 0.05, 0.1, 0.2, 0.4, 0.6};
  const std::vector<Mode> modes = {Mode::kNoDetect, Mode::kDetectOnly,
                                   Mode::kDetectRecover};

  // Detection latency is a property of the in-band ABFT guard, not of
  // the per-mode BIST policy, so it is measured once per rate and shown
  // on the detecting modes ("-" for no-detect, which by definition never
  // notices).
  std::vector<double> detect_latency;
  detect_latency.reserve(rates.size());
  for (double rate : rates) detect_latency.push_back(measure_detect_latency(rate));

  std::vector<std::vector<eval::FaultRateRow>> results(modes.size());
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      eval::FaultRateRow row =
          evaluate_point(rates[i], modes[m], lt, params, healthy.makespan_cycles).row;
      if (modes[m] != Mode::kNoDetect) row.detect_latency_tiles = detect_latency[i];
      results[m].push_back(row);
    }
    std::printf("%s", eval::render_fault_tolerance(mode_name(modes[m]), results[m]).c_str());
    std::printf("\n");
  }

  // --- acceptance checks ------------------------------------------------------
  const auto& no_detect = results[0];
  const auto& recover = results[2];
  double worst_cliff = 0.0;
  for (std::size_t i = 1; i < recover.size(); ++i) {
    worst_cliff = std::max(
        worst_cliff, recover[i - 1].cosine_accuracy - recover[i].cosine_accuracy);
  }
  double recovery_gain = 0.0;
  bool recovery_never_worse = true;
  for (std::size_t i = 1; i < recover.size(); ++i) {
    const double d = recover[i].cosine_accuracy - no_detect[i].cosine_accuracy;
    recovery_gain += d;
    if (d < -1e-3) recovery_never_worse = false;
  }
  const bool no_cliff = worst_cliff < 0.10 &&
                        recover.back().cosine_accuracy > 0.90;
  std::printf("graceful degradation (recovery on): worst step-to-step cosine drop "
              "%.4f, cosine at %.0f%% faults %.4f -> %s\n",
              worst_cliff, 100.0 * rates.back(), recover.back().cosine_accuracy,
              no_cliff ? "PASS (no cliff)" : "FAIL");
  std::printf("recovery benefit: mean cosine gain over no-detect %.4f, never worse: "
              "%s -> %s\n\n",
              recovery_gain / static_cast<double>(rates.size() - 1),
              recovery_never_worse ? "yes" : "no",
              recovery_gain > 0.05 && recovery_never_worse ? "PASS" : "FAIL");

  // CSV for plotting.
  std::vector<std::vector<double>> csv;
  for (std::size_t m = 0; m < modes.size(); ++m) {
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const auto& r = results[m][i];
      csv.push_back({static_cast<double>(m), r.fault_rate,
                     static_cast<double>(r.lanes_dead),
                     static_cast<double>(r.lanes_recovered), r.throughput_scale,
                     r.cosine_accuracy, r.recal_energy_uj, r.detect_latency_tiles});
    }
  }
  std::printf("%s", eval::to_csv({"mode", "fault_rate", "lanes_dead", "lanes_recovered",
                                  "throughput_scale", "cosine", "recal_energy_uj",
                                  "detect_latency_tiles"},
                                 csv)
                        .c_str());

  std::printf(
      "\nFindings: without detection the accuracy falls off a cliff as soon as\n"
      "stuck modulators start feeding latched amplitudes into reductions —\n"
      "the reduction is a sum, so one loud dead lane poisons every output it\n"
      "touches.  Masking alone restores most accuracy at a throughput cost\n"
      "that grows with the fault rate (narrower reductions take more chunks).\n"
      "Re-trimming recovers the drift-class faults (bias walk, TIA gain\n"
      "steps) at a few probe-events' energy, keeping both accuracy and\n"
      "throughput near nominal until genuinely dead hardware dominates.\n");
  return 0;
}
