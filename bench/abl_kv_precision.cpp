// abl_kv_precision — ablation A17: KV-cache quantization in decode.
//
// A5/A7 showed single-stream decode is throttled by KV streaming.  The
// standard serving countermeasure stores the cache at lower precision
// than the compute path; this bench sweeps the cache width at fixed
// 8-bit operands and reports footprint, energy per token, and how much
// of the P-DAC saving the thinner cache releases.
#include <cstdio>

#include "arch/energy_model.hpp"
#include "arch/memory_system.hpp"
#include "common/table.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const auto model = nn::bert_base(128);
  const auto cfg = arch::lt_base();
  const auto params = arch::lt_power_params();
  const std::size_t ctx = 2048;

  std::printf("Ablation A17 — KV-cache precision, decode ctx=%zu, 8-bit operands\n\n",
              ctx);

  Table t({"KV bits", "cache size", "HBM MB/token", "E/token DAC", "E/token P-DAC",
           "saving"});
  for (int kv_bits : {16, 8, 4, 2}) {
    const auto trace = nn::trace_decode_step_quantized_kv(model, ctx, 8, kv_bits);
    const auto cmp = arch::compare_energy(trace, cfg, params, 8);
    const auto traffic = arch::summarize_traffic(trace, 8);
    t.add_row({std::to_string(kv_bits),
               Table::num(static_cast<double>(nn::kv_cache_bytes(model, ctx, kv_bits)) / 1e6,
                          1) +
                   " MB",
               Table::num(static_cast<double>(traffic.hbm_bytes) / 1e6, 1),
               Table::millijoules(cmp.baseline.total().total().joules(), 3),
               Table::millijoules(cmp.pdac.total().total().joules(), 3),
               Table::pct(cmp.total_saving())});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nQuartering the cache width (8b -> 2b) removes most of the per-token\n"
      "movement at long context, which both cuts absolute energy and raises\n"
      "the P-DAC's relative saving — the conversion events it eliminates are\n"
      "untouched by cache precision.  (Accuracy impact of KV quantization is\n"
      "workload-dependent and outside this model's scope.)\n");
  return 0;
}
