// abl_wdm_scaling — ablation A14: how far WDM parallelism scales.
//
// DDot throughput is linear in the wavelength count, but receiver rings
// capture Lorentzian tails of neighbouring channels; the aggregate
// interference is a signal-correlated error floor.  This bench sweeps
// channel count × ring selectivity and reports isolation, the
// crosstalk-limited effective bits, and the largest comb that supports
// 8-bit operation — the physical bound on the "more wavelengths = more
// parallelism" lever used throughout the paper.
#include <cstdio>

#include "common/table.hpp"
#include "photonics/crosstalk.hpp"

int main() {
  using namespace pdac;
  using photonics::analyze_crosstalk;
  using photonics::WdmBusConfig;

  std::printf("Ablation A14 — WDM channel scaling vs crosstalk\n\n");

  Table t({"channels", "ring HWHM", "pair isolation", "aggregate xtalk",
           "xtalk-limited bits"});
  for (double hwhm : {0.02, 0.05, 0.1}) {
    for (std::size_t n : {8u, 16u, 32u, 64u}) {
      WdmBusConfig cfg;
      cfg.channels = n;
      cfg.ring_hwhm_channels = hwhm;
      const auto rep = analyze_crosstalk(cfg);
      t.add_row({std::to_string(n), Table::num(hwhm, 2),
                 Table::num(rep.worst_isolation_db, 1) + " dB",
                 Table::pct(rep.worst_aggregate_ratio, 2),
                 Table::num(rep.crosstalk_limited_bits(), 1)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());

  Table m({"ring HWHM", "max channels (agg. isolation >= 24 dB ~ 8-bit)"});
  for (double hwhm : {0.01, 0.02, 0.05, 0.1, 0.15}) {
    m.add_row({Table::num(hwhm, 2),
               std::to_string(photonics::max_channels_for_isolation(24.0, hwhm, 64))});
  }
  std::printf("%s", m.to_string().c_str());
  std::printf(
      "\nLT-B's 8 wavelengths with high-Q rings (HWHM ~0.02 of the channel\n"
      "spacing) keep crosstalk beyond the 8-bit floor with margin; pushing to\n"
      "32-64 channels demands proportionally sharper rings, whose higher Q in\n"
      "turn tightens the thermal-tuning tolerance modeled in thermal_tuner.\n");
  return 0;
}
