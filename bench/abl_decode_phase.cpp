// abl_decode_phase — ablation A5: the P-DAC on the paper's title
// workload, LLM *decode*.  Prefill (Fig. 9's regime) is matmul-rich and
// compute-bound; autoregressive decode is GEMV-dominated, streams the
// KV cache every token, and its arithmetic intensity collapses — this
// bench quantifies how much of the P-DAC's advantage survives.
//
// Rows: energy per generated token and P-DAC saving vs context length,
// plus the prefill-vs-decode comparison for a BERT-base-sized model.
#include <cstdio>

#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const auto model = nn::bert_base(128);  // BERT-base-sized decoder stand-in

  std::printf("Ablation A5 — decode-phase (KV-cache) energy, %s-sized model\n\n",
              model.name.c_str());

  Table t({"context len", "KV cache (8b)", "MACs/token", "AI (MAC/B)",
           "E/token DAC", "E/token P-DAC", "saving"});
  for (std::size_t ctx : {128u, 256u, 512u, 1024u, 2048u, 4096u}) {
    const auto step = nn::trace_decode_step(model, ctx);
    const auto cmp = arch::compare_energy(step, cfg, params, 8);
    t.add_row({std::to_string(ctx),
               Table::num(static_cast<double>(nn::kv_cache_bytes(model, ctx, 8)) / 1e6, 1) +
                   " MB",
               Table::num(static_cast<double>(step.total_macs()) / 1e6, 1) + " M",
               Table::num(nn::arithmetic_intensity(step, 8), 1),
               Table::millijoules(cmp.baseline.total().total().joules(), 4),
               Table::millijoules(cmp.pdac.total().total().joules(), 4),
               Table::pct(cmp.total_saving())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Prefill vs decode head-to-head.
  Table h({"phase", "MACs", "AI (MAC/B)", "saving 4-bit", "saving 8-bit"});
  const auto prefill = nn::trace_forward(model);
  const auto decode = nn::trace_decode_step(model, 512);
  for (const auto& [name, trace] :
       {std::pair{"prefill seq=128", &prefill}, std::pair{"decode ctx=512", &decode}}) {
    const auto cmp4 = arch::compare_energy(*trace, cfg, params, 4);
    const auto cmp8 = arch::compare_energy(*trace, cfg, params, 8);
    h.add_row({name, Table::num(static_cast<double>(trace->total_macs()) / 1e6, 1) + " M",
               Table::num(nn::arithmetic_intensity(*trace, 8), 1),
               Table::pct(cmp4.total_saving()), Table::pct(cmp8.total_saving())});
  }
  std::printf("%s", h.to_string().c_str());
  std::printf(
      "\nDecode arithmetic intensity is ~2 orders of magnitude below prefill, so\n"
      "data movement dominates and the P-DAC saving drops from 33%% (prefill) to\n"
      "a few percent — consistent with the paper's note that P-DAC does not\n"
      "touch movement energy and with its compute-bound framing of Fig. 11.\n"
      "Within decode, longer contexts shift work toward the dynamic Q*K^T/A*V\n"
      "products whose double-rate conversions give P-DAC slightly more to save.\n");
  return 0;
}
