// abl_variation — ablation A6: Monte-Carlo robustness of the P-DAC
// under device variation (TIA gain mismatch, bias drift, MZM imbalance,
// Vπ drift).  The paper's 8.5 % bound assumes ideal components; this
// bench shows how much variation budget a fabricated P-DAC has before
// that bound degrades, and the parametric yield against error budgets.
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "core/trimming.hpp"
#include "core/variation.hpp"

int main() {
  using namespace pdac;
  core::PdacConfig nominal;
  nominal.bits = 8;
  constexpr int kTrials = 200;

  std::printf("Ablation A6 — P-DAC Monte-Carlo variation analysis (8-bit, %d devices/row)\n\n",
              kTrials);

  Table t({"sigma (all sources)", "worst err mean", "worst err p95", "mean |err|",
           "yield @10%", "yield @12%"});
  for (double sigma : {0.0, 0.005, 0.01, 0.02, 0.04, 0.08}) {
    core::VariationConfig var;
    var.tia_gain_sigma = sigma;
    var.bias_sigma = sigma * 0.1;  // bias drift is a fraction of a radian
    var.mzm_imbalance_sigma = sigma;
    var.vpi_drift_sigma = sigma * 0.5;
    var.seed = 42;
    const auto rep = core::monte_carlo_pdac(nominal, var, kTrials);
    t.add_row({Table::num(sigma, 3), Table::pct(rep.worst_error.mean(), 2),
               Table::pct(rep.worst_error_quantile(0.95), 2),
               Table::num(rep.mean_abs_error.mean(), 5), Table::pct(rep.yield(0.10), 1),
               Table::pct(rep.yield(0.12), 1)});
  }
  std::printf("%s", t.to_string().c_str());

  // Which variation source hurts most at a fixed sigma?
  std::printf("\nper-source sensitivity at sigma = 0.02:\n");
  Table s({"source", "worst err mean", "worst err p95"});
  struct Source {
    const char* name;
    core::VariationConfig var;
  };
  std::vector<Source> sources(4);
  sources[0] = {"TIA gain mismatch", {}};
  sources[0].var.tia_gain_sigma = 0.02;
  sources[1] = {"bias drift (0.02 rad)", {}};
  sources[1].var.bias_sigma = 0.02;
  sources[2] = {"MZM imbalance", {}};
  sources[2].var.mzm_imbalance_sigma = 0.02;
  sources[3] = {"Vpi drift", {}};
  sources[3].var.vpi_drift_sigma = 0.02;
  for (auto& src : sources) {
    src.var.seed = 7;
    const auto rep = core::monte_carlo_pdac(nominal, src.var, kTrials);
    s.add_row({src.name, Table::pct(rep.worst_error.mean(), 2),
               Table::pct(rep.worst_error_quantile(0.95), 2)});
  }
  std::printf("%s", s.to_string().c_str());
  // Encoding ablation: sign-magnitude removes the two's-complement
  // bit-weight cancellation that amplifies gain mismatch.
  std::printf("\nencoding comparison under TIA gain mismatch (%d devices/row):\n",
              kTrials / 2);
  Table enc({"gain sigma", "two's-complement worst", "sign-magnitude worst",
             "2C yield @12%", "SM yield @12%"});
  for (double sigma : {0.01, 0.02, 0.04}) {
    core::VariationConfig var;
    var.tia_gain_sigma = sigma;
    var.seed = 77;
    const auto twos = core::monte_carlo_pdac(nominal, var, kTrials / 2);
    const auto sm = core::monte_carlo_sign_magnitude(nominal, var, kTrials / 2);
    enc.add_row({Table::num(sigma, 2), Table::pct(twos.worst_error.mean(), 1),
                 Table::pct(sm.worst_error.mean(), 1), Table::pct(twos.yield(0.12), 1),
                 Table::pct(sm.yield(0.12), 1)});
  }
  std::printf("%s", enc.to_string().c_str());

  // Gain trimming (production-test calibration) closes the gap.
  std::printf("\nwith per-bank gain trimming (trimming.hpp), sigma = 0.02, %d devices:\n",
              kTrials / 4);
  Table tr({"metric", "before trim", "after trim"});
  {
    core::VariationConfig var;
    var.tia_gain_sigma = 0.02;
    var.bias_sigma = 0.002;
    var.vpi_drift_sigma = 0.01;
    var.seed = 99;
    Rng rng(var.seed);
    stats::Running before, after;
    int yield_before = 0, yield_after = 0;
    const int n = kTrials / 4;
    for (int i = 0; i < n; ++i) {
      core::PerturbedPdacModel device(nominal, var, rng);
      const auto res = core::trim_pdac(device);
      before.add(res.worst_error_before);
      after.add(res.worst_error_after);
      if (res.worst_error_before < 0.10) ++yield_before;
      if (res.worst_error_after < 0.10) ++yield_after;
    }
    tr.add_row({"worst err mean", Table::pct(before.mean(), 2), Table::pct(after.mean(), 2)});
    tr.add_row({"worst err max", Table::pct(before.max(), 2), Table::pct(after.max(), 2)});
    tr.add_row({"yield @10%", Table::pct(static_cast<double>(yield_before) / n, 1),
                Table::pct(static_cast<double>(yield_after) / n, 1)});
  }
  std::printf("%s", tr.to_string().c_str());

  std::printf(
      "\nFindings: (1) the *average* encode error barely moves below ~1%%\n"
      "matching, but the worst single code degrades quickly — small negative\n"
      "codes sum nearly cancelling two's-complement bit weights, amplifying\n"
      "gain mismatch; (2) Vpi drift is the most damaging source because it\n"
      "scales the pi/2 bias point and shifts *every* code including zero;\n"
      "(3) MZM splitting imbalance is benign: under push-pull drive it lands\n"
      "in quadrature and the detected real component is unaffected.  As the\n"
      "trimming table shows, the same per-bank gain trimming binary-weighted\n"
      "electrical DACs rely on restores the nominal 8.5%% bound and full\n"
      "parametric yield from a handful of probe codes per bank.\n");
  return 0;
}
