// abl_mzi_baseline — ablation A11: the SVD-programmed MZI mesh baseline
// vs the dynamically-operated DDot + P-DAC.
//
// Reproduces the paper's §II motivation quantitatively: an MZI mesh
// computes W·x at line rate once programmed, but every *new* operand
// matrix costs a CPU-side SVD + phase decomposition (≈1.5 ms at 12×12,
// O(n³)) plus thermal settling.  Static weights amortize that over a
// whole inference; the transformer's dynamic attention operands (new Q,
// K, V every pass) cannot — which is why LT abandoned meshes and why
// the P-DAC's DAC-free dynamic modulation matters.
#include <cstdio>

#include "common/table.hpp"
#include "photonics/mzi_mesh.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  using photonics::MziSvdCore;

  std::printf("Ablation A11 — MZI mesh (SVD mapping) vs dynamic DDot operation\n\n");

  // Mapping cost vs mesh size (the paper's 1.5 ms anchor at n = 12).
  Table t({"mesh size", "interferometers", "mapping latency", "cycles lost @5 GHz"});
  for (std::size_t n : {4u, 8u, 12u, 16u, 32u, 64u}) {
    const auto latency = MziSvdCore::mapping_latency(n);
    t.add_row({std::to_string(n) + "x" + std::to_string(n),
               std::to_string(2 * photonics::MziMesh::interferometers(n)),
               Table::num(latency.milliseconds(), 3) + " ms",
               Table::num(latency.seconds() * 5e9 / 1e6, 1) + " M"});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Transformer inference: how often would a mesh need remapping?
  const auto model = nn::bert_base(128);
  const auto trace = nn::trace_forward(model);
  std::size_t dynamic_ops = 0;
  std::size_t static_ops = 0;
  for (const auto& g : trace.gemms) {
    (g.static_weights ? static_ops : dynamic_ops) += g.repeats;
  }
  const double remap_seconds =
      static_cast<double>(dynamic_ops) * MziSvdCore::mapping_latency(12).seconds();
  std::printf("BERT-base inference: %zu static GEMMs (mapped once, amortized) but\n"
              "%zu dynamic operand matrices per pass; remapping them on a 12x12 mesh\n"
              "would cost %.1f ms of SVD alone vs the ~273 us the whole inference\n"
              "takes on LT-B — a %.0fx slowdown before any compute happens.\n\n",
              static_ops, dynamic_ops, remap_seconds * 1e3,
              remap_seconds / 273e-6);

  // Functional sanity: our mesh really computes W·x (spot check).
  Rng rng(5);
  const Matrix w = Matrix::random_gaussian(12, 12, rng);
  MziSvdCore core(12);
  core.program(w);
  const auto x = rng.uniform_vector(12, -1.0, 1.0);
  const auto y = core.apply(x);
  double worst = 0.0;
  for (std::size_t i = 0; i < 12; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < 12; ++j) expect += w(i, j) * x[j];
    worst = std::max(worst, std::abs(y[i] - expect));
  }
  std::printf("mesh functional check: max |mesh(x) - W*x| = %.2e over a 12x12 matvec\n"
              "(the mesh is exact; its cost is the *mapping*, not the optics).\n",
              worst);
  return 0;
}
