// abl_seqlen_sweep — ablation A10: P-DAC saving vs sequence length.
//
// The paper evaluates two fixed points (BERT at 128 tokens, DeiT at
// 197).  Sequence length moves the workload composition: dynamic
// Q·Kᵀ/A·V work grows quadratically while projection/FFN work grows
// linearly, and weight traffic is constant per layer — so the
// attention-vs-FFN savings gap and the total saving both drift with
// context.  This bench sweeps the BERT-base shape from 32 to 2048
// tokens at both precisions.
#include <cstdio>

#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();

  std::printf("Ablation A10 — energy saving vs sequence length (BERT-base shape)\n\n");

  Table t({"seq len", "dynamic MAC share", "saving 4b", "saving 8b", "attn 8b", "ffn 8b"});
  for (std::size_t seq : {32u, 64u, 128u, 197u, 256u, 512u, 1024u, 2048u}) {
    const auto trace = nn::trace_forward(nn::bert_base(seq));
    std::size_t dynamic_macs = 0;
    for (const auto& g : trace.gemms) {
      if (!g.static_weights) dynamic_macs += g.macs();
    }
    const double dyn_share =
        static_cast<double>(dynamic_macs) / static_cast<double>(trace.total_macs());
    const auto cmp4 = arch::compare_energy(trace, cfg, params, 4);
    const auto cmp8 = arch::compare_energy(trace, cfg, params, 8);
    t.add_row({std::to_string(seq), Table::pct(dyn_share),
               Table::pct(cmp4.total_saving()), Table::pct(cmp8.total_saving()),
               Table::pct(cmp8.saving(nn::OpClass::kAttention)),
               Table::pct(cmp8.saving(nn::OpClass::kFfn))});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\npaper anchors: seq 128 -> 32.3%% total (BERT), seq 197 -> 32.3%% (DeiT).\n"
      "Longer sequences amortize weight traffic AND raise the dynamic-product\n"
      "share, both of which favor the P-DAC.  Past ~512 tokens the saving even\n"
      "exceeds the 47.7%% broadcast-rate ceiling of Fig. 11, because dynamic\n"
      "Q*K^T/A*V operands cannot be broadcast-shared and convert at double\n"
      "rate — every one of those conversions is a DAC the P-DAC eliminates.\n");
  return 0;
}
