// abl_drift_hysteresis — A26: drift-adaptive hysteresis recovery
// (DESIGN.md §16, faults/drift_tracker.hpp, serve/backend_pool.hpp).
//
// Continuous thermal drift (a per-step bias random walk) is the storm
// class A22 showed dominates recovery energy: an always-re-trim guard
// (drift_band = 1.0) burns a recovery ladder on every product the walk
// nudges past the floating-point band, even though the wander is orders
// of magnitude below accuracy-relevant error.  The hysteresis band
// absorbs sub-accuracy drift and the drift tracker re-trims proactively
// only on genuine excursions.  Four measurements, each gated:
//
//   1. Zero-drift identity — with no storm attached, the banded +
//      governed + proactive configuration must be bit-identical to the
//      band-1.0 baseline, product for product, with identical event
//      counts (no rung, no drift tile, no probe on clean hardware).
//   2. Drift sweep — walk rate × hysteresis band grid over a decode
//      product stream; per cell: re-trims (proactive split), governed
//      refusals, absorbed drift tiles, decode cosine vs the fp64
//      reference, and recovery energy (recovery re-runs priced by
//      arch::event_energy plus arch::recalibration_energy over the
//      self-test probes).
//   3. Headline gate at the highest drift rate — the banded policy must
//      spend >= 2x fewer re-trims AND measurably less recovery energy
//      than the always-re-trim baseline, at decode cosine no worse than
//      the baseline's (epsilon 1e-9: the band admits reassociation-scale
//      wander only).
//   4. Serving quarantine — a 2-backend pool with one drift-stormed
//      backend must quarantine it (>= 1 quarantine), keep goodput > 0
//      with zero failed requests, and run canary probes; readmissions
//      are reported (the probe path force-re-trims the slot clean).
//
// Writes machine-readable BENCH_drift.json (default: repository root).
//
// Usage:
//   abl_drift_hysteresis            # full sweep
//   abl_drift_hysteresis --smoke    # CI smoke: same code paths, small counts
//   abl_drift_hysteresis --out FILE # JSON destination
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "eval/report.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "nn/backend.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

constexpr std::uint64_t kSeed = 2035;

// Decode-product shape: 16x24 activations against a stationary 24x32
// weight on the 8x8 array — 8 verified tiles per product.
constexpr std::size_t kRows = 16;
constexpr std::size_t kInner = 24;
constexpr std::size_t kCols = 32;

faults::LaneBankConfig bank_config() {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = kSeed;  // one fabrication draw for every run
  return cfg;
}

/// One policy under test: the hysteresis band plus the §16 governor.
/// Both sides of every comparison share the identical ladder bounds and
/// re-trim window — only the band and the proactive rung differ, so the
/// sweep isolates the hysteresis policy itself.
faults::GuardedBackendConfig guarded_config(double band, bool proactive) {
  faults::GuardedBackendConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 8;
  cfg.guard.drift_band = band;
  cfg.escalation.proactive_retrim = proactive;
  cfg.escalation.retrim_cooldown_products = 4;
  cfg.escalation.window_retrims = 16;
  cfg.escalation.window_products = 32;
  // Pure-drift storms: fencing is for hard faults.  A governed-out
  // re-trim falls through to a best-effort product (unrecovered++),
  // whose error is bounded by the walk itself — sub-accuracy.
  cfg.escalation.allow_fence = false;
  return cfg;
}

struct DecodeRun {
  double cosine{0.0};  ///< mean decode cosine vs the fp64 reference
  double recovery_uj{0.0};
  faults::HealthSnapshot snap;
  faults::DriftSnapshot drift;
  std::vector<Matrix> outputs;  ///< kept only for the identity gate
};

double price_uj(const ptc::EventCounter& ev, const arch::LtConfig& lt,
                const arch::PowerParams& params) {
  return arch::event_energy(ev, lt, params, 8, arch::SystemVariant::kPdacBased).joules() * 1e6;
}

/// Decode `products` products through one guarded backend with a
/// bias-walk storm of `walk_sigma` rad/step advancing one step per tile
/// (0 = no storm attached).  Identical seeds everywhere, so two calls
/// differing only in policy see the same fabrication draw, the same walk
/// trajectory and the same operand stream.
DecodeRun run_decode(double band, bool proactive, double walk_sigma, std::size_t products,
                     bool keep_outputs, const arch::LtConfig& lt,
                     const arch::PowerParams& params) {
  faults::LaneBank bank(bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank, guarded_config(band, proactive));

  faults::FaultSchedule schedule;
  std::unique_ptr<faults::FaultInjector> injector;
  if (walk_sigma > 0.0) {
    schedule.cfg.lanes = bank.lanes();
    schedule.cfg.bits = 8;
    schedule.cfg.horizon_steps = products * 16 + 16;
    schedule.cfg.bias_walk_sigma_per_step = walk_sigma;
    schedule.cfg.seed = kSeed + 7;  // one walk trajectory for every policy
    injector = std::make_unique<faults::FaultInjector>(bank, schedule);
    backend.attach_storm(injector.get(), 1);
  }

  Rng rng(kSeed + 13);
  const Matrix b = Matrix::random_gaussian(kInner, kCols, rng, 0.0, 1.0);
  nn::ReferenceBackend ref;

  DecodeRun run;
  for (std::size_t t = 0; t < products; ++t) {
    const Matrix a = Matrix::random_gaussian(kRows, kInner, rng, 0.0, 1.0);
    Matrix c = backend.matmul(a, b);
    run.cosine += stats::compare(c.data(), ref.matmul(a, b).data()).cosine;
    if (keep_outputs) run.outputs.push_back(std::move(c));
  }
  run.cosine /= static_cast<double>(products);
  run.snap = backend.monitor().snapshot();
  run.drift = backend.drift().snapshot();

  arch::RecalibrationCost recal;
  recal.probe_events = run.snap.probe_events;
  recal.retrims = run.snap.retrims;
  run.recovery_uj =
      price_uj(run.snap.retry_events, lt, params) +
      arch::recalibration_energy(recal, lt, params, 8, arch::SystemVariant::kPdacBased)
              .joules() *
          1e6;
  return run;
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)) == 0;
}

struct SweepCell {
  double walk_sigma{};
  double band{};
  DecodeRun run;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_drift.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  std::printf("Ablation A26 — drift-adaptive hysteresis recovery (%s)\n\n",
              smoke ? "smoke" : "full");

  const arch::LtConfig lt = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const std::size_t products = smoke ? 32 : 96;
  const double kBand = 14.0;  // headline hysteresis band (drift_band)
  bool all_pass = true;

  // --- 1. zero-drift identity ------------------------------------------------
  // No storm: the banded + proactive + governed policy must be pure
  // observation, bit-identical to the band-1.0 baseline with identical
  // event counts — enabling the feature costs nothing on clean hardware.
  const DecodeRun id_base = run_decode(1.0, false, 0.0, products, true, lt, params);
  const DecodeRun id_band = run_decode(kBand, true, 0.0, products, true, lt, params);
  bool identity = id_base.outputs.size() == id_band.outputs.size();
  for (std::size_t t = 0; identity && t < id_base.outputs.size(); ++t) {
    identity = bit_identical(id_base.outputs[t], id_band.outputs[t]);
  }
  const bool events_identical =
      id_base.snap.tiles_checked == id_band.snap.tiles_checked &&
      id_base.snap.mismatched_tiles == 0 && id_band.snap.mismatched_tiles == 0 &&
      id_base.snap.retries == 0 && id_band.snap.retries == 0 &&
      id_base.snap.retrims == 0 && id_band.snap.retrims == 0 &&
      id_base.snap.drift_tiles == 0 && id_band.snap.drift_tiles == 0 &&
      id_base.snap.proactive_retrims == 0 && id_band.snap.proactive_retrims == 0 &&
      id_base.snap.governed_retrims == 0 && id_band.snap.governed_retrims == 0;
  const bool identity_pass = identity && events_identical;
  std::printf("zero drift: %zu products bit-identical across policies: %s; "
              "event counts identical and all-zero: %s -> %s\n\n",
              products, identity ? "yes" : "NO", events_identical ? "yes" : "NO",
              identity_pass ? "PASS" : "FAIL");
  all_pass = all_pass && identity_pass;

  // --- 2. drift sweep: walk rate x hysteresis band ---------------------------
  // Walk sigmas sized to the guard band itself: the band is
  // reassociation-scale (fp_slack·eps·k·(fan+1)·mag), so "drift" here is
  // wander *below the accuracy budget* — exactly the class the paper's
  // periodic re-calibration overpays for.
  const std::vector<double> rates = smoke ? std::vector<double>{2e-13, 8e-13}
                                          : std::vector<double>{5e-14, 2e-13, 8e-13};
  const std::vector<double> bands = {1.0, 4.0, kBand};

  std::vector<SweepCell> sweep;
  std::printf("%10s %6s %9s %10s %9s %9s %7s %11s %13s\n", "walk[rad]", "band", "retrims",
              "proactive", "governed", "driftTile", "unrec", "cosine", "recovery[uJ]");
  for (const double rate : rates) {
    for (const double band : bands) {
      SweepCell cell;
      cell.walk_sigma = rate;
      cell.band = band;
      // band 1.0 is the always-re-trim baseline: no proactive rung, the
      // ladder fires on every over-tolerance product.
      cell.run = run_decode(band, band > 1.0, rate, products, false, lt, params);
      std::printf("%10.0e %6.1f %9zu %10zu %9zu %9zu %7zu %11.8f %13.4f\n", rate, band,
                  cell.run.snap.retrims, cell.run.snap.proactive_retrims,
                  cell.run.snap.governed_retrims, cell.run.snap.drift_tiles,
                  cell.run.snap.unrecovered, cell.run.cosine, cell.run.recovery_uj);
      sweep.push_back(std::move(cell));
    }
  }
  std::printf("\n");

  // --- 3. headline gate at the highest drift rate ----------------------------
  const double high = rates.back();
  const SweepCell* base = nullptr;
  const SweepCell* banded = nullptr;
  for (const SweepCell& cell : sweep) {
    if (cell.walk_sigma == high && cell.band == 1.0) base = &cell;
    if (cell.walk_sigma == high && cell.band == kBand) banded = &cell;
  }
  const bool retrim_pass =
      base->run.snap.retrims >= 2 * std::max<std::size_t>(banded->run.snap.retrims, 1);
  const bool energy_pass = banded->run.recovery_uj < base->run.recovery_uj;
  const bool cosine_pass = banded->run.cosine >= base->run.cosine - 1e-9;
  std::printf("high drift (%.0e rad/step): re-trims %zu -> %zu (>= 2x fewer) -> %s\n", high,
              base->run.snap.retrims, banded->run.snap.retrims, retrim_pass ? "PASS" : "FAIL");
  std::printf("recovery energy %.4f uJ -> %.4f uJ (lower) -> %s\n", base->run.recovery_uj,
              banded->run.recovery_uj, energy_pass ? "PASS" : "FAIL");
  std::printf("decode cosine %.9f vs baseline %.9f (no worse, eps 1e-9) -> %s\n\n",
              banded->run.cosine, base->run.cosine, cosine_pass ? "PASS" : "FAIL");
  all_pass = all_pass && retrim_pass && energy_pass && cosine_pass;

  // --- 4. serving quarantine/readmission -------------------------------------
  // Two identically-fabricated backends; backend 0 alone takes an
  // accuracy-relevant drift-fault burst (every lane hit inside a short
  // horizon).  The pool must pull it from rotation (quarantine), keep
  // every request terminal with goodput > 0 on the healthy slot, and —
  // because the burst is finite — probe the slot clean again and readmit
  // it (the probe path force-re-trims until the canary verifies).
  serve::BackendPoolConfig pool_cfg;
  pool_cfg.backends = 2;
  pool_cfg.bank = bank_config();
  pool_cfg.bank.wavelengths = 8;
  pool_cfg.guarded = guarded_config(kBand, true);
  {
    faults::LaneBank probe(pool_cfg.bank);
    pool_cfg.guarded.path = faults::auto_execution_path(probe);
  }
  pool_cfg.retrim_budget = 4;
  pool_cfg.retrim_window = 1024;
  pool_cfg.quarantine.enabled = true;
  pool_cfg.quarantine.excursion_lanes = 1;
  pool_cfg.quarantine.retrim_storm = 3;
  pool_cfg.quarantine.probe_backoff = 64;
  pool_cfg.quarantine.readmit_clean_probes = 2;
  serve::BackendPool pool(pool_cfg);

  faults::FaultScheduleConfig storm;
  storm.lanes = pool.bank(0).lanes();
  storm.bits = 8;
  storm.horizon_steps = 48;     // burst: exhausted after a few products
  storm.drift_fault_rate = 1.0; // every lane suffers one drift event
  storm.seed = kSeed + 29;
  pool.attach_storm(0, faults::generate_fault_schedule(storm), 1);

  const std::size_t d_model = 48;
  std::vector<nn::Linear> models;
  {
    Rng mrng(kSeed + 31);
    models.emplace_back(d_model, d_model);
    models.back().init_random(mrng);
  }
  serve::WorkloadConfig wl;
  wl.requests = smoke ? 16 : 32;
  wl.mean_interarrival = 24.0;
  wl.d_model = d_model;
  wl.models = 1;
  wl.deadline_slack = 0.0;  // no deadlines: completion is the only exit
  wl.seed = kSeed + 37;
  const std::vector<serve::Request> reqs = serve::generate_workload(wl);

  serve::ServingConfig scfg;
  scfg.max_batch = 4;
  scfg.max_queue = wl.requests;
  serve::ServingEngine engine(pool, models, scfg);
  const serve::ServingReport rep = engine.run(reqs);

  eval::ServingSummary ss;
  ss.requests = reqs.size();
  ss.completed = rep.completed;
  ss.shed = rep.shed;
  ss.failed = rep.failed;
  ss.tokens = rep.tokens_emitted;
  ss.goodput_tokens = rep.goodput_tokens;
  ss.makespan_cycles = rep.makespan;
  ss.p50_token_gap = serve::percentile(rep.token_gaps, 50.0);
  ss.p99_token_gap = serve::percentile(rep.token_gaps, 99.0);
  ss.p50_request_latency = serve::percentile(rep.request_latencies, 50.0);
  ss.p99_request_latency = serve::percentile(rep.request_latencies, 99.0);
  ss.throttled_products = rep.throttled_products;
  for (const serve::BackendServeStats& b : rep.backends) {
    ss.energy_uj += price_uj(b.events, lt, params);
    ss.energy_uj += price_uj(b.health.checksum_events, lt, params);
  }
  ss.goodput_per_joule = ss.energy_uj > 0.0
                             ? static_cast<double>(rep.goodput_tokens) / (ss.energy_uj * 1e-6)
                             : 0.0;
  ss.quarantines = rep.quarantines;
  ss.readmissions = rep.readmissions;
  ss.canary_probes = rep.canary_probes;
  for (const serve::BackendServeStats& b : rep.backends) {
    eval::ServingBackendRow row;
    row.tokens = b.tokens;
    row.products = b.products;
    row.utilization = rep.makespan > 0
                          ? static_cast<double>(b.busy_cycles) / static_cast<double>(rep.makespan)
                          : 0.0;
    row.final_health = b.final_health;
    row.alive = b.alive;
    row.quarantined = b.quarantined;
    row.fences = b.health.fences;
    row.unrecovered = b.health.unrecovered;
    row.drifting_lanes = b.drift.drifting;
    row.excursion_lanes = b.drift.excursions;
    ss.backends.push_back(row);
  }
  std::printf("%s\n", eval::render_serving("drift-stormed pool (quarantine live)", ss).c_str());

  const bool quarantine_pass = rep.quarantines >= 1 && rep.failed == 0 &&
                               rep.goodput_tokens > 0 && rep.reconciled(reqs.size()) &&
                               rep.canary_probes >= 1;
  std::printf("quarantines %zu (>= 1), canary probes %zu (>= 1), readmissions %zu, "
              "failed %zu (== 0), goodput %zu (> 0) -> %s\n\n",
              rep.quarantines, rep.canary_probes, rep.readmissions, rep.failed,
              rep.goodput_tokens, quarantine_pass ? "PASS" : "FAIL");
  all_pass = all_pass && quarantine_pass;

  // --- JSON -------------------------------------------------------------------
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"drift_hysteresis\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"zero_drift\": {\"products\": %zu, \"bit_identical\": %s, "
               "\"events_identical\": %s},\n",
               products, identity ? "true" : "false", events_identical ? "true" : "false");
  std::fprintf(f, "  \"sweep\": [");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepCell& cell = sweep[i];
    std::fprintf(f,
                 "%s{\"walk_sigma\": %.1e, \"band\": %.1f, \"retrims\": %zu, "
                 "\"proactive_retrims\": %zu,\n            \"governed_retrims\": %zu, "
                 "\"drift_tiles\": %zu, \"unrecovered\": %zu,\n            "
                 "\"cosine\": %.9f, \"recovery_uj\": %.4f}",
                 i == 0 ? "" : ",\n            ", cell.walk_sigma, cell.band,
                 cell.run.snap.retrims, cell.run.snap.proactive_retrims,
                 cell.run.snap.governed_retrims, cell.run.snap.drift_tiles,
                 cell.run.snap.unrecovered, cell.run.cosine, cell.run.recovery_uj);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f,
               "  \"headline\": {\"walk_sigma\": %.1e, \"retrims_baseline\": %zu, "
               "\"retrims_banded\": %zu,\n               \"recovery_uj_baseline\": %.4f, "
               "\"recovery_uj_banded\": %.4f,\n               \"cosine_baseline\": %.9f, "
               "\"cosine_banded\": %.9f},\n",
               high, base->run.snap.retrims, banded->run.snap.retrims, base->run.recovery_uj,
               banded->run.recovery_uj, base->run.cosine, banded->run.cosine);
  std::fprintf(f,
               "  \"serving\": {\"requests\": %zu, \"completed\": %zu, \"shed\": %zu, "
               "\"failed\": %zu,\n              \"goodput_tokens\": %zu, \"quarantines\": %zu, "
               "\"readmissions\": %zu, \"canary_probes\": %zu},\n",
               reqs.size(), rep.completed, rep.shed, rep.failed, rep.goodput_tokens,
               rep.quarantines, rep.readmissions, rep.canary_probes);
  std::fprintf(f, "  \"pass\": %s\n}\n", all_pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::printf(
      "\nFindings: an always-re-trim guard pays a full recovery ladder for\n"
      "every product a thermal walk nudges past the floating-point band,\n"
      "even though the wander is orders of magnitude below accuracy-\n"
      "relevant error.  The hysteresis band absorbs that wander as watched\n"
      "drift tiles, the EWMA tracker converts sustained growth into one\n"
      "proactive off-path re-trim per excursion, and the windowed governor\n"
      "bounds worst-case probe burn — same decode cosine, a fraction of\n"
      "the re-trims and recovery energy.  At serving level the same drift\n"
      "signal drives quarantine: the stormed backend leaves rotation, the\n"
      "healthy slot keeps goodput flowing with zero failed requests, and\n"
      "canary probes earn the slot readmission once re-trims hold.\n");

  if (!all_pass) {
    std::fprintf(stderr, "FAIL: one or more A26 acceptance gates failed\n");
    return 1;
  }
  return 0;
}
