// perf_weight_cache — cold vs warm per-token decode latency under the
// weight-stationary operand cache (DESIGN.md §10).
//
// Replays BERT-base KV-cache decode: per token every weight GEMM is a
// GEMV (m = 1) against a *static* weight matrix, plus the per-head
// score/context products against the KV cache (activation×activation,
// never cached).  A cold token prepares every weight's encoding from
// scratch (the cache is cleared first); a warm token reuses the
// prepared operands.  The ratio is the prepare-once/run-many payoff the
// cache buys decode loops and accuracy sweeps.
//
// Verifies bit-identity three ways — warm token == cold token ==
// cache-disabled backend — then writes machine-readable
// BENCH_weight_cache.json (default: the repository root, so the perf
// trajectory is tracked across builds).
//
// Usage:
//   perf_weight_cache             # BERT-base, 12 layers, context 128
//   perf_weight_cache --smoke     # tiny shapes for CI smoke coverage
//   perf_weight_cache --layers N  # override the layer count
//   perf_weight_cache --out FILE  # JSON destination
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "eval/report.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"
#include "nn/ops.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

struct DecodeShapes {
  std::size_t d_model, heads, d_ff, context;
  [[nodiscard]] std::size_t d_head() const { return d_model / heads; }
};

/// One transformer layer's static weights plus its (fixed, pre-sliced)
/// KV cache for the benchmark.
struct DecodeLayer {
  nn::Linear q, k, v, o, up, down;
  std::vector<Matrix> kh_t;  ///< per head: (d_head × context), already Kᵀ
  std::vector<Matrix> vh;    ///< per head: (context × d_head)

  DecodeLayer(const DecodeShapes& s, Rng& rng)
      : q(s.d_model, s.d_model),
        k(s.d_model, s.d_model),
        v(s.d_model, s.d_model),
        o(s.d_model, s.d_model),
        up(s.d_model, s.d_ff),
        down(s.d_ff, s.d_model) {
    q.init_random(rng);
    k.init_random(rng);
    v.init_random(rng);
    o.init_random(rng);
    up.init_random(rng);
    down.init_random(rng);
    for (std::size_t h = 0; h < s.heads; ++h) {
      kh_t.push_back(Matrix::random_gaussian(s.d_head(), s.context, rng, 0.0, 0.5));
      vh.push_back(Matrix::random_gaussian(s.context, s.d_head(), rng, 0.0, 0.5));
    }
  }
};

Matrix head_slice(const Matrix& m, std::size_t h, std::size_t dh) {
  Matrix out(m.rows(), dh);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < dh; ++c) out(r, c) = m(r, h * dh + c);
  }
  return out;
}

/// One decode step (m = 1) through every layer: weight GEMVs route
/// through the backend's operand cache via Linear::forward, the KV
/// score/context products stay on the uncached matmul path.
Matrix decode_token(const Matrix& x0, const std::vector<DecodeLayer>& layers,
                    const DecodeShapes& s, nn::GemmBackend& backend) {
  Matrix x = x0;
  const std::size_t dh = s.d_head();
  for (const DecodeLayer& layer : layers) {
    const Matrix q = layer.q.forward(x, backend);
    (void)layer.k.forward(x, backend);  // appends to the KV cache in a real server
    (void)layer.v.forward(x, backend);

    Matrix context(1, s.d_model);
    for (std::size_t h = 0; h < s.heads; ++h) {
      const Matrix qh = head_slice(q, h, dh);
      Matrix scores = backend.matmul(qh, layer.kh_t[h]);
      nn::scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(dh)));
      nn::softmax_rows(scores);
      const Matrix ctx_h = backend.matmul(scores, layer.vh[h]);
      for (std::size_t c = 0; c < dh; ++c) context(0, h * dh + c) = ctx_h(0, c);
    }
    x = layer.o.forward(context, backend);

    Matrix hidden = layer.up.forward(x, backend);
    nn::gelu(hidden);
    x = layer.down.forward(hidden, backend);
  }
  return x;
}

double time_token(const Matrix& x0, const std::vector<DecodeLayer>& layers,
                  const DecodeShapes& s, nn::GemmBackend& backend, Matrix* out) {
  const auto t0 = std::chrono::steady_clock::now();
  *out = decode_token(x0, layers, s, backend);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::size_t layer_override = 0;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_weight_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--layers") == 0 && i + 1 < argc) {
      layer_override = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  // BERT-base decode shapes (d=768, h=12, ff=3072), KV context 128; the
  // smoke mode shrinks everything so CI exercises the same code path in
  // milliseconds.
  const DecodeShapes shapes = smoke ? DecodeShapes{64, 4, 256, 16}
                                    : DecodeShapes{768, 12, 3072, 128};
  const std::size_t n_layers = layer_override != 0 ? layer_override : (smoke ? 2 : 12);
  const std::size_t cold_iters = 3;
  const std::size_t warm_iters = smoke ? 4 : 6;

  std::printf("perf_weight_cache — weight-stationary decode, %s mode\n",
              smoke ? "smoke" : "full");
  std::printf("model: d_model=%zu heads=%zu d_ff=%zu context=%zu layers=%zu\n\n",
              shapes.d_model, shapes.heads, shapes.d_ff, shapes.context, n_layers);

  Rng rng(42);
  std::vector<DecodeLayer> layers;
  layers.reserve(n_layers);
  for (std::size_t l = 0; l < n_layers; ++l) layers.emplace_back(shapes, rng);
  const Matrix x0 = Matrix::random_gaussian(1, shapes.d_model, rng, 0.0, 0.5);

  // Cache sized to hold every weight of the model (prepared operands are
  // the same element count as the weights, stored as doubles).
  nn::OperandCacheConfig cache_cfg;
  cache_cfg.capacity_bytes = 2ull << 30;
  nn::PhotonicBackend backend(core::make_pdac_driver(8), ptc::GemmConfig{}, cache_cfg);

  // Cold: every token starts from an empty cache — the per-token cost of
  // re-preparing every weight, which is what the engine paid before the
  // cache existed.
  Matrix cold_out;
  double cold_ms = 0.0;
  for (std::size_t i = 0; i < cold_iters; ++i) {
    backend.cache().clear();
    Matrix out;
    const double ms = time_token(x0, layers, shapes, backend, &out);
    cold_ms = i == 0 ? ms : std::min(cold_ms, ms);
    cold_out = std::move(out);
  }

  // Warm: prepared operands resident; steady-state decode.
  Matrix warm_out;
  double warm_ms = 0.0;
  (void)decode_token(x0, layers, shapes, backend);  // fill the cache
  for (std::size_t i = 0; i < warm_iters; ++i) {
    Matrix out;
    const double ms = time_token(x0, layers, shapes, backend, &out);
    warm_ms = i == 0 ? ms : std::min(warm_ms, ms);
    warm_out = std::move(out);
  }
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  // Bit-identity: warm == cold == a backend that never caches.
  nn::OperandCacheConfig no_cache;
  no_cache.enabled = false;
  nn::PhotonicBackend uncached(core::make_pdac_driver(8), ptc::GemmConfig{}, no_cache);
  const Matrix uncached_out = decode_token(x0, layers, shapes, uncached);
  const bool identical =
      bit_identical(warm_out, cold_out) && bit_identical(warm_out, uncached_out);

  const nn::OperandCacheStats& cs = backend.operand_cache()->stats();
  eval::OperandCacheSummary summary;
  summary.hits = cs.hits;
  summary.misses = cs.misses;
  summary.evictions = cs.evictions;
  summary.invalidations = cs.invalidations;
  summary.oversized_rejects = cs.oversized_rejects;
  summary.resident_bytes = cs.resident_bytes;
  summary.capacity_bytes = backend.operand_cache()->config().capacity_bytes;
  summary.entries = cs.entries;
  std::printf("%s\n", eval::render_operand_cache("operand cache (whole run)", summary).c_str());

  std::printf("cold per-token: %.2f ms\n", cold_ms);
  std::printf("warm per-token: %.2f ms\n", warm_ms);
  std::printf("warm speedup:   %.2fx\n", speedup);
  std::printf("bit-identical (warm == cold == uncached): %s\n\n", identical ? "yes" : "NO");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"weight_cache\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"model\": {\"d_model\": %zu, \"heads\": %zu, \"d_ff\": %zu, "
               "\"context\": %zu, \"layers\": %zu},\n",
               shapes.d_model, shapes.heads, shapes.d_ff, shapes.context, n_layers);
  std::fprintf(f, "  \"cold_ms_per_token\": %.3f,\n  \"warm_ms_per_token\": %.3f,\n",
               cold_ms, warm_ms);
  std::fprintf(f, "  \"warm_speedup\": %.3f,\n  \"bit_identical\": %s,\n", speedup,
               identical ? "true" : "false");
  std::fprintf(f,
               "  \"cache\": {\"hits\": %llu, \"misses\": %llu, \"evictions\": %llu, "
               "\"invalidations\": %llu, \"oversized_rejects\": %llu, "
               "\"resident_bytes\": %llu, \"entries\": %llu}\n}\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions),
               static_cast<unsigned long long>(cs.invalidations),
               static_cast<unsigned long long>(cs.oversized_rejects),
               static_cast<unsigned long long>(cs.resident_bytes),
               static_cast<unsigned long long>(cs.entries));
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr, "FAIL: cached decode diverged from the uncached baseline\n");
    return 1;
  }
  // ≥3× warm speedup is the acceptance bar at full BERT-base shapes;
  // smoke shapes are too small for a stable ratio and only gate identity.
  if (!smoke && speedup < 3.0) {
    std::fprintf(stderr, "FAIL: warm speedup %.2fx below the 3x acceptance bar\n", speedup);
    return 1;
  }
  return 0;
}
