// perf_kv_decode — incremental KV-prepared attention vs from-scratch
// prepare vs the unprepared baseline on long decode (DESIGN.md §17).
//
// Replays one multi-head attention decode stream to a long context on
// the full-optics + ADC configuration and measures ms/token at
// checkpoint lengths under three execution modes:
//   * incremental — forward_decode(kPrepared) over a PhotonicBackend
//     whose KvPreparedCache is enabled: the per-head K/V operands stay
//     resident and every step extends them in place (append_bt_rows /
//     append_b_rows), O(1) prepare work per token;
//   * fresh — the same prepared route with the KV cache disabled, so
//     every step re-prepares the whole history from scratch (the O(t)
//     per-token cost the appends eliminate);
//   * unprepared — forward_decode(kUnprepared): plain backend.matmul
//     with a manually staged Kᵀ, the pre-§17 baseline.
// The trio runs on the scalar kernel and SIMD tiers (physical P-DAC
// driver) and the integer quant tier (bit-true DAC chain, its on-grid
// precondition), mirroring perf_kernel's tier ladder.
//
// The contract is exactness, so the bench GATES before it brags:
//   * per-token digests (FNV-1a over every output row) must match
//     across all three modes on every tier — bit-identity at EVERY
//     length, not just the last;
//   * cumulative EventCounter must match across modes field for field
//     (preparation removes simulator work, never modeled hardware work);
//   * the incremental run must append, never rebuild (the loud-first-
//     token stream keeps the running max-abs stable by construction);
//   * decode cosine: the SIMD tier's final context row vs the scalar
//     kernel's, and the quant tier's vs the scalar kernel on the same
//     bit-true chain, must stay >= 1 - 1e-6.
// In full mode the incremental path must additionally clear the >=2x
// ms/token bar vs the unprepared baseline at the longest context on
// every tier — the PR's acceptance criterion.
//
// Writes machine-readable BENCH_kv.json (default: repository root).
//
// Usage:
//   perf_kv_decode             # full shapes, 2x gate enforced
//   perf_kv_decode --smoke     # tiny shapes, identity gates only
//   perf_kv_decode --out FILE  # JSON destination
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "nn/attention.hpp"
#include "nn/backend.hpp"
#include "nn/kv_cache.hpp"
#include "ptc/gemm_engine.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

enum class Mode { kIncremental, kFresh, kUnprepared };

/// The hot-path configuration the tiers target: full optics + ADC.
ptc::GemmConfig hot_config(ptc::ExecutionPath path) {
  ptc::GemmConfig cfg;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.path = path;
  return cfg;
}

std::uint64_t fnv1a_row(const Matrix& m, std::uint64_t h) {
  const unsigned char* bytes = reinterpret_cast<const unsigned char*>(m.data().data());
  for (std::size_t i = 0; i < m.size() * sizeof(double); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

bool events_equal(const ptc::EventCounter& a, const ptc::EventCounter& b) {
  return a.modulation_events == b.modulation_events &&
         a.detection_events == b.detection_events && a.adc_events == b.adc_events &&
         a.ddot_ops == b.ddot_ops && a.macs == b.macs && a.cycles == b.cycles;
}

double cosine(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a.data()[i] * b.data()[i];
    na += a.data()[i] * a.data()[i];
    nb += b.data()[i] * b.data()[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

/// The decode stream: token 0 is a loud ±1 row and every later token is
/// quiet, so the per-head K/V running max-abs is set at step 0 and never
/// outgrown — the incremental mode's appends are never refused on scale
/// (a rebuild would be correct but is exactly the cost being measured).
Matrix decode_stream(std::size_t context, std::size_t d_model, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(context, d_model);
  for (std::size_t c = 0; c < d_model; ++c) x(0, c) = c % 2 == 0 ? 1.0 : -1.0;
  for (std::size_t t = 1; t < context; ++t) {
    for (std::size_t c = 0; c < d_model; ++c) x(t, c) = 0.2 * rng.gaussian();
  }
  return x;
}

struct RunResult {
  std::vector<double> ms_per_token;  ///< per checkpoint: median of trailing window
  std::uint64_t digest{14695981039346656037ull};  ///< chained over every output row
  Matrix final_out;
  ptc::EventCounter events;  ///< cumulative over the whole stream
  nn::KvPreparedCacheStats kv;
};

/// Decode `x` row by row through one backend; time every step and report
/// the median of the last `window` steps before each checkpoint.
RunResult run_decode(nn::MultiHeadAttention& mha, nn::PhotonicBackend& backend, Mode mode,
                     const Matrix& x, const std::vector<std::size_t>& checkpoints) {
  const std::size_t window = 5;
  RunResult res;
  nn::AttentionKvState kv = mha.make_kv_state();
  const nn::KvDecodeMode dm =
      mode == Mode::kUnprepared ? nn::KvDecodeMode::kUnprepared : nn::KvDecodeMode::kPrepared;
  std::vector<double> step_ms(x.rows(), 0.0);
  Matrix xt(1, x.cols());
  for (std::size_t t = 0; t < x.rows(); ++t) {
    for (std::size_t c = 0; c < x.cols(); ++c) xt(0, c) = x(t, c);
    const auto t0 = std::chrono::steady_clock::now();
    res.final_out = mha.forward_decode(xt, backend, kv, dm);
    const auto t1 = std::chrono::steady_clock::now();
    step_ms[t] = std::chrono::duration<double, std::milli>(t1 - t0).count();
    res.digest = fnv1a_row(res.final_out, res.digest);
  }
  for (const std::size_t cp : checkpoints) {
    const std::size_t lo = cp > window ? cp - window : 0;
    std::vector<double> tail(step_ms.begin() + static_cast<std::ptrdiff_t>(lo),
                             step_ms.begin() + static_cast<std::ptrdiff_t>(cp));
    std::sort(tail.begin(), tail.end());
    res.ms_per_token.push_back(tail[tail.size() / 2]);
  }
  res.events = backend.events();
  res.kv = backend.kv_cache()->stats();
  nn::MultiHeadAttention::release_kv_state(kv, backend);
  return res;
}

struct TierSpec {
  const char* name;
  ptc::ExecutionPath path;
  bool bit_true;
};

constexpr TierSpec kTierSpecs[] = {
    {"kernel", ptc::ExecutionPath::kKernel, false},
    {"kernel_simd", ptc::ExecutionPath::kKernelSimd, false},
    {"kernel_quant", ptc::ExecutionPath::kKernelQuant, true},
};

std::unique_ptr<nn::PhotonicBackend> make_backend(const TierSpec& tier, bool kv_enabled) {
  auto drv = tier.bit_true ? core::make_bit_true_driver(8) : core::make_pdac_driver(8);
  nn::OperandCacheConfig cache_cfg;
  cache_cfg.capacity_bytes = 1ull << 30;
  nn::KvPreparedCacheConfig kv_cfg;
  kv_cfg.capacity_bytes = 1ull << 30;
  kv_cfg.enabled = kv_enabled;
  return std::make_unique<nn::PhotonicBackend>(std::move(drv), hot_config(tier.path),
                                               cache_cfg, kv_cfg);
}

struct TierResult {
  RunResult inc, fresh, unprep;
  bool bit_identical{false};
  bool events_ok{false};
  bool appends_ok{false};
  double cosine_vs_scalar{0.0};
  double speedup_vs_unprepared{0.0};  ///< at the longest checkpoint
  double speedup_vs_fresh{0.0};
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_kv.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  const std::size_t d_model = smoke ? 32 : 128;
  const std::size_t heads = smoke ? 2 : 4;
  const std::vector<std::size_t> checkpoints =
      smoke ? std::vector<std::size_t>{8, 24} : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t context = checkpoints.back();

  std::printf("perf_kv_decode — incremental KV-prepared attention, %s mode\n",
              smoke ? "smoke" : "full");
  std::printf("model: d_model=%zu heads=%zu context=%zu (full optics + ADC, threads=1)\n\n",
              d_model, heads, context);

  nn::MultiHeadAttention mha(d_model, heads);
  Rng wrng(42);
  mha.init_random(wrng);
  const Matrix x = decode_stream(context, d_model, 7);

  // Scalar-kernel reference on the bit-true chain, for the quant tier's
  // decode-cosine gate (same driver, different arithmetic tier).
  Matrix bt_scalar_final;
  {
    const TierSpec bt{"kernel", ptc::ExecutionPath::kKernel, true};
    auto backend = make_backend(bt, true);
    bt_scalar_final =
        run_decode(mha, *backend, Mode::kIncremental, x, checkpoints).final_out;
  }

  std::vector<TierResult> results;
  Matrix scalar_final;
  for (const TierSpec& tier : kTierSpecs) {
    TierResult r;
    {
      auto backend = make_backend(tier, true);
      r.inc = run_decode(mha, *backend, Mode::kIncremental, x, checkpoints);
    }
    {
      auto backend = make_backend(tier, false);
      r.fresh = run_decode(mha, *backend, Mode::kFresh, x, checkpoints);
    }
    {
      auto backend = make_backend(tier, true);
      r.unprep = run_decode(mha, *backend, Mode::kUnprepared, x, checkpoints);
    }
    r.bit_identical = r.inc.digest == r.unprep.digest && r.inc.digest == r.fresh.digest;
    r.events_ok = events_equal(r.inc.events, r.unprep.events) &&
                  events_equal(r.inc.events, r.fresh.events);
    // 2 handles/head, each: 1 miss then context-1 append-hits, 0 rebuilds.
    r.appends_ok = r.inc.kv.rebuilds == 0 && r.inc.kv.appends == 2 * heads * (context - 1);
    if (tier.path == ptc::ExecutionPath::kKernel) scalar_final = r.inc.final_out;
    r.cosine_vs_scalar = tier.bit_true ? cosine(r.inc.final_out, bt_scalar_final)
                                       : cosine(r.inc.final_out, scalar_final);
    const double inc_ms = r.inc.ms_per_token.back();
    r.speedup_vs_unprepared = inc_ms > 0.0 ? r.unprep.ms_per_token.back() / inc_ms : 0.0;
    r.speedup_vs_fresh = inc_ms > 0.0 ? r.fresh.ms_per_token.back() / inc_ms : 0.0;
    results.push_back(r);

    std::printf("[%s]%s\n", tier.name, tier.bit_true ? " (bit-true chain)" : "");
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      std::printf("  ctx %4zu: incremental %8.3f ms/tok   fresh %8.3f   unprepared %8.3f\n",
                  checkpoints[c], r.inc.ms_per_token[c], r.fresh.ms_per_token[c],
                  r.unprep.ms_per_token[c]);
    }
    std::printf("  speedup @%zu: %.2fx vs unprepared, %.2fx vs fresh-prepare\n",
                context, r.speedup_vs_unprepared, r.speedup_vs_fresh);
    std::printf("  bit-identical: %s  events equal: %s  appends clean: %s  cosine: %.9f\n\n",
                r.bit_identical ? "yes" : "NO", r.events_ok ? "yes" : "NO",
                r.appends_ok ? "yes" : "NO", r.cosine_vs_scalar);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"kv_decode\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"model\": {\"d_model\": %zu, \"heads\": %zu, \"context\": %zu},\n",
               d_model, heads, context);
  std::fprintf(f, "  \"contexts\": [");
  for (std::size_t c = 0; c < checkpoints.size(); ++c) {
    std::fprintf(f, "%s%zu", c > 0 ? ", " : "", checkpoints[c]);
  }
  std::fprintf(f, "],\n  \"tiers\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TierSpec& tier = kTierSpecs[i];
    const TierResult& r = results[i];
    std::fprintf(f, "    {\"path\": \"%s\", \"driver\": \"%s\",\n", tier.name,
                 tier.bit_true ? "bit-true-dac" : "pdac");
    auto emit_series = [&](const char* key, const std::vector<double>& v, const char* tail) {
      std::fprintf(f, "     \"%s\": [", key);
      for (std::size_t c = 0; c < v.size(); ++c) {
        std::fprintf(f, "%s%.3f", c > 0 ? ", " : "", v[c]);
      }
      std::fprintf(f, "]%s\n", tail);
    };
    emit_series("incremental_ms_per_token", r.inc.ms_per_token, ",");
    emit_series("fresh_ms_per_token", r.fresh.ms_per_token, ",");
    emit_series("unprepared_ms_per_token", r.unprep.ms_per_token, ",");
    std::fprintf(f, "     \"speedup_vs_unprepared\": %.3f, \"speedup_vs_fresh\": %.3f,\n",
                 r.speedup_vs_unprepared, r.speedup_vs_fresh);
    std::fprintf(f, "     \"bit_identical\": %s, \"events_equal\": %s,\n",
                 r.bit_identical ? "true" : "false", r.events_ok ? "true" : "false");
    std::fprintf(f, "     \"kv_appends\": %llu, \"kv_rebuilds\": %llu,\n",
                 static_cast<unsigned long long>(r.inc.kv.appends),
                 static_cast<unsigned long long>(r.inc.kv.rebuilds));
    std::fprintf(f, "     \"decode_cosine\": %.12f}%s\n", r.cosine_vs_scalar,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"isa\": \"%s\"\n}\n", simd::active_isa());
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const TierResult& r = results[i];
    if (!r.bit_identical || !r.events_ok || !r.appends_ok) {
      std::fprintf(stderr, "FAIL: %s broke the identity contract (bits=%d events=%d appends=%d)\n",
                   kTierSpecs[i].name, r.bit_identical ? 1 : 0, r.events_ok ? 1 : 0,
                   r.appends_ok ? 1 : 0);
      ok = false;
    }
    if (r.cosine_vs_scalar < 1.0 - 1e-6) {
      std::fprintf(stderr, "FAIL: %s decode cosine %.12f below 1 - 1e-6\n", kTierSpecs[i].name,
                   r.cosine_vs_scalar);
      ok = false;
    }
    // >=2x at the longest context is the acceptance bar; smoke shapes
    // are too short for the prepare cost to dominate and gate identity only.
    if (!smoke && r.speedup_vs_unprepared < 2.0) {
      std::fprintf(stderr, "FAIL: %s incremental speedup %.2fx below the 2x bar\n",
                   kTierSpecs[i].name, r.speedup_vs_unprepared);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
