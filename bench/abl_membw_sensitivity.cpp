// abl_membw_sensitivity — ablation A4: how the P-DAC's end-to-end saving
// depends on where the system sits between compute-bound and memory-
// bound.  Fig. 11 is the paper's compute-bound limit (savings 19.9 % /
// 47.7 %); Figs. 9–10 include data movement and land at 11.2 % / 32.3 %.
// This bench interpolates by scaling the SRAM energy-per-bit, exposing
// the full curve between those regimes for BERT-base.
#include <iostream>

#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const nn::WorkloadTrace trace = nn::trace_forward(nn::bert_base(128));

  std::cout << "Ablation A4 — saving vs data-movement cost (BERT-base)\n\n";

  Table t({"SRAM pJ/bit scale", "movement share (8b)", "saving 4-bit", "saving 8-bit"});
  for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    arch::PowerParams params = arch::lt_power_params();
    params.sram_energy_per_bit =
        units::joules(params.sram_energy_per_bit.joules() * scale);
    const auto cmp4 = arch::compare_energy(trace, cfg, params, 4);
    const auto cmp8 = arch::compare_energy(trace, cfg, params, 8);
    const double move_share = cmp8.baseline.total().movement.joules() /
                              cmp8.baseline.total().total().joules();
    t.add_row({Table::num(scale, 2) + "x", Table::pct(move_share),
               Table::pct(cmp4.total_saving()), Table::pct(cmp8.total_saving())});
  }
  std::cout << t.to_string()
            << "\nAt 0x movement the savings approach the Fig. 11 compute-bound limits\n"
            << "(19.9% / 47.7%); at the calibrated 1x they match Fig. 9; heavily\n"
            << "memory-bound deployments dilute the P-DAC benefit, as the paper notes.\n";
  return 0;
}
