// abl_pipeline — ablation A9: dependency-aware scheduling vs the
// perfect-packing assumption.
//
// The Fig. 9/10 energy model charges static power over ideal occupancy
// (tiles packed onto all arrays with no gaps).  The mapper schedules the
// real dependency graph — Q/K/V parallel, scores→context→projection→FFN
// serial, layers chained — and reports the pipeline-bubble slowdown and
// per-stage timeline, quantifying how optimistic the ideal assumption is
// for each workload shape.
#include <cstdio>
#include <map>

#include "arch/mapper.hpp"
#include "common/table.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();

  std::printf("Ablation A9 — pipeline schedule vs perfect packing (LT-B, %zu arrays)\n\n",
              cfg.arrays());

  Table t({"workload", "ideal cycles", "scheduled", "slowdown", "array util", "DDot util"});
  struct Workload {
    std::string name;
    nn::WorkloadTrace trace;
  };
  const Workload workloads[] = {
      {"BERT-base prefill s=128", nn::trace_forward(nn::bert_base(128))},
      {"DeiT-base 197 tokens", nn::trace_forward(nn::deit_base())},
      {"decode step ctx=512", nn::trace_decode_step(nn::bert_base(128), 512)},
      {"decode step ctx=2048", nn::trace_decode_step(nn::bert_base(128), 2048)},
  };
  for (const auto& w : workloads) {
    const arch::Schedule s = arch::schedule_trace(w.trace, cfg);
    t.add_row({w.name, std::to_string(s.ideal_cycles()),
               std::to_string(s.makespan_cycles), Table::num(s.slowdown(), 2) + "x",
               Table::pct(s.utilization()), Table::pct(s.ddot_utilization())});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Per-stage occupancy of one BERT layer (timeline view).
  const arch::Schedule s = arch::schedule_trace(nn::trace_forward(nn::bert_base(128)), cfg);
  std::printf("layer-0 timeline (cycles):\n");
  Table tl({"op", "stage", "start", "end", "arrays", "work (array-cycles)"});
  for (const auto& op : s.ops) {
    if (op.label.rfind("L0.", 0) != 0) break;
    tl.add_row({op.label, arch::to_string(op.stage), std::to_string(op.start_cycle),
                std::to_string(op.end_cycle), std::to_string(op.arrays_assigned),
                std::to_string(op.work_array_cycles)});
  }
  std::printf("%s", tl.to_string().c_str());
  std::printf(
      "\nPrefill keeps arrays AND DDots ~%.0f%% busy, so the Fig. 9 static-\n"
      "energy charge is close to truth.  Decode occupies whole arrays but its\n"
      "1-row GEMV tiles light up only 1/8 of each array's DDots — ~88%% of the\n"
      "photonic fabric idles, compounding the movement wall from A5/A7.\n",
      100.0 * s.ddot_utilization());
  return 0;
}
