// fig11_compute_bound_power — reproduces paper Fig. 11: the power
// breakdown of LT-B in a fully compute-bound scenario, all four panels:
//   (a) DAC-based, 4-bit        (b) DAC-based, 8-bit
//   (c) P-DAC,    4-bit, 11.81 W (d) P-DAC,    8-bit, 26.64 W
// with power savings of 19.9 % (4-bit) and 47.7 % (8-bit).
#include <iostream>

#include "arch/component_power.hpp"
#include "eval/report.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();

  std::cout << "Fig. 11 — compute-bound power breakdown of LT-B, DAC vs P-DAC\n\n";

  struct Panel {
    const char* tag;
    int bits;
    arch::SystemVariant variant;
  };
  const Panel panels[] = {
      {"(a)", 4, arch::SystemVariant::kDacBased},
      {"(b)", 8, arch::SystemVariant::kDacBased},
      {"(c)", 4, arch::SystemVariant::kPdacBased},
      {"(d)", 8, arch::SystemVariant::kPdacBased},
  };
  arch::PowerBreakdown by_panel[4];
  for (int i = 0; i < 4; ++i) {
    by_panel[i] =
        arch::compute_power_breakdown(cfg, params, panels[i].bits, panels[i].variant);
    std::cout << eval::render_power_breakdown(std::string("Fig. 11") + panels[i].tag,
                                              by_panel[i])
              << "\n";
  }

  const double save4 = 1.0 - by_panel[2].total() / by_panel[0].total();
  const double save8 = 1.0 - by_panel[3].total() / by_panel[1].total();
  std::cout << eval::render_scoreboard(
      "Fig. 11",
      {
          {"P-DAC system total, 4-bit", 11.81, by_panel[2].total().watts(), " W"},
          {"P-DAC system total, 8-bit", 26.64, by_panel[3].total().watts(), " W"},
          {"power saving, 4-bit", 19.9, 100.0 * save4, "%"},
          {"power saving, 8-bit", 47.7, 100.0 * save8, "%"},
          {"ADC share of P-DAC system, 4-bit", 18.0,
           100.0 * by_panel[2].share(arch::Component::kAdc), "%"},
          {"ADC share of P-DAC system, 8-bit", 16.0,
           100.0 * by_panel[3].share(arch::Component::kAdc), "%"},
          {"P-DAC share of system, 8-bit", 20.1,
           100.0 * by_panel[3].share(arch::Component::kPdac), "%"},
          {"laser share of P-DAC system, 4-bit", 46.5,
           100.0 * by_panel[2].share(arch::Component::kLaser), "%"},
      },
      "note: the laser dominates the 8-bit P-DAC system, matching the paper's\n"
      "discussion that remaining power is constrained by the laser.");
  return 0;
}
