// abl_abft_overhead — A22: cost and efficacy of the ABFT checksum guard
// (DESIGN.md §12, faults/guarded_backend.hpp).
//
// Four measurements, each with its own PASS/FAIL gate:
//
//   1. Clean-hardware tax — a guarded and an unguarded (DegradedBackend)
//      product stream over identical healthy banks must stay bit-identical
//      while the guard verifies ≥ 10k tiles with ZERO false positives;
//      the checksum-lane charge is priced with arch::event_energy at the
//      data path's own per-event rates and reported as an overhead %.
//   2. Detection latency — a single stuck-MRR scheduled at tile step S of
//      a 100-tile product must be caught exactly at the first tile
//      encoded after the strike (latency == S tiles), for several S.
//   3. Mid-inference fault storms — a BERT-style encoder layer runs while
//      a seeded fault schedule fires between products/tiles, through
//      three controllers: unguarded (faults land, nothing notices),
//      BIST-only (periodic self-test screens, silent corruption between
//      screens), and the ABFT guard (in-band detection + escalation
//      ladder).  Cosine accuracy against the fp64 reference is the score.
//   4. Storm-side guard economics — detections, ladder rungs and the
//      recovery re-run energy accumulated across the storm runs.
//
// Writes machine-readable BENCH_abft.json (default: the repository root).
//
// Usage:
//   abl_abft_overhead            # full shapes (~10k verified tiles)
//   abl_abft_overhead --smoke    # CI smoke: same code paths, small counts
//   abl_abft_overhead --out FILE # JSON destination
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/energy_model.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "eval/report.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/self_test.hpp"
#include "nn/encoder_layer.hpp"
#include "nn/model_config.hpp"

#ifndef PDAC_REPO_ROOT
#define PDAC_REPO_ROOT "."
#endif

namespace {

using namespace pdac;

constexpr std::uint64_t kSeed = 2027;

faults::LaneBankConfig bank_config(std::size_t wavelengths, std::uint64_t seed) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = wavelengths;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

faults::FaultScheduleConfig schedule_config(std::size_t lanes, double fault_rate,
                                            std::uint64_t horizon, std::uint64_t seed) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = lanes;
  cfg.bits = 8;
  cfg.horizon_steps = horizon;
  cfg.hard_fault_rate = 0.5 * fault_rate;  // latched MRRs / dead PDs
  cfg.drift_fault_rate = fault_rate;       // recoverable drift events
  cfg.bias_walk_sigma_per_step = 0.012 * fault_rate;
  cfg.laser_droop_per_step = 0.0003;
  cfg.seed = seed;
  return cfg;
}

bool bit_identical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)) == 0;
}

double price_uj(const ptc::EventCounter& ev, const arch::LtConfig& lt,
                const arch::PowerParams& params) {
  return arch::event_energy(ev, lt, params, 8, arch::SystemVariant::kPdacBased).joules() * 1e6;
}

/// Advances a fault injector by a fixed step count before every product
/// and (optionally) runs a periodic BIST screen — the "unguarded" and
/// "BIST-only" storm controllers the ABFT guard is compared against.
/// The data path underneath is the honest DegradedBackend.
class StormBackend final : public nn::GemmBackend {
 public:
  StormBackend(faults::LaneBank& bank, faults::FaultInjector& injector,
               std::uint64_t steps_per_matmul, std::size_t bist_period)
      : bank_(bank),
        inner_(bank),
        injector_(injector),
        steps_(steps_per_matmul),
        bist_period_(bist_period) {}

  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override {
    tick();
    return inner_.matmul(a, b);
  }
  [[nodiscard]] Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                     const nn::WeightHandle& w) override {
    tick();
    return inner_.matmul_cached(a, b, w);
  }
  [[nodiscard]] std::string name() const override {
    return bist_period_ > 0 ? "storm/bist-only" : "storm/unguarded";
  }
  [[nodiscard]] std::size_t probe_events() const { return probe_events_; }

 private:
  void tick() {
    injector_.advance_to(injector_.step() + steps_);
    ++calls_;
    if (bist_period_ > 0 && calls_ % bist_period_ == 0) {
      faults::SelfTestConfig st;
      st.attempt_recovery = true;
      probe_events_ += faults::run_self_test(bank_, st).probe_events;
    }
  }

  faults::LaneBank& bank_;
  faults::DegradedBackend inner_;
  faults::FaultInjector& injector_;
  std::uint64_t steps_{1};
  std::size_t bist_period_{0};  ///< 0 = never screen
  std::size_t calls_{0};
  std::size_t probe_events_{0};
};

/// The guarded controller on the same per-product storm clock as
/// StormBackend, so all three modes see the identical fault timeline
/// (bias walk and droop accumulate per step — a per-tile clock would
/// hand the guard orders of magnitude more drift than the baselines;
/// mid-product strike granularity is measured in section 2 instead).
class GuardedStormBackend final : public nn::GemmBackend {
 public:
  GuardedStormBackend(faults::GuardedBackend& inner, faults::FaultInjector& injector)
      : inner_(inner), injector_(injector) {}

  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override {
    injector_.advance_to(injector_.step() + 1);
    return inner_.matmul(a, b);
  }
  [[nodiscard]] Matrix matmul_cached(const Matrix& a, const Matrix& b,
                                     const nn::WeightHandle& w) override {
    injector_.advance_to(injector_.step() + 1);
    return inner_.matmul_cached(a, b, w);
  }
  [[nodiscard]] std::string name() const override { return "storm/guarded"; }

 private:
  faults::GuardedBackend& inner_;
  faults::FaultInjector& injector_;
};

/// Counts the products one encoder-layer forward issues, so the storm
/// horizon can be sized to span the whole inference.
class CountingBackend final : public nn::GemmBackend {
 public:
  [[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b) override {
    ++calls_;
    return inner_.matmul(a, b);
  }
  [[nodiscard]] std::string name() const override { return "counting"; }
  [[nodiscard]] std::size_t calls() const { return calls_; }

 private:
  nn::ReferenceBackend inner_;
  std::size_t calls_{0};
};

struct StormPoint {
  double fault_rate{};
  double unguarded{};   ///< mean cosine, faults land silently
  double bist_only{};   ///< mean cosine, periodic screens
  double guarded{};     ///< mean cosine, ABFT guard + escalation
};

}  // namespace

int main(int argc, char** argv) {
  using namespace pdac;

  bool smoke = false;
  std::string out_path = std::string(PDAC_REPO_ROOT) + "/BENCH_abft.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
  }

  std::printf("Ablation A22 — ABFT guard: overhead, detection latency, storm accuracy (%s)\n\n",
              smoke ? "smoke" : "full");

  const arch::LtConfig lt = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  bool all_pass = true;

  // --- 1. clean-hardware tax + zero false positives -------------------------
  // 64×24×64 products on the 8×8 tile grid: 64 verified tiles each.
  const std::size_t tile_target = smoke ? 2000 : 10000;
  faults::LaneBank clean_bank(bank_config(4, kSeed));
  faults::production_trim(clean_bank);
  faults::LaneBank plain_bank(bank_config(4, kSeed));  // same fabrication draw
  faults::production_trim(plain_bank);
  faults::GuardedBackend guarded(clean_bank);
  faults::DegradedBackend unguarded(plain_bank);

  bool identical = true;
  Rng clean_rng(17);
  while (guarded.monitor().snapshot().tiles_checked < tile_target) {
    const Matrix a = Matrix::random_gaussian(64, 24, clean_rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(24, 64, clean_rng, 0.0, 1.0);
    identical = identical && bit_identical(guarded.matmul(a, b), unguarded.matmul(a, b));
  }
  const faults::HealthSnapshot& clean_snap = guarded.monitor().snapshot();

  eval::AbftGuardSummary clean_sum;
  clean_sum.products = clean_snap.products;
  clean_sum.tiles_checked = clean_snap.tiles_checked;
  clean_sum.mismatched_tiles = clean_snap.mismatched_tiles;
  clean_sum.detections = clean_snap.detections;
  clean_sum.retries = clean_snap.retries;
  clean_sum.retrims = clean_snap.retrims;
  clean_sum.fences = clean_snap.fences;
  clean_sum.unrecovered = clean_snap.unrecovered;
  clean_sum.mean_detection_latency = clean_snap.mean_detection_latency();
  clean_sum.worst_residual = clean_snap.worst_residual;
  clean_sum.worst_tolerance = clean_snap.worst_tolerance;
  clean_sum.checksum_energy_uj = price_uj(clean_snap.checksum_events, lt, params);
  clean_sum.retry_energy_uj = price_uj(clean_snap.retry_events, lt, params);
  clean_sum.data_energy_uj = price_uj(guarded.events(), lt, params);
  std::printf("%s\n", eval::render_abft_guard("clean hardware (fault-free)", clean_sum).c_str());

  const double overhead = clean_sum.data_energy_uj > 0.0
                              ? (clean_sum.checksum_energy_uj + clean_sum.retry_energy_uj) /
                                    clean_sum.data_energy_uj
                              : 0.0;
  const bool fp_pass = clean_snap.mismatched_tiles == 0 && clean_snap.tiles_checked >= tile_target;
  const bool tax_pass = identical && overhead < 0.35;
  std::printf("bit-identical to unguarded over %zu tiles: %s\n", clean_snap.tiles_checked,
              identical ? "yes" : "NO");
  std::printf("false positives: %zu / %zu tiles -> %s\n", clean_snap.mismatched_tiles,
              clean_snap.tiles_checked, fp_pass ? "PASS (zero)" : "FAIL");
  std::printf("guard energy tax %.2f%% (< 35%% bar) -> %s\n\n", 100.0 * overhead,
              tax_pass ? "PASS" : "FAIL");
  all_pass = all_pass && fp_pass && tax_pass;

  // --- 2. detection latency: fault at tile step S, caught at tile S ---------
  const std::vector<std::uint64_t> fault_steps =
      smoke ? std::vector<std::uint64_t>{8, 24} : std::vector<std::uint64_t>{8, 24, 48, 80};
  struct LatencyRow {
    std::uint64_t step;
    double latency;
    std::size_t mismatched;
    std::size_t unrecovered;
  };
  std::vector<LatencyRow> latency_rows;
  bool latency_pass = true;
  for (std::uint64_t step : fault_steps) {
    faults::LaneBank bank(bank_config(4, kSeed + step));
    faults::production_trim(bank);
    faults::GuardedBackend backend(bank);
    faults::FaultSchedule sched;
    sched.cfg.lanes = bank.lanes();
    sched.cfg.bits = 8;
    sched.cfg.horizon_steps = 128;
    faults::FaultEvent ev;
    ev.step = step;
    ev.lane = 3;
    ev.kind = faults::FaultKind::kStuckMrr;
    ev.magnitude = 0.4;
    sched.events.push_back(ev);
    faults::FaultInjector injector(bank, sched);
    backend.attach_storm(&injector, 1);

    Rng rng(29 + step);
    // 80×80 outputs on the 8×8 array: 100 serialized tile steps.
    const Matrix a = Matrix::random_gaussian(80, 16, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(16, 80, rng, 0.0, 1.0);
    (void)backend.matmul(a, b);
    const faults::HealthSnapshot& snap = backend.monitor().snapshot();
    const double lat = snap.detections > 0 ? snap.mean_detection_latency() : -1.0;
    latency_rows.push_back({step, lat, snap.mismatched_tiles, snap.unrecovered});
    latency_pass = latency_pass && lat == static_cast<double>(step) && snap.unrecovered == 0;
    std::printf("stuck MRR at tile step %3llu: detected after %s tiles, %zu tiles flagged, "
                "unrecovered %zu\n",
                static_cast<unsigned long long>(step),
                lat < 0 ? "-" : std::to_string(static_cast<long long>(lat)).c_str(),
                snap.mismatched_tiles, snap.unrecovered);
  }
  std::printf("detection exactly at the first faulty tile, all recovered -> %s\n\n",
              latency_pass ? "PASS" : "FAIL");
  all_pass = all_pass && latency_pass;

  // --- 3. encoder-layer accuracy under mid-inference fault storms -----------
  const auto cfg = nn::tiny_transformer(12, 48, 4, 1);
  nn::EncoderLayer layer(cfg.d_model, cfg.heads, cfg.d_ff);
  Rng layer_rng(7);
  layer.init_random(layer_rng);
  Rng in_rng(11);
  const Matrix x = Matrix::random_gaussian(cfg.seq_len, cfg.d_model, in_rng, 0.0, 0.5);
  nn::ReferenceBackend ref;
  const Matrix exact = layer.forward(x, ref);

  CountingBackend counter;
  (void)layer.forward(x, counter);
  const std::uint64_t horizon = counter.calls();  // one storm step per product
  const std::size_t bist_period = std::max<std::size_t>(1, counter.calls() / 4);

  const std::vector<double> rates = smoke ? std::vector<double>{0.3}
                                          : std::vector<double>{0.1, 0.3, 0.6};
  const std::size_t n_seeds = smoke ? 2 : 3;
  const std::size_t wavelengths = 8;

  std::vector<StormPoint> storm_points;
  eval::AbftGuardSummary storm_sum;  // guard economics across every storm run
  ptc::EventCounter storm_data, storm_checksum, storm_retry;
  for (double rate : rates) {
    StormPoint pt;
    pt.fault_rate = rate;
    for (std::size_t s = 0; s < n_seeds; ++s) {
      const std::uint64_t bank_seed = kSeed + 31 * s;
      const std::uint64_t sched_seed = kSeed + 101 * s + 7;
      const auto sched_cfg = [&](std::size_t lanes) {
        return schedule_config(lanes, rate, horizon, sched_seed);
      };

      // Three identical fabrication + fault draws, three controllers.
      faults::LaneBank b0(bank_config(wavelengths, bank_seed));
      faults::production_trim(b0);
      faults::FaultInjector i0(b0, faults::generate_fault_schedule(sched_cfg(b0.lanes())));
      StormBackend no_guard(b0, i0, 1, 0);
      pt.unguarded += stats::compare(layer.forward(x, no_guard).data(), exact.data()).cosine;

      faults::LaneBank b1(bank_config(wavelengths, bank_seed));
      faults::production_trim(b1);
      faults::FaultInjector i1(b1, faults::generate_fault_schedule(sched_cfg(b1.lanes())));
      StormBackend bist(b1, i1, 1, bist_period);
      pt.bist_only += stats::compare(layer.forward(x, bist).data(), exact.data()).cosine;

      faults::LaneBank b2(bank_config(wavelengths, bank_seed));
      faults::production_trim(b2);
      faults::GuardedBackend abft(b2);
      faults::FaultInjector i2(b2, faults::generate_fault_schedule(sched_cfg(b2.lanes())));
      GuardedStormBackend storm_guarded(abft, i2);
      pt.guarded += stats::compare(layer.forward(x, storm_guarded).data(), exact.data()).cosine;

      const faults::HealthSnapshot& snap = abft.monitor().snapshot();
      storm_sum.products += snap.products;
      storm_sum.tiles_checked += snap.tiles_checked;
      storm_sum.mismatched_tiles += snap.mismatched_tiles;
      storm_sum.detections += snap.detections;
      storm_sum.retries += snap.retries;
      storm_sum.retrims += snap.retrims;
      storm_sum.fences += snap.fences;
      storm_sum.unrecovered += snap.unrecovered;
      storm_sum.mean_detection_latency += snap.detection_latency_tiles;  // summed, divided below
      if (snap.worst_residual > storm_sum.worst_residual) {
        storm_sum.worst_residual = snap.worst_residual;
        storm_sum.worst_tolerance = snap.worst_tolerance;
      }
      storm_data += abft.events();
      storm_checksum += snap.checksum_events;
      storm_retry += snap.retry_events;
    }
    pt.unguarded /= static_cast<double>(n_seeds);
    pt.bist_only /= static_cast<double>(n_seeds);
    pt.guarded /= static_cast<double>(n_seeds);
    storm_points.push_back(pt);
    std::printf("fault rate %4.0f%%: cosine unguarded %.4f | BIST-only %.4f | guarded %.4f\n",
                100.0 * rate, pt.unguarded, pt.bist_only, pt.guarded);
  }
  storm_sum.mean_detection_latency =
      storm_sum.detections > 0
          ? storm_sum.mean_detection_latency / static_cast<double>(storm_sum.detections)
          : 0.0;
  storm_sum.checksum_energy_uj = price_uj(storm_checksum, lt, params);
  storm_sum.retry_energy_uj = price_uj(storm_retry, lt, params);
  storm_sum.data_energy_uj = price_uj(storm_data, lt, params);

  bool storm_pass = true;
  double worst_guarded = 1.0;
  for (const StormPoint& pt : storm_points) {
    worst_guarded = std::min(worst_guarded, pt.guarded);
    if (pt.guarded < pt.unguarded - 1e-3) storm_pass = false;
    if (pt.guarded < pt.bist_only - 1e-3) storm_pass = false;
  }
  storm_pass = storm_pass && worst_guarded > 0.97;
  std::printf("guarded cosine >= both baselines at every rate, worst %.4f (> 0.97 bar) -> %s\n\n",
              worst_guarded, storm_pass ? "PASS" : "FAIL");
  all_pass = all_pass && storm_pass;

  // --- 4. storm-side guard economics ----------------------------------------
  std::printf("%s\n",
              eval::render_abft_guard("fault storms (all rates x seeds)", storm_sum).c_str());

  // CSV for plotting.
  std::vector<std::vector<double>> csv;
  for (const StormPoint& pt : storm_points) {
    csv.push_back({pt.fault_rate, pt.unguarded, pt.bist_only, pt.guarded});
  }
  std::printf("%s\n", eval::to_csv({"fault_rate", "cosine_unguarded", "cosine_bist_only",
                                    "cosine_guarded"},
                                   csv)
                          .c_str());

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"abft_overhead\",\n  \"mode\": \"%s\",\n",
               smoke ? "smoke" : "full");
  std::fprintf(f, "  \"clean\": {\"tiles_checked\": %zu, \"false_positives\": %zu, "
               "\"bit_identical\": %s,\n",
               clean_snap.tiles_checked, clean_snap.mismatched_tiles,
               identical ? "true" : "false");
  std::fprintf(f, "            \"checksum_energy_uj\": %.4f, \"data_energy_uj\": %.4f, "
               "\"overhead\": %.5f},\n",
               clean_sum.checksum_energy_uj, clean_sum.data_energy_uj, overhead);
  std::fprintf(f, "  \"detection_latency\": [");
  for (std::size_t i = 0; i < latency_rows.size(); ++i) {
    std::fprintf(f, "%s{\"fault_step\": %llu, \"latency_tiles\": %.1f}",
                 i == 0 ? "" : ", ",
                 static_cast<unsigned long long>(latency_rows[i].step), latency_rows[i].latency);
  }
  std::fprintf(f, "],\n  \"storm_accuracy\": [");
  for (std::size_t i = 0; i < storm_points.size(); ++i) {
    const StormPoint& pt = storm_points[i];
    std::fprintf(f, "%s{\"fault_rate\": %.2f, \"unguarded\": %.4f, \"bist_only\": %.4f, "
                 "\"guarded\": %.4f}",
                 i == 0 ? "" : ", ", pt.fault_rate, pt.unguarded, pt.bist_only, pt.guarded);
  }
  std::fprintf(f, "],\n  \"storm_guard\": {\"detections\": %zu, \"retries\": %zu, "
               "\"retrims\": %zu, \"fences\": %zu, \"unrecovered\": %zu,\n"
               "                  \"mean_detection_latency_tiles\": %.2f, "
               "\"retry_energy_uj\": %.4f},\n",
               storm_sum.detections, storm_sum.retries, storm_sum.retrims, storm_sum.fences,
               storm_sum.unrecovered, storm_sum.mean_detection_latency,
               storm_sum.retry_energy_uj);
  std::fprintf(f, "  \"pass\": %s\n}\n", all_pass ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  std::printf(
      "\nFindings: on healthy hardware the guard is pure observation — the\n"
      "checksum lanes ride the spare row/column of each tile step, so the\n"
      "energy tax is the (h+w)/(h*w) lane ratio, the data path stays\n"
      "bit-identical, and the noise-calibrated band yields zero false\n"
      "positives across the full verification volume.  Under storms the\n"
      "guard detects at the first tile the fault touches (latency == the\n"
      "strike step), while BIST-only leaks corrupted products until the\n"
      "next screen and the unguarded path degrades with every latched\n"
      "lane.  The recovery re-run charge stays a small multiple of one\n"
      "product because the escalation ladder is bounded per product.\n");

  if (!all_pass) {
    std::fprintf(stderr, "FAIL: one or more A22 acceptance gates failed\n");
    return 1;
  }
  return 0;
}
