// fig10_deit_energy — reproduces paper Fig. 10: the energy breakdown of
// one DeiT-base inference (ImageNet-1K 224×224, 197 tokens) on LT-B,
// DAC-based vs P-DAC.  Paper-reported savings: total 11.2 % (4-bit) and
// 32.3 % (8-bit); attention 19.0 % / 42.3 %; FFN 12.6 % / 35.1 % (the
// abstract's "up to 35.4 %" headline belongs to this family).
#include <iostream>

#include "arch/energy_model.hpp"
#include "eval/report.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const nn::TransformerConfig model = nn::deit_base();
  const nn::WorkloadTrace trace = nn::trace_forward(model);

  std::cout << "Fig. 10 — energy breakdown of DeiT-base, ImageNet1K-224x224, 197 tokens\n"
            << "model: " << model.layers << " layers, d_model " << model.d_model << ", "
            << model.heads << " heads, d_ff " << model.d_ff << ", "
            << trace.total_macs() / 1000000 << " MMACs/inference\n\n";

  std::vector<eval::Scored> scoreboard;
  const double paper_total[2] = {11.2, 32.3};
  const double paper_attn[2] = {19.0, 42.3};
  const double paper_ffn[2] = {12.6, 35.1};

  int idx = 0;
  for (int bits : {4, 8}) {
    const auto cmp = arch::compare_energy(trace, cfg, params, bits);
    std::cout << eval::render_energy_comparison(
                     "Fig. 10(" + std::string(bits == 4 ? "a" : "b") + ") DeiT-base", cmp)
              << "\n";
    const std::string suffix = ", " + std::to_string(bits) + "-bit";
    scoreboard.push_back({"total energy saving" + suffix, paper_total[idx],
                          100.0 * cmp.total_saving(), "%"});
    scoreboard.push_back({"attention energy saving" + suffix, paper_attn[idx],
                          100.0 * cmp.saving(nn::OpClass::kAttention), "%"});
    scoreboard.push_back({"ffn energy saving" + suffix, paper_ffn[idx],
                          100.0 * cmp.saving(nn::OpClass::kFfn), "%"});
    ++idx;
  }

  std::cout << eval::render_scoreboard(
      "Fig. 10", scoreboard,
      "note: DeiT's longer sequence (197 vs 128) raises the dynamic-product share,\n"
      "which our model rewards slightly more than the paper's simulator does.");
  return 0;
}
