// abl_bitwidth_sweep — ablation A1: how the DAC bottleneck and the P-DAC
// advantage scale with operand precision beyond the paper's 4/8-bit
// points.  Sweeps b = 2…12 and prints system power, DAC share, and the
// P-DAC saving — showing the crossover structure: at very low precision
// the laser dominates and P-DAC gains little; at high precision the
// electrical DAC's b·2^{b/2} law makes it the whole machine.
#include <iostream>

#include "arch/component_power.hpp"
#include "common/table.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();

  std::cout << "Ablation A1 — precision sweep of the compute-bound power model\n\n";

  Table t({"bits", "DAC system", "DAC share", "P-DAC system", "P-DAC share", "saving"});
  for (int bits = 2; bits <= 12; ++bits) {
    const auto base =
        arch::compute_power_breakdown(cfg, params, bits, arch::SystemVariant::kDacBased);
    const auto prop =
        arch::compute_power_breakdown(cfg, params, bits, arch::SystemVariant::kPdacBased);
    const double saving = 1.0 - prop.total() / base.total();
    t.add_row({std::to_string(bits), Table::watts(base.total().watts()),
               Table::pct(base.share(arch::Component::kDac)),
               Table::watts(prop.total().watts()),
               Table::pct(prop.share(arch::Component::kPdac)), Table::pct(saving)});
  }
  std::cout << t.to_string()
            << "\npaper anchor points: saving 19.9% @4-bit, 47.7% @8-bit.\n"
            << "The saving grows with precision because the electrical DAC scales as\n"
            << "b*2^(b/2) while the P-DAC's dominant term is linear in b — until ~11\n"
            << "bits, where the P-DAC's own binary-weighted TIA cost (c*(2^b-1))\n"
            << "turns exponential and the advantage peaks and recedes slightly.\n";
  return 0;
}
