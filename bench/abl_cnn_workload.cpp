// abl_cnn_workload — ablation A13: the P-DAC on a CNN accelerator
// (the Albireo context from the paper's §I–II).
//
// Convolutions have far more MACs per weight than transformer FFNs
// (each filter is reused over every output pixel), so CNN inference is
// deeply compute-bound and the P-DAC's conversion savings approach the
// Fig. 11 ceiling without any of the transformer's movement dilution.
#include <cstdio>

#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "eval/report.hpp"
#include "nn/cnn_trace.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();

  const auto cnn = nn::vgg11_like();
  const auto cnn_trace = nn::trace_cnn_forward(cnn);
  std::printf("Ablation A13 — CNN workload (%s, 224x224x3, %.1f GMACs)\n\n",
              cnn.name.c_str(), static_cast<double>(cnn_trace.total_macs()) / 1e9);

  // Per-layer inventory.
  Table inv({"layer", "m", "k", "n", "MMACs", "weights (8b)"});
  for (const auto& g : cnn_trace.gemms) {
    inv.add_row({g.label, std::to_string(g.m), std::to_string(g.k), std::to_string(g.n),
                 Table::num(static_cast<double>(g.macs()) / 1e6, 1),
                 Table::num(static_cast<double>(g.weight_elements()) / 1e6, 2) + " MB"});
  }
  std::printf("%s\n", inv.to_string().c_str());

  for (int bits : {4, 8}) {
    const auto cmp = arch::compare_energy(cnn_trace, cfg, params, bits);
    std::printf("%s", eval::render_energy_comparison("VGG11-like inference", cmp).c_str());
    std::printf("\n");
  }

  // Cross-workload comparison at 8-bit (MACs per weight = reuse).
  Table x({"workload", "MACs/weight", "saving 8-bit"});
  struct W {
    const char* name;
    nn::WorkloadTrace trace;
  };
  const W ws[] = {
      {"VGG11-like (conv)", cnn_trace},
      {"BERT-base prefill", nn::trace_forward(nn::bert_base(128))},
      {"BERT decode ctx=512", nn::trace_decode_step(nn::bert_base(128), 512)},
  };
  for (const auto& w : ws) {
    std::size_t weights = 0;
    for (const auto& g : w.trace.gemms) weights += g.weight_elements();
    const auto cmp = arch::compare_energy(w.trace, cfg, params, 8);
    x.add_row({w.name,
               Table::num(static_cast<double>(w.trace.total_macs()) /
                              static_cast<double>(std::max<std::size_t>(weights, 1)),
                          1),
               Table::pct(cmp.total_saving())});
  }
  std::printf("%s", x.to_string().c_str());
  std::printf(
      "\nConv filters are reused over every output pixel (~800 MACs/weight for\n"
      "the conv stack), so the conv class is conversion-dominated and its\n"
      "saving approaches the Fig. 11 regime — consistent with the paper's\n"
      "framing that the P-DAC serves Albireo-class CNN accelerators too.\n"
      "The VGG FC head is the opposite extreme (1 MAC/weight, decode-like):\n"
      "pure weight streaming that the P-DAC cannot touch, which is what pulls\n"
      "the network total below BERT prefill in the table above.\n");
  return 0;
}
