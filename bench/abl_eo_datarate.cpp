// abl_eo_datarate — ablation A12: how many bits per wavelength per cycle
// the multi-bit EO interface (paper Fig. 2) can really carry.
//
// The P-DAC's input side assumes b optical bit-slots arrive per clock;
// a finite-bandwidth ring modulator limits that.  This bench sweeps the
// modulator's EO bandwidth and reports the worst-case eye opening per
// slot count and the max sustainable bits/cycle at a 60 % eye margin —
// plus the resulting per-wavelength payload rate.
#include <cstdio>

#include "common/table.hpp"
#include "converters/eo_timing.hpp"

int main() {
  using namespace pdac;
  using converters::EoTimingAnalyzer;
  using converters::EoTimingConfig;

  const auto clk = units::gigahertz(5.0);
  std::printf("Ablation A12 — EO interface eye vs bits-per-cycle (5 GHz clock)\n\n");

  Table t({"ring BW", "eye @4b", "eye @8b", "eye @16b", "max bits (eye>=0.6)",
           "payload rate"});
  for (double bw : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    auto eye = [&](int bits) {
      EoTimingConfig cfg;
      cfg.modulator_bandwidth_ghz = bw;
      cfg.clock = clk;
      cfg.bits_per_cycle = bits;
      return EoTimingAnalyzer(cfg).eye_opening();
    };
    const int max_bits = EoTimingAnalyzer::max_bits_per_cycle(bw, clk, 0.6);
    t.add_row({Table::num(bw, 0) + " GHz", Table::pct(eye(4)), Table::pct(eye(8)),
               Table::pct(eye(16)), std::to_string(max_bits),
               Table::num(static_cast<double>(max_bits) * 5.0, 0) + " Gb/s"});
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nThe paper's 8-bit words per cycle need a >=10 GHz ring at a 5 GHz clock\n"
      "(58%% eye) and are comfortable at 20 GHz (91%%); 4-bit operation — the\n"
      "CAMON example — closes even on a 5 GHz device.  Negative eye = slot\n"
      "energy never separates from its neighbours and the P-DAC's per-bit\n"
      "receivers cannot threshold the word.\n");
  return 0;
}
