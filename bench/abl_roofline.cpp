// abl_roofline — ablation A7: bandwidth roofline for LT-B.
//
// The paper frames Fig. 11 as a fully compute-bound projection.  This
// bench supplies the other axis: at what HBM bandwidth do prefill and
// decode actually become compute-bound, and how does the P-DAC saving
// behave once memory stalls (which burn laser/thermal power in both
// variants) are charged?
#include <cstdio>

#include "arch/memory_system.hpp"
#include "common/table.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main() {
  using namespace pdac;
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const auto model = nn::bert_base(128);

  const auto prefill = nn::trace_forward(model);
  const auto decode = nn::trace_decode_step(model, 512);

  std::printf("Ablation A7 — bandwidth roofline, %s on LT-B (8-bit)\n\n",
              model.name.c_str());

  for (const auto& [name, trace] :
       {std::pair{"prefill seq=128", &prefill}, std::pair{"decode ctx=512", &decode}}) {
    const auto traffic = arch::summarize_traffic(*trace, 8);
    std::printf("%s: %.1f MB HBM traffic, %.1f MB SRAM traffic per pass\n", name,
                static_cast<double>(traffic.hbm_bytes) / 1e6,
                static_cast<double>(traffic.sram_bytes) / 1e6);

    Table t({"HBM GB/s", "runtime", "bound by", "compute util", "saving w/ stalls"});
    for (double bw : {64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0}) {
      arch::MemorySystemConfig mem;
      mem.hbm_bandwidth_gb_s = bw;
      const auto roof = arch::roofline_runtime(*trace, cfg, mem, 8);
      const auto energy = arch::stalled_energy(*trace, cfg, params, mem, 8);
      t.add_row({Table::num(bw, 0),
                 Table::num(roof.runtime().seconds() * 1e6, 1) + " us",
                 roof.memory_bound() ? "memory" : "compute",
                 Table::pct(roof.compute_utilization()),
                 Table::pct(energy.saving())});
    }
    std::printf("%s\n", t.to_string().c_str());
  }

  std::printf(
      "Prefill turns compute-bound at practical HBM bandwidths, recovering the\n"
      "Fig. 9 saving; decode stays memory-bound even at 4 TB/s — its stalls add\n"
      "identical static energy to both variants and squeeze the P-DAC's\n"
      "relative advantage, matching the paper's compute-bound caveat.\n");
  return 0;
}
