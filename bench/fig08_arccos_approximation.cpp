// fig08_arccos_approximation — reproduces paper Fig. 8 and the §III-C
// derivation numbers:
//   * the f(r) vs arccos(r) curve (printed as a sampled series),
//   * the optimal breakpoint k* ≈ 0.7236 found by minimizing Eq. 17,
//   * the published segment coefficients (slope −3.0651, intercept
//     0.07648),
//   * max decode error 8.5 % at r = ±0.7236, and 15.9 % at r = ±1 for
//     the 1-segment Taylor baseline (Eq. 15).
#include <cmath>
#include <iostream>

#include "common/math_utils.hpp"
#include "common/table.hpp"
#include "core/arccos_approx.hpp"
#include "core/breakpoint_optimizer.hpp"
#include "eval/report.hpp"

int main() {
  using namespace pdac;
  using core::PiecewiseLinearArccos;

  std::cout << "Fig. 8 — piecewise-linear arccos approximation f(r)\n\n";

  const auto paper = PiecewiseLinearArccos::paper();

  // --- the curve ------------------------------------------------------------
  Table curve({"r", "arccos(r)", "f(r)", "cos(f(r))", "decode err"});
  for (double r : math::linspace(-1.0, 1.0, 21)) {
    curve.add_row({Table::num(r, 3), Table::num(std::acos(math::clamp_unit(r)), 4),
                   Table::num(paper.eval(r), 4), Table::num(paper.decoded(r), 4),
                   Table::pct(paper.decode_error(r, 1e-2), 2)});
  }
  std::cout << curve.to_string() << "\n";

  // --- breakpoint search (the paper's "running the program") ---------------
  const core::BreakpointOptimizer opt;
  const auto search = opt.optimize();
  std::cout << "breakpoint search over Eq. 17: k* = " << Table::num(search.k_star, 4)
            << " (objective " << Table::num(search.objective, 6) << ", "
            << search.evaluations << " evaluations)\n";

  Table sweep({"k", "integrated err (Eq. 17)", "max decode err"});
  for (const auto& s : opt.sweep(0.55, 0.9, 8)) {
    sweep.add_row({Table::num(s.k, 3), Table::num(s.objective, 5),
                   Table::pct(s.max_decode_error, 2)});
  }
  std::cout << sweep.to_string() << "\n";

  // --- scoreboard -------------------------------------------------------------
  const auto taylor_err =
      std::abs(std::cos(core::arccos_taylor1(1.0)) - 1.0) / 1.0;  // Eq. 15 at r = 1
  const auto neg = paper.piece(core::Segment::kNegativeOuter);
  std::cout << eval::render_scoreboard(
      "Fig. 8 / Sec. III-C",
      {
          {"optimal breakpoint k*", 0.7236, search.k_star, ""},
          {"max decode error at +-k*", 8.5, 100.0 * paper.max_decode_error(), "%"},
          {"1-segment Taylor error at r=+-1", 15.9, 100.0 * taylor_err, "%"},
          {"negative-outer slope", -3.0651, neg.slope, ""},
          {"negative-outer intercept", 0.07648, neg.intercept, ""},
          {"worst-error location |r|", 0.7236, paper.breakpoint(), ""},
      });
  return 0;
}
