// abl_snr — ablation A8: detector SNR vs laser power, and what it says
// about the laser-precision scaling in the power model.
//
// Measures DDot readout ENOB as the carrier amplitude (∝ √laser power)
// grows, for thermal-limited and shot-limited detection, then reports
// the laser-power-per-added-bit rate each regime implies and compares
// with the (milder) exponent the paper's own Fig. 11 numbers imply.
#include <cmath>
#include <cstdio>

#include "arch/power_params.hpp"
#include "common/table.hpp"
#include "ptc/noise_analysis.hpp"

int main() {
  using namespace pdac;

  std::printf("Ablation A8 — DDot readout SNR vs carrier power (8 wavelengths)\n\n");

  ptc::SnrConfig thermal;
  thermal.noise.enabled = true;
  thermal.noise.thermal_noise_std = 0.02;
  thermal.trials = 6000;

  ptc::SnrConfig shot;
  shot.noise.enabled = true;
  shot.noise.shot_noise_scale = 0.02;
  shot.trials = 6000;

  Table t({"amplitude scale", "laser power", "ENOB (thermal)", "ENOB (shot)"});
  for (double s : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    ptc::SnrConfig a = thermal, b = shot;
    a.amplitude_scale = b.amplitude_scale = s;
    const auto ra = ptc::measure_ddot_snr(a);
    const auto rb = ptc::measure_ddot_snr(b);
    t.add_row({Table::num(s, 1), Table::num(s * s, 1) + "x",
               Table::num(ra.effective_bits, 2), Table::num(rb.effective_bits, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Required laser power for target precisions, thermal-limited.
  Table req({"target ENOB", "required amplitude", "required laser power"});
  double prev_power = 0.0;
  for (double bits : {4.0, 6.0, 8.0}) {
    const double s = ptc::required_amplitude_scale(bits, thermal);
    const double power = s * s;
    req.add_row({Table::num(bits, 0), Table::num(s, 2),
                 Table::num(power, 2) + "x" +
                     (prev_power > 0.0
                          ? "  (" + Table::num(power / prev_power, 1) + "x per 2 bits)"
                          : "")});
    prev_power = power;
  }
  std::printf("%s", req.to_string().c_str());

  const auto params = arch::lt_power_params();
  std::printf(
      "\nThermal-limited detection needs ~2x laser power per added bit (shot-\n"
      "limited needs ~4x).  The paper's Fig. 11 numbers imply a much milder\n"
      "2^%.3f per bit (x%.2f from 4-bit to 8-bit) — i.e. LT-B's laser budget\n"
      "is set by insertion-loss/link margins, not by quantization SNR, and a\n"
      "strictly SNR-sized laser would make high-precision operation MORE\n"
      "expensive than the power model assumes.  This is a modeling tension in\n"
      "the original evaluation that the reproduction makes explicit.\n",
      params.laser_bit_exponent, std::exp2(params.laser_bit_exponent * 4.0));
  return 0;
}
