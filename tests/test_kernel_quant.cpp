// Integer quant tier (ExecutionPath::kKernelQuant, DESIGN.md §15):
// exact int16-code dot kernels, the on-grid precondition machinery, the
// banded-identity contract vs the scalar kernel, and the faults-layer
// fallback that keeps guarded execution live on off-grid lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "core/modulator_driver.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/lane_bank.hpp"
#include "faults/lane_table.hpp"
#include "nn/backend.hpp"
#include "ptc/abft.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;

std::vector<std::int16_t> random_codes(std::size_t n, std::int32_t max_abs, Rng& rng) {
  std::vector<std::int16_t> v(n);
  for (auto& c : v) {
    c = static_cast<std::int16_t>(
        std::lround(rng.uniform(-static_cast<double>(max_abs), static_cast<double>(max_abs))));
  }
  return v;
}

std::int64_t naive_dot(const std::vector<std::int16_t>& x, const std::vector<std::int16_t>& y) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += static_cast<std::int64_t>(x[i]) * static_cast<std::int64_t>(y[i]);
  }
  return acc;
}

// --- integer dot kernels: exact, ISA-independent ---------------------------

TEST(KernelQuant, IntDotMatchesNaiveInt64) {
  Rng rng(11);
  // Lengths straddle the 16-lane SIMD width and its tails; max_abs
  // values cover narrow (4-bit) through full int16 operands.
  const std::size_t lengths[] = {0, 1, 3, 4, 15, 16, 17, 31, 64, 333, 1024};
  const std::int32_t mags[] = {7, 127, 2047, 32767};
  for (const std::size_t n : lengths) {
    for (const std::int32_t mc : mags) {
      const auto x = random_codes(n, mc, rng);
      const auto y = random_codes(n, mc, rng);
      EXPECT_EQ(simd::dot_i16(x.data(), y.data(), n, mc), naive_dot(x, y))
          << "n=" << n << " mc=" << mc;
      EXPECT_EQ(simd::dot_self_i16(x.data(), n, mc), naive_dot(x, x))
          << "n=" << n << " mc=" << mc;
    }
  }
}

TEST(KernelQuant, IntDotMaxMagnitudeDrainStress) {
  // Every element at ±32767 forces the int32 accumulator to its drain
  // cadence of one madd per widen — the worst case the overflow bound
  // (2 · max_abs² per 16-lane fold) is derived for.
  const std::size_t n = 4999;
  std::vector<std::int16_t> x(n), y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = (i % 2 == 0) ? std::int16_t{32767} : std::int16_t{-32767};
    y[i] = (i % 3 == 0) ? std::int16_t{-32767} : std::int16_t{32767};
  }
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += static_cast<std::int64_t>(x[i]) * static_cast<std::int64_t>(y[i]);
  }
  EXPECT_EQ(simd::dot_i16(x.data(), y.data(), n, 32767), acc);
  EXPECT_EQ(simd::dot_self_i16(x.data(), n, 32767),
            static_cast<std::int64_t>(32767) * 32767 * static_cast<std::int64_t>(n));
}

TEST(KernelQuant, FourWayDotMatchesSingle) {
  Rng rng(12);
  const std::int32_t mc = 127;
  for (const std::size_t n : {5ul, 16ul, 100ul, 767ul}) {
    const auto x = random_codes(n, mc, rng);
    std::vector<std::vector<std::int16_t>> ys;
    for (int j = 0; j < 4; ++j) ys.push_back(random_codes(n, mc, rng));
    const std::int16_t* yp[4] = {ys[0].data(), ys[1].data(), ys[2].data(), ys[3].data()};
    std::int64_t out[4] = {0, 0, 0, 0};
    simd::dot4_i16(x.data(), yp, n, mc, out);
    for (int j = 0; j < 4; ++j) {
      EXPECT_EQ(out[j], simd::dot_i16(x.data(), ys[j].data(), n, mc)) << "j=" << j;
    }
  }
}

// --- on-grid precondition machinery ----------------------------------------

TEST(KernelQuant, BitTrueDriverIsOnGridAndLadderSelectsIt) {
  // The bit-true chain encodes exactly onto the quantizer grid, so the
  // runtime ladder picks the quant tier for it — and must never pick it
  // for the transcendental P-DAC / ideal-DAC transfers.
  const auto bt = core::make_bit_true_driver(8);
  const converters::Quantizer q(8);
  for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
    EXPECT_EQ(bt->encode(q.decode(c)), q.decode(c)) << "code " << c;
  }
  EXPECT_EQ(nn::fastest_gemm_config(*bt).path, ptc::ExecutionPath::kKernelQuant);
  EXPECT_NE(nn::fastest_gemm_config(*core::make_pdac_driver(8)).path,
            ptc::ExecutionPath::kKernelQuant);
  EXPECT_NE(nn::fastest_gemm_config(*core::make_ideal_dac_driver(8)).path,
            ptc::ExecutionPath::kKernelQuant);
}

TEST(KernelQuant, ConstructionRejectsOffGridDriver) {
  const auto drv = core::make_pdac_driver(8);
  ptc::GemmConfig cfg = nn::quant_gemm_config();
  EXPECT_THROW((void)ptc::PhotonicGemm(*drv, cfg), PreconditionError);
}

TEST(KernelQuant, PreparedOperandCarriesMatchingCodes) {
  Rng rng(21);
  const auto drv = core::make_bit_true_driver(8);
  const ptc::PhotonicGemm gemm(*drv, nn::quant_gemm_config());
  const Matrix b = Matrix::random_gaussian(37, 11, rng, 0.0, 1.0);
  const ptc::PreparedOperand pb = gemm.prepare_b(b);
  const converters::Quantizer& q = gemm.engine().quantizer();
  ASSERT_EQ(pb.qcodes.rows(), b.cols());
  ASSERT_EQ(pb.qcodes.cols(), b.rows());
  // decode(code) must reproduce the double encoding bit for bit — the
  // codes ARE the operand, at a quarter of the bytes.
  for (std::size_t r = 0; r < pb.qcodes.rows(); ++r) {
    const auto enc = pb.encoded.row(r);
    const auto codes = pb.qcodes.row(r);
    for (std::size_t p = 0; p < pb.qcodes.cols(); ++p) {
      EXPECT_EQ(q.decode(codes[p]), enc[p]) << "r=" << r << " p=" << p;
    }
  }
}

TEST(KernelQuant, MultiplyPreparedRejectsDoubleTierOperand) {
  Rng rng(22);
  const auto drv = core::make_bit_true_driver(8);
  const ptc::PhotonicGemm scalar_gemm(*drv, ptc::GemmConfig{});
  const ptc::PhotonicGemm quant_gemm(*drv, nn::quant_gemm_config());
  const Matrix a = Matrix::random_gaussian(4, 20, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(20, 6, rng, 0.0, 1.0);
  const ptc::PreparedOperand pb = scalar_gemm.prepare_b(b);  // no codes staged
  EXPECT_THROW((void)quant_gemm.multiply_prepared(a, pb), PreconditionError);
}

// --- banded identity vs the scalar kernel ----------------------------------

void expect_band_identity(bool full_optics) {
  Rng rng(31);
  ptc::GemmConfig base;
  base.dot.use_full_optics = full_optics;
  base.dot.adc_readout = full_optics;  // exercise both readout modes
  const auto drv = core::make_bit_true_driver(8);
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 768, 768}, {12, 128, 64}, {5, 333, 17}};
  for (const auto& s : shapes) {
    const Matrix a = Matrix::random_gaussian(s.m, s.k, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(s.k, s.n, rng, 0.0, 1.0);
    const ptc::PhotonicGemm scalar_gemm(*drv, base);
    const ptc::PhotonicGemm quant_gemm(*drv, nn::quant_gemm_config(base));
    const ptc::GemmResult sr = scalar_gemm.multiply(a, b);
    const ptc::GemmResult qr = quant_gemm.multiply(a, b);
    // Event accounting is part of the contract, field for field.
    EXPECT_EQ(qr.events.modulation_events, sr.events.modulation_events);
    EXPECT_EQ(qr.events.detection_events, sr.events.detection_events);
    EXPECT_EQ(qr.events.adc_events, sr.events.adc_events);
    EXPECT_EQ(qr.events.ddot_ops, sr.events.ddot_ops);
    EXPECT_EQ(qr.events.macs, sr.events.macs);
    EXPECT_EQ(qr.events.cycles, sr.events.cycles);
    ptc::GuardConfig g;
    g.noise_sigma = ptc::calibrate_guard_sigma(base.dot, s.k);
    const double band =
        sr.a_scale * sr.b_scale * ptc::guard_tolerance(g, s.k, 1, static_cast<double>(s.k));
    ASSERT_EQ(qr.c.rows(), sr.c.rows());
    ASSERT_EQ(qr.c.cols(), sr.c.cols());
    for (std::size_t i = 0; i < sr.c.size(); ++i) {
      EXPECT_NEAR(qr.c.data()[i], sr.c.data()[i], band) << "i=" << i;
    }
  }
}

TEST(KernelQuant, MatchesScalarKernelWithinBandFullOptics) { expect_band_identity(true); }
TEST(KernelQuant, MatchesScalarKernelWithinBandFunctional) { expect_band_identity(false); }

TEST(KernelQuant, ThreadCountInvariance) {
  // Integer sums are associative, so unlike the double SIMD tier the
  // quant tier is bit-identical at ANY thread count — pin it.
  Rng rng(41);
  const Matrix a = Matrix::random_gaussian(33, 200, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(200, 29, rng, 0.0, 1.0);
  const auto drv = core::make_bit_true_driver(8);
  const ptc::PhotonicGemm serial(*drv, nn::quant_gemm_config());
  const ptc::PhotonicGemm wide(*drv, nn::parallel_gemm_config(4, nn::quant_gemm_config()));
  const ptc::GemmResult sr = serial.multiply(a, b);
  const ptc::GemmResult wr = wide.multiply(a, b);
  ASSERT_EQ(sr.c.size(), wr.c.size());
  for (std::size_t i = 0; i < sr.c.size(); ++i) {
    EXPECT_EQ(sr.c.data()[i], wr.c.data()[i]) << "i=" << i;
  }
}

TEST(KernelQuant, GuardedCleanProductVerifies) {
  Rng rng(51);
  const Matrix a = Matrix::random_gaussian(20, 96, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(96, 24, rng, 0.0, 1.0);
  const auto drv = core::make_bit_true_driver(8);
  const ptc::PhotonicGemm gemm(*drv, nn::guarded_gemm_config({}, nn::quant_gemm_config()));
  const ptc::GemmResult r = gemm.multiply(a, b);
  EXPECT_TRUE(r.guard.enabled);
  EXPECT_EQ(r.guard.mismatched_tiles, 0u);
  EXPECT_LE(r.guard.worst_residual, r.guard.worst_tolerance);
}

// --- faults layer: off-grid lanes degrade the tier, never the product ------

faults::LaneBank perturbed_bank() {
  faults::LaneBankConfig bc;
  bc.pdac.bits = 8;
  bc.wavelengths = 6;
  bc.variation.tia_gain_sigma = 0.01;
  bc.variation.bias_sigma = 0.002;
  bc.variation.seed = 9;
  return faults::LaneBank(bc);
}

TEST(KernelQuant, PerturbedLanesAreOffGrid) {
  faults::LaneBank bank = perturbed_bank();
  faults::production_trim(bank);
  faults::LaneEncodeTable table;
  table.ensure(bank);
  // Physical analog transfers never land bitwise on the quantizer grid,
  // so the quant view reports unavailable and the ladder resolves to a
  // double tier.
  EXPECT_FALSE(table.quant_available());
  const ptc::ExecutionPath path = faults::auto_execution_path(bank);
  EXPECT_NE(path, ptc::ExecutionPath::kKernelQuant);
  EXPECT_EQ(path, simd::has_fast_path() ? ptc::ExecutionPath::kKernelSimd
                                        : ptc::ExecutionPath::kKernel);
}

TEST(KernelQuant, GuardedBackendStaysLiveWhenQuantUnavailable) {
  // Requesting the quant tier on an off-grid bank must not fail, stall
  // or trip the guard: the product runs on the double fallback with
  // clean verdicts and the same closed-form event charges as scalar.
  Rng rng(61);
  const Matrix a = Matrix::random_gaussian(16, 40, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(40, 12, rng, 0.0, 1.0);

  const auto run = [&](ptc::ExecutionPath path, Matrix* out, ptc::EventCounter* ev,
                       std::size_t* mismatched) {
    faults::LaneBank bank = perturbed_bank();
    faults::production_trim(bank);
    faults::GuardedBackendConfig cfg;
    cfg.path = path;
    faults::GuardedBackend backend(bank, cfg);
    *out = backend.matmul(a, b);
    *ev = backend.events();
    *mismatched = backend.monitor().snapshot().mismatched_tiles;
  };

  Matrix c_scalar, c_quant;
  ptc::EventCounter ev_scalar, ev_quant;
  std::size_t mm_scalar = 0, mm_quant = 0;
  run(ptc::ExecutionPath::kKernel, &c_scalar, &ev_scalar, &mm_scalar);
  run(ptc::ExecutionPath::kKernelQuant, &c_quant, &ev_quant, &mm_quant);

  EXPECT_EQ(mm_scalar, 0u);
  EXPECT_EQ(mm_quant, 0u);
  EXPECT_EQ(ev_quant.macs, ev_scalar.macs);
  EXPECT_EQ(ev_quant.adc_events, ev_scalar.adc_events);
  EXPECT_EQ(ev_quant.cycles, ev_scalar.cycles);
  ASSERT_EQ(c_quant.size(), c_scalar.size());
  // The fallback runs blocked double dots — banded, not bit-exact.
  ptc::GuardConfig g;
  const double band = ptc::guard_tolerance(g, a.cols(), 1, static_cast<double>(a.cols()));
  for (std::size_t i = 0; i < c_scalar.size(); ++i) {
    EXPECT_NEAR(c_quant.data()[i], c_scalar.data()[i], band) << "i=" << i;
  }
}

}  // namespace
