// Tests for the CNN (im2col) workload tracer.
#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "common/require.hpp"
#include "nn/cnn_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(ConvLayer, OutputSizeFormula) {
  ConvLayer l{"c", 3, 64, 3, 1, 1};
  EXPECT_EQ(l.out_size(224), 224u);  // same-padding 3×3 stride 1
  l.stride = 2;
  EXPECT_EQ(l.out_size(224), 112u);
  l.kernel = 7;
  l.padding = 3;
  l.stride = 2;
  EXPECT_EQ(l.out_size(224), 112u);
}

TEST(CnnTrace, Im2colDimensions) {
  const auto cfg = tiny_cnn(16);
  const auto t = trace_cnn_forward(cfg);
  ASSERT_GE(t.gemms.size(), 3u);
  // conv1: 3→8 on 16²: m=256, k=3·9=27, n=8.
  EXPECT_EQ(t.gemms[0].m, 256u);
  EXPECT_EQ(t.gemms[0].k, 27u);
  EXPECT_EQ(t.gemms[0].n, 8u);
  EXPECT_EQ(t.gemms[0].op_class, OpClass::kConv);
  EXPECT_TRUE(t.gemms[0].static_weights);
}

TEST(CnnTrace, PoolingHalvesSpatialSize) {
  const auto cfg = tiny_cnn(16);
  const auto t = trace_cnn_forward(cfg);
  // conv2 runs at 16² (pool after conv2), fc input is 16·8·8.
  EXPECT_EQ(t.gemms[1].m, 256u);
  EXPECT_EQ(t.gemms[2].k, 16u * 8u * 8u);
  EXPECT_EQ(t.gemms[2].op_class, OpClass::kFfn);
}

TEST(CnnTrace, Vgg11MacCountIsImageNetScale) {
  const auto cfg = vgg11_like();
  const double gmacs = static_cast<double>(cfg.total_macs()) / 1e9;
  // VGG-11 is ~7.6 GMACs; our -like variant must be the same order.
  EXPECT_GT(gmacs, 4.0);
  EXPECT_LT(gmacs, 12.0);
}

TEST(CnnTrace, ChannelMismatchRejected) {
  CnnConfig bad;
  bad.convs = {{"c1", 3, 8}, {"c2", 16, 8}};  // 8 != 16
  EXPECT_THROW(trace_cnn_forward(bad), PreconditionError);
}

TEST(CnnTrace, EmptyNetworkRejected) {
  EXPECT_THROW(trace_cnn_forward(CnnConfig{}), PreconditionError);
}

TEST(CnnTrace, ConvLayersReuseWeightsFarMoreThanTransformer) {
  // Filter reuse applies to the *conv* layers; the VGG FC head is the
  // opposite extreme (each weight used once, like decode GEMVs).
  const auto cnn = trace_cnn_forward(vgg11_like());
  const auto bert = trace_forward(bert_base(128));
  auto class_reuse = [](const WorkloadTrace& t, OpClass cls) {
    std::size_t w = 0, macs = 0;
    for (const auto& g : t.gemms) {
      if (g.op_class != cls) continue;
      w += g.weight_elements();
      macs += g.macs();
    }
    return static_cast<double>(macs) / static_cast<double>(std::max<std::size_t>(w, 1));
  };
  const double conv_reuse = class_reuse(cnn, OpClass::kConv);
  const double bert_static_reuse = class_reuse(bert, OpClass::kFfn);
  EXPECT_GT(conv_reuse, 4.0 * bert_static_reuse);
  // …while the FC head reuses each weight exactly once.
  EXPECT_NEAR(class_reuse(cnn, OpClass::kFfn), 1.0, 1e-9);
}

TEST(CnnTrace, EnergyModelBucketsConvSeparately) {
  const auto t = trace_cnn_forward(tiny_cnn(16));
  const auto cfg = arch::lt_base();
  const auto params = arch::lt_power_params();
  const auto we = arch::evaluate_energy(t, cfg, params, 8, arch::SystemVariant::kDacBased);
  EXPECT_GT(we.conv.total().joules(), 0.0);
  EXPECT_GT(we.ffn.total().joules(), 0.0);   // the fc head
  EXPECT_DOUBLE_EQ(we.attention.total().joules(), 0.0);
  EXPECT_DOUBLE_EQ(we.of(OpClass::kConv).total().joules(), we.conv.total().joules());
}

TEST(CnnTrace, ConvClassSavingApproachesComputeBoundCeiling) {
  const auto t = trace_cnn_forward(vgg11_like());
  const auto cfg = arch::lt_base();
  const auto params = arch::lt_power_params();
  const auto cmp = arch::compare_energy(t, cfg, params, 8);
  // Dense filter reuse → the conv class is conversion-dominated and
  // lands near Fig. 11's regime, while the single-use-weight FC head is
  // movement-dominated and dilutes the network total.
  EXPECT_GT(cmp.saving(OpClass::kConv), 0.35);
  EXPECT_GT(cmp.saving(OpClass::kConv), 3.0 * cmp.saving(OpClass::kFfn));
  EXPECT_GT(cmp.total_saving(), 0.15);
}

TEST(CnnTrace, OpClassToStringCoversConv) {
  EXPECT_EQ(to_string(OpClass::kConv), "conv");
}

}  // namespace
