// Tests for the DDot unit: the optical dot product must satisfy paper
// Eq. 6 *exactly* — the datapath is passive linear optics.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "ptc/ddot.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

TEST(Ddot, SingleChannelProduct) {
  const Ddot ddot;
  const std::vector<double> x{0.8};
  const std::vector<double> y{-0.35};
  EXPECT_NEAR(ddot.compute(x, y).value(), 0.8 * -0.35, 1e-12);
}

TEST(Ddot, OrthogonalVectorsGiveZero) {
  const Ddot ddot;
  const std::vector<double> x{1.0, 0.0};
  const std::vector<double> y{0.0, 1.0};
  EXPECT_NEAR(ddot.compute(x, y).value(), 0.0, 1e-12);
}

TEST(Ddot, PhotocurrentsMatchEq6Terms) {
  // I⁺ = Σ(x+y)²/4 and I⁻ = Σ(x−y)²/4, individually.
  const Ddot ddot;
  const std::vector<double> x{0.5, -0.2};
  const std::vector<double> y{0.3, 0.7};
  const DdotReading r = ddot.compute(x, y);
  double ip = 0.0, im = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    ip += (x[i] + y[i]) * (x[i] + y[i]) / 4.0;
    im += (x[i] - y[i]) * (x[i] - y[i]) / 4.0;
  }
  EXPECT_NEAR(r.i_plus, ip, 1e-12);
  EXPECT_NEAR(r.i_minus, im, 1e-12);
}

TEST(Ddot, FullRangeOperands) {
  // Negative values ride on π-phase fields; the dot product still works.
  const Ddot ddot;
  const std::vector<double> x{-1.0, -0.5, 0.5, 1.0};
  const std::vector<double> y{1.0, -1.0, -0.5, 0.25};
  double expect = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) expect += x[i] * y[i];
  EXPECT_NEAR(ddot.compute(x, y).value(), expect, 1e-12);
}

TEST(Ddot, RejectsLengthMismatch) {
  const Ddot ddot;
  const std::vector<double> x{1.0, 2.0};
  const std::vector<double> y{1.0};
  EXPECT_THROW((void)ddot.compute(x, y), PreconditionError);
}

TEST(Ddot, RejectsRailChannelMismatch) {
  const Ddot ddot;
  photonics::DualRail rails{photonics::WdmField(2), photonics::WdmField(3)};
  EXPECT_THROW((void)ddot.compute(rails), PreconditionError);
}

TEST(Ddot, NoisyDetectionCentersOnTrueValue) {
  photonics::PhotodetectorConfig noisy;
  noisy.noise.enabled = true;
  noisy.noise.thermal_noise_std = 0.01;
  const Ddot ddot(photonics::PhaseShifter::minus_90(),
                  photonics::DirectionalCoupler::fifty_fifty(),
                  photonics::Photodetector(noisy), photonics::Photodetector(noisy));
  photonics::DualRail rails{photonics::WdmField(1), photonics::WdmField(1)};
  rails.upper.set_amplitude(0, photonics::Complex{0.6, 0.0});
  rails.lower.set_amplitude(0, photonics::Complex{0.4, 0.0});
  Rng rng(3);
  double sum = 0.0;
  const int trials = 20'000;
  for (int i = 0; i < trials; ++i) sum += ddot.compute_noisy(rails, rng).value();
  EXPECT_NEAR(sum / trials, 0.24, 0.001);
}

TEST(Ddot, ImbalancedCouplerDegradesAccuracy) {
  // A non-50:50 coupler breaks the (x+y)/(x−y) split; the error must be
  // visible (robustness-analysis hook).
  const Ddot bad(photonics::PhaseShifter::minus_90(), photonics::DirectionalCoupler(0.6),
                 photonics::Photodetector(), photonics::Photodetector());
  const std::vector<double> x{0.9};
  const std::vector<double> y{0.8};
  EXPECT_GT(std::abs(bad.compute(x, y).value() - 0.72), 0.05);
}

// --- property: Eq. 6 holds for random vectors of any width -----------------
class DdotExactness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DdotExactness, MatchesAlgebraicDotProduct) {
  const Ddot ddot;
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const auto x = rng.uniform_vector(GetParam(), -1.0, 1.0);
    const auto y = rng.uniform_vector(GetParam(), -1.0, 1.0);
    double expect = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) expect += x[i] * y[i];
    EXPECT_NEAR(ddot.compute(x, y).value(), expect, 1e-10 * static_cast<double>(x.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(VectorWidths, DdotExactness,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256));

}  // namespace
