// Weight-stationary operand cache (DESIGN.md §10): multiply_prepared
// must be bit-identical to multiply — numerics AND event counts — at any
// thread count, bit width and tile shape; the operand cache must account
// hits/misses/evictions/invalidations exactly; and no stale encoding may
// survive a fault-injection, re-trim or fence epoch bump in the
// degraded backend.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/lane_bank.hpp"
#include "faults/self_test.hpp"
#include "nn/backend.hpp"
#include "nn/linear.hpp"
#include "nn/operand_cache.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

void expect_bit_identical(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identity, not closeness.
    EXPECT_EQ(got.data()[i], want.data()[i]) << what << ": element " << i;
  }
}

void expect_same_events(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

std::shared_ptr<const PreparedOperand> dummy_operand(std::size_t elems, std::uint64_t epoch) {
  auto op = std::make_shared<PreparedOperand>();
  op->encoded = Matrix(1, elems);
  op->epoch = epoch;
  return op;
}

TEST(MultiplyPrepared, BitIdenticalAcrossShapesThreadsAndBits) {
  const struct {
    std::size_t m, k, n;
  } shapes[] = {{1, 48, 32}, {5, 33, 17}, {9, 8, 9}, {1, 7, 1}};
  for (int bits : {4, 8}) {
    const auto drv = core::make_pdac_driver(bits);
    for (std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      for (const auto& s : shapes) {
        GemmConfig cfg;
        cfg.threads = threads;
        cfg.array_rows = 4;
        cfg.array_cols = 4;
        const PhotonicGemm gemm(*drv, cfg);
        Rng rng(17 * s.m + s.n + static_cast<std::size_t>(bits));
        const Matrix a = Matrix::random_gaussian(s.m, s.k, rng);
        const Matrix b = Matrix::random_gaussian(s.k, s.n, rng);

        const GemmResult direct = gemm.multiply(a, b);
        const PreparedOperand pb = gemm.prepare_b(b);
        const GemmResult prepared = gemm.multiply_prepared(a, pb);

        expect_bit_identical(prepared.c, direct.c, "prepared vs direct");
        EXPECT_EQ(prepared.a_scale, direct.a_scale);
        EXPECT_EQ(prepared.b_scale, direct.b_scale);
        expect_same_events(prepared.events, direct.events);
        expect_same_events(prepared.events, gemm.count_events(s.m, s.k, s.n));
      }
    }
  }
}

TEST(MultiplyPrepared, BitIdenticalOnFullOpticsPath) {
  const auto drv = core::make_pdac_driver(6);
  GemmConfig cfg;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.threads = 2;
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(5);
  const Matrix a = Matrix::random_gaussian(6, 19, rng);
  const Matrix b = Matrix::random_gaussian(19, 11, rng);
  const GemmResult direct = gemm.multiply(a, b);
  const GemmResult prepared = gemm.multiply_prepared(a, gemm.prepare_b(b));
  expect_bit_identical(prepared.c, direct.c, "full optics");
  expect_same_events(prepared.events, direct.events);
}

TEST(MultiplyPrepared, PreparedOperandReusableAcrossManyAOperands) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, {});
  Rng rng(11);
  const Matrix b = Matrix::random_gaussian(24, 10, rng);
  const PreparedOperand pb = gemm.prepare_b(b);
  for (int t = 0; t < 4; ++t) {
    const Matrix a = Matrix::random_gaussian(1 + static_cast<std::size_t>(t), 24, rng);
    expect_bit_identical(gemm.multiply_prepared(a, pb).c, gemm.multiply(a, b).c,
                         "reused prepared B");
  }
}

// The engine reuses per-call scratch buffers; alternating shapes must
// never leak state between products.
TEST(MultiplyPrepared, ScratchReuseAcrossAlternatingShapes) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, {});
  Rng rng(23);
  const Matrix a1 = Matrix::random_gaussian(7, 31, rng);
  const Matrix b1 = Matrix::random_gaussian(31, 13, rng);
  const Matrix a2 = Matrix::random_gaussian(2, 9, rng);
  const Matrix b2 = Matrix::random_gaussian(9, 21, rng);
  const Matrix first = gemm.multiply(a1, b1).c;
  const Matrix second = gemm.multiply(a2, b2).c;
  expect_bit_identical(gemm.multiply(a1, b1).c, first, "repeat large after small");
  expect_bit_identical(gemm.multiply(a2, b2).c, second, "repeat small after large");
}

TEST(OperandCache, HitMissAndVersionInvalidation) {
  nn::OperandCache cache;
  EXPECT_EQ(cache.lookup(1, 1, 0), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.insert(1, 1, dummy_operand(8, 0));
  EXPECT_NE(cache.lookup(1, 1, 0), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Content-version mismatch: entry erased, miss reported.
  EXPECT_EQ(cache.lookup(1, 2, 0), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The stale entry is really gone — a lookup with the OLD version
  // misses too.
  EXPECT_EQ(cache.lookup(1, 1, 0), nullptr);
}

TEST(OperandCache, ContainsIsAPureProbe) {
  nn::OperandCacheConfig cfg;
  const std::size_t one = dummy_operand(64, 0)->bytes();
  cfg.capacity_bytes = 2 * one;
  nn::OperandCache cache(cfg);
  cache.insert(1, 1, dummy_operand(64, /*epoch=*/5));
  cache.insert(2, 1, dummy_operand(64, /*epoch=*/5));

  EXPECT_TRUE(cache.contains(1, 1, 5));
  EXPECT_FALSE(cache.contains(1, 2, 5));  // stale content version
  EXPECT_FALSE(cache.contains(1, 1, 6));  // stale encoder epoch
  EXPECT_FALSE(cache.contains(3, 1, 5));  // never inserted
  EXPECT_FALSE(cache.contains(0, 1, 5));  // id 0 is uncacheable

  // No stats mutation and no stale-entry eviction: the scheduler probes
  // without perturbing the cache.
  const nn::OperandCacheStats before = cache.stats();
  for (int i = 0; i < 8; ++i) (void)cache.contains(1, 2, 5);
  EXPECT_EQ(cache.stats().hits, before.hits);
  EXPECT_EQ(cache.stats().misses, before.misses);
  EXPECT_EQ(cache.stats().invalidations, before.invalidations);
  EXPECT_EQ(cache.stats().entries, 2u);

  // No LRU refresh either: probing entry 1 must not save it from
  // eviction — a lookup() would have.
  EXPECT_TRUE(cache.contains(1, 1, 5));
  cache.insert(3, 1, dummy_operand(64, 5));  // evicts 1, still least recent
  EXPECT_FALSE(cache.contains(1, 1, 5));
  EXPECT_TRUE(cache.contains(2, 1, 5));
  EXPECT_TRUE(cache.contains(3, 1, 5));
}

TEST(OperandCache, EpochInvalidation) {
  nn::OperandCache cache;
  cache.insert(7, 1, dummy_operand(4, /*epoch=*/3));
  EXPECT_NE(cache.lookup(7, 1, 3), nullptr);
  // Encoder state moved on: same weight, same version, new epoch.
  EXPECT_EQ(cache.lookup(7, 1, 4), nullptr);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(OperandCache, LruEvictionByBytes) {
  nn::OperandCacheConfig cfg;
  const std::size_t one = dummy_operand(64, 0)->bytes();
  cfg.capacity_bytes = 3 * one;
  nn::OperandCache cache(cfg);
  cache.insert(1, 1, dummy_operand(64, 0));
  cache.insert(2, 1, dummy_operand(64, 0));
  cache.insert(3, 1, dummy_operand(64, 0));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_NE(cache.lookup(1, 1, 0), nullptr);  // refresh 1 → LRU order 1,3,2

  cache.insert(4, 1, dummy_operand(64, 0));  // evicts 2, the least recent
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.lookup(2, 1, 0), nullptr);
  EXPECT_NE(cache.lookup(1, 1, 0), nullptr);
  EXPECT_NE(cache.lookup(3, 1, 0), nullptr);
  EXPECT_NE(cache.lookup(4, 1, 0), nullptr);
  EXPECT_LE(cache.stats().resident_bytes, cfg.capacity_bytes);
}

TEST(OperandCache, OversizedOperandIsRejectedUpFront) {
  nn::OperandCacheConfig cfg;
  cfg.capacity_bytes = 64;  // smaller than any real operand
  nn::OperandCache cache(cfg);
  cache.insert(1, 1, dummy_operand(1024, 0));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  // Refused before touching the LRU list — not admitted-then-evicted.
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().oversized_rejects, 1u);
}

TEST(OperandCache, OversizedInsertLeavesResidentsUntouched) {
  nn::OperandCacheConfig cfg;
  const std::size_t one = dummy_operand(64, 0)->bytes();
  cfg.capacity_bytes = 2 * one;
  nn::OperandCache cache(cfg);
  cache.insert(1, 1, dummy_operand(64, 0));
  cache.insert(2, 1, dummy_operand(64, 0));
  const std::uint64_t resident = cache.stats().resident_bytes;

  // The regression: this insert used to flush both residents AND the
  // newcomer — a full cache wipe for an operand that can never fit.
  cache.insert(3, 1, dummy_operand(1024, 0));
  EXPECT_EQ(cache.stats().oversized_rejects, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().resident_bytes, resident);
  EXPECT_NE(cache.lookup(1, 1, 0), nullptr);
  EXPECT_NE(cache.lookup(2, 1, 0), nullptr);
  EXPECT_EQ(cache.lookup(3, 1, 0), nullptr);
}

TEST(OperandCache, DisabledCacheStoresNothing) {
  nn::OperandCacheConfig cfg;
  cfg.enabled = false;
  nn::OperandCache cache(cfg);
  cache.insert(1, 1, dummy_operand(8, 0));
  EXPECT_EQ(cache.lookup(1, 1, 0), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(PhotonicBackendCache, WarmForwardBitIdenticalAndAccounted) {
  nn::PhotonicBackend backend(core::make_pdac_driver(8), {});
  nn::Linear layer(12, 9);
  Rng rng(3);
  layer.init_random(rng);
  const Matrix x = Matrix::random_gaussian(4, 12, rng);

  const Matrix cold = layer.forward(x, backend);
  const auto cold_events = backend.events();
  EXPECT_EQ(backend.operand_cache()->stats().misses, 1u);

  backend.reset_events();
  const Matrix warm = layer.forward(x, backend);
  expect_bit_identical(warm, cold, "warm vs cold forward");
  EXPECT_EQ(backend.operand_cache()->stats().hits, 1u);
  // The cache is a simulator-speed optimization: the modeled hardware
  // events are identical cold and warm.
  expect_same_events(backend.events(), cold_events);

  // Mutable weight access invalidates: next forward re-prepares.
  layer.weight()(0, 0) += 0.5;
  const Matrix changed = layer.forward(x, backend);
  EXPECT_EQ(backend.operand_cache()->stats().invalidations, 1u);
  bool any_diff = false;
  for (std::size_t i = 0; i < changed.size(); ++i) {
    any_diff = any_diff || changed.data()[i] != cold.data()[i];
  }
  EXPECT_TRUE(any_diff) << "weight mutation must reach the output";
}

TEST(PhotonicBackendCache, PlainMatmulBypassesTheCache) {
  nn::PhotonicBackend backend(core::make_pdac_driver(8), {});
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(3, 8, rng);
  const Matrix b = Matrix::random_gaussian(8, 5, rng);
  (void)backend.matmul(a, b);
  (void)backend.matmul(a, b);
  EXPECT_EQ(backend.operand_cache()->stats().entries, 0u);
  EXPECT_EQ(backend.operand_cache()->stats().hits, 0u);
}

TEST(LinearHandles, CopiesGetFreshIdentity) {
  nn::Linear a(4, 4);
  const nn::Linear b = a;
  EXPECT_NE(a.weight_handle().id, 0u);
  EXPECT_NE(a.weight_handle().id, b.weight_handle().id);
  const auto before = a.weight_handle().version;
  a.weight()(0, 0) = 1.0;
  EXPECT_NE(a.weight_handle().version, before);
  EXPECT_EQ(a.weight_handle().id, nn::Linear(std::move(a)).weight_handle().id);
}

faults::LaneBankConfig varied_bank_config(std::size_t wavelengths) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = wavelengths;
  cfg.variation.tia_gain_sigma = 0.03;
  cfg.variation.bias_sigma = 0.004;
  cfg.variation.vpi_drift_sigma = 0.01;
  cfg.variation.seed = 77;
  return cfg;
}

TEST(DegradedBackendCache, WarmMatchesColdAndUncached) {
  faults::LaneBank bank(varied_bank_config(6));
  faults::production_trim(bank);
  faults::DegradedBackend cached(bank);
  faults::DegradedBackend uncached(bank);

  nn::Linear layer(10, 7);
  Rng rng(13);
  layer.init_random(rng);
  const Matrix x = Matrix::random_gaussian(3, 10, rng);

  const Matrix cold = layer.forward(x, cached);
  const Matrix warm = layer.forward(x, cached);
  EXPECT_EQ(cached.operand_cache()->stats().hits, 1u);
  expect_bit_identical(warm, cold, "degraded warm vs cold");
  expect_bit_identical(warm, layer.forward(x, uncached), "vs uncached backend");
}

// The acceptance-critical property: a re-trim between decode steps
// bumps the bank epoch and forces a re-encode, so the cached path stays
// bit-identical to a cache-free backend on the post-trim bank.  (The
// pre-trim encoding differs — serving it stale WOULD change the output.)
TEST(DegradedBackendCache, RetrimBetweenStepsForcesReencode) {
  faults::LaneBank bank(varied_bank_config(6));  // untrimmed: variation in play
  faults::DegradedBackend cached(bank);

  nn::Linear layer(12, 8);
  Rng rng(29);
  layer.init_random(rng);
  const Matrix x = Matrix::random_gaussian(1, 12, rng);  // decode-style GEMV

  const Matrix before = layer.forward(x, cached);  // cache is now warm
  const std::uint64_t epoch_before = bank.epoch();

  // Recalibration between decode steps (the self-test re-trims every
  // lane the screen flags; production_trim is the stronger variant that
  // rewrites every lane unconditionally).
  faults::production_trim(bank);
  EXPECT_GT(bank.epoch(), epoch_before);

  const Matrix after = layer.forward(x, cached);
  EXPECT_GE(cached.operand_cache()->stats().invalidations, 1u);

  // Fresh backend on the *post-trim* bank = ground truth without any
  // cache history; a stale encoding could not match it.
  faults::DegradedBackend fresh(bank);
  expect_bit_identical(after, layer.forward(x, fresh), "post-trim vs fresh backend");

  // And the trim genuinely changed the encoding, so reuse would have
  // been wrong — pin that the outputs differ across the trim.
  bool any_diff = false;
  for (std::size_t i = 0; i < after.size(); ++i) {
    any_diff = any_diff || after.data()[i] != before.data()[i];
  }
  EXPECT_TRUE(any_diff) << "trim should alter lane transfer curves";
}

TEST(DegradedBackendCache, FaultInjectionInvalidatesBetweenSteps) {
  faults::LaneBank bank(varied_bank_config(4));
  faults::production_trim(bank);

  faults::FaultScheduleConfig sched;
  sched.lanes = bank.lanes();
  sched.bits = 8;
  sched.horizon_steps = 64;
  sched.drift_fault_rate = 0.8;
  sched.bias_walk_sigma_per_step = 0.01;
  sched.seed = 5;
  faults::FaultInjector injector(bank, faults::generate_fault_schedule(sched));

  faults::DegradedBackend cached(bank);
  nn::Linear layer(9, 6);
  Rng rng(31);
  layer.init_random(rng);
  const Matrix x = Matrix::random_gaussian(2, 9, rng);

  (void)layer.forward(x, cached);  // warm
  injector.advance_to(32);         // drift mutates lanes → epoch bump

  const Matrix after = layer.forward(x, cached);
  EXPECT_GE(cached.operand_cache()->stats().invalidations, 1u);
  faults::DegradedBackend fresh(bank);
  expect_bit_identical(after, layer.forward(x, fresh), "post-fault vs fresh backend");
}

// A fence applied directly to a lane (no epoch bump) is still caught by
// the per-product channel-packing snapshot.
TEST(DegradedBackendCache, DirectFenceIsCaughtByChannelSnapshot) {
  faults::LaneBank bank(varied_bank_config(5));
  faults::production_trim(bank);
  faults::DegradedBackend cached(bank);

  nn::Linear layer(8, 5);
  Rng rng(41);
  layer.init_random(rng);
  const Matrix x = Matrix::random_gaussian(2, 8, rng);

  (void)layer.forward(x, cached);   // warm
  bank.lane(0, 2).fenced = true;    // direct mutation, deliberately no bump

  const Matrix after = layer.forward(x, cached);
  EXPECT_GE(cached.operand_cache()->stats().invalidations, 1u);
  faults::DegradedBackend fresh(bank);
  expect_bit_identical(after, layer.forward(x, fresh), "post-fence vs fresh backend");
}

TEST(DegradedBackendCache, SelfTestEpochBump) {
  faults::LaneBank bank(varied_bank_config(6));
  // Untrimmed + wide variation: the screen will flag lanes and re-trim.
  const std::uint64_t before = bank.epoch();
  faults::SelfTestConfig st;
  st.error_budget = 0.02;
  const auto report = faults::run_self_test(bank, st);
  if (report.retrims > 0 || report.dead > 0) {
    EXPECT_GT(bank.epoch(), before);
  }
}

}  // namespace
