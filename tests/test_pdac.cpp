// Tests for the P-DAC device: the full optical-digital → optical-analog
// conversion chain (paper Fig. 7).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "converters/eo_interface.hpp"
#include "core/pdac.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

PdacConfig cfg_bits(int bits) {
  PdacConfig cfg;
  cfg.bits = bits;
  return cfg;
}

TEST(Pdac, ConvertCodeEqualsCosOfPiecewisePhase) {
  const Pdac dev(cfg_bits(8));
  for (std::int32_t code : {0, 1, 32, 64, 92, 127, -5, -64, -92, -127}) {
    const double r = dev.quantizer().decode(code);
    EXPECT_NEAR(dev.convert_code(code), dev.approximation().decoded(r), 3e-2)
        << "code " << code;
  }
}

TEST(Pdac, PaperExample0x40) {
  // Paper: digital 0x40 → analog 0.5; the P-DAC encodes cos(f(0.5)).
  const Pdac dev(cfg_bits(8));
  const double r = dev.quantizer().decode(0x40);
  const double out = dev.convert_code(0x40);
  EXPECT_NEAR(out, std::cos(math::kPi / 2.0 - r), 1e-9);  // middle segment
  EXPECT_NEAR(out, 0.483, 0.002);  // ≈3.5 % below 0.5: the documented approx error
}

TEST(Pdac, WorstCaseErrorMatchesPaperBound) {
  const Pdac dev(cfg_bits(8));
  const double worst = dev.worst_case_error();
  EXPECT_GT(worst, 0.080);
  EXPECT_LT(worst, 0.088);  // 8.5 % + quantization residue
}

TEST(Pdac, EndpointsAreExact) {
  const Pdac dev(cfg_bits(8));
  EXPECT_NEAR(dev.convert_code(127), 1.0, 1e-9);
  EXPECT_NEAR(dev.convert_code(-127), -1.0, 1e-6);
  EXPECT_NEAR(dev.convert_code(0), 0.0, 1e-12);
}

TEST(Pdac, SignEncodedInOpticalPhase) {
  const Pdac dev(cfg_bits(8));
  const photonics::Complex out = dev.convert(-0.5, photonics::Complex{1.0, 0.0});
  EXPECT_LT(out.real(), 0.0);                 // π phase = negative field
  EXPECT_NEAR(out.imag(), 0.0, 1e-12);
}

TEST(Pdac, OpticalWordPathMatchesCodePath) {
  const Pdac dev(cfg_bits(8));
  converters::EoInterfaceConfig ecfg;
  ecfg.bits = 8;
  const converters::MultiBitEoInterface eo(ecfg);
  for (std::int32_t code : {0, 7, 64, 127, -3, -90, -127}) {
    EXPECT_DOUBLE_EQ(dev.drive_phase(eo.encode(code)), dev.drive_phase(code))
        << "code " << code;
  }
}

TEST(Pdac, WordPathToleratesLinkLoss) {
  const Pdac dev(cfg_bits(8));
  converters::EoInterfaceConfig ecfg;
  ecfg.bits = 8;
  const converters::MultiBitEoInterface eo(ecfg);
  auto word = eo.encode(0x40);
  for (auto& slot : word.slots) slot.amplitude *= 0.8;  // 36 % intensity loss
  EXPECT_DOUBLE_EQ(dev.drive_phase(word), dev.drive_phase(0x40));
}

TEST(Pdac, ConvertQuantizesInput) {
  const Pdac dev(cfg_bits(4));
  // 0.50 and 0.52 quantize to the same 4-bit code → identical output.
  EXPECT_DOUBLE_EQ(dev.convert_value(0.50), dev.convert_value(0.52));
}

TEST(Pdac, ConvertValueClampsDomain) {
  const Pdac dev(cfg_bits(8));
  EXPECT_DOUBLE_EQ(dev.convert_value(5.0), dev.convert_value(1.0));
  EXPECT_DOUBLE_EQ(dev.convert_value(-5.0), dev.convert_value(-1.0));
}

TEST(Pdac, PowerModelMatchesCalibration) {
  // a·b + c·(2^b − 1): 0.722 mW at 4-bit, 2.615 mW at 8-bit.
  const auto p4 = Pdac::power_model(4, units::microwatts(160.9), units::microwatts(5.206),
                                    units::watts(0.0));
  const auto p8 = Pdac::power_model(8, units::microwatts(160.9), units::microwatts(5.206),
                                    units::watts(0.0));
  EXPECT_NEAR(p4.milliwatts(), 0.7217, 1e-3);
  EXPECT_NEAR(p8.milliwatts(), 2.6147, 1e-3);
}

TEST(Pdac, PowerFarBelowElectricalDac) {
  // The headline: ~4.8× less than the 12.55 mW electrical DAC at 8-bit.
  const Pdac dev(cfg_bits(8));
  EXPECT_LT(dev.power().milliwatts(), 3.0);
}

TEST(Pdac, MzmBiasAddsToPower) {
  PdacConfig cfg = cfg_bits(8);
  const double base = Pdac(cfg).power().milliwatts();
  cfg.mzm_bias_power = units::milliwatts(1.0);
  EXPECT_NEAR(Pdac(cfg).power().milliwatts(), base + 1.0, 1e-9);
}

TEST(Pdac, RespectsCustomBreakpoint) {
  PdacConfig cfg = cfg_bits(8);
  cfg.breakpoint = 0.5;
  const Pdac dev(cfg);
  EXPECT_DOUBLE_EQ(dev.approximation().breakpoint(), 0.5);
  // A mid-range value now falls in the outer segment.
  EXPECT_EQ(dev.program().select(dev.quantizer().encode(0.7)),
            Segment::kPositiveOuter);
}

TEST(Pdac, WordWidthMismatchRejected) {
  const Pdac dev(cfg_bits(8));
  converters::EoInterfaceConfig ecfg;
  ecfg.bits = 4;
  const converters::MultiBitEoInterface eo(ecfg);
  EXPECT_THROW((void)dev.drive_phase(eo.encode(3)), PreconditionError);
}

// --- property: device error bounded over the whole code space ---------------
class PdacBitWidths : public ::testing::TestWithParam<int> {};

TEST_P(PdacBitWidths, ErrorBoundedByApproxPlusQuantization) {
  const Pdac dev(cfg_bits(GetParam()));
  const double bound = 0.0851 + 0.6 * dev.quantizer().step();
  for (std::int32_t c = -dev.quantizer().max_code(); c <= dev.quantizer().max_code(); ++c) {
    if (c == 0) continue;
    const double r = dev.quantizer().decode(c);
    const double err = math::relative_error(dev.convert_code(c), r);
    EXPECT_LE(err, bound) << "bits=" << GetParam() << " code=" << c;
  }
}

TEST_P(PdacBitWidths, MonotoneOverCodes) {
  const Pdac dev(cfg_bits(GetParam()));
  double prev = dev.convert_code(-dev.quantizer().max_code());
  for (std::int32_t c = -dev.quantizer().max_code() + 1; c <= dev.quantizer().max_code();
       ++c) {
    const double v = dev.convert_code(c);
    EXPECT_GE(v, prev - 1e-9) << "code " << c;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, PdacBitWidths, ::testing::Values(4, 6, 8, 10));

}  // namespace

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(PdacEncoding, SignMagnitudeDeviceMatchesTwosComplement) {
  PdacConfig twos = PdacConfig{};
  PdacConfig sm = PdacConfig{};
  sm.encoding = BitEncoding::kSignMagnitude;
  const Pdac a(twos);
  const Pdac b(sm);
  for (std::int32_t c = -a.quantizer().max_code(); c <= a.quantizer().max_code(); ++c) {
    EXPECT_NEAR(a.convert_code(c), b.convert_code(c), 1e-12) << "code " << c;
  }
}

TEST(PdacEncoding, SignMagnitudeWorstCaseErrorIdentical) {
  PdacConfig sm = PdacConfig{};
  sm.encoding = BitEncoding::kSignMagnitude;
  const Pdac dev(sm);
  EXPECT_NEAR(dev.worst_case_error(), Pdac(PdacConfig{}).worst_case_error(), 1e-9);
}

TEST(PdacEncoding, WordPathHonorsEncoding) {
  PdacConfig sm = PdacConfig{};
  sm.encoding = BitEncoding::kSignMagnitude;
  const Pdac dev(sm);
  converters::EoInterfaceConfig ecfg;
  const converters::MultiBitEoInterface eo(ecfg);
  for (std::int32_t code : {64, -64, 127}) {
    EXPECT_DOUBLE_EQ(dev.drive_phase(eo.encode(code)), dev.drive_phase(code));
  }
}

}  // namespace
