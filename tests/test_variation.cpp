// Tests for the P-DAC Monte-Carlo variation analysis.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/variation.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

PdacConfig nominal8() {
  PdacConfig cfg;
  cfg.bits = 8;
  return cfg;
}

TEST(Variation, ZeroSigmaReproducesNominalDevice) {
  const VariationConfig var{};  // all sigmas zero
  const auto rep = monte_carlo_pdac(nominal8(), var, 3);
  const Pdac nominal(nominal8());
  for (const auto& s : rep.samples) {
    EXPECT_NEAR(s.worst_error, nominal.worst_case_error(), 1e-9);
  }
  EXPECT_NEAR(rep.worst_error.stddev(), 0.0, 1e-12);
}

TEST(Variation, ErrorGrowsWithGainSigma) {
  double prev = 0.0;
  for (double sigma : {0.0, 0.02, 0.08}) {
    VariationConfig var;
    var.tia_gain_sigma = sigma;
    var.seed = 3;
    const auto rep = monte_carlo_pdac(nominal8(), var, 50);
    EXPECT_GE(rep.worst_error.mean(), prev - 1e-9) << "sigma " << sigma;
    prev = rep.worst_error.mean();
  }
}

TEST(Variation, SeedDeterminism) {
  VariationConfig var;
  var.tia_gain_sigma = 0.05;
  var.seed = 11;
  const auto a = monte_carlo_pdac(nominal8(), var, 10);
  const auto b = monte_carlo_pdac(nominal8(), var, 10);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].worst_error, b.samples[i].worst_error);
  }
}

TEST(Variation, DifferentSeedsDiffer) {
  VariationConfig a, b;
  a.tia_gain_sigma = b.tia_gain_sigma = 0.05;
  a.seed = 1;
  b.seed = 2;
  const auto ra = monte_carlo_pdac(nominal8(), a, 5);
  const auto rb = monte_carlo_pdac(nominal8(), b, 5);
  EXPECT_NE(ra.samples[0].worst_error, rb.samples[0].worst_error);
}

TEST(Variation, YieldIsMonotoneInBudget) {
  VariationConfig var;
  var.tia_gain_sigma = 0.05;
  var.bias_sigma = 0.01;
  var.seed = 5;
  const auto rep = monte_carlo_pdac(nominal8(), var, 100);
  EXPECT_LE(rep.yield(0.09), rep.yield(0.12));
  EXPECT_LE(rep.yield(0.12), rep.yield(0.20));
  EXPECT_GE(rep.yield(10.0), 0.999);  // everything passes an absurd budget
}

TEST(Variation, QuantilesOrdered) {
  VariationConfig var;
  var.tia_gain_sigma = 0.05;
  var.seed = 9;
  const auto rep = monte_carlo_pdac(nominal8(), var, 100);
  EXPECT_LE(rep.worst_error_quantile(0.1), rep.worst_error_quantile(0.5));
  EXPECT_LE(rep.worst_error_quantile(0.5), rep.worst_error_quantile(0.95));
  EXPECT_THROW((void)rep.worst_error_quantile(1.5), PreconditionError);
}

TEST(Variation, SmallVariationKeepsAverageErrorNearNominal) {
  // 0.5 % matching barely moves the *average* error (the metric LLM
  // accuracy responds to) even though the worst single code — a small
  // negative value whose two's-complement bit weights nearly cancel —
  // degrades faster.  This is the finding the A6 bench reports.
  VariationConfig var;
  var.tia_gain_sigma = 0.005;
  var.mzm_imbalance_sigma = 0.005;
  var.seed = 13;
  const auto rep = monte_carlo_pdac(nominal8(), var, 50);
  const Pdac nominal(nominal8());
  const auto base = monte_carlo_pdac(nominal8(), VariationConfig{}, 1);
  EXPECT_LT(rep.mean_abs_error.mean(), 1.2 * base.mean_abs_error.mean());
  EXPECT_LT(rep.worst_error_quantile(0.95), 0.35);
}

TEST(Variation, MzmImbalanceAloneIsBenign) {
  // Push–pull drive puts the imbalance term in quadrature (j·k·sin p),
  // so the detected real component — and thus the encoding — is immune.
  VariationConfig var;
  var.mzm_imbalance_sigma = 0.05;
  var.seed = 21;
  const auto rep = monte_carlo_pdac(nominal8(), var, 20);
  const Pdac nominal(nominal8());
  EXPECT_NEAR(rep.worst_error.mean(), nominal.worst_case_error(), 1e-6);
}

TEST(Variation, RejectsZeroTrials) {
  EXPECT_THROW(monte_carlo_pdac(nominal8(), VariationConfig{}, 0), PreconditionError);
}

TEST(Variation, MeanAbsErrorTracksWorst) {
  VariationConfig var;
  var.tia_gain_sigma = 0.05;
  var.seed = 17;
  const auto rep = monte_carlo_pdac(nominal8(), var, 30);
  for (const auto& s : rep.samples) {
    EXPECT_LT(s.mean_abs_error, s.worst_error);  // mean abs < worst relative·1.0
    EXPECT_GT(s.mean_abs_error, 0.0);
  }
}

}  // namespace
