// Unit and property tests for the 2×2 directional coupler (paper Eq. 5).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "photonics/directional_coupler.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(DirectionalCoupler, FullTransmissionIsPassThrough) {
  const DirectionalCoupler dc(1.0);
  const auto [u, l] = dc.couple(Complex{0.6, 0.0}, Complex{0.0, 0.3});
  EXPECT_NEAR(u.real(), 0.6, 1e-15);
  EXPECT_NEAR(l.imag(), 0.3, 1e-15);
}

TEST(DirectionalCoupler, ZeroTransmissionCrossCouplesWithJ) {
  const DirectionalCoupler dc(0.0);
  const auto [u, l] = dc.couple(Complex{1.0, 0.0}, Complex{0.0, 0.0});
  // Upper input fully crosses to lower with a j factor.
  EXPECT_NEAR(std::abs(u), 0.0, 1e-15);
  EXPECT_NEAR(l.real(), 0.0, 1e-15);
  EXPECT_NEAR(l.imag(), 1.0, 1e-15);
}

TEST(DirectionalCoupler, FiftyFiftySplitsEvenly) {
  const auto dc = DirectionalCoupler::fifty_fifty();
  const auto [u, l] = dc.couple(Complex{1.0, 0.0}, Complex{0.0, 0.0});
  EXPECT_NEAR(std::norm(u), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(l), 0.5, 1e-12);
}

TEST(DirectionalCoupler, DDotInputStage) {
  // The DDot algebra: inputs (x, −j·y) → ((x+y)/√2, j(x−y)/√2).
  const auto dc = DirectionalCoupler::fifty_fifty();
  const double x = 0.8, y = -0.35;
  const auto [u, l] = dc.couple(Complex{x, 0.0}, Complex{0.0, -y});
  EXPECT_NEAR(u.real(), (x + y) / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(u.imag(), 0.0, 1e-12);
  EXPECT_NEAR(l.real(), 0.0, 1e-12);
  EXPECT_NEAR(l.imag(), (x - y) / std::sqrt(2.0), 1e-12);
}

TEST(DirectionalCoupler, RejectsOutOfRangeTransmission) {
  EXPECT_THROW(DirectionalCoupler(-0.1), PreconditionError);
  EXPECT_THROW(DirectionalCoupler(1.1), PreconditionError);
}

TEST(DirectionalCoupler, CouplesWdmChannelsIndependently) {
  const auto dc = DirectionalCoupler::fifty_fifty();
  DualRail rails{WdmField(2), WdmField(2)};
  rails.upper.set_amplitude(0, Complex{1.0, 0.0});
  rails.lower.set_amplitude(1, Complex{1.0, 0.0});
  const DualRail out = dc.couple(rails);
  // Channel 0 came from upper only; channel 1 from lower only.
  EXPECT_NEAR(std::norm(out.upper.amplitude(0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(out.lower.amplitude(0)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(out.upper.amplitude(1)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(out.lower.amplitude(1)), 0.5, 1e-12);
}

// --- property: the Eq. 5 transfer matrix is unitary (energy conserving) ----
class CouplerUnitarity : public ::testing::TestWithParam<double> {};

TEST_P(CouplerUnitarity, EnergyIsConserved) {
  const DirectionalCoupler dc(GetParam());
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const Complex a{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const Complex b{rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    const auto [u, l] = dc.couple(a, b);
    EXPECT_NEAR(std::norm(u) + std::norm(l), std::norm(a) + std::norm(b), 1e-12);
  }
}

TEST_P(CouplerUnitarity, TransmissionPlusCouplingIsUnit) {
  const DirectionalCoupler dc(GetParam());
  EXPECT_NEAR(dc.transmission() * dc.transmission() + dc.coupling() * dc.coupling(), 1.0,
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(TransmissionSweep, CouplerUnitarity,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.70710678118654752, 0.9,
                                           1.0));

}  // namespace
