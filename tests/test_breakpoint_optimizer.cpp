// Tests for the Eq. 17 breakpoint search ("running the program to find
// the optimal k value" — paper §III-C).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/breakpoint_optimizer.hpp"

namespace {

using namespace pdac::core;

TEST(BreakpointOptimizer, FindsPaperK) {
  const BreakpointOptimizer opt;
  const auto r = opt.optimize();
  EXPECT_NEAR(r.k_star, 0.7236, 5e-4);
}

TEST(BreakpointOptimizer, OptimumHasPaperMaxError) {
  const BreakpointOptimizer opt;
  const auto r = opt.optimize();
  EXPECT_NEAR(r.max_decode_error, 0.085, 0.002);
}

TEST(BreakpointOptimizer, ObjectiveIsLowerAtOptimumThanNeighbors) {
  const BreakpointOptimizer opt;
  const auto r = opt.optimize();
  EXPECT_LT(r.objective, opt.objective(r.k_star - 0.05));
  EXPECT_LT(r.objective, opt.objective(r.k_star + 0.05));
  EXPECT_LT(r.objective, opt.objective(0.3));
  EXPECT_LT(r.objective, opt.objective(0.95));
}

TEST(BreakpointOptimizer, SweepIsOrderedAndConsistent) {
  const BreakpointOptimizer opt;
  const auto sweep = opt.sweep(0.4, 0.9, 11);
  ASSERT_EQ(sweep.size(), 11u);
  for (std::size_t i = 1; i < sweep.size(); ++i) EXPECT_GT(sweep[i].k, sweep[i - 1].k);
  for (const auto& s : sweep) {
    EXPECT_NEAR(s.objective, opt.objective(s.k), 1e-12);
    EXPECT_GT(s.max_decode_error, 0.0);
  }
}

TEST(BreakpointOptimizer, SearchStaysInsideRequestedRange) {
  const BreakpointOptimizer opt;
  const auto r = opt.optimize(0.8, 0.95);
  EXPECT_GE(r.k_star, 0.8);
  EXPECT_LE(r.k_star, 0.95);
}

TEST(BreakpointOptimizer, RejectsBadRange) {
  const BreakpointOptimizer opt;
  EXPECT_THROW(opt.optimize(0.9, 0.1), pdac::PreconditionError);
  EXPECT_THROW(opt.optimize(0.0, 0.5), pdac::PreconditionError);
}

TEST(BreakpointOptimizer, CountsEvaluations) {
  const BreakpointOptimizer opt;
  const auto r = opt.optimize();
  EXPECT_GT(r.evaluations, 100);  // dense scan plus refinement
}

}  // namespace
