// Unit tests for the ASCII table/report formatter.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "common/table.hpp"

namespace {

using namespace pdac;

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| 1"), std::string::npos);
  EXPECT_NE(s.find("+---"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Every line must have equal length (alignment).
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t nl = s.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, first_len);
    pos = nl + 1;
  }
}

TEST(Table, RuleInsertsSeparator) {
  Table t({"c"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string s = t.to_string();
  // Header rule + top + bottom + inserted = 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = s.find("+-"); pos != std::string::npos; pos = s.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), PreconditionError); }

TEST(TableFormat, Num) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(-1.0, 0), "-1");
}

TEST(TableFormat, Pct) {
  EXPECT_EQ(Table::pct(0.218), "21.8%");
  EXPECT_EQ(Table::pct(0.505, 2), "50.50%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

TEST(TableFormat, Watts) { EXPECT_EQ(Table::watts(11.81), "11.81 W"); }

TEST(TableFormat, Millijoules) { EXPECT_EQ(Table::millijoules(0.001), "1.000 mJ"); }

TEST(AsciiBar, ProportionalFill) {
  EXPECT_EQ(ascii_bar(0.0, 10), "          ");
  EXPECT_EQ(ascii_bar(1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 10), "#####     ");
}

TEST(AsciiBar, ClampsOutOfRange) {
  EXPECT_EQ(ascii_bar(2.0, 4), "####");
  EXPECT_EQ(ascii_bar(-1.0, 4), "    ");
}

}  // namespace
