// Tests for the N-segment arccos generalization.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "core/multi_segment_approx.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(MultiSegment, ChordsInterpolateArccosAtNodes) {
  const auto a = MultiSegmentArccos::from_nodes({0.0, 0.4, 0.8, 1.0});
  for (double node : {0.0, 0.4, 0.8, 1.0}) {
    EXPECT_NEAR(a.eval(node), std::acos(node), 1e-12) << "node " << node;
  }
}

TEST(MultiSegment, SymmetryIdentity) {
  const auto a = MultiSegmentArccos::uniform(4);
  for (double r : {0.1, 0.33, 0.77, 0.95}) {
    EXPECT_NEAR(a.eval(-r), math::kPi - a.eval(r), 1e-12) << "r=" << r;
    EXPECT_NEAR(a.decoded(-r), -a.decoded(r), 1e-12) << "r=" << r;
  }
}

TEST(MultiSegment, SingleSegmentIsTheFullChord) {
  // One chord from (0, π/2) to (1, 0): f(r) = π/2·(1 − r).
  const auto a = MultiSegmentArccos::uniform(1);
  EXPECT_NEAR(a.eval(0.5), math::kPi / 4.0, 1e-12);
  EXPECT_EQ(a.segments(), 1u);
}

TEST(MultiSegment, MoreSegmentsNeverWorse) {
  double prev = 1.0;
  for (std::size_t segs : {1u, 2u, 4u, 8u, 16u}) {
    const double err = MultiSegmentArccos::uniform(segs).max_decode_error();
    EXPECT_LE(err, prev + 1e-9) << segs << " segments";
    prev = err;
  }
}

TEST(MultiSegment, OptimizedBeatsUniform) {
  for (std::size_t segs : {2u, 3u, 4u}) {
    const double uni = MultiSegmentArccos::uniform(segs).max_decode_error();
    const double opt = MultiSegmentArccos::optimized(segs).max_decode_error();
    EXPECT_LE(opt, uni + 1e-9) << segs << " segments";
  }
}

TEST(MultiSegment, TwoOptimizedSegmentsNearPaperError) {
  // The paper's 3-piece program (2 pieces per half with a tangent middle)
  // achieves 8.5 %; a 2-chord-per-half program with an optimized interior
  // node must land in the same regime.
  const auto a = MultiSegmentArccos::optimized(2);
  EXPECT_LT(a.max_decode_error(), 0.10);
  EXPECT_GT(a.max_decode_error(), 0.02);
}

TEST(MultiSegment, EightSegmentsNearOnePercent) {
  // Eight chords per half reach ~1 % worst-case decode error — an 8×
  // improvement over the paper's 8.5 % for 7× the comparator count.
  EXPECT_LT(MultiSegmentArccos::optimized(8).max_decode_error(), 0.015);
}

TEST(MultiSegment, HardwareCostProxies) {
  const auto a = MultiSegmentArccos::uniform(3);
  EXPECT_EQ(a.weight_banks(), 5u);   // 2·3 − 1 (middle shared across signs)
  EXPECT_EQ(a.comparators(), 4u);
}

TEST(MultiSegment, DecodedMonotone) {
  const auto a = MultiSegmentArccos::optimized(3);
  double prev = a.decoded(-1.0);
  for (double r : math::linspace(-1.0, 1.0, 801)) {
    const double v = a.decoded(r);
    EXPECT_GE(v, prev - 1e-9) << "r=" << r;
    prev = v;
  }
}

TEST(MultiSegment, ClampsOutOfDomain) {
  const auto a = MultiSegmentArccos::uniform(2);
  EXPECT_DOUBLE_EQ(a.eval(2.0), a.eval(1.0));
  EXPECT_DOUBLE_EQ(a.eval(-2.0), a.eval(-1.0));
}

TEST(MultiSegment, RejectsBadNodeSets) {
  EXPECT_THROW(MultiSegmentArccos::from_nodes({0.0}), PreconditionError);
  EXPECT_THROW(MultiSegmentArccos::from_nodes({0.0, 0.5}), PreconditionError);   // no 1
  EXPECT_THROW(MultiSegmentArccos::from_nodes({0.1, 1.0}), PreconditionError);   // no 0
  EXPECT_THROW(MultiSegmentArccos::from_nodes({0.0, 0.5, 0.5, 1.0}), PreconditionError);
  EXPECT_THROW(MultiSegmentArccos::uniform(0), PreconditionError);
}

TEST(MultiSegment, OptimizedNodesStaySorted) {
  const auto a = MultiSegmentArccos::optimized(4);
  const auto& nodes = a.nodes();
  for (std::size_t i = 1; i < nodes.size(); ++i) EXPECT_GT(nodes[i], nodes[i - 1]);
  EXPECT_DOUBLE_EQ(nodes.front(), 0.0);
  EXPECT_DOUBLE_EQ(nodes.back(), 1.0);
}

}  // namespace
