// Unit and property tests for the Mach-Zehnder Modulator (paper Eq. 3,
// Eq. 7–9).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "photonics/mzm.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(Mzm, ZeroVoltagePassesCarrierUnchanged) {
  const Mzm mzm;
  const Complex out = mzm.modulate(Complex{1.0, 0.0}, 0.0, 0.0);
  EXPECT_NEAR(out.real(), 1.0, 1e-15);
  EXPECT_NEAR(out.imag(), 0.0, 1e-15);
}

TEST(Mzm, PushPullEqualsCosine) {
  // Paper Eq. 9: with V₂ = −V₁ and k = 0, E_out = E_in·cos(V′₁).
  const Mzm mzm;
  for (double vp : {0.0, 0.3, 1.0, math::kPi / 2.0, 2.5, math::kPi}) {
    const Complex out = mzm.modulate_pushpull(Complex{1.0, 0.0}, vp);
    EXPECT_NEAR(out.real(), std::cos(vp), 1e-12) << "V'=" << vp;
    EXPECT_NEAR(out.imag(), 0.0, 1e-12) << "V'=" << vp;
  }
}

TEST(Mzm, FullRangeEncodingViaPhase) {
  // cos(V′₁) spans (−1, 1): negative values come out with π phase.
  const Mzm mzm;
  const Complex neg = mzm.modulate_pushpull(Complex{1.0, 0.0}, 2.5);
  EXPECT_LT(neg.real(), 0.0);
  EXPECT_NEAR(std::abs(neg), std::abs(std::cos(2.5)), 1e-12);
}

TEST(Mzm, NormalizedPhaseMatchesDefinition) {
  MzmConfig cfg;
  cfg.v_pi = 2.0;
  const Mzm mzm(cfg);
  // V′ = πV / 2Vπ: at V = Vπ, V′ = π/2.
  EXPECT_NEAR(mzm.normalized_phase(2.0), math::kPi / 2.0, 1e-15);
  EXPECT_NEAR(mzm.arm_voltage(math::kPi / 2.0), 2.0, 1e-12);
}

TEST(Mzm, PhaseVoltageRoundTrip) {
  const Mzm mzm;
  for (double v : {-1.7, 0.0, 0.4, 3.3}) {
    EXPECT_NEAR(mzm.arm_voltage(mzm.normalized_phase(v)), v, 1e-12);
  }
}

TEST(Mzm, NeverAmplifies) {
  const Mzm mzm;
  for (double v1 = -4.0; v1 <= 4.0; v1 += 0.37) {
    for (double v2 = -4.0; v2 <= 4.0; v2 += 0.41) {
      const Complex out = mzm.modulate(Complex{1.0, 0.0}, v1, v2);
      EXPECT_LE(std::abs(out), 1.0 + 1e-12);
    }
  }
}

TEST(Mzm, InsertionLossScalesOutput) {
  MzmConfig cfg;
  cfg.insertion_loss = 0.8;
  const Mzm mzm(cfg);
  const Complex out = mzm.modulate_pushpull(Complex{1.0, 0.0}, 0.0);
  EXPECT_NEAR(out.real(), 0.8, 1e-12);
}

TEST(Mzm, ImbalanceBreaksPerfectExtinction) {
  // With k = 0, V′ = π/2 gives full extinction; with k ≠ 0 light leaks.
  MzmConfig balanced;
  MzmConfig imbalanced;
  imbalanced.imbalance_k = 0.1;
  const Complex out_b = Mzm(balanced).modulate_pushpull(Complex{1.0, 0.0}, math::kPi / 2.0);
  const Complex out_i = Mzm(imbalanced).modulate_pushpull(Complex{1.0, 0.0}, math::kPi / 2.0);
  EXPECT_NEAR(std::abs(out_b), 0.0, 1e-12);
  EXPECT_GT(std::abs(out_i), 1e-3);
}

TEST(Mzm, Eq3MatchesManualEvaluation) {
  MzmConfig cfg;
  cfg.v_pi = 1.7;
  cfg.imbalance_k = 0.05;
  const Mzm mzm(cfg);
  const double v1 = 0.9, v2 = -0.4;
  const Complex e_in{0.8, 0.1};
  const double p1 = math::kPi * v1 / (2.0 * cfg.v_pi);
  const double p2 = math::kPi * v2 / (2.0 * cfg.v_pi);
  const Complex expect =
      0.5 * e_in * ((1.0 + cfg.imbalance_k) * std::polar(1.0, p1) +
                    (1.0 - cfg.imbalance_k) * std::polar(1.0, p2));
  const Complex got = mzm.modulate(e_in, v1, v2);
  EXPECT_NEAR(got.real(), expect.real(), 1e-14);
  EXPECT_NEAR(got.imag(), expect.imag(), 1e-14);
}

TEST(Mzm, ModulateChannelTouchesOnlyThatChannel) {
  const Mzm mzm;
  WdmField f(3);
  for (std::size_t ch = 0; ch < 3; ++ch) f.set_amplitude(ch, Complex{1.0, 0.0});
  mzm.modulate_channel(f, 1, math::kPi / 3.0);
  EXPECT_NEAR(f.amplitude(0).real(), 1.0, 1e-15);
  EXPECT_NEAR(f.amplitude(1).real(), 0.5, 1e-12);
  EXPECT_NEAR(f.amplitude(2).real(), 1.0, 1e-15);
}

TEST(Mzm, RejectsInvalidConfig) {
  MzmConfig bad;
  bad.v_pi = 0.0;
  EXPECT_THROW(Mzm{bad}, PreconditionError);
  bad = MzmConfig{};
  bad.imbalance_k = 1.0;
  EXPECT_THROW(Mzm{bad}, PreconditionError);
  bad = MzmConfig{};
  bad.insertion_loss = 0.0;
  EXPECT_THROW(Mzm{bad}, PreconditionError);
}

// --- property: arccos drive reproduces any target value ---------------------
class MzmArccosDrive : public ::testing::TestWithParam<double> {};

TEST_P(MzmArccosDrive, ArccosPhaseEncodesExactValue) {
  // The ideal controller computes V′₁ = arccos(r); the MZM must then
  // output exactly r·E_in (paper Eq. 10–13).
  const Mzm mzm;
  const double r = GetParam();
  const Complex out = mzm.modulate_pushpull(Complex{1.0, 0.0}, std::acos(r));
  EXPECT_NEAR(out.real(), r, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(TargetValues, MzmArccosDrive,
                         ::testing::Values(-1.0, -0.7236, -0.5, -0.1, 0.0, 0.1, 0.5,
                                           0.7236, 0.9, 1.0));

}  // namespace
