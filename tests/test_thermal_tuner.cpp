// Tests for the closed-loop MRR thermal tuner.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "photonics/thermal_tuner.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

Microring ring_at(double ch) {
  MicroringConfig cfg;
  cfg.resonance_channel = ch;
  return Microring(cfg);
}

TEST(ThermalTuner, DriftProportionalToTemperature) {
  ThermalTunerConfig cfg;
  cfg.drift_per_kelvin = 0.02;
  const ThermalTuner tuner(cfg);
  EXPECT_DOUBLE_EQ(tuner.drift(5.0), 0.1);
  EXPECT_DOUBLE_EQ(tuner.drift(-3.0), -0.06);
}

TEST(ThermalTuner, StabilizesAfterDrift) {
  const ThermalTuner tuner(ThermalTunerConfig{});
  Microring ring = ring_at(3.0);
  const TuneResult r = tuner.stabilize(ring, 3.0, /*delta_kelvin=*/20.0);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(std::abs(r.residual_detuning), 1e-4);
  EXPECT_NEAR(ring.resonance(), 3.0, 1e-4);
}

TEST(ThermalTuner, NoDriftConvergesImmediately) {
  const ThermalTuner tuner(ThermalTunerConfig{});
  Microring ring = ring_at(1.0);
  const TuneResult r = tuner.stabilize(ring, 1.0, 0.0);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
  EXPECT_DOUBLE_EQ(r.heater_power.watts(), 0.0);
}

TEST(ThermalTuner, HigherGainConvergesFaster) {
  ThermalTunerConfig slow_cfg;
  slow_cfg.loop_gain = 0.2;
  ThermalTunerConfig fast_cfg;
  fast_cfg.loop_gain = 0.9;
  Microring a = ring_at(0.0), b = ring_at(0.0);
  const auto rs = ThermalTuner(slow_cfg).stabilize(a, 0.0, 10.0);
  const auto rf = ThermalTuner(fast_cfg).stabilize(b, 0.0, 10.0);
  EXPECT_TRUE(rs.converged);
  EXPECT_TRUE(rf.converged);
  EXPECT_LT(rf.iterations, rs.iterations);
}

TEST(ThermalTuner, OverdrivenLoopOscillates) {
  ThermalTunerConfig cfg;
  cfg.loop_gain = 2.5;  // each step overshoots by 1.5× — divergent
  cfg.max_iterations = 30;
  const ThermalTuner tuner(cfg);
  Microring ring = ring_at(0.0);
  const TuneResult r = tuner.stabilize(ring, 0.0, 5.0);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(std::abs(r.residual_detuning), 0.05);
}

TEST(ThermalTuner, HeaterPowerMatchesDriftMagnitude) {
  ThermalTunerConfig cfg;
  cfg.drift_per_kelvin = 0.01;
  const ThermalTuner tuner(cfg);
  Microring ring = ring_at(2.0);
  const TuneResult r = tuner.stabilize(ring, 2.0, 10.0);  // 0.1 channel shift
  // Default ring: 0.5 mW per channel shift → 0.05 mW for 0.1 channels.
  EXPECT_NEAR(r.heater_power.milliwatts(), 0.05, 1e-4);  // within loop tolerance
}

TEST(ThermalTuner, FleetPowerScalesWithRingsAndDrift) {
  const ThermalTuner tuner(ThermalTunerConfig{});
  MicroringConfig ring_cfg;
  ring_cfg.heater_power_per_channel_shift = units::milliwatts(0.5);
  const auto p = tuner.fleet_power(4096, 20.0, ring_cfg);  // 0.2-channel shift each
  EXPECT_NEAR(p.watts(), 4096 * 0.5e-3 * 0.2, 1e-9);
  // The LT-B thermal budget (1.2 W) corresponds to ~12 K worst-case
  // ambient excursion across its ring population at these constants.
  EXPECT_LT(p.watts(), 1.2);
}

TEST(ThermalTuner, StabilizedRingRestoresWdmSelectivity) {
  // End-to-end: after drift the ring mis-drops its channel; after
  // stabilization the drop fraction is back to ~1.
  const ThermalTuner tuner(ThermalTunerConfig{});
  Microring ring = ring_at(1.0);
  ring.tune_to(1.0 + 0.2);  // drifted
  EXPECT_LT(ring.drop_fraction(1.0), 0.1);
  (void)tuner.stabilize(ring, 1.0, 20.0);
  EXPECT_GT(ring.drop_fraction(1.0), 0.999);
}

TEST(ThermalTuner, RejectsBadConfig) {
  ThermalTunerConfig bad;
  bad.loop_gain = 0.0;
  EXPECT_THROW(ThermalTuner{bad}, PreconditionError);
  bad = ThermalTunerConfig{};
  bad.tolerance_channels = 0.0;
  EXPECT_THROW(ThermalTuner{bad}, PreconditionError);
}

}  // namespace
