// Unit and property tests for the weighted multi-bit OE interface
// (paper Fig. 7): the receive stage the P-DAC programs.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "converters/eo_interface.hpp"
#include "converters/oe_interface.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

TEST(OeInterface, BinaryWeightsReconstructValue) {
  const MultiBitEoInterface eo(EoInterfaceConfig{});
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(8));
  for (std::int32_t code : {0, 1, 5, 64, 127, -1, -64, -127}) {
    const double v = oe.convert(eo.encode(code));
    EXPECT_NEAR(v, static_cast<double>(code) / 127.0, 1e-12) << "code " << code;
  }
}

TEST(OeInterface, BiasAddsConstantOffset) {
  OeInterfaceConfig cfg = MultiBitOeInterface::binary_weighted(8);
  cfg.bias = 0.75;
  const MultiBitOeInterface oe(cfg);
  const MultiBitEoInterface eo(EoInterfaceConfig{});
  EXPECT_NEAR(oe.convert(eo.encode(0)), 0.75, 1e-15);
}

TEST(OeInterface, VScaleMultipliesWeights) {
  const MultiBitEoInterface eo(EoInterfaceConfig{});
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(8, 3.0));
  EXPECT_NEAR(oe.convert(eo.encode(127)), 3.0, 1e-12);
}

TEST(OeInterface, ThresholdRegenerationToleratesAmplitudeNoise) {
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(4));
  OpticalDigitalWord word;
  word.slots.resize(4);
  // A degraded logic-1 (80 % amplitude) and a noisy logic-0 (10 %).
  word.slots[0].amplitude = photonics::Complex{0.8, 0.0};
  word.slots[1].amplitude = photonics::Complex{0.1, 0.0};
  const double v = oe.convert(word);
  EXPECT_NEAR(v, 1.0 / 7.0, 1e-12);  // only bit 0 reads as 1
}

TEST(OeInterface, AnalogModeScalesWithIntensity) {
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(4));
  OpticalDigitalWord word;
  word.slots.resize(4);
  word.slots[0].amplitude = photonics::Complex{1.0, 0.0};  // full on: I = 0.5
  const double full = oe.convert_analog(word);
  word.slots[0].amplitude = photonics::Complex{std::sqrt(0.5), 0.0};  // half intensity
  const double half = oe.convert_analog(word);
  EXPECT_NEAR(half, 0.5 * full, 1e-12);
}

TEST(OeInterface, PowerCountsPerBitAndGainUnits) {
  OeInterfaceConfig cfg = MultiBitOeInterface::binary_weighted(8);
  cfg.pd_ring_power_per_bit = units::microwatts(160.9);
  cfg.tia_power_unit = units::microwatts(5.206);
  const MultiBitOeInterface oe(cfg);
  // 8 bits of PD/ring + (2^8 − 1) gain units — the P-DAC power law.
  const double expect_mw = (160.9e-3 * 8.0) + (5.206e-3 * 255.0);
  EXPECT_NEAR(oe.power().milliwatts(), expect_mw, 1e-9);
}

TEST(OeInterface, ConvertRejectsWidthMismatch) {
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(8));
  OpticalDigitalWord narrow;
  narrow.slots.resize(4);
  EXPECT_THROW((void)oe.convert(narrow), PreconditionError);
  EXPECT_THROW((void)oe.convert_analog(narrow), PreconditionError);
}

TEST(OeInterface, RejectsEmptyWeights) {
  OeInterfaceConfig empty;
  EXPECT_THROW((void)MultiBitOeInterface{empty}, PreconditionError);
}

TEST(OeInterface, BinaryWeightedRejectsBadBits) {
  EXPECT_THROW((void)MultiBitOeInterface::binary_weighted(1), PreconditionError);
  EXPECT_THROW((void)MultiBitOeInterface::binary_weighted(17), PreconditionError);
}

// --- unified on/off threshold across receivers -----------------------------

TEST(ReceiverThresholds, SharedHelperIsHalfOnIntensity) {
  EXPECT_DOUBLE_EQ(on_off_intensity_threshold(0.5), 0.25);
  // Amplitude form agrees with the intensity form through I = ½·amp².
  EXPECT_DOUBLE_EQ(on_off_threshold_for_amplitude(1.0), on_off_intensity_threshold(0.5));
  EXPECT_DOUBLE_EQ(on_off_threshold_for_amplitude(2.0), on_off_intensity_threshold(2.0));
}

TEST(ReceiverThresholds, LaserDroopDecodesIdenticallyAtBothReceivers) {
  // Regression: the EO loopback decoder used to slice at ¼ of the on
  // intensity while the OE interface sliced at ½, so a laser-droop fault
  // scaling slot amplitudes by d ∈ (0.5, 1/√2) made the same word read
  // differently at the two receivers.  Both now slice at half the on
  // intensity: a drooped slot survives at both or drops at both.
  const int bits = 4;
  EoInterfaceConfig ecfg;
  ecfg.bits = bits;
  const MultiBitEoInterface eo(ecfg);
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(bits));
  const double mc = static_cast<double>((1 << (bits - 1)) - 1);

  const std::int32_t code = 5;  // 0101: bits 0 and 2 on
  for (double droop : {1.0, 0.9, 0.75, 0.708, 0.706, 0.6, 0.51, 0.4}) {
    OpticalDigitalWord word = eo.encode(code);
    for (auto& slot : word.slots) slot.amplitude *= droop;

    // Survival is a single shared predicate of the drooped intensity.
    const bool survives =
        0.5 * droop * droop > on_off_threshold_for_amplitude(ecfg.on_amplitude);
    const std::int32_t expect_code = survives ? code : 0;
    EXPECT_EQ(eo.decode(word), expect_code) << "droop " << droop;
    EXPECT_NEAR(oe.convert(word), static_cast<double>(expect_code) / mc, 1e-12)
        << "droop " << droop;
  }
}

// --- property: EO→OE loopback is exact for every code at every width -------
class EoOeLoopback : public ::testing::TestWithParam<int> {};

TEST_P(EoOeLoopback, ReconstructsAllCodes) {
  const int bits = GetParam();
  EoInterfaceConfig ecfg;
  ecfg.bits = bits;
  const MultiBitEoInterface eo(ecfg);
  const MultiBitOeInterface oe(MultiBitOeInterface::binary_weighted(bits));
  const std::int32_t mc = (1 << (bits - 1)) - 1;
  for (std::int32_t c = -mc; c <= mc; ++c) {
    EXPECT_NEAR(oe.convert(eo.encode(c)), static_cast<double>(c) / mc, 1e-12)
        << "code " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, EoOeLoopback, ::testing::Values(2, 4, 6, 8, 10));

}  // namespace
