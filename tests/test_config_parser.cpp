// Tests for the accelerator configuration parser.
#include <gtest/gtest.h>

#include "arch/config_parser.hpp"
#include "common/require.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

TEST(ConfigParser, EmptyTextYieldsDefaults) {
  const auto cfg = parse_accelerator_config("");
  const AcceleratorConfig def;
  EXPECT_EQ(cfg.organization.clusters, def.organization.clusters);
  EXPECT_EQ(cfg.bits, def.bits);
  EXPECT_DOUBLE_EQ(cfg.memory.hbm_bandwidth_gb_s, def.memory.hbm_bandwidth_gb_s);
}

TEST(ConfigParser, ParsesFullConfig) {
  const auto cfg = parse_accelerator_config(R"(
# custom organization
[organization]
clusters = 4
cores_per_cluster = 2
array_rows = 16
array_cols = 4
wavelengths = 12
ddots_per_adc = 4
clock_ghz = 2.5
[memory]
hbm_gb_s = 1024
sram_gb_s = 8192   ; on-chip
[system]
bits = 6
)");
  EXPECT_EQ(cfg.organization.clusters, 4u);
  EXPECT_EQ(cfg.organization.cores_per_cluster, 2u);
  EXPECT_EQ(cfg.organization.array_rows, 16u);
  EXPECT_EQ(cfg.organization.array_cols, 4u);
  EXPECT_EQ(cfg.organization.wavelengths, 12u);
  EXPECT_EQ(cfg.organization.ddots_per_adc, 4u);
  EXPECT_NEAR(cfg.organization.clock.gigahertz(), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(cfg.memory.hbm_bandwidth_gb_s, 1024.0);
  EXPECT_DOUBLE_EQ(cfg.memory.sram_bandwidth_gb_s, 8192.0);
  EXPECT_EQ(cfg.bits, 6);
}

TEST(ConfigParser, RoundTripsThroughText) {
  AcceleratorConfig cfg;
  cfg.organization.clusters = 3;
  cfg.organization.wavelengths = 16;
  cfg.bits = 4;
  cfg.memory.hbm_bandwidth_gb_s = 333.5;
  const auto back = parse_accelerator_config(to_config_text(cfg));
  EXPECT_EQ(back.organization.clusters, 3u);
  EXPECT_EQ(back.organization.wavelengths, 16u);
  EXPECT_EQ(back.bits, 4);
  EXPECT_DOUBLE_EQ(back.memory.hbm_bandwidth_gb_s, 333.5);
}

TEST(ConfigParser, ParsedConfigDrivesAccelerator) {
  const auto cfg = parse_accelerator_config("[system]\nbits = 4\n");
  const Accelerator acc(cfg);
  EXPECT_NEAR(acc.power(SystemVariant::kPdacBased).total().watts(), 11.81, 0.03);
}

TEST(ConfigParser, UnknownKeyIsAnError) {
  EXPECT_THROW((void)parse_accelerator_config("[organization]\nclusterz = 2\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[memory]\nhbm = 2\n"), PreconditionError);
}

TEST(ConfigParser, UnknownSectionIsAnError) {
  EXPECT_THROW((void)parse_accelerator_config("[organisation]\nclusters = 2\n"),
               PreconditionError);
}

TEST(ConfigParser, KeyOutsideSectionIsAnError) {
  EXPECT_THROW((void)parse_accelerator_config("clusters = 2\n"), PreconditionError);
}

TEST(ConfigParser, MalformedValuesRejected) {
  EXPECT_THROW((void)parse_accelerator_config("[organization]\nclusters = two\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[organization]\nclusters = 2.5\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[organization]\nclusters = 0\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[system]\nbits = 40\n"), PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[organization\nclusters = 2\n"),
               PreconditionError);
  EXPECT_THROW((void)parse_accelerator_config("[organization]\nclusters 2\n"),
               PreconditionError);
}

TEST(ConfigParser, ErrorsCarryLineNumbers) {
  try {
    (void)parse_accelerator_config("[organization]\n\nclusters = x\n");
    FAIL() << "expected a throw";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
