// Tests for waveguide propagation and the optical link budget.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "photonics/waveguide.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(Waveguide, LossAccumulatesWithLength) {
  WaveguideConfig cfg;
  cfg.loss_db_per_cm = 0.5;
  const Waveguide wg(cfg, 4.0);
  EXPECT_DOUBLE_EQ(wg.loss_db(), 2.0);
}

TEST(Waveguide, AmplitudeAndPowerTransmissionConsistent) {
  WaveguideConfig cfg;
  cfg.loss_db_per_cm = 3.0;
  const Waveguide wg(cfg, 1.0);  // 3 dB: power halves
  EXPECT_NEAR(wg.power_transmission(), 0.5, 2e-3);  // 3 dB is 0.501, not exactly half
  EXPECT_NEAR(wg.amplitude_transmission() * wg.amplitude_transmission(),
              wg.power_transmission(), 1e-12);
}

TEST(Waveguide, ZeroLengthIsLossless) {
  const Waveguide wg(WaveguideConfig{}, 0.0);
  EXPECT_DOUBLE_EQ(wg.power_transmission(), 1.0);
  EXPECT_DOUBLE_EQ(wg.propagation_delay().seconds(), 0.0);
}

TEST(Waveguide, PropagationDelayMatchesGroupIndex) {
  WaveguideConfig cfg;
  cfg.group_index = 4.2;
  const Waveguide wg(cfg, 1.0);  // 1 cm
  // t = L·n_g/c = 1 cm · 4.2 / 3e10 cm/s ≈ 140 ps.
  EXPECT_NEAR(wg.propagation_delay().nanoseconds(), 0.140, 0.002);
}

TEST(Waveguide, PropagateAttenuatesAllChannels) {
  WaveguideConfig cfg;
  cfg.loss_db_per_cm = 3.0;
  const Waveguide wg(cfg, 1.0);
  WdmField in(2);
  in.set_amplitude(0, Complex{1.0, 0.0});
  in.set_amplitude(1, Complex{0.0, 2.0});
  const WdmField out = wg.propagate(in);
  EXPECT_NEAR(out.intensity(0) / in.intensity(0), 0.5, 2e-3);
  EXPECT_NEAR(out.intensity(1) / in.intensity(1), 0.5, 2e-3);
}

TEST(Waveguide, RejectsInvalidConfig) {
  WaveguideConfig bad;
  bad.loss_db_per_cm = -1.0;
  EXPECT_THROW(Waveguide(bad, 1.0), PreconditionError);
  EXPECT_THROW(Waveguide(WaveguideConfig{}, -1.0), PreconditionError);
}

TEST(LinkBudget, LossTermsAddUp) {
  LinkBudgetConfig cfg;
  cfg.laser_power_dbm = 10.0;
  cfg.mux_loss_db = 0.5;
  cfg.waveguide_cm = 2.0;
  cfg.waveguide_loss_db_per_cm = 0.3;
  cfg.modulator_loss_db = 4.0;
  cfg.broadcast_ways = 8;      // 9.03 dB ideal + 3 stages × 0.2 dB
  cfg.splitter_excess_db = 0.2;
  const auto rep = evaluate_link_budget(cfg);
  EXPECT_NEAR(rep.total_loss_db, 0.5 + 0.6 + 4.0 + 9.0309 + 0.6, 1e-3);
  EXPECT_NEAR(rep.received_dbm, 10.0 - rep.total_loss_db, 1e-12);
}

TEST(LinkBudget, ClosesWithMarginWhenPowerSufficient) {
  LinkBudgetConfig cfg;
  cfg.laser_power_dbm = 10.0;
  cfg.detector_sensitivity_dbm = -20.0;
  const auto rep = evaluate_link_budget(cfg);
  EXPECT_TRUE(rep.closes());
  EXPECT_GT(rep.margin_db, 0.0);
}

TEST(LinkBudget, WiderBroadcastNeedsMorePower) {
  LinkBudgetConfig narrow, wide;
  narrow.broadcast_ways = 2;
  wide.broadcast_ways = 64;
  EXPECT_GT(required_laser_dbm(wide), required_laser_dbm(narrow));
  // 32× more fan-out ≈ 15 dB ideal + 5 extra stage excesses.
  EXPECT_NEAR(required_laser_dbm(wide) - required_laser_dbm(narrow),
              10.0 * std::log10(32.0) + 5 * 0.2, 1e-6);
}

TEST(LinkBudget, RequiredPowerClosesExactly) {
  LinkBudgetConfig cfg;
  cfg.laser_power_dbm = required_laser_dbm(cfg, /*margin_db=*/3.0);
  const auto rep = evaluate_link_budget(cfg);
  EXPECT_NEAR(rep.margin_db, 3.0, 1e-9);
}

TEST(LinkBudget, SingleWayBroadcastHasNoSplitLoss) {
  LinkBudgetConfig cfg;
  cfg.broadcast_ways = 1;
  cfg.mux_loss_db = 0.0;
  cfg.waveguide_cm = 0.0;
  cfg.modulator_loss_db = 0.0;
  const auto rep = evaluate_link_budget(cfg);
  EXPECT_NEAR(rep.total_loss_db, 0.0, 1e-12);
}

TEST(LinkBudget, RejectsZeroWays) {
  LinkBudgetConfig bad;
  bad.broadcast_ways = 0;
  EXPECT_THROW(evaluate_link_budget(bad), PreconditionError);
}

}  // namespace
