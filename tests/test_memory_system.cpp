// Tests for the bandwidth roofline model.
#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "arch/memory_system.hpp"
#include "common/require.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

class Roofline : public ::testing::Test {
 protected:
  LtConfig cfg = lt_base();
  PowerParams params = lt_power_params();
  nn::WorkloadTrace prefill = nn::trace_forward(nn::bert_base(128));
  nn::WorkloadTrace decode = nn::trace_decode_step(nn::bert_base(128), 512);
};

TEST_F(Roofline, TrafficSummaryMatchesTraceAccounting) {
  const auto t = summarize_traffic(prefill, 8);
  std::uint64_t hbm = 0, sram = 0;
  for (const auto& g : prefill.gemms) {
    hbm += g.weight_elements() + g.extra_movement_elements;
    if (g.static_weights) sram += g.activation_elements();
  }
  EXPECT_EQ(t.hbm_bytes, hbm);  // 8-bit: 1 byte per element
  EXPECT_EQ(t.sram_bytes, sram);
}

TEST_F(Roofline, TrafficScalesWithBits) {
  const auto t4 = summarize_traffic(prefill, 4);
  const auto t8 = summarize_traffic(prefill, 8);
  EXPECT_EQ(t8.hbm_bytes, 2 * t4.hbm_bytes);
}

TEST_F(Roofline, DecodeKvReadsGoToHbm) {
  const auto t = summarize_traffic(decode, 8);
  std::uint64_t kv = 0;
  for (const auto& g : decode.gemms) kv += g.extra_movement_elements * 1;  // bytes at 8-bit
  EXPECT_GT(kv, 0u);
  EXPECT_GE(t.hbm_bytes, kv);
}

TEST_F(Roofline, RuntimeIsMaxOfComponents) {
  MemorySystemConfig mem;
  const auto r = roofline_runtime(prefill, cfg, mem, 8);
  EXPECT_GE(r.runtime().seconds(), r.compute_time.seconds());
  EXPECT_GE(r.runtime().seconds(), r.hbm_time.seconds());
  EXPECT_GE(r.runtime().seconds(), r.sram_time.seconds());
  const double expect = std::max(
      {r.compute_time.seconds(), r.hbm_time.seconds(), r.sram_time.seconds()});
  EXPECT_DOUBLE_EQ(r.runtime().seconds(), expect);
}

TEST_F(Roofline, PrefillBecomesComputeBoundAtHighBandwidth) {
  MemorySystemConfig slow, fast;
  slow.hbm_bandwidth_gb_s = 16.0;
  fast.hbm_bandwidth_gb_s = 8192.0;
  EXPECT_TRUE(roofline_runtime(prefill, cfg, slow, 8).memory_bound());
  EXPECT_FALSE(roofline_runtime(prefill, cfg, fast, 8).memory_bound());
}

TEST_F(Roofline, DecodeIsMemoryBoundAtRealisticBandwidth) {
  MemorySystemConfig mem;  // 256 GB/s
  const auto r = roofline_runtime(decode, cfg, mem, 8);
  EXPECT_TRUE(r.memory_bound());
  EXPECT_LT(r.compute_utilization(), 0.3);
}

TEST_F(Roofline, UtilizationInUnitInterval) {
  for (double bw : {32.0, 256.0, 2048.0}) {
    MemorySystemConfig mem;
    mem.hbm_bandwidth_gb_s = bw;
    const auto r = roofline_runtime(prefill, cfg, mem, 8);
    EXPECT_GT(r.compute_utilization(), 0.0);
    EXPECT_LE(r.compute_utilization(), 1.0);
  }
}

TEST_F(Roofline, MoreBandwidthNeverSlower) {
  double prev = 1e9;
  for (double bw : {32.0, 64.0, 128.0, 256.0, 1024.0}) {
    MemorySystemConfig mem;
    mem.hbm_bandwidth_gb_s = bw;
    const double rt = roofline_runtime(prefill, cfg, mem, 8).runtime().seconds();
    EXPECT_LE(rt, prev + 1e-15);
    prev = rt;
  }
}

TEST_F(Roofline, StallsDiluteSaving) {
  MemorySystemConfig fast, slow;
  fast.hbm_bandwidth_gb_s = 8192.0;
  slow.hbm_bandwidth_gb_s = 32.0;
  const double s_fast = stalled_energy(prefill, cfg, params, fast, 8).saving();
  const double s_slow = stalled_energy(prefill, cfg, params, slow, 8).saving();
  EXPECT_GT(s_fast, s_slow);
  EXPECT_GT(s_slow, 0.0);
}

TEST_F(Roofline, NoStallMatchesEnergyModelSaving) {
  MemorySystemConfig infinite;
  infinite.hbm_bandwidth_gb_s = 1e9;
  infinite.sram_bandwidth_gb_s = 1e9;
  const double s = stalled_energy(prefill, cfg, params, infinite, 8).saving();
  const double ref = compare_energy(prefill, cfg, params, 8).total_saving();
  EXPECT_NEAR(s, ref, 1e-9);
}

TEST_F(Roofline, RejectsNonPositiveBandwidth) {
  MemorySystemConfig bad;
  bad.hbm_bandwidth_gb_s = 0.0;
  EXPECT_THROW(roofline_runtime(prefill, cfg, bad, 8), PreconditionError);
}

}  // namespace
