// Tests for the MZI mesh baseline (SVD-programmed photonic core).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/svd.hpp"
#include "photonics/mzi_mesh.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

Matrix random_orthogonal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  return math::svd(a).u;  // orthonormal columns of a full-rank square matrix
}

TEST(MziMesh, IdentityNeedsNoRotations) {
  MziMesh mesh(4);
  Matrix eye(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  EXPECT_EQ(mesh.program(eye), 0u);
  const std::vector<double> x{1.0, -2.0, 0.5, 0.0};
  const auto y = mesh.apply(x);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y[i], x[i], 1e-12);
}

TEST(MziMesh, Rotation2x2) {
  MziMesh mesh(2);
  const double th = 0.6;
  Matrix q(2, 2, std::vector<double>{std::cos(th), -std::sin(th), std::sin(th), std::cos(th)});
  mesh.program(q);
  const std::vector<double> x{0.8, -0.4};
  const auto y = mesh.apply(x);
  EXPECT_NEAR(y[0], q(0, 0) * x[0] + q(0, 1) * x[1], 1e-12);
  EXPECT_NEAR(y[1], q(1, 0) * x[0] + q(1, 1) * x[1], 1e-12);
}

TEST(MziMesh, RejectsNonOrthogonal) {
  MziMesh mesh(3);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(3, 3, rng);  // not orthogonal
  EXPECT_THROW(mesh.program(a), PreconditionError);
}

TEST(MziMesh, InterferometerCountFormula) {
  EXPECT_EQ(MziMesh::interferometers(12), 66u);
  EXPECT_EQ(MziMesh::interferometers(2), 1u);
}

TEST(MziMesh, EnergyConservation) {
  // An orthogonal mesh preserves the optical power of any input.
  MziMesh mesh(6);
  mesh.program(random_orthogonal(6, 7));
  Rng rng(8);
  const auto x = rng.uniform_vector(6, -1.0, 1.0);
  const auto y = mesh.apply(x);
  double px = 0.0, py = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    px += x[i] * x[i];
    py += y[i] * y[i];
  }
  EXPECT_NEAR(px, py, 1e-10);
}

// --- property: mesh reproduces Q·x for random orthogonals -------------------
class MeshProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MeshProperty, MatchesMatrixVectorProduct) {
  const std::size_t n = GetParam();
  const Matrix q = random_orthogonal(n, 10 + n);
  MziMesh mesh(n);
  const std::size_t count = mesh.program(q);
  EXPECT_LE(count, MziMesh::interferometers(n));
  Rng rng(20 + n);
  for (int trial = 0; trial < 5; ++trial) {
    const auto x = rng.uniform_vector(n, -1.0, 1.0);
    const auto y = mesh.apply(x);
    for (std::size_t i = 0; i < n; ++i) {
      double expect = 0.0;
      for (std::size_t j = 0; j < n; ++j) expect += q(i, j) * x[j];
      EXPECT_NEAR(y[i], expect, 1e-9) << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshProperty, ::testing::Values(2, 3, 4, 8, 12, 16));

TEST(MziSvdCore, MatvecMatchesWeightMatrix) {
  const std::size_t n = 8;
  Rng rng(31);
  const Matrix w = Matrix::random_gaussian(n, n, rng);
  MziSvdCore core(n);
  core.program(w);
  const auto x = rng.uniform_vector(n, -1.0, 1.0);
  const auto y = core.apply(x);
  for (std::size_t i = 0; i < n; ++i) {
    double expect = 0.0;
    for (std::size_t j = 0; j < n; ++j) expect += w(i, j) * x[j];
    EXPECT_NEAR(y[i], expect, 1e-8) << "i=" << i;
  }
}

TEST(MziSvdCore, AttenuatorsOnlyAttenuate) {
  const std::size_t n = 6;
  Rng rng(33);
  MziSvdCore core(n);
  core.program(Matrix::random_gaussian(n, n, rng, 0.0, 5.0));
  EXPECT_GE(core.optical_scale(), 1e-6);  // gain restored electronically
}

TEST(MziSvdCore, MappingLatencyCalibratedToPaperQuote) {
  // "mapping a 12×12 matrix takes approximately 1.5 ms"
  EXPECT_NEAR(MziSvdCore::mapping_latency(12).milliseconds(), 1.5, 1e-9);
  // O(n³): 24×24 costs 8×.
  EXPECT_NEAR(MziSvdCore::mapping_latency(24).milliseconds(), 12.0, 1e-9);
}

TEST(MziSvdCore, MappingDwarfsModulationCycle) {
  // The motivating gap: ≥ 6 orders of magnitude vs a 0.2 ns cycle.
  const double cycles_lost =
      MziSvdCore::mapping_latency(12).seconds() / 0.2e-9;
  EXPECT_GT(cycles_lost, 1e6);
}

}  // namespace
