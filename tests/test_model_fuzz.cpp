// Randomized property tests: invariants that must hold for arbitrary
// workload shapes, not just the curated model configs.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/energy_model.hpp"
#include "arch/mapper.hpp"
#include "arch/op_events.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/self_test.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;

nn::GemmOp random_op(Rng& rng, int idx) {
  nn::GemmOp op;
  op.label = "fuzz" + std::to_string(idx);
  op.op_class = rng.integer(0, 1) ? nn::OpClass::kAttention : nn::OpClass::kFfn;
  op.m = static_cast<std::size_t>(rng.integer(1, 300));
  op.k = static_cast<std::size_t>(rng.integer(1, 900));
  op.n = static_cast<std::size_t>(rng.integer(1, 300));
  op.static_weights = rng.integer(0, 1) != 0;
  op.repeats = static_cast<std::size_t>(rng.integer(1, 6));
  op.extra_movement_elements =
      op.static_weights ? 0 : static_cast<std::size_t>(rng.integer(0, 5000));
  return op;
}

TEST(ModelFuzz, OpEventInvariantsHoldForRandomShapes) {
  const arch::LtConfig cfg = arch::lt_base();
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const nn::GemmOp op = random_op(rng, trial);
    const arch::OpEvents ev = arch::count_op_events(op, cfg);

    // Enough DDot-cycles to cover every MAC at the wavelength width.
    EXPECT_GE(ev.ddot_cycles * cfg.wavelengths, op.macs()) << op.label;
    // DDot occupancy can never exceed full-array occupancy.
    EXPECT_LE(ev.ddot_cycles, ev.tile_cycles * cfg.array_rows * cfg.array_cols) << op.label;
    // At least one conversion per reduction element per tile row/col.
    EXPECT_GE(ev.modulations, op.k * op.repeats) << op.label;
    // Dynamic ops convert strictly more than broadcast-shared static ops
    // of the same shape (for multi-row-and-column tiles).
    if (!op.static_weights && op.m > 1 && op.n > 1) {
      nn::GemmOp twin = op;
      twin.static_weights = true;
      EXPECT_GT(ev.modulations, arch::count_op_events(twin, cfg).modulations) << op.label;
    }
    // One ADC window per DDot per k-pass at least.
    EXPECT_GE(ev.adc_samples, op.m * op.n * op.repeats / cfg.ddots_per_adc) << op.label;
  }
}

TEST(ModelFuzz, EnergyModelInvariantsOnRandomTraces) {
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  Rng rng(202);
  for (int trial = 0; trial < 25; ++trial) {
    nn::WorkloadTrace trace;
    trace.config.name = "fuzz";
    const int ops = static_cast<int>(rng.integer(1, 12));
    for (int i = 0; i < ops; ++i) trace.gemms.push_back(random_op(rng, i));

    for (int bits : {4, 8}) {
      const auto cmp = arch::compare_energy(trace, cfg, params, bits);
      const double saving = cmp.total_saving();
      EXPECT_GT(saving, 0.0) << "trial " << trial;
      EXPECT_LT(saving, 1.0) << "trial " << trial;
      // Non-modulation terms must match exactly across variants.
      EXPECT_DOUBLE_EQ(cmp.baseline.total().movement.joules(),
                       cmp.pdac.total().movement.joules());
      EXPECT_DOUBLE_EQ(cmp.baseline.total().adc.joules(), cmp.pdac.total().adc.joules());
      // Class totals partition the whole.
      const double whole = cmp.baseline.total().total().joules();
      const double parts = cmp.baseline.attention.total().joules() +
                           cmp.baseline.ffn.total().joules() +
                           cmp.baseline.conv.total().joules() +
                           cmp.baseline.other.total().joules();
      EXPECT_NEAR(parts, whole, 1e-12 * whole);
    }
  }
}

TEST(ModelFuzz, ScheduleInvariantsOnRandomTraces) {
  const arch::LtConfig cfg = arch::lt_base();
  Rng rng(303);
  for (int trial = 0; trial < 25; ++trial) {
    nn::WorkloadTrace trace;
    const int ops = static_cast<int>(rng.integer(1, 10));
    for (int i = 0; i < ops; ++i) trace.gemms.push_back(random_op(rng, i));
    const arch::Schedule s = arch::schedule_trace(trace, cfg);
    EXPECT_EQ(s.ops.size(), trace.gemms.size());
    EXPECT_GE(s.makespan_cycles, s.ideal_cycles());
    EXPECT_LE(s.utilization(), 1.0 + 1e-12);
    EXPECT_LE(s.ddot_utilization(), s.utilization() + 1e-12);
  }
}

TEST(ModelFuzz, GuardedBackendNeverEmitsNanUnderFaultStorms) {
  // The end-to-end robustness property the guard exists for: a decode
  // loop running through a GuardedBackend under a seeded mid-run fault
  // schedule must never hand the model NaN/Inf logits, and whenever the
  // ladder reports full recovery the output must still track the exact
  // reference — silent garbage is the one forbidden outcome.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    faults::LaneBankConfig bank_cfg;
    bank_cfg.pdac.bits = 8;
    bank_cfg.wavelengths = 4;
    bank_cfg.variation.tia_gain_sigma = 0.01;
    bank_cfg.variation.bias_sigma = 0.002;
    bank_cfg.variation.seed = seed;
    faults::LaneBank bank(bank_cfg);
    faults::production_trim(bank);
    faults::GuardedBackend backend(bank);

    faults::FaultScheduleConfig sched;
    sched.lanes = bank.lanes();
    sched.bits = 8;
    // The storm clock advances once per tile: 6 products × 4 tiles = 24
    // steps, so a horizon of 24 makes every scheduled event actually
    // strike mid-run instead of landing past the end of the decode loop.
    sched.horizon_steps = 24;
    sched.hard_fault_rate = 0.25;
    sched.drift_fault_rate = 0.5;
    sched.seed = 1000 + seed;
    faults::FaultInjector injector(bank, faults::generate_fault_schedule(sched));
    backend.attach_storm(&injector, 1);

    Rng rng(500 + seed);
    const Matrix w = Matrix::random_gaussian(24, 16, rng);
    const nn::WeightHandle handle{seed, 1};
    for (int token = 0; token < 6; ++token) {
      const Matrix x = Matrix::random_gaussian(16, 24, rng);
      const Matrix logits = backend.matmul_cached(x, w, handle);
      for (double v : logits.data()) {
        ASSERT_TRUE(std::isfinite(v)) << "seed " << seed << " token " << token;
      }
      const faults::HealthSnapshot& snap = backend.monitor().snapshot();
      if (snap.unrecovered == 0 && bank.usable_channels() > 0) {
        const auto err = stats::compare(logits.data(), matmul_reference(x, w).data());
        EXPECT_GT(err.cosine, 0.9) << "seed " << seed << " token " << token;
      }
    }
    // Any corruption left a visible trail: either zero detections, or
    // ladder activity in the monitor.  (A trial can end with the bank
    // fully fenced and later products skipped as outages, so products is
    // bounded, not pinned.)
    const faults::HealthSnapshot& snap = backend.monitor().snapshot();
    EXPECT_GE(snap.products, 1u);
    EXPECT_LE(snap.products, 6u);
    if (snap.detections > 0) {
      EXPECT_GT(snap.retries + snap.retrims + snap.fences + snap.unrecovered, 0u);
    }
  }
}

TEST(ModelFuzz, PhotonicGemmTracksReferenceOnRandomShapes) {
  const auto drv = core::make_ideal_dac_driver(10);
  const ptc::PhotonicGemm gemm(*drv, ptc::GemmConfig{});
  Rng rng(404);
  for (int trial = 0; trial < 12; ++trial) {
    const auto m = static_cast<std::size_t>(rng.integer(1, 24));
    const auto k = static_cast<std::size_t>(rng.integer(1, 48));
    const auto n = static_cast<std::size_t>(rng.integer(1, 24));
    const Matrix a = Matrix::random_gaussian(m, k, rng);
    const Matrix b = Matrix::random_gaussian(k, n, rng);
    const auto res = gemm.multiply(a, b);
    const Matrix exact = matmul_reference(a, b);
    const auto err = stats::compare(res.c.data(), exact.data());
    EXPECT_LT(err.rel_frobenius, 0.05) << m << "x" << k << "x" << n;
    EXPECT_EQ(res.events.macs, m * k * n);
  }
}

}  // namespace
