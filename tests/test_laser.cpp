// Unit tests for the WDM comb laser source.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "photonics/laser.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(Laser, EmitsCarriersOnAllChannels) {
  LaserConfig cfg;
  cfg.channels = 4;
  cfg.carrier_amplitude = 2.0;
  const Laser laser(cfg);
  const WdmField f = laser.emit();
  ASSERT_EQ(f.channels(), 4u);
  for (std::size_t ch = 0; ch < 4; ++ch) {
    EXPECT_DOUBLE_EQ(f.amplitude(ch).real(), 2.0);
    EXPECT_DOUBLE_EQ(f.amplitude(ch).imag(), 0.0);
  }
}

TEST(Laser, SubCombLightsOnlyRequestedChannels) {
  LaserConfig cfg;
  cfg.channels = 8;
  const Laser laser(cfg);
  const WdmField f = laser.emit(3);
  for (std::size_t ch = 0; ch < 3; ++ch) EXPECT_GT(f.intensity(ch), 0.0);
  for (std::size_t ch = 3; ch < 8; ++ch) EXPECT_DOUBLE_EQ(f.intensity(ch), 0.0);
}

TEST(Laser, RejectsMoreActiveThanConfigured) {
  const Laser laser(LaserConfig{});
  EXPECT_THROW(laser.emit(9), PreconditionError);
}

TEST(Laser, DroopScalesOpticalAmplitudeNotElectricalPower) {
  LaserConfig cfg;
  cfg.channels = 2;
  cfg.carrier_amplitude = 2.0;
  Laser laser(cfg);
  const double electrical_before = laser.electrical_power().watts();
  laser.apply_droop(0.25);  // pump aging: quarter the optical power out
  EXPECT_DOUBLE_EQ(laser.droop(), 0.25);
  const WdmField f = laser.emit();
  // Power scale 0.25 is amplitude scale 0.5.
  EXPECT_DOUBLE_EQ(f.amplitude(0).real(), 1.0);
  // The pump keeps drawing full current — wall-plug efficiency sags.
  EXPECT_DOUBLE_EQ(laser.electrical_power().watts(), electrical_before);
}

TEST(Laser, DroopRejectsUnphysicalScale) {
  Laser laser(LaserConfig{});
  EXPECT_THROW(laser.apply_droop(0.0), PreconditionError);
  EXPECT_THROW(laser.apply_droop(1.5), PreconditionError);
}

TEST(Laser, ElectricalPowerScalesWithChannelsAndEfficiency) {
  LaserConfig cfg;
  cfg.channels = 8;
  cfg.wall_plug_efficiency = 0.2;
  cfg.optical_power_per_channel = units::milliwatts(1.0);
  const Laser laser(cfg);
  EXPECT_NEAR(laser.electrical_power().milliwatts(), 8.0 / 0.2, 1e-12);

  cfg.channels = 16;
  EXPECT_NEAR(Laser(cfg).electrical_power().milliwatts(), 80.0, 1e-12);
}

TEST(Laser, RejectsInvalidConfig) {
  LaserConfig bad;
  bad.channels = 0;
  EXPECT_THROW(Laser{bad}, PreconditionError);

  bad = LaserConfig{};
  bad.carrier_amplitude = 0.0;
  EXPECT_THROW(Laser{bad}, PreconditionError);

  bad = LaserConfig{};
  bad.wall_plug_efficiency = 1.5;
  EXPECT_THROW(Laser{bad}, PreconditionError);
}

TEST(Laser, CarrierIntensityMatchesAmplitude) {
  LaserConfig cfg;
  cfg.carrier_amplitude = 3.0;
  const Laser laser(cfg);
  EXPECT_DOUBLE_EQ(laser.emit().intensity(0), 4.5);  // ½·9
}

}  // namespace
