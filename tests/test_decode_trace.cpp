// Tests for the decode-phase (KV-cache) workload tracer.
#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "common/require.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(DecodeTrace, SingleTokenGemvShapes) {
  const auto cfg = bert_base(128);
  const auto t = trace_decode_step(cfg, 256);
  for (const auto& g : t.gemms) {
    EXPECT_EQ(g.m, 1u) << g.label;  // everything is a GEMV in decode
  }
  EXPECT_EQ(t.gemms.size(), cfg.layers * 8);
}

TEST(DecodeTrace, MacsMatchClosedForm) {
  const auto cfg = bert_base(128);
  const std::size_t ctx = 512;
  const auto t = trace_decode_step(cfg, ctx);
  const std::size_t d = cfg.d_model, ff = cfg.d_ff, h = cfg.heads, dh = cfg.d_head();
  const std::size_t per_layer =
      4 * d * d + 2 * h * dh * ctx + 2 * d * ff;
  EXPECT_EQ(t.total_macs(), cfg.layers * per_layer);
}

TEST(DecodeTrace, AttentionScoresScaleWithContext) {
  const auto cfg = bert_base(128);
  const auto short_ctx = trace_decode_step(cfg, 128);
  const auto long_ctx = trace_decode_step(cfg, 1024);
  EXPECT_GT(long_ctx.macs(OpClass::kAttention), short_ctx.macs(OpClass::kAttention));
  // FFN work is context-independent.
  EXPECT_EQ(long_ctx.macs(OpClass::kFfn), short_ctx.macs(OpClass::kFfn));
}

TEST(DecodeTrace, KvReadsChargedAsExtraMovement) {
  const auto cfg = bert_base(128);
  const std::size_t ctx = 300;
  const auto t = trace_decode_step(cfg, ctx);
  std::uint64_t kv_elements = 0;
  for (const auto& g : t.gemms) {
    if (!g.static_weights) {
      EXPECT_GT(g.extra_movement_elements, 0u) << g.label;
      kv_elements += g.extra_movement_elements * g.repeats;
    } else {
      EXPECT_EQ(g.extra_movement_elements, 0u) << g.label;
    }
  }
  // Per layer: K rows (dh·ctx per head) + V rows — i.e. 2·d·ctx.
  EXPECT_EQ(kv_elements, cfg.layers * 2 * cfg.d_model * ctx);
}

TEST(DecodeTrace, RejectsEmptyContext) {
  EXPECT_THROW(trace_decode_step(bert_base(128), 0), PreconditionError);
}

TEST(KvCache, FootprintFormula) {
  const auto cfg = bert_base(128);
  // 2 · 12 layers · 1024 ctx · 768 · 1 byte = 18.87 MB at 8-bit.
  EXPECT_EQ(kv_cache_bytes(cfg, 1024, 8), 2ull * 12 * 1024 * 768);
  EXPECT_EQ(kv_cache_bytes(cfg, 1024, 4), 2ull * 12 * 1024 * 768 / 2);
}

TEST(Generation, ConcatenatesPrefillAndSteps) {
  const auto cfg = tiny_transformer(8, 32, 2, 2);
  const auto t = trace_generation(cfg, 8, 3);
  const auto prefill = trace_forward([&] {
    auto c = cfg;
    c.seq_len = 8;
    return c;
  }());
  EXPECT_EQ(t.gemms.size(), prefill.gemms.size() + 3 * cfg.layers * 8);
}

TEST(Generation, LaterStepsAttendOverLongerContext) {
  const auto cfg = tiny_transformer(8, 32, 2, 1);
  const auto t = trace_generation(cfg, 8, 2);
  // The two decode QK^T ops attend over 9 then 10 rows.
  std::vector<std::size_t> score_lens;
  for (const auto& g : t.gemms) {
    if (g.label.rfind("D0.QK^T", 0) == 0) score_lens.push_back(g.n);
  }
  ASSERT_EQ(score_lens.size(), 2u);
  EXPECT_EQ(score_lens[0], 9u);
  EXPECT_EQ(score_lens[1], 10u);
}

TEST(ArithmeticIntensity, DecodeFarBelowPrefill) {
  const auto cfg = bert_base(128);
  const double prefill_ai = arithmetic_intensity(trace_forward(cfg), 8);
  const double decode_ai = arithmetic_intensity(trace_decode_step(cfg, 512), 8);
  EXPECT_GT(prefill_ai, 20.0 * decode_ai);
  EXPECT_GT(decode_ai, 0.0);
}

TEST(ArithmeticIntensity, HalvingBitsDoublesIntensity) {
  const auto t = trace_decode_step(bert_base(128), 256);
  EXPECT_NEAR(arithmetic_intensity(t, 4) / arithmetic_intensity(t, 8), 2.0, 1e-9);
}

TEST(DecodeEnergy, MovementDominatedAtAllContexts) {
  // Every decode step is movement-dominated: weights and KV rows are
  // fetched for single-token GEMVs, so the P-DAC saving sits an order
  // of magnitude below prefill regardless of context length.  Within
  // decode, longer contexts shift work toward the dynamic products,
  // whose double-rate conversions give the P-DAC slightly *more* to
  // save.
  const auto cfg = bert_base(128);
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const double s_short =
      arch::compare_energy(trace_decode_step(cfg, 128), lt, params, 8).total_saving();
  const double s_long =
      arch::compare_energy(trace_decode_step(cfg, 4096), lt, params, 8).total_saving();
  EXPECT_GT(s_long, s_short);
  EXPECT_GT(s_short, 0.0);
  EXPECT_LT(s_long, 0.10);  // an order of magnitude below prefill's 33 %
}

TEST(DecodeEnergy, BelowPrefillSaving) {
  const auto cfg = bert_base(128);
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const double s_prefill =
      arch::compare_energy(trace_forward(cfg), lt, params, 8).total_saving();
  const double s_decode =
      arch::compare_energy(trace_decode_step(cfg, 512), lt, params, 8).total_saving();
  EXPECT_GT(s_prefill, s_decode);
}

}  // namespace

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(BatchedDecode, WeightGemmsFuseAcrossBatch) {
  const auto cfg = bert_base(128);
  const auto t = trace_decode_step_batched(cfg, 256, 16);
  for (const auto& g : t.gemms) {
    if (g.static_weights) {
      EXPECT_EQ(g.m, 16u) << g.label;  // fused (batch × d) GEMM
    } else {
      EXPECT_EQ(g.m, 1u) << g.label;   // attention stays per-sequence
      EXPECT_EQ(g.repeats, cfg.heads * 16) << g.label;
    }
  }
}

TEST(BatchedDecode, BatchOneMatchesSingleStream) {
  const auto cfg = bert_base(128);
  const auto single = trace_decode_step(cfg, 300);
  const auto batched = trace_decode_step_batched(cfg, 300, 1);
  EXPECT_EQ(single.total_macs(), batched.total_macs());
  EXPECT_EQ(single.weight_elements(OpClass::kFfn), batched.weight_elements(OpClass::kFfn));
}

TEST(BatchedDecode, MacsScaleLinearlyWithBatch) {
  const auto cfg = bert_base(128);
  const auto b1 = trace_decode_step_batched(cfg, 256, 1);
  const auto b8 = trace_decode_step_batched(cfg, 256, 8);
  EXPECT_EQ(b8.total_macs(), 8 * b1.total_macs());
  // …but weight traffic does NOT scale: that is the whole point.
  std::size_t w1 = 0, w8 = 0;
  for (const auto& g : b1.gemms) w1 += g.weight_elements();
  for (const auto& g : b8.gemms) w8 += g.weight_elements();
  EXPECT_EQ(w1, w8);
}

TEST(BatchedDecode, KvTrafficScalesWithBatch) {
  const auto cfg = bert_base(128);
  const auto b1 = trace_decode_step_batched(cfg, 256, 1);
  const auto b8 = trace_decode_step_batched(cfg, 256, 8);
  auto kv = [](const WorkloadTrace& t) {
    std::size_t sum = 0;
    for (const auto& g : t.gemms) sum += g.extra_movement_elements * g.repeats;
    return sum;
  };
  EXPECT_EQ(kv(b8), 8 * kv(b1));
}

TEST(BatchedDecode, SavingImprovesWithBatch) {
  const auto cfg = bert_base(128);
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const double s1 =
      arch::compare_energy(trace_decode_step_batched(cfg, 512, 1), lt, params, 8)
          .total_saving();
  const double s32 =
      arch::compare_energy(trace_decode_step_batched(cfg, 512, 32), lt, params, 8)
          .total_saving();
  EXPECT_GT(s32, 2.0 * s1);
}

TEST(BatchedDecode, RejectsZeroBatch) {
  EXPECT_THROW(trace_decode_step_batched(bert_base(128), 128, 0), PreconditionError);
}

}  // namespace

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(QuantizedKv, EqualWidthsMatchPlainDecode) {
  const auto cfg = bert_base(128);
  const auto plain = trace_decode_step(cfg, 300);
  const auto q = trace_decode_step_quantized_kv(cfg, 300, 8, 8);
  ASSERT_EQ(plain.gemms.size(), q.gemms.size());
  for (std::size_t i = 0; i < plain.gemms.size(); ++i) {
    EXPECT_EQ(plain.gemms[i].extra_movement_elements, q.gemms[i].extra_movement_elements);
  }
}

TEST(QuantizedKv, HalfWidthHalvesCacheTraffic) {
  const auto cfg = bert_base(128);
  const auto full = trace_decode_step_quantized_kv(cfg, 512, 8, 8);
  const auto half = trace_decode_step_quantized_kv(cfg, 512, 8, 4);
  auto kv = [](const WorkloadTrace& t) {
    std::size_t sum = 0;
    for (const auto& g : t.gemms) sum += g.total_extra_movement_elements();
    return sum;
  };
  EXPECT_EQ(kv(half), kv(full) / 2);
  // Compute is unchanged: only the cache representation thins.
  EXPECT_EQ(half.total_macs(), full.total_macs());
}

TEST(QuantizedKv, ThinnerCacheRaisesPdacSaving) {
  const auto cfg = bert_base(128);
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const double s8 = arch::compare_energy(trace_decode_step_quantized_kv(cfg, 2048, 8, 8),
                                         lt, params, 8)
                        .total_saving();
  const double s2 = arch::compare_energy(trace_decode_step_quantized_kv(cfg, 2048, 8, 2),
                                         lt, params, 8)
                        .total_saving();
  EXPECT_GT(s2, s8);
}

TEST(QuantizedKv, RejectsBadWidths) {
  EXPECT_THROW(trace_decode_step_quantized_kv(bert_base(128), 128, 0, 8),
               PreconditionError);
  EXPECT_THROW(trace_decode_step_quantized_kv(bert_base(128), 128, 8, 0),
               PreconditionError);
}

}  // namespace
