// Tests for the ABFT-guarded GEMM backend over a live lane bank:
// bit-identity to the degraded backend on clean hardware, zero false
// positives, in-band detection of silent faults (pre-product and
// mid-product storms), the retry → re-trim → fence escalation ladder,
// and the operand-cache epoch interplay.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/self_test.hpp"

namespace {

using namespace pdac;

faults::LaneBankConfig small_bank_config(std::uint64_t seed = 5) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

faults::FaultSchedule one_event(std::size_t lanes, faults::FaultEvent ev,
                                std::uint64_t horizon = 8) {
  faults::FaultSchedule sched;
  sched.cfg.lanes = lanes;
  sched.cfg.bits = 8;
  sched.cfg.horizon_steps = horizon;
  sched.events.push_back(ev);
  return sched;
}

faults::FaultEvent stuck_mrr(std::size_t lane, std::uint64_t step = 1) {
  faults::FaultEvent ev;
  ev.step = step;
  ev.lane = lane;
  ev.kind = faults::FaultKind::kStuckMrr;
  ev.magnitude = 0.4;
  return ev;
}

void expect_matrices_equal(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "element " << i;
  }
}

void expect_events_equal(const ptc::EventCounter& a, const ptc::EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(GuardedBackend, CleanBankBitIdenticalToDegradedBackend) {
  // On healthy hardware the guard must be pure observation: the data
  // path (same per-lane encodes, same ascending-p accumulation) and the
  // data-path events match DegradedBackend bit for bit / field for
  // field, and every tile verifies.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend guarded(bank);
  faults::DegradedBackend degraded(bank);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(13, 18, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(18, 11, rng, 0.0, 1.0);

  const Matrix g = guarded.matmul(a, b);
  const Matrix d = degraded.matmul(a, b);
  expect_matrices_equal(g, d);
  expect_events_equal(guarded.events(), degraded.events());

  const faults::HealthSnapshot& snap = guarded.monitor().snapshot();
  EXPECT_EQ(snap.products, 1u);
  EXPECT_EQ(snap.detections, 0u);
  EXPECT_EQ(snap.mismatched_tiles, 0u);
  EXPECT_GT(snap.tiles_checked, 0u);
  EXPECT_GT(snap.checksum_events.modulation_events, 0u);
  EXPECT_LT(snap.worst_residual, snap.worst_tolerance);
}

TEST(GuardedBackend, CleanRunBitIdenticalAtAnyThreadCount) {
  Rng rng(7);
  const Matrix a = Matrix::random_gaussian(17, 20, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(20, 13, rng, 0.0, 1.0);

  faults::LaneBank ref_bank(small_bank_config());
  faults::production_trim(ref_bank);
  faults::GuardedBackend serial(ref_bank);
  const Matrix want = serial.matmul(a, b);

  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    faults::LaneBank bank(small_bank_config());
    faults::production_trim(bank);
    faults::GuardedBackendConfig cfg;
    cfg.threads = threads;
    faults::GuardedBackend wide(bank, cfg);
    expect_matrices_equal(wide.matmul(a, b), want);
    expect_events_equal(wide.events(), serial.events());
    EXPECT_EQ(wide.monitor().snapshot().detections, 0u);
  }
}

TEST(GuardedBackend, CachedProductBitIdenticalAndServedFromCache) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(9, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 9, rng, 0.0, 1.0);
  const nn::WeightHandle w{11, 1};

  const Matrix uncached = backend.matmul(a, b);
  const Matrix first = backend.matmul_cached(a, b, w);
  const Matrix second = backend.matmul_cached(a, b, w);
  expect_matrices_equal(first, uncached);
  expect_matrices_equal(second, uncached);
  EXPECT_EQ(backend.cache().stats().misses, 1u);
  EXPECT_EQ(backend.cache().stats().hits, 1u);
  EXPECT_EQ(backend.monitor().snapshot().detections, 0u);
}

TEST(GuardedBackend, ZeroFalsePositivesOverTenThousandCleanTiles) {
  // Acceptance gate on the live-bank path: golden snapshots and current
  // lane state coincide on healthy hardware, so ≥ 10k verified tiles
  // across many shapes must produce zero detections.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  std::size_t products = 0;
  for (std::uint64_t seed = 1; backend.monitor().snapshot().tiles_checked < 10000; ++seed) {
    Rng rng(seed);
    const std::size_t k = 6 + (seed % 7);
    const Matrix a = Matrix::random_gaussian(77 + (seed % 8), k, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(k, 77 + ((seed * 3) % 8), rng, 0.0, 1.0);
    (void)backend.matmul(a, b);
    ++products;
  }
  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_GE(snap.tiles_checked, 10000u);
  EXPECT_EQ(snap.mismatched_tiles, 0u);
  EXPECT_EQ(snap.detections, 0u);
  EXPECT_EQ(snap.products, products);
  EXPECT_LT(snap.worst_residual, 0.5 * snap.worst_tolerance);
}

TEST(GuardedBackend, PreProductStuckMrrDetectedAndRecovered) {
  // A fault that lands BETWEEN products silently corrupts the next one:
  // data encodes through the stuck lane while the references come from
  // the golden snapshot, so detection fires in the first pass, the
  // ladder climbs retry → re-trim (self-test fences the dead lane), and
  // the re-run on survivors matches a degraded product bit for bit.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  faults::FaultInjector injector(bank, one_event(bank.lanes(), stuck_mrr(3)));
  injector.advance_to(8);

  Rng rng(5);
  const Matrix a = Matrix::random_gaussian(16, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 16, rng, 0.0, 1.0);
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_GT(snap.mismatched_tiles, 0u);
  EXPECT_EQ(snap.retries, 1u);   // retry re-runs through the still-stuck lane
  EXPECT_EQ(snap.retrims, 1u);   // the self-test rung then fences it
  EXPECT_EQ(snap.unrecovered, 0u);
  EXPECT_GT(snap.probe_events, 0u);
  ASSERT_GT(snap.lane_mismatches.size(), 3u);
  EXPECT_GE(snap.lane_mismatches[3], 1u);
  EXPECT_TRUE(bank.lane(3).fenced);
  EXPECT_GT(snap.retry_events.macs, 0u);

  // Recovered output is a faithful degraded product, not best-effort
  // garbage: bit-identical to DegradedBackend on the recovered bank and
  // numerically close to the exact reference.
  faults::DegradedBackend degraded(bank);
  expect_matrices_equal(got, degraded.matmul(a, b));
  const auto err = stats::compare(got.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);
}

TEST(GuardedBackend, DeadPdBitIsDetectedAndRecovered) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  faults::FaultEvent ev;
  ev.step = 1;
  ev.lane = 5;  // y rail of channel 1
  ev.kind = faults::FaultKind::kDeadPd;
  ev.bit = 7;  // MSB: every negative code loses its largest weight
  faults::FaultInjector injector(bank, one_event(bank.lanes(), ev));
  injector.advance_to(8);

  Rng rng(19);
  const Matrix a = Matrix::random_gaussian(16, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 16, rng, 0.0, 1.0);
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
  EXPECT_TRUE(bank.lane(5).fenced);
  const auto err = stats::compare(got.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);
}

TEST(GuardedBackend, FenceRungMatchesDegradedRerunBitIdentically) {
  // Ladder clamped to the fence rung: the golden-table readback must
  // fence exactly the diverged lane, attribute it in the monitor, bump
  // the epoch, and the guarded re-run on the survivors must equal a
  // DegradedBackend product on the post-fence bank bit for bit.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.escalation.max_retries = 0;
  cfg.escalation.max_retrims = 0;
  cfg.escalation.allow_fence = true;
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultInjector injector(bank, one_event(bank.lanes(), stuck_mrr(3)));
  injector.advance_to(8);
  const std::uint64_t epoch_before = bank.epoch();

  Rng rng(23);
  const Matrix a = Matrix::random_gaussian(12, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 12, rng, 0.0, 1.0);
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_EQ(snap.retrims, 0u);
  EXPECT_EQ(snap.fences, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
  EXPECT_GT(snap.probe_events, 0u);
  EXPECT_TRUE(bank.lane(3).fenced);
  // Only the diverged lane is fenced — healthy implicated lanes survive
  // the readback untouched.
  EXPECT_EQ(bank.fenced_lanes(), 1u);
  ASSERT_GT(snap.lane_mismatches.size(), 3u);
  EXPECT_EQ(snap.lane_mismatches[3], 1u);
  EXPECT_GT(bank.epoch(), epoch_before);

  faults::DegradedBackend degraded(bank);
  expect_matrices_equal(got, degraded.matmul(a, b));
}

TEST(GuardedBackend, ExhaustedLadderReturnsBestEffortAndCountsUnrecovered) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.escalation.max_retries = 0;
  cfg.escalation.max_retrims = 0;
  cfg.escalation.allow_fence = false;  // every rung disabled
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultInjector injector(bank, one_event(bank.lanes(), stuck_mrr(2)));
  injector.advance_to(8);

  Rng rng(29);
  const Matrix a = Matrix::random_gaussian(8, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 8, rng, 0.0, 1.0);
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_EQ(snap.unrecovered, 1u);
  EXPECT_FALSE(bank.lane(2).fenced);  // nothing was allowed to act
  // Best-effort output is returned (not zeroed) — the caller sees the
  // corruption through the monitor, not through a silent blank.
  double max_abs = 0.0;
  for (double v : got.data()) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_GT(max_abs, 0.0);
}

TEST(GuardedBackend, StormDetectsMidProductFaultInAffectedTile) {
  // A storm advances the injector's clock before every tile step, so a
  // fault scheduled at step S strikes between tiles: every tile before
  // it verifies, detection fires exactly at the first tile encoded after
  // the strike, and the ladder still recovers the product.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  const std::uint64_t fault_step = 42;
  faults::FaultInjector injector(bank,
                                 one_event(bank.lanes(), stuck_mrr(3, fault_step), 256));
  backend.attach_storm(&injector, 1);

  Rng rng(31);
  // 80×80 outputs on the 8×8 array: 100 serialized tile steps.
  const Matrix a = Matrix::random_gaussian(80, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 80, rng, 0.0, 1.0);
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.products, 1u);
  EXPECT_EQ(snap.detections, 1u);
  // The clock reads t+1 before tile t, so step 42 lands before tile 41 —
  // detection latency is the 42 tiles scanned up to and including it.
  EXPECT_DOUBLE_EQ(snap.mean_detection_latency(), static_cast<double>(fault_step));
  // Tiles before the strike stayed clean; everything after mismatched.
  EXPECT_EQ(snap.mismatched_tiles, 100u - (fault_step - 1));
  EXPECT_EQ(snap.unrecovered, 0u);
  EXPECT_TRUE(bank.lane(3).fenced);

  const auto err = stats::compare(got.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);
}

TEST(GuardedBackend, EpochBumpInvalidatesCachedOperandAndGuardStillFires) {
  // Weight-stationary interplay: the injector's epoch bump forces a
  // re-prepare (no stale encodings escape the cache), and because the
  // golden snapshot predates the fault, the freshly prepared product is
  // still caught and recovered.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackend backend(bank);
  Rng rng(37);
  const Matrix a = Matrix::random_gaussian(12, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 12, rng, 0.0, 1.0);
  const nn::WeightHandle w{7, 1};

  (void)backend.matmul_cached(a, b, w);  // miss + insert
  (void)backend.matmul_cached(a, b, w);  // hit
  EXPECT_EQ(backend.cache().stats().hits, 1u);
  EXPECT_EQ(backend.monitor().snapshot().detections, 0u);

  faults::FaultInjector injector(bank, one_event(bank.lanes(), stuck_mrr(1)));
  injector.advance_to(8);  // mutates lanes AND bumps the bank epoch

  const Matrix recovered = backend.matmul_cached(a, b, w);
  EXPECT_GE(backend.cache().stats().invalidations, 1u);
  const faults::HealthSnapshot& snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
  const auto err = stats::compare(recovered.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);

  // Recovery re-warmed the cache against the repaired bank: the next
  // product hits and verifies cleanly.
  const std::uint64_t hits_before = backend.cache().stats().hits;
  const Matrix again = backend.matmul_cached(a, b, w);
  EXPECT_EQ(backend.cache().stats().hits, hits_before + 1);
  EXPECT_EQ(backend.monitor().snapshot().detections, 1u);
  expect_matrices_equal(again, recovered);
}

TEST(GuardedBackend, SecCorrectsSingleDotUpsetWithoutSpendingARung) {
  // A transient single-detector glitch flags exactly one row lane and
  // one column lane with agreeing residuals — the SEC signature.  The
  // guard repairs the intersection digitally: no retry, no re-trim, no
  // detection escalation, and the corrected output matches the clean run
  // to floating-point noise (the residual estimate carries the checksum
  // sum's rounding, so exact bit-identity is not promised).
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::LaneBank clean_bank(small_bank_config());
  faults::production_trim(clean_bank);
  faults::GuardedBackend backend(bank);
  faults::GuardedBackend clean(clean_bank);
  Rng rng(23);
  const Matrix a = Matrix::random_gaussian(6, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 7, rng, 0.0, 1.0);
  const Matrix want = clean.matmul(a, b);

  backend.inject_dot_upset({2, 3, 0.5});
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.sec_corrections, 1u);
  EXPECT_EQ(snap.mismatched_tiles, 0u);  // corrected tiles are not mismatches
  EXPECT_EQ(snap.detections, 0u);
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_EQ(snap.retrims, 0u);
  EXPECT_EQ(snap.unrecovered, 0u);
  ASSERT_EQ(got.rows(), want.rows());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got.data()[i], want.data()[i], 1e-9) << "element " << i;
  }
}

TEST(GuardedBackend, TwoUpsetsLackTheSecSignatureAndRetryClearsThem) {
  // Two glitches on distinct rows and columns flag two row lanes and two
  // column lanes — not correctable, so the ladder's retry rung fires.
  // The upsets are transient (initial pass only), so the retry re-run is
  // clean and bit-identical to an unfaulted backend.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::LaneBank clean_bank(small_bank_config());
  faults::production_trim(clean_bank);
  faults::GuardedBackend backend(bank);
  faults::GuardedBackend clean(clean_bank);
  Rng rng(29);
  const Matrix a = Matrix::random_gaussian(6, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 7, rng, 0.0, 1.0);
  const Matrix want = clean.matmul(a, b);

  backend.inject_dot_upset({1, 2, 0.5});
  backend.inject_dot_upset({4, 5, -0.4});
  const Matrix got = backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.sec_corrections, 0u);
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_GE(snap.retries, 1u);
  EXPECT_EQ(snap.retrims, 0u);  // transient: the first re-run verifies
  EXPECT_EQ(snap.unrecovered, 0u);
  expect_matrices_equal(got, want);
}

TEST(GuardedBackend, SecDisabledFallsBackToTheRetryRung) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.guard.sec_correction = false;
  faults::GuardedBackend backend(bank, cfg);
  Rng rng(31);
  const Matrix a = Matrix::random_gaussian(6, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 7, rng, 0.0, 1.0);

  backend.inject_dot_upset({2, 3, 0.5});
  (void)backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.sec_corrections, 0u);
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_GE(snap.retries, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
}

TEST(GuardedBackend, ColumnOnlyGuardHalvesChecksumChargeAndStillDetects) {
  // The cheap guard mode drops the row-lane stripes: the spare checksum
  // charge shrinks (w instead of h+w lanes per tile) while the data path
  // stays bit-identical, and a real lane fault is still caught because
  // every output column it touches diverges from the golden reference.
  faults::LaneBank full_bank(small_bank_config());
  faults::production_trim(full_bank);
  faults::LaneBank col_bank(small_bank_config());
  faults::production_trim(col_bank);
  faults::GuardedBackendConfig col_cfg;
  col_cfg.guard.column_only = true;
  faults::GuardedBackend full(full_bank);
  faults::GuardedBackend col_only(col_bank, col_cfg);
  Rng rng(37);
  const Matrix a = Matrix::random_gaussian(9, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 10, rng, 0.0, 1.0);

  expect_matrices_equal(col_only.matmul(a, b), full.matmul(a, b));
  const auto full_ev = full.monitor().snapshot().checksum_events;
  const auto col_ev = col_only.monitor().snapshot().checksum_events;
  EXPECT_LT(col_ev.adc_events, full_ev.adc_events);
  EXPECT_LT(col_ev.ddot_ops, full_ev.ddot_ops);
  EXPECT_EQ(col_ev.modulation_events * 2, full_ev.modulation_events);

  // Pre-product stuck MRR: the column-only guard must still detect and
  // recover in-band.
  faults::LaneBank fault_bank(small_bank_config());
  faults::production_trim(fault_bank);
  faults::GuardedBackend guarded(fault_bank, col_cfg);
  faults::FaultInjector injector(fault_bank,
                                 one_event(fault_bank.lanes(), stuck_mrr(2, 0)));
  injector.advance_to(1);
  (void)guarded.matmul(a, b);
  const faults::HealthSnapshot snap = guarded.monitor().snapshot();
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
}

TEST(GuardedBackend, ColumnOnlyGuardCannotCorrectAndRetriesInstead) {
  // SEC needs the row×column residual intersection; without row lanes a
  // single-dot upset escalates through the ladder like any mismatch.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.guard.column_only = true;
  faults::GuardedBackend backend(bank, cfg);
  Rng rng(41);
  const Matrix a = Matrix::random_gaussian(6, 12, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(12, 7, rng, 0.0, 1.0);

  backend.inject_dot_upset({2, 3, 0.5});
  (void)backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.sec_corrections, 0u);
  EXPECT_EQ(snap.detections, 1u);
  EXPECT_GE(snap.retries, 1u);
  EXPECT_EQ(snap.unrecovered, 0u);
}

TEST(GuardedBackend, FullyFencedBankIsAnOutage) {
  faults::LaneBank bank(small_bank_config());
  for (std::size_t i = 0; i < bank.lanes(); ++i) bank.lane(i).fenced = true;
  bank.bump_epoch();
  faults::GuardedBackend backend(bank);
  const Matrix out = backend.matmul(Matrix(2, 4), Matrix(4, 2));
  for (double v : out.data()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(backend.events().cycles, 0u);
  EXPECT_EQ(backend.monitor().snapshot().products, 0u);
}

}  // namespace
