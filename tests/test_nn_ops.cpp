// Tests for the digital vector-unit operators (softmax, GELU, layernorm).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "nn/ops.hpp"

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(Softmax, RowsSumToOne) {
  Rng rng(1);
  Matrix m = Matrix::random_gaussian(5, 7, rng, 0.0, 3.0);
  softmax_rows(m);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double sum = 0.0;
    for (double v : m.row(r)) {
      sum += v;
      EXPECT_GE(v, 0.0);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, UniformInputGivesUniformOutput) {
  Matrix m(1, 4, 2.5);
  softmax_rows(m);
  for (double v : m.row(0)) EXPECT_NEAR(v, 0.25, 1e-12);
}

TEST(Softmax, InvariantToRowShift) {
  Matrix a(1, 3, std::vector<double>{1.0, 2.0, 3.0});
  Matrix b(1, 3, std::vector<double>{101.0, 102.0, 103.0});
  softmax_rows(a);
  softmax_rows(b);
  for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(a(0, c), b(0, c), 1e-12);
}

TEST(Softmax, StableForLargeLogits) {
  Matrix m(1, 2, std::vector<double>{1000.0, 999.0});
  softmax_rows(m);
  EXPECT_TRUE(std::isfinite(m(0, 0)));
  EXPECT_NEAR(m(0, 0) + m(0, 1), 1.0, 1e-12);
  EXPECT_GT(m(0, 0), m(0, 1));
}

TEST(Gelu, KnownValues) {
  Matrix m(1, 3, std::vector<double>{0.0, 10.0, -10.0});
  gelu(m);
  EXPECT_NEAR(m(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(m(0, 1), 10.0, 1e-6);   // ≈identity for large positive
  EXPECT_NEAR(m(0, 2), 0.0, 1e-6);    // ≈0 for large negative
}

TEST(Gelu, MidpointMatchesTanhApproximation) {
  Matrix m(1, 1, std::vector<double>{1.0});
  gelu(m);
  EXPECT_NEAR(m(0, 0), 0.8412, 1e-3);
}

TEST(Gelu, MonotoneOnPositiveAxis) {
  Matrix m(1, 50);
  for (std::size_t i = 0; i < 50; ++i) m(0, i) = 0.1 * static_cast<double>(i);
  gelu(m);
  for (std::size_t i = 1; i < 50; ++i) EXPECT_GT(m(0, i), m(0, i - 1));
}

TEST(LayerNorm, NormalizesRows) {
  Rng rng(2);
  Matrix m = Matrix::random_gaussian(4, 64, rng, 5.0, 3.0);
  const std::vector<double> gamma(64, 1.0), beta(64, 0.0);
  layer_norm(m, gamma, beta);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (double v : m.row(r)) mean += v;
    mean /= 64.0;
    for (double v : m.row(r)) var += (v - mean) * (v - mean);
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(LayerNorm, GammaBetaApplied) {
  Matrix m(1, 2, std::vector<double>{-1.0, 1.0});
  const std::vector<double> gamma{2.0, 2.0};
  const std::vector<double> beta{0.5, 0.5};
  layer_norm(m, gamma, beta);
  EXPECT_NEAR(m(0, 0), -2.0 + 0.5, 1e-4);
  EXPECT_NEAR(m(0, 1), 2.0 + 0.5, 1e-4);
}

TEST(LayerNorm, RejectsMismatchedParams) {
  Matrix m(1, 4);
  const std::vector<double> short_vec(3, 1.0);
  const std::vector<double> ok(4, 1.0);
  EXPECT_THROW(layer_norm(m, short_vec, ok), PreconditionError);
}

TEST(AddInplace, ElementwiseSum) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, std::vector<double>{1, 2, 3, 4});
  add_inplace(a, b);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 5.0);
}

TEST(AddInplace, RejectsShapeMismatch) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(add_inplace(a, b), PreconditionError);
}

TEST(AddBias, BroadcastsOverRows) {
  Matrix m(2, 3, 0.0);
  const std::vector<double> bias{1.0, 2.0, 3.0};
  add_bias(m, bias);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(m(r, 0), 1.0);
    EXPECT_DOUBLE_EQ(m(r, 2), 3.0);
  }
}

TEST(AddBias, RejectsWrongWidth) {
  Matrix m(1, 3);
  const std::vector<double> bias{1.0};
  EXPECT_THROW(add_bias(m, bias), PreconditionError);
}

TEST(ScaleInplace, MultipliesEveryElement) {
  Matrix m(2, 2, 3.0);
  scale_inplace(m, -2.0);
  for (double v : m.data()) EXPECT_DOUBLE_EQ(v, -6.0);
}

}  // namespace
