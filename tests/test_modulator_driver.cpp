// Tests for the modulator-driver abstraction (ideal-DAC vs P-DAC).
#include <gtest/gtest.h>

#include <cmath>

#include "core/modulator_driver.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(IdealDacDriver, EncodesWithinQuantizationError) {
  const auto drv = make_ideal_dac_driver(8);
  for (double r : {-1.0, -0.7, -0.2, 0.0, 0.3, 0.5, 0.99, 1.0}) {
    // Operand quantization (1/127) plus phase quantization through the
    // DAC; the worst case is ~π/254 of phase ≈ 0.012 in value.
    EXPECT_NEAR(drv->encode(r), r, 0.02) << "r=" << r;
  }
}

TEST(IdealDacDriver, SynthesizedPhaseIsArccosQuantized) {
  IdealDacDriverConfig cfg;
  cfg.bits = 8;
  const IdealDacDriver drv(cfg);
  EXPECT_NEAR(drv.synthesized_phase(1.0), 0.0, 0.02);
  EXPECT_NEAR(drv.synthesized_phase(0.0), std::acos(0.0), 0.02);
  EXPECT_NEAR(drv.synthesized_phase(-1.0), std::acos(-1.0), 0.02);
}

TEST(IdealDacDriver, ConversionEnergyIncludesControllerAndDac) {
  IdealDacDriverConfig cfg;
  cfg.bits = 8;
  cfg.controller_energy = units::picojoules(0.384);
  const IdealDacDriver drv(cfg);
  // DAC at 8-bit/5 GHz ≈ 2.51 pJ; plus 0.384 pJ controller.
  EXPECT_NEAR(drv.conversion_energy().picojoules(), 2.51 + 0.384, 0.05);
}

TEST(IdealDacDriver, NameAndBits) {
  const auto drv = make_ideal_dac_driver(6);
  EXPECT_EQ(drv->name(), "ideal-dac");
  EXPECT_EQ(drv->bits(), 6);
}

TEST(PdacDriver, EncodeMatchesDeviceConvertValue) {
  PdacDriverConfig cfg;
  cfg.pdac.bits = 8;
  const PdacDriver drv(cfg);
  for (double r : {-0.9, -0.5, 0.0, 0.3, 0.7236, 1.0}) {
    EXPECT_DOUBLE_EQ(drv.encode(r), drv.device().convert_value(r)) << "r=" << r;
  }
}

TEST(PdacDriver, ConversionEnergyIsPowerOverClock) {
  PdacDriverConfig cfg;
  cfg.pdac.bits = 8;
  cfg.clock = units::gigahertz(5.0);
  const PdacDriver drv(cfg);
  EXPECT_NEAR(drv.conversion_energy().picojoules(),
              drv.device().power().watts() / 5e9 * 1e12, 1e-9);
}

TEST(PdacDriver, CheaperPerConversionThanIdealDac) {
  const auto pd = make_pdac_driver(8);
  const auto ideal = make_ideal_dac_driver(8);
  EXPECT_LT(pd->conversion_energy().joules(), 0.3 * ideal->conversion_energy().joules());
}

TEST(PdacDriver, EncodeClampsOutOfDomain) {
  const auto drv = make_pdac_driver(8);
  EXPECT_DOUBLE_EQ(drv->encode(3.0), drv->encode(1.0));
}

TEST(Drivers, FactoryBreakpointIsForwarded) {
  const auto drv = make_pdac_driver(8, 0.6);
  const auto* pd = dynamic_cast<const PdacDriver*>(drv.get());
  ASSERT_NE(pd, nullptr);
  EXPECT_DOUBLE_EQ(pd->device().approximation().breakpoint(), 0.6);
}

TEST(Drivers, PdacWorseMidRangeButGoodNearZeroAndOne) {
  const auto pd = make_pdac_driver(8);
  const auto ideal = make_ideal_dac_driver(8);
  // Near the breakpoint the P-DAC bears the full 8.5 % approximation…
  EXPECT_GT(std::abs(pd->encode(0.7236) - 0.7236),
            std::abs(ideal->encode(0.7236) - 0.7236));
  // …but at the exact-fit points both are tight.
  EXPECT_NEAR(pd->encode(1.0), 1.0, 1e-6);
  EXPECT_NEAR(pd->encode(0.0), 0.0, 1e-6);
}

}  // namespace
