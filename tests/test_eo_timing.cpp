// Tests for the EO-interface timing / eye-diagram analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "converters/eo_timing.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

EoTimingConfig cfg_of(double bw_ghz, int bits, double clk_ghz = 5.0) {
  EoTimingConfig cfg;
  cfg.modulator_bandwidth_ghz = bw_ghz;
  cfg.bits_per_cycle = bits;
  cfg.clock = units::gigahertz(clk_ghz);
  return cfg;
}

TEST(EoTiming, SlotDurationFormula) {
  const EoTimingAnalyzer a(cfg_of(20.0, 8));
  EXPECT_NEAR(a.slot_seconds(), 25e-12, 1e-15);  // 1/(5 GHz · 8)
}

TEST(EoTiming, TauFromBandwidth) {
  const EoTimingAnalyzer a(cfg_of(20.0, 8));
  EXPECT_NEAR(a.tau_seconds(), 1.0 / (2.0 * 3.14159265 * 20e9), 1e-14);
}

TEST(EoTiming, FastModulatorOpensEye) {
  const EoTimingAnalyzer a(cfg_of(100.0, 4));
  EXPECT_GT(a.eye_opening(), 0.99);
}

TEST(EoTiming, SlowModulatorClosesEye) {
  const EoTimingAnalyzer a(cfg_of(1.0, 16));  // 12.5 ps slots, τ ≈ 159 ps
  EXPECT_LT(a.eye_opening(), 0.0);
}

TEST(EoTiming, EyeShrinksWithBitsPerCycle) {
  double prev = 1.0;
  for (int b : {1, 2, 4, 8, 16}) {
    const double eye = EoTimingAnalyzer(cfg_of(20.0, b)).eye_opening();
    EXPECT_LT(eye, prev) << b << " bits";
    prev = eye;
  }
}

TEST(EoTiming, WaveformSettlesTowardTargets) {
  const EoTimingAnalyzer a(cfg_of(40.0, 4));
  OpticalDigitalWord word;
  word.slots.resize(4);
  word.slots[1].amplitude = photonics::Complex{1.0, 0.0};  // 0 1 0 0
  const auto wave = a.waveform(word, 8);
  ASSERT_EQ(wave.size(), 32u);
  EXPECT_LT(wave[7], 0.05);   // end of slot 0: still dark
  EXPECT_GT(wave[15], 0.9);   // end of slot 1: nearly on
  EXPECT_LT(wave[23], 0.1);   // end of slot 2: fell back off
  for (double v : wave) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(EoTiming, AlternatingPatternRecoverableAtDesignPoint) {
  // 8 bits/cycle at 5 GHz with a 20 GHz ring: the CAMON-style operating
  // point must survive the worst (alternating) pattern.
  const EoTimingAnalyzer a(cfg_of(20.0, 8));
  OpticalDigitalWord word;
  word.slots.resize(8);
  for (std::size_t i = 0; i < 8; i += 2) {
    word.slots[i].amplitude = photonics::Complex{1.0, 0.0};
  }
  EXPECT_TRUE(a.slots_recoverable(word));
}

TEST(EoTiming, PatternLostWhenOverclocked) {
  const EoTimingAnalyzer a(cfg_of(2.0, 32));
  OpticalDigitalWord word;
  word.slots.resize(32);
  for (std::size_t i = 0; i < 32; i += 2) {
    word.slots[i].amplitude = photonics::Complex{1.0, 0.0};
  }
  EXPECT_FALSE(a.slots_recoverable(word));
}

TEST(EoTiming, MaxBitsMonotoneInBandwidth) {
  const auto clk = units::gigahertz(5.0);
  int prev = 0;
  for (double bw : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    const int b = EoTimingAnalyzer::max_bits_per_cycle(bw, clk, 0.6);
    EXPECT_GE(b, prev) << bw << " GHz";
    prev = b;
  }
  EXPECT_GT(prev, 8);  // 80 GHz rings go beyond 8 bits/cycle
}

TEST(EoTiming, MaxBitsZeroWhenHopeless) {
  EXPECT_EQ(EoTimingAnalyzer::max_bits_per_cycle(0.1, units::gigahertz(5.0), 0.6), 0);
}

TEST(EoTiming, RejectsBadConfig) {
  EXPECT_THROW(EoTimingAnalyzer(cfg_of(0.0, 8)), PreconditionError);
  EXPECT_THROW(EoTimingAnalyzer(cfg_of(20.0, 0)), PreconditionError);
}

}  // namespace
