// Tests for the drift-adaptive hysteresis recovery policy (DESIGN.md
// §16) end to end on a live bank: the banded guard verdict that absorbs
// sub-accuracy bias wander, the proactive re-trim fired by the drift
// tracker's excursion signal, the windowed re-trim governor with its
// exact-boundary budget refill, walk-trajectory determinism across
// thread counts, and the guard-interplay contract — lanes drifting
// inside the band must not mask a hard fault on any numeric tier.
#include <gtest/gtest.h>

#include <cmath>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"

namespace {

using namespace pdac;

faults::LaneBankConfig small_bank_config(std::uint64_t seed = 5) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

/// Pure continuous bias random walk — no discrete events.  The walk is
/// fp-reassociation-scale on purpose: the guard band on a deterministic
/// bank is ~1e-13 relative (abft.hpp), so "sub-accuracy wander" means
/// per-step sigmas around 1e-13..1e-12 rad.
faults::FaultSchedule walk_schedule(std::size_t lanes, double sigma,
                                    std::uint64_t horizon, std::uint64_t seed = 11) {
  faults::FaultSchedule sched;
  sched.cfg.lanes = lanes;
  sched.cfg.bits = 8;
  sched.cfg.horizon_steps = horizon;
  sched.cfg.bias_walk_sigma_per_step = sigma;
  sched.cfg.seed = seed;
  return sched;
}

faults::FaultEvent stuck_mrr(std::size_t lane, std::uint64_t step = 1) {
  faults::FaultEvent ev;
  ev.step = step;
  ev.lane = lane;
  ev.kind = faults::FaultKind::kStuckMrr;
  ev.magnitude = 0.4;
  return ev;
}

void expect_matrices_equal(const Matrix& got, const Matrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.data()[i], want.data()[i]) << "element " << i;
  }
}

struct WalkRun {
  Matrix out;                  ///< last product's output
  faults::HealthSnapshot snap;
  faults::DriftSnapshot drift;
  std::vector<double> levels;  ///< per-lane tracker levels at the end
};

/// Decode `products` identical products under a per-tile bias walk.
/// Shape 16×24 · 24×32 → 8 tiles per product on the 8×8 array.
WalkRun run_walk(double band, bool proactive, double sigma, std::size_t products,
                 std::size_t threads = 1) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.threads = threads;
  cfg.guard.drift_band = band;
  cfg.escalation.proactive_retrim = proactive;
  cfg.escalation.retrim_cooldown_products = 2;
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultInjector injector(
      bank, walk_schedule(bank.lanes(), sigma, products * 16 + 16));
  backend.attach_storm(&injector, 1);

  Rng rng(33);
  const Matrix a = Matrix::random_gaussian(16, 24, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(24, 32, rng, 0.0, 1.0);
  WalkRun run;
  for (std::size_t p = 0; p < products; ++p) run.out = backend.matmul(a, b);
  run.snap = backend.monitor().snapshot();
  run.drift = backend.drift().snapshot();
  run.levels.reserve(backend.drift().lanes());
  for (std::size_t l = 0; l < backend.drift().lanes(); ++l) {
    run.levels.push_back(backend.drift().level(l));
  }
  return run;
}

TEST(DriftHysteresis, BandAbsorbsSubBandWanderWithoutEscalation) {
  // The same fp-scale walk trajectory under both policies: the legacy
  // band (1.0) keeps escalating as the walk diffuses across its
  // tolerance, while a wide band absorbs every tile as watched drift —
  // no detections, no rungs, and the wander is visible in the drift
  // counters instead of the recovery counters.
  const WalkRun base = run_walk(1.0, false, 8e-13, 12);
  EXPECT_GE(base.snap.detections, 1u);
  EXPECT_GE(base.snap.retrims, 1u);

  const WalkRun banded = run_walk(1000.0, false, 8e-13, 12);
  EXPECT_EQ(banded.snap.detections, 0u);
  EXPECT_EQ(banded.snap.mismatched_tiles, 0u);
  EXPECT_EQ(banded.snap.retries, 0u);
  EXPECT_EQ(banded.snap.retrims, 0u);
  EXPECT_EQ(banded.snap.fences, 0u);
  EXPECT_EQ(banded.snap.unrecovered, 0u);
  EXPECT_GE(banded.snap.drift_tiles, 1u);
  EXPECT_GE(banded.snap.drift_products, 1u);
  EXPECT_GT(banded.snap.worst_drift_ratio, 1.0);
  // Absorbed wander is still sub-accuracy: against the fp64 reference
  // the banded run scores no worse than a drift-free run of the same
  // bank — the ~1e-3 residual is the 8-bit encoder's quantization, and
  // the fp-scale walk adds nothing measurable on top.
  const WalkRun clean = run_walk(1000.0, false, 0.0, 12);
  Rng rng(33);
  const Matrix a = Matrix::random_gaussian(16, 24, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(24, 32, rng, 0.0, 1.0);
  const Matrix exact = matmul_reference(a, b);
  const double banded_cos = stats::compare(banded.out.data(), exact.data()).cosine;
  const double clean_cos = stats::compare(clean.out.data(), exact.data()).cosine;
  EXPECT_GT(banded_cos, 0.99);
  EXPECT_GE(banded_cos, clean_cos - 1e-9);
}

TEST(DriftHysteresis, ZeroDriftBandedPolicyBitIdenticalToLegacy) {
  // With no drift the middle verdict zone is never entered: the full
  // hysteresis policy (wide band, proactive re-trim armed) must be
  // bit-identical to the legacy band — outputs AND event counters.
  const WalkRun legacy = run_walk(1.0, false, 0.0, 6);
  const WalkRun banded = run_walk(14.0, true, 0.0, 6);
  expect_matrices_equal(banded.out, legacy.out);
  EXPECT_EQ(banded.snap.detections, 0u);
  EXPECT_EQ(legacy.snap.detections, 0u);
  EXPECT_EQ(banded.snap.drift_tiles, 0u);
  EXPECT_EQ(banded.snap.retrims, 0u);
  EXPECT_EQ(banded.snap.proactive_retrims, 0u);
  EXPECT_EQ(banded.snap.governed_retrims, 0u);
  EXPECT_EQ(banded.snap.tiles_checked, legacy.snap.tiles_checked);
  EXPECT_EQ(banded.drift.residual_samples, legacy.drift.residual_samples);
}

TEST(DriftHysteresis, TrackerExcursionFiresProactiveRetrim) {
  // A faster walk pushes the per-lane EWMA over the excursion threshold
  // while the wide band still absorbs every tile: recovery then comes
  // from the proactive rung at product entry — re-trims happen, but not
  // one detection ever fires on the serving path.
  const WalkRun run = run_walk(1000.0, true, 2e-12, 24);
  EXPECT_GE(run.snap.proactive_retrims, 1u);
  EXPECT_EQ(run.snap.retrims, run.snap.proactive_retrims);
  EXPECT_EQ(run.snap.detections, 0u);
  EXPECT_EQ(run.snap.unrecovered, 0u);
  EXPECT_GE(run.snap.drift_tiles, 1u);
  EXPECT_GT(run.snap.probe_events, 0u);  // proactive recovery burns probes
}

TEST(DriftHysteresis, WindowedGovernorRefillsExactlyAtBoundaryMultiples) {
  // Legacy band, a walk strong enough to mismatch every product, and a
  // ladder reduced to the re-trim rung (no retries, no fence) under a
  // 1-per-4-products governor.  The budget must refill exactly at the
  // window boundaries — products 1, 4 and 8 re-trim (windows anchored at
  // product 0 roll at whole multiples of 4) and every other product is a
  // governed refusal that degrades to a best-effort give-up.
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.escalation.max_retries = 0;
  cfg.escalation.max_retrims = 1;
  cfg.escalation.allow_fence = false;
  cfg.escalation.window_retrims = 1;
  cfg.escalation.window_products = 4;
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultInjector injector(bank, walk_schedule(bank.lanes(), 1e-10, 256));
  backend.attach_storm(&injector, 1);

  Rng rng(35);
  const Matrix a = Matrix::random_gaussian(16, 24, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(24, 32, rng, 0.0, 1.0);
  for (int p = 0; p < 8; ++p) (void)backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_EQ(snap.products, 8u);
  EXPECT_EQ(snap.detections, 8u);
  EXPECT_EQ(snap.retrims, 3u);           // products 1, 4, 8
  EXPECT_EQ(snap.governed_retrims, 5u);  // products 2, 3, 5, 6, 7
  EXPECT_EQ(snap.unrecovered, 5u);       // the refusals degrade, not stall
  EXPECT_EQ(snap.proactive_retrims, 0u);
}

TEST(DriftHysteresis, WalkTrajectoriesBitIdenticalAcrossThreadCounts) {
  // Satellite determinism contract: the bias random walk is one serial
  // seeded stream advanced per tile step, so the drift trajectory — and
  // with it outputs, absorbed-tile counts and per-lane tracker levels —
  // must be bit-identical at any simulation thread count.
  const WalkRun serial = run_walk(1000.0, false, 8e-13, 8, /*threads=*/1);
  for (std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    const WalkRun wide = run_walk(1000.0, false, 8e-13, 8, threads);
    expect_matrices_equal(wide.out, serial.out);
    EXPECT_EQ(wide.snap.drift_tiles, serial.snap.drift_tiles);
    EXPECT_EQ(wide.snap.drift_products, serial.snap.drift_products);
    EXPECT_EQ(wide.snap.detections, serial.snap.detections);
    EXPECT_EQ(wide.snap.worst_drift_ratio, serial.snap.worst_drift_ratio);
    EXPECT_EQ(wide.drift.residual_samples, serial.drift.residual_samples);
    ASSERT_EQ(wide.levels.size(), serial.levels.size());
    for (std::size_t l = 0; l < wide.levels.size(); ++l) {
      EXPECT_EQ(wide.levels[l], serial.levels[l]) << "lane " << l;
    }
  }
}

/// Guard-interplay contract (DESIGN.md §16): lanes wandering INSIDE the
/// hysteresis band must not mask a hard fault.  A stuck MRR lands
/// mid-product on top of an absorbed walk; the strike sits orders of
/// magnitude outside band·tol, so detection and the recovery ladder must
/// fire exactly as on a drift-free bank, on every numeric tier.
void run_hard_strike_mid_band(ptc::ExecutionPath path) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::GuardedBackendConfig cfg;
  cfg.path = path;
  cfg.guard.drift_band = 1000.0;
  faults::GuardedBackend backend(bank, cfg);
  faults::FaultSchedule sched = walk_schedule(bank.lanes(), 2e-12, 256);
  sched.events.push_back(stuck_mrr(3, 40));  // strikes inside product 2
  faults::FaultInjector injector(bank, sched);
  backend.attach_storm(&injector, 1);

  Rng rng(41);
  // 48×48 outputs on the 8×8 array: 36 serialized tile steps/product.
  const Matrix a = Matrix::random_gaussian(48, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 48, rng, 0.0, 1.0);
  Matrix out;
  for (int p = 0; p < 3; ++p) out = backend.matmul(a, b);

  const faults::HealthSnapshot snap = backend.monitor().snapshot();
  EXPECT_GE(snap.drift_tiles, 1u);   // the walk was being absorbed …
  EXPECT_GE(snap.detections, 1u);    // … and the strike was still caught
  EXPECT_EQ(snap.unrecovered, 0u);   // recovery ladder fully recovered it
  EXPECT_TRUE(bank.lane(3).fenced);  // self-test fenced the stuck lane
  const auto err = stats::compare(out.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);
}

TEST(DriftHysteresis, HardStrikeMidBandIsCaughtOnScalarTier) {
  run_hard_strike_mid_band(ptc::ExecutionPath::kKernel);
}

TEST(DriftHysteresis, HardStrikeMidBandIsCaughtOnSimdTier) {
  run_hard_strike_mid_band(ptc::ExecutionPath::kKernelSimd);
}

TEST(DriftHysteresis, HardStrikeMidBandIsCaughtOnQuantTier) {
  // Physical perturbed lanes are never on the quantizer grid, so the
  // integer tier degrades to the blocked double dots — the tier request
  // must stay live and the guard semantics must be unchanged.
  run_hard_strike_mid_band(ptc::ExecutionPath::kKernelQuant);
}

}  // namespace
