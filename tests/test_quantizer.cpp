// Unit and property tests for the symmetric fixed-point quantizer.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "converters/quantizer.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

TEST(Quantizer, PaperExample0x40) {
  // Paper §III-C: "0x40 in an 8-bit system … 0x40/(2⁷−1) = 0.5".
  const Quantizer q(8);
  EXPECT_NEAR(q.decode(0x40), 64.0 / 127.0, 1e-15);
  EXPECT_NEAR(q.decode(0x40), 0.5, 0.004);
}

TEST(Quantizer, MaxCodeMatchesBitWidth) {
  EXPECT_EQ(Quantizer(4).max_code(), 7);
  EXPECT_EQ(Quantizer(8).max_code(), 127);
  EXPECT_EQ(Quantizer(12).max_code(), 2047);
}

TEST(Quantizer, EncodeEndpoints) {
  const Quantizer q(8);
  EXPECT_EQ(q.encode(1.0), 127);
  EXPECT_EQ(q.encode(-1.0), -127);
  EXPECT_EQ(q.encode(0.0), 0);
}

TEST(Quantizer, EncodeSaturatesOutOfRange) {
  const Quantizer q(8);
  EXPECT_EQ(q.encode(2.5), 127);
  EXPECT_EQ(q.encode(-7.0), -127);
}

TEST(Quantizer, EncodeRoundsToNearest) {
  const Quantizer q(4);  // max code 7, step 1/7
  EXPECT_EQ(q.encode(0.49 / 7.0), 0);
  EXPECT_EQ(q.encode(0.51 / 7.0), 1);
}

TEST(Quantizer, DecodeRejectsOutOfRangeCode) {
  const Quantizer q(4);
  EXPECT_THROW((void)q.decode(8), PreconditionError);
  EXPECT_THROW((void)q.decode(-8), PreconditionError);
}

TEST(Quantizer, RejectsBadBitWidths) {
  EXPECT_THROW((void)Quantizer(1), PreconditionError);
  EXPECT_THROW((void)Quantizer(17), PreconditionError);
}

TEST(Quantizer, QuantizeIsIdempotent) {
  const Quantizer q(6);
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const double r = rng.uniform(-1.0, 1.0);
    const double once = q.quantize(r);
    EXPECT_DOUBLE_EQ(q.quantize(once), once);
  }
}

TEST(Quantizer, SymmetricAroundZero) {
  const Quantizer q(8);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double r = rng.uniform(0.0, 1.0);
    EXPECT_DOUBLE_EQ(q.quantize(-r), -q.quantize(r));
  }
}

TEST(MaxAbsScale, FindsLargestMagnitude) {
  const std::vector<double> v{0.1, -2.5, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_scale(v), 2.5);
}

TEST(MaxAbsScale, AllZeroFallsBackToOne) {
  const std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(max_abs_scale(v), 1.0);
  EXPECT_DOUBLE_EQ(max_abs_scale({}), 1.0);
}

TEST(QuantizeVector, RoundTripWithinHalfStep) {
  Rng rng(6);
  const Quantizer q(8);
  const auto values = rng.uniform_vector(100, -3.0, 3.0);
  double scale = 0.0;
  const auto codes = quantize_vector(values, q, &scale);
  const auto back = dequantize_vector(codes, q, scale);
  const double half_step = 0.5 * scale / static_cast<double>(q.max_code());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(back[i], values[i], half_step + 1e-12) << "i=" << i;
  }
}

TEST(Quantizer, NegativeZeroEncodesToZero) {
  const Quantizer q(8);
  EXPECT_EQ(q.encode(-0.0), 0);
  EXPECT_EQ(q.quantize(-0.0), 0.0);
  EXPECT_EQ(q.decode(0), 0.0);
}

TEST(Quantizer, SnapToCodeAcceptsExactlyTheGrid) {
  const Quantizer q(8);
  for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
    std::int32_t code = -1;
    EXPECT_TRUE(q.snap_to_code(q.decode(c), &code)) << "code " << c;
    EXPECT_EQ(code, c);
  }
  // Midpoints between grid points, out-of-range values and NaN are all
  // off-grid — the integer tier's precondition must reject them.
  EXPECT_FALSE(q.snap_to_code(0.5 * (q.decode(3) + q.decode(4)), nullptr));
  EXPECT_FALSE(q.snap_to_code(2.0, nullptr));
  EXPECT_FALSE(q.snap_to_code(-1.0000001, nullptr));
  EXPECT_FALSE(q.snap_to_code(std::nan(""), nullptr));
  // ±1 and -0.0 are grid points (max code / zero).
  std::int32_t code = 0;
  EXPECT_TRUE(q.snap_to_code(1.0, &code));
  EXPECT_EQ(code, q.max_code());
  EXPECT_TRUE(q.snap_to_code(-0.0, &code));
  EXPECT_EQ(code, 0);
}

// --- property sweep over bit widths -----------------------------------------
class QuantizerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerRoundTrip, EveryCodeSurvivesDecodeEncode) {
  const Quantizer q(GetParam());
  for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
    EXPECT_EQ(q.encode(q.decode(c)), c) << "code " << c;
  }
}

TEST_P(QuantizerRoundTrip, SymmetricSaturationAtMaxCode) {
  const Quantizer q(GetParam());
  // ±(2^(b−1)−1): symmetric two's-complement-style range, no −2^(b−1).
  EXPECT_EQ(q.max_code(), (1 << (GetParam() - 1)) - 1);
  EXPECT_EQ(q.encode(1.0), q.max_code());
  EXPECT_EQ(q.encode(-1.0), -q.max_code());
  EXPECT_EQ(q.encode(1e9), q.max_code());
  EXPECT_EQ(q.encode(-1e9), -q.max_code());
  // One representable step inside the clamp boundary still rounds up to
  // the saturated code.
  EXPECT_EQ(q.encode(1.0 - 0.25 * q.step()), q.max_code());
  EXPECT_EQ(q.encode(-1.0 + 0.25 * q.step()), -q.max_code());
}

TEST_P(QuantizerRoundTrip, QuantizationErrorBoundedByHalfStep) {
  const Quantizer q(GetParam());
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const double r = rng.uniform(-1.0, 1.0);
    EXPECT_LE(std::abs(q.quantize(r) - r), 0.5 * q.step() + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, QuantizerRoundTrip,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 16));

}  // namespace
