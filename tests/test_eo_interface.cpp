// Unit and property tests for the multi-bit EO interface (paper Fig. 2).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "converters/eo_interface.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

EoInterfaceConfig cfg_bits(int bits) {
  EoInterfaceConfig cfg;
  cfg.bits = bits;
  return cfg;
}

TEST(EoInterface, EncodesPositiveCodeBits) {
  const MultiBitEoInterface eo(cfg_bits(8));
  const auto word = eo.encode(0x40);  // bit 6 only
  ASSERT_EQ(word.bits(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    const double expect = (i == 6) ? 0.5 : 0.0;  // ½·1² for the on slot
    EXPECT_DOUBLE_EQ(word.slots[i].intensity(), expect) << "bit " << i;
  }
}

TEST(EoInterface, EncodesNegativeCodeTwosComplement) {
  const MultiBitEoInterface eo(cfg_bits(4));
  const auto word = eo.encode(-3);  // 1101 in 4-bit two's complement
  EXPECT_GT(word.slots[0].intensity(), 0.0);
  EXPECT_DOUBLE_EQ(word.slots[1].intensity(), 0.0);
  EXPECT_GT(word.slots[2].intensity(), 0.0);
  EXPECT_GT(word.slots[3].intensity(), 0.0);
}

TEST(EoInterface, ZeroCodeIsAllDark) {
  const MultiBitEoInterface eo(cfg_bits(8));
  const auto word = eo.encode(0);
  for (std::size_t i = 0; i < word.bits(); ++i) {
    EXPECT_DOUBLE_EQ(word.slots[i].intensity(), 0.0);
  }
}

TEST(EoInterface, RejectsOutOfRangeCodes) {
  const MultiBitEoInterface eo(cfg_bits(4));
  EXPECT_NO_THROW(eo.encode(7));
  EXPECT_NO_THROW(eo.encode(-8));
  EXPECT_THROW((void)eo.encode(8), PreconditionError);
  EXPECT_THROW((void)eo.encode(-9), PreconditionError);
}

TEST(EoInterface, OnAmplitudeConfigurable) {
  EoInterfaceConfig cfg = cfg_bits(4);
  cfg.on_amplitude = 2.0;
  const MultiBitEoInterface eo(cfg);
  const auto word = eo.encode(1);
  EXPECT_DOUBLE_EQ(word.slots[0].intensity(), 2.0);  // ½·2²
}

TEST(EoInterface, EncodeVectorPreservesOrder) {
  const MultiBitEoInterface eo(cfg_bits(8));
  const auto words = eo.encode_vector({1, -1, 100});
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(eo.decode(words[0]), 1);
  EXPECT_EQ(eo.decode(words[1]), -1);
  EXPECT_EQ(eo.decode(words[2]), 100);
}

TEST(EoInterface, StreamingPowerScalesWithBitsAndLanes) {
  EoInterfaceConfig cfg = cfg_bits(8);
  cfg.energy_per_bit = units::femtojoules(50.0);
  cfg.clock = units::gigahertz(5.0);
  const MultiBitEoInterface eo(cfg);
  // 8 bits × 5 GHz × 50 fJ = 2 mW per lane.
  EXPECT_NEAR(eo.streaming_power(1).milliwatts(), 2.0, 1e-9);
  EXPECT_NEAR(eo.streaming_power(2048).watts(), 4.096, 1e-6);
}

TEST(EoInterface, DecodeRejectsWidthMismatch) {
  const MultiBitEoInterface eo4(cfg_bits(4));
  const MultiBitEoInterface eo8(cfg_bits(8));
  EXPECT_THROW((void)eo4.decode(eo8.encode(0)), PreconditionError);
}

TEST(EoInterface, RejectsBadConfig) {
  EXPECT_THROW((void)MultiBitEoInterface{cfg_bits(1)}, PreconditionError);
  EoInterfaceConfig bad = cfg_bits(8);
  bad.on_amplitude = 0.0;
  EXPECT_THROW((void)MultiBitEoInterface{bad}, PreconditionError);
}

// --- property: every representable code round-trips optically ---------------
class EoRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EoRoundTrip, AllCodesRoundTrip) {
  const int bits = GetParam();
  const MultiBitEoInterface eo(cfg_bits(bits));
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;
  for (std::int32_t c = lo; c <= hi; ++c) {
    EXPECT_EQ(eo.decode(eo.encode(c)), c) << "code " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, EoRoundTrip, ::testing::Values(2, 4, 6, 8, 10));

}  // namespace
