// Tests for the integrated Accelerator facade.
#include <gtest/gtest.h>

#include "arch/accelerator.hpp"
#include "common/require.hpp"
#include "nn/cnn_trace.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

class AcceleratorTest : public ::testing::Test {
 protected:
  Accelerator acc{AcceleratorConfig{}};
  nn::WorkloadTrace bert = nn::trace_forward(nn::bert_base(128));
};

TEST_F(AcceleratorTest, ReportAgreesWithUnderlyingModels) {
  const InferenceReport rep = acc.run(bert);
  const auto cfg = acc.config();
  const auto direct = compare_energy(bert, cfg.organization, cfg.power, cfg.bits);
  EXPECT_DOUBLE_EQ(rep.energy.total_saving(), direct.total_saving());
  const auto sched = schedule_trace(bert, cfg.organization);
  EXPECT_EQ(rep.schedule.makespan_cycles, sched.makespan_cycles);
}

TEST_F(AcceleratorTest, RuntimeIsMaxOfComputeAndMemory) {
  const InferenceReport rep = acc.run(bert);
  const auto cfg = acc.config();
  const double rt = rep.runtime(cfg.organization).seconds();
  EXPECT_GE(rt, rep.schedule.runtime(cfg.organization.clock).seconds() - 1e-15);
  EXPECT_GE(rt, rep.roofline.hbm_time.seconds() - 1e-15);
  EXPECT_GT(rep.throughput(cfg.organization), 0.0);
  EXPECT_NEAR(rep.throughput(cfg.organization) * rt, 1.0, 1e-9);
}

TEST_F(AcceleratorTest, EffectiveSavingBelowIdealSaving) {
  // Stalls burn equal static power in both variants, so the effective
  // saving can only be ≤ the event-model saving.
  const InferenceReport rep = acc.run(bert);
  EXPECT_LE(rep.effective_saving(), rep.energy.total_saving() + 1e-12);
  EXPECT_GT(rep.effective_saving(), 0.0);
}

TEST_F(AcceleratorTest, PowerMatchesComponentModel) {
  const auto p = acc.power(SystemVariant::kPdacBased);
  EXPECT_NEAR(p.total().watts(), 26.64, 0.05);
}

TEST_F(AcceleratorTest, WorksAcrossWorkloadFamilies) {
  for (const auto& trace :
       {nn::trace_forward(nn::deit_base()), nn::trace_decode_step(nn::bert_base(128), 256),
        nn::trace_cnn_forward(nn::tiny_cnn(16))}) {
    const InferenceReport rep = acc.run(trace);
    EXPECT_GT(rep.energy.baseline.total().total().joules(), 0.0);
    EXPECT_GT(rep.schedule.makespan_cycles, 0u);
    EXPECT_GT(rep.traffic.hbm_bytes, 0u);
  }
}

TEST_F(AcceleratorTest, BitsForwardedEverywhere) {
  AcceleratorConfig cfg;
  cfg.bits = 4;
  const Accelerator acc4(cfg);
  const auto rep4 = acc4.run(bert);
  const auto rep8 = acc.run(bert);
  // 4-bit traffic is half of 8-bit.
  EXPECT_EQ(rep8.traffic.hbm_bytes, 2 * rep4.traffic.hbm_bytes);
  EXPECT_LT(rep4.energy.total_saving(), rep8.energy.total_saving());
}

TEST_F(AcceleratorTest, RejectsBadConfig) {
  AcceleratorConfig bad;
  bad.bits = 1;
  EXPECT_THROW(Accelerator{bad}, PreconditionError);
  bad = AcceleratorConfig{};
  bad.organization.clusters = 0;
  EXPECT_THROW(Accelerator{bad}, PreconditionError);
}

}  // namespace
