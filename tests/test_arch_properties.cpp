// Parameterized property tests over the architecture design space:
// invariants that must hold for ANY accelerator organization, not just
// the calibrated LT-B point.
#include <gtest/gtest.h>

#include <tuple>

#include "arch/component_power.hpp"
#include "arch/energy_model.hpp"
#include "arch/mapper.hpp"
#include "arch/op_events.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

// (clusters, cores, rows, cols, wavelengths)
using Org = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t, std::size_t>;

LtConfig make_cfg(const Org& org) {
  LtConfig cfg;
  cfg.clusters = std::get<0>(org);
  cfg.cores_per_cluster = std::get<1>(org);
  cfg.array_rows = std::get<2>(org);
  cfg.array_cols = std::get<3>(org);
  cfg.wavelengths = std::get<4>(org);
  return cfg;
}

class OrgProperties : public ::testing::TestWithParam<Org> {};

TEST_P(OrgProperties, UnitCountFormulas) {
  const LtConfig cfg = make_cfg(GetParam());
  EXPECT_EQ(cfg.arrays(), cfg.clusters * cfg.cores_per_cluster);
  EXPECT_EQ(cfg.ddots(), cfg.arrays() * cfg.array_rows * cfg.array_cols);
  EXPECT_EQ(cfg.modulator_channels(),
            cfg.arrays() * (cfg.array_rows + cfg.array_cols) * cfg.wavelengths);
  EXPECT_EQ(cfg.macs_per_cycle(), cfg.ddots() * cfg.wavelengths);
}

TEST_P(OrgProperties, PdacSystemAlwaysCheaper) {
  const LtConfig cfg = make_cfg(GetParam());
  const PowerParams params = lt_power_params();
  for (int bits : {4, 6, 8, 10}) {
    const auto base = compute_power_breakdown(cfg, params, bits, SystemVariant::kDacBased);
    const auto prop = compute_power_breakdown(cfg, params, bits, SystemVariant::kPdacBased);
    EXPECT_LT(prop.total().watts(), base.total().watts())
        << "bits " << bits;
    for (const auto& part : base.parts) {
      EXPECT_GT(part.power.watts(), 0.0) << to_string(part.component);
    }
  }
}

TEST_P(OrgProperties, EventCountsConserveMacs) {
  const LtConfig cfg = make_cfg(GetParam());
  // Any GEMM's DDot-cycles × wavelengths ≥ its MACs (equality when k is
  // a multiple of the wavelength count).
  const nn::GemmOp ops[] = {
      {"a", nn::OpClass::kAttention, 128, 768, 768, true, 1, 0},
      {"b", nn::OpClass::kAttention, 128, 64, 128, false, 12, 0},
      {"c", nn::OpClass::kFfn, 7, 13, 29, true, 3, 0},
  };
  for (const auto& op : ops) {
    const OpEvents ev = count_op_events(op, cfg);
    EXPECT_GE(ev.ddot_cycles * cfg.wavelengths, op.macs()) << op.label;
    EXPECT_GT(ev.modulations, 0u);
    EXPECT_GT(ev.tile_cycles, 0u);
  }
}

TEST_P(OrgProperties, EnergySavingsInValidRange) {
  const LtConfig cfg = make_cfg(GetParam());
  const PowerParams params = lt_power_params();
  const auto trace = nn::trace_forward(nn::tiny_transformer(16, 64, 4, 2));
  const auto cmp = compare_energy(trace, cfg, params, 8);
  EXPECT_GT(cmp.total_saving(), 0.0);
  EXPECT_LT(cmp.total_saving(), 1.0);
  EXPECT_GT(cmp.pdac.total().total().joules(), 0.0);
}

TEST_P(OrgProperties, ScheduleInvariants) {
  const LtConfig cfg = make_cfg(GetParam());
  const auto trace = nn::trace_forward(nn::tiny_transformer(16, 64, 4, 1));
  const Schedule s = schedule_trace(trace, cfg);
  EXPECT_EQ(s.ops.size(), trace.gemms.size());
  EXPECT_GE(s.makespan_cycles, s.ideal_cycles());
  EXPECT_LE(s.ddot_utilization(), s.utilization() + 1e-12);
  for (const auto& op : s.ops) {
    EXPECT_LE(op.start_cycle, op.end_cycle);
    EXPECT_LE(op.end_cycle, s.makespan_cycles);
    EXPECT_GE(op.arrays_assigned, 1u);
    EXPECT_LE(op.arrays_assigned, cfg.arrays());
  }
}

TEST_P(OrgProperties, MoreWavelengthsNeverSlower) {
  LtConfig cfg = make_cfg(GetParam());
  const auto trace = nn::trace_forward(nn::tiny_transformer(16, 64, 4, 1));
  const auto base_cycles = schedule_trace(trace, cfg).makespan_cycles;
  cfg.wavelengths *= 2;
  const auto wide_cycles = schedule_trace(trace, cfg).makespan_cycles;
  EXPECT_LE(wide_cycles, base_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, OrgProperties,
    ::testing::Values(Org{2, 8, 8, 8, 8},      // LT-B
                      Org{1, 1, 8, 8, 8},      // single core
                      Org{2, 4, 16, 16, 8},    // big arrays
                      Org{4, 8, 4, 4, 16},     // many small cores, wide WDM
                      Org{1, 2, 8, 4, 3},      // asymmetric, odd wavelengths
                      Org{2, 8, 2, 2, 8}));    // tiny arrays

}  // namespace
