// Unit tests for the phase shifter (paper Eq. 4).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "photonics/phase_shifter.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(PhaseShifter, ZeroPhaseIsIdentity) {
  const PhaseShifter ps(0.0);
  const Complex x{0.7, -0.2};
  const Complex y = ps.apply(x);
  EXPECT_NEAR(y.real(), x.real(), 1e-15);
  EXPECT_NEAR(y.imag(), x.imag(), 1e-15);
}

TEST(PhaseShifter, Minus90DegreesIsMinusJ) {
  const PhaseShifter ps = PhaseShifter::minus_90();
  const Complex y = ps.apply(Complex{1.0, 0.0});
  EXPECT_NEAR(y.real(), 0.0, 1e-15);
  EXPECT_NEAR(y.imag(), -1.0, 1e-15);
}

TEST(PhaseShifter, PiFlipsSign) {
  const PhaseShifter ps(math::kPi);
  const Complex y = ps.apply(Complex{2.0, 1.0});
  EXPECT_NEAR(y.real(), -2.0, 1e-12);
  EXPECT_NEAR(y.imag(), -1.0, 1e-12);
}

TEST(PhaseShifter, PreservesIntensity) {
  for (double phi : {0.1, 0.9, 2.3, -1.7}) {
    const PhaseShifter ps(phi);
    const Complex x{0.3, 0.8};
    EXPECT_NEAR(std::norm(ps.apply(x)), std::norm(x), 1e-14) << "phi=" << phi;
  }
}

TEST(PhaseShifter, ComposesAdditively) {
  const PhaseShifter a(0.4);
  const PhaseShifter b(1.1);
  const PhaseShifter ab(1.5);
  const Complex x{1.0, 0.5};
  const Complex via_two = b.apply(a.apply(x));
  const Complex direct = ab.apply(x);
  EXPECT_NEAR(via_two.real(), direct.real(), 1e-14);
  EXPECT_NEAR(via_two.imag(), direct.imag(), 1e-14);
}

TEST(PhaseShifter, AppliesToAllWdmChannels) {
  const PhaseShifter ps(math::kPi / 2.0);
  WdmField in(3);
  in.set_amplitude(0, Complex{1.0, 0.0});
  in.set_amplitude(2, Complex{0.0, 1.0});
  const WdmField out = ps.apply(in);
  EXPECT_NEAR(out.amplitude(0).imag(), 1.0, 1e-15);  // j·1
  EXPECT_NEAR(out.amplitude(2).real(), -1.0, 1e-15); // j·j = −1
  EXPECT_NEAR(out.amplitude(1).real(), 0.0, 1e-15);
}

TEST(PhaseShifter, FactorMatchesEulerFormula) {
  const double phi = 0.77;
  const PhaseShifter ps(phi);
  EXPECT_NEAR(ps.factor().real(), std::cos(phi), 1e-15);
  EXPECT_NEAR(ps.factor().imag(), std::sin(phi), 1e-15);
}

}  // namespace
