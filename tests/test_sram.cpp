// Tests for the shared M2 SRAM model.
#include <gtest/gtest.h>

#include "arch/sram.hpp"
#include "common/require.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

TEST(Sram, ChargesEnergyPerBit) {
  SramConfig cfg;
  cfg.energy_per_bit = units::picojoules(10.0);
  Sram sram(cfg);
  const auto e = sram.read(100);
  EXPECT_NEAR(e.picojoules(), 1000.0, 1e-9);
}

TEST(Sram, TracksReadAndWriteCounters) {
  Sram sram{SramConfig{}};
  sram.read(64);
  sram.read(64);
  sram.write(128);
  EXPECT_EQ(sram.bits_read(), 128u);
  EXPECT_EQ(sram.bits_written(), 128u);
}

TEST(Sram, TotalEnergyCoversBothDirections) {
  SramConfig cfg;
  cfg.energy_per_bit = units::picojoules(1.0);
  Sram sram(cfg);
  sram.read(10);
  sram.write(5);
  EXPECT_NEAR(sram.total_energy().picojoules(), 15.0, 1e-12);
}

TEST(Sram, CapacityCheck) {
  SramConfig cfg;
  cfg.capacity_bytes = 1024;
  const Sram sram(cfg);
  EXPECT_TRUE(sram.fits(1024));
  EXPECT_FALSE(sram.fits(1025));
  EXPECT_TRUE(sram.fits(0));
}

TEST(Sram, DefaultHoldsOneBertLayerAt8Bit) {
  // One BERT-base layer: (4·768² + 2·768·3072) bytes ≈ 6.75 MiB < 8 MiB.
  const Sram sram{SramConfig{}};
  const std::uint64_t layer_bytes = 4ull * 768 * 768 + 2ull * 768 * 3072;
  EXPECT_TRUE(sram.fits(layer_bytes));
}

TEST(Sram, RejectsInvalidConfig) {
  SramConfig bad;
  bad.capacity_bytes = 0;
  EXPECT_THROW(Sram{bad}, PreconditionError);
  bad = SramConfig{};
  bad.energy_per_bit = units::joules(-1.0);
  EXPECT_THROW(Sram{bad}, PreconditionError);
}

TEST(Sram, ZeroBitAccessesAreFree) {
  Sram sram{SramConfig{}};
  EXPECT_DOUBLE_EQ(sram.read(0).joules(), 0.0);
  EXPECT_EQ(sram.bits_read(), 0u);
}

}  // namespace
