// Unit tests for common/stats.hpp.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace pdac;

TEST(RunningStats, MeanVarianceMinMax) {
  stats::Running r;
  for (double x : {1.0, 2.0, 3.0, 4.0}) r.add(x);
  EXPECT_EQ(r.count(), 4u);
  EXPECT_DOUBLE_EQ(r.mean(), 2.5);
  EXPECT_DOUBLE_EQ(r.variance(), 1.25);  // population variance
  EXPECT_DOUBLE_EQ(r.min(), 1.0);
  EXPECT_DOUBLE_EQ(r.max(), 4.0);
}

TEST(RunningStats, EmptyAndSingle) {
  stats::Running r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  r.add(7.0);
  EXPECT_DOUBLE_EQ(r.mean(), 7.0);
  EXPECT_DOUBLE_EQ(r.variance(), 0.0);
  EXPECT_DOUBLE_EQ(r.stddev(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  stats::Running a, b, all;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    (i < 250 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  stats::Running a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  stats::Running b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, GaussianSampleStatistics) {
  stats::Running r;
  Rng rng(11);
  for (int i = 0; i < 20'000; ++i) r.add(rng.gaussian(1.0, 0.5));
  EXPECT_NEAR(r.mean(), 1.0, 0.02);
  EXPECT_NEAR(r.stddev(), 0.5, 0.02);
}

TEST(VectorCompare, IdenticalVectors) {
  const std::vector<double> v{1.0, -2.0, 3.0};
  const auto e = stats::compare(v, v);
  EXPECT_DOUBLE_EQ(e.rmse, 0.0);
  EXPECT_DOUBLE_EQ(e.max_abs, 0.0);
  EXPECT_DOUBLE_EQ(e.rel_frobenius, 0.0);
  EXPECT_NEAR(e.cosine, 1.0, 1e-15);
}

TEST(VectorCompare, KnownError) {
  const std::vector<double> ref{1.0, 1.0, 1.0, 1.0};
  const std::vector<double> meas{1.1, 0.9, 1.0, 1.0};
  const auto e = stats::compare(meas, ref);
  EXPECT_NEAR(e.rmse, std::sqrt(0.02 / 4.0), 1e-12);
  EXPECT_NEAR(e.max_abs, 0.1, 1e-12);
  EXPECT_NEAR(e.max_rel, 0.1, 1e-9);
  EXPECT_NEAR(e.rel_frobenius, std::sqrt(0.02) / 2.0, 1e-12);
}

TEST(VectorCompare, OppositeVectorsCosine) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{-1.0, -2.0};
  EXPECT_NEAR(stats::compare(a, b).cosine, -1.0, 1e-15);
}

TEST(VectorCompare, RejectsMismatchedLengths) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)stats::compare(a, b), PreconditionError);
}

TEST(VectorCompare, RejectsEmpty) {
  const std::vector<double> e;
  EXPECT_THROW((void)stats::compare(e, e), PreconditionError);
}

TEST(Histogram, BinningAndTotals) {
  stats::Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_EQ(h.total(), 10u);
  for (std::size_t b = 0; b < h.bin_count(); ++b) EXPECT_EQ(h.count(b), 1u);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  stats::Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, BinCenters) {
  stats::Histogram h(0.0, 1.0, 2);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 0.75);
  EXPECT_THROW((void)h.bin_center(2), PreconditionError);
}

TEST(Histogram, RejectsInvalidConstruction) {
  EXPECT_THROW((void)stats::Histogram(1.0, 0.0, 4), PreconditionError);
  EXPECT_THROW((void)stats::Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
