// Incremental KV-prepared attention (DESIGN.md §17): append-only
// PreparedOperand extension must be bit-identical to a from-scratch
// prepare at every sequence length — encoded/reference/qcodes payloads,
// checksum stripes, product outputs, event counts and guard verdicts —
// across the scalar, SIMD and quant tiers and at any thread count; every
// refusal trigger (scale outgrown, epoch moved, shape shrank) must leave
// the operand untouched; the KvPreparedCache must account bytes exactly;
// and decode attention plus the serving engine must be bit-identical
// between prepared and unprepared execution, including across a
// mid-sequence re-trim epoch bump.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "core/modulator_driver.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/lane_bank.hpp"
#include "faults/self_test.hpp"
#include "nn/attention.hpp"
#include "nn/backend.hpp"
#include "nn/kv_cache.hpp"
#include "ptc/gemm_engine.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

void expect_bit_identical(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identity, not closeness.
    EXPECT_EQ(got.data()[i], want.data()[i]) << what << ": element " << i;
  }
}

void expect_same_events(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

void expect_same_guard(const GuardOutcome& a, const GuardOutcome& b) {
  EXPECT_EQ(a.enabled, b.enabled);
  EXPECT_EQ(a.tiles_checked, b.tiles_checked);
  EXPECT_EQ(a.mismatched_tiles, b.mismatched_tiles);
  EXPECT_EQ(a.tiles_corrected, b.tiles_corrected);
  EXPECT_EQ(a.drift_tiles, b.drift_tiles);
  EXPECT_EQ(a.worst_residual, b.worst_residual);
  EXPECT_EQ(a.worst_tolerance, b.worst_tolerance);
}

// Appended operands may carry padded physical column capacity beyond the
// logical reduction length; every comparison is over the logical span a
// consumer would read (bounded by the FRESH operand's exact shape).
void expect_same_operand(const PreparedOperand& got, const PreparedOperand& want) {
  EXPECT_EQ(got.scale, want.scale);
  EXPECT_EQ(got.abs_max, want.abs_max);
  ASSERT_EQ(got.rows, want.rows);
  ASSERT_EQ(got.cols, want.cols);
  ASSERT_EQ(got.encoded.rows(), want.encoded.rows());
  ASSERT_GE(got.encoded.cols(), want.encoded.cols());
  for (std::size_t r = 0; r < want.encoded.rows(); ++r) {
    for (std::size_t p = 0; p < want.encoded.cols(); ++p) {
      EXPECT_EQ(got.encoded(r, p), want.encoded(r, p)) << "encoded " << r << "," << p;
    }
  }
  ASSERT_EQ(got.qcodes.rows(), want.qcodes.rows());
  if (want.qcodes.rows() > 0) {
    ASSERT_GE(got.qcodes.cols(), want.qcodes.cols());
    for (std::size_t r = 0; r < want.qcodes.rows(); ++r) {
      for (std::size_t p = 0; p < want.qcodes.cols(); ++p) {
        EXPECT_EQ(got.qcodes.row(r)[p], want.qcodes.row(r)[p]) << "qcodes " << r << "," << p;
      }
    }
  }
  ASSERT_EQ(got.checksum.rows(), want.checksum.rows());
  EXPECT_EQ(got.checksum_stripe, want.checksum_stripe);
  if (want.checksum.rows() > 0) {
    ASSERT_GE(got.checksum.cols(), want.checksum.cols());
    for (std::size_t s = 0; s < want.checksum.rows(); ++s) {
      for (std::size_t p = 0; p < want.checksum.cols(); ++p) {
        EXPECT_EQ(got.checksum(s, p), want.checksum(s, p)) << "checksum " << s << "," << p;
      }
    }
  }
}

struct TierCase {
  const char* name;
  ExecutionPath path;
  bool bit_true;  ///< quant tier needs the on-grid encode LUT
};

constexpr TierCase kTiers[] = {
    {"scalar", ExecutionPath::kKernel, false},
    {"simd", ExecutionPath::kKernelSimd, false},
    {"quant", ExecutionPath::kKernelQuant, true},
};

std::unique_ptr<core::ModulatorDriver> tier_driver(const TierCase& tier) {
  return tier.bit_true ? core::make_bit_true_driver(8) : core::make_pdac_driver(8);
}

GemmConfig tier_config(const TierCase& tier, std::size_t threads = 1) {
  GemmConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 4;
  cfg.threads = threads;
  cfg.guard.enabled = true;  // checksum stripes ride every append
  cfg.path = tier.path;
  return cfg;
}

/// T gaussian rows with the global max-abs pinned into row 0, so every
/// later prefix extension stays within the operand's recorded abs_max
/// and the append path is exercised (refusals are tested separately).
Matrix history_rows(std::size_t t, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m = Matrix::random_gaussian(t, d, rng);
  double peak = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) peak = std::max(peak, std::abs(m.data()[i]));
  m(0, 0) = 2.0 * peak;
  return m;
}

Matrix prefix_rows(const Matrix& m, std::size_t t) {
  Matrix p(t, m.cols());
  for (std::size_t r = 0; r < t; ++r) {
    const auto src = m.row(r);
    const auto dst = p.row(r);
    for (std::size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
  }
  return p;
}

// ---------------------------------------------------------------------------
// KvPrepared: the ptc::PhotonicGemm append contract.
// ---------------------------------------------------------------------------

// Output-axis growth (B = Kᵀ, the scores operand): append_bt_rows must
// reproduce a from-scratch prepare_bt bit-for-bit at every length, on
// every tier, including the ragged d=13 width against the 4×4 array.
TEST(KvPrepared, AppendBtRowsBitIdenticalToFreshAcrossTiers) {
  const std::size_t lengths[] = {1, 2, 4, 7};  // single- and multi-row appends
  for (const TierCase& tier : kTiers) {
    const auto drv = tier_driver(tier);
    const PhotonicGemm gemm(*drv, tier_config(tier));
    for (std::size_t d : {std::size_t{8}, std::size_t{13}}) {
      const Matrix full = history_rows(7, d, 101 + d);
      Rng arng(7 * d);
      PreparedOperand inc;
      bool started = false;
      for (std::size_t t : lengths) {
        const Matrix k_hist = prefix_rows(full, t);
        if (!started) {
          inc = gemm.prepare_bt(k_hist);
          started = true;
        } else {
          ASSERT_TRUE(gemm.append_bt_rows(inc, k_hist)) << tier.name << " t=" << t;
        }
        const PreparedOperand fresh = gemm.prepare_bt(k_hist);
        expect_same_operand(inc, fresh);

        const Matrix a = Matrix::random_gaussian(1, d, arng);
        const GemmResult got = gemm.multiply_prepared(a, inc);
        const GemmResult want = gemm.multiply(a, k_hist.transposed());
        expect_bit_identical(got.c, want.c, tier.name);
        EXPECT_EQ(got.b_scale, want.b_scale);
        expect_same_events(got.events, want.events);
        expect_same_guard(got.guard, want.guard);
      }
    }
  }
}

// Reduction-axis growth (B = V, the context operand): append_b_rows
// extends into padded column capacity; numerics, events and verdicts
// must never see the padding.
TEST(KvPrepared, AppendBRowsBitIdenticalToFreshAcrossTiers) {
  const std::size_t lengths[] = {1, 3, 4, 7};
  for (const TierCase& tier : kTiers) {
    const auto drv = tier_driver(tier);
    const PhotonicGemm gemm(*drv, tier_config(tier));
    for (std::size_t d : {std::size_t{8}, std::size_t{13}}) {
      const Matrix full = history_rows(7, d, 211 + d);
      Rng arng(11 * d);
      PreparedOperand inc;
      bool started = false;
      for (std::size_t t : lengths) {
        const Matrix v_hist = prefix_rows(full, t);
        if (!started) {
          inc = gemm.prepare_b(v_hist);
          started = true;
        } else {
          ASSERT_TRUE(gemm.append_b_rows(inc, v_hist)) << tier.name << " t=" << t;
        }
        const PreparedOperand fresh = gemm.prepare_b(v_hist);
        expect_same_operand(inc, fresh);

        const Matrix a = Matrix::random_gaussian(1, t, arng);
        const GemmResult got = gemm.multiply_prepared(a, inc);
        const GemmResult want = gemm.multiply(a, v_hist);
        expect_bit_identical(got.c, want.c, tier.name);
        EXPECT_EQ(got.b_scale, want.b_scale);
        expect_same_events(got.events, want.events);
        expect_same_guard(got.guard, want.guard);
      }
    }
  }
}

// Every condition under which an append cannot be bit-identical must
// refuse and leave the operand untouched; a same-length "append" is an
// accepted no-op.
TEST(KvPrepared, AppendRefusesWheneverIdentityCannotHold) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, tier_config(kTiers[0]));
  const Matrix full = history_rows(4, 6, 31);
  const Matrix base = prefix_rows(full, 2);

  PreparedOperand pb = gemm.prepare_bt(base, /*epoch=*/3);
  const PreparedOperand snapshot = pb;

  // Scale outgrown: a new row whose max-abs exceeds the recorded one
  // would change the fresh scale, so the append must refuse.
  Matrix louder = prefix_rows(full, 3);
  louder(2, 0) = 10.0 * pb.abs_max;
  EXPECT_FALSE(gemm.append_bt_rows(pb, louder, 3));
  expect_same_operand(pb, snapshot);

  // Epoch moved: the encoder state stamp no longer matches.
  EXPECT_FALSE(gemm.append_bt_rows(pb, prefix_rows(full, 3), 4));
  expect_same_operand(pb, snapshot);

  // Shrink and width mismatch are structural violations, not appends.
  EXPECT_FALSE(gemm.append_bt_rows(pb, prefix_rows(full, 1), 3));
  EXPECT_FALSE(gemm.append_bt_rows(pb, Matrix(3, 7), 3));
  expect_same_operand(pb, snapshot);

  // Same length is a valid no-op append.
  EXPECT_TRUE(gemm.append_bt_rows(pb, base, 3));
  expect_same_operand(pb, snapshot);

  // The rows axis enforces the same triggers.
  PreparedOperand pr = gemm.prepare_b(base, 3);
  const PreparedOperand rsnap = pr;
  EXPECT_FALSE(gemm.append_b_rows(pr, louder, 3));
  EXPECT_FALSE(gemm.append_b_rows(pr, prefix_rows(full, 3), 4));
  EXPECT_FALSE(gemm.append_b_rows(pr, prefix_rows(full, 1), 3));
  EXPECT_TRUE(gemm.append_b_rows(pr, base, 3));
  expect_same_operand(pr, rsnap);

  // After the refusals a fresh rebuild still lands bit-identical to the
  // direct product — the caller's fallback is always sound.
  Rng arng(9);
  const Matrix a = Matrix::random_gaussian(1, 6, arng);
  const PreparedOperand rebuilt = gemm.prepare_bt(louder, 4);
  expect_bit_identical(gemm.multiply_prepared(a, rebuilt).c,
                       gemm.multiply(a, louder.transposed()).c, "rebuild fallback");
}

// Appended operands are engine-thread-count invariant, like every other
// product: the same incremental sequence on 1 and 3 workers produces
// bit-identical operands, outputs and events.
TEST(KvPrepared, AppendThreadCountInvariance) {
  const auto drv1 = core::make_pdac_driver(8);
  const auto drv3 = core::make_pdac_driver(8);
  const PhotonicGemm gemm1(*drv1, tier_config(kTiers[0], 1));
  const PhotonicGemm gemm3(*drv3, tier_config(kTiers[0], 3));
  const Matrix full = history_rows(6, 10, 47);
  Rng arng(3);

  PreparedOperand inc1 = gemm1.prepare_bt(prefix_rows(full, 1));
  PreparedOperand inc3 = gemm3.prepare_bt(prefix_rows(full, 1));
  for (std::size_t t = 2; t <= 6; ++t) {
    const Matrix k_hist = prefix_rows(full, t);
    ASSERT_TRUE(gemm1.append_bt_rows(inc1, k_hist));
    ASSERT_TRUE(gemm3.append_bt_rows(inc3, k_hist));
    expect_same_operand(inc3, inc1);
    const Matrix a = Matrix::random_gaussian(2, 10, arng);
    const GemmResult r1 = gemm1.multiply_prepared(a, inc1);
    const GemmResult r3 = gemm3.multiply_prepared(a, inc3);
    expect_bit_identical(r3.c, r1.c, "threads 3 vs 1");
    expect_same_events(r3.events, r1.events);
    expect_same_guard(r3.guard, r1.guard);
  }
}

// ---------------------------------------------------------------------------
// KvCache: byte-capacity LRU accounting over mutable entries.
// ---------------------------------------------------------------------------

std::shared_ptr<PreparedOperand> kv_operand(std::size_t elems) {
  auto op = std::make_shared<PreparedOperand>();
  op->encoded = Matrix(1, elems);
  return op;
}

TEST(KvCache, LruEvictionAndExactByteAccounting) {
  const std::size_t unit = kv_operand(64)->bytes();
  nn::KvPreparedCacheConfig cfg;
  cfg.capacity_bytes = 3 * unit;
  nn::KvPreparedCache cache(cfg);

  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.insert(1, kv_operand(64));
  cache.insert(2, kv_operand(64));
  cache.insert(3, kv_operand(64));
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().resident_bytes, 3 * unit);

  // Touch 1 so 2 becomes LRU, then overflow: 2 must be the eviction.
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.insert(4, kv_operand(64));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_NE(cache.lookup(3), nullptr);
  EXPECT_NE(cache.lookup(4), nullptr);

  // id 0 is reserved and refused.
  cache.insert(0, kv_operand(8));
  EXPECT_EQ(cache.lookup(0), nullptr);

  // Oversized entries never become resident.
  const auto before = cache.stats().oversized_rejects;
  cache.insert(9, kv_operand(4096));
  EXPECT_EQ(cache.stats().oversized_rejects, before + 1);
  EXPECT_EQ(cache.lookup(9), nullptr);
}

TEST(KvCache, UpdatedReaccountsGrownEntries) {
  const std::size_t unit = kv_operand(64)->bytes();
  nn::KvPreparedCacheConfig cfg;
  cfg.capacity_bytes = 3 * unit;
  nn::KvPreparedCache cache(cfg);

  auto grows = kv_operand(64);
  cache.insert(1, grows);
  cache.insert(2, kv_operand(64));
  const std::uint64_t resident = cache.stats().resident_bytes;

  // The operand grew in place (an append): updated() must re-account the
  // bytes and evict the LRU victim to get back under capacity.
  grows->encoded = Matrix(1, 64 + 2 * 64);
  cache.updated(1);
  EXPECT_GT(cache.stats().resident_bytes, resident);
  EXPECT_LE(cache.stats().resident_bytes, cfg.capacity_bytes);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.lookup(2), nullptr);
  EXPECT_NE(cache.lookup(1), nullptr);

  // Growing past the whole capacity drops the entry outright.
  grows->encoded = Matrix(1, 4096);
  cache.updated(1);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_GT(cache.stats().oversized_rejects, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
}

TEST(KvCache, EraseClearAndDisabledMode) {
  nn::KvPreparedCache cache;
  cache.insert(1, kv_operand(8));
  cache.insert(2, kv_operand(8));
  cache.erase(1);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.clear();
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);

  nn::KvPreparedCacheConfig off;
  off.enabled = false;
  nn::KvPreparedCache disabled(off);
  disabled.insert(1, kv_operand(8));
  EXPECT_EQ(disabled.lookup(1), nullptr);
  EXPECT_EQ(disabled.stats().entries, 0u);
  EXPECT_EQ(disabled.stats().misses, 1u);
}

TEST(KvCache, HandleIdsAreUniqueAndNonzero) {
  const std::uint64_t a = nn::next_kv_id();
  const std::uint64_t b = nn::next_kv_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------------
// KvAttention: MultiHeadAttention::forward_decode over a caching backend.
// ---------------------------------------------------------------------------

std::unique_ptr<nn::PhotonicBackend> attention_backend() {
  GemmConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 4;
  cfg.guard.enabled = true;
  return std::make_unique<nn::PhotonicBackend>(core::make_pdac_driver(8), cfg);
}

// Prepared decode must match unprepared decode bit-for-bit — outputs and
// events — at every step, with the first token dominating the history
// max-abs so later steps exercise the in-place append path.
TEST(KvAttention, DecodePreparedBitIdenticalToUnprepared) {
  const std::size_t d_model = 16;
  const std::size_t heads = 2;
  const std::size_t steps = 6;
  nn::MultiHeadAttention mha(d_model, heads);
  Rng wrng(21);
  mha.init_random(wrng);

  auto bp = attention_backend();
  auto bu = attention_backend();
  nn::AttentionKvState kvp = mha.make_kv_state();
  nn::AttentionKvState kvu = mha.make_kv_state();

  Rng xrng(5);
  for (std::size_t t = 0; t < steps; ++t) {
    // Token 0 is a loud ±1 row; later tokens are quiet, so the per-head
    // K/V max-abs recorded at step 0 is never outgrown.
    Matrix x(1, d_model);
    for (std::size_t c = 0; c < d_model; ++c) {
      x(0, c) = t == 0 ? (c % 2 == 0 ? 1.0 : -1.0) : 0.1 * xrng.gaussian();
    }
    const Matrix yp = mha.forward_decode(x, *bp, kvp, nn::KvDecodeMode::kPrepared);
    const Matrix yu = mha.forward_decode(x, *bu, kvu, nn::KvDecodeMode::kUnprepared);
    expect_bit_identical(yp, yu, "decode step");
    expect_same_events(bp->events(), bu->events());
  }
  EXPECT_EQ(kvp.tokens, steps);

  const nn::KvPreparedCacheStats& st = bp->kv_cache()->stats();
  // Two handles per head; each serves one miss then steps-1 hits, and
  // with the loud first token every hit extends in place.
  EXPECT_EQ(st.misses, 2 * heads);
  EXPECT_EQ(st.hits, 2 * heads * (steps - 1));
  EXPECT_EQ(st.appends, st.hits);
  EXPECT_EQ(st.rebuilds, 0u);
  EXPECT_EQ(st.entries, 2 * heads);

  nn::MultiHeadAttention::release_kv_state(kvp, *bp);
  EXPECT_EQ(bp->kv_cache()->stats().entries, 0u);
  EXPECT_EQ(bp->kv_cache()->stats().invalidations, 2 * heads);
}

// With the prepared cache disabled every product re-prepares from
// scratch — the from-scratch bench mode — and must still be bit-identical.
TEST(KvAttention, DisabledCacheStillBitIdentical) {
  const std::size_t d_model = 16;
  nn::MultiHeadAttention mha(d_model, 2);
  Rng wrng(33);
  mha.init_random(wrng);

  GemmConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 4;
  nn::KvPreparedCacheConfig off;
  off.enabled = false;
  nn::PhotonicBackend cold(core::make_pdac_driver(8), cfg, {}, off);
  auto warm = attention_backend();

  nn::AttentionKvState kvc = mha.make_kv_state();
  nn::AttentionKvState kvw = mha.make_kv_state();
  Rng xrng(6);
  for (std::size_t t = 0; t < 4; ++t) {
    const Matrix x = Matrix::random_gaussian(1, d_model, xrng);
    const Matrix yc = mha.forward_decode(x, cold, kvc, nn::KvDecodeMode::kPrepared);
    const Matrix yw = mha.forward_decode(x, *warm, kvw, nn::KvDecodeMode::kPrepared);
    expect_bit_identical(yc, yw, "disabled cache step");
  }
  EXPECT_EQ(cold.kv_cache()->stats().entries, 0u);
  EXPECT_EQ(cold.kv_cache()->stats().hits, 0u);
}

faults::LaneBankConfig kv_bank_config(std::uint64_t seed = 5) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

// A mid-sequence epoch bump (what a real re-trim or fence emits): the
// guarded backend must refuse the stale resident entries, rebuild them
// from the full history, and stay bit-identical to the unprepared
// replay throughout.
TEST(KvAttention, GuardedEpochBumpRebuildsMidSequence) {
  const std::size_t d_model = 16;
  const std::size_t heads = 2;
  const std::size_t steps = 6;
  nn::MultiHeadAttention mha(d_model, heads);
  Rng wrng(44);
  mha.init_random(wrng);

  // Identically-fabricated banks so both replicas see the same encoder
  // state; both sides re-trim at the same step to keep the trajectories
  // aligned.
  faults::LaneBank bank_p(kv_bank_config());
  faults::LaneBank bank_u(kv_bank_config());
  faults::production_trim(bank_p);
  faults::production_trim(bank_u);
  faults::GuardedBackendConfig gcfg;
  gcfg.array_rows = 4;
  gcfg.array_cols = 4;
  faults::GuardedBackend gp(bank_p, gcfg);
  faults::GuardedBackend gu(bank_u, gcfg);

  nn::AttentionKvState kvp = mha.make_kv_state();
  nn::AttentionKvState kvu = mha.make_kv_state();
  Rng xrng(8);
  std::uint64_t rebuilds_before_bump = 0;
  for (std::size_t t = 0; t < steps; ++t) {
    Matrix x(1, d_model);
    for (std::size_t c = 0; c < d_model; ++c) {
      x(0, c) = t == 0 ? (c % 2 == 0 ? 1.0 : -1.0) : 0.1 * xrng.gaussian();
    }
    if (t == 3) {
      // A healthy-bank force_retrim() leaves the epoch alone (nothing was
      // re-trimmed or fenced), so bump the epoch directly — the exact
      // signal a real re-trim/fence emits — on both replicas.
      rebuilds_before_bump = gp.kv_cache()->stats().rebuilds;
      bank_p.bump_epoch();
      bank_u.bump_epoch();
    }
    const Matrix yp = mha.forward_decode(x, gp, kvp, nn::KvDecodeMode::kPrepared);
    const Matrix yu = mha.forward_decode(x, gu, kvu, nn::KvDecodeMode::kUnprepared);
    expect_bit_identical(yp, yu, "guarded decode step");
    expect_same_events(gp.events(), gu.events());
  }
  // Every resident entry (two per head) went stale at the bump and was
  // rebuilt exactly once; appends resumed afterwards.
  const nn::KvPreparedCacheStats& st = gp.kv_cache()->stats();
  EXPECT_EQ(st.rebuilds, rebuilds_before_bump + 2 * heads);
  EXPECT_GT(st.appends, 0u);

  nn::MultiHeadAttention::release_kv_state(kvp, gp);
  EXPECT_EQ(gp.kv_cache()->stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// KvServing: the engine's per-request KV path against the solo reference.
// ---------------------------------------------------------------------------

serve::WorkloadConfig kv_workload(std::size_t requests) {
  serve::WorkloadConfig wl;
  wl.requests = requests;
  wl.mean_interarrival = 16.0;
  wl.d_model = 16;
  wl.models = 2;
  wl.prompt_min = 2;
  wl.prompt_max = 8;
  wl.decode_min = 3;
  wl.decode_max = 8;
  wl.seed = 91;
  return wl;
}

std::vector<nn::Linear> make_models(std::size_t count, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Linear> models;
  models.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    models.emplace_back(d, d);
    models.back().init_random(rng);
  }
  return models;
}

TEST(KvServing, EngineBitIdenticalToReferenceWithKvAttention) {
  const serve::WorkloadConfig wl = kv_workload(12);
  auto reqs = serve::generate_workload(wl);
  // Mix KV and plain requests so both decode paths share batches.
  for (std::size_t i = 0; i < reqs.size(); ++i) reqs[i].kv_attention = i % 3 != 2;
  auto models = make_models(wl.models, wl.d_model, 17);

  serve::BackendPoolConfig pool_cfg;
  pool_cfg.backends = 2;
  pool_cfg.bank = kv_bank_config(7);
  pool_cfg.guarded.array_rows = 8;
  pool_cfg.guarded.array_cols = 8;
  serve::BackendPool pool(pool_cfg);
  serve::ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.max_queue = reqs.size();
  serve::ServingEngine engine(pool, models, cfg);
  const serve::ServingReport rep = engine.run(reqs);

  EXPECT_EQ(rep.completed, reqs.size());
  EXPECT_TRUE(rep.reconciled(reqs.size()));

  faults::LaneBank ref_bank(pool_cfg.bank);
  faults::production_trim(ref_bank);
  faults::GuardedBackend ref_backend(ref_bank, pool_cfg.guarded);
  const auto ref = serve::run_reference(reqs, models, ref_backend);
  for (std::size_t q = 0; q < reqs.size(); ++q) {
    EXPECT_EQ(rep.records[q].digest, ref[q].digest) << "request " << q;
    EXPECT_EQ(rep.records[q].tokens_done, ref[q].tokens_done);
  }

  // The KV path actually ran through residency: lookups, appends (unit
  // max-abs K rows never outgrow the scale, so healthy backends extend
  // in place), and full release at request finalize.
  std::uint64_t hits = 0, appends = 0, misses = 0;
  for (const serve::BackendServeStats& bs : rep.backends) {
    hits += bs.kv.hits;
    appends += bs.kv.appends;
    misses += bs.kv.misses;
    EXPECT_EQ(bs.kv.entries, 0u) << "resident KV after finalize";
  }
  EXPECT_GT(misses, 0u);
  EXPECT_GT(hits, 0u);
  EXPECT_EQ(appends, hits);  // epoch-stable pool: every hit appends
}

TEST(KvServing, ReferenceIsDeterministicForKvRequests) {
  const serve::WorkloadConfig wl = kv_workload(6);
  auto reqs = serve::generate_workload(wl);
  for (auto& r : reqs) r.kv_attention = true;
  auto models = make_models(wl.models, wl.d_model, 17);

  faults::LaneBank bank_a(kv_bank_config(7));
  faults::LaneBank bank_b(kv_bank_config(7));
  faults::production_trim(bank_a);
  faults::production_trim(bank_b);
  faults::GuardedBackend ga(bank_a);
  faults::GuardedBackend gb(bank_b);
  const auto ra = serve::run_reference(reqs, models, ga);
  const auto rb = serve::run_reference(reqs, models, gb);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t q = 0; q < ra.size(); ++q) {
    EXPECT_EQ(ra[q].digest, rb[q].digest);
    EXPECT_EQ(ra[q].tokens_done, rb[q].tokens_done);
    EXPECT_GT(ra[q].tokens_done, 0u);
  }
}

}  // namespace
