// Tests for the DDot SNR / effective-resolution analysis.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "ptc/noise_analysis.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

SnrConfig thermal(double std_dev, double scale = 1.0) {
  SnrConfig cfg;
  cfg.noise.enabled = true;
  cfg.noise.thermal_noise_std = std_dev;
  cfg.amplitude_scale = scale;
  cfg.trials = 3000;
  cfg.seed = 7;
  return cfg;
}

TEST(SnrAnalysis, NoiselessIsEffectivelyInfiniteSnr) {
  SnrConfig cfg;
  cfg.trials = 500;
  const auto rep = measure_ddot_snr(cfg);
  EXPECT_GT(rep.snr_db, 150.0);
  EXPECT_GT(rep.effective_bits, 20.0);
}

TEST(SnrAnalysis, MoreNoiseLowersSnr) {
  const auto low = measure_ddot_snr(thermal(0.005));
  const auto high = measure_ddot_snr(thermal(0.05));
  EXPECT_GT(low.snr_db, high.snr_db);
  EXPECT_GT(low.effective_bits, high.effective_bits);
}

TEST(SnrAnalysis, ThermalLimitedGainsOneBitPerPowerDoubling) {
  // Thermal noise is fixed at the detector, so value noise ∝ 1/s² and
  // each laser-power doubling (s ×√2) adds ~1 effective bit.
  const auto a = measure_ddot_snr(thermal(0.02, 1.0));
  const auto b = measure_ddot_snr(thermal(0.02, std::sqrt(2.0)));
  EXPECT_NEAR(b.effective_bits - a.effective_bits, 1.0, 0.25);
}

TEST(SnrAnalysis, ShotLimitedGainsHalfBitPerPowerDoubling) {
  SnrConfig base;
  base.noise.enabled = true;
  base.noise.shot_noise_scale = 0.02;
  base.trials = 6000;
  base.seed = 11;
  SnrConfig doubled = base;
  doubled.amplitude_scale = std::sqrt(2.0);
  const auto a = measure_ddot_snr(base);
  const auto b = measure_ddot_snr(doubled);
  EXPECT_NEAR(b.effective_bits - a.effective_bits, 0.5, 0.25);
}

TEST(SnrAnalysis, SeedDeterminism) {
  const auto a = measure_ddot_snr(thermal(0.02));
  const auto b = measure_ddot_snr(thermal(0.02));
  EXPECT_DOUBLE_EQ(a.snr_db, b.snr_db);
}

TEST(SnrAnalysis, SignalRmsMatchesUniformOperandTheory) {
  // Σ x·y over 8 channels of U(−1,1): variance = 8·(1/3)² = 8/9.
  const auto rep = measure_ddot_snr(thermal(1e-9));
  EXPECT_NEAR(rep.signal_rms, std::sqrt(8.0 / 9.0), 0.05);
}

TEST(SnrAnalysis, RequiredScaleMonotoneInTarget) {
  const auto base = thermal(0.02);
  const double s6 = required_amplitude_scale(6.0, base);
  const double s8 = required_amplitude_scale(8.0, base);
  ASSERT_GT(s6, 0.0);
  ASSERT_GT(s8, 0.0);
  EXPECT_GT(s8, s6);
}

TEST(SnrAnalysis, RequiredScaleReturnsZeroWhenUnreachable) {
  const auto noisy = thermal(10.0);
  EXPECT_DOUBLE_EQ(required_amplitude_scale(16.0, noisy, /*max_scale=*/2.0), 0.0);
}

TEST(SnrAnalysis, RejectsBadConfig) {
  SnrConfig bad;
  bad.amplitude_scale = 0.0;
  EXPECT_THROW(measure_ddot_snr(bad), PreconditionError);
  bad = SnrConfig{};
  bad.trials = 5;
  EXPECT_THROW(measure_ddot_snr(bad), PreconditionError);
  EXPECT_THROW(required_amplitude_scale(0.0, SnrConfig{}), PreconditionError);
}

}  // namespace
