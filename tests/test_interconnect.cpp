// Tests for the electrical-vs-optical interconnect model.
#include <gtest/gtest.h>

#include "arch/interconnect.hpp"
#include "common/require.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

InterconnectConfig electrical(double mm) {
  InterconnectConfig cfg;
  cfg.kind = LinkKind::kElectrical;
  cfg.distance_mm = mm;
  return cfg;
}

InterconnectConfig optical(double mm) {
  InterconnectConfig cfg;
  cfg.kind = LinkKind::kOptical;
  cfg.distance_mm = mm;
  return cfg;
}

TEST(Interconnect, ElectricalEnergyScalesWithDistance) {
  const auto near = evaluate_link(electrical(1.0));
  const auto far = evaluate_link(electrical(10.0));
  EXPECT_NEAR(far.energy_per_bit.joules() / near.energy_per_bit.joules(), 10.0, 1e-9);
}

TEST(Interconnect, OpticalEnergyDistanceIndependent) {
  const auto near = evaluate_link(optical(1.0));
  const auto far = evaluate_link(optical(50.0));
  EXPECT_DOUBLE_EQ(near.energy_per_bit.joules(), far.energy_per_bit.joules());
}

TEST(Interconnect, OpticalBandwidthFromWdm) {
  InterconnectConfig cfg = optical(10.0);
  cfg.gbps_per_lambda = 40.0;
  cfg.lambdas = 16;
  EXPECT_DOUBLE_EQ(evaluate_link(cfg).bandwidth_gbps, 640.0);
  // The paper's claim: one-to-two orders more than electrical pins.
  const auto e = evaluate_link(electrical(10.0));
  EXPECT_GT(evaluate_link(cfg).bandwidth_gbps, e.bandwidth_gbps);
}

TEST(Interconnect, OpticalLatencyIsTimeOfFlight) {
  const auto m = evaluate_link(optical(10.0));
  // 10 mm at n_g = 4.2: ~140 ps.
  EXPECT_NEAR(m.latency.seconds() * 1e12, 140.0, 2.0);
  // Electrical repeatered wire is slower over the same span.
  EXPECT_GT(evaluate_link(electrical(10.0)).latency.seconds(), m.latency.seconds());
}

TEST(Interconnect, CrossoverFormula) {
  InterconnectConfig cfg;
  const double d = optical_crossover_mm(cfg);
  // (0.25+0.25+0.2)/0.25 = 2.8 mm with the defaults.
  EXPECT_NEAR(d, 2.8, 1e-9);
  // At the crossover the two per-bit energies match.
  const auto e = evaluate_link(electrical(d));
  const auto o = evaluate_link(optical(d));
  EXPECT_NEAR(e.energy_per_bit.joules(), o.energy_per_bit.joules(), 1e-18);
}

TEST(Interconnect, TransferCostComposition) {
  const auto m = evaluate_link(optical(10.0));
  const std::uint64_t bits = 8ull * 1024 * 1024;
  EXPECT_NEAR(m.transfer_energy(bits).joules(),
              m.energy_per_bit.joules() * static_cast<double>(bits), 1e-18);
  EXPECT_GT(m.transfer_time(bits).seconds(), m.latency.seconds());
}

TEST(Interconnect, DistributionBitsMatchMovementAccounting) {
  const auto trace = nn::trace_decode_step(nn::bert_base(128), 256);
  std::uint64_t elements = 0;
  for (const auto& g : trace.gemms) {
    elements += g.weight_elements() + (g.static_weights ? g.activation_elements() : 0) +
                g.total_extra_movement_elements();
  }
  EXPECT_EQ(distribution_bits(trace, 8), elements * 8);
  EXPECT_EQ(distribution_bits(trace, 4), elements * 4);
}

TEST(Interconnect, RejectsBadConfig) {
  InterconnectConfig bad = electrical(-1.0);
  EXPECT_THROW(evaluate_link(bad), PreconditionError);
  bad = electrical(1.0);
  bad.wires = 0;
  EXPECT_THROW(evaluate_link(bad), PreconditionError);
  bad = optical(1.0);
  bad.lambdas = 0;
  EXPECT_THROW(evaluate_link(bad), PreconditionError);
}

TEST(Interconnect, KindNames) {
  EXPECT_EQ(to_string(LinkKind::kElectrical), "electrical");
  EXPECT_EQ(to_string(LinkKind::kOptical), "optical");
}

}  // namespace
