// Tests for the sign-magnitude TIA program (encoding ablation).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "converters/quantizer.hpp"
#include "core/tia_weights.hpp"
#include "core/variation.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(SignMagnitude, NominalFunctionIdenticalToTwosComplement) {
  // Both encodings must realize exactly the same f(r) on every code.
  const auto approx = PiecewiseLinearArccos::paper();
  for (int bits : {4, 6, 8}) {
    const SegmentedTiaProgram twos(approx, bits);
    const SignMagnitudeTiaProgram sm(approx, bits);
    const converters::Quantizer q(bits);
    for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
      EXPECT_NEAR(sm.drive_phase(c), twos.drive_phase(c), 1e-12)
          << "bits " << bits << " code " << c;
    }
  }
}

TEST(SignMagnitude, MagnitudeBitsHaveUniformSign) {
  // The robustness property: no cancellation inside a bank.
  const SignMagnitudeTiaProgram sm(PiecewiseLinearArccos::paper(), 8);
  for (int outer = 0; outer < 2; ++outer) {
    for (int negative = 0; negative < 2; ++negative) {
      const auto& bank = sm.bank(outer != 0, negative != 0);
      const double first = bank.weights.front();
      for (double w : bank.weights) {
        EXPECT_EQ(w > 0.0, first > 0.0) << "mixed-sign weights in bank";
      }
    }
  }
}

TEST(SignMagnitude, NegativeBankIsPiMirror) {
  const SignMagnitudeTiaProgram sm(PiecewiseLinearArccos::paper(), 8);
  for (int outer = 0; outer < 2; ++outer) {
    const auto& pos = sm.bank(outer != 0, false);
    const auto& neg = sm.bank(outer != 0, true);
    EXPECT_NEAR(pos.bias + neg.bias, 3.141592653589793, 1e-12);
    for (std::size_t i = 0; i < pos.weights.size(); ++i) {
      EXPECT_NEAR(pos.weights[i], -neg.weights[i], 1e-15);
    }
  }
}

TEST(SignMagnitude, RejectsOutOfRangeCode) {
  const SignMagnitudeTiaProgram sm(PiecewiseLinearArccos::paper(), 8);
  EXPECT_THROW((void)sm.drive_phase(128), PreconditionError);
  EXPECT_THROW((void)sm.drive_phase(-128), PreconditionError);
}

TEST(SignMagnitude, RobustToGainMismatchWhereTwosComplementIsNot) {
  // The headline ablation: identical variation, drastically different
  // worst-code behaviour.
  PdacConfig cfg;
  cfg.bits = 8;
  VariationConfig var;
  var.tia_gain_sigma = 0.02;
  var.seed = 41;
  const auto twos = monte_carlo_pdac(cfg, var, 40);
  const auto sm = monte_carlo_sign_magnitude(cfg, var, 40);
  EXPECT_LT(sm.worst_error.mean(), 0.4 * twos.worst_error.mean());
  EXPECT_GT(sm.yield(0.12), twos.yield(0.12));
}

TEST(SignMagnitude, ZeroVariationMatchesNominal) {
  PdacConfig cfg;
  cfg.bits = 8;
  const auto rep = monte_carlo_sign_magnitude(cfg, VariationConfig{}, 3);
  const Pdac nominal(cfg);
  for (const auto& s : rep.samples) {
    EXPECT_NEAR(s.worst_error, nominal.worst_case_error(), 1e-9);
  }
}

TEST(SignMagnitude, StillSensitiveToVpiDrift) {
  // Vπ drift scales the π/2 bias point in either encoding — the sign-
  // magnitude form fixes cancellation, not global phase drift.
  PdacConfig cfg;
  cfg.bits = 8;
  VariationConfig var;
  var.vpi_drift_sigma = 0.02;
  var.seed = 43;
  const auto rep = monte_carlo_sign_magnitude(cfg, var, 40);
  EXPECT_GT(rep.worst_error.mean(), 0.15);
}

}  // namespace
