// Tests for the tile-dispatch thread pool: coverage, determinism of the
// static partition, and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hpp"

namespace {

using pdac::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
                        std::size_t{17}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, StaticPartitionIsDeterministic) {
  // The same (n, size) pair must produce the same ranges every call —
  // this is what lets callers bind per-worker device state to indices.
  ThreadPool pool(3);
  auto record = [&] {
    std::vector<std::size_t> owner(10, 99);
    pool.parallel_for(10, [&](std::size_t begin, std::size_t end, std::size_t worker) {
      for (std::size_t i = begin; i < end; ++i) owner[i] = worker;
    });
    return owner;
  };
  const auto first = record();
  for (int rep = 0; rep < 5; ++rep) EXPECT_EQ(record(), first);
  // Ranges are contiguous and ascending by worker.
  for (std::size_t i = 1; i < first.size(); ++i) EXPECT_GE(first[i], first[i - 1]);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t covered = 0;
  pool.parallel_for(7, [&](std::size_t begin, std::size_t end, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    covered += end - begin;
  });
  EXPECT_EQ(covered, 7u);
}

TEST(ThreadPool, NarrowJobUsesFewerWorkersThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t worker) {
    EXPECT_LT(worker, 3u);
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesWorkerException) {
  ThreadPool pool(4);
  auto boom = [&] {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t, std::size_t) {
      if (begin >= 25) throw std::runtime_error("tile failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // The pool must stay usable after an exceptional job.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](std::size_t begin, std::size_t end, std::size_t) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end, std::size_t) {
      total.fetch_add(static_cast<long>(end - begin));
    });
  }
  EXPECT_EQ(total.load(), 50L * 64L);
}

TEST(ThreadPool, DefaultThreadsPositive) { EXPECT_GE(ThreadPool::default_threads(), 1u); }

TEST(ThreadPool, ZeroSizeRangeNeverInvokesBody) {
  ThreadPool pool(4);
  bool invoked = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t, std::size_t) { invoked = true; });
  EXPECT_FALSE(invoked);
  // And the pool stays usable for real jobs afterwards.
  std::atomic<int> ran{0};
  pool.parallel_for(5, [&](std::size_t begin, std::size_t end, std::size_t) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPool, PropagatesExceptionFromRetryInsideBody) {
  // The ABFT escalation ladder re-runs tiles from inside worker bodies;
  // if such a retry throws, the exception must surface at the
  // parallel_for call site, not vanish or crash a worker thread.
  ThreadPool pool(4);
  auto retry_tile = [](std::size_t i) {
    if (i == 73) throw std::runtime_error("retry exhausted");
  };
  auto run = [&] {
    pool.parallel_for(100, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) retry_tile(i);
    });
  };
  EXPECT_THROW(run(), std::runtime_error);
  // The pool must drain cleanly and accept the re-run.
  std::atomic<int> ran{0};
  pool.parallel_for(100, [&](std::size_t begin, std::size_t end, std::size_t) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, RejectsNestedCallOnSamePool) {
  ThreadPool pool(4);
  auto nested = [&] {
    pool.parallel_for(8, [&](std::size_t, std::size_t, std::size_t) {
      pool.parallel_for(2, [](std::size_t, std::size_t, std::size_t) {});
    });
  };
  EXPECT_THROW(nested(), std::logic_error);
  // Usable after the rejected job.
  std::atomic<int> ran{0};
  pool.parallel_for(4, [&](std::size_t begin, std::size_t end, std::size_t) {
    ran.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPool, RejectsNestedCallAcrossPools) {
  // Nesting into a *different* pool would silently oversubscribe
  // (workers × workers threads); it is rejected just the same.
  ThreadPool outer(2);
  ThreadPool inner(2);
  auto nested = [&] {
    outer.parallel_for(4, [&](std::size_t, std::size_t, std::size_t) {
      inner.parallel_for(2, [](std::size_t, std::size_t, std::size_t) {});
    });
  };
  EXPECT_THROW(nested(), std::logic_error);
}

TEST(ThreadPool, RejectsNestedCallOnInlinePath) {
  // A size-1 pool runs bodies inline on the caller thread; the nested
  // guard must hold there too.
  ThreadPool pool(1);
  auto nested = [&] {
    pool.parallel_for(3, [&](std::size_t, std::size_t, std::size_t) {
      pool.parallel_for(1, [](std::size_t, std::size_t, std::size_t) {});
    });
  };
  EXPECT_THROW(nested(), std::logic_error);
  std::size_t covered = 0;
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end, std::size_t) {
    covered += end - begin;
  });
  EXPECT_EQ(covered, 3u);
}

TEST(ThreadPool, SequentialCallsAfterNestedRejectionStayHealthy) {
  ThreadPool pool(4);
  for (int rep = 0; rep < 3; ++rep) {
    EXPECT_THROW(pool.parallel_for(8,
                                   [&](std::size_t, std::size_t, std::size_t) {
                                     pool.parallel_for(
                                         1, [](std::size_t, std::size_t, std::size_t) {});
                                   }),
                 std::logic_error);
    std::atomic<int> ran{0};
    pool.parallel_for(16, [&](std::size_t begin, std::size_t end, std::size_t) {
      ran.fetch_add(static_cast<int>(end - begin));
    });
    EXPECT_EQ(ran.load(), 16);
  }
}

}  // namespace
