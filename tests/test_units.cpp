// Unit tests for the dimensional types in common/units.hpp.
#include <gtest/gtest.h>

#include <sstream>

#include "common/units.hpp"

namespace {

using namespace pdac::units;

TEST(Units, PowerConstructionAndConversions) {
  const Power p = milliwatts(250.0);
  EXPECT_DOUBLE_EQ(p.watts(), 0.25);
  EXPECT_DOUBLE_EQ(p.milliwatts(), 250.0);
  EXPECT_DOUBLE_EQ(p.microwatts(), 250'000.0);
}

TEST(Units, EnergyConstructionAndConversions) {
  const Energy e = picojoules(2.0);
  EXPECT_DOUBLE_EQ(e.joules(), 2e-12);
  EXPECT_DOUBLE_EQ(e.picojoules(), 2.0);
  EXPECT_DOUBLE_EQ(femtojoules(1000.0).picojoules(), 1.0);
}

TEST(Units, TimeAndFrequency) {
  const Frequency f = gigahertz(5.0);
  EXPECT_DOUBLE_EQ(f.hertz(), 5e9);
  EXPECT_DOUBLE_EQ(f.gigahertz(), 5.0);
  EXPECT_DOUBLE_EQ(period(f).nanoseconds(), 0.2);
  EXPECT_DOUBLE_EQ(megahertz(1.0).hertz(), 1e6);
}

TEST(Units, AdditionAndSubtraction) {
  const Power a = watts(1.5);
  const Power b = watts(0.5);
  EXPECT_DOUBLE_EQ((a + b).watts(), 2.0);
  EXPECT_DOUBLE_EQ((a - b).watts(), 1.0);
  EXPECT_DOUBLE_EQ((-b).watts(), -0.5);
}

TEST(Units, ScalarMultiplication) {
  const Energy e = joules(2.0);
  EXPECT_DOUBLE_EQ((e * 3.0).joules(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * e).joules(), 6.0);
  EXPECT_DOUBLE_EQ((e / 4.0).joules(), 0.5);
}

TEST(Units, CompoundAssignment) {
  Power p = watts(1.0);
  p += watts(2.0);
  EXPECT_DOUBLE_EQ(p.watts(), 3.0);
  p -= watts(0.5);
  EXPECT_DOUBLE_EQ(p.watts(), 2.5);
  p *= 2.0;
  EXPECT_DOUBLE_EQ(p.watts(), 5.0);
}

TEST(Units, RatioOfLikeQuantitiesIsDimensionless) {
  EXPECT_DOUBLE_EQ(watts(10.0) / watts(4.0), 2.5);
  EXPECT_DOUBLE_EQ(joules(1.0) / joules(8.0), 0.125);
}

TEST(Units, PowerTimesTimeIsEnergy) {
  const Energy e = watts(2.0) * seconds(3.0);
  EXPECT_DOUBLE_EQ(e.joules(), 6.0);
  EXPECT_DOUBLE_EQ((seconds(3.0) * watts(2.0)).joules(), 6.0);
}

TEST(Units, EnergyOverTimeIsPower) {
  EXPECT_DOUBLE_EQ((joules(6.0) / seconds(3.0)).watts(), 2.0);
}

TEST(Units, EnergyOverPowerIsTime) {
  EXPECT_DOUBLE_EQ((joules(6.0) / watts(2.0)).seconds(), 3.0);
}

TEST(Units, EnergyTimesFrequencyIsPower) {
  // 2 pJ per event at 5 GHz = 10 mW.
  const Power p = picojoules(2.0) * gigahertz(5.0);
  EXPECT_NEAR(p.milliwatts(), 10.0, 1e-12);
  EXPECT_NEAR((gigahertz(5.0) * picojoules(2.0)).milliwatts(), 10.0, 1e-12);
}

TEST(Units, PowerOverFrequencyIsEnergyPerEvent) {
  const Energy e = milliwatts(10.0) / gigahertz(5.0);
  EXPECT_NEAR(e.picojoules(), 2.0, 1e-12);
}

TEST(Units, Comparisons) {
  EXPECT_LT(watts(1.0), watts(2.0));
  EXPECT_GT(joules(3.0), joules(2.0));
  EXPECT_EQ(watts(1.0), watts(1.0));
  EXPECT_GE(seconds(2.0), seconds(2.0));
}

TEST(Units, DefaultConstructionIsZero) {
  EXPECT_DOUBLE_EQ(Power{}.watts(), 0.0);
  EXPECT_DOUBLE_EQ(Energy{}.joules(), 0.0);
  EXPECT_DOUBLE_EQ(Time{}.seconds(), 0.0);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << watts(1.5);
  EXPECT_EQ(os.str(), "1.5 W");
  std::ostringstream os2;
  os2 << seconds(2.0);
  EXPECT_EQ(os2.str(), "2 s");
}

TEST(Units, EnergyAccumulationOverEvents) {
  // Typical accounting pattern: N events at e_per_event.
  Energy total{};
  const Energy per_event = picojoules(2.5);
  for (int i = 0; i < 1000; ++i) total += per_event;
  EXPECT_NEAR(total.picojoules(), 2500.0, 1e-9);
}

}  // namespace
