// Tests for the dependency-aware trace scheduler.
#include <gtest/gtest.h>

#include "arch/mapper.hpp"
#include "arch/op_events.hpp"
#include "common/require.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

class MapperTest : public ::testing::Test {
 protected:
  LtConfig cfg = lt_base();
  nn::WorkloadTrace bert = nn::trace_forward(nn::bert_base(128));
};

TEST_F(MapperTest, StageClassification) {
  for (const auto& op : bert.gemms) {
    const Stage s = stage_of(op);
    if (op.label.find("Q-proj") != std::string::npos) {
      EXPECT_EQ(s, Stage::kQkvProjection);
    } else if (op.label.find("QK^T") != std::string::npos) {
      EXPECT_EQ(s, Stage::kScores);
    } else if (op.label.find("FFN-down") != std::string::npos) {
      EXPECT_EQ(s, Stage::kFfnDown);
    }
  }
}

TEST_F(MapperTest, EveryOpScheduledOnce) {
  const Schedule s = schedule_trace(bert, cfg);
  EXPECT_EQ(s.ops.size(), bert.gemms.size());
}

TEST_F(MapperTest, QkvProjectionsRunConcurrently) {
  const Schedule s = schedule_trace(bert, cfg);
  // First three ops are layer-0 Q/K/V projections: same start cycle.
  ASSERT_GE(s.ops.size(), 3u);
  EXPECT_EQ(s.ops[0].start_cycle, s.ops[1].start_cycle);
  EXPECT_EQ(s.ops[1].start_cycle, s.ops[2].start_cycle);
  EXPECT_EQ(s.ops[0].arrays_assigned, cfg.arrays() / 3);
}

TEST_F(MapperTest, StagesRespectDependencies) {
  const Schedule s = schedule_trace(bert, cfg);
  // Within layer 0: scores start after projections end; context after
  // scores; output projection after context.
  const auto find = [&s](const char* label) {
    for (const auto& op : s.ops) {
      if (op.label == label) return op;
    }
    ADD_FAILURE() << "op not found: " << label;
    return ScheduledOp{};
  };
  const auto q = find("L0.Q-proj");
  const auto scores = find("L0.QK^T");
  const auto av = find("L0.AV");
  const auto oproj = find("L0.O-proj");
  EXPECT_GE(scores.start_cycle, q.end_cycle);
  EXPECT_GE(av.start_cycle, scores.end_cycle);
  EXPECT_GE(oproj.start_cycle, av.end_cycle);
}

TEST_F(MapperTest, LayersAreSequential) {
  const Schedule s = schedule_trace(bert, cfg);
  std::uint64_t l0_end = 0, l1_start = UINT64_MAX;
  for (const auto& op : s.ops) {
    if (op.label.rfind("L0.", 0) == 0) l0_end = std::max(l0_end, op.end_cycle);
    if (op.label.rfind("L1.", 0) == 0) l1_start = std::min(l1_start, op.start_cycle);
  }
  EXPECT_GE(l1_start, l0_end);
}

TEST_F(MapperTest, MakespanCoversAllOps) {
  const Schedule s = schedule_trace(bert, cfg);
  std::uint64_t max_end = 0;
  for (const auto& op : s.ops) max_end = std::max(max_end, op.end_cycle);
  EXPECT_EQ(s.makespan_cycles, max_end);
}

TEST_F(MapperTest, UtilizationBetweenZeroAndOne) {
  const Schedule s = schedule_trace(bert, cfg);
  EXPECT_GT(s.utilization(), 0.0);
  EXPECT_LE(s.utilization(), 1.0);
}

TEST_F(MapperTest, MakespanAtLeastIdeal) {
  const Schedule s = schedule_trace(bert, cfg);
  EXPECT_GE(s.makespan_cycles, s.ideal_cycles());
  EXPECT_GE(s.slowdown(), 1.0);
}

TEST_F(MapperTest, BusyCyclesMatchEventCounts) {
  const Schedule s = schedule_trace(bert, cfg);
  std::uint64_t expect = 0;
  for (const auto& op : bert.gemms) expect += count_op_events(op, cfg).tile_cycles;
  EXPECT_EQ(s.busy_array_cycles, expect);
}

TEST_F(MapperTest, RuntimeMatchesClock) {
  const Schedule s = schedule_trace(bert, cfg);
  EXPECT_NEAR(s.runtime(units::gigahertz(5.0)).seconds(),
              static_cast<double>(s.makespan_cycles) / 5e9, 1e-15);
}

TEST_F(MapperTest, DecodeWastesDdotsNotArrays) {
  const auto decode = nn::trace_decode_step(nn::bert_base(128), 512);
  const Schedule s = schedule_trace(decode, cfg);
  EXPECT_EQ(s.ops.size(), decode.gemms.size());
  // Decode tiles occupy whole arrays but only one DDot row (m = 1), so
  // array-level utilization stays high while DDot-level collapses.
  const Schedule prefill = schedule_trace(bert, cfg);
  EXPECT_GT(prefill.ddot_utilization(), 0.9);
  EXPECT_LT(s.ddot_utilization(), 0.2);
  EXPECT_LT(s.ddot_utilization(), prefill.ddot_utilization());
}

TEST_F(MapperTest, DdotUtilizationNeverExceedsArrayUtilization) {
  for (const auto* trace : {&bert}) {
    const Schedule s = schedule_trace(*trace, cfg);
    EXPECT_LE(s.ddot_utilization(), s.utilization() + 1e-12);
  }
}

TEST_F(MapperTest, StageNames) {
  EXPECT_EQ(to_string(Stage::kScores), "scores");
  EXPECT_EQ(to_string(Stage::kFfnUp), "ffn-up");
}

TEST_F(MapperTest, FullCapacityDegradedScheduleMatchesBaseline) {
  const Schedule base = schedule_trace(bert, cfg);
  DegradedCapacity cap;
  cap.healthy_arrays = cfg.arrays();
  cap.wavelength_availability = 1.0;
  const Schedule same = schedule_trace(bert, cfg, cap);
  EXPECT_EQ(same.makespan_cycles, base.makespan_cycles);
  EXPECT_EQ(same.busy_array_cycles, base.busy_array_cycles);
  EXPECT_EQ(same.remapped_tiles, 0u);
}

TEST_F(MapperTest, FencedArraysStretchMakespanAndRemapTiles) {
  const Schedule base = schedule_trace(bert, cfg);
  DegradedCapacity cap;
  cap.healthy_arrays = cfg.arrays() / 2;
  cap.wavelength_availability = 1.0;
  const Schedule degraded = schedule_trace(bert, cfg, cap);
  EXPECT_GT(degraded.makespan_cycles, base.makespan_cycles);
  EXPECT_GT(degraded.remapped_tiles, 0u);
  EXPECT_EQ(degraded.arrays, cfg.arrays() / 2);
}

TEST_F(MapperTest, DeadWavelengthsStretchEveryReduction) {
  const Schedule base = schedule_trace(bert, cfg);
  DegradedCapacity cap;
  cap.healthy_arrays = cfg.arrays();
  cap.wavelength_availability = 0.5;
  const Schedule degraded = schedule_trace(bert, cfg, cap);
  // Halved chunk width ≈ doubled occupancy; per-op ceil rounding keeps
  // the global ratio only approximately 2×.
  const double ratio = static_cast<double>(degraded.makespan_cycles) /
                       static_cast<double>(base.makespan_cycles);
  EXPECT_NEAR(ratio, 2.0, 0.05);
  EXPECT_EQ(degraded.remapped_tiles, 0u);  // no whole array was lost
}

TEST_F(MapperTest, DegradedCapacityIsValidated) {
  DegradedCapacity cap;
  cap.healthy_arrays = 0;
  EXPECT_THROW(schedule_trace(bert, cfg, cap), PreconditionError);
  cap.healthy_arrays = cfg.arrays() + 1;
  EXPECT_THROW(schedule_trace(bert, cfg, cap), PreconditionError);
  cap.healthy_arrays = 1;
  cap.wavelength_availability = 0.0;
  EXPECT_THROW(schedule_trace(bert, cfg, cap), PreconditionError);
  cap.wavelength_availability = 1.5;
  EXPECT_THROW(schedule_trace(bert, cfg, cap), PreconditionError);
}

}  // namespace
