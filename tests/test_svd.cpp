// Tests for the one-sided Jacobi SVD.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "common/svd.hpp"

namespace {

using namespace pdac;
using namespace pdac::math;

TEST(Svd, DiagonalMatrix) {
  Matrix d(3, 3, 0.0);
  d(0, 0) = 3.0;
  d(1, 1) = 1.0;
  d(2, 2) = 2.0;
  const SvdResult r = svd(d);
  EXPECT_NEAR(r.singular[0], 3.0, 1e-12);
  EXPECT_NEAR(r.singular[1], 2.0, 1e-12);
  EXPECT_NEAR(r.singular[2], 1.0, 1e-12);
}

TEST(Svd, SingularValuesSortedNonIncreasing) {
  Rng rng(1);
  const Matrix a = Matrix::random_gaussian(6, 6, rng);
  const SvdResult r = svd(a);
  for (std::size_t i = 1; i < r.singular.size(); ++i) {
    EXPECT_GE(r.singular[i - 1], r.singular[i]);
    EXPECT_GE(r.singular[i], 0.0);
  }
}

TEST(Svd, KnownRotationMatrix) {
  // A pure rotation has all singular values 1.
  const double th = 0.7;
  Matrix q(2, 2, std::vector<double>{std::cos(th), -std::sin(th), std::sin(th), std::cos(th)});
  const SvdResult r = svd(q);
  EXPECT_NEAR(r.singular[0], 1.0, 1e-12);
  EXPECT_NEAR(r.singular[1], 1.0, 1e-12);
}

TEST(Svd, RejectsWideMatrix) {
  EXPECT_THROW(svd(Matrix(2, 3)), PreconditionError);
}

TEST(Svd, TallMatrixSupported) {
  Rng rng(2);
  const Matrix a = Matrix::random_gaussian(8, 3, rng);
  const SvdResult r = svd(a);
  const Matrix back = r.reconstruct();
  const auto err = stats::compare(back.data(), a.data());
  EXPECT_LT(err.rel_frobenius, 1e-10);
}

// --- property sweep: reconstruction and orthogonality -----------------------
class SvdProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SvdProperty, ReconstructsOriginal) {
  Rng rng(GetParam());
  const auto n = GetParam();
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const SvdResult r = svd(a);
  const Matrix back = r.reconstruct();
  const auto err = stats::compare(back.data(), a.data());
  EXPECT_LT(err.rel_frobenius, 1e-9) << "n=" << n;
}

TEST_P(SvdProperty, FactorsAreOrthogonal) {
  Rng rng(GetParam() + 100);
  const auto n = GetParam();
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const SvdResult r = svd(a);
  const Matrix utu = matmul_reference(r.u.transposed(), r.u);
  const Matrix vtv = matmul_reference(r.v.transposed(), r.v);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double expect = i == j ? 1.0 : 0.0;
      EXPECT_NEAR(utu(i, j), expect, 1e-9);
      EXPECT_NEAR(vtv(i, j), expect, 1e-9);
    }
  }
}

TEST_P(SvdProperty, FrobeniusNormPreserved) {
  Rng rng(GetParam() + 200);
  const auto n = GetParam();
  const Matrix a = Matrix::random_gaussian(n, n, rng);
  const SvdResult r = svd(a);
  double fro = 0.0, ssq = 0.0;
  for (double v : a.data()) fro += v * v;
  for (double s : r.singular) ssq += s * s;
  EXPECT_NEAR(std::sqrt(fro), std::sqrt(ssq), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SvdProperty, ::testing::Values(1, 2, 3, 5, 8, 12, 24));

}  // namespace
