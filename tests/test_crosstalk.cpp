// Tests for the WDM crosstalk analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "photonics/crosstalk.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

WdmBusConfig cfg_of(std::size_t channels, double hwhm) {
  WdmBusConfig cfg;
  cfg.channels = channels;
  cfg.ring_hwhm_channels = hwhm;
  return cfg;
}

TEST(Crosstalk, DiagonalDominantForSharpRings) {
  const auto rep = analyze_crosstalk(cfg_of(8, 0.02));
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_GT(rep.matrix(i, i), 0.95) << "receiver " << i;
    for (std::size_t j = 0; j < 8; ++j) {
      if (i != j) {
        EXPECT_LT(rep.matrix(i, j), 0.01);
      }
    }
  }
}

TEST(Crosstalk, MatrixColumnsConservePower) {
  // All of a channel's light ends up in some drop port or the residual;
  // drop-port sums can never exceed unity.
  const auto rep = analyze_crosstalk(cfg_of(6, 0.1));
  for (std::size_t j = 0; j < 6; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 6; ++i) col += rep.matrix(i, j);
    EXPECT_LE(col, 1.0 + 1e-9) << "channel " << j;
    EXPECT_GT(col, 0.5) << "channel " << j;
  }
}

TEST(Crosstalk, BroaderRingsLeakMore) {
  const auto sharp = analyze_crosstalk(cfg_of(8, 0.02));
  const auto broad = analyze_crosstalk(cfg_of(8, 0.2));
  EXPECT_GT(broad.worst_pair_ratio, sharp.worst_pair_ratio);
  EXPECT_LT(broad.worst_isolation_db, sharp.worst_isolation_db);
  EXPECT_GT(broad.worst_aggregate_ratio, sharp.worst_aggregate_ratio);
}

TEST(Crosstalk, AggregateGrowsWithChannelCount) {
  const auto few = analyze_crosstalk(cfg_of(4, 0.05));
  const auto many = analyze_crosstalk(cfg_of(32, 0.05));
  EXPECT_GT(many.worst_aggregate_ratio, few.worst_aggregate_ratio);
}

TEST(Crosstalk, EffectiveBitsTrackAggregate) {
  const auto sharp = analyze_crosstalk(cfg_of(8, 0.01));
  const auto broad = analyze_crosstalk(cfg_of(8, 0.3));
  EXPECT_GT(sharp.crosstalk_limited_bits(), broad.crosstalk_limited_bits());
  EXPECT_GT(sharp.crosstalk_limited_bits(), 8.0);  // LT-B's 8λ at high Q is fine
}

TEST(Crosstalk, MaxChannelsMonotoneInSelectivity) {
  const std::size_t sharp = max_channels_for_isolation(20.0, 0.02, 48);
  const std::size_t broad = max_channels_for_isolation(20.0, 0.15, 48);
  EXPECT_GE(sharp, broad);
  EXPECT_GT(sharp, 0u);
}

TEST(Crosstalk, MaxChannelsZeroWhenHopeless) {
  EXPECT_EQ(max_channels_for_isolation(40.0, 0.45, 16), 0u);
}

TEST(Crosstalk, RejectsBadArguments) {
  EXPECT_THROW(max_channels_for_isolation(0.0, 0.05), PreconditionError);
  EXPECT_THROW(max_channels_for_isolation(20.0, 0.05, 1), PreconditionError);
}

}  // namespace
