// Tests for the evaluation/report rendering helpers.
#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "eval/report.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace {

using namespace pdac;

TEST(Report, PowerBreakdownContainsComponentsAndTotal) {
  const auto b = arch::compute_power_breakdown(arch::lt_base(), arch::lt_power_params(), 8,
                                               arch::SystemVariant::kDacBased);
  const std::string s = eval::render_power_breakdown("t", b);
  EXPECT_NE(s.find("laser"), std::string::npos);
  EXPECT_NE(s.find("DAC"), std::string::npos);
  EXPECT_NE(s.find("total"), std::string::npos);
  EXPECT_NE(s.find("8-bit"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);  // ascii bars present
}

TEST(Report, EnergyComparisonListsClassesAndTerms) {
  const auto cmp = arch::compare_energy(nn::trace_forward(nn::tiny_transformer()),
                                        arch::lt_base(), arch::lt_power_params(), 8);
  const std::string s = eval::render_energy_comparison("t", cmp);
  for (const char* needle : {"attention", "ffn", "other", "total", "modulation",
                             "SRAM data movement", "energy saving"}) {
    EXPECT_NE(s.find(needle), std::string::npos) << needle;
  }
}

TEST(Report, ScoreboardShowsDeltas) {
  const std::string s = eval::render_scoreboard(
      "x", {{"metric-a", 10.0, 11.5, "%"}, {"metric-b", 5.0, 4.0, " W"}}, "footer-note");
  EXPECT_NE(s.find("metric-a"), std::string::npos);
  EXPECT_NE(s.find("+1.50%"), std::string::npos);
  EXPECT_NE(s.find("-1.00 W"), std::string::npos);
  EXPECT_NE(s.find("footer-note"), std::string::npos);
}

TEST(Report, CsvEmission) {
  const std::string csv =
      eval::to_csv({"a", "b"}, {{1.0, 2.0}, {3.5, 4.5}});
  EXPECT_EQ(csv, "a,b\n1,2\n3.5,4.5\n");
}

}  // namespace
