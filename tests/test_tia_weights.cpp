// Tests for the TIA weight compiler: linear segments → per-bit gains.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "converters/quantizer.hpp"
#include "core/tia_weights.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(CompileLinearPiece, WeightsAreBinaryScaledSlope) {
  const LinearPiece piece{-1.0, 1.0, 2.0, 0.5};
  const auto bank = compile_linear_piece(piece, Segment::kMiddle, 4);
  ASSERT_EQ(bank.weights.size(), 4u);
  EXPECT_DOUBLE_EQ(bank.bias, 0.5);
  const double denom = 7.0;
  EXPECT_DOUBLE_EQ(bank.weights[0], 2.0 * 1.0 / denom);
  EXPECT_DOUBLE_EQ(bank.weights[1], 2.0 * 2.0 / denom);
  EXPECT_DOUBLE_EQ(bank.weights[2], 2.0 * 4.0 / denom);
  EXPECT_DOUBLE_EQ(bank.weights[3], -2.0 * 8.0 / denom);  // sign bit
}

TEST(CompileLinearPiece, RejectsBadBits) {
  const LinearPiece piece{};
  EXPECT_THROW((void)compile_linear_piece(piece, Segment::kMiddle, 1), PreconditionError);
}

TEST(SegmentedProgram, BreakpointCodeIsQuantizedK) {
  const auto approx = PiecewiseLinearArccos::paper();
  const SegmentedTiaProgram prog(approx, 8);
  EXPECT_EQ(prog.breakpoint_code(), static_cast<std::int32_t>(std::lround(0.7236 * 127)));
}

TEST(SegmentedProgram, ComparatorSelectsCorrectBank) {
  const SegmentedTiaProgram prog(PiecewiseLinearArccos::paper(), 8);
  const std::int32_t kc = prog.breakpoint_code();
  EXPECT_EQ(prog.select(0), Segment::kMiddle);
  EXPECT_EQ(prog.select(kc), Segment::kMiddle);
  EXPECT_EQ(prog.select(kc + 1), Segment::kPositiveOuter);
  EXPECT_EQ(prog.select(-kc), Segment::kMiddle);
  EXPECT_EQ(prog.select(-kc - 1), Segment::kNegativeOuter);
  EXPECT_EQ(prog.select(127), Segment::kPositiveOuter);
  EXPECT_EQ(prog.select(-127), Segment::kNegativeOuter);
}

TEST(SegmentedProgram, OeConfigMirrorsBank) {
  const SegmentedTiaProgram prog(PiecewiseLinearArccos::paper(), 8);
  for (Segment s :
       {Segment::kNegativeOuter, Segment::kMiddle, Segment::kPositiveOuter}) {
    const auto cfg = prog.oe_config(s);
    const auto& bank = prog.bank(s);
    EXPECT_EQ(cfg.weights, bank.weights);
    EXPECT_DOUBLE_EQ(cfg.bias, bank.bias);
  }
}

TEST(SegmentedProgram, DriveRejectsOutOfRangeCode) {
  const SegmentedTiaProgram prog(PiecewiseLinearArccos::paper(), 8);
  EXPECT_THROW((void)prog.drive_phase(200), PreconditionError);
  EXPECT_THROW((void)prog.drive_phase(-200), PreconditionError);
}

// --- the central property: the analog bit-weight summation equals the
// --- mathematical f(r) for every representable code ------------------------
class ProgramExactness : public ::testing::TestWithParam<int> {};

TEST_P(ProgramExactness, DrivePhaseEqualsPiecewiseFunction) {
  const int bits = GetParam();
  const auto approx = PiecewiseLinearArccos::paper();
  const SegmentedTiaProgram prog(approx, bits);
  const converters::Quantizer q(bits);
  for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
    const double r = q.decode(c);
    // The hardware sums bank weights over set bits; the math evaluates
    // slope·r + intercept of the segment the *comparator* picked (which
    // can differ from the real-valued segment only exactly at the
    // quantized breakpoint, where both pieces agree by continuity).
    const auto& piece = prog.bank(prog.select(c));
    double expect = piece.bias;
    const auto pattern = static_cast<std::uint32_t>(c) & ((1u << bits) - 1u);
    for (int i = 0; i < bits; ++i) {
      if ((pattern >> i) & 1u) expect += piece.weights[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(prog.drive_phase(c), expect, 1e-12) << "code " << c;
    // And the weight-sum must equal slope·r + intercept analytically.
    const auto seg = prog.select(c);
    const auto& lp = approx.piece(seg);
    EXPECT_NEAR(prog.drive_phase(c), lp.eval(r), 1e-9) << "code " << c;
  }
}

TEST_P(ProgramExactness, DrivePhaseTracksApproxWithinQuantization) {
  const int bits = GetParam();
  const auto approx = PiecewiseLinearArccos::paper();
  const SegmentedTiaProgram prog(approx, bits);
  const converters::Quantizer q(bits);
  for (std::int32_t c = -q.max_code(); c <= q.max_code(); ++c) {
    const double r = q.decode(c);
    // approx.eval uses the real-valued breakpoint; the program uses the
    // quantized comparator threshold.  They agree everywhere except in a
    // half-LSB sliver around ±k where the two linear pieces are within
    // their continuity gap of each other.
    EXPECT_NEAR(prog.drive_phase(c), approx.eval(r), 3.1 * q.step()) << "code " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(BitWidths, ProgramExactness, ::testing::Values(4, 6, 8, 10));

}  // namespace
