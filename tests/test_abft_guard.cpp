// Tests for the ABFT checksum guard on the ptc GEMM path: tolerance
// bands, checksum-lane event contract, bit-identity of the guarded data
// path, zero false positives on clean hardware, and detection of
// corrupted prepared operands (the PhotonicBackend cache-repair story).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "nn/backend.hpp"
#include "ptc/abft.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

void expect_events_equal(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(GuardTolerance, DeterministicBandScalesWithProblemSize) {
  GuardConfig cfg;
  cfg.noise_sigma = 0.0;
  const double base = guard_tolerance(cfg, 64, 8, 64.0);
  EXPECT_GT(base, 0.0);
  // Linear in k, fan+1 and mag.
  EXPECT_DOUBLE_EQ(guard_tolerance(cfg, 128, 8, 64.0), 2.0 * base);
  EXPECT_DOUBLE_EQ(guard_tolerance(cfg, 64, 17, 64.0), 2.0 * base);
  EXPECT_DOUBLE_EQ(guard_tolerance(cfg, 64, 8, 128.0), 2.0 * base);
  // mag below 1 clamps to 1 (absolute floor for near-zero dots).
  EXPECT_DOUBLE_EQ(guard_tolerance(cfg, 64, 8, 0.25), guard_tolerance(cfg, 64, 8, 1.0));
}

TEST(GuardTolerance, NoiseTermAddsInQuadratureFan) {
  GuardConfig cfg;
  cfg.noise_sigma = 0.01;
  cfg.noise_zscore = 8.0;
  cfg.fp_slack = 0.0;  // isolate the statistical half
  const double band = guard_tolerance(cfg, 64, 8, 64.0);
  EXPECT_DOUBLE_EQ(band, 8.0 * 0.01 * std::sqrt(9.0));
}

TEST(GuardTolerance, RejectsNegativeParameters) {
  GuardConfig cfg;
  cfg.noise_sigma = -1.0;
  EXPECT_THROW((void)guard_tolerance(cfg, 8, 8, 1.0), PreconditionError);
}

TEST(CalibrateGuardSigma, DeterministicPathIsExactlyZero) {
  DotEngineConfig dot;  // no ADC readout, no PD noise
  EXPECT_EQ(calibrate_guard_sigma(dot, 256), 0.0);
}

TEST(CalibrateGuardSigma, AdcReadoutContributesQuantizationNoise) {
  DotEngineConfig dot;
  dot.adc_readout = true;
  dot.adc_bits = 8;
  const std::size_t k = 64;
  const double sigma = calibrate_guard_sigma(dot, k);
  // Full scale defaults to k: one LSB is 2k/2^bits, noise step/sqrt(12).
  const double step = 2.0 * static_cast<double>(k) / 256.0;
  EXPECT_NEAR(sigma, step / std::sqrt(12.0), 1e-12);
  // More bits, less noise.
  dot.adc_bits = 12;
  EXPECT_LT(calibrate_guard_sigma(dot, k), sigma);
}

TEST(ChecksumLaneEvents, MatchesDocumentedContract) {
  // One spare A row + one spare B column per tile step: 2k modulations,
  // h+w extra outputs detected/reduced/digitized, zero extra cycles.
  const EventCounter ev = checksum_lane_events(8, 4, 64, 8);
  EXPECT_EQ(ev.modulation_events, 2u * 64u);
  EXPECT_EQ(ev.adc_events, 12u);
  EXPECT_EQ(ev.ddot_ops, 12u * 8u);
  EXPECT_EQ(ev.detection_events, 12u * 8u);
  EXPECT_EQ(ev.macs, 12u * 64u);
  EXPECT_EQ(ev.cycles, 0u);
}

TEST(AbftGuard, GuardedMultiplyIsBitIdenticalToUnguarded) {
  // The tentpole invariant: enabling the guard must not change a single
  // output bit or a single data-path event — the checksum lanes ride a
  // spare row/column and their charge is reported separately.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig plain;
  plain.array_rows = 8;
  plain.array_cols = 4;
  const PhotonicGemm unguarded(*drv, plain);
  GemmConfig guarded_cfg = plain;
  guarded_cfg.guard.enabled = true;
  const PhotonicGemm guarded(*drv, guarded_cfg);

  Rng rng(7);
  const Matrix a = Matrix::random_gaussian(13, 22, rng);
  const Matrix b = Matrix::random_gaussian(22, 9, rng);
  const GemmResult plain_res = unguarded.multiply(a, b);
  const GemmResult guard_res = guarded.multiply(a, b);

  ASSERT_EQ(plain_res.c.size(), guard_res.c.size());
  for (std::size_t i = 0; i < plain_res.c.size(); ++i) {
    EXPECT_EQ(plain_res.c.data()[i], guard_res.c.data()[i]) << "element " << i;
  }
  expect_events_equal(plain_res.events, guard_res.events);

  EXPECT_FALSE(plain_res.guard.enabled);
  EXPECT_TRUE(guard_res.guard.enabled);
  EXPECT_TRUE(guard_res.guard.clean());
  EXPECT_GT(guard_res.guard.tiles_checked, 0u);
  EXPECT_GT(guard_res.guard.checksum_events.modulation_events, 0u);
  // The clean residual is pure fp reassociation, far inside the band.
  EXPECT_LT(guard_res.guard.worst_residual, guard_res.guard.worst_tolerance);
}

TEST(AbftGuard, GuardedPathBitIdenticalAtAnyThreadCount) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig base;
  base.array_rows = 8;
  base.array_cols = 8;
  base.guard.enabled = true;
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(17, 33, rng);
  const Matrix b = Matrix::random_gaussian(33, 19, rng);

  GemmConfig serial_cfg = base;
  serial_cfg.threads = 1;
  const PhotonicGemm serial(*drv, serial_cfg);
  const GemmResult ref = serial.multiply(a, b);
  ASSERT_TRUE(ref.guard.clean());

  for (std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    GemmConfig cfg = base;
    cfg.threads = threads;
    const PhotonicGemm wide(*drv, cfg);
    const GemmResult res = wide.multiply(a, b);
    for (std::size_t i = 0; i < ref.c.size(); ++i) {
      EXPECT_EQ(res.c.data()[i], ref.c.data()[i]) << threads << " threads, element " << i;
    }
    expect_events_equal(res.events, ref.events);
    EXPECT_TRUE(res.guard.clean());
    EXPECT_EQ(res.guard.tiles_checked, ref.guard.tiles_checked);
    EXPECT_DOUBLE_EQ(res.guard.worst_residual, ref.guard.worst_residual);
  }
}

TEST(AbftGuard, PreparedPathMatchesMultiplyBitIdentically) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.guard.enabled = true;
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(11);
  const Matrix a = Matrix::random_gaussian(10, 24, rng);
  const Matrix b = Matrix::random_gaussian(24, 12, rng);

  const GemmResult direct = gemm.multiply(a, b);
  const PreparedOperand pb = gemm.prepare_b(b);
  EXPECT_GT(pb.checksum.size(), 0u);
  EXPECT_EQ(pb.checksum_stripe, cfg.array_cols);
  const GemmResult prepared = gemm.multiply_prepared(a, pb);

  for (std::size_t i = 0; i < direct.c.size(); ++i) {
    EXPECT_EQ(prepared.c.data()[i], direct.c.data()[i]);
  }
  expect_events_equal(prepared.events, direct.events);
  EXPECT_TRUE(prepared.guard.clean());
  EXPECT_EQ(prepared.guard.tiles_checked, direct.guard.tiles_checked);
}

TEST(AbftGuard, GuardedRunRejectsUnguardedOperand) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig plain;
  const PhotonicGemm unguarded(*drv, plain);
  GemmConfig guarded_cfg;
  guarded_cfg.guard.enabled = true;
  const PhotonicGemm guarded(*drv, guarded_cfg);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(4, 8, rng);
  const Matrix b = Matrix::random_gaussian(8, 4, rng);
  // An operand prepared without checksums cannot be verified.
  const PreparedOperand pb = unguarded.prepare_b(b);
  EXPECT_THROW((void)guarded.multiply_prepared(a, pb), PreconditionError);
}

TEST(AbftGuard, ZeroFalsePositivesOverTenThousandCleanTiles) {
  // The acceptance gate: the band must never flag healthy hardware.
  // 8×8 tiles over 80×80 outputs = 100 tiles per product; 101 seeds of
  // varying shape push the verified-tile count past 10k.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.guard.enabled = true;
  const PhotonicGemm gemm(*drv, cfg);
  std::size_t tiles = 0;
  std::size_t mismatched = 0;
  double worst_margin = 0.0;
  for (std::uint64_t seed = 1; tiles < 10000; ++seed) {
    Rng rng(seed);
    // Ragged shapes included: edge tiles exercise the fan-dependent band.
    const std::size_t m = 73 + (seed % 16);
    const std::size_t n = 73 + ((seed * 5) % 16);
    const std::size_t k = 8 + (seed % 9);
    const Matrix a = Matrix::random_gaussian(m, k, rng);
    const Matrix b = Matrix::random_gaussian(k, n, rng);
    const GemmResult res = gemm.multiply(a, b);
    tiles += res.guard.tiles_checked;
    mismatched += res.guard.mismatched_tiles;
    if (res.guard.worst_tolerance > 0.0) {
      worst_margin = std::max(worst_margin, res.guard.worst_residual / res.guard.worst_tolerance);
    }
  }
  EXPECT_GE(tiles, 10000u);
  EXPECT_EQ(mismatched, 0u);
  // Not merely "no false positive" but comfortably so: the observed
  // clean residual stays well under half the band.
  EXPECT_LT(worst_margin, 0.5);
}

TEST(AbftGuard, NoisyReadoutPathStaysCleanWithCalibratedBand) {
  // With ADC readout on, the digitized tile sums differ from the digital
  // references by real quantization noise; calibrate_guard_sigma must
  // widen the band exactly enough to absorb it.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.adc_readout = true;
  cfg.dot.adc_bits = 10;
  cfg.guard.enabled = true;
  cfg.guard.noise_sigma = calibrate_guard_sigma(cfg.dot, 48);
  ASSERT_GT(cfg.guard.noise_sigma, 0.0);
  const PhotonicGemm gemm(*drv, cfg);
  std::size_t mismatched = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const Matrix a = Matrix::random_gaussian(16, 48, rng);
    const Matrix b = Matrix::random_gaussian(48, 16, rng);
    const GemmResult res = gemm.multiply(a, b);
    mismatched += res.guard.mismatched_tiles;
    EXPECT_GT(res.guard.worst_residual, 0.0);  // quantization is visible…
  }
  EXPECT_EQ(mismatched, 0u);  // …but inside the calibrated band
}

TEST(AbftGuard, CorruptedPreparedColumnIsDetectedAndLocalized) {
  // Corrupt one cached encoded column after prepare: the row checksum
  // lanes (whose reference stripes were summed at prepare time) flag
  // exactly the tiles whose column range covers the corrupted column.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 8;
  cfg.guard.enabled = true;
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(21);
  const Matrix a = Matrix::random_gaussian(24, 16, rng);  // 3 row stripes
  const Matrix b = Matrix::random_gaussian(16, 24, rng);  // 3 col stripes

  PreparedOperand pb = gemm.prepare_b(b);
  const std::size_t bad_col = 13;  // column stripe 1
  pb.encoded.row(bad_col)[3] += 0.25;  // one flipped amplitude

  const GemmResult res = gemm.multiply_prepared(a, pb);
  EXPECT_FALSE(res.guard.clean());
  // Tiles are row-major over a 3×3 grid; column stripe 1 owns tile
  // indices {1, 4, 7}, so detection fires at tile 1 and nowhere outside
  // the stripe.
  EXPECT_EQ(res.guard.mismatched_tiles, 3u);
  EXPECT_EQ(res.guard.first_mismatch, 1u);
  // A genuine corruption lands far outside the band, not marginally.
  EXPECT_GT(res.guard.worst_residual, 100.0 * res.guard.worst_tolerance);
}

TEST(AbftGuard, NanInCorruptedOperandIsNeverInBand) {
  // A dead PD can NaN an analog sum; NaN must read as a mismatch (a
  // plain residual > tol comparison would silently pass it).
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.guard.enabled = true;
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(5);
  const Matrix a = Matrix::random_gaussian(8, 12, rng);
  const Matrix b = Matrix::random_gaussian(12, 8, rng);
  PreparedOperand pb = gemm.prepare_b(b);
  pb.encoded.row(2)[0] = std::numeric_limits<double>::quiet_NaN();
  const GemmResult res = gemm.multiply_prepared(a, pb);
  EXPECT_FALSE(res.guard.clean());
  EXPECT_TRUE(std::isnan(res.guard.worst_residual));
}

TEST(AbftGuard, PhotonicBackendSurfacesGuardStats) {
  nn::PhotonicBackend unguarded(core::make_pdac_driver(8), ptc::GemmConfig{});
  EXPECT_EQ(unguarded.guard_stats(), nullptr);

  nn::PhotonicBackend backend(core::make_pdac_driver(8), nn::guarded_gemm_config());
  Rng rng(13);
  const Matrix a = Matrix::random_gaussian(9, 16, rng);
  const Matrix b = Matrix::random_gaussian(16, 9, rng);
  (void)backend.matmul(a, b);
  (void)backend.matmul(a, b);
  const nn::GuardStats* stats = backend.guard_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->products, 2u);
  EXPECT_GT(stats->tiles_checked, 0u);
  EXPECT_EQ(stats->mismatched_tiles, 0u);
  EXPECT_EQ(stats->cache_repairs, 0u);
  EXPECT_GT(stats->checksum_events.macs, 0u);
}

TEST(AbftGuard, PhotonicBackendAutoRepairsCorruptedCacheEntry) {
  // On the immutable driver a guarded mismatch can only mean the cached
  // operand's memory was corrupted after insertion; matmul_cached must
  // detect it, drop the entry, re-prepare and return the clean result.
  nn::PhotonicBackend backend(core::make_pdac_driver(8), nn::guarded_gemm_config());
  Rng rng(17);
  const Matrix a = Matrix::random_gaussian(8, 16, rng);
  const Matrix b = Matrix::random_gaussian(16, 8, rng);
  const nn::WeightHandle w{42, 1};

  const Matrix clean = backend.matmul_cached(a, b, w);

  // Flip a bit in the cached operand behind the backend's back.
  auto pb = backend.cache().lookup(w.id, w.version, 0);
  ASSERT_NE(pb, nullptr);
  const_cast<ptc::PreparedOperand*>(pb.get())->encoded.row(4)[2] += 0.5;

  const Matrix repaired = backend.matmul_cached(a, b, w);
  const nn::GuardStats* stats = backend.guard_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->cache_repairs, 1u);
  EXPECT_GT(stats->mismatched_tiles, 0u);
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(repaired.data()[i], clean.data()[i]) << "element " << i;
  }
  // The repaired entry serves the next product cleanly with no new repair.
  const Matrix again = backend.matmul_cached(a, b, w);
  EXPECT_EQ(backend.guard_stats()->cache_repairs, 1u);
  for (std::size_t i = 0; i < clean.size(); ++i) EXPECT_EQ(again.data()[i], clean.data()[i]);
}

}  // namespace
