// Tests for the transformer op tracer feeding the energy model.
#include <gtest/gtest.h>

#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace {

using namespace pdac::nn;

TEST(ModelConfig, BertBaseShape) {
  const auto c = bert_base(128);
  EXPECT_EQ(c.layers, 12u);
  EXPECT_EQ(c.d_model, 768u);
  EXPECT_EQ(c.heads, 12u);
  EXPECT_EQ(c.d_ff, 3072u);
  EXPECT_EQ(c.seq_len, 128u);
  EXPECT_EQ(c.d_head(), 64u);
}

TEST(ModelConfig, DeitBaseTokens) {
  const auto c = deit_base();
  EXPECT_EQ(c.seq_len, 197u);  // 196 patches + class token
  EXPECT_EQ(c.d_model, 768u);
}

TEST(ModelConfig, MacFormulas) {
  const auto c = bert_base(128);
  // Per layer: QKV 3·s·d² + scores 2·h·s²·dh + O-proj s·d².
  const std::size_t per_layer_attn = 3ull * 128 * 768 * 768 +
                                     2ull * 12 * 128 * 128 * 64 +
                                     1ull * 128 * 768 * 768;
  EXPECT_EQ(c.attention_macs(), 12 * per_layer_attn);
  EXPECT_EQ(c.ffn_macs(), 12ull * 2ull * 128ull * 768ull * 3072ull);
  EXPECT_EQ(c.total_macs(), c.attention_macs() + c.ffn_macs());
}

TEST(Trace, MacsMatchConfigFormulas) {
  for (const auto& cfg : {bert_base(128), deit_base(), tiny_transformer()}) {
    const auto t = trace_forward(cfg);
    EXPECT_EQ(t.macs(OpClass::kAttention), cfg.attention_macs()) << cfg.name;
    EXPECT_EQ(t.macs(OpClass::kFfn), cfg.ffn_macs()) << cfg.name;
    EXPECT_EQ(t.total_macs(), cfg.total_macs()) << cfg.name;
  }
}

TEST(Trace, GemmCountPerLayer) {
  const auto t = trace_forward(bert_base(128));
  // 8 GEMM records per layer (QKV ×3, QKᵀ, AV, O-proj, FFN ×2).
  EXPECT_EQ(t.gemms.size(), 12u * 8u);
  EXPECT_EQ(t.vector_ops.size(), 12u * 4u);
}

TEST(Trace, DynamicOpsCarryNoWeights) {
  const auto t = trace_forward(bert_base(128));
  for (const auto& g : t.gemms) {
    const bool is_dynamic =
        g.label.find("QK^T") != std::string::npos || g.label.find("AV") != std::string::npos;
    EXPECT_EQ(!g.static_weights, is_dynamic) << g.label;
    if (is_dynamic) {
      EXPECT_EQ(g.weight_elements(), 0u) << g.label;
      EXPECT_EQ(g.repeats, 12u) << g.label;  // per-head
    }
  }
}

TEST(Trace, StaticWeightElementCounts) {
  const auto t = trace_forward(bert_base(128));
  std::size_t attn_w = t.weight_elements(OpClass::kAttention);
  std::size_t ffn_w = t.weight_elements(OpClass::kFfn);
  EXPECT_EQ(attn_w, 12u * 4u * 768u * 768u);
  EXPECT_EQ(ffn_w, 12u * 2u * 768u * 3072u);
}

TEST(Trace, ActivationElementsArePerOpInPlusOut) {
  GemmOp op{"t", OpClass::kFfn, 10, 20, 30, true, 2};
  EXPECT_EQ(op.activation_elements(), 2u * (10 * 20 + 10 * 30));
  EXPECT_EQ(op.weight_elements(), 2u * 20u * 30u);
  EXPECT_EQ(op.macs(), 2u * 10u * 20u * 30u);
}

TEST(Trace, FfnMovesMoreWeightPerMacThanAttention) {
  // The structural fact behind the paper's attention-vs-FFN savings gap.
  const auto t = trace_forward(bert_base(128));
  const double attn_ratio =
      static_cast<double>(t.weight_elements(OpClass::kAttention)) /
      static_cast<double>(t.macs(OpClass::kAttention));
  const double ffn_ratio = static_cast<double>(t.weight_elements(OpClass::kFfn)) /
                           static_cast<double>(t.macs(OpClass::kFfn));
  EXPECT_LT(attn_ratio, ffn_ratio);
}

TEST(Trace, OpClassToString) {
  EXPECT_EQ(to_string(OpClass::kAttention), "attention");
  EXPECT_EQ(to_string(OpClass::kFfn), "ffn");
  EXPECT_EQ(to_string(OpClass::kOther), "other");
}

TEST(Trace, TinyTransformerScalesDown) {
  const auto cfg = tiny_transformer(8, 32, 2, 1);
  const auto t = trace_forward(cfg);
  EXPECT_EQ(t.gemms.size(), 8u);
  EXPECT_GT(t.total_macs(), 0u);
  EXPECT_LT(t.total_macs(), bert_base(128).total_macs() / 1000);
}

}  // namespace
