// Tests for the photonic dot-product lane (driver + WDM chunking + DDot).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ptc/dot_engine.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

TEST(DotEngine, FastPathEqualsFullOptics) {
  // The load-bearing equivalence: the algebraic shortcut must match the
  // field-level simulation exactly (the DDot datapath is exact).
  const auto drv = core::make_pdac_driver(8);
  DotEngineConfig fast_cfg, full_cfg;
  full_cfg.use_full_optics = true;
  const PhotonicDotEngine fast(*drv, fast_cfg);
  const PhotonicDotEngine full(*drv, full_cfg);
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const auto x = rng.uniform_vector(37, -1.0, 1.0);  // non-multiple of 8
    const auto y = rng.uniform_vector(37, -1.0, 1.0);
    EXPECT_NEAR(fast.dot(x, y), full.dot(x, y), 1e-10);
  }
}

TEST(DotEngine, EncodeUsesMemoizedDriverOutput) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  for (double r : {-1.0, -0.5, 0.0, 0.25, 0.7236, 1.0}) {
    EXPECT_DOUBLE_EQ(engine.encode(r), drv->encode(r)) << "r=" << r;
  }
}

TEST(DotEngine, DotErrorBoundedByEncoderError) {
  // Both operands carry ≤8.5 % + quantization error, so the product of a
  // pair deviates ≤ ~18 %; averaging over a random vector keeps it lower.
  const auto drv = core::make_pdac_driver(8);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  Rng rng(29);
  const auto x = rng.uniform_vector(256, -1.0, 1.0);
  const auto y = rng.uniform_vector(256, -1.0, 1.0);
  double exact = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) exact += x[i] * y[i];
  const double got = engine.dot(x, y);
  EXPECT_NEAR(got, exact, 0.18 * 256.0 / std::sqrt(12.0));  // loose structural bound
}

TEST(DotEngine, IdealDacDriverIsNearExact) {
  const auto drv = core::make_ideal_dac_driver(10);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  Rng rng(31);
  const auto x = rng.uniform_vector(64, -1.0, 1.0);
  const auto y = rng.uniform_vector(64, -1.0, 1.0);
  double exact = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) exact += x[i] * y[i];
  EXPECT_NEAR(engine.dot(x, y), exact, 0.05);
}

TEST(DotEngine, EventCountsPerChunk) {
  const auto drv = core::make_pdac_driver(8);
  DotEngineConfig cfg;
  cfg.wavelengths = 8;
  const PhotonicDotEngine engine(*drv, cfg);
  Rng rng(37);
  const auto x = rng.uniform_vector(20, -1.0, 1.0);  // 3 chunks: 8+8+4
  const auto y = rng.uniform_vector(20, -1.0, 1.0);
  EventCounter ev;
  (void)engine.dot(x, y, &ev);
  EXPECT_EQ(ev.modulation_events, 40u);
  EXPECT_EQ(ev.detection_events, 3u);
  EXPECT_EQ(ev.ddot_ops, 3u);
  EXPECT_EQ(ev.macs, 20u);
  EXPECT_EQ(ev.cycles, 3u);
  EXPECT_EQ(ev.adc_events, 0u);  // readout disabled by default
}

TEST(DotEngine, AdcReadoutQuantizesResult) {
  const auto drv = core::make_ideal_dac_driver(8);
  DotEngineConfig cfg;
  cfg.adc_readout = true;
  cfg.adc_bits = 4;
  cfg.adc_full_scale = 1.0;
  const PhotonicDotEngine engine(*drv, cfg);
  const std::vector<double> x{0.9};
  const std::vector<double> y{0.9};
  EventCounter ev;
  const double v = engine.dot(x, y, &ev);
  EXPECT_EQ(ev.adc_events, 1u);
  // 4-bit over ±1: steps of 1/7.
  const double code = v * 7.0;
  EXPECT_NEAR(code, std::round(code), 1e-9);
}

TEST(DotEngine, EmptyVectorsGiveZero) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  EXPECT_DOUBLE_EQ(engine.dot({}, {}), 0.0);
}

TEST(DotEngine, RejectsLengthMismatch) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  const std::vector<double> x{1.0};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)engine.dot(x, y), PreconditionError);
}

TEST(DotEngine, RejectsZeroWavelengths) {
  const auto drv = core::make_pdac_driver(8);
  DotEngineConfig cfg;
  cfg.wavelengths = 0;
  EXPECT_THROW((void)PhotonicDotEngine(*drv, cfg), PreconditionError);
}

// --- property: chunking is invariant to the wavelength count ---------------
class ChunkingInvariance : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChunkingInvariance, ResultIndependentOfWavelengths) {
  const auto drv = core::make_pdac_driver(8);
  DotEngineConfig base;
  base.wavelengths = 1;
  DotEngineConfig chunked;
  chunked.wavelengths = GetParam();
  const PhotonicDotEngine ref(*drv, base);
  const PhotonicDotEngine eng(*drv, chunked);
  Rng rng(41);
  const auto x = rng.uniform_vector(50, -1.0, 1.0);
  const auto y = rng.uniform_vector(50, -1.0, 1.0);
  EXPECT_NEAR(eng.dot(x, y), ref.dot(x, y), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Wavelengths, ChunkingInvariance,
                         ::testing::Values(2, 3, 8, 16, 50, 64));

}  // namespace

namespace {

using namespace pdac;
using namespace pdac::ptc;

TEST(DotEngineNoise, NoiselessConfigMatchesDeterministicPath) {
  const auto drv = core::make_ideal_dac_driver(8);
  const PhotonicDotEngine engine(*drv, DotEngineConfig{});
  Rng rng(3);
  const auto x = rng.uniform_vector(24, -1.0, 1.0);
  const auto y = rng.uniform_vector(24, -1.0, 1.0);
  Rng noise_rng(4);
  EXPECT_NEAR(engine.dot_noisy(x, y, noise_rng), engine.dot(x, y), 1e-10);
}

TEST(DotEngineNoise, NoisyPathAppliesAdcReadout) {
  // Regression: dot_noisy used to skip the ADC stage entirely, so noise
  // ablations compared a no-ADC noisy pipeline against an ADC-quantized
  // clean one.  With noise disabled the two paths must now agree exactly,
  // ADC quantization included.
  const auto drv = core::make_ideal_dac_driver(8);
  DotEngineConfig cfg;
  cfg.adc_readout = true;
  cfg.adc_bits = 4;
  cfg.adc_full_scale = 1.0;
  const PhotonicDotEngine engine(*drv, cfg);
  const std::vector<double> x{0.9};
  const std::vector<double> y{0.9};
  Rng noise_rng(9);
  const double noisy = engine.dot_noisy(x, y, noise_rng);
  EXPECT_NEAR(noisy, engine.dot(x, y), 1e-12);
  // The readout sits on a 4-bit grid (steps of 1/7 over ±1).
  const double code = noisy * 7.0;
  EXPECT_NEAR(code, std::round(code), 1e-9);
}

TEST(DotEngineNoise, NoisyPathCountsSameEventsAsClean) {
  const auto drv = core::make_ideal_dac_driver(8);
  DotEngineConfig cfg;
  cfg.wavelengths = 8;
  cfg.adc_readout = true;
  const PhotonicDotEngine engine(*drv, cfg);
  Rng rng(10);
  const auto x = rng.uniform_vector(20, -1.0, 1.0);  // 3 chunks
  const auto y = rng.uniform_vector(20, -1.0, 1.0);
  EventCounter clean_ev, noisy_ev;
  (void)engine.dot(x, y, &clean_ev);
  Rng noise_rng(11);
  (void)engine.dot_noisy(x, y, noise_rng, &noisy_ev);
  EXPECT_EQ(noisy_ev.modulation_events, clean_ev.modulation_events);
  EXPECT_EQ(noisy_ev.detection_events, clean_ev.detection_events);
  EXPECT_EQ(noisy_ev.ddot_ops, clean_ev.ddot_ops);
  EXPECT_EQ(noisy_ev.macs, clean_ev.macs);
  EXPECT_EQ(noisy_ev.adc_events, clean_ev.adc_events);
  EXPECT_EQ(noisy_ev.cycles, clean_ev.cycles);
}

TEST(DotEngineNoise, ThermalNoiseCentersOnCleanValue) {
  const auto drv = core::make_ideal_dac_driver(10);
  DotEngineConfig cfg;
  cfg.pd_noise.enabled = true;
  cfg.pd_noise.thermal_noise_std = 0.02;
  const PhotonicDotEngine engine(*drv, cfg);
  Rng data_rng(5);
  const auto x = data_rng.uniform_vector(16, -1.0, 1.0);
  const auto y = data_rng.uniform_vector(16, -1.0, 1.0);
  const double clean = engine.dot(x, y);
  Rng noise_rng(6);
  stats::Running r;
  for (int t = 0; t < 8000; ++t) r.add(engine.dot_noisy(x, y, noise_rng));
  EXPECT_NEAR(r.mean(), clean, 0.003);
  // Two PDs per chunk, two chunks: variance = 4 * sigma^2.
  EXPECT_NEAR(r.stddev(), 0.02 * 2.0, 0.005);
}

TEST(DotEngineNoise, NoiseGrowsWithChunkCount) {
  const auto drv = core::make_ideal_dac_driver(10);
  DotEngineConfig cfg;
  cfg.pd_noise.enabled = true;
  cfg.pd_noise.thermal_noise_std = 0.02;
  cfg.wavelengths = 8;
  const PhotonicDotEngine engine(*drv, cfg);
  Rng data_rng(7);
  auto measure_std = [&](std::size_t len) {
    const auto x = data_rng.uniform_vector(len, -1.0, 1.0);
    const auto y = data_rng.uniform_vector(len, -1.0, 1.0);
    Rng noise_rng(8);
    stats::Running r;
    for (int t = 0; t < 4000; ++t) r.add(engine.dot_noisy(x, y, noise_rng));
    return r.stddev();
  };
  // 16x the chunks (256 vs 16 elements at 8 lambda) -> 4x the noise std.
  EXPECT_NEAR(measure_std(256) / measure_std(16), 4.0, 0.5);
}

}  // namespace
