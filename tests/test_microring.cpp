// Unit tests for the microring resonator model (WDM mux/demux element).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "photonics/microring.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

MicroringConfig ring_at(double ch, double hwhm = 0.05) {
  MicroringConfig cfg;
  cfg.resonance_channel = ch;
  cfg.hwhm_channels = hwhm;
  return cfg;
}

TEST(Microring, OnResonanceDropsFully) {
  const Microring mrr(ring_at(1.0));
  EXPECT_DOUBLE_EQ(mrr.drop_fraction(1.0), 1.0);
}

TEST(Microring, HalfMaxAtHwhm) {
  const Microring mrr(ring_at(2.0, 0.1));
  EXPECT_NEAR(mrr.drop_fraction(2.1), 0.5, 1e-12);
  EXPECT_NEAR(mrr.drop_fraction(1.9), 0.5, 1e-12);
}

TEST(Microring, FarDetunedPassesThrough) {
  const Microring mrr(ring_at(0.0));
  EXPECT_LT(mrr.drop_fraction(1.0), 0.01);  // one full channel away
}

TEST(Microring, RouteConservesEnergyPerChannel) {
  const Microring mrr(ring_at(1.0));
  WdmField in(3);
  in.set_amplitude(0, Complex{0.8, 0.0});
  in.set_amplitude(1, Complex{0.0, 0.6});
  in.set_amplitude(2, Complex{0.5, 0.5});
  const MrrPorts ports = mrr.route(in);
  for (std::size_t ch = 0; ch < 3; ++ch) {
    const double total = ports.through.intensity(ch) + ports.drop.intensity(ch);
    EXPECT_NEAR(total, in.intensity(ch), 1e-12) << "channel " << ch;
  }
}

TEST(Microring, RouteSeparatesResonantChannel) {
  const Microring mrr(ring_at(1.0));
  WdmField in(2);
  in.set_amplitude(0, Complex{1.0, 0.0});
  in.set_amplitude(1, Complex{1.0, 0.0});
  const MrrPorts ports = mrr.route(in);
  EXPECT_GT(ports.drop.intensity(1), 0.99 * in.intensity(1));   // captured
  EXPECT_GT(ports.through.intensity(0), 0.99 * in.intensity(0)); // passed
}

TEST(Microring, TuneToMovesResonance) {
  Microring mrr(ring_at(0.0));
  mrr.tune_to(3.0);
  EXPECT_DOUBLE_EQ(mrr.resonance(), 3.0);
  EXPECT_DOUBLE_EQ(mrr.drop_fraction(3.0), 1.0);
  EXPECT_LT(mrr.drop_fraction(0.0), 0.001);
}

TEST(Microring, AddToBusInjectsResonantChannel) {
  const Microring mrr(ring_at(0.0));
  WdmField bus(2);
  WdmField add(2);
  add.set_amplitude(0, Complex{0.9, 0.0});
  add.set_amplitude(1, Complex{0.9, 0.0});
  const WdmField out = mrr.add_to_bus(bus, add);
  EXPECT_NEAR(out.amplitude(0).real(), 0.9, 1e-12);   // injected on resonance
  EXPECT_LT(std::abs(out.amplitude(1)), 0.1);          // rejected off resonance
}

TEST(Microring, AddToBusAttenuatesResonantThroughLight) {
  const Microring mrr(ring_at(0.0));
  WdmField bus(1);
  bus.set_amplitude(0, Complex{1.0, 0.0});
  const WdmField out = mrr.add_to_bus(bus, WdmField(1));
  // On-resonance bus light is pulled off the bus by the ring.
  EXPECT_NEAR(std::abs(out.amplitude(0)), 0.0, 1e-12);
}

TEST(Microring, TuningPowerProportionalToShift) {
  MicroringConfig cfg = ring_at(2.5);
  cfg.heater_power_per_channel_shift = units::milliwatts(0.5);
  const Microring mrr(cfg);
  EXPECT_NEAR(mrr.tuning_power(2.0).milliwatts(), 0.25, 1e-12);
  EXPECT_NEAR(mrr.tuning_power(2.5).milliwatts(), 0.0, 1e-12);
  EXPECT_NEAR(mrr.tuning_power(4.5).milliwatts(), 1.0, 1e-12);
}

TEST(Microring, RejectsInvalidConfig) {
  MicroringConfig bad;
  bad.hwhm_channels = 0.0;
  EXPECT_THROW(Microring{bad}, PreconditionError);
}

TEST(Microring, AddToBusRejectsChannelMismatch) {
  const Microring mrr(ring_at(0.0));
  EXPECT_THROW(mrr.add_to_bus(WdmField(2), WdmField(3)), PreconditionError);
}

TEST(Microring, StuckRingIgnoresDetuning) {
  Microring mrr(ring_at(1.0));
  EXPECT_FALSE(mrr.stuck());
  mrr.stick_at(0.25);  // latched heater: drop fraction frozen
  EXPECT_TRUE(mrr.stuck());
  EXPECT_DOUBLE_EQ(mrr.drop_fraction(1.0), 0.25);
  EXPECT_DOUBLE_EQ(mrr.drop_fraction(7.0), 0.25);
  mrr.stick_at(std::nullopt);  // repair
  EXPECT_FALSE(mrr.stuck());
  EXPECT_DOUBLE_EQ(mrr.drop_fraction(1.0), 1.0);
}

TEST(Microring, StickAtRejectsUnphysicalFraction) {
  Microring mrr(ring_at(1.0));
  EXPECT_THROW(mrr.stick_at(1.5), PreconditionError);
  EXPECT_THROW(mrr.stick_at(-0.1), PreconditionError);
}

}  // namespace
