// Tests for the photonic GEMM engine: numerics and event accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "ptc/gemm_engine.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

TEST(PhotonicGemm, IdealDacCloseToReference) {
  const auto drv = core::make_ideal_dac_driver(10);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  Rng rng(1);
  const Matrix a = Matrix::random_gaussian(8, 16, rng);
  const Matrix b = Matrix::random_gaussian(16, 12, rng);
  const GemmResult res = gemm.multiply(a, b);
  const Matrix exact = matmul_reference(a, b);
  const auto err = stats::compare(res.c.data(), exact.data());
  EXPECT_LT(err.rel_frobenius, 0.02);
  EXPECT_GT(err.cosine, 0.999);
}

TEST(PhotonicGemm, PdacCloseToReferenceWithKnownError) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  Rng rng(2);
  const Matrix a = Matrix::random_gaussian(10, 20, rng);
  const Matrix b = Matrix::random_gaussian(20, 10, rng);
  const GemmResult res = gemm.multiply(a, b);
  const Matrix exact = matmul_reference(a, b);
  const auto err = stats::compare(res.c.data(), exact.data());
  EXPECT_LT(err.rel_frobenius, 0.15);
  EXPECT_GT(err.cosine, 0.98);
}

TEST(PhotonicGemm, ScalesRecordedAndApplied) {
  const auto drv = core::make_ideal_dac_driver(10);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  // Large-magnitude operands must be rescaled transparently.
  Matrix a(1, 2, std::vector<double>{100.0, -50.0});
  Matrix b(2, 1, std::vector<double>{2.0, 4.0});
  const GemmResult res = gemm.multiply(a, b);
  EXPECT_DOUBLE_EQ(res.a_scale, 100.0);
  EXPECT_DOUBLE_EQ(res.b_scale, 4.0);
  EXPECT_NEAR(res.c(0, 0), 0.0, 1.5);  // 200 − 200 with quantization slack
}

TEST(PhotonicGemm, ZeroMatrixStaysZero) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  const Matrix a(3, 3, 0.0);
  const Matrix b(3, 3, 0.0);
  const GemmResult res = gemm.multiply(a, b);
  // encode(0) = cos(π/2) leaves a ~1e-17 field residue; squared terms
  // land at ~1e-33 — numerically zero.
  for (double v : res.c.data()) EXPECT_NEAR(v, 0.0, 1e-15);
}

TEST(PhotonicGemm, RejectsBadInnerDims) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  EXPECT_THROW(gemm.multiply(Matrix(2, 3), Matrix(2, 2)), PreconditionError);
}

TEST(PhotonicGemm, EventCountsExactTiling) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 8;
  cfg.dot.wavelengths = 8;
  const PhotonicGemm gemm(*drv, cfg);
  // 16×64×16: 2×2 tiles of 8×8, 8 chunks each.
  const EventCounter ev = gemm.count_events(16, 64, 16);
  EXPECT_EQ(ev.macs, 16u * 64u * 16u);
  EXPECT_EQ(ev.modulation_events, 4u * (8 + 8) * 64u);  // 4 tiles × (h+w)·k
  EXPECT_EQ(ev.ddot_ops, 4u * 64u * 8u);                // tiles × h·w × chunks
  EXPECT_EQ(ev.adc_events, 16u * 16u);
  EXPECT_EQ(ev.cycles, 4u * 8u);
}

TEST(PhotonicGemm, EventCountsHandleRaggedEdges) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 8;
  cfg.dot.wavelengths = 8;
  const PhotonicGemm gemm(*drv, cfg);
  // 9×10×9 → tiles (8+1)×(8+1), chunks = ceil(10/8) = 2.
  const EventCounter ev = gemm.count_events(9, 10, 9);
  EXPECT_EQ(ev.macs, 9u * 10u * 9u);
  // Tiles: (8,8),(8,1),(1,8),(1,1): mods = (16+9+9+2)·10 = 360.
  EXPECT_EQ(ev.modulation_events, 360u);
  EXPECT_EQ(ev.adc_events, 81u);
  EXPECT_EQ(ev.cycles, 4u * 2u);
}

TEST(PhotonicGemm, BroadcastReducesModulationsVsNaive) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  const EventCounter ev = gemm.count_events(64, 64, 64);
  // Naive: 2 modulations per MAC pair; broadcast: (8+8)/64 per MAC.
  EXPECT_LT(ev.modulation_events, 2u * ev.macs / 4u);
}

TEST(PhotonicGemm, MultiplyAttachesEventCounts) {
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});
  Rng rng(5);
  const Matrix a = Matrix::random_gaussian(4, 8, rng);
  const Matrix b = Matrix::random_gaussian(8, 4, rng);
  const GemmResult res = gemm.multiply(a, b);
  const EventCounter expect = gemm.count_events(4, 8, 4);
  EXPECT_EQ(res.events.macs, expect.macs);
  EXPECT_EQ(res.events.modulation_events, expect.modulation_events);
}

void expect_events_equal(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(PhotonicGemm, ExecutedEventsEqualAnalyticCountsAllFields) {
  // The reconciliation contract: multiply() accumulates detection, DDot
  // and MAC events from the dots it actually runs, plus tile-level
  // modulation/ADC/cycle charges — and that total equals count_events()
  // field-for-field, ragged tiles and fenced lanes included.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 8;
  cfg.array_cols = 4;
  cfg.dot.wavelengths = 8;
  cfg.dot.lane_mask = {1, 1, 0, 1, 1, 1, 0, 1};
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(11);
  const Matrix a = Matrix::random_gaussian(13, 22, rng);
  const Matrix b = Matrix::random_gaussian(22, 9, rng);
  const GemmResult res = gemm.multiply(a, b);
  expect_events_equal(res.events, gemm.count_events(13, 22, 9));
}

TEST(PhotonicGemm, UnitArrayDegeneratesToStandaloneDotConvention) {
  // With a 1×1 array there is no broadcast to amortize: the tile
  // contract's (h+w)·k modulations collapse to the standalone dot's 2·k,
  // so GEMM events must equal the per-dot counters summed over every
  // output element.  This is the documented relationship between the two
  // accounting conventions.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 1;
  cfg.array_cols = 1;
  cfg.dot.adc_readout = true;  // dot() only charges ADC when it digitizes
  const PhotonicGemm gemm(*drv, cfg);
  Rng rng(12);
  const Matrix a = Matrix::random_gaussian(5, 17, rng);
  const Matrix b = Matrix::random_gaussian(17, 4, rng);
  const GemmResult res = gemm.multiply(a, b);

  // Sum standalone per-dot counters over every output element (event
  // counts depend only on operand lengths, not values).
  EventCounter per_dot;
  Matrix bt = b.transposed();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      (void)gemm.engine().dot(a.row(i), bt.row(j), &per_dot);
    }
  }
  expect_events_equal(res.events, per_dot);
}

TEST(PhotonicGemm, BroadcastAmortizationRatioVsPerDot) {
  // On an H×W array the tile contract charges (H+W)/(2·H·W) of the
  // modulations a per-dot accounting would: 8×8 tiles amortize 8×.
  const auto drv = core::make_pdac_driver(8);
  const PhotonicGemm gemm(*drv, GemmConfig{});  // 8×8 array
  const EventCounter ev = gemm.count_events(64, 32, 64);
  const std::uint64_t per_dot_convention = 2ull * 32ull * 64ull * 64ull;  // 2k per output
  EXPECT_EQ(ev.modulation_events, per_dot_convention / 8u);
}

TEST(PhotonicGemm, RejectsDegenerateArray) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 0;
  EXPECT_THROW(PhotonicGemm(*drv, cfg), PreconditionError);
}

TEST(EventCounter, AdditionAccumulates) {
  EventCounter a;
  a.macs = 10;
  a.modulation_events = 4;
  EventCounter b;
  b.macs = 5;
  b.adc_events = 2;
  const EventCounter c = a + b;
  EXPECT_EQ(c.macs, 15u);
  EXPECT_EQ(c.modulation_events, 4u);
  EXPECT_EQ(c.adc_events, 2u);
}

}  // namespace
