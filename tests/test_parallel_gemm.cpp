// Property tests for the tile-parallel GEMM execution engine: results
// must be BIT-identical to serial execution at any thread count — for
// random shapes, ragged tiles, fenced-lane masks and the full-optics
// path — and the degraded fault backend must hold the same property.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/lane_bank.hpp"
#include "ptc/gemm_engine.hpp"
#include "ptc/tile_scheduler.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

void expect_bit_identical(const Matrix& got, const Matrix& want, const char* what) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (std::size_t i = 0; i < got.size(); ++i) {
    // EXPECT_EQ on doubles is exact comparison — bit-identity, not closeness.
    EXPECT_EQ(got.data()[i], want.data()[i]) << what << ": element " << i;
  }
}

void expect_same_events(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(TileScheduler, PartitionCoversOutputOnce) {
  const auto tiles = partition_tiles(19, 13, 8, 8);
  std::vector<int> covered(19 * 13, 0);
  for (const Tile& t : tiles) {
    for (std::size_t i = t.row0; i < t.row0 + t.rows; ++i) {
      for (std::size_t j = t.col0; j < t.col0 + t.cols; ++j) covered[i * 13 + j] += 1;
    }
  }
  for (int c : covered) EXPECT_EQ(c, 1);
  // Row-major order, ragged edge tiles of 3 rows / 5 cols.
  EXPECT_EQ(tiles.size(), 3u * 2u);
  EXPECT_EQ(tiles.back().rows, 3u);
  EXPECT_EQ(tiles.back().cols, 5u);
}

TEST(TileScheduler, EmptyOutputsYieldNoTiles) {
  EXPECT_TRUE(partition_tiles(0, 5, 8, 8).empty());
  EXPECT_TRUE(partition_tiles(5, 0, 8, 8).empty());
}

TEST(ParallelGemm, BitIdenticalToSerialRandomShapes) {
  const auto drv = core::make_pdac_driver(8);
  Rng rng(101);
  for (int trial = 0; trial < 8; ++trial) {
    const auto m = static_cast<std::size_t>(rng.integer(1, 30));
    const auto k = static_cast<std::size_t>(rng.integer(1, 40));
    const auto n = static_cast<std::size_t>(rng.integer(1, 30));
    const Matrix a = Matrix::random_gaussian(m, k, rng);
    const Matrix b = Matrix::random_gaussian(k, n, rng);

    GemmConfig serial_cfg;
    serial_cfg.threads = 1;
    GemmConfig par_cfg;
    par_cfg.threads = 4;
    const PhotonicGemm serial(*drv, serial_cfg);
    const PhotonicGemm parallel(*drv, par_cfg);
    const GemmResult rs = serial.multiply(a, b);
    const GemmResult rp = parallel.multiply(a, b);
    expect_bit_identical(rp.c, rs.c, "random shape");
    expect_same_events(rp.events, rs.events);
    EXPECT_EQ(rp.a_scale, rs.a_scale);
    EXPECT_EQ(rp.b_scale, rs.b_scale);
  }
}

TEST(ParallelGemm, BitIdenticalAcrossThreadCounts) {
  const auto drv = core::make_ideal_dac_driver(8);
  Rng rng(202);
  const Matrix a = Matrix::random_gaussian(17, 23, rng);
  const Matrix b = Matrix::random_gaussian(23, 9, rng);
  GemmConfig cfg;
  cfg.threads = 1;
  const GemmResult base = PhotonicGemm(*drv, cfg).multiply(a, b);
  for (std::size_t threads : {std::size_t{2}, std::size_t{3}, std::size_t{7}, std::size_t{16}}) {
    cfg.threads = threads;
    const GemmResult r = PhotonicGemm(*drv, cfg).multiply(a, b);
    expect_bit_identical(r.c, base.c, "thread count");
    expect_same_events(r.events, base.events);
  }
}

TEST(ParallelGemm, ThreadCountOneMatchesDefaultConfig) {
  // GemmConfig{} defaults to serial; an explicit threads = 1 pool must be
  // exactly the same engine.
  const auto drv = core::make_pdac_driver(8);
  Rng rng(303);
  const Matrix a = Matrix::random_gaussian(8, 8, rng);
  const Matrix b = Matrix::random_gaussian(8, 8, rng);
  GemmConfig explicit_cfg;
  explicit_cfg.threads = 1;
  const GemmResult d = PhotonicGemm(*drv, GemmConfig{}).multiply(a, b);
  const GemmResult e = PhotonicGemm(*drv, explicit_cfg).multiply(a, b);
  expect_bit_identical(e.c, d.c, "threads=1");
  expect_same_events(e.events, d.events);
}

TEST(ParallelGemm, BitIdenticalWithRaggedTilesAndFencedLanes) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.array_rows = 4;
  cfg.array_cols = 8;
  cfg.dot.wavelengths = 8;
  cfg.dot.lane_mask = {1, 0, 1, 1, 0, 1, 1, 1};  // two dead lanes
  Rng rng(404);
  const Matrix a = Matrix::random_gaussian(13, 21, rng);  // ragged in every axis
  const Matrix b = Matrix::random_gaussian(21, 11, rng);
  GemmConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  cfg.threads = 5;
  const GemmResult rs = PhotonicGemm(*drv, serial_cfg).multiply(a, b);
  const GemmResult rp = PhotonicGemm(*drv, cfg).multiply(a, b);
  expect_bit_identical(rp.c, rs.c, "fenced lanes");
  expect_same_events(rp.events, rs.events);
}

TEST(ParallelGemm, BitIdenticalFullOpticsPath) {
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.dot.adc_bits = 8;
  Rng rng(505);
  const Matrix a = Matrix::random_gaussian(10, 19, rng);
  const Matrix b = Matrix::random_gaussian(19, 12, rng);
  GemmConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  cfg.threads = 3;
  const GemmResult rs = PhotonicGemm(*drv, serial_cfg).multiply(a, b);
  const GemmResult rp = PhotonicGemm(*drv, cfg).multiply(a, b);
  expect_bit_identical(rp.c, rs.c, "full optics");
  expect_same_events(rp.events, rs.events);
}

TEST(ParallelGemm, DegradedBackendBitIdenticalToSerial) {
  faults::LaneBankConfig bank_cfg;
  bank_cfg.wavelengths = 8;
  bank_cfg.variation.seed = 7;
  faults::LaneBank bank(bank_cfg);
  faults::production_trim(bank);
  bank.lane(0, 2).fenced = true;  // kill one channel on the x rail
  bank.lane(1, 5).fenced = true;  // and another on the y rail

  faults::DegradedBackendConfig serial_cfg;
  serial_cfg.threads = 1;
  faults::DegradedBackendConfig par_cfg;
  par_cfg.threads = 4;
  faults::DegradedBackend serial(bank, serial_cfg);
  faults::DegradedBackend parallel(bank, par_cfg);

  Rng rng(606);
  const Matrix a = Matrix::random_gaussian(11, 26, rng);
  const Matrix b = Matrix::random_gaussian(26, 7, rng);
  const Matrix cs = serial.matmul(a, b);
  const Matrix cp = parallel.matmul(a, b);
  expect_bit_identical(cp, cs, "degraded backend");
  expect_same_events(parallel.events(), serial.events());
}

}  // namespace
