// Tests for the continuous-batching serving engine over a guarded
// backend pool (DESIGN.md §14): deterministic workloads, per-request
// bit-identity to solo decode at fault rate 0, terminal verdicts under
// fault storms, bounded-queue and deadline shedding, guard-aware
// placement, the re-trim budget, and exact reconciliation of a shared
// HealthMonitor under concurrent multi-backend use (the TSan target).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace {

using namespace pdac;

faults::LaneBankConfig serve_bank_config(std::uint64_t seed = 7) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

serve::BackendPoolConfig serve_pool_config(std::size_t backends) {
  serve::BackendPoolConfig cfg;
  cfg.backends = backends;
  cfg.bank = serve_bank_config();
  cfg.guarded.array_rows = 8;
  cfg.guarded.array_cols = 8;
  return cfg;
}

serve::WorkloadConfig small_workload(std::size_t requests, std::size_t d_model = 16) {
  serve::WorkloadConfig wl;
  wl.requests = requests;
  wl.mean_interarrival = 16.0;
  wl.d_model = d_model;
  wl.models = 2;
  wl.prompt_min = 2;
  wl.prompt_max = 8;
  wl.decode_min = 2;
  wl.decode_max = 6;
  wl.seed = 91;
  return wl;
}

std::vector<nn::Linear> make_models(std::size_t count, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Linear> models;
  models.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    models.emplace_back(d, d);
    models.back().init_random(rng);
  }
  return models;
}

/// Per-lane discrete-fault storm (no global drift processes).
faults::FaultSchedule storm_schedule(std::size_t lanes, double rate, std::uint64_t seed) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = lanes;
  cfg.bits = 8;
  cfg.horizon_steps = 128;
  cfg.hard_fault_rate = 0.5 * rate;
  cfg.drift_fault_rate = rate;
  cfg.seed = seed;
  return faults::generate_fault_schedule(cfg);
}

void expect_all_terminal(const serve::ServingReport& rep, std::size_t submitted) {
  EXPECT_TRUE(rep.reconciled(submitted));
  for (const serve::RequestRecord& rec : rep.records) {
    EXPECT_NE(rec.verdict, serve::Verdict::kPending);
    if (rec.verdict == serve::Verdict::kShed) {
      EXPECT_NE(rec.shed_reason, serve::ShedReason::kNone);
    }
  }
}

TEST(Serving, WorkloadIsDeterministicSortedAndUnitNormalized) {
  const serve::WorkloadConfig wl = small_workload(24);
  const auto first = serve::generate_workload(wl);
  const auto second = serve::generate_workload(wl);
  ASSERT_EQ(first.size(), 24u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].arrival, second[i].arrival);
    EXPECT_EQ(first[i].model, second[i].model);
    EXPECT_EQ(first[i].decode_tokens, second[i].decode_tokens);
    EXPECT_EQ(first[i].activation, second[i].activation);
    if (i > 0) {
      EXPECT_GE(first[i].arrival, first[i - 1].arrival);
    }
    double peak = 0.0;
    for (const double v : first[i].activation) peak = std::max(peak, std::abs(v));
    EXPECT_EQ(peak, 1.0);  // exactly unit max-abs: the scale contract
  }
}

TEST(Serving, DeadlinesScaleWithDecodeLength) {
  serve::WorkloadConfig wl = small_workload(16);
  wl.deadline_slack = 2.0;
  wl.nominal_token_cycles = 10;
  for (const serve::Request& r : serve::generate_workload(wl)) {
    EXPECT_EQ(r.deadline, r.arrival + 2 * 10 * r.decode_tokens);
  }
}

TEST(Serving, InterarrivalGapIsFiniteAtTheUniformUpperBound) {
  // std::uniform_real_distribution may return its upper bound; the raw
  // formula −mean·log(1−u) then yields +inf and the uint64 cast of the
  // arrival clock is UB.  The clamp caps that draw at a large finite
  // gap and leaves every other draw bit-identical to the raw formula.
  const double worst = serve::interarrival_gap(64.0, 1.0);
  EXPECT_TRUE(std::isfinite(worst));
  EXPECT_GT(worst, 0.0);
  EXPECT_EQ(serve::interarrival_gap(64.0, 0.0), 0.0);
  EXPECT_EQ(serve::interarrival_gap(10.0, 0.5), -10.0 * std::log(0.5));
  EXPECT_EQ(serve::interarrival_gap(10.0, 0.875), -10.0 * std::log(1.0 - 0.875));
  // The clamped gap still dominates every in-range draw (monotonicity).
  EXPECT_GE(worst, serve::interarrival_gap(64.0, 0.999999));
}

TEST(Serving, TightDeadlineAtTimeZeroStaysADeadline) {
  // Regression: deadline 0 used to be the no-deadline sentinel, so a
  // t=0 arrival whose sub-cycle span truncated to 0 silently became
  // deadline-free and was served at leisure.  Now the sentinel is
  // Request::kNoDeadline and granted deadlines round *up*.
  serve::WorkloadConfig wl = small_workload(16);
  wl.mean_interarrival = 0.25;    // burst at t≈0, several arrivals at 0
  wl.deadline_slack = 0.001;      // sub-cycle spans: ceil must kick in
  wl.nominal_token_cycles = 1;
  const auto reqs = serve::generate_workload(wl);
  ASSERT_EQ(reqs.front().arrival, 0u);  // the colliding case is present
  for (const serve::Request& r : reqs) {
    EXPECT_TRUE(r.has_deadline());
    EXPECT_GT(r.deadline, r.arrival);  // at least one cycle of slack
  }

  // End to end: impossible deadlines must shed (or finish late) — never
  // complete on time as if no deadline existed.
  auto models = make_models(2, wl.d_model, 17);
  serve::BackendPool pool(serve_pool_config(2));
  serve::ServingEngine engine(pool, models, {});
  const serve::ServingReport rep = engine.run(reqs);
  expect_all_terminal(rep, reqs.size());
  for (const serve::RequestRecord& rec : rep.records) {
    if (rec.verdict == serve::Verdict::kCompleted) {
      EXPECT_TRUE(rec.late);
    }
  }
}

TEST(Serving, AllFencedPoolStallsPlacementAndFailsExplicitly) {
  // Degenerate placement: every backend scores 0 once its lanes fence.
  // The proportional batch cap divides by best_score, so this pins the
  // explicit stall guard (0/0 → NaN → llround would be UB — the UBSan
  // CI job enforces that it can never come back) and the engine's
  // promise of terminal verdicts from a fully dead pool.
  serve::WorkloadConfig wl = small_workload(8);
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPool pool(serve_pool_config(2));
  for (std::size_t b = 0; b < pool.size(); ++b) {
    faults::FaultScheduleConfig kill;
    kill.lanes = pool.bank(b).lanes();
    kill.bits = 8;
    kill.horizon_steps = 2;
    faults::FaultSchedule sched;
    sched.cfg = kill;
    for (std::size_t lane = 0; lane < kill.lanes; ++lane) {
      faults::FaultEvent ev;
      ev.step = 0;
      ev.lane = lane;
      ev.kind = faults::FaultKind::kStuckMrr;
      ev.magnitude = 0.4;
      sched.events.push_back(ev);
    }
    pool.attach_storm(b, sched, 1);
  }

  serve::ServingEngine engine(pool, models, {});
  const serve::ServingReport rep = engine.run(reqs);
  expect_all_terminal(rep, reqs.size());
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_GT(rep.failed, 0u);
  for (std::size_t b = 0; b < pool.size(); ++b) {
    EXPECT_EQ(pool.health_score(b), 0.0);  // the degenerate case really hit
  }
}

TEST(Serving, PercentileIsNearestRankWithInterpolation) {
  EXPECT_EQ(serve::percentile({}, 50.0), 0.0);
  EXPECT_EQ(serve::percentile({7}, 99.0), 7.0);
  EXPECT_EQ(serve::percentile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_EQ(serve::percentile({1, 2, 3, 4}, 100.0), 4.0);
  EXPECT_EQ(serve::percentile({4, 3, 2, 1}, 50.0), 2.5);
}

TEST(Serving, CleanPoolBitIdenticalToSoloReferenceAndAllComplete) {
  // The tentpole gate: continuous batching across a pool must be
  // numerically invisible.  Every request completes and every token
  // digest matches a solo replay on one identically-fabricated backend.
  const serve::WorkloadConfig wl = small_workload(16);
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPoolConfig pool_cfg = serve_pool_config(2);
  serve::BackendPool pool(pool_cfg);
  serve::ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.max_queue = reqs.size();
  serve::ServingEngine engine(pool, models, cfg);
  const serve::ServingReport rep = engine.run(reqs);

  EXPECT_EQ(rep.completed, reqs.size());
  expect_all_terminal(rep, reqs.size());
  EXPECT_GT(rep.tokens_emitted, 0u);
  EXPECT_EQ(rep.tokens_emitted, rep.goodput_tokens);

  faults::LaneBank ref_bank(pool_cfg.bank);
  faults::production_trim(ref_bank);
  faults::GuardedBackend ref_backend(ref_bank, pool_cfg.guarded);
  const auto ref = serve::run_reference(reqs, models, ref_backend);
  for (std::size_t q = 0; q < reqs.size(); ++q) {
    EXPECT_EQ(rep.records[q].digest, ref[q].digest) << "request " << q;
    EXPECT_EQ(rep.records[q].tokens_done, ref[q].tokens_done);
  }
}

TEST(Serving, RunIsDeterministicAcrossRepeats) {
  const serve::WorkloadConfig wl = small_workload(12);
  const auto reqs = serve::generate_workload(wl);
  auto models_a = make_models(2, wl.d_model, 17);
  auto models_b = make_models(2, wl.d_model, 17);

  serve::BackendPool pool_a(serve_pool_config(2));
  serve::BackendPool pool_b(serve_pool_config(2));
  serve::ServingEngine engine_a(pool_a, models_a, {});
  serve::ServingEngine engine_b(pool_b, models_b, {});
  const serve::ServingReport ra = engine_a.run(reqs);
  const serve::ServingReport rb = engine_b.run(reqs);

  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.token_gaps, rb.token_gaps);
  ASSERT_EQ(ra.records.size(), rb.records.size());
  for (std::size_t q = 0; q < ra.records.size(); ++q) {
    EXPECT_EQ(ra.records[q].digest, rb.records[q].digest);
    EXPECT_EQ(ra.records[q].finished_at, rb.records[q].finished_at);
  }
}

TEST(Serving, StormKeepsTokensFlowingAndEveryVerdictTerminal) {
  // Escalation fires mid-batch on every backend, yet the pool sustains
  // goodput and no request is ever silently dropped.
  serve::WorkloadConfig wl = small_workload(16);
  wl.deadline_slack = 16.0;
  wl.nominal_token_cycles = 16;
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPool pool(serve_pool_config(2));
  for (std::size_t b = 0; b < pool.size(); ++b) {
    pool.attach_storm(b, storm_schedule(pool.bank(b).lanes(), 0.3, 211 + b), 1);
  }
  serve::ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.max_queue = 8;
  serve::ServingEngine engine(pool, models, cfg);
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_GT(rep.goodput_tokens, 0u);
  std::size_t ladder_rungs = 0;
  for (const serve::BackendServeStats& b : rep.backends) {
    ladder_rungs += b.health.retries + b.health.retrims + b.health.fences;
  }
  EXPECT_GT(ladder_rungs, 0u);  // the storm actually exercised recovery
}

TEST(Serving, BoundedQueueShedsOverloadExplicitly) {
  serve::WorkloadConfig wl = small_workload(32);
  wl.mean_interarrival = 0.25;  // burst: everyone arrives at once
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPool pool(serve_pool_config(1));
  serve::ServingConfig cfg;
  cfg.max_batch = 2;
  cfg.max_queue = 4;
  serve::ServingEngine engine(pool, models, cfg);
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_GT(rep.shed, 0u);
  std::size_t queue_sheds = 0;
  for (const serve::RequestRecord& rec : rep.records) {
    if (rec.shed_reason == serve::ShedReason::kQueueFull) ++queue_sheds;
  }
  EXPECT_GT(queue_sheds, 0u);
}

TEST(Serving, HopelessDeadlinesAreShedNotServed) {
  serve::WorkloadConfig wl = small_workload(24);
  wl.deadline_slack = 0.05;  // deadlines no schedule can meet
  wl.nominal_token_cycles = 4;
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPool pool(serve_pool_config(2));
  serve::ServingEngine engine(pool, models, {});
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_GT(rep.shed, 0u);
  std::size_t deadline_sheds = 0;
  for (const serve::RequestRecord& rec : rep.records) {
    if (rec.shed_reason == serve::ShedReason::kDeadlineMissed ||
        rec.shed_reason == serve::ShedReason::kAdmissionDeadline) {
      ++deadline_sheds;
    }
  }
  EXPECT_GT(deadline_sheds, 0u);
}

TEST(Serving, PlacementSteersLoadAwayFromTheFaultingBackend) {
  // Storm only slot 1: its guard-aware health score must fall below
  // slot 0's and the scheduler must route the majority of tokens to the
  // clean backend.
  serve::WorkloadConfig wl = small_workload(24);
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPool pool(serve_pool_config(2));
  pool.attach_storm(1, storm_schedule(pool.bank(1).lanes(), 0.6, 223), 1);
  serve::ServingConfig cfg;
  cfg.max_batch = 4;
  cfg.max_queue = reqs.size();
  serve::ServingEngine engine(pool, models, cfg);
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_GT(rep.goodput_tokens, 0u);
  EXPECT_GT(pool.health_score(0), pool.health_score(1));
  EXPECT_GT(rep.backends[0].tokens, rep.backends[1].tokens);
}

TEST(Serving, ZeroRetrimBudgetClampsTheLadder) {
  serve::WorkloadConfig wl = small_workload(12);
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPoolConfig pool_cfg = serve_pool_config(2);
  pool_cfg.retrim_budget = 0;
  serve::BackendPool pool(pool_cfg);
  for (std::size_t b = 0; b < pool.size(); ++b) {
    EXPECT_TRUE(pool.throttled(b));
    EXPECT_EQ(pool.retrims_left(b), 0u);
    pool.attach_storm(b, storm_schedule(pool.bank(b).lanes(), 0.4, 307 + b), 1);
  }
  serve::ServingEngine engine(pool, models, {});
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_EQ(rep.throttled_products, rep.products);  // every product clamped
  for (const serve::BackendServeStats& b : rep.backends) {
    EXPECT_EQ(b.health.retrims, 0u);  // the budget held
  }
}

TEST(Serving, OfflinePoolFailsEveryRequestExplicitly) {
  serve::WorkloadConfig wl = small_workload(8);
  const auto reqs = serve::generate_workload(wl);
  auto models = make_models(2, wl.d_model, 17);

  serve::BackendPoolConfig pool_cfg = serve_pool_config(1);
  serve::BackendPool pool(pool_cfg);
  // Fence every lane before serving starts: a pool with zero usable
  // channels must still hand out terminal verdicts, not hang.
  faults::FaultScheduleConfig kill;
  kill.lanes = pool.bank(0).lanes();
  kill.bits = 8;
  kill.horizon_steps = 2;
  faults::FaultSchedule sched;
  sched.cfg = kill;
  for (std::size_t lane = 0; lane < kill.lanes; ++lane) {
    faults::FaultEvent ev;
    ev.step = 0;
    ev.lane = lane;
    ev.kind = faults::FaultKind::kStuckMrr;
    ev.magnitude = 0.4;
    sched.events.push_back(ev);
  }
  pool.attach_storm(0, sched, 1);

  serve::ServingEngine engine(pool, models, {});
  const serve::ServingReport rep = engine.run(reqs);

  expect_all_terminal(rep, reqs.size());
  EXPECT_EQ(rep.completed, 0u);
  EXPECT_GT(rep.failed, 0u);
}

TEST(HealthMonitor, ConcurrentBackendsSharingAMonitorReconcileExactly) {
  // The TSan gate: N threads each drive their own guarded backend (own
  // bank, own fault timeline) into one shared HealthMonitor.  Every
  // counter — products, tiles, ladder rungs, probes, per-lane blame,
  // both event counters — must equal the sum of N serial runs exactly;
  // synchronization may reorder records but never lose or tear one.
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kProducts = 4;

  const auto drive = [](faults::GuardedBackend& backend, faults::LaneBank& bank,
                        std::uint64_t tid) {
    // A pre-product stuck MRR per thread forces detections and ladder
    // rungs, so the reconciliation covers the recovery paths too.
    faults::FaultScheduleConfig cfg;
    cfg.lanes = bank.lanes();
    cfg.bits = 8;
    cfg.horizon_steps = 4;
    faults::FaultSchedule sched;
    sched.cfg = cfg;
    faults::FaultEvent ev;
    ev.step = 1;
    ev.lane = tid % bank.lanes();
    ev.kind = faults::FaultKind::kStuckMrr;
    ev.magnitude = 0.4;
    sched.events.push_back(ev);
    faults::FaultInjector injector(bank, sched);
    injector.advance_to(2);

    Rng rng(100 + tid);
    for (std::size_t p = 0; p < kProducts; ++p) {
      const Matrix a = Matrix::random_gaussian(6, 12, rng, 0.0, 1.0);
      const Matrix b = Matrix::random_gaussian(12, 7, rng, 0.0, 1.0);
      (void)backend.matmul(a, b);
    }
  };

  // Serial baseline: per-thread monitors, summed.
  faults::HealthSnapshot want;
  for (std::size_t t = 0; t < kThreads; ++t) {
    faults::LaneBank bank(serve_bank_config(50 + t));
    faults::production_trim(bank);
    faults::GuardedBackend backend(bank);
    drive(backend, bank, t);
    const faults::HealthSnapshot s = backend.monitor().snapshot();
    want.products += s.products;
    want.tiles_checked += s.tiles_checked;
    want.mismatched_tiles += s.mismatched_tiles;
    want.sec_corrections += s.sec_corrections;
    want.detections += s.detections;
    want.retries += s.retries;
    want.retrims += s.retrims;
    want.fences += s.fences;
    want.unrecovered += s.unrecovered;
    want.probe_events += s.probe_events;
    want.detection_latency_tiles += s.detection_latency_tiles;
    want.checksum_events += s.checksum_events;
    want.retry_events += s.retry_events;
    if (want.lane_mismatches.size() < s.lane_mismatches.size()) {
      want.lane_mismatches.resize(s.lane_mismatches.size(), 0);
    }
    for (std::size_t l = 0; l < s.lane_mismatches.size(); ++l) {
      want.lane_mismatches[l] += s.lane_mismatches[l];
    }
  }

  // Concurrent run into one shared monitor, with an action listener
  // counting rungs from the recording threads.
  faults::HealthMonitor shared;
  std::atomic<std::size_t> listener_rungs{0};
  shared.set_action_listener([&](faults::GuardAction) { ++listener_rungs; });

  std::vector<std::unique_ptr<faults::LaneBank>> banks;
  std::vector<std::unique_ptr<faults::GuardedBackend>> backends;
  for (std::size_t t = 0; t < kThreads; ++t) {
    banks.push_back(std::make_unique<faults::LaneBank>(serve_bank_config(50 + t)));
    faults::production_trim(*banks.back());
    backends.push_back(
        std::make_unique<faults::GuardedBackend>(*banks.back(), faults::GuardedBackendConfig{},
                                                 &shared));
  }
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { drive(*backends[t], *banks[t], t); });
  }
  for (std::thread& th : threads) th.join();

  const faults::HealthSnapshot got = shared.snapshot();
  EXPECT_EQ(got.products, want.products);
  EXPECT_EQ(got.tiles_checked, want.tiles_checked);
  EXPECT_EQ(got.mismatched_tiles, want.mismatched_tiles);
  EXPECT_EQ(got.sec_corrections, want.sec_corrections);
  EXPECT_EQ(got.detections, want.detections);
  EXPECT_EQ(got.retries, want.retries);
  EXPECT_EQ(got.retrims, want.retrims);
  EXPECT_EQ(got.fences, want.fences);
  EXPECT_EQ(got.unrecovered, want.unrecovered);
  EXPECT_EQ(got.probe_events, want.probe_events);
  EXPECT_EQ(got.detection_latency_tiles, want.detection_latency_tiles);
  EXPECT_EQ(got.checksum_events.adc_events, want.checksum_events.adc_events);
  EXPECT_EQ(got.checksum_events.ddot_ops, want.checksum_events.ddot_ops);
  EXPECT_EQ(got.checksum_events.macs, want.checksum_events.macs);
  EXPECT_EQ(got.retry_events.adc_events, want.retry_events.adc_events);
  EXPECT_EQ(got.retry_events.macs, want.retry_events.macs);
  EXPECT_EQ(got.total_lane_mismatches(), want.total_lane_mismatches());
  ASSERT_EQ(got.lane_mismatches.size(), want.lane_mismatches.size());
  for (std::size_t l = 0; l < got.lane_mismatches.size(); ++l) {
    EXPECT_EQ(got.lane_mismatches[l], want.lane_mismatches[l]) << "lane " << l;
  }
  EXPECT_EQ(listener_rungs.load(),
            want.retries + want.retrims + want.fences + want.unrecovered);
}

TEST(HealthMonitor, ResetClearsEveryCounter) {
  faults::HealthMonitor monitor;
  monitor.record_action(faults::GuardAction::kRetry);
  monitor.record_implicated_lane(3);
  monitor.record_probe_events(7);
  monitor.reset();
  const faults::HealthSnapshot snap = monitor.snapshot();
  EXPECT_EQ(snap.retries, 0u);
  EXPECT_EQ(snap.probe_events, 0u);
  EXPECT_TRUE(snap.lane_mismatches.empty());
}

}  // namespace
