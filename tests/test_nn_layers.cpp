// Tests for the transformer layers over pluggable GEMM backends.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "nn/attention.hpp"
#include "nn/backend.hpp"
#include "nn/encoder_layer.hpp"
#include "nn/linear.hpp"
#include "nn/transformer.hpp"

namespace {

using namespace pdac;
using namespace pdac::nn;

TEST(Linear, ForwardMatchesManualProduct) {
  Linear lin(3, 2);
  lin.weight()(0, 0) = 1.0;
  lin.weight()(1, 1) = 2.0;
  lin.weight()(2, 0) = -1.0;
  lin.bias() = {0.5, -0.5};
  Matrix x(1, 3, std::vector<double>{1.0, 2.0, 3.0});
  ReferenceBackend ref;
  const Matrix y = lin.forward(x, ref);
  EXPECT_DOUBLE_EQ(y(0, 0), 1.0 - 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(y(0, 1), 4.0 - 0.5);
}

TEST(Linear, RejectsWidthMismatch) {
  Linear lin(3, 2);
  Matrix x(1, 4);
  ReferenceBackend ref;
  EXPECT_THROW(lin.forward(x, ref), PreconditionError);
}

TEST(Linear, InitRandomIsBoundedXavier) {
  Linear lin(100, 100);
  Rng rng(3);
  lin.init_random(rng);
  const double bound = std::sqrt(6.0 / 200.0);
  for (double w : lin.weight().data()) {
    EXPECT_GE(w, -bound);
    EXPECT_LE(w, bound);
  }
}

TEST(Attention, OutputShapeMatchesInput) {
  MultiHeadAttention mha(32, 4);
  Rng rng(4);
  mha.init_random(rng);
  Matrix x = Matrix::random_gaussian(6, 32, rng);
  ReferenceBackend ref;
  const Matrix y = mha.forward(x, ref);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 32u);
}

TEST(Attention, RejectsIndivisibleHeads) {
  EXPECT_THROW(MultiHeadAttention(30, 4), PreconditionError);
}

TEST(Attention, UniformValueRowsPassThroughSoftmax) {
  // If V projection makes all rows identical, attention-weighted output
  // equals that row regardless of the scores: checks the softmax·V path.
  MultiHeadAttention mha(8, 1);
  Rng rng(5);
  mha.init_random(rng);
  // Force V = identity-ish and equal inputs.
  Matrix x(4, 8, 0.0);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 8; ++c) x(r, c) = static_cast<double>(c) * 0.1;
  }
  ReferenceBackend ref;
  const Matrix y = mha.forward(x, ref);
  // All token outputs identical because all inputs are identical.
  for (std::size_t r = 1; r < 4; ++r) {
    for (std::size_t c = 0; c < 8; ++c) EXPECT_NEAR(y(r, c), y(0, c), 1e-10);
  }
}

TEST(Attention, PhotonicBackendTracksReference) {
  MultiHeadAttention mha(16, 2);
  Rng rng(6);
  mha.init_random(rng);
  Matrix x = Matrix::random_gaussian(5, 16, rng, 0.0, 0.5);
  ReferenceBackend ref;
  auto photonic = make_photonic_pdac_backend(8);
  const Matrix exact = mha.forward(x, ref);
  const Matrix approx = mha.forward(x, *photonic);
  const auto err = stats::compare(approx.data(), exact.data());
  EXPECT_GT(err.cosine, 0.97);
}

TEST(EncoderLayer, ShapePreservedAndFinite) {
  EncoderLayer layer(32, 4, 64);
  Rng rng(7);
  layer.init_random(rng);
  Matrix x = Matrix::random_gaussian(6, 32, rng);
  ReferenceBackend ref;
  const Matrix y = layer.forward(x, ref);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 32u);
  for (double v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(EncoderLayer, ResidualPathDominatesForZeroWeights) {
  // With all-zero weights the block reduces to x + biases ≈ x.
  EncoderLayer layer(8, 2, 16);
  Matrix x(2, 8, std::vector<double>(16, 1.0));
  ReferenceBackend ref;
  const Matrix y = layer.forward(x, ref);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y.data()[i], 1.0, 1e-9);
}

TEST(Transformer, DeterministicForSameSeed) {
  const auto cfg = tiny_transformer(4, 16, 2, 2);
  Transformer a(cfg), b(cfg);
  a.init_random(9);
  b.init_random(9);
  const Matrix in = a.random_input(1);
  ReferenceBackend ra, rb;
  const Matrix ya = a.forward(in, ra);
  const Matrix yb = b.forward(in, rb);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_DOUBLE_EQ(ya.data()[i], yb.data()[i]);
}

TEST(Transformer, DifferentSeedsDiffer) {
  const auto cfg = tiny_transformer(4, 16, 2, 1);
  Transformer a(cfg), b(cfg);
  a.init_random(1);
  b.init_random(2);
  const Matrix in = a.random_input(1);
  ReferenceBackend ra, rb;
  const Matrix ya = a.forward(in, ra);
  const Matrix yb = b.forward(in, rb);
  double diff = 0.0;
  for (std::size_t i = 0; i < ya.size(); ++i) diff += std::abs(ya.data()[i] - yb.data()[i]);
  EXPECT_GT(diff, 1e-3);
}

TEST(Transformer, LayerCountMatchesConfig) {
  const auto cfg = tiny_transformer(4, 16, 2, 3);
  Transformer t(cfg);
  EXPECT_EQ(t.layer_count(), 3u);
}

TEST(Backends, ReferenceCountsMacs) {
  ReferenceBackend ref;
  (void)ref.matmul(Matrix(2, 3), Matrix(3, 4));
  EXPECT_EQ(ref.events().macs, 24u);
  ref.reset_events();
  EXPECT_EQ(ref.events().macs, 0u);
}

TEST(Backends, PhotonicAccumulatesEventsAcrossCalls) {
  auto backend = make_photonic_pdac_backend(8);
  Rng rng(8);
  const Matrix a = Matrix::random_gaussian(4, 8, rng);
  const Matrix b = Matrix::random_gaussian(8, 4, rng);
  (void)backend->matmul(a, b);
  const auto first = backend->events().modulation_events;
  (void)backend->matmul(a, b);
  EXPECT_EQ(backend->events().modulation_events, 2 * first);
}

TEST(Backends, NamesIdentifyDriver) {
  EXPECT_EQ(make_reference_backend()->name(), "reference");
  EXPECT_EQ(make_photonic_pdac_backend(8)->name(), "photonic/p-dac");
  EXPECT_EQ(make_photonic_ideal_dac_backend(8)->name(), "photonic/ideal-dac");
}

}  // namespace
