// Tests for the per-lane EWMA drift tracker (faults/drift_tracker.hpp):
// the graded signal behind the hysteresis recovery policy (DESIGN.md
// §16).  Pure state-machine tests — classification thresholds, sample
// clamping, the reset-at-recalibration contract, and the cumulative
// telemetry counters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "faults/drift_tracker.hpp"

namespace {

using namespace pdac;
using faults::DriftSnapshot;
using faults::DriftState;
using faults::DriftTracker;
using faults::DriftTrackerConfig;

TEST(DriftTracker, StartsCleanWithZeroLevels) {
  DriftTracker t;
  t.resize(4);
  ASSERT_EQ(t.lanes(), 4u);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(t.level(lane), 0.0);
    EXPECT_EQ(t.state(lane), DriftState::kClean);
  }
  EXPECT_FALSE(t.any_excursion());
  const DriftSnapshot snap = t.snapshot();
  EXPECT_EQ(snap.lanes, 4u);
  EXPECT_EQ(snap.clean, 4u);
  EXPECT_EQ(snap.drifting, 0u);
  EXPECT_EQ(snap.excursions, 0u);
  EXPECT_EQ(snap.worst_level, 0.0);
  EXPECT_EQ(snap.residual_samples, 0u);
  EXPECT_EQ(snap.probe_samples, 0u);
}

TEST(DriftTracker, EwmaFoldsTowardTheSampleAtAlpha) {
  DriftTracker t;  // alpha 0.25
  t.resize(2);
  t.observe_residual({0}, 2.0);
  EXPECT_DOUBLE_EQ(t.level(0), 0.5);   // 0.75·0 + 0.25·2
  EXPECT_EQ(t.level(1), 0.0);          // untouched lane stays clean
  t.observe_residual({0}, 2.0);
  EXPECT_DOUBLE_EQ(t.level(0), 0.75 * 0.5 + 0.25 * 2.0);
  // A sustained constant ratio converges to it: the EWMA is a level
  // estimator, not an integrator.
  for (int i = 0; i < 64; ++i) t.observe_residual({0}, 2.0);
  EXPECT_NEAR(t.level(0), 2.0, 1e-6);
}

TEST(DriftTracker, ClassificationThresholdsAreHalfOpen) {
  // state() reads:  level < drift_level → clean;  level < excursion_level
  // → drifting;  otherwise excursion.  Drive the level to each boundary
  // with alpha = 1 so one observation IS the level.
  DriftTrackerConfig cfg;
  cfg.alpha = 1.0;
  cfg.drift_level = 0.5;
  cfg.excursion_level = 3.0;
  DriftTracker t(cfg);
  t.observe_residual({0}, 0.49999);
  EXPECT_EQ(t.state(0), DriftState::kClean);
  t.observe_residual({0}, 0.5);  // exactly at drift_level: no longer clean
  EXPECT_EQ(t.state(0), DriftState::kDrifting);
  t.observe_residual({0}, 2.999);
  EXPECT_EQ(t.state(0), DriftState::kDrifting);
  t.observe_residual({0}, 3.0);  // exactly at excursion_level: excursion
  EXPECT_EQ(t.state(0), DriftState::kExcursion);
  EXPECT_TRUE(t.any_excursion());
  EXPECT_EQ(t.excursion_lanes(), 1u);
}

TEST(DriftTracker, SamplesClampToCapAndNanIsMaximalEvidence) {
  DriftTracker t;  // sample_cap 64, alpha 0.25
  t.resize(2);
  // A wild-but-finite residual folds the cap, not the raw value …
  t.observe_residual({0}, 1e12);
  EXPECT_DOUBLE_EQ(t.level(0), 0.25 * 64.0);
  // … and NaN (a dead PD can NaN a residual) counts as the cap too —
  // silently dropping it would hide the most broken lanes.
  t.observe_residual({1}, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(t.level(1), 0.25 * 64.0);
  EXPECT_EQ(t.state(1), DriftState::kExcursion);
  // Negative samples clamp at zero instead of pulling the level down.
  DriftTracker neg;
  neg.observe_residual({0}, 5.0);
  const double before = neg.level(0);
  neg.observe_residual({0}, -100.0);
  EXPECT_DOUBLE_EQ(neg.level(0), 0.75 * before);
}

TEST(DriftTracker, ResetClearsLevelsButKeepsSampleTelemetry) {
  DriftTracker t;
  t.observe_residual({0, 1}, 10.0);
  t.observe_probe(2, 4.0);
  ASSERT_GT(t.level(0), 0.0);
  ASSERT_GT(t.level(2), 0.0);
  t.reset();
  for (std::size_t lane = 0; lane < t.lanes(); ++lane) {
    EXPECT_EQ(t.level(lane), 0.0);
    EXPECT_EQ(t.state(lane), DriftState::kClean);
  }
  // The cumulative counters are telemetry (how much evidence ever fed
  // the tracker), not state — recalibration must not erase them.
  const DriftSnapshot snap = t.snapshot();
  EXPECT_EQ(snap.residual_samples, 1u);
  EXPECT_EQ(snap.probe_samples, 1u);
}

TEST(DriftTracker, ResidualLandsOnEveryImplicatedLaneProbeOnOne) {
  DriftTracker t;
  t.resize(4);
  // One residual cannot name the lane: it lands on every implicated one
  // but counts as a single sample.
  t.observe_residual({0, 2, 3}, 4.0);
  EXPECT_DOUBLE_EQ(t.level(0), 1.0);
  EXPECT_EQ(t.level(1), 0.0);
  EXPECT_DOUBLE_EQ(t.level(2), 1.0);
  EXPECT_DOUBLE_EQ(t.level(3), 1.0);
  EXPECT_EQ(t.snapshot().residual_samples, 1u);
  // A probe sample is per-lane evidence.
  t.observe_probe(1, 8.0);
  EXPECT_DOUBLE_EQ(t.level(1), 2.0);
  EXPECT_EQ(t.snapshot().probe_samples, 1u);
}

TEST(DriftTracker, OutOfRangeObservationGrowsTheTracker) {
  DriftTracker t;
  EXPECT_EQ(t.lanes(), 0u);
  t.observe_probe(5, 1.0);
  EXPECT_EQ(t.lanes(), 6u);
  EXPECT_DOUBLE_EQ(t.level(5), 0.25);
  // resize() preserves existing levels and reading past the end is a
  // clean zero, never UB.
  t.resize(8);
  EXPECT_DOUBLE_EQ(t.level(5), 0.25);
  EXPECT_EQ(t.level(7), 0.0);
  EXPECT_EQ(t.level(100), 0.0);
  EXPECT_EQ(t.state(100), DriftState::kClean);
}

TEST(DriftTracker, SnapshotCountsEveryClass) {
  DriftTrackerConfig cfg;
  cfg.alpha = 1.0;
  DriftTracker t(cfg);
  t.resize(3);
  t.observe_residual({1}, 1.0);   // drifting
  t.observe_residual({2}, 10.0);  // excursion
  const DriftSnapshot snap = t.snapshot();
  EXPECT_EQ(snap.clean, 1u);
  EXPECT_EQ(snap.drifting, 1u);
  EXPECT_EQ(snap.excursions, 1u);
  EXPECT_DOUBLE_EQ(snap.worst_level, 10.0);
  EXPECT_EQ(faults::to_string(t.state(0)), "clean");
  EXPECT_EQ(faults::to_string(t.state(1)), "drifting");
  EXPECT_EQ(faults::to_string(t.state(2)), "excursion");
}

TEST(DriftTracker, ConfigPreconditionsAreEnforced) {
  DriftTrackerConfig bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_THROW(DriftTracker{bad_alpha}, PreconditionError);
  DriftTrackerConfig inverted;
  inverted.drift_level = 3.0;
  inverted.excursion_level = 0.5;
  EXPECT_THROW(DriftTracker{inverted}, PreconditionError);
  DriftTrackerConfig short_cap;
  short_cap.sample_cap = 1.0;  // below excursion_level: excursions unreachable
  EXPECT_THROW(DriftTracker{short_cap}, PreconditionError);
}

}  // namespace
