// Unit and property tests for the arccos approximation (paper §III-C):
// the mathematical core of the P-DAC.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "core/arccos_approx.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(ArccosTaylor1, MatchesEq15) {
  EXPECT_DOUBLE_EQ(arccos_taylor1(0.0), math::kPi / 2.0);
  EXPECT_DOUBLE_EQ(arccos_taylor1(1.0), math::kPi / 2.0 - 1.0);
  EXPECT_DOUBLE_EQ(arccos_taylor1(-0.5), math::kPi / 2.0 + 0.5);
}

TEST(ArccosTaylor1, WorstErrorIsPaper15Point9Percent) {
  const double err = std::abs(std::cos(arccos_taylor1(1.0)) - 1.0);
  EXPECT_NEAR(err, 0.159, 0.002);
  const double err_neg = std::abs(std::cos(arccos_taylor1(-1.0)) - (-1.0));
  EXPECT_NEAR(err_neg, 0.159, 0.002);
}

TEST(ArccosTaylor, FirstTermEqualsTaylor1) {
  for (double r : {-0.9, -0.3, 0.0, 0.4, 0.8}) {
    EXPECT_DOUBLE_EQ(arccos_taylor(r, 1), arccos_taylor1(r));
  }
}

TEST(ArccosTaylor, SecondTermMatchesEq14) {
  // Eq. 14: arccos(r) ≈ π/2 − (r + r³/6).
  const double r = 0.5;
  EXPECT_NEAR(arccos_taylor(r, 2), math::kPi / 2.0 - (r + r * r * r / 6.0), 1e-15);
}

TEST(ArccosTaylor, ConvergesToExactInsideUnitDisk) {
  for (double r : {-0.6, -0.2, 0.3, 0.7}) {
    EXPECT_NEAR(arccos_taylor(r, 40), std::acos(r), 1e-9) << "r=" << r;
  }
}

TEST(ArccosTaylor, MoreTermsNeverWorseMidRange) {
  const double r = 0.6;
  double prev = std::abs(arccos_taylor(r, 1) - std::acos(r));
  for (int terms = 2; terms <= 10; ++terms) {
    const double err = std::abs(arccos_taylor(r, terms) - std::acos(r));
    EXPECT_LE(err, prev + 1e-15) << "terms=" << terms;
    prev = err;
  }
}

TEST(PiecewiseLinear, PaperCoefficients) {
  // Eq. 18: f(r) = −3.0651 r + 0.07648 on the negative outer segment and
  // f(r) = −3.0651 (r − 1) on the positive outer segment.
  const auto p = PiecewiseLinearArccos::paper();
  const auto& neg = p.piece(Segment::kNegativeOuter);
  const auto& pos = p.piece(Segment::kPositiveOuter);
  EXPECT_NEAR(neg.slope, -3.0651, 2e-4);
  EXPECT_NEAR(neg.intercept, 0.07648, 2e-4);
  EXPECT_NEAR(pos.slope, -3.0651, 2e-4);
  EXPECT_NEAR(pos.intercept, 3.0651, 2e-4);
}

TEST(PiecewiseLinear, MiddleSegmentIsTaylor) {
  const auto p = PiecewiseLinearArccos::paper();
  for (double r : {-0.7, -0.3, 0.0, 0.5, 0.72}) {
    EXPECT_DOUBLE_EQ(p.eval(r), arccos_taylor1(r)) << "r=" << r;
  }
}

TEST(PiecewiseLinear, SegmentSelection) {
  const auto p = PiecewiseLinearArccos::paper();
  EXPECT_EQ(p.segment(-0.9), Segment::kNegativeOuter);
  EXPECT_EQ(p.segment(-0.7236), Segment::kMiddle);  // boundary belongs to middle
  EXPECT_EQ(p.segment(0.0), Segment::kMiddle);
  EXPECT_EQ(p.segment(0.7236), Segment::kMiddle);
  EXPECT_EQ(p.segment(0.8), Segment::kPositiveOuter);
}

TEST(PiecewiseLinear, ExactAtDomainEndpoints) {
  // f(1) = arccos(1) = 0 and f(−1) = arccos(−1) = π by construction.
  const auto p = PiecewiseLinearArccos::paper();
  EXPECT_NEAR(p.eval(1.0), 0.0, 1e-12);
  EXPECT_NEAR(p.eval(-1.0), math::kPi, 2e-4);  // π − 3.0651 + 3.0651·0 offset rounding
  EXPECT_NEAR(p.decoded(1.0), 1.0, 1e-12);
  EXPECT_NEAR(p.decoded(-1.0), -1.0, 1e-6);
}

TEST(PiecewiseLinear, ContinuousAtBreakpoints) {
  const auto p = PiecewiseLinearArccos::paper();
  const double k = p.breakpoint();
  const double eps = 1e-9;
  EXPECT_NEAR(p.eval(k - eps), p.eval(k + eps), 1e-6);
  EXPECT_NEAR(p.eval(-k - eps), p.eval(-k + eps), 1e-6);
}

TEST(PiecewiseLinear, OddSymmetryOfDecodedValue) {
  // arccos symmetry f(−r) = π − f(r) ⇒ cos(f(−r)) = −cos(f(r)).
  const auto p = PiecewiseLinearArccos::paper();
  for (double r : {0.1, 0.4, 0.7236, 0.9, 1.0}) {
    EXPECT_NEAR(p.decoded(-r), -p.decoded(r), 1e-4) << "r=" << r;
  }
}

TEST(PiecewiseLinear, MaxDecodeErrorIs8Point5Percent) {
  const auto p = PiecewiseLinearArccos::paper();
  EXPECT_NEAR(p.max_decode_error(), 0.085, 0.001);
}

TEST(PiecewiseLinear, WorstErrorOccursAtBreakpoint) {
  const auto p = PiecewiseLinearArccos::paper();
  const double at_k = p.decode_error(p.breakpoint());
  EXPECT_NEAR(at_k, p.max_decode_error(), 1e-4);
  EXPECT_NEAR(p.decode_error(-p.breakpoint()), at_k, 1e-9);
}

TEST(PiecewiseLinear, ErrorBoundHoldsEverywhere) {
  const auto p = PiecewiseLinearArccos::paper();
  for (double r : math::linspace(-1.0, 1.0, 2001)) {
    if (std::abs(r) < 1e-3) continue;  // relative metric undefined at 0
    EXPECT_LE(p.decode_error(r), 0.0851) << "r=" << r;
  }
}

TEST(PiecewiseLinear, EvalClampsOutOfDomain) {
  const auto p = PiecewiseLinearArccos::paper();
  EXPECT_DOUBLE_EQ(p.eval(1.5), p.eval(1.0));
  EXPECT_DOUBLE_EQ(p.eval(-3.0), p.eval(-1.0));
}

TEST(PiecewiseLinear, IntegratedErrorMatchesEq17AtPaperK) {
  // The objective value at k = 0.7236 (≈0.0318, our quadrature).
  const auto p = PiecewiseLinearArccos::paper();
  EXPECT_NEAR(p.integrated_error(), 0.0318, 0.0005);
}

TEST(PiecewiseLinear, RejectsDegenerateBreakpoints) {
  EXPECT_THROW(PiecewiseLinearArccos::with_breakpoint(0.0), PreconditionError);
  EXPECT_THROW(PiecewiseLinearArccos::with_breakpoint(1.0), PreconditionError);
  EXPECT_THROW(PiecewiseLinearArccos::with_breakpoint(-0.5), PreconditionError);
}

TEST(PiecewiseLinear, SegmentToString) {
  EXPECT_EQ(to_string(Segment::kMiddle), "middle");
  EXPECT_EQ(to_string(Segment::kNegativeOuter), "negative-outer");
  EXPECT_EQ(to_string(Segment::kPositiveOuter), "positive-outer");
}

// --- property: decode error bounded for any reasonable breakpoint -----------
class BreakpointFamily : public ::testing::TestWithParam<double> {};

TEST_P(BreakpointFamily, DecodedStaysInUnitInterval) {
  const auto p = PiecewiseLinearArccos::with_breakpoint(GetParam());
  for (double r : math::linspace(-1.0, 1.0, 501)) {
    EXPECT_GE(p.decoded(r), -1.0 - 1e-12);
    EXPECT_LE(p.decoded(r), 1.0 + 1e-12);
  }
}

TEST_P(BreakpointFamily, PhaseStaysInZeroPi) {
  const auto p = PiecewiseLinearArccos::with_breakpoint(GetParam());
  for (double r : math::linspace(-1.0, 1.0, 501)) {
    EXPECT_GE(p.eval(r), -1e-9);
    EXPECT_LE(p.eval(r), math::kPi + 0.25);  // Taylor middle may exceed π slightly
  }
}

TEST_P(BreakpointFamily, DecodedIsMonotoneNonDecreasing) {
  const auto p = PiecewiseLinearArccos::with_breakpoint(GetParam());
  double prev = p.decoded(-1.0);
  for (double r : math::linspace(-1.0, 1.0, 501)) {
    const double v = p.decoded(r);
    EXPECT_GE(v, prev - 1e-9) << "r=" << r;
    prev = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Breakpoints, BreakpointFamily,
                         ::testing::Values(0.3, 0.5, 0.6, 0.7236, 0.8, 0.9));

}  // namespace
