// Unit tests for common/math_utils.hpp: quadrature, golden-section
// minimization, and the small helpers the P-DAC derivation relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace {

using namespace pdac;

TEST(RelativeError, Basic) {
  EXPECT_NEAR(math::relative_error(1.1, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(math::relative_error(0.9, 1.0), 0.1, 1e-12);
  EXPECT_NEAR(math::relative_error(-1.1, -1.0), 0.1, 1e-12);
}

TEST(RelativeError, FlooredDenominatorNearZero) {
  // Without the floor this would be 1e6; with floor 1e-3 it is 1.0.
  EXPECT_DOUBLE_EQ(math::relative_error(1e-3, 0.0, 1e-3), 1.0);
}

TEST(AlmostEqual, Tolerances) {
  EXPECT_TRUE(math::almost_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(math::almost_equal(1.0, 1.001));
  EXPECT_TRUE(math::almost_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(math::almost_equal(0.0, 1e-13));
}

TEST(Linspace, EndpointsExactAndEvenlySpaced) {
  const auto v = math::linspace(-1.0, 1.0, 5);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_DOUBLE_EQ(v.front(), -1.0);
  EXPECT_DOUBLE_EQ(v.back(), 1.0);
  EXPECT_DOUBLE_EQ(v[2], 0.0);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_NEAR(v[i] - v[i - 1], 0.5, 1e-12);
}

TEST(Linspace, RejectsDegenerateCount) {
  EXPECT_THROW(math::linspace(0.0, 1.0, 1), PreconditionError);
}

TEST(Integrate, Polynomial) {
  // ∫₀¹ 3x² dx = 1.
  const double v = math::integrate([](double x) { return 3.0 * x * x; }, 0.0, 1.0);
  EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(Integrate, Trigonometric) {
  // ∫₀^π sin x dx = 2.
  const double v = math::integrate([](double x) { return std::sin(x); }, 0.0, math::kPi);
  EXPECT_NEAR(v, 2.0, 1e-9);
}

TEST(Integrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(math::integrate([](double) { return 42.0; }, 2.0, 2.0), 0.0);
}

TEST(Integrate, ReversedIntervalIsNegative) {
  const double fwd = math::integrate([](double x) { return x; }, 0.0, 1.0);
  const double rev = math::integrate([](double x) { return x; }, 1.0, 0.0);
  EXPECT_NEAR(fwd, -rev, 1e-12);
}

TEST(Integrate, HandlesAbsoluteValueKink) {
  // ∫_{-1}^{1} |x| dx = 1 — the Eq. 17 objective has the same kink shape.
  const double v = math::integrate([](double x) { return std::abs(x); }, -1.0, 1.0);
  EXPECT_NEAR(v, 1.0, 1e-8);
}

TEST(GoldenSection, FindsParabolaMinimum) {
  const auto r = math::golden_section_minimize(
      [](double x) { return (x - 0.3) * (x - 0.3) + 2.0; }, -1.0, 1.0);
  EXPECT_NEAR(r.x, 0.3, 1e-6);
  EXPECT_NEAR(r.value, 2.0, 1e-12);
}

TEST(GoldenSection, FindsCosineMinimum) {
  const auto r =
      math::golden_section_minimize([](double x) { return std::cos(x); }, 2.0, 4.5);
  EXPECT_NEAR(r.x, math::kPi, 1e-6);
}

TEST(GoldenSection, RejectsInvertedBounds) {
  EXPECT_THROW(math::golden_section_minimize([](double x) { return x; }, 1.0, 0.0),
               PreconditionError);
}

TEST(DenseMaximize, FindsGlobalMaximumOfMultimodal) {
  // sin(5x) on [0, 2]: global max 1 at x = π/10 (also near x = π/2 + ...).
  const auto r = math::dense_maximize([](double x) { return std::sin(5.0 * x); }, 0.0, 2.0);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

TEST(DenseMaximize, EndpointMaximum) {
  const auto r = math::dense_maximize([](double x) { return x; }, 0.0, 1.0);
  EXPECT_NEAR(r.x, 1.0, 1e-6);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

TEST(ClampUnit, ClampsToUnitInterval) {
  EXPECT_DOUBLE_EQ(math::clamp_unit(0.5), 0.5);
  EXPECT_DOUBLE_EQ(math::clamp_unit(1.5), 1.0);
  EXPECT_DOUBLE_EQ(math::clamp_unit(-2.0), -1.0);
}

}  // namespace
