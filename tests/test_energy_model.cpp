// Tests for the workload energy model (paper Figs. 9–10 reproduction).
#include <gtest/gtest.h>

#include "arch/energy_model.hpp"
#include "common/require.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

class EnergyModel : public ::testing::Test {
 protected:
  LtConfig cfg = lt_base();
  PowerParams params = lt_power_params();
  nn::WorkloadTrace bert = nn::trace_forward(nn::bert_base(128));
  nn::WorkloadTrace deit = nn::trace_forward(nn::deit_base());
};

TEST_F(EnergyModel, Fig9BertHeadlineSavings) {
  // Paper: −11.2 % @4-bit, −32.3 % @8-bit (we land within ~1.5 points).
  EXPECT_NEAR(compare_energy(bert, cfg, params, 4).total_saving(), 0.112, 0.015);
  EXPECT_NEAR(compare_energy(bert, cfg, params, 8).total_saving(), 0.323, 0.02);
}

TEST_F(EnergyModel, Fig10DeitHeadlineSavings) {
  // Paper: −11.2 % @4-bit, −32.3 % @8-bit; our DeiT model runs slightly
  // hotter on attention (longer sequence), so tolerances are wider.
  EXPECT_NEAR(compare_energy(deit, cfg, params, 4).total_saving(), 0.112, 0.04);
  EXPECT_NEAR(compare_energy(deit, cfg, params, 8).total_saving(), 0.323, 0.07);
}

TEST_F(EnergyModel, AttentionSavesMoreThanFfn) {
  // The paper's qualitative result, both workloads, both precisions.
  for (const auto* trace : {&bert, &deit}) {
    for (int bits : {4, 8}) {
      const auto cmp = compare_energy(*trace, cfg, params, bits);
      EXPECT_GT(cmp.saving(nn::OpClass::kAttention), cmp.saving(nn::OpClass::kFfn))
          << trace->config.name << " " << bits << "-bit";
    }
  }
}

TEST_F(EnergyModel, EightBitSavesMoreThanFourBit) {
  for (const auto* trace : {&bert, &deit}) {
    const auto cmp4 = compare_energy(*trace, cfg, params, 4);
    const auto cmp8 = compare_energy(*trace, cfg, params, 8);
    EXPECT_GT(cmp8.total_saving(), cmp4.total_saving()) << trace->config.name;
  }
}

TEST_F(EnergyModel, MovementEnergyUnaffectedByPdac) {
  // Paper: "P-DAC does not affect the energy consumption associated with
  // data movement."
  const auto cmp = compare_energy(bert, cfg, params, 8);
  EXPECT_DOUBLE_EQ(cmp.baseline.total().movement.joules(),
                   cmp.pdac.total().movement.joules());
  EXPECT_DOUBLE_EQ(cmp.baseline.total().adc.joules(), cmp.pdac.total().adc.joules());
  EXPECT_DOUBLE_EQ(cmp.baseline.total().static_power.joules(),
                   cmp.pdac.total().static_power.joules());
}

TEST_F(EnergyModel, OnlyModulationTermChanges) {
  const auto cmp = compare_energy(bert, cfg, params, 8);
  EXPECT_GT(cmp.baseline.total().modulation.joules(),
            5.0 * cmp.pdac.total().modulation.joules());
}

TEST_F(EnergyModel, RuntimeIdenticalAcrossVariants) {
  const auto cmp = compare_energy(bert, cfg, params, 8);
  EXPECT_EQ(cmp.baseline.wall_cycles, cmp.pdac.wall_cycles);
  EXPECT_DOUBLE_EQ(cmp.baseline.runtime.seconds(), cmp.pdac.runtime.seconds());
  EXPECT_GT(cmp.baseline.runtime.seconds(), 0.0);
}

TEST_F(EnergyModel, ComputeBoundConsistencyWithPowerModel) {
  // With data movement and vector work zeroed, average power over the
  // run must approach the Fig. 11 compute-bound breakdown (modulators,
  // being fully busy in our tiling, hit their calibrated utilization).
  PowerParams cb = params;
  cb.sram_energy_per_bit = units::joules(0.0);
  cb.vector_energy_per_element_bit = units::joules(0.0);
  const auto we = evaluate_energy(bert, cfg, cb, 8, SystemVariant::kDacBased);
  const double avg_power = we.total().total().joules() / we.runtime.seconds();
  const auto breakdown = compute_power_breakdown(cfg, cb, 8, SystemVariant::kDacBased);
  // Dynamic products double-modulate, so average power can exceed the
  // nominal broadcast-rate figure slightly; static GEMM portions match.
  EXPECT_NEAR(avg_power / breakdown.total().watts(), 1.0, 0.15);
}

TEST_F(EnergyModel, DynamicOpsChargeNoMovement) {
  const auto we = evaluate_energy(bert, cfg, params, 8, SystemVariant::kDacBased);
  // Attention movement must equal exactly the static-weight ops' traffic.
  std::uint64_t expected_elements = 0;
  for (const auto& g : bert.gemms) {
    if (g.op_class == nn::OpClass::kAttention && g.static_weights) {
      expected_elements += g.weight_elements() + g.activation_elements();
    }
  }
  const double expect_j = static_cast<double>(expected_elements) * 8.0 *
                          params.sram_energy_per_bit.joules();
  EXPECT_NEAR(we.attention.movement.joules(), expect_j, 1e-12);
}

TEST_F(EnergyModel, VectorWorkLandsInOtherBucketOnly) {
  const auto we = evaluate_energy(bert, cfg, params, 8, SystemVariant::kDacBased);
  // The tracer tags all element-wise work kOther, so the GEMM classes
  // carry no vector-unit energy.
  EXPECT_DOUBLE_EQ(we.attention.vector_unit.joules() + we.ffn.vector_unit.joules(), 0.0);
  EXPECT_GT(we.other.vector_unit.joules(), 0.0);
}

TEST_F(EnergyModel, EnergyScalesWithLayers) {
  auto one = nn::bert_base(128);
  one.layers = 1;
  auto twelve = nn::bert_base(128);
  const auto e1 =
      evaluate_energy(nn::trace_forward(one), cfg, params, 8, SystemVariant::kDacBased);
  const auto e12 =
      evaluate_energy(nn::trace_forward(twelve), cfg, params, 8, SystemVariant::kDacBased);
  EXPECT_NEAR(e12.total().total().joules() / e1.total().total().joules(), 12.0, 1e-6);
}

TEST_F(EnergyModel, RejectsBadBits) {
  EXPECT_THROW(evaluate_energy(bert, cfg, params, 1, SystemVariant::kDacBased),
               PreconditionError);
}

TEST_F(EnergyModel, BreakdownTotalSumsTerms) {
  const auto we = evaluate_energy(bert, cfg, params, 8, SystemVariant::kPdacBased);
  const auto t = we.total();
  EXPECT_NEAR(t.total().joules(),
              t.modulation.joules() + t.adc.joules() + t.static_power.joules() +
                  t.movement.joules() + t.vector_unit.joules(),
              1e-15);
}

TEST_F(EnergyModel, OfSelectorReturnsMatchingClass) {
  const auto we = evaluate_energy(bert, cfg, params, 8, SystemVariant::kDacBased);
  EXPECT_DOUBLE_EQ(we.of(nn::OpClass::kAttention).total().joules(),
                   we.attention.total().joules());
  EXPECT_DOUBLE_EQ(we.of(nn::OpClass::kFfn).total().joules(), we.ffn.total().joules());
  EXPECT_DOUBLE_EQ(we.of(nn::OpClass::kOther).total().joules(), we.other.total().joules());
}

}  // namespace

namespace {

using namespace pdac;
using namespace pdac::arch;

// Regression pins: the measured values this reproduction reports in
// EXPERIMENTS.md.  Tight tolerances so refactors cannot silently move
// the published numbers (paper deltas are discussed there).
class FigureRegression : public ::testing::Test {
 protected:
  LtConfig cfg = lt_base();
  PowerParams params = lt_power_params();
};

TEST_F(FigureRegression, Fig9BertMeasuredValues) {
  const auto trace = nn::trace_forward(nn::bert_base(128));
  const auto cmp4 = compare_energy(trace, cfg, params, 4);
  const auto cmp8 = compare_energy(trace, cfg, params, 8);
  EXPECT_NEAR(cmp4.total_saving(), 0.114, 0.005);
  EXPECT_NEAR(cmp4.saving(nn::OpClass::kAttention), 0.140, 0.005);
  EXPECT_NEAR(cmp4.saving(nn::OpClass::kFfn), 0.099, 0.005);
  EXPECT_NEAR(cmp8.total_saving(), 0.334, 0.005);
  EXPECT_NEAR(cmp8.saving(nn::OpClass::kAttention), 0.384, 0.005);
  EXPECT_NEAR(cmp8.saving(nn::OpClass::kFfn), 0.301, 0.005);
}

TEST_F(FigureRegression, Fig10DeitMeasuredValues) {
  const auto trace = nn::trace_forward(nn::deit_base());
  const auto cmp4 = compare_energy(trace, cfg, params, 4);
  const auto cmp8 = compare_energy(trace, cfg, params, 8);
  EXPECT_NEAR(cmp4.total_saving(), 0.142, 0.005);
  EXPECT_NEAR(cmp8.total_saving(), 0.387, 0.005);
  EXPECT_NEAR(cmp8.saving(nn::OpClass::kAttention), 0.453, 0.005);
  EXPECT_NEAR(cmp8.saving(nn::OpClass::kFfn), 0.337, 0.005);
}

TEST_F(FigureRegression, Fig9AbsoluteEnergies) {
  const auto trace = nn::trace_forward(nn::bert_base(128));
  const auto cmp8 = compare_energy(trace, cfg, params, 8);
  EXPECT_NEAR(cmp8.baseline.total().total().millijoules(), 23.61, 0.1);
  EXPECT_NEAR(cmp8.pdac.total().total().millijoules(), 15.73, 0.1);
  EXPECT_NEAR(cmp8.baseline.runtime.seconds() * 1e6, 272.8, 0.5);
}

TEST_F(EnergyModel, RecalibrationCostsNothingWhenNothingHappened) {
  const RecalibrationCost none;
  EXPECT_DOUBLE_EQ(
      recalibration_energy(none, cfg, params, 8, SystemVariant::kPdacBased).joules(),
      0.0);
}

TEST_F(EnergyModel, RecalibrationChargesEveryTerm) {
  RecalibrationCost probes_only;
  probes_only.probe_events = 1000;
  RecalibrationCost with_retrims = probes_only;
  with_retrims.retrims = 16;
  RecalibrationCost with_remaps = with_retrims;
  with_remaps.remapped_tiles = 64;
  const auto e = [&](const RecalibrationCost& c) {
    return recalibration_energy(c, cfg, params, 8, SystemVariant::kPdacBased).joules();
  };
  EXPECT_GT(e(probes_only), 0.0);
  EXPECT_GT(e(with_retrims), e(probes_only));
  EXPECT_GT(e(with_remaps), e(with_retrims));
}

TEST_F(EnergyModel, RecalibrationProbesCostMoreOnDacBaseline) {
  // Baseline probes pay the DAC + controller conversion rate, the whole
  // reason the P-DAC self-test is cheap enough to run often.
  RecalibrationCost c;
  c.probe_events = 100000;
  const double dac =
      recalibration_energy(c, cfg, params, 8, SystemVariant::kDacBased).joules();
  const double pdac =
      recalibration_energy(c, cfg, params, 8, SystemVariant::kPdacBased).joules();
  EXPECT_GT(dac, pdac);
}

}  // namespace
