// Tests for P-DAC gain trimming / calibration.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/trimming.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

PdacConfig nominal8() {
  PdacConfig cfg;
  cfg.bits = 8;
  return cfg;
}

PerturbedPdacModel make_device(double gain_sigma, double bias_sigma, double vpi_sigma,
                               std::uint64_t seed) {
  VariationConfig var;
  var.tia_gain_sigma = gain_sigma;
  var.bias_sigma = bias_sigma;
  var.vpi_drift_sigma = vpi_sigma;
  Rng rng(seed);
  return PerturbedPdacModel(nominal8(), var, rng);
}

TEST(Trimming, RestoresNominalBoundAfterGainMismatch) {
  auto device = make_device(0.02, 0.0, 0.0, 3);
  const Pdac nominal(nominal8());
  const TrimResult r = trim_pdac(device);
  EXPECT_GT(r.worst_error_before, 0.12);  // untrimmed 2 % mismatch hurts
  EXPECT_LT(r.worst_error_after, nominal.worst_case_error() + 0.01);
}

TEST(Trimming, CorrectsBiasDrift) {
  auto device = make_device(0.0, 0.03, 0.0, 5);
  const TrimResult r = trim_pdac(device);
  EXPECT_LT(r.worst_error_after, r.worst_error_before);
  EXPECT_LT(r.worst_error_after, 0.095);
}

TEST(Trimming, CorrectsVpiDriftViaEffectiveWeights) {
  auto device = make_device(0.0, 0.0, 0.03, 7);
  const TrimResult r = trim_pdac(device);
  EXPECT_LT(r.worst_error_after, 0.095);
}

TEST(Trimming, CombinedVariationRecoversYield) {
  int recovered = 0;
  const int devices = 20;
  for (int i = 0; i < devices; ++i) {
    auto device = make_device(0.02, 0.005, 0.01, 100 + i);
    const TrimResult r = trim_pdac(device);
    if (r.worst_error_after < 0.10) ++recovered;
  }
  // Untrimmed yield at this corner is ~0 (see A6); trimming recovers it.
  EXPECT_GE(recovered, devices - 1);
}

TEST(Trimming, NominalDeviceIsAFixedPoint) {
  auto device = make_device(0.0, 0.0, 0.0, 1);
  const double before = device.worst_error();
  const TrimResult r = trim_pdac(device);
  EXPECT_NEAR(r.worst_error_after, before, 1e-6);
}

TEST(Trimming, ImprovesMeanAbsErrorToo) {
  auto device = make_device(0.03, 0.01, 0.0, 11);
  const TrimResult r = trim_pdac(device);
  EXPECT_LE(r.mean_abs_error_after, r.mean_abs_error_before + 1e-12);
}

TEST(Trimming, ReportsProbeBudget) {
  auto device = make_device(0.02, 0.0, 0.0, 13);
  TrimmingConfig cfg;
  cfg.probes_per_bank = 12;
  const TrimResult r = trim_pdac(device, cfg);
  EXPECT_GT(r.probes_used, 0);
  // The budget can be exceeded only when a strided probe set turns out
  // collinear and a bank falls back to dense probing.
  EXPECT_LE(r.probes_used, 3 * 255);
}

TEST(Trimming, WorksAcrossBitWidths) {
  for (int bits : {4, 6, 10}) {
    PdacConfig cfg;
    cfg.bits = bits;
    VariationConfig var;
    var.tia_gain_sigma = 0.02;
    Rng rng(17);
    PerturbedPdacModel device(cfg, var, rng);
    Pdac nominal(cfg);
    const TrimResult r = trim_pdac(device);
    EXPECT_LT(r.worst_error_after, nominal.worst_case_error() + 0.03) << bits << " bits";
  }
}

TEST(PerturbedModel, CorrectionInterfaceValidatesWidth) {
  auto device = make_device(0.0, 0.0, 0.0, 1);
  EXPECT_THROW(device.apply_correction(Segment::kMiddle, {1.0}, 0.0), PreconditionError);
}

TEST(PerturbedModel, ManualBiasCorrectionRoundTrips) {
  auto device = make_device(0.0, 0.0, 0.0, 1);
  const double before = device.encode_code(10);
  device.apply_correction(Segment::kMiddle, std::vector<double>(8, 0.0), 0.2);
  EXPECT_NE(device.encode_code(10), before);
  device.apply_correction(Segment::kMiddle, std::vector<double>(8, 0.0), -0.2);
  EXPECT_NEAR(device.encode_code(10), before, 1e-12);
}

TEST(Trimming, FlagsFailedFitWhenObservableWraps) {
  // A bias excursion of a full radian pushes middle-segment phases past
  // the [0, π] boundary; the arccos inversion folds them back and the
  // least-squares fit is garbage.  The trim must admit it made the
  // device worse instead of reporting success.
  auto device = make_device(0.0, 0.0, 0.0, 1);
  device.apply_correction(Segment::kMiddle, std::vector<double>(8, 0.0), 1.0);
  const TrimResult r = trim_pdac(device);
  EXPECT_TRUE(r.fit_failed);
  EXPECT_GT(r.worst_error_after, r.worst_error_before);
}

TEST(Trimming, RevertOnFailureLeavesDeviceNoWorse) {
  auto corrupted = make_device(0.0, 0.0, 0.0, 1);
  corrupted.apply_correction(Segment::kMiddle, std::vector<double>(8, 0.0), 1.0);
  const double before_trim = corrupted.worst_error();

  TrimmingConfig cfg;
  cfg.revert_on_failure = true;
  const TrimResult r = trim_pdac(corrupted, cfg);
  EXPECT_TRUE(r.fit_failed);
  // Rolled back: the reported after-metrics and the live device both
  // match the pre-trim state.
  EXPECT_NEAR(r.worst_error_after, before_trim, 1e-9);
  EXPECT_NEAR(corrupted.worst_error(), before_trim, 1e-9);
}

TEST(Trimming, SuccessfulTrimDoesNotSetFailureFlag) {
  auto device = make_device(0.02, 0.002, 0.01, 9);
  TrimmingConfig cfg;
  cfg.revert_on_failure = true;  // must not interfere with a good fit
  const TrimResult r = trim_pdac(device, cfg);
  EXPECT_FALSE(r.fit_failed);
  EXPECT_LT(r.worst_error_after, r.worst_error_before);
}

}  // namespace
