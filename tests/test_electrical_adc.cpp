// Unit tests for the electrical ADC (shared by both system variants).
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "converters/electrical_adc.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

ElectricalAdcConfig cfg_bits(int bits, double v_ref = 1.0) {
  ElectricalAdcConfig cfg;
  cfg.bits = bits;
  cfg.v_ref = v_ref;
  return cfg;
}

TEST(ElectricalAdc, SamplesLinearly) {
  const ElectricalAdc adc(cfg_bits(8));
  EXPECT_EQ(adc.sample(0.0), 0);
  EXPECT_EQ(adc.sample(1.0), 127);
  EXPECT_EQ(adc.sample(-1.0), -127);
  EXPECT_EQ(adc.sample(0.5), 64);  // round(63.5)
}

TEST(ElectricalAdc, ClampsBeyondFullScale) {
  const ElectricalAdc adc(cfg_bits(8));
  EXPECT_EQ(adc.sample(3.0), 127);
  EXPECT_EQ(adc.sample(-3.0), -127);
}

TEST(ElectricalAdc, VrefSetsFullScale) {
  const ElectricalAdc adc(cfg_bits(8, 4.0));
  EXPECT_EQ(adc.sample(4.0), 127);
  EXPECT_EQ(adc.sample(2.0), 64);
}

TEST(ElectricalAdc, RoundTripWithinHalfLsb) {
  const ElectricalAdc adc(cfg_bits(8, 2.0));
  const double lsb = 2.0 / 127.0;
  for (double v = -2.0; v <= 2.0; v += 0.137) {
    EXPECT_NEAR(adc.sample_to_voltage(v), v, 0.5 * lsb + 1e-12) << "v=" << v;
  }
}

TEST(ElectricalAdc, PowerLinearInBits) {
  const ElectricalAdc adc4(cfg_bits(4));
  const ElectricalAdc adc8(cfg_bits(8));
  EXPECT_NEAR(adc8.power() / adc4.power(), 2.0, 1e-12);
}

TEST(ElectricalAdc, CalibratedAbsolutePower) {
  // DESIGN.md §5: per-ADC 16.6 mW at 4-bit, 33.2 mW at 8-bit.
  EXPECT_NEAR(ElectricalAdc(cfg_bits(4)).power().milliwatts(), 16.6, 0.1);
  EXPECT_NEAR(ElectricalAdc(cfg_bits(8)).power().milliwatts(), 33.2, 0.2);
}

TEST(ElectricalAdc, EnergyPerConversion) {
  const ElectricalAdc adc(cfg_bits(8));
  EXPECT_NEAR(adc.energy_per_conversion().picojoules(),
              adc.power().watts() / 5e9 * 1e12, 1e-9);
}

TEST(ElectricalAdc, PowerScalesWithRate) {
  ElectricalAdcConfig fast = cfg_bits(8);
  fast.sample_rate = units::gigahertz(10.0);
  EXPECT_NEAR(ElectricalAdc(fast).power() / ElectricalAdc(cfg_bits(8)).power(), 2.0, 1e-12);
}

TEST(ElectricalAdc, RejectsInvalidConfig) {
  ElectricalAdcConfig bad = cfg_bits(8);
  bad.v_ref = -1.0;
  EXPECT_THROW(ElectricalAdc{bad}, PreconditionError);
  bad = cfg_bits(8);
  bad.power_per_bit_watts = 0.0;
  EXPECT_THROW(ElectricalAdc{bad}, PreconditionError);
}

}  // namespace
