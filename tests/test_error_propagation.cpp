// Tests for the analytic error-propagation model.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "core/error_model.hpp"
#include "core/error_propagation.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(ErrorPropagation, IdealDacGainNearUnity) {
  const auto drv = make_ideal_dac_driver(10);
  const auto d = decompose_encoder(*drv, uniform_pdf);
  EXPECT_NEAR(d.gain, 1.0, 0.01);
  EXPECT_LT(std::sqrt(d.residual_var), 0.01);
}

TEST(ErrorPropagation, GainStructureOfThreeSegmentProgram) {
  // The middle segment encodes sin(r) < r (a shrink), but the outer
  // chords overshoot (cos of the chord exceeds r mid-segment), so under
  // uniform operands the two nearly cancel and the least-squares gain
  // sits just under 1 — the k* = 0.7236 design is gain-balanced.
  const auto drv = make_pdac_driver(8);
  const auto uniform = decompose_encoder(*drv, uniform_pdf);
  EXPECT_NEAR(uniform.gain, 1.0, 0.01);
  // Concentrated activations see only the middle segment, exposing the
  // pure Taylor shrink g ≈ 1 − E[r⁴]/(6·E[r²]).
  const auto narrow = decompose_encoder(*drv, gaussian_pdf(0.4));
  EXPECT_LT(narrow.gain, uniform.gain);
  EXPECT_GT(narrow.gain, 0.90);
}

TEST(ErrorPropagation, OperandVarianceMatchesDistribution) {
  const auto drv = make_ideal_dac_driver(8);
  const auto uni = decompose_encoder(*drv, uniform_pdf);
  EXPECT_NEAR(uni.operand_var, 1.0 / 3.0, 0.01);  // Var of U(−1,1)
  const auto gauss = decompose_encoder(*drv, gaussian_pdf(0.25));
  EXPECT_NEAR(gauss.operand_var, 0.0625, 0.005);
}

TEST(ErrorPropagation, ConcentratedActivationsShrinkResidual) {
  const auto drv = make_pdac_driver(8);
  const auto wide = decompose_encoder(*drv, uniform_pdf);
  const auto narrow = decompose_encoder(*drv, gaussian_pdf(0.15));
  EXPECT_LT(narrow.residual_var, 0.2 * wide.residual_var);
}

TEST(ErrorPropagation, RelativeNoiseIndependentOfK) {
  const auto drv = make_pdac_driver(8);
  const auto d = decompose_encoder(*drv, uniform_pdf);
  const auto p64 = predict_dot_error(d, d, 64);
  const auto p4096 = predict_dot_error(d, d, 4096);
  EXPECT_NEAR(p64.rel_noise_rms, p4096.rel_noise_rms, 1e-12);
  // Absolute noise grows as sqrt(K).
  EXPECT_NEAR(p4096.noise_rms / p64.noise_rms, 8.0, 1e-9);
}

TEST(ErrorPropagation, PredictionMatchesMonteCarloUniform) {
  const auto drv = make_pdac_driver(8);
  const auto d = decompose_encoder(*drv, uniform_pdf);
  const auto pred = predict_dot_error(d, d, 128);
  const auto meas = measure_dot_error(*drv, uniform_pdf, 128, 400, 7);
  EXPECT_NEAR(meas.combined_gain, pred.combined_gain, 0.02);
  EXPECT_NEAR(meas.rel_noise_rms, pred.rel_noise_rms, 0.3 * pred.rel_noise_rms);
}

TEST(ErrorPropagation, PredictionMatchesMonteCarloGaussian) {
  const auto drv = make_pdac_driver(8);
  const auto pdf = gaussian_pdf(0.4);
  const auto d = decompose_encoder(*drv, pdf);
  const auto pred = predict_dot_error(d, d, 256);
  const auto meas = measure_dot_error(*drv, pdf, 256, 300, 11);
  EXPECT_NEAR(meas.combined_gain, pred.combined_gain, 0.03);
  EXPECT_NEAR(meas.rel_noise_rms, pred.rel_noise_rms, 0.35 * pred.rel_noise_rms);
}

TEST(ErrorPropagation, PdacNoisierThanIdealDac) {
  const auto pd = decompose_encoder(*make_pdac_driver(8), uniform_pdf);
  const auto ideal = decompose_encoder(*make_ideal_dac_driver(8), uniform_pdf);
  EXPECT_GT(predict_dot_error(pd, pd, 64).rel_noise_rms,
            predict_dot_error(ideal, ideal, 64).rel_noise_rms);
}

TEST(ErrorPropagation, RejectsDegenerateInputs) {
  const auto drv = make_pdac_driver(8);
  EXPECT_THROW(decompose_encoder(*drv, [](double) { return 0.0; }), PreconditionError);
  const auto d = decompose_encoder(*drv, uniform_pdf);
  EXPECT_THROW(predict_dot_error(d, d, 0), PreconditionError);
  EXPECT_THROW(measure_dot_error(*drv, uniform_pdf, 8, 5, 1), PreconditionError);
}

}  // namespace
