// Integration tests: full chains across subsystems.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/energy_model.hpp"
#include "common/stats.hpp"
#include "converters/eo_interface.hpp"
#include "core/pdac.hpp"
#include "nn/backend.hpp"
#include "nn/model_config.hpp"
#include "nn/transformer.hpp"
#include "photonics/laser.hpp"
#include "photonics/wdm_bus.hpp"
#include "ptc/ddot.hpp"

namespace {

using namespace pdac;

// --- chain 1: SRAM word → EO → WDM link → P-DAC → MZM → DDot ----------------
TEST(Integration, FullOpticalDatapathComputesDotProduct) {
  const int bits = 8;
  converters::EoInterfaceConfig ecfg;
  ecfg.bits = bits;
  const converters::MultiBitEoInterface eo(ecfg);
  core::PdacConfig pcfg;
  pcfg.bits = bits;
  const core::Pdac pdac_dev(pcfg);
  const converters::Quantizer q(bits);
  const ptc::Ddot ddot;

  const std::vector<double> x{0.5, -0.3, 0.9, 0.1};
  const std::vector<double> y{-0.2, 0.8, 0.4, -0.6};

  // Modulate each operand channel through the complete chain:
  // value → code → optical digital word → P-DAC phase → MZM on carrier.
  photonics::LaserConfig lcfg;
  lcfg.channels = 4;
  const photonics::Laser laser(lcfg);
  photonics::DualRail rails{laser.emit(), laser.emit()};
  photonics::Mzm mzm;
  for (std::size_t i = 0; i < x.size(); ++i) {
    rails.upper.set_amplitude(
        i, mzm.modulate_pushpull(rails.upper.amplitude(i),
                                 pdac_dev.drive_phase(eo.encode(q.encode(x[i])))));
    rails.lower.set_amplitude(
        i, mzm.modulate_pushpull(rails.lower.amplitude(i),
                                 pdac_dev.drive_phase(eo.encode(q.encode(y[i])))));
  }
  const double optical = ddot.compute(rails).value();

  double exact = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) exact += x[i] * y[i];
  // Bounded by the compounded P-DAC encode errors of both operands.
  EXPECT_NEAR(optical, exact, 0.18 * static_cast<double>(x.size()));
  EXPECT_LT(std::abs(optical - exact) / std::max(std::abs(exact), 0.1), 0.35);
}

// --- chain 2: WDM transport of optical digital words ------------------------
TEST(Integration, WdmBusCarriesDigitalWordsBetweenInterfaces) {
  // Four 8-bit words on four wavelengths, one bit-slot at a time, with
  // threshold regeneration at the P-DAC comparator.
  converters::EoInterfaceConfig ecfg;
  const converters::MultiBitEoInterface eo(ecfg);
  photonics::WdmBusConfig bcfg;
  bcfg.channels = 4;
  const photonics::WdmBus bus(bcfg);
  const std::vector<std::int32_t> codes{13, -77, 127, 0};
  const auto words = eo.encode_vector(codes);

  std::vector<converters::OpticalDigitalWord> received(4);
  for (auto& w : received) w.slots.resize(8);
  for (std::size_t slot = 0; slot < 8; ++slot) {
    std::vector<photonics::WdmField> sources;
    for (std::size_t lane = 0; lane < 4; ++lane) {
      photonics::WdmField f(4);
      f.set_amplitude(lane, words[lane].slots[slot].amplitude);
      sources.push_back(f);
    }
    const auto dropped = bus.demux(bus.mux(sources));
    for (std::size_t lane = 0; lane < 4; ++lane) {
      received[lane].slots[slot].amplitude = dropped[lane].amplitude(lane);
    }
  }
  for (std::size_t lane = 0; lane < 4; ++lane) {
    EXPECT_EQ(eo.decode(received[lane]), codes[lane]) << "lane " << lane;
  }
}

// --- chain 3: transformer inference through the photonic core ---------------
TEST(Integration, TinyTransformerThroughPdacBackend) {
  const auto cfg = nn::tiny_transformer(8, 32, 4, 2);
  nn::Transformer model(cfg);
  model.init_random(3);
  const Matrix input = model.random_input(4);

  auto ref = nn::make_reference_backend();
  auto pd = nn::make_photonic_pdac_backend(8);
  const Matrix exact = model.forward(input, *ref);
  const Matrix approx = model.forward(input, *pd);
  const auto err = stats::compare(approx.data(), exact.data());
  EXPECT_GT(err.cosine, 0.98);
  EXPECT_LT(err.rel_frobenius, 0.25);
  EXPECT_GT(pd->events().modulation_events, 0u);
  EXPECT_EQ(pd->events().macs, ref->events().macs);
}

// --- chain 4: trace-driven energy agrees with backend-observed events -------
TEST(Integration, TraceEventsMatchFunctionalBackendEvents) {
  const auto cfg = nn::tiny_transformer(8, 32, 4, 1);
  nn::Transformer model(cfg);
  model.init_random(5);
  auto backend = nn::make_photonic_pdac_backend(8);
  (void)model.forward(model.random_input(6), *backend);

  // The tracer predicts the same MAC count the functional run performed.
  const auto trace = nn::trace_forward(cfg);
  EXPECT_EQ(backend->events().macs, trace.total_macs());
}

// --- chain 5: the paper's two headline numbers, end to end ------------------
TEST(Integration, HeadlinePowerAndEnergyNumbers) {
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const auto base8 =
      arch::compute_power_breakdown(lt, params, 8, arch::SystemVariant::kDacBased);
  const auto prop8 =
      arch::compute_power_breakdown(lt, params, 8, arch::SystemVariant::kPdacBased);
  EXPECT_NEAR(1.0 - prop8.total() / base8.total(), 0.477, 0.005);  // Fig. 11

  const auto cmp =
      arch::compare_energy(nn::trace_forward(nn::bert_base(128)), lt, params, 8);
  EXPECT_NEAR(cmp.total_saving(), 0.323, 0.02);  // Fig. 9
}

}  // namespace
