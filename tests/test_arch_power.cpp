// Calibration tests: the architecture power model must reproduce every
// number the paper reports in Fig. 5 and Fig. 11 (see DESIGN.md §5).
#include <gtest/gtest.h>

#include "arch/component_power.hpp"
#include "arch/lt_config.hpp"
#include "arch/power_params.hpp"
#include "common/require.hpp"

namespace {

using namespace pdac;
using namespace pdac::arch;

class ArchPower : public ::testing::Test {
 protected:
  LtConfig cfg = lt_base();
  PowerParams params = lt_power_params();
};

TEST_F(ArchPower, LtBaseUnitCounts) {
  EXPECT_EQ(cfg.arrays(), 16u);
  EXPECT_EQ(cfg.ddots(), 1024u);
  EXPECT_EQ(cfg.modulator_channels(), 2048u);
  EXPECT_EQ(cfg.adc_channels(), 128u);
  EXPECT_EQ(cfg.macs_per_cycle(), 8192u);
}

TEST_F(ArchPower, Fig5DacShare4Bit) {
  const auto b = compute_power_breakdown(cfg, params, 4, SystemVariant::kDacBased);
  EXPECT_NEAR(b.share(Component::kDac), 0.218, 0.002);
}

TEST_F(ArchPower, Fig5DacShare8Bit) {
  const auto b = compute_power_breakdown(cfg, params, 8, SystemVariant::kDacBased);
  EXPECT_NEAR(b.share(Component::kDac), 0.505, 0.002);
}

TEST_F(ArchPower, Fig11PdacSystemTotals) {
  const auto p4 = compute_power_breakdown(cfg, params, 4, SystemVariant::kPdacBased);
  const auto p8 = compute_power_breakdown(cfg, params, 8, SystemVariant::kPdacBased);
  EXPECT_NEAR(p4.total().watts(), 11.81, 0.03);  // paper: 11.81 W
  EXPECT_NEAR(p8.total().watts(), 26.64, 0.05);  // paper: 26.64 W
}

TEST_F(ArchPower, Fig11PowerSavings) {
  for (const auto& [bits, expect] : {std::pair{4, 0.199}, std::pair{8, 0.477}}) {
    const auto base = compute_power_breakdown(cfg, params, bits, SystemVariant::kDacBased);
    const auto prop = compute_power_breakdown(cfg, params, bits, SystemVariant::kPdacBased);
    EXPECT_NEAR(1.0 - prop.total() / base.total(), expect, 0.003) << bits << "-bit";
  }
}

TEST_F(ArchPower, Fig11ComponentShares) {
  const auto p4 = compute_power_breakdown(cfg, params, 4, SystemVariant::kPdacBased);
  const auto p8 = compute_power_breakdown(cfg, params, 8, SystemVariant::kPdacBased);
  EXPECT_NEAR(p4.share(Component::kAdc), 0.180, 0.003);
  EXPECT_NEAR(p8.share(Component::kAdc), 0.160, 0.003);
  EXPECT_NEAR(p8.share(Component::kPdac), 0.201, 0.003);
  EXPECT_NEAR(p4.share(Component::kLaser), 0.465, 0.003);
}

TEST_F(ArchPower, LaserDominates8BitPdacSystem) {
  // Paper: "the majority of the energy consumption remains constrained
  // by the laser" in the 8-bit P-DAC system.
  const auto p8 = compute_power_breakdown(cfg, params, 8, SystemVariant::kPdacBased);
  for (const auto& part : p8.parts) {
    if (part.component == Component::kLaser) continue;
    EXPECT_LT(part.power.watts(), p8.power(Component::kLaser).watts())
        << to_string(part.component);
  }
}

TEST_F(ArchPower, PdacVariantHasNoDacOrController) {
  const auto p = compute_power_breakdown(cfg, params, 8, SystemVariant::kPdacBased);
  EXPECT_DOUBLE_EQ(p.power(Component::kDac).watts(), 0.0);
  EXPECT_DOUBLE_EQ(p.power(Component::kController).watts(), 0.0);
  EXPECT_GT(p.power(Component::kPdac).watts(), 0.0);
}

TEST_F(ArchPower, DacVariantHasNoPdac) {
  const auto p = compute_power_breakdown(cfg, params, 8, SystemVariant::kDacBased);
  EXPECT_DOUBLE_EQ(p.power(Component::kPdac).watts(), 0.0);
  EXPECT_GT(p.power(Component::kController).watts(), 0.0);
}

TEST_F(ArchPower, SharedComponentsIdenticalAcrossVariants) {
  // The P-DAC only replaces the modulator drive chain.
  for (int bits : {4, 8}) {
    const auto base = compute_power_breakdown(cfg, params, bits, SystemVariant::kDacBased);
    const auto prop = compute_power_breakdown(cfg, params, bits, SystemVariant::kPdacBased);
    for (Component c : {Component::kLaser, Component::kAdc, Component::kThermal,
                        Component::kReceiverDigital}) {
      EXPECT_DOUBLE_EQ(base.power(c).watts(), prop.power(c).watts()) << to_string(c);
    }
  }
}

TEST_F(ArchPower, DacPowerRatioIs8x) {
  EXPECT_NEAR(dac_unit_power(params, 8) / dac_unit_power(params, 4), 8.0, 1e-9);
}

TEST_F(ArchPower, AdcPowerRatioIs2x) {
  EXPECT_NEAR(adc_unit_power(params, 8) / adc_unit_power(params, 4), 2.0, 1e-9);
}

TEST_F(ArchPower, ControllerPowerCalibration) {
  EXPECT_NEAR(controller_power(params, 4).watts(), 1.20, 0.01);
  EXPECT_NEAR(controller_power(params, 8).watts(), 3.93, 0.01);
}

TEST_F(ArchPower, LaserScalingCalibration) {
  EXPECT_NEAR(laser_power(params, 4).watts(), 5.492, 0.001);
  EXPECT_NEAR(laser_power(params, 8).watts(), 12.80, 0.05);
}

TEST_F(ArchPower, SavingGrowsWithPrecisionUpTo10Bits) {
  double prev = 0.0;
  for (int bits = 3; bits <= 10; ++bits) {
    const auto base = compute_power_breakdown(cfg, params, bits, SystemVariant::kDacBased);
    const auto prop = compute_power_breakdown(cfg, params, bits, SystemVariant::kPdacBased);
    const double saving = 1.0 - prop.total() / base.total();
    EXPECT_GT(saving, prev) << bits << "-bit";
    prev = saving;
  }
}

TEST_F(ArchPower, SavingPeaksAtVeryHighPrecision) {
  // Beyond ~11 bits the P-DAC's own binary-weighted TIA term (∝ 2^b − 1)
  // turns exponential and the relative advantage starts to recede — a
  // design limit the paper's 4/8-bit evaluation never reaches.
  auto saving = [&](int bits) {
    const auto base = compute_power_breakdown(cfg, params, bits, SystemVariant::kDacBased);
    const auto prop = compute_power_breakdown(cfg, params, bits, SystemVariant::kPdacBased);
    return 1.0 - prop.total() / base.total();
  };
  EXPECT_GT(saving(11), saving(12));
  EXPECT_GT(saving(12), 0.5);  // still a large win
}

TEST_F(ArchPower, BreakdownSharesSumToOne) {
  for (int bits : {4, 8}) {
    for (auto variant : {SystemVariant::kDacBased, SystemVariant::kPdacBased}) {
      const auto b = compute_power_breakdown(cfg, params, bits, variant);
      double sum = 0.0;
      for (const auto& part : b.parts) sum += b.share(part.component);
      EXPECT_NEAR(sum, 1.0, 1e-12);
    }
  }
}

TEST_F(ArchPower, RejectsBadBitWidths) {
  EXPECT_THROW(compute_power_breakdown(cfg, params, 1, SystemVariant::kDacBased),
               PreconditionError);
  EXPECT_THROW(compute_power_breakdown(cfg, params, 17, SystemVariant::kPdacBased),
               PreconditionError);
}

TEST_F(ArchPower, ComponentNames) {
  EXPECT_EQ(to_string(Component::kLaser), "laser");
  EXPECT_EQ(to_string(Component::kPdac), "P-DAC");
  EXPECT_EQ(to_string(SystemVariant::kDacBased), "DAC-based");
  EXPECT_EQ(to_string(SystemVariant::kPdacBased), "P-DAC-based");
}

}  // namespace
