// Tests for the serving-layer drift containment (DESIGN.md §16): the
// BackendPool re-trim budget's exact-boundary window rollover (a
// straddling re-trim is charged once, to its origin window), the
// quarantine/probation state machine — trigger, exponential-backoff
// canary probes, K-consecutive-clean readmission — and the engine-level
// guarantee that a quarantined pool still terminates every request with
// zero failures.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"

namespace {

using namespace pdac;

faults::LaneBankConfig quarantine_bank_config(std::uint64_t seed = 7) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

serve::BackendPoolConfig quarantine_pool_config(std::size_t backends) {
  serve::BackendPoolConfig cfg;
  cfg.backends = backends;
  cfg.bank = quarantine_bank_config();
  cfg.guarded.array_rows = 8;
  cfg.guarded.array_cols = 8;
  return cfg;
}

std::vector<nn::Linear> make_models(std::size_t count, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<nn::Linear> models;
  models.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    models.emplace_back(d, d);
    models.back().init_random(rng);
  }
  return models;
}

/// Push slot `i`'s drift tracker over the excursion threshold directly —
/// the deterministic stand-in for a sustained in-band wander, with no
/// storm and therefore no uncertainty about when the trigger arms.
void force_excursion(serve::BackendPool& pool, std::size_t i) {
  for (int n = 0; n < 4; ++n) pool.backend(i).drift().observe_residual({0}, 50.0);
  ASSERT_GE(pool.backend(i).drift().excursion_lanes(), 1u);
}

TEST(BackendPool, RetrimWindowBudgetRefillsExactlyAtCycleBoundaries) {
  // Regression for the window-rollover arithmetic: the budget must reset
  // exactly at whole multiples of the window length (anchored at first
  // use), never at `first product after the boundary + window`.
  serve::BackendPoolConfig cfg = quarantine_pool_config(1);
  cfg.retrim_budget = 1;
  cfg.retrim_window = 100;
  serve::BackendPool pool(cfg);

  pool.begin_product(0, 0);
  EXPECT_EQ(pool.retrims_left(0), 1u);
  pool.end_product(0, 1);
  EXPECT_EQ(pool.retrims_left(0), 0u);

  // Still inside [0, 100): exhausted, the ladder is clamped.
  pool.begin_product(0, 99);
  EXPECT_EQ(pool.retrims_left(0), 0u);
  EXPECT_TRUE(pool.throttled(0));
  EXPECT_EQ(pool.throttled_products(), 1u);
  pool.end_product(0, 0);

  // The exact boundary cycle refills the budget and restores the ladder.
  pool.begin_product(0, 100);
  EXPECT_EQ(pool.retrims_left(0), 1u);
  EXPECT_FALSE(pool.throttled(0));
  pool.end_product(0, 1);

  // Idling across several boundaries: the window `now` falls in is
  // [200, 300) — its start a true multiple — NOT [250, 350).
  pool.begin_product(0, 250);
  EXPECT_EQ(pool.retrims_left(0), 1u);
  pool.end_product(0, 1);
  pool.begin_product(0, 299);
  EXPECT_EQ(pool.retrims_left(0), 0u);  // same window as cycle 250
  pool.end_product(0, 0);
  pool.begin_product(0, 300);
  EXPECT_EQ(pool.retrims_left(0), 1u);  // next boundary multiple refills
}

TEST(BackendPool, StraddlingRetrimIsChargedOnceToItsOriginWindow) {
  // A product that begins at cycle 99 and spends its re-trim after the
  // boundary has passed charges the window it BEGAN in, exactly once —
  // the following window opens with its full budget.
  serve::BackendPoolConfig cfg = quarantine_pool_config(1);
  cfg.retrim_budget = 1;
  cfg.retrim_window = 100;
  serve::BackendPool pool(cfg);

  pool.begin_product(0, 99);
  EXPECT_EQ(pool.retrims_left(0), 1u);
  pool.end_product(0, 1);  // lands "after" cycle 100 on the wall clock
  pool.begin_product(0, 101);
  EXPECT_EQ(pool.retrims_left(0), 1u);  // fresh window, not double-charged
  EXPECT_FALSE(pool.throttled(0));
  pool.end_product(0, 0);
  // And the charge did land somewhere: the origin window was spent.
  pool.begin_product(0, 199);
  EXPECT_EQ(pool.retrims_left(0), 1u);  // still window [100, 200), unspent
}

TEST(BackendPool, QuarantineProbesOnBackoffAndReadmitsAfterConsecutiveCleanProbes) {
  serve::BackendPoolConfig cfg = quarantine_pool_config(2);
  cfg.quarantine.enabled = true;
  cfg.quarantine.excursion_lanes = 1;
  cfg.quarantine.probe_backoff = 100;
  cfg.quarantine.probe_backoff_max = 1000;
  cfg.quarantine.readmit_clean_probes = 2;
  serve::BackendPool pool(cfg);
  force_excursion(pool, 0);

  // Trigger: the excursion pulls slot 0 from rotation; slot 1 is unhurt.
  pool.tick(10);
  EXPECT_TRUE(pool.quarantined(0));
  EXPECT_FALSE(pool.in_rotation(0));
  EXPECT_TRUE(pool.in_rotation(1));
  EXPECT_EQ(pool.quarantines(), 1u);
  EXPECT_EQ(pool.next_probe_at(), 110u);

  // Not due yet: ticking early must not probe (idempotent housekeeping).
  pool.tick(109);
  EXPECT_EQ(pool.canary_probes(), 0u);

  // Probe 1 sees the excursion still standing → unclean → force_retrim
  // on the spot (probation is where recovery runs — tracker reset, no
  // fence, capacity preserved) and the backoff doubles.
  pool.tick(110);
  EXPECT_EQ(pool.canary_probes(), 1u);
  EXPECT_TRUE(pool.quarantined(0));
  EXPECT_EQ(pool.backend(0).drift().excursion_lanes(), 0u);
  EXPECT_GE(pool.backend(0).monitor().snapshot().retrims, 1u);
  EXPECT_EQ(pool.bank(0).usable_channels(), pool.bank(1).usable_channels());
  EXPECT_EQ(pool.next_probe_at(), 110u + 200u);

  // Probe 2 is clean but K = 2 requires one more; confirmations re-probe
  // at the base cadence, not the escalated one.
  pool.tick(310);
  EXPECT_EQ(pool.canary_probes(), 2u);
  EXPECT_TRUE(pool.quarantined(0));
  EXPECT_EQ(pool.next_probe_at(), 310u + 100u);

  // Probe 3: second consecutive clean → readmitted, back in rotation.
  pool.tick(410);
  EXPECT_EQ(pool.canary_probes(), 3u);
  EXPECT_FALSE(pool.quarantined(0));
  EXPECT_TRUE(pool.in_rotation(0));
  EXPECT_EQ(pool.readmissions(), 1u);
  EXPECT_EQ(pool.next_probe_at(), std::numeric_limits<std::uint64_t>::max());

  // The log narrates the episode in order.
  const std::vector<serve::QuarantineEvent>& log = pool.quarantine_log();
  ASSERT_EQ(log.size(), 5u);
  EXPECT_EQ(log[0].kind, serve::QuarantineEventKind::kQuarantined);
  EXPECT_EQ(log[1].kind, serve::QuarantineEventKind::kProbe);
  EXPECT_FALSE(log[1].clean);
  EXPECT_EQ(log[2].kind, serve::QuarantineEventKind::kProbe);
  EXPECT_TRUE(log[2].clean);
  EXPECT_EQ(log[3].kind, serve::QuarantineEventKind::kProbe);
  EXPECT_TRUE(log[3].clean);
  EXPECT_EQ(log[4].kind, serve::QuarantineEventKind::kReadmitted);
  for (const serve::QuarantineEvent& ev : log) EXPECT_EQ(ev.backend, 0u);

  // A readmission is a clean point: the same tick clock keeps running
  // with no re-trigger — the escalation-history baselines were advanced.
  pool.tick(500);
  EXPECT_FALSE(pool.quarantined(0));
  EXPECT_EQ(pool.quarantines(), 1u);
}

TEST(BackendPool, UncleanProbeRezeroesTheCleanStreak) {
  // K consecutive clean probes means CONSECUTIVE: an unclean probe in
  // the middle restarts the count.  Re-injecting the excursion between
  // probes simulates drift that resurges while on probation.
  serve::BackendPoolConfig cfg = quarantine_pool_config(1);
  cfg.quarantine.enabled = true;
  cfg.quarantine.probe_backoff = 10;
  cfg.quarantine.readmit_clean_probes = 2;
  serve::BackendPool pool(cfg);
  force_excursion(pool, 0);
  pool.tick(0);
  ASSERT_TRUE(pool.quarantined(0));

  pool.tick(10);  // probe 1: unclean (standing excursion) → retrim
  ASSERT_EQ(pool.canary_probes(), 1u);
  pool.tick(30);  // probe 2 (backoff doubled to 20): clean, streak = 1
  ASSERT_EQ(pool.canary_probes(), 2u);
  EXPECT_TRUE(pool.quarantined(0));
  force_excursion(pool, 0);  // drift resurges before the next probe
  pool.tick(40);  // probe 3: unclean again → streak re-zeroed, backoff 40
  ASSERT_EQ(pool.canary_probes(), 3u);
  EXPECT_TRUE(pool.quarantined(0));
  pool.tick(60);  // escalated backoff persists: nothing due before t = 80
  ASSERT_EQ(pool.canary_probes(), 3u);
  pool.tick(80);  // probe 4: clean, streak = 1 — not readmitted
  ASSERT_EQ(pool.canary_probes(), 4u);
  EXPECT_TRUE(pool.quarantined(0));
  EXPECT_EQ(pool.readmissions(), 0u);
  pool.tick(90);  // probe 5 (clean cadence 10): streak = 2 → readmitted
  EXPECT_FALSE(pool.quarantined(0));
  EXPECT_EQ(pool.readmissions(), 1u);
}

TEST(Serving, QuarantinedPoolStillTerminatesEveryRequestWithZeroFailures) {
  // Engine-level liveness: the only backend of the pool enters probation
  // before the run.  The engine must wait for the probe schedule (time
  // advances to next_probe_at instead of failing the queue), readmit,
  // and then serve — every request completes, none fail, and the
  // quarantine counters surface in the report.
  serve::BackendPoolConfig cfg = quarantine_pool_config(1);
  cfg.quarantine.enabled = true;
  cfg.quarantine.probe_backoff = 32;
  cfg.quarantine.readmit_clean_probes = 2;
  serve::BackendPool pool(cfg);
  force_excursion(pool, 0);

  serve::WorkloadConfig wl;
  wl.requests = 8;
  wl.mean_interarrival = 16.0;
  wl.d_model = 16;
  wl.models = 2;
  wl.prompt_min = 2;
  wl.prompt_max = 8;
  wl.decode_min = 2;
  wl.decode_max = 6;
  wl.deadline_slack = 0.0;  // no deadlines: probation must not shed
  wl.seed = 91;
  const std::vector<serve::Request> requests = serve::generate_workload(wl);
  const std::vector<nn::Linear> models = make_models(2, 16, 17);

  serve::ServingEngine engine(pool, models);
  const serve::ServingReport rep = engine.run(requests);

  EXPECT_TRUE(rep.reconciled(requests.size()));
  EXPECT_EQ(rep.failed, 0u);
  EXPECT_EQ(rep.completed, requests.size());
  EXPECT_GT(rep.goodput_tokens, 0u);
  EXPECT_GE(rep.quarantines, 1u);
  EXPECT_GE(rep.canary_probes, 1u);
  EXPECT_GE(rep.readmissions, 1u);
  // Report counters are the pool's counters, verbatim.
  EXPECT_EQ(rep.quarantines, pool.quarantines());
  EXPECT_EQ(rep.readmissions, pool.readmissions());
  EXPECT_EQ(rep.canary_probes, pool.canary_probes());
  ASSERT_EQ(rep.backends.size(), 1u);
  EXPECT_FALSE(rep.backends[0].quarantined);  // readmitted by run end
  EXPECT_GT(rep.backends[0].tokens, 0u);
}

}  // namespace
