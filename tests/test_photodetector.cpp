// Unit tests for the photodetector + TIA receive chain (paper Eq. 1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "photonics/photodetector.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

TEST(Photodetector, CurrentProportionalToIntensity) {
  PhotodetectorConfig cfg;
  cfg.responsivity = 2.0;
  const Photodetector pd(cfg);
  WdmField f(1);
  f.set_amplitude(0, Complex{2.0, 0.0});  // I = 2.0
  EXPECT_DOUBLE_EQ(pd.detect(f), 4.0);
}

TEST(Photodetector, IntegratesAcrossWavelengths) {
  // The property DDot depends on: a single PD sums all WDM channels.
  const Photodetector pd;
  WdmField f(3);
  f.set_amplitude(0, Complex{1.0, 0.0});
  f.set_amplitude(1, Complex{1.0, 0.0});
  f.set_amplitude(2, Complex{1.0, 0.0});
  EXPECT_DOUBLE_EQ(pd.detect(f), 1.5);  // 3 × ½
}

TEST(Photodetector, PhaseInsensitive) {
  const Photodetector pd;
  WdmField a(1), b(1);
  a.set_amplitude(0, Complex{1.0, 0.0});
  b.set_amplitude(0, std::polar(1.0, 1.234));
  EXPECT_NEAR(pd.detect(a), pd.detect(b), 1e-14);
}

TEST(Photodetector, DarkCurrentOffset) {
  PhotodetectorConfig cfg;
  cfg.dark_current = 0.01;
  const Photodetector pd(cfg);
  EXPECT_DOUBLE_EQ(pd.detect(WdmField(2)), 0.01);
}

TEST(Photodetector, NoiseDisabledIsDeterministic) {
  const Photodetector pd;
  Rng rng(1);
  WdmField f(1);
  f.set_amplitude(0, Complex{1.0, 0.0});
  EXPECT_DOUBLE_EQ(pd.detect_noisy(f, rng), pd.detect(f));
}

TEST(Photodetector, ThermalNoiseHasConfiguredSpread) {
  PhotodetectorConfig cfg;
  cfg.noise.enabled = true;
  cfg.noise.thermal_noise_std = 0.05;
  const Photodetector pd(cfg);
  Rng rng(7);
  WdmField f(1);
  f.set_amplitude(0, Complex{1.0, 0.0});
  stats::Running r;
  for (int i = 0; i < 20'000; ++i) r.add(pd.detect_noisy(f, rng));
  EXPECT_NEAR(r.mean(), 0.5, 0.002);
  EXPECT_NEAR(r.stddev(), 0.05, 0.003);
}

TEST(Photodetector, ShotNoiseScalesWithSqrtCurrent) {
  PhotodetectorConfig cfg;
  cfg.noise.enabled = true;
  cfg.noise.shot_noise_scale = 0.1;
  const Photodetector pd(cfg);
  Rng rng(9);
  WdmField dim(1), bright(1);
  dim.set_amplitude(0, Complex{0.5, 0.0});    // I = 0.125
  bright.set_amplitude(0, Complex{2.0, 0.0}); // I = 2.0
  stats::Running rd, rb;
  for (int i = 0; i < 20'000; ++i) {
    rd.add(pd.detect_noisy(dim, rng));
    rb.add(pd.detect_noisy(bright, rng));
  }
  // std ∝ sqrt(I): ratio should be sqrt(2.0/0.125) = 4.
  EXPECT_NEAR(rb.stddev() / rd.stddev(), 4.0, 0.3);
}

TEST(Photodetector, RejectsInvalidConfig) {
  PhotodetectorConfig bad;
  bad.responsivity = 0.0;
  EXPECT_THROW(Photodetector{bad}, PreconditionError);
  bad = PhotodetectorConfig{};
  bad.dark_current = -1.0;
  EXPECT_THROW(Photodetector{bad}, PreconditionError);
}

TEST(Tia, VoltageIsFeedbackTimesCurrent) {
  const Tia tia(1000.0);
  EXPECT_DOUBLE_EQ(tia.amplify(0.002), 2.0);
  EXPECT_DOUBLE_EQ(tia.amplify(-0.001), -1.0);
  EXPECT_DOUBLE_EQ(tia.feedback(), 1000.0);
}

TEST(Tia, SaturatesAtSupplyRails) {
  const Tia tia(1000.0, /*v_sat=*/1.5);
  EXPECT_DOUBLE_EQ(tia.amplify(0.005), 1.5);
  EXPECT_DOUBLE_EQ(tia.amplify(-0.005), -1.5);
  EXPECT_DOUBLE_EQ(tia.amplify(0.001), 1.0);
}

TEST(Tia, ZeroSaturationMeansUnbounded) {
  const Tia tia(1e6, 0.0);
  EXPECT_DOUBLE_EQ(tia.amplify(1.0), 1e6);
}

TEST(Tia, NegativeFeedbackInvertsSign) {
  // Inverting configuration realizes negative TIA weights (the MSB bank).
  const Tia tia(-500.0);
  EXPECT_DOUBLE_EQ(tia.amplify(0.002), -1.0);
}

TEST(Photodetector, DerateScalesResponsivityOnly) {
  PhotodetectorConfig cfg;
  cfg.responsivity = 2.0;
  cfg.dark_current = 0.5;
  Photodetector pd(cfg);
  WdmField f(1);
  f.set_amplitude(0, Complex{2.0, 0.0});  // I = 2.0
  const double healthy = pd.detect(f);
  pd.derate(0.5);
  EXPECT_DOUBLE_EQ(pd.responsivity_scale(), 0.5);
  EXPECT_FALSE(pd.dead());
  // Dark current is a junction property, not optical — it survives derating.
  EXPECT_DOUBLE_EQ(pd.detect(f), (healthy - 0.5) * 0.5 + 0.5);
  pd.derate(0.0);
  EXPECT_TRUE(pd.dead());
  EXPECT_DOUBLE_EQ(pd.detect(f), 0.5);  // dark current only
}

TEST(Photodetector, DerateRejectsOutOfRangeScale) {
  Photodetector pd;
  EXPECT_THROW(pd.derate(1.5), PreconditionError);
  EXPECT_THROW(pd.derate(-0.5), PreconditionError);
}

TEST(Tia, GainStepFaultMultipliesFeedback) {
  Tia tia(1000.0);
  tia.impose_gain_step(0.8);  // feedback network drifts 20 % low
  EXPECT_DOUBLE_EQ(tia.feedback(), 800.0);
  EXPECT_DOUBLE_EQ(tia.amplify(0.001), 0.8);
  tia.impose_gain_step(1.25);  // compounding: trim restores it the same way
  EXPECT_DOUBLE_EQ(tia.feedback(), 1000.0);
}

TEST(Tia, GainStepRejectsNonPositiveFactor) {
  Tia tia(1000.0);
  EXPECT_THROW(tia.impose_gain_step(0.0), PreconditionError);
  EXPECT_THROW(tia.impose_gain_step(-1.0), PreconditionError);
}

}  // namespace
