// Tests for the fused flat-array compute kernel (ptc/kernel.hpp) and its
// supporting coefficient tables: the kernel must match the device-graph
// path BIT FOR BIT — outputs and event counts — across custom device
// chains, ragged edges, fenced lanes, derated detectors, ADC settings,
// guard on/off, any thread count, and (for the faults-layer table)
// mid-product fault storms.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "common/simd.hpp"
#include "converters/electrical_adc.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/lane_table.hpp"
#include "ptc/ddot.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/gemm_engine.hpp"
#include "ptc/kernel.hpp"

namespace {

using namespace pdac;
using namespace pdac::ptc;

void expect_bit_identical(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(), a.size() * sizeof(double)), 0);
}

void expect_events_equal(const EventCounter& a, const EventCounter& b) {
  EXPECT_EQ(a.modulation_events, b.modulation_events);
  EXPECT_EQ(a.detection_events, b.detection_events);
  EXPECT_EQ(a.adc_events, b.adc_events);
  EXPECT_EQ(a.ddot_ops, b.ddot_ops);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.cycles, b.cycles);
}

/// Authoritative reference for the standalone kernel: the device-graph
/// reduction exactly as PhotonicDotEngine::dot_preencoded stages it —
/// fresh WdmField rails per chunk, Ddot::compute, ADC round-trip.
double device_dot(const Ddot& ddot, const DotEngineConfig& cfg, std::span<const double> xe,
                  std::span<const double> ye) {
  std::vector<std::size_t> active;
  for (std::size_t ch = 0; ch < cfg.wavelengths; ++ch) {
    if (cfg.lane_mask.empty() || cfg.lane_mask[ch] != 0u) active.push_back(ch);
  }
  const std::size_t nl = active.size();
  double acc = 0.0;
  for (std::size_t base = 0; base < xe.size(); base += nl) {
    const std::size_t len = std::min(nl, xe.size() - base);
    if (cfg.use_full_optics) {
      photonics::DualRail rails{photonics::WdmField(cfg.wavelengths),
                                photonics::WdmField(cfg.wavelengths)};
      for (std::size_t i = 0; i < len; ++i) {
        rails.upper.set_amplitude(active[i], photonics::Complex{xe[base + i], 0.0});
        rails.lower.set_amplitude(active[i], photonics::Complex{ye[base + i], 0.0});
      }
      acc += ddot.compute(rails).value();
    } else {
      for (std::size_t i = 0; i < len; ++i) acc += xe[base + i] * ye[base + i];
    }
  }
  if (!cfg.adc_readout) return acc;
  const double fs = cfg.adc_full_scale > 0.0
                        ? cfg.adc_full_scale
                        : static_cast<double>(std::max<std::size_t>(xe.size(), 1));
  converters::ElectricalAdcConfig ac;
  ac.bits = cfg.adc_bits;
  ac.v_ref = fs;
  return converters::ElectricalAdc(ac).sample_to_voltage(acc);
}

/// A deliberately non-default device chain: off-nominal phase, an
/// imbalanced coupler, mismatched/derated detectors with dark current.
Ddot custom_ddot() {
  photonics::PhotodetectorConfig pp;
  pp.responsivity = 0.9;
  pp.dark_current = 3e-4;
  photonics::PhotodetectorConfig pm;
  pm.responsivity = 0.85;
  pm.dark_current = 1e-4;
  photonics::Photodetector pd_plus(pp);
  pd_plus.derate(0.8);  // TIA/radiation derating on one receive side
  return Ddot(photonics::PhaseShifter(-1.41), photonics::DirectionalCoupler(0.6), pd_plus,
              photonics::Photodetector(pm));
}

TEST(FusedKernel, MatchesCustomDeviceChainBitForBit) {
  // The closed-form snapshot must replay an arbitrary (imbalanced,
  // derated, dark-current-carrying) device chain exactly — including
  // ragged final chunks and fenced-lane packing.
  const Ddot ddot = custom_ddot();
  Rng rng(17);
  for (const bool adc : {false, true}) {
    for (const double fs : {0.0, 3.7}) {
      DotEngineConfig cfg;
      cfg.wavelengths = 5;
      cfg.use_full_optics = true;
      cfg.adc_readout = adc;
      cfg.adc_full_scale = fs;
      cfg.lane_mask = {1, 0, 1, 1, 0};  // two fenced lanes -> packing holes
      const FusedKernel kernel(ddot, cfg);
      ASSERT_EQ(kernel.active_wavelengths(), 3u);
      for (std::size_t n : {1u, 2u, 3u, 7u, 23u}) {
        const auto xe = rng.uniform_vector(n, -1.0, 1.0);
        const auto ye = rng.uniform_vector(n, -1.0, 1.0);
        EXPECT_EQ(kernel.dot(xe, ye), device_dot(ddot, cfg, xe, ye))
            << "n=" << n << " adc=" << adc << " fs=" << fs;
      }
    }
  }
}

TEST(FusedKernel, NonOpticsPathMatchesFlatReduction) {
  const Ddot ddot;  // irrelevant on the algebraic path
  DotEngineConfig cfg;
  cfg.wavelengths = 8;
  cfg.use_full_optics = false;
  cfg.adc_readout = true;
  const FusedKernel kernel(ddot, cfg);
  Rng rng(23);
  const auto xe = rng.uniform_vector(19, -1.0, 1.0);
  const auto ye = rng.uniform_vector(19, -1.0, 1.0);
  EXPECT_EQ(kernel.dot(xe, ye), device_dot(ddot, cfg, xe, ye));
}

TEST(FusedKernel, EventChargesMatchDotPreencoded) {
  const auto drv = core::make_pdac_driver(8);
  DotEngineConfig cfg;
  cfg.wavelengths = 4;
  cfg.use_full_optics = true;
  const PhotonicDotEngine engine(*drv, cfg);
  const FusedKernel kernel(engine);
  Rng rng(31);
  for (std::size_t n : {1u, 4u, 9u, 17u}) {
    std::vector<double> xe(n), ye(n);
    const auto x = rng.uniform_vector(n, -1.0, 1.0);
    const auto y = rng.uniform_vector(n, -1.0, 1.0);
    engine.encode_span(x, xe);
    engine.encode_span(y, ye);
    EventCounter kev, dev_ev;
    const double got = kernel.dot(xe, ye, &kev);
    const double want = engine.dot_preencoded(xe, ye, &dev_ev);
    EXPECT_EQ(got, want) << "n=" << n;
    expect_events_equal(kev, dev_ev);
  }
}

TEST(FusedKernel, DdotScratchOverloadsBitIdentical) {
  // The allocation-free Ddot overloads (satellite of the kernel work)
  // must match the allocating ones bit for bit, including masked
  // execution and scratch reuse across differently-shaped calls.
  const Ddot ddot = custom_ddot();
  Rng rng(41);
  DdotScratch scratch;
  for (std::size_t n : {6u, 3u, 6u, 1u}) {  // shrink then regrow the scratch
    photonics::DualRail rails{photonics::WdmField(n), photonics::WdmField(n)};
    std::vector<std::uint8_t> mask(n, 1);
    for (std::size_t ch = 0; ch < n; ++ch) {
      rails.upper.set_amplitude(ch, photonics::Complex{rng.uniform(-1.0, 1.0), 0.0});
      rails.lower.set_amplitude(ch, photonics::Complex{rng.uniform(-1.0, 1.0), 0.0});
      if (rng.integer(0, 2) == 0) mask[ch] = 0;
    }
    const DdotReading plain = ddot.compute(rails);
    const DdotReading staged = ddot.compute(rails, scratch);
    EXPECT_EQ(plain.i_plus, staged.i_plus);
    EXPECT_EQ(plain.i_minus, staged.i_minus);

    const DdotReading masked = ddot.compute_masked(rails, mask);
    const DdotReading masked_staged = ddot.compute_masked(rails, mask, scratch);
    EXPECT_EQ(masked.i_plus, masked_staged.i_plus);
    EXPECT_EQ(masked.i_minus, masked_staged.i_minus);

    const auto xs = rng.uniform_vector(n, -1.0, 1.0);
    const auto ys = rng.uniform_vector(n, -1.0, 1.0);
    const DdotReading span_plain = ddot.compute(xs, ys);
    const DdotReading span_staged = ddot.compute(xs, ys, scratch);
    EXPECT_EQ(span_plain.i_plus, span_staged.i_plus);
    EXPECT_EQ(span_plain.i_minus, span_staged.i_minus);
  }
}

/// One fuzz draw of a GEMM configuration (shape, wavelengths, lane
/// holes, optics/ADC/guard switches, array geometry, thread count).
struct FuzzCase {
  std::size_t m, k, n;
  GemmConfig cfg;
};

FuzzCase draw_case(Rng& rng) {
  FuzzCase fc;
  fc.m = static_cast<std::size_t>(rng.integer(1, 20));
  fc.k = static_cast<std::size_t>(rng.integer(1, 33));
  fc.n = static_cast<std::size_t>(rng.integer(1, 20));
  fc.cfg.dot.wavelengths = static_cast<std::size_t>(rng.integer(1, 8));
  fc.cfg.dot.use_full_optics = rng.integer(0, 1) == 1;
  fc.cfg.dot.adc_readout = rng.integer(0, 1) == 1;
  fc.cfg.dot.adc_full_scale = rng.integer(0, 1) == 1 ? 2.5 : 0.0;
  if (fc.cfg.dot.wavelengths > 1 && rng.integer(0, 1) == 1) {
    fc.cfg.dot.lane_mask.assign(fc.cfg.dot.wavelengths, 1);
    // Punch holes but keep at least one lane alive.
    for (std::size_t ch = 1; ch < fc.cfg.dot.wavelengths; ++ch) {
      if (rng.integer(0, 2) == 0) fc.cfg.dot.lane_mask[ch] = 0;
    }
  }
  fc.cfg.array_rows = static_cast<std::size_t>(rng.integer(1, 8));
  fc.cfg.array_cols = static_cast<std::size_t>(rng.integer(1, 8));
  fc.cfg.threads = static_cast<std::size_t>(rng.integer(1, 4));
  fc.cfg.guard.enabled = rng.integer(0, 1) == 1;
  return fc;
}

TEST(KernelGemmEquivalence, FuzzMultiplyBitIdentical) {
  // The tentpole contract: across random shapes, wavelength counts,
  // lane-mask holes, optics/ADC settings, guard on/off and thread
  // counts, the kernel path and the device-graph path produce the same
  // bits — outputs, every EventCounter field, and the guard verdicts.
  const auto drv = core::make_pdac_driver(8);
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    FuzzCase fc = draw_case(rng);
    fc.cfg.path = ExecutionPath::kKernel;
    const PhotonicGemm kernel_gemm(*drv, fc.cfg);
    fc.cfg.path = ExecutionPath::kDeviceGraph;
    const PhotonicGemm device_gemm(*drv, fc.cfg);

    const Matrix a = Matrix::random_gaussian(fc.m, fc.k, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(fc.k, fc.n, rng, 0.0, 1.0);
    const GemmResult kr = kernel_gemm.multiply(a, b);
    const GemmResult dr = device_gemm.multiply(a, b);

    expect_bit_identical(kr.c, dr.c);
    expect_events_equal(kr.events, dr.events);
    expect_events_equal(kr.events, kernel_gemm.count_events(fc.m, fc.k, fc.n));
    EXPECT_EQ(kr.guard.enabled, dr.guard.enabled);
    EXPECT_EQ(kr.guard.tiles_checked, dr.guard.tiles_checked);
    EXPECT_EQ(kr.guard.mismatched_tiles, dr.guard.mismatched_tiles);
    EXPECT_EQ(kr.guard.first_mismatch, dr.guard.first_mismatch);
    EXPECT_EQ(kr.guard.worst_residual, dr.guard.worst_residual);
    EXPECT_EQ(kr.guard.worst_tolerance, dr.guard.worst_tolerance);
    // Clean-run guard verdicts: with ADC off the residual is pure
    // reassociation and must sit inside the band.  (With ADC on and no
    // calibrated noise band, quantization legitimately trips the guard —
    // identically on both paths, which the checks above already pin.)
    if (fc.cfg.guard.enabled && !fc.cfg.dot.adc_readout) {
      EXPECT_EQ(kr.guard.mismatched_tiles, 0u) << "trial " << trial;
    }
  }
}

TEST(KernelGemmEquivalence, PreparedPathBitIdentical) {
  // Weight-stationary products must hold the same contract: one
  // PreparedOperand consumed by both paths yields the same bits.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.wavelengths = 4;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.array_rows = 3;
  cfg.array_cols = 5;
  cfg.guard.enabled = true;
  cfg.path = ExecutionPath::kKernel;
  const PhotonicGemm kernel_gemm(*drv, cfg);
  cfg.path = ExecutionPath::kDeviceGraph;
  const PhotonicGemm device_gemm(*drv, cfg);

  Rng rng(7);
  const Matrix a = Matrix::random_gaussian(11, 21, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(21, 13, rng, 0.0, 1.0);
  const PreparedOperand pb = kernel_gemm.prepare_b(b);
  const GemmResult kr = kernel_gemm.multiply_prepared(a, pb);
  const GemmResult dr = device_gemm.multiply_prepared(a, pb);
  const GemmResult full = kernel_gemm.multiply(a, b);
  expect_bit_identical(kr.c, dr.c);
  expect_bit_identical(kr.c, full.c);
  expect_events_equal(kr.events, dr.events);
  expect_events_equal(kr.events, full.events);
}

// ---------------------------------------------------------------------
// SIMD fast tier (ExecutionPath::kKernelSimd, common/simd.hpp)

/// Tolerance band for one SIMD-tier output element vs the scalar kernel,
/// in the rescaled output domain — the ABFT machinery reused as the
/// identity gate: fp reassociation term for a single dot (fan = 1,
/// mag ≤ k) plus the calibrated ADC quantization sigma, which covers the
/// ≤1-LSB code divergence two in-band raw values can straddle.
double simd_band(const GemmConfig& cfg, std::size_t k, double rescale) {
  GuardConfig g;  // default fp_slack / zscore
  g.noise_sigma = calibrate_guard_sigma(cfg.dot, k);
  return rescale * guard_tolerance(g, k, 1, static_cast<double>(k));
}

void expect_within_band(const Matrix& simd, const Matrix& scalar, double band,
                        int trial = -1) {
  ASSERT_EQ(simd.rows(), scalar.rows());
  ASSERT_EQ(simd.cols(), scalar.cols());
  for (std::size_t i = 0; i < simd.size(); ++i) {
    const double d = std::abs(simd.data()[i] - scalar.data()[i]);
    ASSERT_LE(d, band) << "element " << i << " trial " << trial;
  }
}

TEST(KernelSimdTier, PrimitivesMatchNaiveReduction) {
  // The simd wrapper's blocked dots vs single-chain references, across
  // lengths hitting every tail shape (0, sub-block, block+tail).
  Rng rng(57);
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u, 100u}) {
    const auto x = rng.uniform_vector(n, -1.0, 1.0);
    std::vector<std::vector<double>> ys;
    for (int b = 0; b < 4; ++b) ys.push_back(rng.uniform_vector(n, -1.0, 1.0));
    const auto naive = [&](const std::vector<double>& y) {
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += x[p] * y[p];
      return acc;
    };
    const double band = 64.0 * std::numeric_limits<double>::epsilon() *
                        static_cast<double>(std::max<std::size_t>(n, 1));
    EXPECT_NEAR(simd::dot(x.data(), ys[0].data(), n), naive(ys[0]), band);
    EXPECT_NEAR(simd::dot_self(x.data(), n), [&] {
      double acc = 0.0;
      for (std::size_t p = 0; p < n; ++p) acc += x[p] * x[p];
      return acc;
    }(), band);
    const double* yp[4] = {ys[0].data(), ys[1].data(), ys[2].data(), ys[3].data()};
    double out[4];
    simd::dot4(x.data(), yp, n, out);
    for (int b = 0; b < 4; ++b) EXPECT_NEAR(out[b], naive(ys[b]), band) << "n=" << n;
  }
}

TEST(KernelSimdTier, FuzzWithinToleranceBandOfScalarKernel) {
  // The fast-tier contract, fuzzed across the same case space as the
  // scalar tier's bit-identity gate: random shapes (ragged edges
  // included), wavelength counts, lane-mask holes, optics/ADC settings,
  // guard on/off and thread counts.  Outputs sit inside the ABFT-derived
  // band; event counts match the scalar tier — and count_events —
  // field for field.
  const auto drv = core::make_pdac_driver(8);
  Rng rng(4071);
  for (int trial = 0; trial < 40; ++trial) {
    FuzzCase fc = draw_case(rng);
    fc.cfg.path = ExecutionPath::kKernel;
    const PhotonicGemm scalar_gemm(*drv, fc.cfg);
    fc.cfg.path = ExecutionPath::kKernelSimd;
    const PhotonicGemm simd_gemm(*drv, fc.cfg);

    const Matrix a = Matrix::random_gaussian(fc.m, fc.k, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(fc.k, fc.n, rng, 0.0, 1.0);
    const GemmResult sr = scalar_gemm.multiply(a, b);
    const GemmResult vr = simd_gemm.multiply(a, b);

    EXPECT_EQ(vr.a_scale, sr.a_scale);
    EXPECT_EQ(vr.b_scale, sr.b_scale);
    expect_within_band(vr.c, sr.c, simd_band(fc.cfg, fc.k, sr.a_scale * sr.b_scale), trial);
    expect_events_equal(vr.events, sr.events);
    expect_events_equal(vr.events, simd_gemm.count_events(fc.m, fc.k, fc.n));
    EXPECT_EQ(vr.guard.enabled, sr.guard.enabled);
    EXPECT_EQ(vr.guard.tiles_checked, sr.guard.tiles_checked);
    EXPECT_EQ(vr.guard.checksum_events.macs, sr.guard.checksum_events.macs);
    // Clean guarded runs with ADC off: the fast tier's reassociation is
    // exactly what guard_tolerance's fp term budgets for, so the guard
    // must stay silent on it.
    if (fc.cfg.guard.enabled && !fc.cfg.dot.adc_readout) {
      EXPECT_EQ(vr.guard.mismatched_tiles, 0u) << "trial " << trial;
    }
  }
}

TEST(KernelSimdTier, RaggedColumnTailsStayInBand) {
  // Deterministic sweep of the block/tail seams the 4-wide column
  // blocking creates: n below, at, and straddling the block width, on
  // the full-optics + ADC hot configuration with multiple workers.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.wavelengths = 3;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.array_rows = 3;
  cfg.array_cols = 5;
  cfg.threads = 2;
  Rng rng(83);
  for (const std::size_t n : {1u, 3u, 4u, 5u, 6u, 8u, 11u}) {
    cfg.path = ExecutionPath::kKernel;
    const PhotonicGemm scalar_gemm(*drv, cfg);
    cfg.path = ExecutionPath::kKernelSimd;
    const PhotonicGemm simd_gemm(*drv, cfg);
    const Matrix a = Matrix::random_gaussian(5, 13, rng, 0.0, 1.0);
    const Matrix b = Matrix::random_gaussian(13, n, rng, 0.0, 1.0);
    const GemmResult sr = scalar_gemm.multiply(a, b);
    const GemmResult vr = simd_gemm.multiply(a, b);
    expect_within_band(vr.c, sr.c, simd_band(cfg, 13, sr.a_scale * sr.b_scale));
    expect_events_equal(vr.events, sr.events);
  }
}

TEST(KernelSimdTier, PreparedPathMatchesMultiply) {
  // Weight-stationary products on the fast tier: one PreparedOperand,
  // multiply vs prepare+multiply_prepared — bit-identical to each other
  // (same tier, same code path) with equal events.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.wavelengths = 4;
  cfg.dot.use_full_optics = true;
  cfg.dot.adc_readout = true;
  cfg.guard.enabled = true;
  cfg.path = ExecutionPath::kKernelSimd;
  const PhotonicGemm simd_gemm(*drv, cfg);

  Rng rng(7);
  const Matrix a = Matrix::random_gaussian(11, 21, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(21, 13, rng, 0.0, 1.0);
  const PreparedOperand pb = simd_gemm.prepare_b(b);
  const GemmResult split = simd_gemm.multiply_prepared(a, pb);
  const GemmResult fused = simd_gemm.multiply(a, b);
  expect_bit_identical(split.c, fused.c);
  expect_events_equal(split.events, fused.events);
}

TEST(KernelSimdTier, GuardCatchesCorruptionIdenticallyToScalar) {
  // The storm-facing half of the contract: the ABFT guard rides the
  // fast tier unchanged.  A latched element in the encoded operand
  // (checksums already built — the prepared-state corruption the guard
  // exists for) must be flagged by both tiers, at the same tile.
  const auto drv = core::make_pdac_driver(8);
  GemmConfig cfg;
  cfg.dot.wavelengths = 4;
  cfg.dot.use_full_optics = true;
  cfg.guard.enabled = true;
  cfg.array_rows = 4;
  cfg.array_cols = 4;

  Rng rng(19);
  const Matrix a = Matrix::random_gaussian(8, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 12, rng, 0.0, 1.0);

  cfg.path = ExecutionPath::kKernel;
  const PhotonicGemm scalar_gemm(*drv, cfg);
  cfg.path = ExecutionPath::kKernelSimd;
  const PhotonicGemm simd_gemm(*drv, cfg);

  PreparedOperand pb = scalar_gemm.prepare_b(b);
  pb.encoded(5, 3) += 0.75;  // silent corruption after checksum build

  const GemmResult sr = scalar_gemm.multiply_prepared(a, pb);
  const GemmResult vr = simd_gemm.multiply_prepared(a, pb);
  EXPECT_GT(sr.guard.mismatched_tiles, 0u);
  EXPECT_GT(vr.guard.mismatched_tiles, 0u);
  EXPECT_EQ(vr.guard.mismatched_tiles, sr.guard.mismatched_tiles);
  EXPECT_EQ(vr.guard.first_mismatch, sr.guard.first_mismatch);
  // The corruption's residual dwarfs the tiers' reassociation delta.
  EXPECT_NEAR(vr.guard.worst_residual, sr.guard.worst_residual,
              1e-6 * std::max(1.0, sr.guard.worst_residual));
}

// ---------------------------------------------------------------------
// faults-layer coefficient table (faults/lane_table.hpp)

faults::LaneBankConfig bank_config(std::uint64_t seed = 11) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

faults::FaultSchedule storm_schedule(std::size_t lanes) {
  // A mixed storm: stuck modulator, TIA gain step and a derated receive
  // PD landing at different steps of one product.
  faults::FaultSchedule sched;
  sched.cfg.lanes = lanes;
  sched.cfg.bits = 8;
  sched.cfg.horizon_steps = 16;
  faults::FaultEvent stuck;
  stuck.step = 1;
  stuck.lane = 2;
  stuck.kind = faults::FaultKind::kStuckMrr;
  stuck.magnitude = 0.4;
  sched.events.push_back(stuck);
  faults::FaultEvent tia;
  tia.step = 3;
  tia.lane = 5;
  tia.kind = faults::FaultKind::kTiaGainStep;
  tia.magnitude = 1.3;
  tia.bit = 2;
  sched.events.push_back(tia);
  faults::FaultEvent pd;
  pd.step = 5;
  pd.lane = 1;
  pd.kind = faults::FaultKind::kDegradedPd;
  pd.magnitude = 0.7;
  sched.events.push_back(pd);
  return sched;
}

TEST(LaneEncodeTable, MatchesBankEncodesAcrossMutations) {
  faults::LaneBank bank(bank_config());
  faults::production_trim(bank);
  faults::LaneEncodeTable table;
  table.ensure(bank);
  ASSERT_TRUE(table.fresh(bank));

  const auto sweep = [&] {
    for (std::size_t rail = 0; rail < faults::LaneBank::kRails; ++rail) {
      for (std::size_t ch = 0; ch < bank.wavelengths(); ++ch) {
        for (double r : {-1.0, -0.73, -0.2, 0.0, 0.31, 0.99, 1.0, 1.7}) {
          ASSERT_EQ(table.encode(rail, ch, r), bank.encode(rail, ch, r))
              << "rail=" << rail << " ch=" << ch << " r=" << r;
        }
      }
    }
  };
  sweep();

  // An injected fault bumps the epoch: the table must report stale, and
  // after re-ensure() serve the *faulted* transfer.
  faults::FaultInjector injector(bank, storm_schedule(bank.lanes()));
  injector.advance_to(6);
  EXPECT_FALSE(table.fresh(bank));
  table.ensure(bank);
  ASSERT_TRUE(table.fresh(bank));
  sweep();
}

TEST(LaneEncodeTable, DegradedBackendTableOnOffBitIdentical) {
  faults::LaneBank bank(bank_config());
  faults::production_trim(bank);
  // Degrade the bank first (fault + a fence) so the packing has a hole.
  faults::FaultInjector injector(bank, storm_schedule(bank.lanes()));
  injector.advance_to(4);
  bank.lane(0, 3).fenced = true;
  bank.bump_epoch();

  faults::DegradedBackendConfig on;
  faults::DegradedBackendConfig off;
  off.use_lane_table = false;
  faults::DegradedBackend with_table(bank, on);
  faults::DegradedBackend without(bank, off);

  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(12, 19, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(19, 10, rng, 0.0, 1.0);
  expect_bit_identical(with_table.matmul(a, b), without.matmul(a, b));
  const nn::WeightHandle w{3, 1};
  expect_bit_identical(with_table.matmul_cached(a, b, w), without.matmul_cached(a, b, w));
  expect_events_equal(with_table.events(), without.events());
}

TEST(LaneEncodeTable, GuardedStormTableOnOffBitIdentical) {
  // Two identically seeded banks under the same mid-product storm: the
  // guarded pipeline (detection, escalation ladder, re-prepares) must
  // behave bit-identically whether current-state encodes come from the
  // table or the live models.
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(14, 22, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(22, 12, rng, 0.0, 1.0);

  const auto run = [&](bool use_table, Matrix* out) {
    faults::LaneBank bank(bank_config());
    faults::production_trim(bank);
    faults::GuardedBackendConfig cfg;
    cfg.use_lane_table = use_table;
    faults::GuardedBackend backend(bank, cfg);
    faults::FaultInjector injector(bank, storm_schedule(bank.lanes()));
    backend.attach_storm(&injector, 1);
    *out = backend.matmul(a, b);
    return std::make_pair(backend.events(), backend.monitor().snapshot());
  };

  Matrix with_table, without;
  const auto [ev_on, snap_on] = run(true, &with_table);
  const auto [ev_off, snap_off] = run(false, &without);
  expect_bit_identical(with_table, without);
  expect_events_equal(ev_on, ev_off);
  EXPECT_EQ(snap_on.products, snap_off.products);
  EXPECT_EQ(snap_on.detections, snap_off.detections);
  EXPECT_EQ(snap_on.mismatched_tiles, snap_off.mismatched_tiles);
  EXPECT_EQ(snap_on.worst_residual, snap_off.worst_residual);
}

}  // namespace
