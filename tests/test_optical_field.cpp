// Unit tests for the optical-field representation.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "photonics/optical_field.hpp"

namespace {

using namespace pdac::photonics;

TEST(FieldSample, IntensityIsHalfNormSquared) {
  FieldSample s{Complex{3.0, 4.0}};  // |E|² = 25
  EXPECT_DOUBLE_EQ(s.intensity(), 12.5);
}

TEST(FieldSample, ZeroFieldHasZeroIntensity) {
  EXPECT_DOUBLE_EQ(FieldSample{}.intensity(), 0.0);
}

TEST(FieldSample, IntensityIsPhaseInvariant) {
  FieldSample a{Complex{1.0, 0.0}};
  FieldSample b{std::polar(1.0, 2.1)};
  EXPECT_NEAR(a.intensity(), b.intensity(), 1e-15);
}

TEST(WdmField, ConstructionAndAccess) {
  WdmField f(4);
  EXPECT_EQ(f.channels(), 4u);
  for (std::size_t ch = 0; ch < 4; ++ch) EXPECT_EQ(f.amplitude(ch), (Complex{0.0, 0.0}));
  f.set_amplitude(2, Complex{1.0, -1.0});
  EXPECT_EQ(f.amplitude(2), (Complex{1.0, -1.0}));
}

TEST(WdmField, FromAmplitudeVector) {
  WdmField f(std::vector<Complex>{{1.0, 0.0}, {0.0, 2.0}});
  EXPECT_EQ(f.channels(), 2u);
  EXPECT_DOUBLE_EQ(f.intensity(0), 0.5);
  EXPECT_DOUBLE_EQ(f.intensity(1), 2.0);
}

TEST(WdmField, TotalIntensitySumsChannels) {
  WdmField f(3);
  f.set_amplitude(0, Complex{1.0, 0.0});  // I = 0.5
  f.set_amplitude(1, Complex{0.0, 2.0});  // I = 2.0
  f.set_amplitude(2, Complex{1.0, 1.0});  // I = 1.0
  EXPECT_DOUBLE_EQ(f.total_intensity(), 3.5);
}

TEST(WdmField, ChannelBoundsChecked) {
  WdmField f(2);
  EXPECT_THROW((void)f.amplitude(2), pdac::PreconditionError);
  EXPECT_THROW((void)f.set_amplitude(5, Complex{}), pdac::PreconditionError);
  EXPECT_THROW((void)f.intensity(2), pdac::PreconditionError);
}

TEST(WdmField, EmptyFieldTotalIntensityZero) {
  WdmField f;
  EXPECT_EQ(f.channels(), 0u);
  EXPECT_DOUBLE_EQ(f.total_intensity(), 0.0);
}

TEST(DualRail, ChannelCountConsistency) {
  DualRail rails{WdmField(3), WdmField(3)};
  EXPECT_EQ(rails.channels(), 3u);
}

}  // namespace
