// Tests for the encode-error characterization utilities.
#include <gtest/gtest.h>

#include "common/require.hpp"
#include "core/error_model.hpp"

namespace {

using namespace pdac;
using namespace pdac::core;

TEST(SweepEncodeError, PdacWorstRelAtBreakpoint) {
  const auto drv = make_pdac_driver(8);
  const auto rep = sweep_encode_error(*drv);
  EXPECT_NEAR(std::abs(rep.worst_rel_at), 0.7236, 0.03);
  EXPECT_GT(rep.worst_rel, 0.07);
  EXPECT_LT(rep.worst_rel, 0.10);
}

TEST(SweepEncodeError, IdealDacMeanErrorBelowPdac) {
  const auto ideal = sweep_encode_error(*make_ideal_dac_driver(8));
  const auto pd = sweep_encode_error(*make_pdac_driver(8));
  EXPECT_LT(ideal.abs_error.mean(), pd.abs_error.mean());
}

TEST(SweepEncodeError, CountsAllSamples) {
  const auto drv = make_pdac_driver(4);
  const auto rep = sweep_encode_error(*drv, 101);
  EXPECT_EQ(rep.abs_error.count(), 101u);
  EXPECT_EQ(rep.rel_error.count(), 101u);
}

TEST(SweepEncodeError, RejectsTooFewSamples) {
  const auto drv = make_pdac_driver(4);
  EXPECT_THROW(sweep_encode_error(*drv, 2), PreconditionError);
}

TEST(ExpectedAbsError, UniformMatchesDirectIntegral) {
  const auto paper = PiecewiseLinearArccos::paper();
  const double e = expected_abs_error(paper, uniform_pdf);
  EXPECT_GT(e, 0.015);
  EXPECT_LT(e, 0.03);
}

TEST(ExpectedAbsError, ShrinksForConcentratedActivations) {
  // The paper's LLM-tolerance argument: activations near zero see almost
  // no approximation error.
  const auto paper = PiecewiseLinearArccos::paper();
  const double wide = expected_abs_error(paper, gaussian_pdf(0.5));
  const double narrow = expected_abs_error(paper, gaussian_pdf(0.1));
  EXPECT_LT(narrow, 0.1 * wide);
}

TEST(ExpectedAbsError, ThreeSegmentsBeatOneSegmentUniform) {
  const auto paper = PiecewiseLinearArccos::paper();
  const auto taylor = PiecewiseLinearArccos::with_breakpoint(0.999999);
  EXPECT_LT(expected_abs_error(paper, uniform_pdf),
            expected_abs_error(taylor, uniform_pdf));
}

TEST(Densities, UniformPdfNormalization) {
  EXPECT_DOUBLE_EQ(uniform_pdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(uniform_pdf(2.0), 0.0);
  EXPECT_DOUBLE_EQ(uniform_pdf(-2.0), 0.0);
}

TEST(Densities, GaussianPdfShape) {
  const auto pdf = gaussian_pdf(0.5);
  EXPECT_GT(pdf(0.0), pdf(0.5));
  EXPECT_GT(pdf(0.5), pdf(1.0));
  EXPECT_DOUBLE_EQ(pdf(1.5), 0.0);  // truncated outside [−1, 1]
  EXPECT_THROW(gaussian_pdf(0.0), PreconditionError);
}

}  // namespace
