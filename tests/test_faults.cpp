// Unit tests for the fault-injection + graceful-degradation subsystem:
// seeded schedules, the injector, the self-test/recovery loop, and the
// degraded GEMM backend.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "common/stats.hpp"
#include "faults/degraded_backend.hpp"
#include "faults/fault_injector.hpp"
#include "faults/self_test.hpp"

namespace {

using namespace pdac;

faults::LaneBankConfig small_bank_config(std::uint64_t seed = 5) {
  faults::LaneBankConfig cfg;
  cfg.pdac.bits = 8;
  cfg.wavelengths = 4;
  cfg.variation.tia_gain_sigma = 0.01;
  cfg.variation.bias_sigma = 0.002;
  cfg.variation.vpi_drift_sigma = 0.005;
  cfg.variation.seed = seed;
  return cfg;
}

faults::FaultScheduleConfig quiet_schedule(std::size_t lanes) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = lanes;
  cfg.bits = 8;
  cfg.horizon_steps = 64;
  return cfg;  // all rates zero: a healthy timeline
}

/// A single-event schedule for targeted fault tests.
faults::FaultSchedule one_event(std::size_t lanes, faults::FaultEvent ev) {
  faults::FaultSchedule sched;
  sched.cfg.lanes = lanes;
  sched.cfg.bits = 8;
  sched.cfg.horizon_steps = 8;
  sched.events.push_back(ev);
  return sched;
}

TEST(FaultSchedule, ReplayIsDeterministic) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = 32;
  cfg.bits = 8;
  cfg.horizon_steps = 64;
  cfg.hard_fault_rate = 0.3;
  cfg.drift_fault_rate = 0.5;
  cfg.seed = 1234;
  const auto a = faults::generate_fault_schedule(cfg);
  const auto b = faults::generate_fault_schedule(cfg);
  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_FALSE(a.events.empty());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(faults::to_string(a.events[i]), faults::to_string(b.events[i]));
  }
  // Events are sorted by time and a different seed reshuffles them.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GE(a.events[i].step, a.events[i - 1].step);
  }
  cfg.seed = 4321;
  const auto c = faults::generate_fault_schedule(cfg);
  bool any_difference = c.events.size() != a.events.size();
  for (std::size_t i = 0; !any_difference && i < a.events.size(); ++i) {
    any_difference = faults::to_string(a.events[i]) != faults::to_string(c.events[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultSchedule, RejectsOutOfRangeRates) {
  faults::FaultScheduleConfig cfg;
  cfg.hard_fault_rate = 1.5;
  EXPECT_THROW(faults::generate_fault_schedule(cfg), PreconditionError);
}

TEST(FaultInjector, HealthyTimelineIsBitIdentical) {
  // The property the non-invasive hook design guarantees: a device under
  // an all-quiet injector computes the SAME bits as one never touched.
  faults::LaneBank with_injector(small_bank_config());
  faults::LaneBank untouched(small_bank_config());
  faults::FaultInjector injector(
      with_injector, faults::generate_fault_schedule(quiet_schedule(8)));
  injector.advance_to(64);
  EXPECT_EQ(injector.events_applied(), 0u);
  EXPECT_DOUBLE_EQ(injector.laser_power_scale(), 1.0);
  for (std::size_t lane = 0; lane < with_injector.lanes(); ++lane) {
    for (std::int32_t c = -127; c <= 127; ++c) {
      // Exact equality, not EXPECT_NEAR: the healthy path must be
      // bit-identical, there is no forked code path to drift apart.
      EXPECT_EQ(with_injector.lane(lane).model.encode_code(c),
                untouched.lane(lane).model.encode_code(c));
    }
  }
}

TEST(FaultInjector, SeededReplayReproducesLaneStates) {
  faults::FaultScheduleConfig cfg;
  cfg.lanes = 8;
  cfg.bits = 8;
  cfg.horizon_steps = 32;
  cfg.hard_fault_rate = 0.25;
  cfg.drift_fault_rate = 0.5;
  cfg.bias_walk_sigma_per_step = 0.003;
  cfg.laser_droop_per_step = 0.001;
  cfg.seed = 99;

  faults::LaneBank bank_a(small_bank_config());
  faults::LaneBank bank_b(small_bank_config());
  faults::FaultInjector inj_a(bank_a, faults::generate_fault_schedule(cfg));
  faults::FaultInjector inj_b(bank_b, faults::generate_fault_schedule(cfg));
  // Different advance granularity, same end step: replay must converge.
  inj_a.advance_to(32);
  inj_b.advance_to(7);
  inj_b.advance_to(20);
  inj_b.advance_to(32);
  EXPECT_EQ(inj_a.events_applied(), inj_b.events_applied());
  EXPECT_DOUBLE_EQ(inj_a.laser_power_scale(), inj_b.laser_power_scale());
  for (std::size_t lane = 0; lane < bank_a.lanes(); ++lane) {
    for (std::int32_t c = -127; c <= 127; c += 3) {
      EXPECT_EQ(bank_a.lane(lane).model.encode_code(c),
                bank_b.lane(lane).model.encode_code(c));
    }
  }
}

TEST(FaultInjector, ClockCannotRewind) {
  faults::LaneBank bank(small_bank_config());
  faults::FaultInjector injector(bank, faults::generate_fault_schedule(quiet_schedule(8)));
  injector.advance_to(10);
  EXPECT_THROW(injector.advance_to(5), PreconditionError);
}

TEST(SelfTest, StuckMrrIsDetectedAndFenced) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::FaultEvent ev;
  ev.step = 1;
  ev.lane = 3;
  ev.kind = faults::FaultKind::kStuckMrr;
  ev.magnitude = 0.4;
  faults::FaultInjector injector(bank, one_event(bank.lanes(), ev));
  injector.advance_to(8);

  const auto report = faults::run_self_test(bank);
  EXPECT_EQ(report.dead, 1u);
  EXPECT_EQ(report.lanes[3].verdict, faults::LaneVerdict::kDead);
  EXPECT_TRUE(bank.lane(3).fenced);
  EXPECT_GT(report.probe_events, 0u);
  // Rail 0 spans lanes [0, W), so lane 3 is the x rail of channel 3.
  const auto mask = bank.channel_mask();
  EXPECT_EQ(mask[3], 0u);
  EXPECT_EQ(bank.usable_channels(), bank.wavelengths() - 1);
}

TEST(SelfTest, DeadPdBitIsUnrecoverable) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::FaultEvent ev;
  ev.step = 1;
  ev.lane = 5;
  ev.kind = faults::FaultKind::kDeadPd;
  ev.bit = 7;  // MSB: every negative code loses its largest weight
  faults::FaultInjector injector(bank, one_event(bank.lanes(), ev));
  injector.advance_to(8);

  const auto report = faults::run_self_test(bank);
  EXPECT_EQ(report.lanes[5].verdict, faults::LaneVerdict::kDead);
  EXPECT_TRUE(report.lanes[5].retrimmed);  // recovery was attempted, failed
  EXPECT_TRUE(bank.lane(5).fenced);
}

TEST(SelfTest, BiasDriftIsRecoveredByRetrim) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::FaultEvent ev;
  ev.step = 1;
  ev.lane = 2;
  ev.kind = faults::FaultKind::kBiasStep;
  ev.segment = 1;
  ev.magnitude = 0.1;  // radians — far outside the 8.5 % budget
  faults::FaultInjector injector(bank, one_event(bank.lanes(), ev));
  injector.advance_to(8);

  const auto report = faults::run_self_test(bank);
  EXPECT_EQ(report.lanes[2].verdict, faults::LaneVerdict::kRecovered);
  EXPECT_FALSE(bank.lane(2).fenced);
  EXPECT_GT(report.lanes[2].screen_error_before, 0.085);
  EXPECT_LE(report.lanes[2].screen_error_after, 0.085);
  EXPECT_EQ(report.retrims, 1u);
  EXPECT_EQ(bank.usable_channels(), bank.wavelengths());
}

TEST(SelfTest, DetectOnlyFencesInsteadOfRecovering) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::FaultEvent ev;
  ev.step = 1;
  ev.lane = 2;
  ev.kind = faults::FaultKind::kBiasStep;
  ev.segment = 1;
  ev.magnitude = 0.1;
  faults::FaultInjector injector(bank, one_event(bank.lanes(), ev));
  injector.advance_to(8);

  faults::SelfTestConfig cfg;
  cfg.attempt_recovery = false;
  const auto report = faults::run_self_test(bank, cfg);
  EXPECT_EQ(report.lanes[2].verdict, faults::LaneVerdict::kDead);
  EXPECT_TRUE(bank.lane(2).fenced);
  EXPECT_EQ(report.retrims, 0u);
}

TEST(DegradedBackend, HealthyBankMatchesReferenceClosely) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::DegradedBackend backend(bank);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(5, 9, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(9, 4, rng, 0.0, 1.0);
  const Matrix exact = matmul_reference(a, b);
  const Matrix got = backend.matmul(a, b);
  const auto err = stats::compare(got.data(), exact.data());
  EXPECT_GT(err.cosine, 0.995);
  EXPECT_GT(backend.events().cycles, 0u);
}

TEST(DegradedBackend, FencedChannelsStretchCycles) {
  faults::LaneBank bank(small_bank_config());
  faults::production_trim(bank);
  faults::DegradedBackend backend(bank);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(4, 16, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(16, 4, rng, 0.0, 1.0);
  (void)backend.matmul(a, b);
  const auto healthy_cycles = backend.events().cycles;

  bank.lane(0, 1).fenced = true;  // channel 1 loses its x rail
  bank.lane(1, 2).fenced = true;  // channel 2 loses its y rail
  backend.reset_events();
  const Matrix degraded = backend.matmul(a, b);
  EXPECT_GT(backend.events().cycles, healthy_cycles);
  // Still numerically useful — masked, not poisoned.
  const auto err = stats::compare(degraded.data(), matmul_reference(a, b).data());
  EXPECT_GT(err.cosine, 0.99);
}

TEST(DegradedBackend, FullyFencedBankIsAnOutage) {
  faults::LaneBank bank(small_bank_config());
  for (std::size_t i = 0; i < bank.lanes(); ++i) bank.lane(i).fenced = true;
  faults::DegradedBackend backend(bank);
  Rng rng(3);
  const Matrix a = Matrix::random_gaussian(2, 4, rng, 0.0, 1.0);
  const Matrix b = Matrix::random_gaussian(4, 2, rng, 0.0, 1.0);
  const Matrix out = backend.matmul(a, b);
  for (double v : out.data()) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(backend.events().cycles, 0u);
}

TEST(LaneBank, ChannelMaskRequiresBothRails) {
  faults::LaneBank bank(small_bank_config());
  EXPECT_EQ(bank.lanes(), 2 * bank.wavelengths());
  bank.lane(1, 0).fenced = true;  // y rail of channel 0
  const auto mask = bank.channel_mask();
  EXPECT_EQ(mask[0], 0u);
  for (std::size_t ch = 1; ch < bank.wavelengths(); ++ch) EXPECT_EQ(mask[ch], 1u);
  EXPECT_EQ(bank.fenced_lanes(), 1u);
}

TEST(FaultInjector, LaserDroopScalesEveryLane) {
  faults::FaultScheduleConfig cfg = quiet_schedule(8);
  cfg.laser_droop_per_step = 0.01;
  faults::LaneBank bank(small_bank_config());
  const double before = bank.lane(0).model.encode_code(100);
  faults::FaultInjector injector(bank, faults::generate_fault_schedule(cfg));
  injector.advance_to(10);
  const double expected_scale = std::pow(0.99, 10);
  EXPECT_NEAR(injector.laser_power_scale(), expected_scale, 1e-12);
  EXPECT_NEAR(bank.lane(0).model.encode_code(100), before * expected_scale, 1e-12);
}

}  // namespace
