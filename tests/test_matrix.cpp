// Unit tests for the shared dense-matrix type.
#include <gtest/gtest.h>

#include "common/matrix.hpp"
#include "common/require.hpp"

namespace {

using namespace pdac;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
}

TEST(Matrix, ConstructionFromData) {
  Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, ConstructionRejectsSizeMismatch) {
  EXPECT_THROW(Matrix(2, 2, std::vector<double>{1, 2, 3}), PreconditionError);
}

TEST(Matrix, RowSpanViewsUnderlyingStorage) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[0] = 9.0;
  EXPECT_DOUBLE_EQ(m(1, 0), 9.0);
  EXPECT_THROW(m.row(2), PreconditionError);
}

TEST(Matrix, ColumnExtraction) {
  Matrix m(2, 2, std::vector<double>{1, 2, 3, 4});
  const auto c = m.col(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
  EXPECT_THROW(m.col(2), PreconditionError);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3, std::vector<double>{1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
  }
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  Rng rng(1);
  const Matrix m = Matrix::random_gaussian(5, 7, rng);
  const Matrix tt = m.transposed().transposed();
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(tt.data()[i], m.data()[i]);
}

TEST(Matrix, RandomGaussianIsSeedDeterministic) {
  Rng a(42), b(42);
  const Matrix ma = Matrix::random_gaussian(3, 3, a);
  const Matrix mb = Matrix::random_gaussian(3, 3, b);
  for (std::size_t i = 0; i < ma.size(); ++i) EXPECT_DOUBLE_EQ(ma.data()[i], mb.data()[i]);
}

TEST(Matrix, RandomUniformWithinBounds) {
  Rng rng(3);
  const Matrix m = Matrix::random_uniform(10, 10, rng, -0.5, 0.5);
  for (double v : m.data()) {
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 0.5);
  }
}

TEST(MatmulReference, KnownProduct) {
  Matrix a(2, 2, std::vector<double>{1, 2, 3, 4});
  Matrix b(2, 2, std::vector<double>{5, 6, 7, 8});
  const Matrix c = matmul_reference(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatmulReference, IdentityIsNeutral) {
  Rng rng(9);
  const Matrix a = Matrix::random_gaussian(4, 4, rng);
  Matrix eye(4, 4);
  for (std::size_t i = 0; i < 4; ++i) eye(i, i) = 1.0;
  const Matrix c = matmul_reference(a, eye);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c.data()[i], a.data()[i], 1e-14);
}

TEST(MatmulReference, RejectsBadInnerDims) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(matmul_reference(a, b), PreconditionError);
}

TEST(MatmulReference, RectangularShapes) {
  Rng rng(2);
  const Matrix a = Matrix::random_gaussian(3, 5, rng);
  const Matrix b = Matrix::random_gaussian(5, 2, rng);
  const Matrix c = matmul_reference(a, b);
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 2u);
  // Spot-check one element against a manual dot product.
  double expect = 0.0;
  for (std::size_t k = 0; k < 5; ++k) expect += a(1, k) * b(k, 1);
  EXPECT_NEAR(c(1, 1), expect, 1e-12);
}

}  // namespace
