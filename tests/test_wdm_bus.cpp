// Unit tests for the WDM bus with MRR mux/demux banks (paper Fig. 1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "photonics/wdm_bus.hpp"

namespace {

using namespace pdac;
using namespace pdac::photonics;

WdmBusConfig bus_cfg(std::size_t channels, double hwhm = 0.05) {
  WdmBusConfig cfg;
  cfg.channels = channels;
  cfg.ring_hwhm_channels = hwhm;
  return cfg;
}

TEST(WdmBus, EncodeAmplitudesPlacesValuesOnChannels) {
  const WdmBus bus(bus_cfg(4));
  const WdmField f = bus.encode_amplitudes({0.5, -0.25, 0.0});
  EXPECT_DOUBLE_EQ(f.amplitude(0).real(), 0.5);
  EXPECT_DOUBLE_EQ(f.amplitude(1).real(), -0.25);
  EXPECT_DOUBLE_EQ(f.amplitude(2).real(), 0.0);
  EXPECT_DOUBLE_EQ(f.amplitude(3).real(), 0.0);
}

TEST(WdmBus, MuxDemuxRoundTripRecoversChannels) {
  const WdmBus bus(bus_cfg(4));
  std::vector<WdmField> sources;
  for (std::size_t i = 0; i < 4; ++i) {
    WdmField s(4);
    s.set_amplitude(i, Complex{0.5 + 0.1 * static_cast<double>(i), 0.0});
    sources.push_back(s);
  }
  const WdmField muxed = bus.mux(sources);
  const auto dropped = bus.demux(muxed);
  ASSERT_EQ(dropped.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const double expect = 0.5 + 0.1 * static_cast<double>(i);
    EXPECT_NEAR(dropped[i].amplitude(i).real(), expect, 0.02) << "channel " << i;
  }
}

TEST(WdmBus, CrosstalkIsBoundedBySelectivity) {
  const WdmBus sharp(bus_cfg(2, 0.01));
  WdmField s(2);
  s.set_amplitude(0, Complex{1.0, 0.0});
  const WdmField muxed = sharp.mux({s});
  const auto dropped = sharp.demux(muxed);
  // Receiver ring 1 should capture almost nothing of channel 0's light.
  EXPECT_LT(dropped[1].intensity(0), 1e-3);
  EXPECT_GT(dropped[0].intensity(0), 0.49);
}

TEST(WdmBus, WiderRingsLeakMoreCrosstalk) {
  // Light a channel-1 signal and measure how much of it the channel-0
  // receiver ring (which sits first on the bus) erroneously captures.
  WdmField s(2);
  s.set_amplitude(1, Complex{1.0, 0.0});
  auto leak = [&](double hwhm) {
    const WdmBus bus(bus_cfg(2, hwhm));
    const auto dropped = bus.demux(s);
    return dropped[0].intensity(1);
  };
  EXPECT_LT(leak(0.02), leak(0.2));
  EXPECT_GT(leak(0.2), 1e-3);
}

TEST(WdmBus, DemuxResidualIsSmall) {
  const WdmBus bus(bus_cfg(3));
  WdmField full(3);
  for (std::size_t i = 0; i < 3; ++i) full.set_amplitude(i, Complex{1.0, 0.0});
  WdmField residual;
  (void)bus.demux(full, &residual);
  EXPECT_LT(residual.total_intensity(), 0.01 * full.total_intensity());
}

TEST(WdmBus, RejectsTooManySources) {
  const WdmBus bus(bus_cfg(2));
  std::vector<WdmField> three(3, WdmField(2));
  EXPECT_THROW(bus.mux(three), PreconditionError);
}

TEST(WdmBus, RejectsChannelMismatch) {
  const WdmBus bus(bus_cfg(2));
  EXPECT_THROW(bus.mux({WdmField(3)}), PreconditionError);
  EXPECT_THROW(bus.demux(WdmField(3)), PreconditionError);
  EXPECT_THROW(bus.encode_amplitudes({1.0, 1.0, 1.0}), PreconditionError);
}

TEST(WdmBus, RejectsZeroChannels) {
  EXPECT_THROW(WdmBus{bus_cfg(0)}, PreconditionError);
}

}  // namespace
