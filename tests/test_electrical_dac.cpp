// Unit tests for the electrical DAC model the P-DAC replaces.
#include <gtest/gtest.h>

#include <cmath>

#include "common/require.hpp"
#include "converters/electrical_dac.hpp"

namespace {

using namespace pdac;
using namespace pdac::converters;

ElectricalDacConfig cfg_bits(int bits) {
  ElectricalDacConfig cfg;
  cfg.bits = bits;
  return cfg;
}

TEST(ElectricalDac, LinearConversion) {
  const ElectricalDac dac(cfg_bits(8));
  EXPECT_DOUBLE_EQ(dac.convert(0), 0.0);
  EXPECT_NEAR(dac.convert(127), 1.0, 1e-12);
  EXPECT_NEAR(dac.convert(-127), -1.0, 1e-12);
  EXPECT_NEAR(dac.convert(64), 64.0 / 127.0, 1e-12);
}

TEST(ElectricalDac, VrefScalesOutput) {
  ElectricalDacConfig cfg = cfg_bits(8);
  cfg.v_ref = 2.5;
  const ElectricalDac dac(cfg);
  EXPECT_NEAR(dac.convert(127), 2.5, 1e-12);
}

TEST(ElectricalDac, NormalizedConversionQuantizes) {
  const ElectricalDac dac(cfg_bits(4));  // step 1/7
  const double v = dac.convert_normalized(0.5);
  // 0.5·7 = 3.5 → rounds to 4 → 4/7.
  EXPECT_NEAR(v, 4.0 / 7.0, 1e-12);
}

TEST(ElectricalDac, PowerScalingLawMatchesPaperRatio) {
  // The paper's implied 4-bit→8-bit DAC power ratio is 8.0×
  // (P ∝ b·2^{b/2}: (8·16)/(4·4) = 8).
  const ElectricalDac dac4(cfg_bits(4));
  const ElectricalDac dac8(cfg_bits(8));
  EXPECT_NEAR(dac8.power() / dac4.power(), 8.0, 1e-12);
}

TEST(ElectricalDac, PowerScalesLinearlyWithSampleRate) {
  ElectricalDacConfig slow = cfg_bits(8);
  slow.sample_rate = units::gigahertz(2.5);
  const ElectricalDac half(slow);
  const ElectricalDac full(cfg_bits(8));
  EXPECT_NEAR(full.power() / half.power(), 2.0, 1e-12);
}

TEST(ElectricalDac, EnergyPerConversionIsPowerOverRate) {
  const ElectricalDac dac(cfg_bits(8));
  EXPECT_NEAR(dac.energy_per_conversion().joules(),
              dac.power().watts() / dac.config().sample_rate.hertz(), 1e-20);
}

TEST(ElectricalDac, PowerMonotonicInBits) {
  units::Power prev{};
  for (int b = 2; b <= 12; ++b) {
    const units::Power p = ElectricalDac::power_model(b, units::gigahertz(5.0), 98.07e-6,
                                                      units::gigahertz(5.0));
    EXPECT_GT(p.watts(), prev.watts()) << "bits " << b;
    prev = p;
  }
}

TEST(ElectricalDac, CalibratedAbsolutePower) {
  // DESIGN.md §5: per-DAC 1.569 mW at 4-bit, 12.55 mW at 8-bit.
  const ElectricalDac dac4(cfg_bits(4));
  const ElectricalDac dac8(cfg_bits(8));
  EXPECT_NEAR(dac4.power().milliwatts(), 1.569, 0.01);
  EXPECT_NEAR(dac8.power().milliwatts(), 12.55, 0.05);
}

TEST(ElectricalDac, RejectsInvalidConfig) {
  ElectricalDacConfig bad = cfg_bits(8);
  bad.v_ref = 0.0;
  EXPECT_THROW((void)ElectricalDac{bad}, PreconditionError);
  bad = cfg_bits(8);
  bad.power_kappa_watts = 0.0;
  EXPECT_THROW((void)ElectricalDac{bad}, PreconditionError);
}

TEST(ElectricalDac, ConvertRejectsOutOfRangeCode) {
  const ElectricalDac dac(cfg_bits(4));
  EXPECT_THROW((void)dac.convert(8), PreconditionError);
}

}  // namespace
