# Empty dependencies file for abl_wdm_scaling.
# This may be replaced when dependencies are built.
