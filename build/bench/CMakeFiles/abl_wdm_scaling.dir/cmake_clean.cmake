file(REMOVE_RECURSE
  "CMakeFiles/abl_wdm_scaling.dir/abl_wdm_scaling.cpp.o"
  "CMakeFiles/abl_wdm_scaling.dir/abl_wdm_scaling.cpp.o.d"
  "abl_wdm_scaling"
  "abl_wdm_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_wdm_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
