# Empty compiler generated dependencies file for abl_kv_precision.
# This may be replaced when dependencies are built.
