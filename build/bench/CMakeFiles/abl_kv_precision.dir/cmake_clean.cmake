file(REMOVE_RECURSE
  "CMakeFiles/abl_kv_precision.dir/abl_kv_precision.cpp.o"
  "CMakeFiles/abl_kv_precision.dir/abl_kv_precision.cpp.o.d"
  "abl_kv_precision"
  "abl_kv_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_kv_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
