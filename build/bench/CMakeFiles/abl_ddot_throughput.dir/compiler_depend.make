# Empty compiler generated dependencies file for abl_ddot_throughput.
# This may be replaced when dependencies are built.
