file(REMOVE_RECURSE
  "CMakeFiles/abl_ddot_throughput.dir/abl_ddot_throughput.cpp.o"
  "CMakeFiles/abl_ddot_throughput.dir/abl_ddot_throughput.cpp.o.d"
  "abl_ddot_throughput"
  "abl_ddot_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ddot_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
