file(REMOVE_RECURSE
  "CMakeFiles/fig09_bert_energy.dir/fig09_bert_energy.cpp.o"
  "CMakeFiles/fig09_bert_energy.dir/fig09_bert_energy.cpp.o.d"
  "fig09_bert_energy"
  "fig09_bert_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_bert_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
