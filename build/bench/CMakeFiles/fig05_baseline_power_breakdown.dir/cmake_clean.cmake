file(REMOVE_RECURSE
  "CMakeFiles/fig05_baseline_power_breakdown.dir/fig05_baseline_power_breakdown.cpp.o"
  "CMakeFiles/fig05_baseline_power_breakdown.dir/fig05_baseline_power_breakdown.cpp.o.d"
  "fig05_baseline_power_breakdown"
  "fig05_baseline_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_baseline_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
