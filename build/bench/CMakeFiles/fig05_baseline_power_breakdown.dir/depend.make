# Empty dependencies file for fig05_baseline_power_breakdown.
# This may be replaced when dependencies are built.
