# Empty compiler generated dependencies file for fig11_compute_bound_power.
# This may be replaced when dependencies are built.
