
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_sparsity_gating.cpp" "bench/CMakeFiles/abl_sparsity_gating.dir/abl_sparsity_gating.cpp.o" "gcc" "bench/CMakeFiles/abl_sparsity_gating.dir/abl_sparsity_gating.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdac_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
