# Empty dependencies file for abl_sparsity_gating.
# This may be replaced when dependencies are built.
