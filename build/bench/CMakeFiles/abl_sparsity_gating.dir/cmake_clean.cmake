file(REMOVE_RECURSE
  "CMakeFiles/abl_sparsity_gating.dir/abl_sparsity_gating.cpp.o"
  "CMakeFiles/abl_sparsity_gating.dir/abl_sparsity_gating.cpp.o.d"
  "abl_sparsity_gating"
  "abl_sparsity_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sparsity_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
