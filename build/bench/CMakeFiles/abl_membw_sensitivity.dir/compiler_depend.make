# Empty compiler generated dependencies file for abl_membw_sensitivity.
# This may be replaced when dependencies are built.
