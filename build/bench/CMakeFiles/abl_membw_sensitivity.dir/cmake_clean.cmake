file(REMOVE_RECURSE
  "CMakeFiles/abl_membw_sensitivity.dir/abl_membw_sensitivity.cpp.o"
  "CMakeFiles/abl_membw_sensitivity.dir/abl_membw_sensitivity.cpp.o.d"
  "abl_membw_sensitivity"
  "abl_membw_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_membw_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
