file(REMOVE_RECURSE
  "CMakeFiles/abl_batch_decode.dir/abl_batch_decode.cpp.o"
  "CMakeFiles/abl_batch_decode.dir/abl_batch_decode.cpp.o.d"
  "abl_batch_decode"
  "abl_batch_decode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_batch_decode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
