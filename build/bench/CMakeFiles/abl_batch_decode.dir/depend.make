# Empty dependencies file for abl_batch_decode.
# This may be replaced when dependencies are built.
