# Empty dependencies file for abl_mzi_baseline.
# This may be replaced when dependencies are built.
