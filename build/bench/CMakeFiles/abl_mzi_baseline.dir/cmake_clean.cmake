file(REMOVE_RECURSE
  "CMakeFiles/abl_mzi_baseline.dir/abl_mzi_baseline.cpp.o"
  "CMakeFiles/abl_mzi_baseline.dir/abl_mzi_baseline.cpp.o.d"
  "abl_mzi_baseline"
  "abl_mzi_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mzi_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
