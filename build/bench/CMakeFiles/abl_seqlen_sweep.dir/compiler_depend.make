# Empty compiler generated dependencies file for abl_seqlen_sweep.
# This may be replaced when dependencies are built.
