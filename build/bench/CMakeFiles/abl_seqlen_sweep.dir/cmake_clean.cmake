file(REMOVE_RECURSE
  "CMakeFiles/abl_seqlen_sweep.dir/abl_seqlen_sweep.cpp.o"
  "CMakeFiles/abl_seqlen_sweep.dir/abl_seqlen_sweep.cpp.o.d"
  "abl_seqlen_sweep"
  "abl_seqlen_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_seqlen_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
