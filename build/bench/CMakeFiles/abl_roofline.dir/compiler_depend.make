# Empty compiler generated dependencies file for abl_roofline.
# This may be replaced when dependencies are built.
