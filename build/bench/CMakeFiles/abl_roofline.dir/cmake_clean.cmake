file(REMOVE_RECURSE
  "CMakeFiles/abl_roofline.dir/abl_roofline.cpp.o"
  "CMakeFiles/abl_roofline.dir/abl_roofline.cpp.o.d"
  "abl_roofline"
  "abl_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
