file(REMOVE_RECURSE
  "CMakeFiles/fig08_arccos_approximation.dir/fig08_arccos_approximation.cpp.o"
  "CMakeFiles/fig08_arccos_approximation.dir/fig08_arccos_approximation.cpp.o.d"
  "fig08_arccos_approximation"
  "fig08_arccos_approximation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_arccos_approximation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
