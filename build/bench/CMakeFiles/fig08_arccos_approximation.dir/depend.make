# Empty dependencies file for fig08_arccos_approximation.
# This may be replaced when dependencies are built.
