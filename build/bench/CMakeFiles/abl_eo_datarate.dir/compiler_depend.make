# Empty compiler generated dependencies file for abl_eo_datarate.
# This may be replaced when dependencies are built.
