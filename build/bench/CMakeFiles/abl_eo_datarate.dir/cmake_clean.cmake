file(REMOVE_RECURSE
  "CMakeFiles/abl_eo_datarate.dir/abl_eo_datarate.cpp.o"
  "CMakeFiles/abl_eo_datarate.dir/abl_eo_datarate.cpp.o.d"
  "abl_eo_datarate"
  "abl_eo_datarate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_eo_datarate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
