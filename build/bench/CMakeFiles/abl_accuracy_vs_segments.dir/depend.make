# Empty dependencies file for abl_accuracy_vs_segments.
# This may be replaced when dependencies are built.
