file(REMOVE_RECURSE
  "CMakeFiles/abl_accuracy_vs_segments.dir/abl_accuracy_vs_segments.cpp.o"
  "CMakeFiles/abl_accuracy_vs_segments.dir/abl_accuracy_vs_segments.cpp.o.d"
  "abl_accuracy_vs_segments"
  "abl_accuracy_vs_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_accuracy_vs_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
