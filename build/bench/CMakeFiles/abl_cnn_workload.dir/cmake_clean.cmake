file(REMOVE_RECURSE
  "CMakeFiles/abl_cnn_workload.dir/abl_cnn_workload.cpp.o"
  "CMakeFiles/abl_cnn_workload.dir/abl_cnn_workload.cpp.o.d"
  "abl_cnn_workload"
  "abl_cnn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cnn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
