# Empty compiler generated dependencies file for abl_cnn_workload.
# This may be replaced when dependencies are built.
