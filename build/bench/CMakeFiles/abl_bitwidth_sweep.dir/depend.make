# Empty dependencies file for abl_bitwidth_sweep.
# This may be replaced when dependencies are built.
