file(REMOVE_RECURSE
  "CMakeFiles/abl_bitwidth_sweep.dir/abl_bitwidth_sweep.cpp.o"
  "CMakeFiles/abl_bitwidth_sweep.dir/abl_bitwidth_sweep.cpp.o.d"
  "abl_bitwidth_sweep"
  "abl_bitwidth_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_bitwidth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
