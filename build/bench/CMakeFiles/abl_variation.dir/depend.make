# Empty dependencies file for abl_variation.
# This may be replaced when dependencies are built.
