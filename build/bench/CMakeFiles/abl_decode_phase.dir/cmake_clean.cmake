file(REMOVE_RECURSE
  "CMakeFiles/abl_decode_phase.dir/abl_decode_phase.cpp.o"
  "CMakeFiles/abl_decode_phase.dir/abl_decode_phase.cpp.o.d"
  "abl_decode_phase"
  "abl_decode_phase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_decode_phase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
