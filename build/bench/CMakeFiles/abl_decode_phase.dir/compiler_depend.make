# Empty compiler generated dependencies file for abl_decode_phase.
# This may be replaced when dependencies are built.
