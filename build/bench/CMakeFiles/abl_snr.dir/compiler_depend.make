# Empty compiler generated dependencies file for abl_snr.
# This may be replaced when dependencies are built.
