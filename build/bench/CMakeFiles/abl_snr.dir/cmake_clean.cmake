file(REMOVE_RECURSE
  "CMakeFiles/abl_snr.dir/abl_snr.cpp.o"
  "CMakeFiles/abl_snr.dir/abl_snr.cpp.o.d"
  "abl_snr"
  "abl_snr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_snr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
