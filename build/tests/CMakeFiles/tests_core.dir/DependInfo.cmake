
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arccos_approx.cpp" "tests/CMakeFiles/tests_core.dir/test_arccos_approx.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_arccos_approx.cpp.o.d"
  "/root/repo/tests/test_breakpoint_optimizer.cpp" "tests/CMakeFiles/tests_core.dir/test_breakpoint_optimizer.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_breakpoint_optimizer.cpp.o.d"
  "/root/repo/tests/test_error_model.cpp" "tests/CMakeFiles/tests_core.dir/test_error_model.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_error_model.cpp.o.d"
  "/root/repo/tests/test_error_propagation.cpp" "tests/CMakeFiles/tests_core.dir/test_error_propagation.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_error_propagation.cpp.o.d"
  "/root/repo/tests/test_modulator_driver.cpp" "tests/CMakeFiles/tests_core.dir/test_modulator_driver.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_modulator_driver.cpp.o.d"
  "/root/repo/tests/test_multi_segment.cpp" "tests/CMakeFiles/tests_core.dir/test_multi_segment.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_multi_segment.cpp.o.d"
  "/root/repo/tests/test_pdac.cpp" "tests/CMakeFiles/tests_core.dir/test_pdac.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_pdac.cpp.o.d"
  "/root/repo/tests/test_sign_magnitude.cpp" "tests/CMakeFiles/tests_core.dir/test_sign_magnitude.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_sign_magnitude.cpp.o.d"
  "/root/repo/tests/test_tia_weights.cpp" "tests/CMakeFiles/tests_core.dir/test_tia_weights.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_tia_weights.cpp.o.d"
  "/root/repo/tests/test_trimming.cpp" "tests/CMakeFiles/tests_core.dir/test_trimming.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_trimming.cpp.o.d"
  "/root/repo/tests/test_variation.cpp" "tests/CMakeFiles/tests_core.dir/test_variation.cpp.o" "gcc" "tests/CMakeFiles/tests_core.dir/test_variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdac_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
