file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/test_arccos_approx.cpp.o"
  "CMakeFiles/tests_core.dir/test_arccos_approx.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_breakpoint_optimizer.cpp.o"
  "CMakeFiles/tests_core.dir/test_breakpoint_optimizer.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_error_model.cpp.o"
  "CMakeFiles/tests_core.dir/test_error_model.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_error_propagation.cpp.o"
  "CMakeFiles/tests_core.dir/test_error_propagation.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_modulator_driver.cpp.o"
  "CMakeFiles/tests_core.dir/test_modulator_driver.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_multi_segment.cpp.o"
  "CMakeFiles/tests_core.dir/test_multi_segment.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_pdac.cpp.o"
  "CMakeFiles/tests_core.dir/test_pdac.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_sign_magnitude.cpp.o"
  "CMakeFiles/tests_core.dir/test_sign_magnitude.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_tia_weights.cpp.o"
  "CMakeFiles/tests_core.dir/test_tia_weights.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_trimming.cpp.o"
  "CMakeFiles/tests_core.dir/test_trimming.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_variation.cpp.o"
  "CMakeFiles/tests_core.dir/test_variation.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
