
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_math_utils.cpp" "tests/CMakeFiles/tests_common.dir/test_math_utils.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_math_utils.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/tests_common.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tests_common.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_svd.cpp" "tests/CMakeFiles/tests_common.dir/test_svd.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_svd.cpp.o.d"
  "/root/repo/tests/test_table.cpp" "tests/CMakeFiles/tests_common.dir/test_table.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_table.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/tests_common.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/tests_common.dir/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdac_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
