file(REMOVE_RECURSE
  "CMakeFiles/tests_common.dir/test_math_utils.cpp.o"
  "CMakeFiles/tests_common.dir/test_math_utils.cpp.o.d"
  "CMakeFiles/tests_common.dir/test_matrix.cpp.o"
  "CMakeFiles/tests_common.dir/test_matrix.cpp.o.d"
  "CMakeFiles/tests_common.dir/test_stats.cpp.o"
  "CMakeFiles/tests_common.dir/test_stats.cpp.o.d"
  "CMakeFiles/tests_common.dir/test_svd.cpp.o"
  "CMakeFiles/tests_common.dir/test_svd.cpp.o.d"
  "CMakeFiles/tests_common.dir/test_table.cpp.o"
  "CMakeFiles/tests_common.dir/test_table.cpp.o.d"
  "CMakeFiles/tests_common.dir/test_units.cpp.o"
  "CMakeFiles/tests_common.dir/test_units.cpp.o.d"
  "tests_common"
  "tests_common.pdb"
  "tests_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
