file(REMOVE_RECURSE
  "CMakeFiles/tests_converters.dir/test_electrical_adc.cpp.o"
  "CMakeFiles/tests_converters.dir/test_electrical_adc.cpp.o.d"
  "CMakeFiles/tests_converters.dir/test_electrical_dac.cpp.o"
  "CMakeFiles/tests_converters.dir/test_electrical_dac.cpp.o.d"
  "CMakeFiles/tests_converters.dir/test_eo_interface.cpp.o"
  "CMakeFiles/tests_converters.dir/test_eo_interface.cpp.o.d"
  "CMakeFiles/tests_converters.dir/test_eo_timing.cpp.o"
  "CMakeFiles/tests_converters.dir/test_eo_timing.cpp.o.d"
  "CMakeFiles/tests_converters.dir/test_oe_interface.cpp.o"
  "CMakeFiles/tests_converters.dir/test_oe_interface.cpp.o.d"
  "CMakeFiles/tests_converters.dir/test_quantizer.cpp.o"
  "CMakeFiles/tests_converters.dir/test_quantizer.cpp.o.d"
  "tests_converters"
  "tests_converters.pdb"
  "tests_converters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
