# Empty dependencies file for tests_converters.
# This may be replaced when dependencies are built.
