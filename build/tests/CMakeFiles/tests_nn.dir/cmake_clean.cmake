file(REMOVE_RECURSE
  "CMakeFiles/tests_nn.dir/test_cnn_trace.cpp.o"
  "CMakeFiles/tests_nn.dir/test_cnn_trace.cpp.o.d"
  "CMakeFiles/tests_nn.dir/test_decode_trace.cpp.o"
  "CMakeFiles/tests_nn.dir/test_decode_trace.cpp.o.d"
  "CMakeFiles/tests_nn.dir/test_nn_layers.cpp.o"
  "CMakeFiles/tests_nn.dir/test_nn_layers.cpp.o.d"
  "CMakeFiles/tests_nn.dir/test_nn_ops.cpp.o"
  "CMakeFiles/tests_nn.dir/test_nn_ops.cpp.o.d"
  "CMakeFiles/tests_nn.dir/test_workload_trace.cpp.o"
  "CMakeFiles/tests_nn.dir/test_workload_trace.cpp.o.d"
  "tests_nn"
  "tests_nn.pdb"
  "tests_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
