# Empty dependencies file for tests_photonics.
# This may be replaced when dependencies are built.
