
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crosstalk.cpp" "tests/CMakeFiles/tests_photonics.dir/test_crosstalk.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_crosstalk.cpp.o.d"
  "/root/repo/tests/test_directional_coupler.cpp" "tests/CMakeFiles/tests_photonics.dir/test_directional_coupler.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_directional_coupler.cpp.o.d"
  "/root/repo/tests/test_laser.cpp" "tests/CMakeFiles/tests_photonics.dir/test_laser.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_laser.cpp.o.d"
  "/root/repo/tests/test_microring.cpp" "tests/CMakeFiles/tests_photonics.dir/test_microring.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_microring.cpp.o.d"
  "/root/repo/tests/test_mzi_mesh.cpp" "tests/CMakeFiles/tests_photonics.dir/test_mzi_mesh.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_mzi_mesh.cpp.o.d"
  "/root/repo/tests/test_mzm.cpp" "tests/CMakeFiles/tests_photonics.dir/test_mzm.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_mzm.cpp.o.d"
  "/root/repo/tests/test_optical_field.cpp" "tests/CMakeFiles/tests_photonics.dir/test_optical_field.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_optical_field.cpp.o.d"
  "/root/repo/tests/test_phase_shifter.cpp" "tests/CMakeFiles/tests_photonics.dir/test_phase_shifter.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_phase_shifter.cpp.o.d"
  "/root/repo/tests/test_photodetector.cpp" "tests/CMakeFiles/tests_photonics.dir/test_photodetector.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_photodetector.cpp.o.d"
  "/root/repo/tests/test_thermal_tuner.cpp" "tests/CMakeFiles/tests_photonics.dir/test_thermal_tuner.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_thermal_tuner.cpp.o.d"
  "/root/repo/tests/test_waveguide.cpp" "tests/CMakeFiles/tests_photonics.dir/test_waveguide.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_waveguide.cpp.o.d"
  "/root/repo/tests/test_wdm_bus.cpp" "tests/CMakeFiles/tests_photonics.dir/test_wdm_bus.cpp.o" "gcc" "tests/CMakeFiles/tests_photonics.dir/test_wdm_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdac_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
