file(REMOVE_RECURSE
  "CMakeFiles/tests_photonics.dir/test_crosstalk.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_crosstalk.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_directional_coupler.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_directional_coupler.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_laser.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_laser.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_microring.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_microring.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_mzi_mesh.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_mzi_mesh.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_mzm.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_mzm.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_optical_field.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_optical_field.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_phase_shifter.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_phase_shifter.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_photodetector.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_photodetector.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_thermal_tuner.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_thermal_tuner.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_waveguide.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_waveguide.cpp.o.d"
  "CMakeFiles/tests_photonics.dir/test_wdm_bus.cpp.o"
  "CMakeFiles/tests_photonics.dir/test_wdm_bus.cpp.o.d"
  "tests_photonics"
  "tests_photonics.pdb"
  "tests_photonics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_photonics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
