file(REMOVE_RECURSE
  "CMakeFiles/tests_ptc.dir/test_ddot.cpp.o"
  "CMakeFiles/tests_ptc.dir/test_ddot.cpp.o.d"
  "CMakeFiles/tests_ptc.dir/test_dot_engine.cpp.o"
  "CMakeFiles/tests_ptc.dir/test_dot_engine.cpp.o.d"
  "CMakeFiles/tests_ptc.dir/test_gemm_engine.cpp.o"
  "CMakeFiles/tests_ptc.dir/test_gemm_engine.cpp.o.d"
  "CMakeFiles/tests_ptc.dir/test_noise_analysis.cpp.o"
  "CMakeFiles/tests_ptc.dir/test_noise_analysis.cpp.o.d"
  "tests_ptc"
  "tests_ptc.pdb"
  "tests_ptc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_ptc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
