# Empty dependencies file for tests_ptc.
# This may be replaced when dependencies are built.
