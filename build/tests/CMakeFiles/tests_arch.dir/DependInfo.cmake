
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accelerator.cpp" "tests/CMakeFiles/tests_arch.dir/test_accelerator.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_accelerator.cpp.o.d"
  "/root/repo/tests/test_arch_power.cpp" "tests/CMakeFiles/tests_arch.dir/test_arch_power.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_arch_power.cpp.o.d"
  "/root/repo/tests/test_arch_properties.cpp" "tests/CMakeFiles/tests_arch.dir/test_arch_properties.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_arch_properties.cpp.o.d"
  "/root/repo/tests/test_config_parser.cpp" "tests/CMakeFiles/tests_arch.dir/test_config_parser.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_config_parser.cpp.o.d"
  "/root/repo/tests/test_energy_model.cpp" "tests/CMakeFiles/tests_arch.dir/test_energy_model.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_energy_model.cpp.o.d"
  "/root/repo/tests/test_interconnect.cpp" "tests/CMakeFiles/tests_arch.dir/test_interconnect.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_interconnect.cpp.o.d"
  "/root/repo/tests/test_mapper.cpp" "tests/CMakeFiles/tests_arch.dir/test_mapper.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_mapper.cpp.o.d"
  "/root/repo/tests/test_memory_system.cpp" "tests/CMakeFiles/tests_arch.dir/test_memory_system.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_memory_system.cpp.o.d"
  "/root/repo/tests/test_model_fuzz.cpp" "tests/CMakeFiles/tests_arch.dir/test_model_fuzz.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_model_fuzz.cpp.o.d"
  "/root/repo/tests/test_sram.cpp" "tests/CMakeFiles/tests_arch.dir/test_sram.cpp.o" "gcc" "tests/CMakeFiles/tests_arch.dir/test_sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/pdac_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/pdac_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
