file(REMOVE_RECURSE
  "CMakeFiles/tests_arch.dir/test_accelerator.cpp.o"
  "CMakeFiles/tests_arch.dir/test_accelerator.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_arch_power.cpp.o"
  "CMakeFiles/tests_arch.dir/test_arch_power.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_arch_properties.cpp.o"
  "CMakeFiles/tests_arch.dir/test_arch_properties.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_config_parser.cpp.o"
  "CMakeFiles/tests_arch.dir/test_config_parser.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_energy_model.cpp.o"
  "CMakeFiles/tests_arch.dir/test_energy_model.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_interconnect.cpp.o"
  "CMakeFiles/tests_arch.dir/test_interconnect.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_mapper.cpp.o"
  "CMakeFiles/tests_arch.dir/test_mapper.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_memory_system.cpp.o"
  "CMakeFiles/tests_arch.dir/test_memory_system.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_model_fuzz.cpp.o"
  "CMakeFiles/tests_arch.dir/test_model_fuzz.cpp.o.d"
  "CMakeFiles/tests_arch.dir/test_sram.cpp.o"
  "CMakeFiles/tests_arch.dir/test_sram.cpp.o.d"
  "tests_arch"
  "tests_arch.pdb"
  "tests_arch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
