# Empty dependencies file for tests_arch.
# This may be replaced when dependencies are built.
