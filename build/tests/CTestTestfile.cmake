# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tests_common[1]_include.cmake")
include("/root/repo/build/tests/tests_photonics[1]_include.cmake")
include("/root/repo/build/tests/tests_converters[1]_include.cmake")
include("/root/repo/build/tests/tests_core[1]_include.cmake")
include("/root/repo/build/tests/tests_ptc[1]_include.cmake")
include("/root/repo/build/tests/tests_nn[1]_include.cmake")
include("/root/repo/build/tests/tests_arch[1]_include.cmake")
include("/root/repo/build/tests/tests_integration[1]_include.cmake")
