file(REMOVE_RECURSE
  "CMakeFiles/pdac_common.dir/math_utils.cpp.o"
  "CMakeFiles/pdac_common.dir/math_utils.cpp.o.d"
  "CMakeFiles/pdac_common.dir/stats.cpp.o"
  "CMakeFiles/pdac_common.dir/stats.cpp.o.d"
  "CMakeFiles/pdac_common.dir/svd.cpp.o"
  "CMakeFiles/pdac_common.dir/svd.cpp.o.d"
  "CMakeFiles/pdac_common.dir/table.cpp.o"
  "CMakeFiles/pdac_common.dir/table.cpp.o.d"
  "libpdac_common.a"
  "libpdac_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
