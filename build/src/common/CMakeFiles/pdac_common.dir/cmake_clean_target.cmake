file(REMOVE_RECURSE
  "libpdac_common.a"
)
