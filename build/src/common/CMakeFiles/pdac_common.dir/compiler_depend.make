# Empty compiler generated dependencies file for pdac_common.
# This may be replaced when dependencies are built.
