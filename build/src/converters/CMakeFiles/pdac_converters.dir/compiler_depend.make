# Empty compiler generated dependencies file for pdac_converters.
# This may be replaced when dependencies are built.
