file(REMOVE_RECURSE
  "CMakeFiles/pdac_converters.dir/electrical_adc.cpp.o"
  "CMakeFiles/pdac_converters.dir/electrical_adc.cpp.o.d"
  "CMakeFiles/pdac_converters.dir/electrical_dac.cpp.o"
  "CMakeFiles/pdac_converters.dir/electrical_dac.cpp.o.d"
  "CMakeFiles/pdac_converters.dir/eo_interface.cpp.o"
  "CMakeFiles/pdac_converters.dir/eo_interface.cpp.o.d"
  "CMakeFiles/pdac_converters.dir/eo_timing.cpp.o"
  "CMakeFiles/pdac_converters.dir/eo_timing.cpp.o.d"
  "CMakeFiles/pdac_converters.dir/oe_interface.cpp.o"
  "CMakeFiles/pdac_converters.dir/oe_interface.cpp.o.d"
  "CMakeFiles/pdac_converters.dir/quantizer.cpp.o"
  "CMakeFiles/pdac_converters.dir/quantizer.cpp.o.d"
  "libpdac_converters.a"
  "libpdac_converters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_converters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
