
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/converters/electrical_adc.cpp" "src/converters/CMakeFiles/pdac_converters.dir/electrical_adc.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/electrical_adc.cpp.o.d"
  "/root/repo/src/converters/electrical_dac.cpp" "src/converters/CMakeFiles/pdac_converters.dir/electrical_dac.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/electrical_dac.cpp.o.d"
  "/root/repo/src/converters/eo_interface.cpp" "src/converters/CMakeFiles/pdac_converters.dir/eo_interface.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/eo_interface.cpp.o.d"
  "/root/repo/src/converters/eo_timing.cpp" "src/converters/CMakeFiles/pdac_converters.dir/eo_timing.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/eo_timing.cpp.o.d"
  "/root/repo/src/converters/oe_interface.cpp" "src/converters/CMakeFiles/pdac_converters.dir/oe_interface.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/oe_interface.cpp.o.d"
  "/root/repo/src/converters/quantizer.cpp" "src/converters/CMakeFiles/pdac_converters.dir/quantizer.cpp.o" "gcc" "src/converters/CMakeFiles/pdac_converters.dir/quantizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
