file(REMOVE_RECURSE
  "libpdac_converters.a"
)
