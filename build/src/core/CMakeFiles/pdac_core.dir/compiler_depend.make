# Empty compiler generated dependencies file for pdac_core.
# This may be replaced when dependencies are built.
