file(REMOVE_RECURSE
  "libpdac_core.a"
)
