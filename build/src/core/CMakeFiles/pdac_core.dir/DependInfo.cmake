
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/arccos_approx.cpp" "src/core/CMakeFiles/pdac_core.dir/arccos_approx.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/arccos_approx.cpp.o.d"
  "/root/repo/src/core/breakpoint_optimizer.cpp" "src/core/CMakeFiles/pdac_core.dir/breakpoint_optimizer.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/breakpoint_optimizer.cpp.o.d"
  "/root/repo/src/core/error_model.cpp" "src/core/CMakeFiles/pdac_core.dir/error_model.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/error_model.cpp.o.d"
  "/root/repo/src/core/error_propagation.cpp" "src/core/CMakeFiles/pdac_core.dir/error_propagation.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/error_propagation.cpp.o.d"
  "/root/repo/src/core/modulator_driver.cpp" "src/core/CMakeFiles/pdac_core.dir/modulator_driver.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/modulator_driver.cpp.o.d"
  "/root/repo/src/core/multi_segment_approx.cpp" "src/core/CMakeFiles/pdac_core.dir/multi_segment_approx.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/multi_segment_approx.cpp.o.d"
  "/root/repo/src/core/pdac.cpp" "src/core/CMakeFiles/pdac_core.dir/pdac.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/pdac.cpp.o.d"
  "/root/repo/src/core/tia_weights.cpp" "src/core/CMakeFiles/pdac_core.dir/tia_weights.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/tia_weights.cpp.o.d"
  "/root/repo/src/core/trimming.cpp" "src/core/CMakeFiles/pdac_core.dir/trimming.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/trimming.cpp.o.d"
  "/root/repo/src/core/variation.cpp" "src/core/CMakeFiles/pdac_core.dir/variation.cpp.o" "gcc" "src/core/CMakeFiles/pdac_core.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
