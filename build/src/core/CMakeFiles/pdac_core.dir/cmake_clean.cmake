file(REMOVE_RECURSE
  "CMakeFiles/pdac_core.dir/arccos_approx.cpp.o"
  "CMakeFiles/pdac_core.dir/arccos_approx.cpp.o.d"
  "CMakeFiles/pdac_core.dir/breakpoint_optimizer.cpp.o"
  "CMakeFiles/pdac_core.dir/breakpoint_optimizer.cpp.o.d"
  "CMakeFiles/pdac_core.dir/error_model.cpp.o"
  "CMakeFiles/pdac_core.dir/error_model.cpp.o.d"
  "CMakeFiles/pdac_core.dir/error_propagation.cpp.o"
  "CMakeFiles/pdac_core.dir/error_propagation.cpp.o.d"
  "CMakeFiles/pdac_core.dir/modulator_driver.cpp.o"
  "CMakeFiles/pdac_core.dir/modulator_driver.cpp.o.d"
  "CMakeFiles/pdac_core.dir/multi_segment_approx.cpp.o"
  "CMakeFiles/pdac_core.dir/multi_segment_approx.cpp.o.d"
  "CMakeFiles/pdac_core.dir/pdac.cpp.o"
  "CMakeFiles/pdac_core.dir/pdac.cpp.o.d"
  "CMakeFiles/pdac_core.dir/tia_weights.cpp.o"
  "CMakeFiles/pdac_core.dir/tia_weights.cpp.o.d"
  "CMakeFiles/pdac_core.dir/trimming.cpp.o"
  "CMakeFiles/pdac_core.dir/trimming.cpp.o.d"
  "CMakeFiles/pdac_core.dir/variation.cpp.o"
  "CMakeFiles/pdac_core.dir/variation.cpp.o.d"
  "libpdac_core.a"
  "libpdac_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
