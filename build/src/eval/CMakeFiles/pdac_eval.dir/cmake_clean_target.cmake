file(REMOVE_RECURSE
  "libpdac_eval.a"
)
