# Empty dependencies file for pdac_eval.
# This may be replaced when dependencies are built.
