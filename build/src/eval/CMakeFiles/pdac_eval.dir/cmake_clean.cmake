file(REMOVE_RECURSE
  "CMakeFiles/pdac_eval.dir/report.cpp.o"
  "CMakeFiles/pdac_eval.dir/report.cpp.o.d"
  "libpdac_eval.a"
  "libpdac_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
