
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/photonics/crosstalk.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/crosstalk.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/crosstalk.cpp.o.d"
  "/root/repo/src/photonics/laser.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/laser.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/laser.cpp.o.d"
  "/root/repo/src/photonics/microring.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/microring.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/microring.cpp.o.d"
  "/root/repo/src/photonics/mzi_mesh.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/mzi_mesh.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/mzi_mesh.cpp.o.d"
  "/root/repo/src/photonics/mzm.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/mzm.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/mzm.cpp.o.d"
  "/root/repo/src/photonics/photodetector.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/photodetector.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/photodetector.cpp.o.d"
  "/root/repo/src/photonics/thermal_tuner.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/thermal_tuner.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/thermal_tuner.cpp.o.d"
  "/root/repo/src/photonics/waveguide.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/waveguide.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/waveguide.cpp.o.d"
  "/root/repo/src/photonics/wdm_bus.cpp" "src/photonics/CMakeFiles/pdac_photonics.dir/wdm_bus.cpp.o" "gcc" "src/photonics/CMakeFiles/pdac_photonics.dir/wdm_bus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
