file(REMOVE_RECURSE
  "libpdac_photonics.a"
)
