# Empty compiler generated dependencies file for pdac_photonics.
# This may be replaced when dependencies are built.
