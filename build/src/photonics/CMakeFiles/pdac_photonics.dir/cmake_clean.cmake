file(REMOVE_RECURSE
  "CMakeFiles/pdac_photonics.dir/crosstalk.cpp.o"
  "CMakeFiles/pdac_photonics.dir/crosstalk.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/laser.cpp.o"
  "CMakeFiles/pdac_photonics.dir/laser.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/microring.cpp.o"
  "CMakeFiles/pdac_photonics.dir/microring.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/mzi_mesh.cpp.o"
  "CMakeFiles/pdac_photonics.dir/mzi_mesh.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/mzm.cpp.o"
  "CMakeFiles/pdac_photonics.dir/mzm.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/photodetector.cpp.o"
  "CMakeFiles/pdac_photonics.dir/photodetector.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/thermal_tuner.cpp.o"
  "CMakeFiles/pdac_photonics.dir/thermal_tuner.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/waveguide.cpp.o"
  "CMakeFiles/pdac_photonics.dir/waveguide.cpp.o.d"
  "CMakeFiles/pdac_photonics.dir/wdm_bus.cpp.o"
  "CMakeFiles/pdac_photonics.dir/wdm_bus.cpp.o.d"
  "libpdac_photonics.a"
  "libpdac_photonics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_photonics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
