
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ptc/ddot.cpp" "src/ptc/CMakeFiles/pdac_ptc.dir/ddot.cpp.o" "gcc" "src/ptc/CMakeFiles/pdac_ptc.dir/ddot.cpp.o.d"
  "/root/repo/src/ptc/dot_engine.cpp" "src/ptc/CMakeFiles/pdac_ptc.dir/dot_engine.cpp.o" "gcc" "src/ptc/CMakeFiles/pdac_ptc.dir/dot_engine.cpp.o.d"
  "/root/repo/src/ptc/gemm_engine.cpp" "src/ptc/CMakeFiles/pdac_ptc.dir/gemm_engine.cpp.o" "gcc" "src/ptc/CMakeFiles/pdac_ptc.dir/gemm_engine.cpp.o.d"
  "/root/repo/src/ptc/noise_analysis.cpp" "src/ptc/CMakeFiles/pdac_ptc.dir/noise_analysis.cpp.o" "gcc" "src/ptc/CMakeFiles/pdac_ptc.dir/noise_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
