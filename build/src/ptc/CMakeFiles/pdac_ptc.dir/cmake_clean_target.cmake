file(REMOVE_RECURSE
  "libpdac_ptc.a"
)
