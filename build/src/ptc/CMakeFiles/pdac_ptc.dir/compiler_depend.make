# Empty compiler generated dependencies file for pdac_ptc.
# This may be replaced when dependencies are built.
