file(REMOVE_RECURSE
  "CMakeFiles/pdac_ptc.dir/ddot.cpp.o"
  "CMakeFiles/pdac_ptc.dir/ddot.cpp.o.d"
  "CMakeFiles/pdac_ptc.dir/dot_engine.cpp.o"
  "CMakeFiles/pdac_ptc.dir/dot_engine.cpp.o.d"
  "CMakeFiles/pdac_ptc.dir/gemm_engine.cpp.o"
  "CMakeFiles/pdac_ptc.dir/gemm_engine.cpp.o.d"
  "CMakeFiles/pdac_ptc.dir/noise_analysis.cpp.o"
  "CMakeFiles/pdac_ptc.dir/noise_analysis.cpp.o.d"
  "libpdac_ptc.a"
  "libpdac_ptc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_ptc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
