# Empty dependencies file for pdac_nn.
# This may be replaced when dependencies are built.
