file(REMOVE_RECURSE
  "CMakeFiles/pdac_nn.dir/attention.cpp.o"
  "CMakeFiles/pdac_nn.dir/attention.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/backend.cpp.o"
  "CMakeFiles/pdac_nn.dir/backend.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/cnn_trace.cpp.o"
  "CMakeFiles/pdac_nn.dir/cnn_trace.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/decode_trace.cpp.o"
  "CMakeFiles/pdac_nn.dir/decode_trace.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/encoder_layer.cpp.o"
  "CMakeFiles/pdac_nn.dir/encoder_layer.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/linear.cpp.o"
  "CMakeFiles/pdac_nn.dir/linear.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/model_config.cpp.o"
  "CMakeFiles/pdac_nn.dir/model_config.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/ops.cpp.o"
  "CMakeFiles/pdac_nn.dir/ops.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/transformer.cpp.o"
  "CMakeFiles/pdac_nn.dir/transformer.cpp.o.d"
  "CMakeFiles/pdac_nn.dir/workload_trace.cpp.o"
  "CMakeFiles/pdac_nn.dir/workload_trace.cpp.o.d"
  "libpdac_nn.a"
  "libpdac_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
