
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/pdac_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/backend.cpp" "src/nn/CMakeFiles/pdac_nn.dir/backend.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/backend.cpp.o.d"
  "/root/repo/src/nn/cnn_trace.cpp" "src/nn/CMakeFiles/pdac_nn.dir/cnn_trace.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/cnn_trace.cpp.o.d"
  "/root/repo/src/nn/decode_trace.cpp" "src/nn/CMakeFiles/pdac_nn.dir/decode_trace.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/decode_trace.cpp.o.d"
  "/root/repo/src/nn/encoder_layer.cpp" "src/nn/CMakeFiles/pdac_nn.dir/encoder_layer.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/encoder_layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/pdac_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/model_config.cpp" "src/nn/CMakeFiles/pdac_nn.dir/model_config.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/model_config.cpp.o.d"
  "/root/repo/src/nn/ops.cpp" "src/nn/CMakeFiles/pdac_nn.dir/ops.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/ops.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/nn/CMakeFiles/pdac_nn.dir/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/transformer.cpp.o.d"
  "/root/repo/src/nn/workload_trace.cpp" "src/nn/CMakeFiles/pdac_nn.dir/workload_trace.cpp.o" "gcc" "src/nn/CMakeFiles/pdac_nn.dir/workload_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
