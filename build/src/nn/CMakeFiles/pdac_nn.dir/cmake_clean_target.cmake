file(REMOVE_RECURSE
  "libpdac_nn.a"
)
