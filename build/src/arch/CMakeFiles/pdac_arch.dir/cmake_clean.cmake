file(REMOVE_RECURSE
  "CMakeFiles/pdac_arch.dir/accelerator.cpp.o"
  "CMakeFiles/pdac_arch.dir/accelerator.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/component_power.cpp.o"
  "CMakeFiles/pdac_arch.dir/component_power.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/config_parser.cpp.o"
  "CMakeFiles/pdac_arch.dir/config_parser.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/energy_model.cpp.o"
  "CMakeFiles/pdac_arch.dir/energy_model.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/interconnect.cpp.o"
  "CMakeFiles/pdac_arch.dir/interconnect.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/mapper.cpp.o"
  "CMakeFiles/pdac_arch.dir/mapper.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/memory_system.cpp.o"
  "CMakeFiles/pdac_arch.dir/memory_system.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/op_events.cpp.o"
  "CMakeFiles/pdac_arch.dir/op_events.cpp.o.d"
  "CMakeFiles/pdac_arch.dir/sram.cpp.o"
  "CMakeFiles/pdac_arch.dir/sram.cpp.o.d"
  "libpdac_arch.a"
  "libpdac_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdac_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
