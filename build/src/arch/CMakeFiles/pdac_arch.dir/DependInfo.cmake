
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accelerator.cpp" "src/arch/CMakeFiles/pdac_arch.dir/accelerator.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/accelerator.cpp.o.d"
  "/root/repo/src/arch/component_power.cpp" "src/arch/CMakeFiles/pdac_arch.dir/component_power.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/component_power.cpp.o.d"
  "/root/repo/src/arch/config_parser.cpp" "src/arch/CMakeFiles/pdac_arch.dir/config_parser.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/config_parser.cpp.o.d"
  "/root/repo/src/arch/energy_model.cpp" "src/arch/CMakeFiles/pdac_arch.dir/energy_model.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/energy_model.cpp.o.d"
  "/root/repo/src/arch/interconnect.cpp" "src/arch/CMakeFiles/pdac_arch.dir/interconnect.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/interconnect.cpp.o.d"
  "/root/repo/src/arch/mapper.cpp" "src/arch/CMakeFiles/pdac_arch.dir/mapper.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/mapper.cpp.o.d"
  "/root/repo/src/arch/memory_system.cpp" "src/arch/CMakeFiles/pdac_arch.dir/memory_system.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/memory_system.cpp.o.d"
  "/root/repo/src/arch/op_events.cpp" "src/arch/CMakeFiles/pdac_arch.dir/op_events.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/op_events.cpp.o.d"
  "/root/repo/src/arch/sram.cpp" "src/arch/CMakeFiles/pdac_arch.dir/sram.cpp.o" "gcc" "src/arch/CMakeFiles/pdac_arch.dir/sram.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pdac_common.dir/DependInfo.cmake"
  "/root/repo/build/src/converters/CMakeFiles/pdac_converters.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdac_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/pdac_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/ptc/CMakeFiles/pdac_ptc.dir/DependInfo.cmake"
  "/root/repo/build/src/photonics/CMakeFiles/pdac_photonics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
