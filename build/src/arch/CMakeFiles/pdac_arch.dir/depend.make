# Empty dependencies file for pdac_arch.
# This may be replaced when dependencies are built.
