file(REMOVE_RECURSE
  "libpdac_arch.a"
)
