# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bert_energy_audit "/root/repo/build/examples/bert_energy_audit" "bert" "8" "128")
set_tests_properties(example_bert_energy_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_llm_tolerance_sweep "/root/repo/build/examples/llm_tolerance_sweep" "1" "32" "8")
set_tests_properties(example_llm_tolerance_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_design_space_explorer "/root/repo/build/examples/design_space_explorer")
set_tests_properties(example_design_space_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_trace_export "/root/repo/build/examples/trace_export" "bert" "8" "128")
set_tests_properties(example_trace_export PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accelerator_report "/root/repo/build/examples/accelerator_report" "decode" "8" "512")
set_tests_properties(example_accelerator_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pareto_sweep "/root/repo/build/examples/pareto_sweep" "1" "32" "8")
set_tests_properties(example_pareto_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
