# Empty dependencies file for pareto_sweep.
# This may be replaced when dependencies are built.
