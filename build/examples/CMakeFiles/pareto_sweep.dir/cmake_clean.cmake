file(REMOVE_RECURSE
  "CMakeFiles/pareto_sweep.dir/pareto_sweep.cpp.o"
  "CMakeFiles/pareto_sweep.dir/pareto_sweep.cpp.o.d"
  "pareto_sweep"
  "pareto_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
