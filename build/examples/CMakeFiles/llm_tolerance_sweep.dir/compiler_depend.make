# Empty compiler generated dependencies file for llm_tolerance_sweep.
# This may be replaced when dependencies are built.
