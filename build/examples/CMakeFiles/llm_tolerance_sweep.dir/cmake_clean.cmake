file(REMOVE_RECURSE
  "CMakeFiles/llm_tolerance_sweep.dir/llm_tolerance_sweep.cpp.o"
  "CMakeFiles/llm_tolerance_sweep.dir/llm_tolerance_sweep.cpp.o.d"
  "llm_tolerance_sweep"
  "llm_tolerance_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llm_tolerance_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
