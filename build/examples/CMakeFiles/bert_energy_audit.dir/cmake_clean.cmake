file(REMOVE_RECURSE
  "CMakeFiles/bert_energy_audit.dir/bert_energy_audit.cpp.o"
  "CMakeFiles/bert_energy_audit.dir/bert_energy_audit.cpp.o.d"
  "bert_energy_audit"
  "bert_energy_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bert_energy_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
