# Empty compiler generated dependencies file for bert_energy_audit.
# This may be replaced when dependencies are built.
