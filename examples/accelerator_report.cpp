// accelerator_report — the one-stop system evaluation a deployment study
// runs: configure an accelerator instance, run a workload, read back
// power, energy, runtime, utilization and traffic in one report.
//
// Usage:
//   accelerator_report [bert|deit|vgg|decode] [bits] [hbm_gb_s] [config.ini]
// When a config file is given it is loaded first (see
// arch/config_parser.hpp for the format); explicit bits/hbm arguments
// then override it.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "arch/accelerator.hpp"
#include "arch/config_parser.hpp"
#include "eval/report.hpp"
#include "nn/cnn_trace.hpp"
#include "nn/decode_trace.hpp"
#include "nn/model_config.hpp"

int main(int argc, char** argv) {
  using namespace pdac;

  const std::string workload = argc > 1 ? argv[1] : "bert";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 8;
  const double hbm = argc > 3 ? std::atof(argv[3]) : 512.0;

  arch::AcceleratorConfig cfg;
  if (argc > 4) {
    std::ifstream file(argv[4]);
    if (!file) {
      std::fprintf(stderr, "cannot open config file %s\n", argv[4]);
      return 1;
    }
    std::ostringstream text;
    text << file.rdbuf();
    cfg = arch::parse_accelerator_config(text.str());
  }
  cfg.bits = bits;
  cfg.memory.hbm_bandwidth_gb_s = hbm;
  const arch::Accelerator acc(cfg);

  nn::WorkloadTrace trace;
  if (workload == "deit") {
    trace = nn::trace_forward(nn::deit_base());
  } else if (workload == "vgg") {
    trace = nn::trace_cnn_forward(nn::vgg11_like());
  } else if (workload == "decode") {
    trace = nn::trace_decode_step(nn::bert_base(128), 512);
  } else {
    trace = nn::trace_forward(nn::bert_base(128));
  }

  std::printf("=== accelerator report: %s workload, %d-bit, %.0f GB/s HBM ===\n\n",
              workload.c_str(), bits, hbm);

  std::cout << eval::render_power_breakdown(
      "compute-bound power", acc.power(arch::SystemVariant::kPdacBased));

  const arch::InferenceReport rep = acc.run(trace);
  std::cout << "\n" << eval::render_energy_comparison("inference energy", rep.energy);

  const auto& org = acc.config().organization;
  std::printf("\nruntime: %.1f us (%s-bound), throughput %.0f inferences/s\n",
              rep.runtime(org).seconds() * 1e6,
              rep.roofline.memory_bound() ? "memory" : "compute",
              rep.throughput(org));
  std::printf("schedule: %.1f%% array utilization, %.1f%% DDot utilization, "
              "%.2fx pipeline slowdown\n",
              100.0 * rep.schedule.utilization(), 100.0 * rep.schedule.ddot_utilization(),
              rep.schedule.slowdown());
  std::printf("traffic: %.1f MB HBM, %.1f MB SRAM per inference\n",
              static_cast<double>(rep.traffic.hbm_bytes) / 1e6,
              static_cast<double>(rep.traffic.sram_bytes) / 1e6);
  std::printf("P-DAC saving: %.1f%% (event model), %.1f%% including memory stalls\n",
              100.0 * rep.energy.total_saving(), 100.0 * rep.effective_saving());
  return 0;
}
