// pareto_sweep — the deployment decision in one table: operand precision
// vs accuracy vs energy, for both modulator drive chains.
//
// Accuracy comes from the functional simulator (a small transformer run
// end-to-end through the photonic core, cosine similarity vs fp64);
// energy comes from the analytical model at full BERT-base scale.  The
// product is the Pareto view a deployment study needs: where does the
// P-DAC dominate the electrical-DAC design, and at what precision does
// accuracy stop paying for energy?
//
// Usage: pareto_sweep [layers] [d_model] [seq]    (defaults 1 48 12)
#include <cstdio>
#include <cstdlib>

#include "arch/energy_model.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "nn/backend.hpp"
#include "nn/model_config.hpp"
#include "nn/transformer.hpp"
#include "nn/workload_trace.hpp"

int main(int argc, char** argv) {
  using namespace pdac;

  const std::size_t layers = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 1;
  const std::size_t d_model = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 48;
  const std::size_t seq = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 12;

  // Functional accuracy probe (small model, real photonic numerics).
  const auto probe_cfg = nn::tiny_transformer(seq, d_model, 4, layers);
  nn::Transformer probe(probe_cfg);
  probe.init_random(21);
  const Matrix input = probe.random_input(22);
  auto ref = nn::make_reference_backend();
  const Matrix exact = probe.forward(input, *ref);

  // Energy at deployment scale.
  const auto lt = arch::lt_base();
  const auto params = arch::lt_power_params();
  const auto trace = nn::trace_forward(nn::bert_base(128));

  std::printf("Pareto sweep: accuracy (functional, %zux%zu model) vs energy "
              "(BERT-base scale)\n\n",
              layers, d_model);

  Table t({"bits", "driver", "cosine vs fp64", "energy/inference", "vs 8-bit DAC"});
  const double ref_energy =
      arch::evaluate_energy(trace, lt, params, 8, arch::SystemVariant::kDacBased)
          .total()
          .total()
          .joules();
  for (int bits : {4, 6, 8, 10}) {
    for (int use_pdac = 0; use_pdac <= 1; ++use_pdac) {
      auto backend = use_pdac ? nn::make_photonic_pdac_backend(bits)
                              : nn::make_photonic_ideal_dac_backend(bits);
      const Matrix out = probe.forward(input, *backend);
      const auto err = stats::compare(out.data(), exact.data());
      const auto variant = use_pdac ? arch::SystemVariant::kPdacBased
                                    : arch::SystemVariant::kDacBased;
      const double energy =
          arch::evaluate_energy(trace, lt, params, bits, variant).total().total().joules();
      t.add_row({std::to_string(bits), use_pdac ? "P-DAC" : "DAC",
                 Table::num(err.cosine, 4), Table::millijoules(energy),
                 Table::pct(energy / ref_energy, 0)});
    }
  }
  std::printf("%s", t.to_string().c_str());
  std::printf(
      "\nReading the frontier: at matched precision the P-DAC always costs less\n"
      "energy for near-identical accuracy, and a 10-bit P-DAC still undercuts\n"
      "the 8-bit DAC system.  Two structural facts emerge: (1) past ~6 bits the\n"
      "P-DAC's accuracy plateaus at the arccos-approximation floor (~0.997\n"
      "cosine) while the DAC keeps converging — more quantization bits cannot\n"
      "buy past the 8.5%% worst-case encode error, which is where the\n"
      "multi-segment programs of abl_accuracy_vs_segments come in; (2) at\n"
      "4 bits the relation inverts and the P-DAC is MORE accurate, because\n"
      "coarse phase quantization hurts the DAC chain more than the smooth\n"
      "piecewise-linear mapping hurts the P-DAC.\n");
  return 0;
}
