// bert_energy_audit — end-to-end inference energy audit for a
// transformer workload on LT-B, DAC-based vs P-DAC.
//
// Usage:
//   bert_energy_audit [bert|deit|tiny] [bits] [seq_len]
// Defaults: bert 8 128.  Prints the per-op-class energy breakdown (the
// Fig. 9/10 view), the per-term decomposition, per-layer GEMM detail for
// the first layer, and the SRAM working-set check.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "arch/energy_model.hpp"
#include "arch/sram.hpp"
#include "common/table.hpp"
#include "eval/report.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main(int argc, char** argv) {
  using namespace pdac;

  const std::string model_name = argc > 1 ? argv[1] : "bert";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::size_t seq = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 128;

  nn::TransformerConfig model;
  if (model_name == "deit") {
    model = nn::deit_base();
  } else if (model_name == "tiny") {
    model = nn::tiny_transformer();
  } else {
    model = nn::bert_base(seq);
  }

  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const nn::WorkloadTrace trace = nn::trace_forward(model);

  std::printf("energy audit: %s, %d-bit, seq %zu — %zu GEMMs, %.1f MMACs/inference\n\n",
              model.name.c_str(), bits, model.seq_len, trace.gemms.size(),
              static_cast<double>(trace.total_macs()) / 1e6);

  const auto cmp = arch::compare_energy(trace, cfg, params, bits);
  std::cout << eval::render_energy_comparison(model.name + " inference energy", cmp);

  std::printf("\nruntime (compute-bound): %.1f us/inference, %.1f inferences/s\n",
              cmp.baseline.runtime.seconds() * 1e6, 1.0 / cmp.baseline.runtime.seconds());
  std::printf("energy saving with P-DAC: %.1f%% total (attention %.1f%%, ffn %.1f%%)\n\n",
              100.0 * cmp.total_saving(), 100.0 * cmp.saving(nn::OpClass::kAttention),
              100.0 * cmp.saving(nn::OpClass::kFfn));

  // First-layer GEMM detail.
  Table t({"op", "class", "m", "k", "n", "x", "weights?", "MMACs"});
  for (const auto& g : trace.gemms) {
    if (g.label.rfind("L0.", 0) != 0) continue;
    t.add_row({g.label, nn::to_string(g.op_class), std::to_string(g.m), std::to_string(g.k),
               std::to_string(g.n), std::to_string(g.repeats),
               g.static_weights ? "static" : "dynamic",
               Table::num(static_cast<double>(g.macs()) / 1e6, 1)});
  }
  std::cout << "layer-0 GEMM inventory:\n" << t.to_string();

  // Working-set sanity: per-layer weights must fit the shared M2 SRAM.
  const arch::Sram sram{arch::SramConfig{}};
  std::size_t layer_weight_bytes = 0;
  for (const auto& g : trace.gemms) {
    if (g.label.rfind("L0.", 0) == 0) layer_weight_bytes += g.weight_elements() * bits / 8;
  }
  std::printf("\nper-layer weight working set: %.2f MiB (%s %zu MiB M2 SRAM)\n",
              static_cast<double>(layer_weight_bytes) / (1024.0 * 1024.0),
              sram.fits(layer_weight_bytes) ? "fits in" : "EXCEEDS",
              sram.config().capacity_bytes / (1024 * 1024));
  return 0;
}
