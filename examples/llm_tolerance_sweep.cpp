// llm_tolerance_sweep — the paper's core application claim, measured:
// "since our target application is LLMs, which are inherently tolerant
// to minor inaccuracies, the P-DAC is perfectly suited".
//
// Runs a small transformer encoder stack end-to-end through the
// simulated photonic core at several operand precisions, comparing
// three execution modes against the fp64 reference:
//   * photonic + ideal electrical DAC (quantization error only)
//   * photonic + P-DAC               (quantization + <=8.5 % encode error)
//   * photonic + 1-breakpoint-free P-DAC variants (breakpoint sweep)
// and reports output cosine similarity / relative error.
//
// Usage: llm_tolerance_sweep [layers] [d_model] [seq]   (defaults 2 64 16)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "nn/backend.hpp"
#include "nn/model_config.hpp"
#include "nn/transformer.hpp"

int main(int argc, char** argv) {
  using namespace pdac;

  const std::size_t layers = argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 2;
  const std::size_t d_model = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 64;
  const std::size_t seq = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 16;

  const auto cfg = nn::tiny_transformer(seq, d_model, 4, layers);
  nn::Transformer model(cfg);
  model.init_random(/*seed=*/2024);
  const Matrix input = model.random_input(/*seed=*/7);

  auto ref = nn::make_reference_backend();
  const Matrix exact = model.forward(input, *ref);

  std::printf("LLM tolerance sweep: %zu layers, d_model %zu, seq %zu (%llu ref MACs)\n\n",
              layers, d_model, seq,
              static_cast<unsigned long long>(ref->events().macs));

  Table t({"backend", "bits", "cosine sim", "rel-Frobenius", "max abs err"});
  for (int bits : {4, 6, 8}) {
    for (int use_pdac = 0; use_pdac <= 1; ++use_pdac) {
      auto backend = use_pdac ? nn::make_photonic_pdac_backend(bits)
                              : nn::make_photonic_ideal_dac_backend(bits);
      const Matrix out = model.forward(input, *backend);
      const auto err = stats::compare(out.data(), exact.data());
      t.add_row({backend->name(), std::to_string(bits), Table::num(err.cosine, 5),
                 Table::num(err.rel_frobenius, 4), Table::num(err.max_abs, 4)});
    }
  }
  std::printf("%s", t.to_string().c_str());

  // Task-level proxy: a linear classification head on the final hidden
  // state of the last token.  What matters for an application is whether
  // the *decision* survives the analog error, not the raw Frobenius gap.
  constexpr std::size_t kClasses = 16;
  constexpr int kTrials = 24;
  Rng head_rng(99);
  const Matrix head = Matrix::random_gaussian(d_model, kClasses, head_rng);
  auto predict = [&](const Matrix& hidden) {
    std::size_t best = 0;
    double best_score = -1e300;
    for (std::size_t c = 0; c < kClasses; ++c) {
      double score = 0.0;
      for (std::size_t f = 0; f < d_model; ++f) {
        score += hidden(hidden.rows() - 1, f) * head(f, c);
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  };

  Table agree({"backend", "bits", "top-1 agreement with fp64"});
  for (int bits : {4, 8}) {
    for (int use_pdac = 0; use_pdac <= 1; ++use_pdac) {
      auto backend = use_pdac ? nn::make_photonic_pdac_backend(bits)
                              : nn::make_photonic_ideal_dac_backend(bits);
      int matches = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        const Matrix in = model.random_input(1000 + trial);
        const std::size_t want = predict(model.forward(in, *ref));
        const std::size_t got = predict(model.forward(in, *backend));
        if (want == got) ++matches;
      }
      agree.add_row({backend->name(), std::to_string(bits),
                     Table::pct(static_cast<double>(matches) / kTrials, 1)});
    }
  }
  std::printf("\ntask-level proxy (%zu-way classification, %d inputs):\n%s", kClasses,
              kTrials, agree.to_string().c_str());

  std::printf(
      "\nReading: at 8-bit the P-DAC output is nearly indistinguishable from the\n"
      "ideal-DAC output (cosine ~0.99+) and classification decisions agree with\n"
      "fp64 — the paper's tolerance claim, measured at the task level.\n"
      "At 4-bit, quantization (not the P-DAC) dominates the error budget.\n");
  return 0;
}
