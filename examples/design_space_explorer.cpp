// design_space_explorer — architecture and device design-space sweeps a
// hardware team would run before committing to a P-DAC integration:
//
//   A. accelerator organization: cores × array size × wavelengths, at
//      constant peak MACs — where does the P-DAC saving move?
//   B. P-DAC breakpoint k: energy is k-independent, but accuracy is not;
//      shows the integrated/max error so the k* = 0.7236 choice is visible.
//   C. clock scaling: conversion energy is per-event, static power is
//      per-second; sweeping the clock shows the efficiency sweet spot.
#include <cstdio>

#include "arch/component_power.hpp"
#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "core/arccos_approx.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"
#include "photonics/waveguide.hpp"

int main() {
  using namespace pdac;
  const arch::PowerParams params = arch::lt_power_params();
  const auto trace = nn::trace_forward(nn::bert_base(128));

  // --- A. organization sweep ---------------------------------------------------
  std::printf("A) organization sweep (8-bit, BERT-base, constant 8192 MAC/cycle)\n");
  Table ta({"organization", "modulators", "ADCs", "DAC system", "P-DAC system", "saving"});
  struct Org {
    const char* name;
    std::size_t clusters, cores, rows, cols, lambdas;
  };
  const Org orgs[] = {
      {"2x8 cores, 8x8 DDots, 8 lambda (LT-B)", 2, 8, 8, 8, 8},
      {"2x4 cores, 8x8 DDots, 16 lambda", 2, 4, 8, 8, 16},
      {"2x2 cores, 16x16 DDots, 8 lambda", 2, 2, 16, 16, 8},
      {"2x16 cores, 8x8 DDots, 4 lambda", 2, 16, 8, 8, 4},
      {"2x32 cores, 4x4 DDots, 8 lambda", 2, 32, 4, 4, 8},
  };
  for (const auto& o : orgs) {
    arch::LtConfig cfg;
    cfg.clusters = o.clusters;
    cfg.cores_per_cluster = o.cores;
    cfg.array_rows = o.rows;
    cfg.array_cols = o.cols;
    cfg.wavelengths = o.lambdas;
    const auto base =
        arch::compute_power_breakdown(cfg, params, 8, arch::SystemVariant::kDacBased);
    const auto prop =
        arch::compute_power_breakdown(cfg, params, 8, arch::SystemVariant::kPdacBased);
    ta.add_row({o.name, std::to_string(cfg.modulator_channels()),
                std::to_string(cfg.adc_channels()), Table::watts(base.total().watts()),
                Table::watts(prop.total().watts()),
                Table::pct(1.0 - prop.total() / base.total())});
  }
  std::printf("%s", ta.to_string().c_str());
  std::printf("larger arrays amortize modulators over more DDots ((H+W) vs H*W), so\n"
              "both systems gain — but the P-DAC saving is largest where modulator\n"
              "count per MAC is highest (small arrays, many wavelengths).\n\n");

  // --- B. breakpoint sweep --------------------------------------------------------
  std::printf("B) P-DAC breakpoint sweep (accuracy only; energy is k-independent)\n");
  Table tb({"k", "integrated err (Eq.17)", "max decode err"});
  for (double k : {0.5, 0.6, 0.7, 0.7236, 0.75, 0.8, 0.9}) {
    const auto a = core::PiecewiseLinearArccos::with_breakpoint(k);
    tb.add_row({Table::num(k, 4), Table::num(a.integrated_error(), 5),
                Table::pct(a.max_decode_error(), 2)});
  }
  std::printf("%s", tb.to_string().c_str());
  std::printf("k = 0.7236 minimizes the integrated error, as derived in the paper.\n\n");

  // --- C. clock sweep ------------------------------------------------------------
  std::printf("C) clock sweep (8-bit, BERT-base)\n");
  Table tc({"clock", "runtime/inf", "DAC energy/inf", "P-DAC energy/inf", "saving"});
  for (double ghz : {1.0, 2.5, 5.0, 10.0}) {
    arch::LtConfig cfg = arch::lt_base();
    cfg.clock = units::gigahertz(ghz);
    const auto cmp = arch::compare_energy(trace, cfg, params, 8);
    tc.add_row({Table::num(ghz, 1) + " GHz",
                Table::num(cmp.baseline.runtime.seconds() * 1e6, 1) + " us",
                Table::millijoules(cmp.baseline.total().total().joules()),
                Table::millijoules(cmp.pdac.total().total().joules()),
                Table::pct(cmp.total_saving())});
  }
  std::printf("%s", tc.to_string().c_str());
  std::printf("static power (laser/thermal) integrates over runtime, so faster clocks\n"
              "reduce total energy; conversion counts — and the P-DAC's absolute\n"
              "advantage per conversion — are clock-invariant.\n\n");

  // --- D. optical link budget vs broadcast fan-out -----------------------------
  std::printf("D) link budget: laser power needed to close the modulator->DDot link\n");
  Table td({"broadcast ways", "total loss", "required laser (3 dB margin)"});
  for (std::size_t ways : {1u, 4u, 8u, 16u, 32u, 64u}) {
    photonics::LinkBudgetConfig link;
    link.broadcast_ways = ways;
    const auto rep = photonics::evaluate_link_budget(link);
    td.add_row({std::to_string(ways), Table::num(rep.total_loss_db, 1) + " dB",
                Table::num(photonics::required_laser_dbm(link), 1) + " dBm"});
  }
  std::printf("%s", td.to_string().c_str());
  std::printf("every doubling of DDot fan-out costs ~3.2 dB of laser power — the\n"
              "loss wall that bounds how far LT-style operand broadcast can scale\n"
              "(and the real reason the laser budget in Fig. 11 exceeds the pure\n"
              "SNR requirement; see bench/abl_snr).\n");
  return 0;
}
