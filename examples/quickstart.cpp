// quickstart — a five-minute tour of the library.
//
//  1. build a P-DAC and convert a few digital values to optical analog,
//  2. run a WDM dot product through a DDot unit with P-DAC-driven
//     modulators and compare it to exact math,
//  3. price the device against the electrical DAC it replaces.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "converters/electrical_dac.hpp"
#include "converters/eo_interface.hpp"
#include "core/pdac.hpp"
#include "core/modulator_driver.hpp"
#include "ptc/dot_engine.hpp"

int main() {
  using namespace pdac;

  // --- 1. a P-DAC converting optical digital words ---------------------------
  core::PdacConfig cfg;
  cfg.bits = 8;
  const core::Pdac pdac_device(cfg);
  const converters::MultiBitEoInterface eo(converters::EoInterfaceConfig{});

  std::printf("1) P-DAC conversion (8-bit, breakpoint k = %.4f)\n",
              pdac_device.approximation().breakpoint());
  std::printf("   %-8s %-10s %-12s %-12s %s\n", "code", "r (ideal)", "drive V'1", "E_out/E_in",
              "segment");
  for (std::int32_t code : {16, 64, 100, 127, -64, -120}) {
    const double r = pdac_device.quantizer().decode(code);
    // electrical code -> optical digital word -> P-DAC -> modulated field
    const auto word = eo.encode(code);
    const double phase = pdac_device.drive_phase(word);
    const double out = pdac_device.convert_code(code);
    std::printf("   0x%02X     %+.4f    %.4f       %+.4f      %s\n",
                static_cast<unsigned>(code & 0xFF), r, phase, out,
                core::to_string(pdac_device.program().select(code)).c_str());
  }
  std::printf("   worst-case encode error over all codes: %.2f%% (paper bound: 8.5%%)\n\n",
              100.0 * pdac_device.worst_case_error());

  // --- 2. a photonic dot product ------------------------------------------------
  const auto driver = core::make_pdac_driver(8);
  ptc::DotEngineConfig ecfg;
  ecfg.use_full_optics = true;  // run the real PS -> DC -> PD datapath
  const ptc::PhotonicDotEngine engine(*driver, ecfg);

  Rng rng(42);
  const auto x = rng.uniform_vector(16, -1.0, 1.0);
  const auto y = rng.uniform_vector(16, -1.0, 1.0);
  double exact = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) exact += x[i] * y[i];

  ptc::EventCounter ev;
  const double optical = engine.dot(x, y, &ev);
  std::printf("2) WDM dot product, 16 elements over %zu wavelengths\n",
              ecfg.wavelengths);
  std::printf("   exact = %+.5f   optical(P-DAC) = %+.5f   |diff| = %.5f\n", exact, optical,
              std::abs(exact - optical));
  std::printf("   events: %llu modulations, %llu DDot readouts\n\n",
              static_cast<unsigned long long>(ev.modulation_events),
              static_cast<unsigned long long>(ev.detection_events));

  // --- 3. the power story ---------------------------------------------------------
  converters::ElectricalDacConfig dac_cfg;
  dac_cfg.bits = 8;
  const converters::ElectricalDac dac(dac_cfg);
  std::printf("3) per-modulator power at 8-bit, 5 GS/s\n");
  std::printf("   electrical DAC: %.3f mW    P-DAC: %.3f mW    (%.1fx lower)\n",
              dac.power().milliwatts(), pdac_device.power().milliwatts(),
              dac.power() / pdac_device.power());
  return 0;
}
