// trace_export — export per-op energy accounting as CSV for downstream
// plotting (the machine-readable companion to the Fig. 9/10 benches).
//
// Usage:
//   trace_export [bert|deit] [bits] [seq_len] > energy.csv
// Emits one row per GEMM op with dimensions, class, residency, event
// counts and both variants' energy terms.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "arch/component_power.hpp"
#include "arch/op_events.hpp"
#include "arch/power_params.hpp"
#include "nn/model_config.hpp"
#include "nn/workload_trace.hpp"

int main(int argc, char** argv) {
  using namespace pdac;

  const std::string model_name = argc > 1 ? argv[1] : "bert";
  const int bits = argc > 2 ? std::atoi(argv[2]) : 8;
  const std::size_t seq = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 128;

  const nn::TransformerConfig model =
      model_name == "deit" ? nn::deit_base() : nn::bert_base(seq);
  const arch::LtConfig cfg = arch::lt_base();
  const arch::PowerParams params = arch::lt_power_params();
  const nn::WorkloadTrace trace = nn::trace_forward(model);

  const double f = cfg.clock.hertz();
  const double n_mod = static_cast<double>(cfg.modulator_channels());
  const double e_mod_dac = arch::dac_unit_power(params, bits).watts() / f +
                           arch::controller_power(params, bits).watts() / (n_mod * f);
  const double e_mod_pdac = arch::pdac_unit_power(params, bits).watts() / f;
  const double e_adc = arch::adc_unit_power(params, bits).watts() / f;
  const double p_static = (arch::laser_power(params, bits) + params.thermal_tuning +
                           arch::receiver_digital_power(params, bits))
                              .watts();
  const double e_sram_bit = params.sram_energy_per_bit.joules();
  const double arrays = static_cast<double>(cfg.arrays());

  std::printf(
      "label,class,m,k,n,repeats,residency,macs,modulations,adc_samples,"
      "tile_cycles,moved_bits,e_mod_dac_nj,e_mod_pdac_nj,e_adc_nj,e_static_nj,"
      "e_movement_nj\n");
  for (const auto& op : trace.gemms) {
    const arch::OpEvents ev = arch::count_op_events(op, cfg);
    const std::uint64_t moved_elements =
        op.weight_elements() + (op.static_weights ? op.activation_elements() : 0) +
        op.extra_movement_elements;
    const double moved_bits = static_cast<double>(moved_elements) * bits;
    const double wall_s = static_cast<double>(ev.tile_cycles) / arrays / f;
    std::printf("%s,%s,%zu,%zu,%zu,%zu,%s,%llu,%llu,%llu,%llu,%.0f,%.4f,%.4f,%.4f,%.4f,%.4f\n",
                op.label.c_str(), nn::to_string(op.op_class).c_str(), op.m, op.k, op.n,
                op.repeats, op.static_weights ? "static" : "dynamic",
                static_cast<unsigned long long>(op.macs()),
                static_cast<unsigned long long>(ev.modulations),
                static_cast<unsigned long long>(ev.adc_samples),
                static_cast<unsigned long long>(ev.tile_cycles), moved_bits,
                static_cast<double>(ev.modulations) * e_mod_dac * 1e9,
                static_cast<double>(ev.modulations) * e_mod_pdac * 1e9,
                static_cast<double>(ev.adc_samples) * e_adc * 1e9, p_static * wall_s * 1e9,
                moved_bits * e_sram_bit * 1e9);
  }
  return 0;
}
