// request.hpp — request/verdict types for the continuous-batching
// serving engine (DESIGN.md §14).
//
// A request is one independent decode stream: it arrives at a virtual
// time, carries a prompt (charged as prefill time), asks for a fixed
// number of decode tokens, and may carry a deadline.  The engine owes
// every admitted request a *terminal* verdict — completed, shed or
// failed — and the accounting below is how that promise is audited:
// completed + shed + failed must equal the submitted count, always.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace pdac::serve {

/// Terminal state of one request.  kPending never survives a run.
enum class Verdict {
  kPending,    ///< not yet resolved (in queue or in flight)
  kCompleted,  ///< every requested token produced
  kShed,       ///< load-shed with an explicit reason, never served further
  kFailed,     ///< hardware gave up (ladder exhausted / pool offline)
};

/// Why a shed request was shed.
enum class ShedReason {
  kNone,
  kQueueFull,          ///< bounded admission queue was at capacity
  kAdmissionDeadline,  ///< deadline provably unmeetable at admission
  kDeadlineMissed,     ///< deadline expired while queued / between tokens
};

/// One independent decode request (engine input).
struct Request {
  /// No-deadline sentinel.  Deliberately the *maximum* cycle count, so
  /// every real deadline — including a tight one landing at cycle 0 for
  /// a t=0 arrival — stays distinguishable from "no deadline" and sorts
  /// before it under EDF.  (The previous sentinel was 0, which a t=0
  /// request with sub-cycle slack could collide with, silently becoming
  /// deadline-free.)
  static constexpr std::uint64_t kNoDeadline = std::numeric_limits<std::uint64_t>::max();

  std::uint64_t id{0};
  std::uint64_t arrival{0};       ///< virtual-time arrival [cycles]
  std::size_t model{0};           ///< weight-set index (cache affinity key)
  std::size_t prompt_len{0};      ///< prefill tokens (time charge only)
  std::size_t decode_tokens{1};   ///< tokens to produce
  std::uint64_t deadline{kNoDeadline};  ///< absolute cycles; kNoDeadline = none
  /// Opt-in decode-phase KV attention (DESIGN.md §17): each token also
  /// runs scores = y·Kᵀ and context = softmax(scores)·K against the
  /// request's growing history of normalized output rows, routed through
  /// the backend's matmul_kv so healthy backends append their resident
  /// prepared operands in place (quarantined/re-trimmed ones rebuild).
  /// The context row chains into the digest, so the engine-vs-reference
  /// bit-identity witness covers the incremental KV path too.
  bool kv_attention{false};

  [[nodiscard]] bool has_deadline() const { return deadline != kNoDeadline; }
  /// Current activation row (d_model wide), unit max-abs normalized —
  /// per-request normalization is what makes a request's numerics
  /// independent of its batchmates (the bit-identity contract).
  std::vector<double> activation;
};

/// Terminal record of one request (engine output).
struct RequestRecord {
  Verdict verdict{Verdict::kPending};
  ShedReason shed_reason{ShedReason::kNone};
  std::size_t tokens_done{0};
  std::uint64_t admitted_at{0};
  std::uint64_t first_token_at{0};  ///< 0 if no token was produced
  std::uint64_t finished_at{0};     ///< time of the terminal verdict
  bool late{false};                 ///< completed after its deadline
  /// FNV-1a digest chained over the raw bytes of every emitted token
  /// row — the per-request bit-identity witness against the
  /// single-backend reference.
  std::uint64_t digest{14695981039346656037ull};
  /// Tokens served per pool slot (index = backend), for placement audits.
  std::vector<std::size_t> tokens_by_backend;
};

/// Chain `values` into an FNV-1a-64 digest (byte-wise over the doubles).
[[nodiscard]] std::uint64_t fnv1a(std::span<const double> values, std::uint64_t h);

std::string to_string(Verdict verdict);
std::string to_string(ShedReason reason);

}  // namespace pdac::serve
