#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "nn/ops.hpp"
#include "serve/workload.hpp"

namespace pdac::serve {

namespace {

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/// KV handle ids for request `rid`: derived from the request identity
/// (not allocated), so the engine and run_reference present the same
/// growing-operand identity to their backends, and a token landing on a
/// different backend mid-sequence still names the same sequence.  The
/// high-bit offset keeps them disjoint from nn::next_kv_id allocations.
constexpr std::uint64_t kKvIdBase = 1ull << 32;
[[nodiscard]] nn::KvHandle score_handle(std::uint64_t rid) {
  return {kKvIdBase + rid * 2, nn::KvAxis::kCols};
}
[[nodiscard]] nn::KvHandle ctx_handle(std::uint64_t rid) {
  return {kKvIdBase + rid * 2 + 1, nn::KvAxis::kRows};
}

/// One KV-attention step on `backend`: append the normalized output row
/// `y` to the request's history `kv`, then scores = y·Kᵀ (kCols),
/// softmax(scores/√d), context = scores·K (kRows).  Returns the
/// (1 × d) context row.  History rows are unit max-abs, so the resident
/// operands' scale is a stable 1.0 and healthy-path appends never
/// rebuild on scale.
[[nodiscard]] Matrix kv_attend(faults::GuardedBackend& backend, std::uint64_t rid,
                               Matrix& kv, const std::vector<double>& y) {
  const std::size_t d = y.size();
  const std::size_t t = kv.cols() == d ? kv.rows() : 0;
  if (kv.cols() != d) kv = Matrix(0, d);
  kv.resize(t + 1, d);  // cols constant: resize preserves the history rows
  std::copy(y.begin(), y.end(), kv.row(t).begin());
  Matrix a(1, d);
  std::copy(y.begin(), y.end(), a.row(0).begin());
  Matrix scores = backend.matmul_kv(a, kv, score_handle(rid));
  nn::scale_inplace(scores, 1.0 / std::sqrt(static_cast<double>(d)));
  nn::softmax_rows(scores);
  return backend.matmul_kv(scores, kv, ctx_handle(rid));
}

/// EDF key: deadline (none sorts last), then arrival, then id.
struct EdfKey {
  std::uint64_t deadline;
  std::uint64_t arrival;
  std::uint64_t id;
  [[nodiscard]] bool operator<(const EdfKey& o) const {
    if (deadline != o.deadline) return deadline < o.deadline;
    if (arrival != o.arrival) return arrival < o.arrival;
    return id < o.id;
  }
};

[[nodiscard]] EdfKey edf_key(const Request& r) {
  // Request::kNoDeadline is already the maximum cycle count, so
  // deadline-free requests sort last with no sentinel translation — and
  // a real deadline of 0 (t=0 arrival, tight slack) stays a deadline.
  static_assert(Request::kNoDeadline == kNever);
  return {r.deadline, r.arrival, r.id};
}

}  // namespace

double percentile(std::vector<std::uint64_t> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return static_cast<double>(values[lo]) +
         frac * (static_cast<double>(values[hi]) - static_cast<double>(values[lo]));
}

ServingEngine::ServingEngine(BackendPool& pool, const std::vector<nn::Linear>& models,
                             ServingConfig cfg)
    : pool_(pool), models_(models), cfg_(cfg) {
  PDAC_REQUIRE(!models_.empty(), "ServingEngine: need at least one weight set");
  PDAC_REQUIRE(cfg_.max_batch > 0 && cfg_.max_queue > 0,
               "ServingEngine: batch and queue bounds must be positive");
  for (const nn::Linear& m : models_) {
    PDAC_REQUIRE(m.weight().rows() == m.weight().cols(),
                 "ServingEngine: decode weight sets must be square");
  }
}

ServingReport ServingEngine::run(const std::vector<Request>& requests) {
  const std::size_t n = requests.size();
  const std::size_t pool_n = pool_.size();

  struct ReqState {
    std::vector<double> x;        ///< current activation (unit max-abs)
    Matrix kv{0, 0};              ///< KV history (kv_attention requests)
    std::size_t tokens_done{0};
    std::uint64_t ready_at{0};    ///< in flight until this time
    std::uint64_t last_emit{0};   ///< previous token time (or arrival)
    bool admitted{false};
  };

  ServingReport rep;
  rep.records.resize(n);
  rep.backends.resize(pool_n);
  std::vector<ReqState> st(n);
  for (std::size_t q = 0; q < n; ++q) {
    const Request& r = requests[q];
    PDAC_REQUIRE(r.model < models_.size(), "ServingEngine: request model out of range");
    PDAC_REQUIRE(r.activation.size() == models_[r.model].weight().rows(),
                 "ServingEngine: activation width must match d_model");
    PDAC_REQUIRE(r.decode_tokens > 0, "ServingEngine: zero-token request");
    PDAC_REQUIRE(q == 0 || requests[q - 1].arrival <= r.arrival,
                 "ServingEngine: requests must be sorted by arrival");
    st[q].x = r.activation;
    st[q].last_emit = r.arrival;
    rep.records[q].tokens_by_backend.assign(pool_n, 0);
  }

  std::vector<std::uint64_t> busy(pool_n, 0);
  std::uint64_t now = 0;
  std::size_t next_arrival = 0;
  std::size_t open = n;       // requests without a terminal verdict
  std::size_t occupancy = 0;  // admitted and unfinished (the bounded queue)
  double est_token_cycles = 0.0;  // measured after the first product

  auto finalize = [&](std::size_t q, Verdict v, ShedReason reason, std::uint64_t t) {
    RequestRecord& rec = rep.records[q];
    PDAC_REQUIRE(rec.verdict == Verdict::kPending, "ServingEngine: double verdict");
    rec.verdict = v;
    rec.shed_reason = reason;
    rec.finished_at = t;
    if (requests[q].kv_attention) {
      // Sequence retirement: drop the resident prepared operands on
      // every backend that might hold them.
      for (std::size_t b = 0; b < pool_n; ++b) {
        pool_.backend(b).release_kv(score_handle(requests[q].id).id);
        pool_.backend(b).release_kv(ctx_handle(requests[q].id).id);
      }
    }
    if (st[q].admitted) --occupancy;
    --open;
    switch (v) {
      case Verdict::kCompleted: ++rep.completed; break;
      case Verdict::kShed: ++rep.shed; break;
      case Verdict::kFailed: ++rep.failed; break;
      case Verdict::kPending: break;  // unreachable
    }
    rep.makespan = std::max(rep.makespan, t);
  };

  auto prefill_charge = [&](const Request& r) {
    return static_cast<std::uint64_t>(r.prompt_len) * cfg_.prefill_cycles_per_token;
  };

  auto run_batch = [&](std::size_t b, std::size_t model, const std::vector<std::size_t>& batch) {
    faults::GuardedBackend& be = pool_.backend(b);
    const nn::Linear& lin = models_[model];
    const std::size_t d = lin.weight().rows();

    Matrix a(batch.size(), d);
    for (std::size_t r = 0; r < batch.size(); ++r) {
      const std::vector<double>& x = st[batch[r]].x;
      std::copy(x.begin(), x.end(), a.row(r).begin());
    }

    pool_.begin_product(b, now);
    const faults::HealthSnapshot snap0 = be.monitor().snapshot();
    const std::uint64_t cyc0 = be.events().cycles;
    const Matrix c = be.matmul_cached(a, lin.weight(), lin.weight_handle());
    // Per-request KV attention products, in deterministic row order and
    // inside the product's timing window, so the incremental-vs-rebuild
    // cost difference lands in service time.  The normalized output row
    // is staged here (it both extends the history and seeds the next
    // token); rows that fail normalization skip their KV step.
    std::vector<std::vector<double>> ynorm(batch.size());
    std::vector<Matrix> kvctx(batch.size());
    std::vector<char> row_ok(batch.size(), 1);
    for (std::size_t r = 0; r < batch.size(); ++r) {
      const std::size_t q = batch[r];
      ynorm[r].assign(c.row(r).begin(), c.row(r).end());
      row_ok[r] = normalize_unit_max(ynorm[r]) ? 1 : 0;
      if (row_ok[r] == 1 && requests[q].kv_attention) {
        kvctx[r] = kv_attend(be, requests[q].id, st[q].kv, ynorm[r]);
      }
    }
    const faults::HealthSnapshot snap1 = be.monitor().snapshot();
    const std::uint64_t cyc1 = be.events().cycles;
    pool_.end_product(b, snap1.retrims - snap0.retrims);

    // Service time: the data-path cycles this product actually consumed
    // (recovery re-runs included) plus the ladder's probe charges plus
    // prefill occupancy for first-token requests.
    std::uint64_t service = (cyc1 - cyc0) +
                            cfg_.probe_cycles * (snap1.probe_events - snap0.probe_events);
    for (const std::size_t q : batch) {
      if (st[q].tokens_done == 0) service += prefill_charge(requests[q]);
    }
    service = std::max<std::uint64_t>(service, 1);
    const std::uint64_t finish = now + service;
    busy[b] = finish;
    est_token_cycles = static_cast<double>(cyc1 - cyc0) / static_cast<double>(batch.size());

    BackendServeStats& bs = rep.backends[b];
    ++bs.products;
    bs.busy_cycles += service;
    ++rep.products;

    // A product the ladder gave up on (or that went fully offline
    // mid-run) yields untrustworthy rows: every rider fails, hard —
    // explicitly, not silently.
    const bool gave_up = snap1.unrecovered > snap0.unrecovered;
    const bool offline = !pool_.alive(b);
    for (std::size_t r = 0; r < batch.size(); ++r) {
      const std::size_t q = batch[r];
      if (gave_up || offline) {
        finalize(q, Verdict::kFailed, ShedReason::kNone, finish);
        continue;
      }
      RequestRecord& rec = rep.records[q];
      rec.digest = fnv1a(c.row(r), rec.digest);  // digest the raw row
      if (kvctx[r].size() > 0) {
        // KV witness: the context row seen through the incremental
        // prepared path chains in after the projection row.
        rec.digest = fnv1a(kvctx[r].row(0), rec.digest);
      }
      if (row_ok[r] == 0) {
        finalize(q, Verdict::kFailed, ShedReason::kNone, finish);
        continue;
      }
      st[q].x = std::move(ynorm[r]);
      ++st[q].tokens_done;
      ++rec.tokens_done;
      ++rec.tokens_by_backend[b];
      ++bs.tokens;
      ++rep.tokens_emitted;
      if (rec.first_token_at == 0) rec.first_token_at = finish;
      rep.token_gaps.push_back(finish - st[q].last_emit);
      st[q].last_emit = finish;
      st[q].ready_at = finish;
      if (st[q].tokens_done == requests[q].decode_tokens) {
        rec.late = requests[q].has_deadline() && finish > requests[q].deadline;
        finalize(q, Verdict::kCompleted, ShedReason::kNone, finish);
        rep.goodput_tokens += st[q].tokens_done;
        rep.request_latencies.push_back(finish - requests[q].arrival);
      }
    }
  };

  while (open > 0) {
    // 1. Admission: arrivals up to `now` pass the bounded queue and the
    //    deadline feasibility check, or are shed with the reason.
    while (next_arrival < n && requests[next_arrival].arrival <= now) {
      const std::size_t q = next_arrival++;
      const Request& r = requests[q];
      if (occupancy >= cfg_.max_queue) {
        finalize(q, Verdict::kShed, ShedReason::kQueueFull, now);
        continue;
      }
      if (r.has_deadline() && est_token_cycles > 0.0) {
        const double eta = static_cast<double>(now) +
                           static_cast<double>(prefill_charge(r)) +
                           static_cast<double>(r.decode_tokens) * est_token_cycles;
        if (eta > static_cast<double>(r.deadline)) {
          finalize(q, Verdict::kShed, ShedReason::kAdmissionDeadline, now);
          continue;
        }
      }
      st[q].admitted = true;
      ++occupancy;
      rep.records[q].admitted_at = now;
    }

    // 1b. Quarantine housekeeping: probation triggers and due canary
    //     probes run before placement sees the scores, so a backend that
    //     just crossed its drift threshold takes no further work.
    pool_.tick(now);

    // 2. Placement: health-proportional batch caps over the free slots.
    //    Quarantined slots score 0 — probation means no serving work.
    double best_score = 0.0;
    std::vector<double> score(pool_n, 0.0);
    for (std::size_t b = 0; b < pool_n; ++b) {
      score[b] = pool_.in_rotation(b) ? pool_.health_score(b) : 0.0;
      best_score = std::max(best_score, score[b]);
    }

    // Degenerate pool — every backend scoring 0 (all fenced mid-storm):
    // placement must stall *explicitly*.  The proportional cap below
    // divides by best_score, and running it here would be 0/0 → NaN →
    // llround, which is UB.  With placement skipped, step 3 either
    // advances time to the next event or fails the stranded requests
    // with an explicit verdict.
    const bool placeable = best_score > 0.0 && std::isfinite(best_score);

    bool dispatched = false;
    for (std::size_t b = 0; placeable && b < pool_n; ++b) {
      if (busy[b] > now) continue;
      if (score[b] <= 0.0 || score[b] < cfg_.health_floor * best_score) continue;
      const std::size_t cap = std::min(
          cfg_.max_batch,
          std::max<std::size_t>(
              1, static_cast<std::size_t>(
                     std::llround(static_cast<double>(cfg_.max_batch) * score[b] / best_score))));

      // Eligible = admitted, unfinished, not in flight.  Requests whose
      // deadline already expired are shed here, before they cost a
      // product — the deadline-missed path.
      std::vector<std::size_t> eligible;
      for (std::size_t q = 0; q < n; ++q) {
        if (rep.records[q].verdict != Verdict::kPending || !st[q].admitted) continue;
        if (st[q].ready_at > now) continue;
        if (requests[q].has_deadline() && now > requests[q].deadline) {
          finalize(q, Verdict::kShed, ShedReason::kDeadlineMissed, now);
          continue;
        }
        eligible.push_back(q);
      }
      if (eligible.empty()) continue;

      // Model choice: queue pressure per weight set, boosted when this
      // backend already holds the prepared operand (cache affinity).
      std::vector<std::size_t> pressure(models_.size(), 0);
      for (const std::size_t q : eligible) ++pressure[requests[q].model];
      const nn::OperandCache* cache = pool_.backend(b).operand_cache();
      const std::uint64_t epoch = pool_.bank(b).epoch();
      double best_model_score = -1.0;
      std::size_t model = 0;
      for (std::size_t m = 0; m < models_.size(); ++m) {
        if (pressure[m] == 0) continue;
        double s = static_cast<double>(pressure[m]);
        const nn::WeightHandle h = models_[m].weight_handle();
        if (cache != nullptr && cache->contains(h.id, h.version, epoch)) {
          s += cfg_.affinity_bonus * static_cast<double>(pressure[m]);
        }
        if (s > best_model_score) {
          best_model_score = s;
          model = m;
        }
      }

      // EDF within the chosen weight set, truncated to the health cap.
      std::vector<std::size_t> batch;
      for (const std::size_t q : eligible) {
        if (requests[q].model == model) batch.push_back(q);
      }
      std::sort(batch.begin(), batch.end(), [&](std::size_t lhs, std::size_t rhs) {
        return edf_key(requests[lhs]) < edf_key(requests[rhs]);
      });
      if (batch.size() > cap) batch.resize(cap);

      run_batch(b, model, batch);
      dispatched = true;
    }
    if (open == 0) break;

    // 3. Advance virtual time to the next event (arrival or product
    //    completion).  No event and nothing dispatched means the
    //    remaining requests are unservable — the pool is offline or
    //    health-floored — and they fail *explicitly*.
    std::uint64_t next = kNever;
    if (next_arrival < n) next = std::min(next, requests[next_arrival].arrival);
    for (std::size_t b = 0; b < pool_n; ++b) {
      if (busy[b] > now) next = std::min(next, busy[b]);
    }
    // Pending canary probes are events too: a fully-quarantined pool
    // waits for its probes (and the readmission they can earn) instead
    // of failing the queue.
    next = std::min(next, pool_.next_probe_at());
    if (next != kNever && next > now) {
      now = next;
    } else if (!dispatched) {
      for (std::size_t q = 0; q < n; ++q) {
        if (rep.records[q].verdict == Verdict::kPending) {
          finalize(q, Verdict::kFailed, ShedReason::kNone, now);
        }
      }
      break;
    }
  }

  PDAC_REQUIRE(rep.reconciled(n), "ServingEngine: verdicts failed to reconcile");
  rep.throttled_products = pool_.throttled_products();
  rep.quarantines = pool_.quarantines();
  rep.readmissions = pool_.readmissions();
  rep.canary_probes = pool_.canary_probes();
  for (std::size_t b = 0; b < pool_n; ++b) {
    BackendServeStats& bs = rep.backends[b];
    bs.alive = pool_.alive(b);
    bs.quarantined = pool_.quarantined(b);
    bs.final_health = pool_.health_score(b);
    bs.events = pool_.backend(b).events();
    bs.health = pool_.backend(b).monitor().snapshot();
    bs.drift = pool_.backend(b).drift().snapshot();
    if (const nn::KvPreparedCache* kv = pool_.backend(b).kv_cache(); kv != nullptr) {
      bs.kv = kv->stats();
    }
  }
  return rep;
}

std::vector<RequestRecord> run_reference(const std::vector<Request>& requests,
                                         const std::vector<nn::Linear>& models,
                                         faults::GuardedBackend& backend) {
  std::vector<RequestRecord> records(requests.size());
  for (std::size_t q = 0; q < requests.size(); ++q) {
    const Request& r = requests[q];
    PDAC_REQUIRE(r.model < models.size(), "run_reference: request model out of range");
    const nn::Linear& lin = models[r.model];
    RequestRecord& rec = records[q];
    std::vector<double> x = r.activation;
    Matrix a(1, x.size());
    Matrix kv(0, 0);
    rec.verdict = Verdict::kCompleted;
    for (std::size_t t = 0; t < r.decode_tokens; ++t) {
      std::copy(x.begin(), x.end(), a.row(0).begin());
      const Matrix c = backend.matmul_cached(a, lin.weight(), lin.weight_handle());
      rec.digest = fnv1a(c.row(0), rec.digest);
      std::vector<double> y(c.row(0).begin(), c.row(0).end());
      const bool ok = normalize_unit_max(y);
      if (ok && r.kv_attention) {
        // Identical KV step and digest chaining to run_batch: same
        // handle ids, same product order, so the engine's incremental
        // path must reproduce these bits exactly.
        const Matrix ctx = kv_attend(backend, r.id, kv, y);
        rec.digest = fnv1a(ctx.row(0), rec.digest);
      }
      if (!ok) {
        rec.verdict = Verdict::kFailed;
        break;
      }
      x = std::move(y);
      ++rec.tokens_done;
    }
    if (r.kv_attention) {
      backend.release_kv(score_handle(r.id).id);
      backend.release_kv(ctx_handle(r.id).id);
    }
  }
  return records;
}

}  // namespace pdac::serve
