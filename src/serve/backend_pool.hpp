// backend_pool.hpp — a fleet of checksum-guarded photonic backends for
// the continuous-batching serving engine (DESIGN.md §14).
//
// Every slot is an identically-fabricated accelerator: its own LaneBank
// (same fabrication seed — bit-identical encodes at fault rate 0), its
// own GuardedBackend with a weight-stationary operand cache, and
// optionally its own FaultInjector storm advanced per tile step.  The
// pool layers two serving-side policies on top of the guard:
//
//  * Guard-aware health scores.  health_score() folds each backend's
//    HealthMonitor attribution — lane implications from escalation
//    self-tests, fences taken, unrecovered products, detections — with
//    its surviving channel capacity into one placement signal.  The
//    scheduler steers work toward clean backends proportionally, so a
//    chronically-implicated array serves less traffic instead of
//    stalling the whole batch.
//
//  * A re-trim budget.  Targeted self-tests are the expensive rung
//    (probe charges scale with implicated lanes), so each backend gets
//    `retrim_budget` re-trims per `retrim_window` virtual cycles.  When
//    a slot exhausts its window budget the pool clamps its escalation
//    ladder to max_retrims = 0 — the ladder then jumps retry → fence —
//    and restores the full ladder when the window rolls over.  Windows
//    roll at exact boundary multiples of the window length (anchored to
//    first use), so a re-trim spent by a product that straddles a
//    boundary is charged once, to the window the product began in.
//
//  * Quarantine / readmission (DESIGN.md §16).  A backend whose drift
//    tracker reports excursion lanes — or whose escalation history shows
//    fresh fences, give-ups, or a re-trim storm — is pulled from
//    rotation into probation: the placement loop skips it, and the pool
//    probes it with small canary products on an exponential-backoff
//    schedule.  An unclean probe triggers force_retrim() (recovery runs
//    off the serving path, ungoverned) and doubles the backoff; only K
//    consecutive clean probes readmit the slot.  Invariants: a
//    quarantined slot never takes serving work; readmission requires K
//    consecutive clean probes (any unclean probe re-zeros the count);
//    probation never fences — it re-trims, so capacity is preserved.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::serve {

/// Shape of the guard-aware placement score (see health_score()).
struct HealthScoreConfig {
  double lane_mismatch_weight{0.30};  ///< per lane implication
  double fence_weight{1.0};           ///< per degraded re-run taken
  double unrecovered_weight{2.0};     ///< per best-effort (given-up) product
  double detection_weight{0.10};      ///< per product with a caught mismatch
};

/// Probation policy for drifting/escalating backends (DESIGN.md §16).
/// Off by default: quarantine is a serving-layer opt-in, and a disabled
/// pool behaves exactly as before this policy existed.
struct QuarantineConfig {
  bool enabled{false};
  /// Drift-tracker excursion lanes that trigger probation.
  std::size_t excursion_lanes{1};
  /// Fresh give-ups since the last clean point that trigger probation.
  std::size_t unrecovered_products{1};
  /// Fresh fence rungs since the last clean point that trigger probation.
  std::size_t fence_events{2};
  /// Fresh re-trims since the last clean point that trigger probation
  /// (a re-trim storm is an escalation-history signal even when every
  /// re-trim succeeded).  0 disables this trigger.
  std::size_t retrim_storm{0};
  /// First probe delay after quarantine [virtual cycles]; doubles after
  /// every unclean probe up to `probe_backoff_max`.  Clean-but-not-yet-K
  /// probes re-probe at the base cadence.
  std::uint64_t probe_backoff{256};
  std::uint64_t probe_backoff_max{4096};
  /// Consecutive clean canary probes required for readmission.
  std::size_t readmit_clean_probes{2};
  /// Canary product shape: array_rows × canary_k by canary_k ×
  /// array_cols, drawn once from `canary_seed` (same operands for every
  /// probe, so probe verdicts are comparable across the run).
  std::size_t canary_k{16};
  std::uint64_t canary_seed{0x5eedcafe};
};

enum class QuarantineEventKind { kQuarantined, kProbe, kReadmitted };

struct QuarantineEvent {
  QuarantineEventKind kind{QuarantineEventKind::kProbe};
  std::size_t backend{0};
  std::uint64_t at{0};      ///< virtual cycle the event fired
  bool clean{false};        ///< probe verdict (probes only)
};

struct BackendPoolConfig {
  std::size_t backends{2};
  /// Fabrication draw shared by every slot: identical seeds give
  /// identical lane physics, the basis of the pool's bit-identity.
  faults::LaneBankConfig bank{};
  faults::GuardedBackendConfig guarded{};
  HealthScoreConfig health{};
  /// Re-trims each backend may spend per budget window (0 = never
  /// re-trim: the ladder always skips straight from retry to fence).
  std::size_t retrim_budget{2};
  std::uint64_t retrim_window{4096};  ///< window length [virtual cycles]
  QuarantineConfig quarantine{};
};

class BackendPool {
 public:
  explicit BackendPool(const BackendPoolConfig& cfg);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] faults::GuardedBackend& backend(std::size_t i) { return *slots_.at(i).backend; }
  [[nodiscard]] const faults::GuardedBackend& backend(std::size_t i) const {
    return *slots_.at(i).backend;
  }
  [[nodiscard]] const faults::LaneBank& bank(std::size_t i) const { return *slots_.at(i).bank; }

  /// Attach a per-slot fault storm (the injector is owned by the pool
  /// and advanced `steps_per_tile` before every tile the slot runs).
  void attach_storm(std::size_t i, const faults::FaultSchedule& schedule,
                    std::uint64_t steps_per_tile);

  /// A slot with every channel fenced is offline and can take no work.
  [[nodiscard]] bool alive(std::size_t i) const { return bank(i).usable_channels() > 0; }

  /// True while the slot sits in probation (quarantined, probe-only).
  [[nodiscard]] bool quarantined(std::size_t i) const { return slots_.at(i).probation; }

  /// Placement eligibility: alive and not quarantined.
  [[nodiscard]] bool in_rotation(std::size_t i) const { return alive(i) && !quarantined(i); }

  /// Quarantine housekeeping at virtual time `now`: evaluate the
  /// probation triggers against each slot's drift tracker and escalation
  /// history, and run any canary probes that have come due.  Idempotent
  /// at a given `now`; the engine calls it once per scheduling round.
  void tick(std::uint64_t now);

  /// Earliest pending canary probe, or UINT64_MAX when none — folded
  /// into the engine's time advance so an all-quarantined pool waits for
  /// its probes instead of failing the queue.
  [[nodiscard]] std::uint64_t next_probe_at() const;

  [[nodiscard]] std::size_t quarantines() const { return quarantines_; }
  [[nodiscard]] std::size_t readmissions() const { return readmissions_; }
  [[nodiscard]] std::size_t canary_probes() const { return canary_probes_; }
  [[nodiscard]] const std::vector<QuarantineEvent>& quarantine_log() const {
    return quarantine_log_;
  }

  /// Guard-aware placement score in [0, 1]: surviving-capacity fraction
  /// shrunk by the monitor's blame attribution.  0 means offline.
  [[nodiscard]] double health_score(std::size_t i) const;

  /// Window bookkeeping before a product: rolls the re-trim window over
  /// when `now` has left it and clamps/restores the slot's escalation
  /// ladder according to the remaining budget.
  void begin_product(std::size_t i, std::uint64_t now);

  /// Debit the re-trims a product actually spent.
  void end_product(std::size_t i, std::size_t retrims_spent);

  /// Re-trims the slot may still spend in the current window.
  [[nodiscard]] std::size_t retrims_left(std::size_t i) const;
  /// True while the slot's ladder is clamped to max_retrims = 0.
  [[nodiscard]] bool throttled(std::size_t i) const { return slots_.at(i).clamped; }
  /// Products run with a clamped ladder (budget-exhaustion pressure).
  [[nodiscard]] std::size_t throttled_products() const { return throttled_products_; }

  [[nodiscard]] const BackendPoolConfig& config() const { return cfg_; }

 private:
  struct Slot {
    std::unique_ptr<faults::LaneBank> bank;
    std::unique_ptr<faults::GuardedBackend> backend;
    std::unique_ptr<faults::FaultInjector> injector;
    std::uint64_t window_start{0};
    std::size_t retrims_spent{0};
    bool clamped{false};
    // -- probation state (DESIGN.md §16) ------------------------------
    bool probation{false};
    std::uint64_t next_probe_at{0};
    std::uint64_t backoff{0};
    std::size_t clean_probes{0};
    /// Escalation-history baselines: counts already accounted for at the
    /// last clean point (readmission or construction), so the probation
    /// triggers fire on *fresh* damage only.
    std::size_t seen_fences{0};
    std::size_t seen_unrecovered{0};
    std::size_t seen_retrims{0};
  };

  /// One canary product on slot `i` with the full (unclamped) ladder:
  /// clean iff it finished with no new mismatched tiles, no new give-up,
  /// and no excursion lanes left in the tracker.  Unclean probes
  /// force_retrim() on the spot — probation is where recovery runs.
  [[nodiscard]] bool canary_probe(std::size_t i);

  BackendPoolConfig cfg_;
  faults::EscalationConfig clamped_escalation_;  ///< full ladder, max_retrims = 0
  std::vector<Slot> slots_;
  std::size_t throttled_products_{0};
  std::size_t quarantines_{0};
  std::size_t readmissions_{0};
  std::size_t canary_probes_{0};
  std::vector<QuarantineEvent> quarantine_log_;
  Matrix canary_a_;  ///< fixed seeded canary operands (quarantine.canary_seed)
  Matrix canary_b_;
};

}  // namespace pdac::serve
