// backend_pool.hpp — a fleet of checksum-guarded photonic backends for
// the continuous-batching serving engine (DESIGN.md §14).
//
// Every slot is an identically-fabricated accelerator: its own LaneBank
// (same fabrication seed — bit-identical encodes at fault rate 0), its
// own GuardedBackend with a weight-stationary operand cache, and
// optionally its own FaultInjector storm advanced per tile step.  The
// pool layers two serving-side policies on top of the guard:
//
//  * Guard-aware health scores.  health_score() folds each backend's
//    HealthMonitor attribution — lane implications from escalation
//    self-tests, fences taken, unrecovered products, detections — with
//    its surviving channel capacity into one placement signal.  The
//    scheduler steers work toward clean backends proportionally, so a
//    chronically-implicated array serves less traffic instead of
//    stalling the whole batch.
//
//  * A re-trim budget.  Targeted self-tests are the expensive rung
//    (probe charges scale with implicated lanes), so each backend gets
//    `retrim_budget` re-trims per `retrim_window` virtual cycles.  When
//    a slot exhausts its window budget the pool clamps its escalation
//    ladder to max_retrims = 0 — the ladder then jumps retry → fence —
//    and restores the full ladder when the window rolls over.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_schedule.hpp"
#include "faults/guarded_backend.hpp"
#include "faults/lane_bank.hpp"

namespace pdac::serve {

/// Shape of the guard-aware placement score (see health_score()).
struct HealthScoreConfig {
  double lane_mismatch_weight{0.30};  ///< per lane implication
  double fence_weight{1.0};           ///< per degraded re-run taken
  double unrecovered_weight{2.0};     ///< per best-effort (given-up) product
  double detection_weight{0.10};      ///< per product with a caught mismatch
};

struct BackendPoolConfig {
  std::size_t backends{2};
  /// Fabrication draw shared by every slot: identical seeds give
  /// identical lane physics, the basis of the pool's bit-identity.
  faults::LaneBankConfig bank{};
  faults::GuardedBackendConfig guarded{};
  HealthScoreConfig health{};
  /// Re-trims each backend may spend per budget window (0 = never
  /// re-trim: the ladder always skips straight from retry to fence).
  std::size_t retrim_budget{2};
  std::uint64_t retrim_window{4096};  ///< window length [virtual cycles]
};

class BackendPool {
 public:
  explicit BackendPool(const BackendPoolConfig& cfg);

  [[nodiscard]] std::size_t size() const { return slots_.size(); }
  [[nodiscard]] faults::GuardedBackend& backend(std::size_t i) { return *slots_.at(i).backend; }
  [[nodiscard]] const faults::GuardedBackend& backend(std::size_t i) const {
    return *slots_.at(i).backend;
  }
  [[nodiscard]] const faults::LaneBank& bank(std::size_t i) const { return *slots_.at(i).bank; }

  /// Attach a per-slot fault storm (the injector is owned by the pool
  /// and advanced `steps_per_tile` before every tile the slot runs).
  void attach_storm(std::size_t i, const faults::FaultSchedule& schedule,
                    std::uint64_t steps_per_tile);

  /// A slot with every channel fenced is offline and can take no work.
  [[nodiscard]] bool alive(std::size_t i) const { return bank(i).usable_channels() > 0; }

  /// Guard-aware placement score in [0, 1]: surviving-capacity fraction
  /// shrunk by the monitor's blame attribution.  0 means offline.
  [[nodiscard]] double health_score(std::size_t i) const;

  /// Window bookkeeping before a product: rolls the re-trim window over
  /// when `now` has left it and clamps/restores the slot's escalation
  /// ladder according to the remaining budget.
  void begin_product(std::size_t i, std::uint64_t now);

  /// Debit the re-trims a product actually spent.
  void end_product(std::size_t i, std::size_t retrims_spent);

  /// Re-trims the slot may still spend in the current window.
  [[nodiscard]] std::size_t retrims_left(std::size_t i) const;
  /// True while the slot's ladder is clamped to max_retrims = 0.
  [[nodiscard]] bool throttled(std::size_t i) const { return slots_.at(i).clamped; }
  /// Products run with a clamped ladder (budget-exhaustion pressure).
  [[nodiscard]] std::size_t throttled_products() const { return throttled_products_; }

  [[nodiscard]] const BackendPoolConfig& config() const { return cfg_; }

 private:
  struct Slot {
    std::unique_ptr<faults::LaneBank> bank;
    std::unique_ptr<faults::GuardedBackend> backend;
    std::unique_ptr<faults::FaultInjector> injector;
    std::uint64_t window_start{0};
    std::size_t retrims_spent{0};
    bool clamped{false};
  };

  BackendPoolConfig cfg_;
  faults::EscalationConfig clamped_escalation_;  ///< full ladder, max_retrims = 0
  std::vector<Slot> slots_;
  std::size_t throttled_products_{0};
};

}  // namespace pdac::serve
