#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace pdac::serve {

bool normalize_unit_max(std::vector<double>& row) {
  double m = 0.0;
  for (const double v : row) m = std::max(m, std::abs(v));
  if (m == 0.0 || !std::isfinite(m)) return false;
  // x/m hits exactly ±1.0 at the peak element, so any batch of such
  // rows has max-abs scale exactly 1.0 and per-row quantization cannot
  // depend on batchmates.
  for (double& v : row) v /= m;
  return true;
}

double interarrival_gap(double mean, double u) {
  u = std::clamp(u, 0.0, std::nextafter(1.0, 0.0));
  return -mean * std::log(1.0 - u);
}

std::vector<Request> generate_workload(const WorkloadConfig& cfg) {
  PDAC_REQUIRE(cfg.requests > 0 && cfg.d_model > 0, "generate_workload: empty workload");
  PDAC_REQUIRE(cfg.models > 0, "generate_workload: need at least one weight set");
  PDAC_REQUIRE(cfg.prompt_min <= cfg.prompt_max && cfg.decode_min <= cfg.decode_max,
               "generate_workload: degenerate length ranges");
  PDAC_REQUIRE(cfg.mean_interarrival > 0.0, "generate_workload: arrival rate must be positive");

  Rng rng(cfg.seed);
  std::vector<Request> reqs;
  reqs.reserve(cfg.requests);
  double clock = 0.0;
  for (std::size_t i = 0; i < cfg.requests; ++i) {
    // Exponential inter-arrival gaps = Poisson arrivals.
    clock += interarrival_gap(cfg.mean_interarrival, rng.uniform(0.0, 1.0));
    PDAC_REQUIRE(std::isfinite(clock) &&
                     clock < static_cast<double>(std::numeric_limits<std::uint64_t>::max()),
                 "generate_workload: arrival clock overflowed the cycle counter");
    Request r;
    r.id = i;
    r.arrival = static_cast<std::uint64_t>(clock);
    r.model = static_cast<std::size_t>(rng.integer(0, static_cast<std::int64_t>(cfg.models) - 1));
    r.prompt_len = static_cast<std::size_t>(
        rng.integer(static_cast<std::int64_t>(cfg.prompt_min),
                    static_cast<std::int64_t>(cfg.prompt_max)));
    r.decode_tokens = static_cast<std::size_t>(
        rng.integer(static_cast<std::int64_t>(cfg.decode_min),
                    static_cast<std::int64_t>(cfg.decode_max)));
    if (cfg.deadline_slack > 0.0) {
      const double span = cfg.deadline_slack * static_cast<double>(r.decode_tokens) *
                          static_cast<double>(cfg.nominal_token_cycles);
      // Round up, never down: truncation used to turn a sub-cycle span
      // at t=0 into deadline 0 — the old no-deadline sentinel — making
      // the tightest requests silently deadline-free.  A granted
      // deadline is always at least one cycle past arrival.
      r.deadline =
          r.arrival + std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(span)));
    }
    do {
      r.activation = rng.gaussian_vector(cfg.d_model, 0.0, 1.0);
    } while (!normalize_unit_max(r.activation));
    reqs.push_back(std::move(r));
  }
  return reqs;
}

}  // namespace pdac::serve
