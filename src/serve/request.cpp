#include "serve/request.hpp"

#include <cstring>

namespace pdac::serve {

std::uint64_t fnv1a(std::span<const double> values, std::uint64_t h) {
  for (const double v : values) {
    unsigned char bytes[sizeof(double)];
    std::memcpy(bytes, &v, sizeof(double));
    for (const unsigned char b : bytes) {
      h ^= b;
      h *= 1099511628211ull;
    }
  }
  return h;
}

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPending: return "pending";
    case Verdict::kCompleted: return "completed";
    case Verdict::kShed: return "shed";
    case Verdict::kFailed: return "failed";
  }
  return "?";
}

std::string to_string(ShedReason reason) {
  switch (reason) {
    case ShedReason::kNone: return "none";
    case ShedReason::kQueueFull: return "queue-full";
    case ShedReason::kAdmissionDeadline: return "admission-deadline";
    case ShedReason::kDeadlineMissed: return "deadline-missed";
  }
  return "?";
}

}  // namespace pdac::serve
