// workload.hpp — synthetic serving traffic for the continuous-batching
// engine: Poisson arrivals, mixed prompt/decode lengths, optional
// per-request deadlines, unit max-abs activation rows.
//
// Everything is drawn from one seeded Rng, so a workload is a pure
// function of its config — the engine/reference bit-identity gate and
// the fault-rate sweeps all replay the identical request stream.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"

namespace pdac::serve {

struct WorkloadConfig {
  std::size_t requests{32};
  /// Mean inter-arrival gap [cycles]; arrivals are a Poisson process
  /// (exponential gaps), rounded to whole cycles.
  double mean_interarrival{64.0};
  std::size_t d_model{48};
  std::size_t models{1};      ///< weight sets requests are spread over
  std::size_t prompt_min{4};
  std::size_t prompt_max{32};
  std::size_t decode_min{4};
  std::size_t decode_max{12};
  /// Deadline = arrival + slack · decode_tokens · nominal_token_cycles;
  /// 0 disables deadlines entirely.
  double deadline_slack{0.0};
  std::uint64_t nominal_token_cycles{64};
  std::uint64_t seed{1};
};

/// Generate the request stream, sorted by arrival time, ids 0..n-1.
/// Every activation row is Gaussian, renormalized so its largest-
/// magnitude element is exactly ±1.0 — the per-request scale contract
/// that keeps batched execution bit-identical to solo execution.
[[nodiscard]] std::vector<Request> generate_workload(const WorkloadConfig& cfg);

/// Renormalize `row` to unit max-abs in place (exact ±1.0 at the peak).
/// Returns false when the row is all zero (left untouched).
bool normalize_unit_max(std::vector<double>& row);

/// One exponential inter-arrival gap [cycles] from a uniform draw:
/// −mean·log(1−u), with u clamped strictly below 1.0 first.
/// std::uniform_real_distribution is allowed to return its upper bound
/// (and libstdc++ occasionally does), which would make the gap
/// log(0) = +inf and the later uint64 cast of the arrival clock UB —
/// the clamp caps that one pathological draw at a large finite gap and
/// leaves every other draw's value bit-identical to the raw formula.
[[nodiscard]] double interarrival_gap(double mean, double u);

}  // namespace pdac::serve
