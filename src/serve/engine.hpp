// engine.hpp — continuous-batching serving over a guarded backend pool
// (DESIGN.md §14): keep tokens flowing while escalation fires mid-batch.
//
// The engine runs a deterministic discrete-event simulation in virtual
// cycles.  Requests arrive on a Poisson clock, pass deadline-aware
// admission into a bounded queue, and are decoded one token per product:
// each free backend takes an EDF-ordered batch for one weight set
// (cache-affinity-preferring), runs one guarded GEMM, and every row of
// the result is one token for one request.  Backend time advances by the
// product's *actual* event cost — data-path cycles plus every probe the
// escalation ladder burned — so a backend fighting through retry /
// re-trim / fence rungs visibly stalls its own lane while the rest of
// the pool keeps emitting tokens.
//
// Scheduling policies (all deterministic):
//  * Admission: bounded occupancy (`max_queue` admitted-unfinished
//    requests); a deadline provably unmeetable at arrival — by the
//    measured per-token service estimate — is shed immediately.
//  * Placement: per-backend batch caps scale with BackendPool's
//    guard-aware health score, so chronically-implicated backends get
//    proportionally less work; offline backends get none.
//  * Verdicts: every request terminates as completed | shed | failed —
//    never a silent drop.  Shed carries an explicit reason; failed means
//    the hardware gave up (ladder exhausted / pool offline) on one of
//    the request's tokens.
//
// Bit-identity contract: activation rows are unit max-abs (workload.hpp)
// and renormalized per token, so the quantizer scale is 1.0 regardless
// of batch composition, and the engine's per-request token digests are
// bit-identical to run_reference()'s solo replay at fault rate 0 —
// continuous batching is numerically invisible.
//
// KV attention (DESIGN.md §17): requests with `kv_attention` run two
// extra per-token products against their growing history of normalized
// output rows — scores = y·Kᵀ (axis kCols) and context =
// softmax(scores)·K (axis kRows) — through the serving backend's
// matmul_kv.  A request's KV handles are derived from its id, so the
// SAME growing operand identity is presented to whichever backend the
// scheduler lands the token on: a backend holding a current resident
// entry appends one row; one that re-trimmed, got quarantined, or never
// saw the request rebuilds from the full history — bit-identically.
// The context rows chain into the request digest, and KV products bill
// into the same product timing window as the projection, so the
// incremental win (and the rebuild cost under escalation) is visible in
// service time.
#pragma once

#include <cstdint>
#include <vector>

#include "faults/health_monitor.hpp"
#include "nn/linear.hpp"
#include "ptc/event_counter.hpp"
#include "serve/backend_pool.hpp"
#include "serve/request.hpp"

namespace pdac::serve {

struct ServingConfig {
  std::size_t max_batch{4};   ///< rows per product on a fully-healthy backend
  std::size_t max_queue{32};  ///< bound on admitted, unfinished requests
  /// Virtual-time charge per prompt token, applied to a request's first
  /// product (prefill is a time/occupancy charge only — decode GEMMs
  /// are the numerics under test and the only events priced).
  std::uint64_t prefill_cycles_per_token{2};
  /// Virtual-time charge per calibration/self-test probe the ladder
  /// burns — recovery costs wall-clock, not just energy.
  std::uint64_t probe_cycles{1};
  /// Model-selection bonus per queued request when the weight set is
  /// already resident in the backend's operand cache.
  double affinity_bonus{0.5};
  /// Backends scoring below `health_floor` × (best score) take no work.
  double health_floor{0.05};
};

/// Per-slot accounting for the run.
struct BackendServeStats {
  std::size_t products{0};
  std::size_t tokens{0};
  std::uint64_t busy_cycles{0};
  bool alive{true};
  bool quarantined{false};           ///< still in probation at run end
  double final_health{0.0};
  ptc::EventCounter events;          ///< data-path events (incl. recovery re-runs)
  faults::HealthSnapshot health;     ///< final monitor snapshot
  faults::DriftSnapshot drift;       ///< final drift-tracker snapshot
  nn::KvPreparedCacheStats kv;       ///< KV prepared-operand residency/appends
};

struct ServingReport {
  std::vector<RequestRecord> records;  ///< indexed by request id
  std::size_t completed{0};
  std::size_t shed{0};
  std::size_t failed{0};
  std::size_t tokens_emitted{0};   ///< all tokens produced
  std::size_t goodput_tokens{0};   ///< tokens of *completed* requests
  std::uint64_t makespan{0};       ///< last terminal verdict [cycles]
  std::size_t products{0};
  std::size_t throttled_products{0};  ///< run with a clamped (no-re-trim) ladder
  /// Quarantine/readmission activity (BackendPool::tick, DESIGN.md §16).
  std::size_t quarantines{0};
  std::size_t readmissions{0};
  std::size_t canary_probes{0};
  /// Inter-token gaps (first gap is measured from arrival) [cycles].
  std::vector<std::uint64_t> token_gaps;
  /// Arrival → completion latency of completed requests [cycles].
  std::vector<std::uint64_t> request_latencies;
  std::vector<BackendServeStats> backends;

  /// The terminal-verdict audit: no request may be left pending.
  [[nodiscard]] bool reconciled(std::size_t submitted) const {
    return completed + shed + failed == submitted;
  }
};

/// p in [0, 100] percentile of `values` (nearest-rank); 0 when empty.
[[nodiscard]] double percentile(std::vector<std::uint64_t> values, double p);

class ServingEngine {
 public:
  /// `models` are the weight sets requests address by index; held by
  /// reference, must outlive the engine.  Every weight matrix must be
  /// square and match the workload's d_model.
  ServingEngine(BackendPool& pool, const std::vector<nn::Linear>& models,
                ServingConfig cfg = {});

  /// Serve `requests` (sorted by arrival) to termination.  Every
  /// request gets a terminal verdict; the report reconciles exactly.
  [[nodiscard]] ServingReport run(const std::vector<Request>& requests);

 private:
  BackendPool& pool_;
  const std::vector<nn::Linear>& models_;
  ServingConfig cfg_;
};

/// Solo replay for the bit-identity gate: every request decoded alone,
/// in id order, on `backend` — no batching, no scheduling.  Returns
/// per-request records with token digests (timing fields untouched).
[[nodiscard]] std::vector<RequestRecord> run_reference(const std::vector<Request>& requests,
                                                       const std::vector<nn::Linear>& models,
                                                       faults::GuardedBackend& backend);

}  // namespace pdac::serve
