#include "serve/backend_pool.hpp"

#include "common/require.hpp"

namespace pdac::serve {

BackendPool::BackendPool(const BackendPoolConfig& cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.backends > 0, "BackendPool: need at least one backend");
  clamped_escalation_ = cfg_.guarded.escalation;
  clamped_escalation_.max_retrims = 0;
  slots_.reserve(cfg_.backends);
  for (std::size_t i = 0; i < cfg_.backends; ++i) {
    Slot slot;
    slot.bank = std::make_unique<faults::LaneBank>(cfg_.bank);
    // Production trim before the guard snapshots golden state, exactly
    // like a part leaving the fab (lane_bank.hpp); identical seeds and
    // identical trims keep the slots bit-identical.
    faults::production_trim(*slot.bank);
    slot.backend = std::make_unique<faults::GuardedBackend>(*slot.bank, cfg_.guarded);
    if (cfg_.retrim_budget == 0) {
      slot.backend->set_escalation(clamped_escalation_);
      slot.clamped = true;
    }
    slots_.push_back(std::move(slot));
  }
}

void BackendPool::attach_storm(std::size_t i, const faults::FaultSchedule& schedule,
                               std::uint64_t steps_per_tile) {
  Slot& slot = slots_.at(i);
  slot.injector = std::make_unique<faults::FaultInjector>(*slot.bank, schedule);
  slot.backend->attach_storm(slot.injector.get(), steps_per_tile);
}

double BackendPool::health_score(std::size_t i) const {
  const Slot& slot = slots_.at(i);
  const std::size_t usable = slot.bank->usable_channels();
  if (usable == 0) return 0.0;
  const double capacity =
      static_cast<double>(usable) / static_cast<double>(slot.bank->wavelengths());
  const faults::HealthSnapshot snap = slot.backend->monitor().snapshot();
  const HealthScoreConfig& h = cfg_.health;
  const double penalty =
      h.lane_mismatch_weight * static_cast<double>(snap.total_lane_mismatches()) +
      h.fence_weight * static_cast<double>(snap.fences) +
      h.unrecovered_weight * static_cast<double>(snap.unrecovered) +
      h.detection_weight * static_cast<double>(snap.detections);
  return capacity / (1.0 + penalty);
}

void BackendPool::begin_product(std::size_t i, std::uint64_t now) {
  Slot& slot = slots_.at(i);
  if (cfg_.retrim_budget > 0 && now >= slot.window_start &&
      now - slot.window_start >= cfg_.retrim_window) {
    // Window rollover refills the budget.  Windows are anchored to use,
    // not to a global tick: an idle backend simply starts a fresh
    // window at its next product.
    slot.window_start = now;
    slot.retrims_spent = 0;
  }
  const bool clamp = slot.retrims_spent >= cfg_.retrim_budget;
  if (clamp != slot.clamped) {
    slot.backend->set_escalation(clamp ? clamped_escalation_ : cfg_.guarded.escalation);
    slot.clamped = clamp;
  }
  if (slot.clamped) ++throttled_products_;
}

void BackendPool::end_product(std::size_t i, std::size_t retrims_spent) {
  slots_.at(i).retrims_spent += retrims_spent;
}

std::size_t BackendPool::retrims_left(std::size_t i) const {
  const Slot& slot = slots_.at(i);
  return slot.retrims_spent >= cfg_.retrim_budget ? 0 : cfg_.retrim_budget - slot.retrims_spent;
}

}  // namespace pdac::serve
