#include "serve/backend_pool.hpp"

#include <algorithm>
#include <limits>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace pdac::serve {

BackendPool::BackendPool(const BackendPoolConfig& cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.backends > 0, "BackendPool: need at least one backend");
  clamped_escalation_ = cfg_.guarded.escalation;
  clamped_escalation_.max_retrims = 0;
  slots_.reserve(cfg_.backends);
  for (std::size_t i = 0; i < cfg_.backends; ++i) {
    Slot slot;
    slot.bank = std::make_unique<faults::LaneBank>(cfg_.bank);
    // Production trim before the guard snapshots golden state, exactly
    // like a part leaving the fab (lane_bank.hpp); identical seeds and
    // identical trims keep the slots bit-identical.
    faults::production_trim(*slot.bank);
    slot.backend = std::make_unique<faults::GuardedBackend>(*slot.bank, cfg_.guarded);
    if (cfg_.retrim_budget == 0) {
      slot.backend->set_escalation(clamped_escalation_);
      slot.clamped = true;
    }
    slots_.push_back(std::move(slot));
  }
  if (cfg_.quarantine.enabled) {
    PDAC_REQUIRE(cfg_.quarantine.canary_k > 0 && cfg_.quarantine.readmit_clean_probes > 0,
                 "BackendPool: canary shape and readmission count must be positive");
    PDAC_REQUIRE(cfg_.quarantine.probe_backoff > 0,
                 "BackendPool: probe backoff must be positive (virtual time must advance)");
    // Fixed operands for every canary probe: comparable verdicts, and a
    // probe is deliberately cheap (one tile row/column worth of product).
    Rng rng(cfg_.quarantine.canary_seed);
    canary_a_ = Matrix::random_gaussian(cfg_.guarded.array_rows, cfg_.quarantine.canary_k, rng);
    canary_b_ = Matrix::random_gaussian(cfg_.quarantine.canary_k, cfg_.guarded.array_cols, rng);
  }
}

void BackendPool::attach_storm(std::size_t i, const faults::FaultSchedule& schedule,
                               std::uint64_t steps_per_tile) {
  Slot& slot = slots_.at(i);
  slot.injector = std::make_unique<faults::FaultInjector>(*slot.bank, schedule);
  slot.backend->attach_storm(slot.injector.get(), steps_per_tile);
}

double BackendPool::health_score(std::size_t i) const {
  const Slot& slot = slots_.at(i);
  const std::size_t usable = slot.bank->usable_channels();
  if (usable == 0) return 0.0;
  const double capacity =
      static_cast<double>(usable) / static_cast<double>(slot.bank->wavelengths());
  const faults::HealthSnapshot snap = slot.backend->monitor().snapshot();
  const HealthScoreConfig& h = cfg_.health;
  const double penalty =
      h.lane_mismatch_weight * static_cast<double>(snap.total_lane_mismatches()) +
      h.fence_weight * static_cast<double>(snap.fences) +
      h.unrecovered_weight * static_cast<double>(snap.unrecovered) +
      h.detection_weight * static_cast<double>(snap.detections);
  return capacity / (1.0 + penalty);
}

void BackendPool::begin_product(std::size_t i, std::uint64_t now) {
  Slot& slot = slots_.at(i);
  if (cfg_.retrim_budget > 0 && now >= slot.window_start &&
      now - slot.window_start >= cfg_.retrim_window) {
    // Window rollover refills the budget.  Windows are anchored to first
    // use, then advance by whole window lengths: the budget resets
    // exactly at the boundary multiple, not at the first product after
    // it — a slot idling past several boundaries lands in the window
    // `now` actually falls in, with window_start a true multiple.
    slot.window_start +=
        ((now - slot.window_start) / cfg_.retrim_window) * cfg_.retrim_window;
    slot.retrims_spent = 0;
  }
  const bool clamp = slot.retrims_spent >= cfg_.retrim_budget;
  if (clamp != slot.clamped) {
    slot.backend->set_escalation(clamp ? clamped_escalation_ : cfg_.guarded.escalation);
    slot.clamped = clamp;
  }
  if (slot.clamped) ++throttled_products_;
}

void BackendPool::end_product(std::size_t i, std::size_t retrims_spent) {
  // A re-trim is debited against the window its product began in — a
  // product straddling a boundary charges once, never to both windows.
  slots_.at(i).retrims_spent += retrims_spent;
}

std::size_t BackendPool::retrims_left(std::size_t i) const {
  const Slot& slot = slots_.at(i);
  return slot.retrims_spent >= cfg_.retrim_budget ? 0 : cfg_.retrim_budget - slot.retrims_spent;
}

bool BackendPool::canary_probe(std::size_t i) {
  Slot& slot = slots_.at(i);
  faults::GuardedBackend& be = *slot.backend;
  // Probation recovery runs with the full ladder whatever the serving
  // budget clamp says: the probe is off the serving path, and the clamp
  // exists to protect serving latency, not to starve recovery.
  be.set_escalation(cfg_.guarded.escalation);
  const faults::HealthSnapshot before = be.monitor().snapshot();
  const Matrix c = be.matmul(canary_a_, canary_b_);
  (void)c;
  const faults::HealthSnapshot after = be.monitor().snapshot();
  const bool mismatched = after.mismatched_tiles != before.mismatched_tiles ||
                          after.unrecovered != before.unrecovered;
  const bool drifted = after.drift_tiles != before.drift_tiles ||
                       be.drift().excursion_lanes() > 0;
  const bool clean = !mismatched && !drifted && alive(i);
  if (!clean && alive(i)) be.force_retrim();
  // Restore the clamp the slot was under for when it rejoins rotation.
  be.set_escalation(slot.clamped ? clamped_escalation_ : cfg_.guarded.escalation);
  return clean;
}

void BackendPool::tick(std::uint64_t now) {
  const QuarantineConfig& q = cfg_.quarantine;
  if (!q.enabled) return;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (!alive(i)) continue;  // fully fenced is dead, not quarantined
    if (!slot.probation) {
      const faults::HealthSnapshot snap = slot.backend->monitor().snapshot();
      const faults::DriftSnapshot drift = slot.backend->drift().snapshot();
      const bool trigger =
          drift.excursions >= q.excursion_lanes ||
          snap.unrecovered - slot.seen_unrecovered >= q.unrecovered_products ||
          snap.fences - slot.seen_fences >= q.fence_events ||
          (q.retrim_storm > 0 && snap.retrims - slot.seen_retrims >= q.retrim_storm);
      if (trigger) {
        slot.probation = true;
        slot.backoff = q.probe_backoff;
        slot.next_probe_at = now + slot.backoff;
        slot.clean_probes = 0;
        ++quarantines_;
        quarantine_log_.push_back({QuarantineEventKind::kQuarantined, i, now, false});
      }
      continue;
    }
    if (now < slot.next_probe_at) continue;
    const bool clean = canary_probe(i);
    ++canary_probes_;
    quarantine_log_.push_back({QuarantineEventKind::kProbe, i, now, clean});
    if (clean) {
      if (++slot.clean_probes >= q.readmit_clean_probes) {
        slot.probation = false;
        ++readmissions_;
        quarantine_log_.push_back({QuarantineEventKind::kReadmitted, i, now, true});
        // New clean point: the triggers arm on damage after this.
        const faults::HealthSnapshot snap = slot.backend->monitor().snapshot();
        slot.seen_fences = snap.fences;
        slot.seen_unrecovered = snap.unrecovered;
        slot.seen_retrims = snap.retrims;
      } else {
        // Confirmations run at the base cadence — readmission should be
        // prompt once the slot looks healthy again.
        slot.next_probe_at = now + q.probe_backoff;
      }
    } else {
      slot.clean_probes = 0;
      slot.backoff = std::min(slot.backoff * 2, q.probe_backoff_max);
      slot.next_probe_at = now + slot.backoff;
    }
  }
}

std::uint64_t BackendPool::next_probe_at() const {
  std::uint64_t next = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (slot.probation && alive(i)) next = std::min(next, slot.next_probe_at);
  }
  return next;
}

}  // namespace pdac::serve
