#include "photonics/waveguide.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

namespace {
constexpr double kSpeedOfLightCmPerS = 2.99792458e10;
}

Waveguide::Waveguide(WaveguideConfig cfg, double length_cm)
    : cfg_(cfg), length_cm_(length_cm) {
  PDAC_REQUIRE(cfg_.loss_db_per_cm >= 0.0, "Waveguide: loss must be non-negative");
  PDAC_REQUIRE(cfg_.group_index >= 1.0, "Waveguide: group index must be >= 1");
  PDAC_REQUIRE(length_cm >= 0.0, "Waveguide: length must be non-negative");
}

double Waveguide::loss_db() const { return cfg_.loss_db_per_cm * length_cm_; }

double Waveguide::amplitude_transmission() const {
  return std::pow(10.0, -loss_db() / 20.0);
}

double Waveguide::power_transmission() const { return std::pow(10.0, -loss_db() / 10.0); }

units::Time Waveguide::propagation_delay() const {
  return units::seconds(length_cm_ * cfg_.group_index / kSpeedOfLightCmPerS);
}

WdmField Waveguide::propagate(const WdmField& in) const {
  const double t = amplitude_transmission();
  WdmField out(in.channels());
  for (std::size_t ch = 0; ch < in.channels(); ++ch) {
    out.set_amplitude(ch, t * in.amplitude(ch));
  }
  return out;
}

LinkBudgetReport evaluate_link_budget(const LinkBudgetConfig& cfg) {
  PDAC_REQUIRE(cfg.broadcast_ways >= 1, "LinkBudget: at least one broadcast way");
  // Ideal 1:N split costs 10·log10(N) dB; each 1:2 stage adds its excess.
  const double stages = std::ceil(std::log2(static_cast<double>(cfg.broadcast_ways)));
  const double split_db = 10.0 * std::log10(static_cast<double>(cfg.broadcast_ways)) +
                          stages * cfg.splitter_excess_db;
  LinkBudgetReport rep;
  rep.total_loss_db = cfg.mux_loss_db + cfg.waveguide_cm * cfg.waveguide_loss_db_per_cm +
                      cfg.modulator_loss_db + split_db;
  rep.received_dbm = cfg.laser_power_dbm - rep.total_loss_db;
  rep.margin_db = rep.received_dbm - cfg.detector_sensitivity_dbm;
  return rep;
}

double required_laser_dbm(const LinkBudgetConfig& cfg, double margin_db) {
  const LinkBudgetReport at_zero = evaluate_link_budget(cfg);
  // Loss is independent of launch power, so solve directly.
  return cfg.detector_sensitivity_dbm + margin_db + at_zero.total_loss_db;
}

}  // namespace pdac::photonics
