// phase_shifter.hpp — optical phase shifter (paper Eq. 4: x' = e^{jφ} x).
//
// In the DDot unit a fixed −90° shifter is applied to the y-operand rail
// before the 50:50 coupler; being fully passive it draws no power, which
// is one of the reasons the DDot datapath itself is energy-free in the
// paper's accounting.
#pragma once

#include <complex>

#include "photonics/optical_field.hpp"

namespace pdac::photonics {

/// Fixed phase shifter applying x' = e^{jφ}·x to every channel.
class PhaseShifter {
 public:
  explicit PhaseShifter(double phase_rad) : factor_(std::polar(1.0, phase_rad)) {}

  [[nodiscard]] Complex apply(Complex x) const { return factor_ * x; }

  [[nodiscard]] WdmField apply(const WdmField& in) const {
    WdmField out(in.channels());
    for (std::size_t ch = 0; ch < in.channels(); ++ch) {
      out.set_amplitude(ch, factor_ * in.amplitude(ch));
    }
    return out;
  }

  /// The −90° shifter used on the y-rail of a DDot (e^{-jπ/2} = −j).
  static PhaseShifter minus_90() { return PhaseShifter(-1.5707963267948966); }

  [[nodiscard]] Complex factor() const { return factor_; }

 private:
  Complex factor_;
};

}  // namespace pdac::photonics
