// laser.hpp — multi-wavelength laser source (WDM comb).
//
// Supplies the optical carriers every modulator in the accelerator
// imprints data on.  The power model in src/arch charges laser wall-plug
// power separately; this device produces the *fields*: one carrier of
// amplitude E_in per enabled channel, with a configurable wall-plug
// efficiency used when a bench asks the device itself for power.
#pragma once

#include <cstddef>

#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

/// Configuration of a WDM comb laser.
struct LaserConfig {
  std::size_t channels{8};          ///< number of WDM wavelengths
  double carrier_amplitude{1.0};    ///< |E_in| per channel (normalized units)
  double wall_plug_efficiency{0.2}; ///< optical-out / electrical-in
  units::Power optical_power_per_channel{units::milliwatts(1.0).watts()};
};

/// Continuous-wave WDM comb source.
class Laser {
 public:
  explicit Laser(LaserConfig cfg);

  /// Emit carriers on all channels: amplitude = carrier_amplitude, phase 0.
  [[nodiscard]] WdmField emit() const;

  /// Emit with only the first `active` channels lit (sub-comb operation).
  [[nodiscard]] WdmField emit(std::size_t active) const;

  /// Electrical power drawn for the currently configured comb.
  [[nodiscard]] units::Power electrical_power() const;

  /// Fault hook: power droop (pump-diode aging, thermal runaway) — the
  /// emitted optical power drops to `power_scale` of nominal while the
  /// electrical draw stays where it was, i.e. wall-plug efficiency sags.
  /// Field amplitudes scale as sqrt(power_scale).
  void apply_droop(double power_scale);
  [[nodiscard]] double droop() const { return droop_power_scale_; }

  [[nodiscard]] const LaserConfig& config() const { return cfg_; }

 private:
  LaserConfig cfg_;
  double droop_power_scale_{1.0};
};

}  // namespace pdac::photonics
