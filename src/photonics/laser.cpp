#include "photonics/laser.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

Laser::Laser(LaserConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.channels >= 1, "Laser: at least one channel");
  PDAC_REQUIRE(cfg_.carrier_amplitude > 0.0, "Laser: carrier amplitude must be positive");
  PDAC_REQUIRE(cfg_.wall_plug_efficiency > 0.0 && cfg_.wall_plug_efficiency <= 1.0,
               "Laser: wall-plug efficiency in (0, 1]");
}

WdmField Laser::emit() const { return emit(cfg_.channels); }

WdmField Laser::emit(std::size_t active) const {
  PDAC_REQUIRE(active <= cfg_.channels, "Laser: more active channels than configured");
  const double amplitude = cfg_.carrier_amplitude * std::sqrt(droop_power_scale_);
  WdmField f(cfg_.channels);
  for (std::size_t ch = 0; ch < active; ++ch) {
    f.set_amplitude(ch, Complex{amplitude, 0.0});
  }
  return f;
}

void Laser::apply_droop(double power_scale) {
  PDAC_REQUIRE(power_scale > 0.0 && power_scale <= 1.0,
               "Laser: droop power scale must be in (0, 1]");
  droop_power_scale_ = power_scale;
}

units::Power Laser::electrical_power() const {
  const double optical_w =
      cfg_.optical_power_per_channel.watts() * static_cast<double>(cfg_.channels);
  return units::watts(optical_w / cfg_.wall_plug_efficiency);
}

}  // namespace pdac::photonics
