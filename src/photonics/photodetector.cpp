#include "photonics/photodetector.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

Photodetector::Photodetector(PhotodetectorConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.responsivity > 0.0, "Photodetector: responsivity must be positive");
  PDAC_REQUIRE(cfg_.dark_current >= 0.0, "Photodetector: dark current must be non-negative");
}

double Photodetector::detect(const WdmField& field) const {
  return detect_intensity(field.total_intensity());
}

void Photodetector::derate(double responsivity_scale) {
  PDAC_REQUIRE(responsivity_scale >= 0.0 && responsivity_scale <= 1.0,
               "Photodetector: responsivity derating must be in [0, 1]");
  responsivity_scale_ = responsivity_scale;
}

double Photodetector::detect_noisy(const WdmField& field, Rng& rng) const {
  double i = detect(field);
  if (cfg_.noise.enabled) {
    if (cfg_.noise.shot_noise_scale > 0.0) {
      i += rng.gaussian(0.0, cfg_.noise.shot_noise_scale * std::sqrt(std::max(i, 0.0)));
    }
    if (cfg_.noise.thermal_noise_std > 0.0) {
      i += rng.gaussian(0.0, cfg_.noise.thermal_noise_std);
    }
  }
  return i;
}

Tia::Tia(double feedback_ohms, double v_sat) : rf_(feedback_ohms), v_sat_(v_sat) {
  PDAC_REQUIRE(std::isfinite(feedback_ohms), "Tia: feedback must be finite");
  PDAC_REQUIRE(v_sat >= 0.0, "Tia: saturation voltage must be non-negative (0 = none)");
}

double Tia::amplify(double current) const {
  const double v = rf_ * current;
  if (v_sat_ <= 0.0) return v;
  return std::clamp(v, -v_sat_, v_sat_);
}

void Tia::impose_gain_step(double factor) {
  PDAC_REQUIRE(std::isfinite(factor) && factor > 0.0,
               "Tia: gain step factor must be finite and positive");
  rf_ *= factor;
}

}  // namespace pdac::photonics
