// waveguide.hpp — on-chip waveguide propagation and link-budget math.
//
// The P-DAC architecture moves optical digital words from the M2 SRAM's
// EO interface across the chip to every modulator site (paper Fig. 6),
// and the DPTC broadcasts modulated operands across DDot columns.  Both
// paths lose light to propagation and splitting; this module models the
// loss/delay of a waveguide segment and closes the end-to-end link
// budget from laser to photodetector — the constraint that actually
// sizes the laser in power_params.hpp (see the A8 bench discussion).
#pragma once

#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

struct WaveguideConfig {
  double loss_db_per_cm{0.3};  ///< silicon strip waveguide propagation loss
  double group_index{4.2};     ///< for propagation delay
};

class Waveguide {
 public:
  Waveguide(WaveguideConfig cfg, double length_cm);

  [[nodiscard]] double length_cm() const { return length_cm_; }
  [[nodiscard]] double loss_db() const;
  /// Field-amplitude transmission 10^(−loss_dB/20).
  [[nodiscard]] double amplitude_transmission() const;
  /// Optical-power transmission 10^(−loss_dB/10).
  [[nodiscard]] double power_transmission() const;
  [[nodiscard]] units::Time propagation_delay() const;

  /// Attenuate every channel of a field.
  [[nodiscard]] WdmField propagate(const WdmField& in) const;

 private:
  WaveguideConfig cfg_;
  double length_cm_;
};

/// End-to-end optical link: laser → mux → waveguide → modulator →
/// 1:N broadcast splitter → waveguide → detector.
struct LinkBudgetConfig {
  double laser_power_dbm{10.0};          ///< per wavelength
  double mux_loss_db{0.5};               ///< MRR add/drop insertion loss
  double waveguide_cm{2.0};
  double waveguide_loss_db_per_cm{0.3};
  double modulator_loss_db{4.0};         ///< MZM insertion loss
  std::size_t broadcast_ways{8};         ///< DDot-column fan-out
  double splitter_excess_db{0.2};        ///< per 1:2 stage, on top of 3 dB
  double detector_sensitivity_dbm{-20.0};
};

struct LinkBudgetReport {
  double total_loss_db{};
  double received_dbm{};
  double margin_db{};  ///< received − sensitivity
  [[nodiscard]] bool closes() const { return margin_db >= 0.0; }
};

LinkBudgetReport evaluate_link_budget(const LinkBudgetConfig& cfg);

/// Smallest per-wavelength laser power (dBm) that closes the link with
/// the requested margin.
double required_laser_dbm(const LinkBudgetConfig& cfg, double margin_db = 3.0);

}  // namespace pdac::photonics
