// photodetector.hpp — photodiode + optional noise (paper §II-A2).
//
// A PD converts incident optical intensity into photocurrent:
//   I_pd = R · Σ_ch ½|E_ch|²
// integrating over all wavelengths present on its waveguide — the
// property the DDot exploits to sum (x_i ± y_i)² across WDM channels in
// a single detection.  Shot and thermal (Johnson) noise can be enabled
// to study the accelerator's analog noise floor.
#pragma once

#include <optional>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

struct NoiseConfig {
  bool enabled{false};
  double shot_noise_scale{0.0};    ///< std of shot noise ∝ sqrt(I); 0 disables
  double thermal_noise_std{0.0};   ///< additive Gaussian current noise std
};

struct PhotodetectorConfig {
  double responsivity{1.0};  ///< A/W in normalized units
  double dark_current{0.0};  ///< constant offset current
  NoiseConfig noise{};
};

class Photodetector {
 public:
  Photodetector() : Photodetector(PhotodetectorConfig{}) {}
  explicit Photodetector(PhotodetectorConfig cfg);

  /// Deterministic detection: R·total_intensity + dark current.
  [[nodiscard]] double detect(const WdmField& field) const;

  /// Closed-form transfer accessors for fused execution (ptc/kernel.hpp):
  /// detection is gain·I + dark with gain = responsivity_scale·responsivity.
  /// detect_intensity(field.total_intensity()) == detect(field) bit-for-bit.
  [[nodiscard]] double effective_responsivity() const {
    return responsivity_scale_ * cfg_.responsivity;
  }
  [[nodiscard]] double detect_intensity(double total_intensity) const {
    return effective_responsivity() * total_intensity + cfg_.dark_current;
  }

  /// Detection with the configured noise processes, drawn from `rng`.
  [[nodiscard]] double detect_noisy(const WdmField& field, Rng& rng) const;

  /// Fault hook: derate the effective responsivity (radiation damage,
  /// delamination).  scale = 1 is healthy, 0 is a dead detector that
  /// reports only its dark current.
  void derate(double responsivity_scale);
  [[nodiscard]] double responsivity_scale() const { return responsivity_scale_; }
  [[nodiscard]] bool dead() const { return responsivity_scale_ == 0.0; }

  [[nodiscard]] const PhotodetectorConfig& config() const { return cfg_; }

 private:
  PhotodetectorConfig cfg_;
  double responsivity_scale_{1.0};
};

/// Transimpedance amplifier: V_out = R_f · I_in (paper Eq. 1), with an
/// optional output saturation modeling the supply rails.
class Tia {
 public:
  explicit Tia(double feedback_ohms, double v_sat = 0.0);

  [[nodiscard]] double amplify(double current) const;
  [[nodiscard]] double feedback() const { return rf_; }

  /// Fault hook: a step change of the feedback gain (resistor drift or a
  /// latched trim bit).  Multiplicative so repeated steps compose.
  void impose_gain_step(double factor);

 private:
  double rf_;
  double v_sat_;  ///< 0 means unbounded
};

}  // namespace pdac::photonics
