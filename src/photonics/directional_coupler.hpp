// directional_coupler.hpp — 2×2 evanescent coupler (paper Eq. 5).
//
// Transfer matrix for transmission coefficient t:
//     [ t              j·sqrt(1-t²) ]
//     [ j·sqrt(1-t²)   t            ]
// which is unitary for 0 ≤ t ≤ 1 (energy conserving — verified by a
// property test).  The DDot uses the 50:50 case t = 1/√2.
#pragma once

#include <array>
#include <cmath>
#include <complex>

#include "common/require.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

class DirectionalCoupler {
 public:
  explicit DirectionalCoupler(double transmission) : t_(transmission) {
    PDAC_REQUIRE(transmission >= 0.0 && transmission <= 1.0,
                 "DirectionalCoupler: transmission coefficient in [0, 1]");
    kappa_ = std::sqrt(1.0 - t_ * t_);
  }

  /// The 50:50 splitter used by DDot (t = 1/√2).
  static DirectionalCoupler fifty_fifty() { return DirectionalCoupler(0.70710678118654752); }

  /// Couple a single-wavelength pair (upper, lower) -> (upper', lower').
  [[nodiscard]] std::array<Complex, 2> couple(Complex upper, Complex lower) const {
    const Complex j{0.0, 1.0};
    return {t_ * upper + j * kappa_ * lower, j * kappa_ * upper + t_ * lower};
  }

  /// Couple all WDM channels of a dual-rail signal.
  [[nodiscard]] DualRail couple(const DualRail& in) const {
    PDAC_REQUIRE(in.upper.channels() == in.lower.channels(),
                 "DirectionalCoupler: rails must carry the same channels");
    DualRail out{WdmField(in.upper.channels()), WdmField(in.lower.channels())};
    for (std::size_t ch = 0; ch < in.upper.channels(); ++ch) {
      const auto [u, l] = couple(in.upper.amplitude(ch), in.lower.amplitude(ch));
      out.upper.set_amplitude(ch, u);
      out.lower.set_amplitude(ch, l);
    }
    return out;
  }

  [[nodiscard]] double transmission() const { return t_; }
  [[nodiscard]] double coupling() const { return kappa_; }

 private:
  double t_;
  double kappa_;
};

}  // namespace pdac::photonics
