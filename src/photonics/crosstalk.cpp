#include "photonics/crosstalk.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

double CrosstalkReport::crosstalk_limited_bits() const {
  if (worst_aggregate_ratio <= 0.0) return 24.0;  // effectively unlimited here
  return std::log2(1.0 / worst_aggregate_ratio);
}

CrosstalkReport analyze_crosstalk(const WdmBusConfig& cfg) {
  const WdmBus bus(cfg);
  const std::size_t n = cfg.channels;
  CrosstalkReport rep;
  rep.matrix = Matrix(n, n);

  for (std::size_t j = 0; j < n; ++j) {
    // Light channel j alone and demultiplex; the receiver bank splits the
    // power among all drop ports (receivers ahead on the bus shadow the
    // ones behind, exactly as in hardware).
    WdmField source(n);
    source.set_amplitude(j, Complex{1.0, 0.0});
    const double input_power = source.total_intensity();
    const auto dropped = bus.demux(source);
    for (std::size_t i = 0; i < n; ++i) {
      rep.matrix(i, j) = dropped[i].total_intensity() / input_power;
    }
  }

  rep.worst_pair_ratio = 0.0;
  rep.worst_aggregate_ratio = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double diag = rep.matrix(i, i);
    double aggregate = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double ratio = diag > 0.0 ? rep.matrix(i, j) / diag : 0.0;
      rep.worst_pair_ratio = std::max(rep.worst_pair_ratio, ratio);
      aggregate += ratio;
    }
    rep.worst_aggregate_ratio = std::max(rep.worst_aggregate_ratio, aggregate);
  }
  rep.worst_isolation_db =
      rep.worst_pair_ratio > 0.0 ? -10.0 * std::log10(rep.worst_pair_ratio) : 200.0;
  return rep;
}

std::size_t max_channels_for_isolation(double min_isolation_db, double ring_hwhm_channels,
                                       std::size_t limit) {
  PDAC_REQUIRE(min_isolation_db > 0.0, "max_channels_for_isolation: need positive target");
  PDAC_REQUIRE(limit >= 2, "max_channels_for_isolation: limit >= 2");
  // Aggregate interference is the quantity that grows with channel
  // count (nearest-neighbour isolation is set by the linewidth alone).
  std::size_t best = 0;
  for (std::size_t n = 2; n <= limit; ++n) {
    WdmBusConfig cfg;
    cfg.channels = n;
    cfg.ring_hwhm_channels = ring_hwhm_channels;
    const auto rep = analyze_crosstalk(cfg);
    const double aggregate_isolation_db =
        rep.worst_aggregate_ratio > 0.0 ? -10.0 * std::log10(rep.worst_aggregate_ratio)
                                        : 200.0;
    if (aggregate_isolation_db >= min_isolation_db) {
      best = n;
    } else {
      break;  // aggregate interference only grows as channels are added
    }
  }
  return best;
}

}  // namespace pdac::photonics
