#include "photonics/wdm_bus.hpp"

#include "common/require.hpp"

namespace pdac::photonics {

WdmBus::WdmBus(WdmBusConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.channels >= 1, "WdmBus: at least one channel");
  tx_rings_.reserve(cfg_.channels);
  rx_rings_.reserve(cfg_.channels);
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    MicroringConfig rc;
    rc.resonance_channel = static_cast<double>(ch);
    rc.hwhm_channels = cfg_.ring_hwhm_channels;
    tx_rings_.emplace_back(rc);
    rx_rings_.emplace_back(rc);
  }
}

WdmField WdmBus::mux(const std::vector<WdmField>& sources) const {
  PDAC_REQUIRE(sources.size() <= cfg_.channels, "WdmBus: more sources than channels");
  WdmField bus(cfg_.channels);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    PDAC_REQUIRE(sources[i].channels() == cfg_.channels,
                 "WdmBus: source field channel count mismatch");
    bus = tx_rings_[i].add_to_bus(bus, sources[i]);
  }
  return bus;
}

std::vector<WdmField> WdmBus::demux(const WdmField& bus, WdmField* residual) const {
  PDAC_REQUIRE(bus.channels() == cfg_.channels, "WdmBus: bus channel count mismatch");
  std::vector<WdmField> dropped;
  dropped.reserve(cfg_.channels);
  WdmField remaining = bus;
  for (std::size_t ch = 0; ch < cfg_.channels; ++ch) {
    MrrPorts ports = rx_rings_[ch].route(remaining);
    dropped.push_back(std::move(ports.drop));
    remaining = std::move(ports.through);
  }
  if (residual != nullptr) *residual = remaining;
  return dropped;
}

WdmField WdmBus::encode_amplitudes(const std::vector<double>& values) const {
  PDAC_REQUIRE(values.size() <= cfg_.channels, "WdmBus: more values than channels");
  WdmField f(cfg_.channels);
  for (std::size_t ch = 0; ch < values.size(); ++ch) {
    f.set_amplitude(ch, Complex{values[ch], 0.0});
  }
  return f;
}

}  // namespace pdac::photonics
