// microring.hpp — microring resonator (MRR) used as WDM mux/demux and as
// the on–off modulator of the multi-bit EO interface (paper Fig. 1–2).
//
// The MRR resonates when its (thermally tuned) resonance matches a
// wavelength on the bus; matched light is captured to the drop port,
// off-resonance light continues on the through port.  We model the
// power transfer with a Lorentzian in channel-grid units:
//   D(Δ) = 1 / (1 + (Δ / HWHM)²)      (drop-port power fraction)
// and keep the device lossless: |through|² + |drop|² = |in|² per channel.
// This captures exactly the behaviour the accelerator depends on —
// wavelength selectivity and channel crosstalk — without a full
// coupled-mode treatment.
#pragma once

#include <cstddef>
#include <optional>

#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

struct MicroringConfig {
  double resonance_channel{0.0};  ///< resonance position on the channel grid
  double hwhm_channels{0.05};     ///< half-width at half-max, in channel spacings
  units::Power heater_power_per_channel_shift{units::milliwatts(0.5).watts()};
};

/// Result of routing a WDM bus through an MRR: the attenuated bus
/// (through port) plus the captured field (drop port).
struct MrrPorts {
  WdmField through;
  WdmField drop;
};

class Microring {
 public:
  explicit Microring(MicroringConfig cfg);

  /// Thermally tune the resonance to a (possibly fractional) channel.
  void tune_to(double channel);
  [[nodiscard]] double resonance() const { return cfg_.resonance_channel; }

  /// Fault hook: pin the drop fraction at a fixed value on every channel
  /// — a stuck modulator ring (failed heater or latched drive) no longer
  /// responds to tuning.  nullopt restores healthy behaviour.
  void stick_at(std::optional<double> drop_fraction);
  [[nodiscard]] bool stuck() const { return stuck_drop_.has_value(); }

  /// Drop-port power fraction for a wavelength at grid position `channel`.
  [[nodiscard]] double drop_fraction(double channel) const;

  /// Split an incoming bus into through/drop fields (lossless).
  [[nodiscard]] MrrPorts route(const WdmField& in) const;

  /// Add (multiplex) a field onto the bus: channels near resonance are
  /// injected from `add`, superposing with whatever the bus carries.
  [[nodiscard]] WdmField add_to_bus(const WdmField& bus, const WdmField& add) const;

  /// Heater power for the current detuning from `rest_channel` — the
  /// thermal-tuning component of the architecture power model.
  [[nodiscard]] units::Power tuning_power(double rest_channel) const;

  [[nodiscard]] const MicroringConfig& config() const { return cfg_; }

 private:
  MicroringConfig cfg_;
  std::optional<double> stuck_drop_{};
};

}  // namespace pdac::photonics
