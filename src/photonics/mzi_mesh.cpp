#include "photonics/mzi_mesh.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

MziMesh::MziMesh(std::size_t modes) : modes_(modes), mode_signs_(modes, 1.0) {
  PDAC_REQUIRE(modes >= 1, "MziMesh: at least one mode");
}

std::size_t MziMesh::program(const Matrix& q, double tol) {
  PDAC_REQUIRE(q.rows() == modes_ && q.cols() == modes_, "MziMesh: shape mismatch");
  // Verify orthogonality: QᵀQ = I within tolerance.
  for (std::size_t i = 0; i < modes_; ++i) {
    for (std::size_t j = 0; j < modes_; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < modes_; ++r) dot += q(r, i) * q(r, j);
      const double expect = i == j ? 1.0 : 0.0;
      PDAC_REQUIRE(std::abs(dot - expect) <= tol * 10.0 + 1e-9,
                   "MziMesh: matrix is not orthogonal");
    }
  }

  // Givens elimination: rotations G_1…G_N reduce Q to a ±1 diagonal D,
  // so Q = G_1ᵀ·…·G_Nᵀ·D and light must see D first, then the inverse
  // rotations in reverse elimination order.
  Matrix work = q;
  std::vector<MziRotation> elimination;
  for (std::size_t c = 0; c + 1 < modes_; ++c) {
    for (std::size_t r = c + 1; r < modes_; ++r) {
      if (std::abs(work(r, c)) < 1e-14) continue;
      const double theta = std::atan2(work(r, c), work(c, c));
      const double cs = std::cos(theta);
      const double sn = std::sin(theta);
      for (std::size_t col = 0; col < modes_; ++col) {
        const double a = work(c, col);
        const double b = work(r, col);
        work(c, col) = cs * a + sn * b;
        work(r, col) = -sn * a + cs * b;
      }
      elimination.push_back(MziRotation{c, r, theta});
    }
  }

  mode_signs_.assign(modes_, 1.0);
  for (std::size_t i = 0; i < modes_; ++i) {
    mode_signs_[i] = work(i, i) >= 0.0 ? 1.0 : -1.0;
  }

  rotations_.clear();
  rotations_.reserve(elimination.size());
  for (auto it = elimination.rbegin(); it != elimination.rend(); ++it) {
    rotations_.push_back(MziRotation{it->i, it->j, -it->theta});  // Gᵀ = G(−θ)
  }
  return rotations_.size();
}

std::vector<double> MziMesh::apply(std::span<const double> x) const {
  PDAC_REQUIRE(x.size() == modes_, "MziMesh: input width mismatch");
  std::vector<double> y(x.begin(), x.end());
  for (std::size_t i = 0; i < modes_; ++i) y[i] *= mode_signs_[i];
  for (const auto& rot : rotations_) {
    const double cs = std::cos(rot.theta);
    const double sn = std::sin(rot.theta);
    const double a = y[rot.i];
    const double b = y[rot.j];
    y[rot.i] = cs * a + sn * b;
    y[rot.j] = -sn * a + cs * b;
  }
  return y;
}

MziSvdCore::MziSvdCore(std::size_t modes)
    : modes_(modes), u_mesh_(modes), vt_mesh_(modes), sigma_(modes, 0.0) {
  PDAC_REQUIRE(modes >= 1, "MziSvdCore: at least one mode");
}

void MziSvdCore::program(const Matrix& w) {
  PDAC_REQUIRE(w.rows() == modes_ && w.cols() == modes_, "MziSvdCore: shape mismatch");
  const math::SvdResult dec = math::svd(w);
  scale_ = dec.singular.front() > 0.0 ? dec.singular.front() : 1.0;
  for (std::size_t i = 0; i < modes_; ++i) sigma_[i] = dec.singular[i] / scale_;
  (void)u_mesh_.program(dec.u);
  (void)vt_mesh_.program(dec.v.transposed());
}

std::vector<double> MziSvdCore::apply(std::span<const double> x) const {
  std::vector<double> y = vt_mesh_.apply(x);
  for (std::size_t i = 0; i < modes_; ++i) y[i] *= sigma_[i];
  y = u_mesh_.apply(y);
  for (auto& v : y) v *= scale_;
  return y;
}

units::Time MziSvdCore::mapping_latency(std::size_t modes) {
  // Calibrated to the paper's quote: "mapping a 12×12 matrix takes
  // approximately 1.5 ms" for SVD + phase decomposition, O(n³).
  const double n = static_cast<double>(modes);
  return units::seconds(1.5e-3 * (n / 12.0) * (n / 12.0) * (n / 12.0));
}

units::Time MziSvdCore::settling_latency() {
  return units::seconds(10e-6);  // thermal phase-shifter settling
}

}  // namespace pdac::photonics
