// crosstalk.hpp — inter-channel crosstalk analysis of the WDM bus.
//
// DDot parallelism scales with the number of WDM wavelengths per
// waveguide, but every receiver ring captures a Lorentzian tail of its
// neighbours' light; as channels pack closer (or rings get broader) the
// aggregate interference floors the analog precision.  This module
// builds the full crosstalk matrix of a WdmBus by direct simulation,
// summarizes isolation, and answers the design question: how many
// channels fit a target isolation at a given ring selectivity?
#pragma once

#include "common/matrix.hpp"
#include "photonics/wdm_bus.hpp"

namespace pdac::photonics {

struct CrosstalkReport {
  /// X(i, j) = optical power captured by receiver i from a unit-power
  /// transmission on channel j (diagonal = through efficiency).
  Matrix matrix;
  double worst_pair_ratio{};   ///< max off-diagonal / its diagonal
  double worst_isolation_db{}; ///< −10·log10(worst_pair_ratio)
  /// Worst aggregate interference into one receiver, as a fraction of
  /// its signal — the analog noise floor WDM crowding imposes.
  double worst_aggregate_ratio{};

  /// Crosstalk-limited effective bits: the aggregate interference acts
  /// as a signal-correlated error floor, ENOB ≈ log2(1/aggregate)/1.
  [[nodiscard]] double crosstalk_limited_bits() const;
};

/// Simulate the bus channel-by-channel and assemble the report.
CrosstalkReport analyze_crosstalk(const WdmBusConfig& cfg);

/// Largest channel count whose worst-pair isolation stays ≥
/// `min_isolation_db` for rings of the given linewidth (≤ `limit`).
std::size_t max_channels_for_isolation(double min_isolation_db, double ring_hwhm_channels,
                                       std::size_t limit = 64);

}  // namespace pdac::photonics
