#include "photonics/thermal_tuner.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

ThermalTuner::ThermalTuner(ThermalTunerConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.drift_per_kelvin >= 0.0, "ThermalTuner: drift must be non-negative");
  PDAC_REQUIRE(cfg_.loop_gain > 0.0, "ThermalTuner: loop gain must be positive");
  PDAC_REQUIRE(cfg_.max_iterations >= 1, "ThermalTuner: at least one iteration");
  PDAC_REQUIRE(cfg_.tolerance_channels > 0.0, "ThermalTuner: tolerance must be positive");
}

double ThermalTuner::drift(double delta_kelvin) const {
  return cfg_.drift_per_kelvin * delta_kelvin;
}

TuneResult ThermalTuner::stabilize(Microring& ring, double target_channel,
                                   double delta_kelvin) const {
  // Ambient drift displaces the resonance before the loop engages.
  ring.tune_to(target_channel + drift(delta_kelvin));

  TuneResult result;
  for (result.iterations = 0; result.iterations < cfg_.max_iterations;
       ++result.iterations) {
    const double detuning = ring.resonance() - target_channel;
    if (std::abs(detuning) <= cfg_.tolerance_channels) {
      result.converged = true;
      break;
    }
    // Proportional control: each step removes loop_gain of the error.
    // (Gain ≥ 2 overshoots into oscillation — pinned by a test.)
    ring.tune_to(ring.resonance() - cfg_.loop_gain * detuning);
  }
  result.residual_detuning = ring.resonance() - target_channel;
  // Heater must hold the cumulative correction (= the ambient drift).
  result.heater_power = ring.tuning_power(target_channel + drift(delta_kelvin));
  return result;
}

units::Power ThermalTuner::fleet_power(std::size_t rings, double worst_delta_kelvin,
                                       const MicroringConfig& ring_cfg) const {
  const double shift = std::abs(drift(worst_delta_kelvin));
  return units::watts(static_cast<double>(rings) *
                      ring_cfg.heater_power_per_channel_shift.watts() * shift);
}

}  // namespace pdac::photonics
