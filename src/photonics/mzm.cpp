#include "photonics/mzm.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::photonics {

Mzm::Mzm(MzmConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.v_pi > 0.0, "Mzm: Vπ must be positive");
  PDAC_REQUIRE(cfg_.imbalance_k > -1.0 && cfg_.imbalance_k < 1.0,
               "Mzm: imbalance k in (-1, 1)");
  PDAC_REQUIRE(cfg_.insertion_loss > 0.0 && cfg_.insertion_loss <= 1.0,
               "Mzm: insertion loss factor in (0, 1]");
}

Complex Mzm::modulate(Complex e_in, double v1, double v2) const {
  const double p1 = math::kPi * v1 / (2.0 * cfg_.v_pi);
  const double p2 = math::kPi * v2 / (2.0 * cfg_.v_pi);
  const Complex arm1 = (1.0 + cfg_.imbalance_k) * std::polar(1.0, p1);
  const Complex arm2 = (1.0 - cfg_.imbalance_k) * std::polar(1.0, p2);
  return cfg_.insertion_loss * 0.5 * e_in * (arm1 + arm2);
}

Complex Mzm::modulate_pushpull(Complex e_in, double v1_prime) const {
  const double v1 = arm_voltage(v1_prime);
  return modulate(e_in, v1, -v1);
}

double Mzm::normalized_phase(double volts) const {
  return math::kPi * volts / (2.0 * cfg_.v_pi);
}

double Mzm::arm_voltage(double v_prime) const {
  return 2.0 * cfg_.v_pi * v_prime / math::kPi;
}

void Mzm::modulate_channel(WdmField& field, std::size_t channel, double v1_prime) const {
  field.set_amplitude(channel, modulate_pushpull(field.amplitude(channel), v1_prime));
}

}  // namespace pdac::photonics
