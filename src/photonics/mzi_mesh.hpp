// mzi_mesh.hpp — Mach-Zehnder-interferometer mesh: the SVD-programmed
// photonic tensor core the paper positions Lightening-Transformer (and
// hence the P-DAC) against (§II-A3: "the MZI requires singular value
// decomposition and phase decomposition for operand mapping … mapping a
// 12×12 matrix takes approximately 1.5 ms").
//
// A triangular (Reck-style) arrangement of 2×2 interferometers realizes
// any orthogonal matrix as a product of Givens rotations; a full weight
// matrix W = U·Σ·Vᵀ takes two meshes around a diagonal attenuation
// column.  We model the real-valued case (phases 0/π carry signs —
// sufficient for real weight matrices and exactly the arithmetic the
// accelerator needs).  The crucial *system* property is captured
// faithfully: the mesh computes W·x at light speed once programmed, but
// programming requires an SVD + rotation decomposition on a CPU and
// thermal phase settling, which is 6+ orders of magnitude slower than a
// modulation cycle — the reason dynamic attention operands killed MZI
// meshes and motivated LT's DDot + the P-DAC.
#pragma once

#include <cstddef>
#include <vector>

#include "common/matrix.hpp"
#include "common/svd.hpp"
#include "common/units.hpp"

namespace pdac::photonics {

/// One programmed interferometer: a Givens rotation on modes (i, j).
struct MziRotation {
  std::size_t i{};
  std::size_t j{};
  double theta{};  ///< rotation angle (thermal phase pair in hardware)
};

/// Triangular mesh realizing an n×n orthogonal matrix.
class MziMesh {
 public:
  explicit MziMesh(std::size_t modes);

  /// Program the mesh to realize orthogonal `q` (within `tol`).  Returns
  /// the number of interferometers programmed.  Throws if `q` is not
  /// orthogonal to the tolerance.
  std::size_t program(const Matrix& q, double tol = 1e-9);

  /// Propagate an input mode vector through the mesh: returns Q·x.
  [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;

  [[nodiscard]] std::size_t modes() const { return modes_; }
  [[nodiscard]] const std::vector<MziRotation>& rotations() const { return rotations_; }
  /// Interferometer count of a full triangular mesh: n(n−1)/2.
  [[nodiscard]] static std::size_t interferometers(std::size_t modes) {
    return modes * (modes - 1) / 2;
  }

 private:
  std::size_t modes_;
  /// Stored in application order; apply() runs the input signs first,
  /// then these rotations.
  std::vector<MziRotation> rotations_;
  std::vector<double> mode_signs_;  ///< per-mode ±1 (0/π phase shifters)
};

/// A complete SVD photonic core: Vᵀ-mesh → Σ attenuators → U-mesh.
class MziSvdCore {
 public:
  explicit MziSvdCore(std::size_t modes);

  /// Map a weight matrix (n×n, any real) onto the optics.  Also records
  /// the modeled mapping latency (see mapping_latency).
  void program(const Matrix& w);

  /// Optical matvec: returns W·x for the programmed W.
  [[nodiscard]] std::vector<double> apply(std::span<const double> x) const;

  /// Σ attenuators can only *attenuate*: singular values are normalized
  /// by σ_max and the scale is restored electronically.
  [[nodiscard]] double optical_scale() const { return scale_; }

  /// Modeled time to compute the mapping (CPU SVD + phase decomposition)
  /// — calibrated to the paper's 1.5 ms for n = 12 with O(n³) scaling.
  [[nodiscard]] static units::Time mapping_latency(std::size_t modes);
  /// Thermal phase-settling time after reprogramming (µs-scale).
  [[nodiscard]] static units::Time settling_latency();

  [[nodiscard]] std::size_t modes() const { return modes_; }

 private:
  std::size_t modes_;
  MziMesh u_mesh_;
  MziMesh vt_mesh_;
  std::vector<double> sigma_;  ///< normalized singular values in [0, 1]
  double scale_{1.0};
};

}  // namespace pdac::photonics
