// thermal_tuner.hpp — closed-loop thermal stabilization of microrings.
//
// Every MRR in the EO/OE interfaces must sit exactly on its WDM channel;
// the paper notes resonance is "achieved through temperature
// adjustments".  Ambient temperature drifts the resonance
// (drift_per_kelvin, in channel-spacing units), and a feedback loop —
// monitor the drop-port power of a pilot tone, step the heater —
// re-centers it.  This module models that loop: convergence behaviour
// vs loop gain, residual detuning (which becomes channel crosstalk; see
// wdm_bus tests), and the heater power that the architecture model's
// thermal-tuning budget pays for.
#pragma once

#include "common/units.hpp"
#include "photonics/microring.hpp"

namespace pdac::photonics {

struct ThermalTunerConfig {
  double drift_per_kelvin{0.01};  ///< resonance shift per K, channel units
  double loop_gain{0.8};          ///< fraction of detuning corrected per step
  int max_iterations{100};
  double tolerance_channels{1e-4};  ///< residual detuning target
};

struct TuneResult {
  bool converged{};
  int iterations{};
  double residual_detuning{};   ///< channels, signed
  units::Power heater_power;    ///< steady-state heater drive
};

class ThermalTuner {
 public:
  explicit ThermalTuner(ThermalTunerConfig cfg);

  /// Resonance drift caused by an ambient excursion of `delta_kelvin`.
  [[nodiscard]] double drift(double delta_kelvin) const;

  /// Run the control loop: the ring sits at `target_channel` nominally,
  /// ambient drift has pushed it off; iterate heater corrections until
  /// the residual detuning is inside tolerance.  The ring is mutated to
  /// its stabilized state.
  TuneResult stabilize(Microring& ring, double target_channel, double delta_kelvin) const;

  /// Steady-state heater power for a worst-case ambient excursion across
  /// `rings` devices — the bottom-up check against the architecture
  /// model's thermal budget.
  [[nodiscard]] units::Power fleet_power(std::size_t rings, double worst_delta_kelvin,
                                         const MicroringConfig& ring_cfg) const;

  [[nodiscard]] const ThermalTunerConfig& config() const { return cfg_; }

 private:
  ThermalTunerConfig cfg_;
};

}  // namespace pdac::photonics
