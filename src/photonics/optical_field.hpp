// optical_field.hpp — representation of light in the simulator.
//
// The paper's devices operate on the *optical field*: a complex amplitude
// per wavelength channel.  Intensity (what a photodetector sees) is
// I ∝ ½|E|².  A WDM waveguide carries one complex amplitude per channel;
// devices are per-channel linear maps (PS, MZM) or 2-port couplers (DC).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "common/require.hpp"

namespace pdac::photonics {

using Complex = std::complex<double>;

/// Index of a WDM wavelength channel (λ_0 … λ_{n-1}).
struct Channel {
  std::size_t index{};
};

/// Field amplitude of a single wavelength on a single waveguide.
struct FieldSample {
  Complex amplitude{0.0, 0.0};

  /// Optical intensity I = ½|E|² (detector-facing quantity; the ½ matches
  /// the paper's I ∝ ½|E|² convention).
  [[nodiscard]] double intensity() const { return 0.5 * std::norm(amplitude); }
};

/// A multi-wavelength optical field on one waveguide: one complex
/// amplitude per WDM channel.  Value-semantic; devices return transformed
/// copies so signal graphs stay easy to reason about.
class WdmField {
 public:
  WdmField() = default;
  explicit WdmField(std::size_t channels) : amps_(channels, Complex{0.0, 0.0}) {}
  explicit WdmField(std::vector<Complex> amplitudes) : amps_(std::move(amplitudes)) {}

  [[nodiscard]] std::size_t channels() const { return amps_.size(); }

  [[nodiscard]] Complex amplitude(std::size_t ch) const {
    PDAC_REQUIRE(ch < amps_.size(), "WdmField: channel out of range");
    return amps_[ch];
  }
  void set_amplitude(std::size_t ch, Complex a) {
    PDAC_REQUIRE(ch < amps_.size(), "WdmField: channel out of range");
    amps_[ch] = a;
  }

  /// Per-channel intensity ½|E|².
  [[nodiscard]] double intensity(std::size_t ch) const {
    PDAC_REQUIRE(ch < amps_.size(), "WdmField: channel out of range");
    return 0.5 * std::norm(amps_[ch]);
  }

  /// Total intensity summed over channels — what a broadband
  /// photodetector integrates (paper: "the photodetector can detect light
  /// intensity resulting from the superposition of multiple optical
  /// frequencies").
  [[nodiscard]] double total_intensity() const {
    double sum = 0.0;
    for (const auto& a : amps_) sum += 0.5 * std::norm(a);
    return sum;
  }

  [[nodiscard]] const std::vector<Complex>& amplitudes() const { return amps_; }
  std::vector<Complex>& amplitudes() { return amps_; }

 private:
  std::vector<Complex> amps_;
};

/// A pair of waveguides carrying the same WDM channels — the natural
/// operand of a 2×2 directional coupler and of the DDot unit.
struct DualRail {
  WdmField upper;
  WdmField lower;

  [[nodiscard]] std::size_t channels() const {
    PDAC_ASSERT(upper.channels() == lower.channels());
    return upper.channels();
  }
};

}  // namespace pdac::photonics
