// mzm.hpp — Mach-Zehnder Modulator (paper Eq. 3 / Eq. 9).
//
// Full two-arm model:
//   E_out = E_in/2 · ( (1+k)·e^{jπV₁/2Vπ} + (1−k)·e^{jπV₂/2Vπ} )
// where k is the splitting imbalance.  Driven push–pull (V₂ = −V₁) with a
// balanced splitter (k = 0) this collapses to the paper's Eq. 9:
//   E_out = E_in · cos(V′₁),   V′₁ = πV₁ / 2Vπ
// which is the relation both the ideal-DAC driver and the P-DAC exploit
// to imprint a full-range (−1, 1) value on the carrier.
#pragma once

#include <complex>

#include "common/units.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

struct MzmConfig {
  double v_pi{2.0};           ///< half-wave voltage Vπ [V]
  double imbalance_k{0.0};    ///< splitting imbalance (0 = balanced)
  double insertion_loss{1.0}; ///< amplitude transmission factor (1 = lossless)
};

class Mzm {
 public:
  Mzm() : Mzm(MzmConfig{}) {}
  explicit Mzm(MzmConfig cfg);

  /// Apply the full Eq. 3 transfer for arm voltages (v1, v2) in volts.
  [[nodiscard]] Complex modulate(Complex e_in, double v1, double v2) const;

  /// Push–pull drive by *normalized* phase V′₁ = πV₁/2Vπ (radians):
  /// sets V₂ = −V₁, so with k = 0 the output is E_in·cos(V′₁)·loss.
  [[nodiscard]] Complex modulate_pushpull(Complex e_in, double v1_prime) const;

  /// Normalized phase for a given arm voltage: V′ = πV / 2Vπ.
  [[nodiscard]] double normalized_phase(double volts) const;
  /// Arm voltage realizing a normalized phase: V = 2Vπ·V′/π.
  [[nodiscard]] double arm_voltage(double v_prime) const;

  /// Modulate one channel of a WDM field in place (push–pull).
  void modulate_channel(WdmField& field, std::size_t channel, double v1_prime) const;

  [[nodiscard]] const MzmConfig& config() const { return cfg_; }

 private:
  MzmConfig cfg_;
};

}  // namespace pdac::photonics
