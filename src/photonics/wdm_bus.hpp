// wdm_bus.hpp — wavelength-division-multiplexed waveguide with MRR
// mux/demux banks (paper Fig. 1).
//
// A WdmBus owns one microring per channel on each side: transmitter rings
// inject per-wavelength fields onto the shared waveguide, receiver rings
// peel their wavelength back off.  Ring selectivity (linewidth) controls
// inter-channel crosstalk, which the tests characterize.
#pragma once

#include <cstddef>
#include <vector>

#include "photonics/microring.hpp"
#include "photonics/optical_field.hpp"

namespace pdac::photonics {

struct WdmBusConfig {
  std::size_t channels{8};
  double ring_hwhm_channels{0.05};  ///< selectivity of the mux/demux rings
};

class WdmBus {
 public:
  explicit WdmBus(WdmBusConfig cfg);

  [[nodiscard]] std::size_t channels() const { return cfg_.channels; }

  /// Multiplex per-channel source fields onto one waveguide.  Element i
  /// of `sources` must carry its data on channel i (other channels are
  /// ignored by ring selectivity, not by assumption).
  [[nodiscard]] WdmField mux(const std::vector<WdmField>& sources) const;

  /// Demultiplex: receiver ring i drops channel i.  Returns per-channel
  /// captured fields; `residual`, when non-null, receives what is left on
  /// the bus after all rings (ideally ~0; crosstalk remains).
  [[nodiscard]] std::vector<WdmField> demux(const WdmField& bus,
                                            WdmField* residual = nullptr) const;

  /// Convenience: place scalar amplitudes directly on their channels
  /// (ideal modulator bank), producing the bus field.
  [[nodiscard]] WdmField encode_amplitudes(const std::vector<double>& values) const;

  [[nodiscard]] const WdmBusConfig& config() const { return cfg_; }

 private:
  WdmBusConfig cfg_;
  std::vector<Microring> tx_rings_;
  std::vector<Microring> rx_rings_;
};

}  // namespace pdac::photonics
