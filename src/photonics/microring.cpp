#include "photonics/microring.hpp"

#include <cmath>

#include "common/require.hpp"

namespace pdac::photonics {

Microring::Microring(MicroringConfig cfg) : cfg_(cfg) {
  PDAC_REQUIRE(cfg_.hwhm_channels > 0.0, "Microring: linewidth must be positive");
  PDAC_REQUIRE(cfg_.heater_power_per_channel_shift.watts() >= 0.0,
               "Microring: heater power must be non-negative");
}

void Microring::tune_to(double channel) { cfg_.resonance_channel = channel; }

void Microring::stick_at(std::optional<double> drop_fraction) {
  if (drop_fraction.has_value()) {
    PDAC_REQUIRE(*drop_fraction >= 0.0 && *drop_fraction <= 1.0,
                 "Microring: stuck drop fraction must be in [0, 1]");
  }
  stuck_drop_ = drop_fraction;
}

double Microring::drop_fraction(double channel) const {
  if (stuck_drop_.has_value()) return *stuck_drop_;
  const double detune = (channel - cfg_.resonance_channel) / cfg_.hwhm_channels;
  return 1.0 / (1.0 + detune * detune);
}

MrrPorts Microring::route(const WdmField& in) const {
  MrrPorts ports{WdmField(in.channels()), WdmField(in.channels())};
  for (std::size_t ch = 0; ch < in.channels(); ++ch) {
    const double d = drop_fraction(static_cast<double>(ch));
    const Complex a = in.amplitude(ch);
    // Power split d to drop, (1-d) to through; amplitudes scale as sqrt.
    ports.drop.set_amplitude(ch, std::sqrt(d) * a);
    ports.through.set_amplitude(ch, std::sqrt(1.0 - d) * a);
  }
  return ports;
}

WdmField Microring::add_to_bus(const WdmField& bus, const WdmField& add) const {
  PDAC_REQUIRE(bus.channels() == add.channels(), "Microring: channel count mismatch");
  WdmField out(bus.channels());
  for (std::size_t ch = 0; ch < bus.channels(); ++ch) {
    const double d = drop_fraction(static_cast<double>(ch));
    // The add-port field couples onto the bus with the same resonance
    // selectivity the drop port has; through light passes attenuated.
    out.set_amplitude(ch, std::sqrt(1.0 - d) * bus.amplitude(ch) +
                              std::sqrt(d) * add.amplitude(ch));
  }
  return out;
}

units::Power Microring::tuning_power(double rest_channel) const {
  const double shift = std::abs(cfg_.resonance_channel - rest_channel);
  return units::watts(cfg_.heater_power_per_channel_shift.watts() * shift);
}

}  // namespace pdac::photonics
