// gemm_engine.hpp — blocked matrix multiplication on the photonic core.
//
// C = A·B with both operands max-abs-scaled into [−1, 1], quantized to
// the driver's bit width, encoded by the modulators (DAC or P-DAC) and
// reduced through DDot units.
//
// Event accounting models Lightening-Transformer's dynamically-operated
// 2-D DPTC array: an H×W tile of DDots consumes H A-rows broadcast along
// one axis and W B-columns along the other, so a tile step costs
// (H + W)·k modulations while performing H·W·k MACs — the operand-sharing
// that makes large arrays efficient.  Numerics are tiling-invariant, so
// the functional product and the event counts are computed separately
// but from the same configuration.
#pragma once

#include "common/matrix.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/event_counter.hpp"

namespace pdac::ptc {

struct GemmConfig {
  DotEngineConfig dot{};
  std::size_t array_rows{8};  ///< H: DDot rows sharing B-side operands
  std::size_t array_cols{8};  ///< W: DDot columns sharing A-side operands
};

struct GemmResult {
  Matrix c;
  EventCounter events;
  double a_scale{1.0};
  double b_scale{1.0};
};

class PhotonicGemm {
 public:
  PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg);

  /// Full photonic product: quantize, encode, DDot-reduce, rescale.
  [[nodiscard]] GemmResult multiply(const Matrix& a, const Matrix& b) const;

  /// Event counts for an (m×k)·(k×n) product on the configured array,
  /// without running numerics — the workload tracer uses this for
  /// full-size model shapes.
  [[nodiscard]] EventCounter count_events(std::size_t m, std::size_t k, std::size_t n) const;

  [[nodiscard]] const GemmConfig& config() const { return cfg_; }
  [[nodiscard]] const PhotonicDotEngine& engine() const { return engine_; }

 private:
  GemmConfig cfg_;
  PhotonicDotEngine engine_;
};

}  // namespace pdac::ptc
