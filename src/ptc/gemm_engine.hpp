// gemm_engine.hpp — tiled, tile-parallel matrix multiplication on the
// photonic core.
//
// C = A·B with both operands max-abs-scaled into [−1, 1], quantized to
// the driver's bit width, encoded by the modulators (DAC or P-DAC) and
// reduced through DDot units.
//
// Execution model (DESIGN.md §9): the output is partitioned into
// array_rows × array_cols tiles (tile_scheduler.hpp) and the tiles are
// dispatched across a thread pool.  Each worker reduces through its own
// Ddot instance (device objects are never shared mutably); operand
// encoding is amortized — every A row and B column is pushed through the
// shared encode LUT exactly once per product, mirroring the hardware's
// broadcast of one modulated row/column across a whole tile.  Results
// are bit-identical to serial execution at any thread count: every
// output element belongs to exactly one tile, its reduction order is
// fixed inside its dot product, and per-tile event counters are folded
// in tile-index order after the workers join.
//
// Event accounting contract (broadcast amortization): the counts model
// Lightening-Transformer's dynamically-operated 2-D DPTC array.  An
// H×W tile step modulates its H A-rows and W B-columns once each —
// (H + W)·k modulation events per tile, NOT the 2·k-per-dot that a
// standalone PhotonicDotEngine::dot charges — digitizes all H·W outputs
// (adc_events counts every output sample even when the functional
// adc_readout shortcut is off), and occupies the array for
// ⌈k/active_wavelengths⌉ cycles because the H·W DDots run concurrently.
// Detection, DDot-op and MAC counts come from the dots actually
// executed, so multiply()'s events and the analytic count_events() are
// equal field-for-field — a property the tests pin.  With a 1×1 array
// the tile contract degenerates to exactly the standalone per-dot
// convention ((1+1)·k = 2·k).
//
// Weight-stationary split (DESIGN.md §10): prepare_b() runs the whole
// B-side pipeline (max-abs scale, transpose, normalize, LUT-encode) once
// and returns a PreparedOperand; multiply_prepared() consumes it and is
// bit-identical to multiply() — numerics AND event counts — while
// skipping every B-side pass.  LLM weights are static across tokens, so
// decode loops prepare each weight matrix once and run it many times.
//
// ABFT guard (DESIGN.md §12, abft.hpp): with GemmConfig::guard enabled,
// prepare_b additionally builds one checksum column per array-width
// column stripe (cached with the operand) and multiply_prepared runs the
// checksum lanes alongside every tile, comparing the digitized tile sums
// against the digital references inside a noise-calibrated band.  The
// data path is untouched — numerics and EventCounter stay bit-identical
// to the unguarded product — and the checksum-lane charge is reported
// separately in GemmResult::guard.checksum_events.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/thread_pool.hpp"
#include "ptc/abft.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/event_counter.hpp"
#include "ptc/kernel.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::ptc {

/// Which implementation executes the tile reductions (DESIGN.md §13).
///   kKernel      — the fused flat-array kernel (kernel.hpp), coefficient
///                  tables snapshotted at engine construction; bit-exact
///                  against the device graph — numerics AND event counts,
///                  clean or guarded, at any thread count (a fuzz-pinned
///                  contract) — and the accuracy reference.
///   kKernelSimd  — the kernel's SIMD fast tier: explicit 4/8-wide
///                  blocking (common/simd.hpp, AVX2+FMA when the CPU has
///                  it) over the same coefficient snapshot.  Arithmetic
///                  order changes, device semantics do not: event counts
///                  stay field-for-field equal to kKernel, outputs sit
///                  within the ABFT reassociation band (guard_tolerance)
///                  of the scalar tier, and the ABFT guard itself runs
///                  unchanged on top.  The production hot path.
///   kKernelQuant — the kernel's integer tier (DESIGN.md §15): operands
///                  carried as int16 quantizer codes and the quadratic
///                  form reduced with EXACT int16×int16→int64 dots
///                  (common/simd.hpp), scale + dark applied once at
///                  readout.  Requires an on-grid encode LUT
///                  (FusedKernel::quant_ready — e.g. the
///                  core::BitTrueDacDriver engine); construction rejects
///                  the path otherwise.  Event counts stay
///                  field-for-field equal to kKernel, outputs sit in the
///                  same guard band as kKernelSimd, and the integer sums
///                  are ISA-independent.  Quarter the operand bytes per
///                  tile of the double tiers.
///   kDeviceGraph — every chunk staged through the device objects
///                  (Ddot); the authoritative physical reference.
enum class ExecutionPath { kKernel, kDeviceGraph, kKernelSimd, kKernelQuant };

/// The B operand of C = A·B, fully prepared for the photonic array:
/// transposed into row-major columns, max-abs-normalized and pushed
/// through the encode LUT.  Reusing one across products is valid only
/// while the encoder state it was built under is unchanged — `epoch`
/// records that state (driver/trim/lane epoch, owner-defined) so caches
/// can refuse stale encodings.
///
/// Logical vs physical shape (KV appends, DESIGN.md §17): `rows`/`cols`
/// are the LOGICAL source dimensions.  `encoded`/`reference`/`qcodes`
/// always hold exactly `cols` rows, but may carry more physical columns
/// than `rows` — append_b_rows pads column capacity geometrically so a
/// growing reduction axis (the KV context operand, one V row per decode
/// token) re-lays-out O(log t) times instead of every token.  Every
/// consumer reads row spans bounded by the logical reduction length, so
/// the padding is never touched by numerics, events or guard verdicts.
struct PreparedOperand {
  Matrix encoded;         ///< (n × ≥k) encoded, normalized Bᵀ
  double scale{1.0};      ///< max-abs scale divided out before encoding
  /// Raw max-abs of every source element folded so far.  `scale` alone
  /// cannot arbitrate appends: an all-zero operand gets the fallback
  /// scale 1.0, indistinguishable from a genuine max of 1.0.  An append
  /// is bit-identical to a fresh prepare iff the new elements' max-abs
  /// stays ≤ this (the fresh scale would then come out bitwise equal).
  double abs_max{0.0};
  std::size_t rows{0};    ///< source b.rows() (= k, the reduction length)
  std::size_t cols{0};    ///< source b.cols() (= n)
  std::uint64_t epoch{0}; ///< encoder state stamp it was encoded under
  /// Lane-packing snapshot for degraded execution (faults layer): the
  /// usable channel each reduction position rides.  Empty on the healthy
  /// path, where packing is fixed by the engine's lane mask.
  std::vector<std::size_t> channels;

  /// ABFT checksum stripes (abft.hpp): row s is the digital sum of the
  /// encoded columns in column-stripe s, Σ_j encoded.row(j), where
  /// stripes are `checksum_stripe` columns wide (the preparing config's
  /// array_cols).  Built by prepare_b under a guarded config and cached
  /// with the operand; empty when prepared unguarded.
  Matrix checksum;
  std::size_t checksum_stripe{0};
  /// Golden (calibration-state) encoding of the operand for guarded
  /// execution when the live encoder may have drifted from the state the
  /// references were calibrated under (faults::GuardedBackend).  Empty on
  /// the healthy ptc path, where `encoded` doubles as the reference.
  Matrix reference;

  /// Integer-tier operand form (ExecutionPath::kKernelQuant): the
  /// quantizer code of every encoded element, built by prepare_b under a
  /// quant-path config.  On-grid, decode(qcodes) == encoded bitwise —
  /// the codes are the same operand at a quarter the bytes.  Empty when
  /// prepared under a double-tier config.
  CodeMatrix qcodes;

  /// Resident size, for byte-capacity cache accounting.  Counts physical
  /// storage, so column-capacity padding is charged to the caches too.
  [[nodiscard]] std::size_t bytes() const {
    return sizeof(PreparedOperand) +
           (encoded.size() + checksum.size() + reference.size()) * sizeof(double) +
           qcodes.size() * sizeof(std::int16_t) + channels.size() * sizeof(std::size_t);
  }
};

/// Grow `m`'s physical column capacity to at least `cols` while keeping
/// every existing row's contents in place (Matrix::resize only preserves
/// rows when the column count is unchanged).  Geometric doubling keeps a
/// reduction axis growing one column per decode token amortized O(1) per
/// element.  New columns are zero-filled.
template <typename M>
void grow_col_capacity(M& m, std::size_t cols) {
  if (m.cols() >= cols) return;
  M wide(m.rows(), std::max(cols, m.cols() * 2));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = m.row(r);
    const auto dst = wide.row(r);
    for (std::size_t p = 0; p < src.size(); ++p) dst[p] = src[p];
  }
  m = std::move(wide);
}

struct GemmConfig {
  DotEngineConfig dot{};
  std::size_t array_rows{8};  ///< H: DDot rows sharing B-side operands
  std::size_t array_cols{8};  ///< W: DDot columns sharing A-side operands
  /// Simulation workers for the tile dispatch: 1 = serial (default),
  /// 0 = auto (PDAC_GEMM_THREADS env var or hardware concurrency).
  /// Results are bit-identical at any value.
  std::size_t threads{1};
  /// ABFT checksum guard (abft.hpp).  Off by default; when enabled the
  /// data path and its EventCounter stay bit-identical and the verdicts
  /// plus checksum-lane charge land in GemmResult::guard.
  GuardConfig guard{};
  /// Tile-reduction implementation; kKernel by default (bit-identical to
  /// kDeviceGraph, several times faster on the full-optics path).
  ExecutionPath path{ExecutionPath::kKernel};
};

struct GemmResult {
  Matrix c;
  EventCounter events;
  double a_scale{1.0};
  double b_scale{1.0};
  GuardOutcome guard;  ///< per-product ABFT verdicts; enabled=false when unguarded
};

class PhotonicGemm {
 public:
  PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg);

  /// Full photonic product: quantize, encode once per operand element,
  /// DDot-reduce tile-parallel, rescale.  Attaches the executed event
  /// counts (== count_events for the same shape).  Not reentrant: call
  /// from one thread at a time per engine (the engine parallelizes
  /// internally and reuses per-engine scratch buffers across calls).
  [[nodiscard]] GemmResult multiply(const Matrix& a, const Matrix& b) const;

  /// Run the B-side pipeline once: scale, transpose, normalize, encode.
  /// `epoch` stamps the encoder state (driver/trim/lane epoch) the
  /// operand was built under; the engine itself is immutable after
  /// construction, so 0 is fine when the caller tracks no epochs.
  [[nodiscard]] PreparedOperand prepare_b(const Matrix& b, std::uint64_t epoch = 0) const;

  /// prepare_b from an already-transposed source: `bt` is Bᵀ (n × k).
  /// Bit-identical to prepare_b(bt.transposed()) — the scale folds the
  /// same element multiset and every element goes through the same
  /// normalize + LUT ops — without materializing the transpose.  The KV
  /// scores operand (B = Kᵀ) hands its K cache straight in.
  [[nodiscard]] PreparedOperand prepare_bt(const Matrix& bt, std::uint64_t epoch = 0) const;

  /// Append-only extension of a prepared operand along the OUTPUT axis
  /// (new B columns = new rows of Bᵀ): encodes only rows
  /// [pb.cols, bt.rows()) of `bt` and extends the checksum stripes and
  /// quant staging in the exact accumulation order a fresh prepare uses,
  /// so the result is bit-identical to prepare_bt(bt, epoch) — including
  /// every downstream output, event count and guard verdict.  Returns
  /// false (operand untouched) whenever that identity cannot be
  /// guaranteed — epoch moved, shape shrank or mismatched, the new
  /// elements' max-abs exceeds pb.abs_max (the fresh scale would differ),
  /// or the operand carries faults-layer state (channel packing /
  /// golden reference, which GuardedBackend extends itself) — and the
  /// caller must rebuild from scratch.
  [[nodiscard]] bool append_bt_rows(PreparedOperand& pb, const Matrix& bt,
                                    std::uint64_t epoch = 0) const;

  /// Append-only extension along the REDUCTION axis (new B rows = new
  /// rows of `b`, the KV context operand growing one V row per token):
  /// encodes rows [pb.rows, b.rows()) into padded column capacity
  /// (grow_col_capacity) and extends each checksum stripe's new columns
  /// in fresh-prepare order.  Same bit-identity contract and rebuild
  /// triggers as append_bt_rows.
  [[nodiscard]] bool append_b_rows(PreparedOperand& pb, const Matrix& b,
                                   std::uint64_t epoch = 0) const;

  /// C = A·prepared-B, skipping every B-side pass.  Bit-identical to
  /// multiply(a, b) for the same B — numerics and event counts alike:
  /// the counts model the hardware, which still modulates B columns per
  /// tile step (the DPTC array is dynamically operated); preparation
  /// only removes *simulator* work.  Same reentrancy contract as
  /// multiply().
  [[nodiscard]] GemmResult multiply_prepared(const Matrix& a, const PreparedOperand& b) const;

  /// Analytic event counts for an (m×k)·(k×n) product on the configured
  /// array, without running numerics — the workload tracer uses this for
  /// full-size model shapes.  Equal to the counts multiply() attaches.
  [[nodiscard]] EventCounter count_events(std::size_t m, std::size_t k, std::size_t n) const;

  /// Resolved worker count (threads == 0 resolved at construction).
  [[nodiscard]] std::size_t threads() const { return pool_->size(); }

  [[nodiscard]] const GemmConfig& config() const { return cfg_; }
  [[nodiscard]] const PhotonicDotEngine& engine() const { return engine_; }

 private:
  /// Shared tail of prepare_b/prepare_bt: LUT-encode norm_scratch_ (the
  /// normalized Bᵀ staged by the caller) into pb and build the checksum
  /// stripes under a guarded config.
  void finish_prepare(PreparedOperand& pb) const;

  GemmConfig cfg_;
  PhotonicDotEngine engine_;
  FusedKernel kernel_;  ///< coefficient snapshot of engine_'s datapath
  std::unique_ptr<ThreadPool> pool_;

  // Per-engine scratch, reused across multiply calls so steady-state
  // products allocate nothing but their output (the documented
  // "not reentrant" contract is what makes this safe).  worker_ddots_
  // holds one device instance per worker slot, built once — Ddot
  // evaluation is const, so reuse cannot perturb numerics; worker
  // scratch stages the device-graph rails allocation-free per worker.
  std::vector<Ddot> worker_ddots_;
  mutable std::vector<DdotScratch> worker_scratch_;
  mutable Matrix norm_scratch_;
  mutable Matrix encode_scratch_;
  mutable CodeMatrix qcode_scratch_;  // quant path: A-side operand codes
  mutable std::vector<Tile> tile_scratch_;
  mutable std::vector<EventCounter> event_scratch_;
  mutable Matrix xsum_scratch_;               // guarded path: A row-stripe checksums
  mutable std::vector<TileCheck> check_scratch_;
};

}  // namespace pdac::ptc
