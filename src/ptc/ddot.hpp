// ddot.hpp — Dynamically-operated full-range Dot-product unit
// (Lightening-Transformer's DDot, paper §II-A3 and Eq. 6).
//
// Optical datapath for operand rails carrying x_i and y_i on channel i:
//
//   y rail → −90° phase shifter → e^{-jπ/2}·y_i = −j·y_i
//   (x, −j·y) → 50:50 directional coupler →
//       upper = (x_i + y_i)/√2,   lower = j·(x_i − y_i)/√2
//   balanced photodetectors integrate over all WDM channels:
//       I⁺ = Σ_i (x_i + y_i)²/4,  I⁻ = Σ_i (x_i − y_i)²/4
//   I⁺ − I⁻ = Σ_i x_i·y_i         (Eq. 6, exactly)
//
// The PS and DC are fully passive, so the dot product itself consumes no
// modulation energy — the paper's key observation.  Energy is charged at
// the modulators (DAC vs P-DAC) and at detection/ADC, which the event
// counter records.
#pragma once

#include <cstdint>
#include <span>

#include "photonics/directional_coupler.hpp"
#include "photonics/optical_field.hpp"
#include "photonics/phase_shifter.hpp"
#include "photonics/photodetector.hpp"

namespace pdac::ptc {

/// Result of one DDot detection: the two photocurrents and their
/// difference (the inner product).
struct DdotReading {
  double i_plus{};   ///< Σ (x_i + y_i)² / 4
  double i_minus{};  ///< Σ (x_i − y_i)² / 4
  [[nodiscard]] double value() const { return i_plus - i_minus; }
};

/// Reusable staging buffers for the allocation-free compute overloads.
/// The fields are resized on first use and reused across calls, so a tile
/// loop that keeps one scratch per worker performs no per-dot allocation.
/// Numerics are bit-identical to the scratch-free overloads (the same
/// device evaluations run in the same order; only the storage is reused).
struct DdotScratch {
  photonics::DualRail rails;    ///< operand staging for the span/masked entries
  photonics::WdmField shifted;  ///< y rail after the phase shifter
  photonics::DualRail coupled;  ///< both rails after the coupler
};

class Ddot {
 public:
  Ddot();
  /// Construct with explicit devices (e.g. noisy photodetectors or an
  /// imbalanced coupler for robustness studies).
  Ddot(photonics::PhaseShifter ps, photonics::DirectionalCoupler dc,
       photonics::Photodetector pd_plus, photonics::Photodetector pd_minus);

  /// Run the optical datapath on already-modulated operand rails.
  [[nodiscard]] DdotReading compute(const photonics::DualRail& rails) const;
  /// Same datapath staged through caller scratch: no allocation per call.
  [[nodiscard]] DdotReading compute(const photonics::DualRail& rails,
                                    DdotScratch& scratch) const;

  /// Masked variant for graceful degradation: channels whose mask entry
  /// is zero are not driven (their modulators are dead or fenced off) and
  /// contribute nothing to either photocurrent.  `mask` must cover the
  /// rail channel count.
  [[nodiscard]] DdotReading compute_masked(const photonics::DualRail& rails,
                                           std::span<const std::uint8_t> mask) const;
  /// Masked variant applying the mask in-place into caller scratch — no
  /// zero-filled rail rebuild per call.
  [[nodiscard]] DdotReading compute_masked(const photonics::DualRail& rails,
                                           std::span<const std::uint8_t> mask,
                                           DdotScratch& scratch) const;

  /// Convenience: build rails from real per-channel amplitudes (ideal
  /// modulators) and compute.  Spans must have equal length ≤ channels.
  [[nodiscard]] DdotReading compute(std::span<const double> x,
                                    std::span<const double> y) const;
  /// Same, staged through caller scratch (no allocation per dot).
  [[nodiscard]] DdotReading compute(std::span<const double> x, std::span<const double> y,
                                    DdotScratch& scratch) const;

  /// Noisy detection variant drawing from `rng`.
  [[nodiscard]] DdotReading compute_noisy(const photonics::DualRail& rails, Rng& rng) const;

  /// Closed-form transfer accessors: the fused kernel (kernel.hpp)
  /// snapshots the effective real-valued transfer from these devices.
  [[nodiscard]] const photonics::PhaseShifter& phase_shifter() const { return ps_; }
  [[nodiscard]] const photonics::DirectionalCoupler& coupler() const { return dc_; }
  [[nodiscard]] const photonics::Photodetector& pd_plus() const { return pd_plus_; }
  [[nodiscard]] const photonics::Photodetector& pd_minus() const { return pd_minus_; }

 private:
  photonics::PhaseShifter ps_;
  photonics::DirectionalCoupler dc_;
  photonics::Photodetector pd_plus_;
  photonics::Photodetector pd_minus_;
};

}  // namespace pdac::ptc
