#include "ptc/tile_scheduler.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace pdac::ptc {

std::vector<Tile> partition_tiles(std::size_t m, std::size_t n, std::size_t tile_rows,
                                  std::size_t tile_cols) {
  std::vector<Tile> tiles;
  partition_tiles_into(m, n, tile_rows, tile_cols, tiles);
  return tiles;
}

void partition_tiles_into(std::size_t m, std::size_t n, std::size_t tile_rows,
                          std::size_t tile_cols, std::vector<Tile>& out) {
  PDAC_REQUIRE(tile_rows >= 1 && tile_cols >= 1, "partition_tiles: tile dims must be positive");
  out.clear();
  if (m == 0 || n == 0) return;
  out.reserve(((m + tile_rows - 1) / tile_rows) * ((n + tile_cols - 1) / tile_cols));
  for (std::size_t i0 = 0; i0 < m; i0 += tile_rows) {
    const std::size_t h = std::min(tile_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += tile_cols) {
      const std::size_t w = std::min(tile_cols, n - j0);
      out.push_back(Tile{i0, j0, h, w});
    }
  }
}

void for_each_tile(ThreadPool& pool, const std::vector<Tile>& tiles,
                   const std::function<void(std::size_t, std::size_t)>& body) {
  pool.parallel_for(tiles.size(),
                    [&](std::size_t begin, std::size_t end, std::size_t worker) {
                      for (std::size_t t = begin; t < end; ++t) body(t, worker);
                    });
}

}  // namespace pdac::ptc
