#include "ptc/kernel.hpp"

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "common/simd.hpp"
#include "converters/electrical_adc.hpp"

namespace pdac::ptc {

namespace {

// Reduces NB independent dots against a shared x row in one pass.  Each
// dot's own floating-point sequence is exactly the one FusedKernel::reduce
// performs — the dots are merely interleaved, never mixed — so the results
// are bit-identical to NB separate reduce() calls.  The payoff is ILP: a
// single dot is latency-bound on its two serial accumulation chains
// (sum_p/sum_m), while NB dots give the core 2·NB independent chains plus
// one load of x and the lane coefficients per NB dots.
template <std::size_t NB>
void reduce_block(const LaneTransfer* lanes, std::size_t nl, const DetectorTransfer& det,
                  bool full_optics, const double* xe, const double* const* ys, std::size_t n,
                  double* out) {
  if (!full_optics) {
    double acc[NB] = {};
    for (std::size_t p = 0; p < n; ++p) {
      const double x = xe[p];
      for (std::size_t b = 0; b < NB; ++b) acc[b] += x * ys[b][p];
    }
    for (std::size_t b = 0; b < NB; ++b) out[b] = acc[b];
    return;
  }
  double acc[NB] = {};
  for (std::size_t base = 0; base < n; base += nl) {
    const std::size_t len = std::min(nl, n - base);
    double sp[NB] = {};
    double sm[NB] = {};
    for (std::size_t i = 0; i < len; ++i) {
      const LaneTransfer& ln = lanes[i];
      const double x = xe[base + i];
      const double tx = ln.t * x;
      const double kx = ln.jk_im * x;
      for (std::size_t b = 0; b < NB; ++b) {
        const double y = ys[b][base + i];
        const double lr = ln.ps_re * y;
        const double li = ln.ps_im * y;
        const double ur = tx - ln.jk_im * li;
        const double ui = ln.jk_im * lr;
        const double wr = ln.t * lr;
        const double wi = kx + ln.t * li;
        sp[b] += 0.5 * (ur * ur + ui * ui);
        sm[b] += 0.5 * (wr * wr + wi * wi);
      }
    }
    for (std::size_t b = 0; b < NB; ++b) {
      acc[b] += (det.gain_plus * sp[b] + det.dark_plus) -
                (det.gain_minus * sm[b] + det.dark_minus);
    }
  }
  for (std::size_t b = 0; b < NB; ++b) out[b] = acc[b];
}

}  // namespace

FusedKernel::FusedKernel(const PhotonicDotEngine& engine)
    : FusedKernel(engine.ddot(), engine.config()) {
  // The integer tier is certified per engine, not per device chain: only
  // the engine knows whether its encode LUT sits on the quantizer grid.
  quant_ready_ = engine.encode_on_quant_grid();
  max_code_ = engine.quantizer().max_code();
}

FusedKernel::FusedKernel(const Ddot& ddot, const DotEngineConfig& cfg) {
  PDAC_REQUIRE(cfg.wavelengths >= 1, "FusedKernel: at least one wavelength");
  PDAC_REQUIRE(cfg.lane_mask.empty() || cfg.lane_mask.size() == cfg.wavelengths,
               "FusedKernel: lane mask must cover every wavelength");
  full_optics_ = cfg.use_full_optics;
  adc_ = cfg.adc_readout;
  adc_bits_ = cfg.adc_bits;
  adc_full_scale_ = cfg.adc_full_scale;

  // The j·κ factor is snapshotted through the same expression the coupler
  // evaluates (Complex{0,1} · κ), so even its signed-zero real part is
  // reproduced exactly.
  const photonics::Complex f = ddot.phase_shifter().factor();
  const photonics::Complex jk = photonics::Complex{0.0, 1.0} * ddot.coupler().coupling();
  LaneTransfer lane;
  lane.ps_re = f.real();
  lane.ps_im = f.imag();
  lane.t = ddot.coupler().transmission();
  lane.jk_re = jk.real();
  lane.jk_im = jk.imag();

  // Fence mask folds into the packing: operands ride the surviving
  // wavelengths only, exactly like PhotonicDotEngine::active_lanes_.
  std::size_t active = 0;
  for (std::size_t ch = 0; ch < cfg.wavelengths; ++ch) {
    if (cfg.lane_mask.empty() || cfg.lane_mask[ch] != 0u) ++active;
  }
  PDAC_REQUIRE(active >= 1, "FusedKernel: lane mask leaves no usable wavelength");
  lanes_.assign(active, lane);

  det_.gain_plus = ddot.pd_plus().effective_responsivity();
  det_.dark_plus = ddot.pd_plus().config().dark_current;
  det_.gain_minus = ddot.pd_minus().effective_responsivity();
  det_.dark_minus = ddot.pd_minus().config().dark_current;
}

double FusedKernel::reduce(std::span<const double> xe, std::span<const double> ye) const {
  const std::size_t n = xe.size();
  if (!full_optics_) {
    // Fast-path engines reduce encoded amplitudes directly; the chunked
    // loop flattens to one pass (chunk boundaries do not reassociate).
    double acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) acc += xe[p] * ye[p];
    return acc;
  }
  const std::size_t nl = lanes_.size();
  const LaneTransfer* const lanes = lanes_.data();
  double acc = 0.0;
  for (std::size_t base = 0; base < n; base += nl) {
    const std::size_t len = std::min(nl, n - base);
    double sum_p = 0.0;
    double sum_m = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      const LaneTransfer& ln = lanes[i];
      const double x = xe[base + i];
      const double y = ye[base + i];
      // The device graph expands the full complex products on (x + 0j)/
      // (y + 0j) operands; this loop drops every term that is an exact
      // IEEE zero there.  That is bit-preserving, not approximate:
      //   * jk_re = 0.0·κ is a literal signed zero (couple() builds j·κ
      //     as Complex{0,1}·κ), and every dropped term is `a·(±0)` or
      //     `(±0) + b` / `(±0) − b`, which leave any non-zero operand's
      //     bits untouched (q ± 0 == q, 0 − q == −q);
      //   * the only values that CAN differ are the signs of zeros, and
      //     every rail amplitude is consumed by |E|² below, where
      //     (±0)² == +0 — so the chunk sums, and hence the dot, match
      //     the device graph bit for bit;
      //   * operand amplitudes are encode-LUT outputs, hence finite —
      //     no NaN/Inf whose propagation a dropped term could alter.
      const double lr = ln.ps_re * y;
      const double li = ln.ps_im * y;
      // Coupler: upper' = t·x − κ·li + j·(κ·lr), lower' = t·lr + j·(κ·x + t·li).
      const double ur = ln.t * x - ln.jk_im * li;
      const double ui = ln.jk_im * lr;
      const double wr = ln.t * lr;
      const double wi = ln.jk_im * x + ln.t * li;
      // Balanced detection integrates I = Σ ½|E|² in ascending channel
      // order; inactive channels contribute exactly +0.0 and are skipped.
      sum_p += 0.5 * (ur * ur + ui * ui);
      sum_m += 0.5 * (wr * wr + wi * wi);
    }
    acc += (det_.gain_plus * sum_p + det_.dark_plus) -
           (det_.gain_minus * sum_m + det_.dark_minus);
  }
  return acc;
}

double FusedKernel::apply_adc(double acc, std::size_t n) const {
  if (!adc_) return acc;
  const double fs = adc_full_scale_ > 0.0
                        ? adc_full_scale_
                        : static_cast<double>(std::max<std::size_t>(n, 1));
  converters::ElectricalAdcConfig ac;
  ac.bits = adc_bits_;
  ac.v_ref = fs;
  return converters::ElectricalAdc(ac).sample_to_voltage(acc);
}

double FusedKernel::dot(std::span<const double> xe, std::span<const double> ye,
                        EventCounter* ev) const {
  PDAC_REQUIRE(xe.size() == ye.size(), "FusedKernel: operand length mismatch");
  const std::size_t n = xe.size();
  const double acc = reduce(xe, ye);
  if (ev != nullptr) {
    const std::size_t nl = lanes_.size();
    const std::size_t chunks = (n + nl - 1) / nl;
    ev->detection_events += chunks;
    ev->ddot_ops += chunks;
    ev->macs += n;
  }
  return apply_adc(acc, n);
}

void FusedKernel::run_tile(const Tile& tile, const Matrix& ae, const Matrix& be,
                           double rescale, Matrix& c, EventCounter* ev, double* rsum,
                           double* csum) const {
  const std::size_t k = ae.cols();
  // >=: prepared operands may pad the reduction axis with physical
  // column capacity (PreparedOperand shape contract); every loop here
  // is bounded by the A-side k, so padding is never read.
  PDAC_REQUIRE(be.cols() >= k, "FusedKernel: operand reduction lengths must agree");
  // The reduction length is fixed across the tile, so the ADC (whose
  // behavior depends only on bits and full scale) is built once instead
  // of per dot — identical round-trip, hoisted construction.
  converters::ElectricalAdcConfig ac;
  ac.bits = adc_bits_;
  ac.v_ref = adc_full_scale_ > 0.0 ? adc_full_scale_
                                   : static_cast<double>(std::max<std::size_t>(k, 1));
  const converters::ElectricalAdc adc(ac);
  constexpr std::size_t kBlock = 4;
  const std::size_t col_end = tile.col0 + tile.cols;
  for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
    const auto x = ae.row(i);
    std::size_t j = tile.col0;
    // Blocked main loop: four dots per pass for ILP (see reduce_block);
    // the raw values and their rsum/csum accumulation order match the
    // scalar loop exactly — j still ascends within the row.
    for (; j + kBlock <= col_end; j += kBlock) {
      const double* ys[kBlock];
      for (std::size_t b = 0; b < kBlock; ++b) ys[b] = be.row(j + b).data();
      double raw[kBlock];
      reduce_block<kBlock>(lanes_.data(), lanes_.size(), det_, full_optics_, x.data(), ys, k,
                           raw);
      for (std::size_t b = 0; b < kBlock; ++b) {
        double r = raw[b];
        if (adc_) r = adc.sample_to_voltage(r);
        c(i, j + b) = r * rescale;
        if (rsum != nullptr) rsum[i - tile.row0] += r;
        if (csum != nullptr) csum[j + b - tile.col0] += r;
      }
    }
    for (; j < col_end; ++j) {
      double raw = reduce(x, be.row(j));
      if (adc_) raw = adc.sample_to_voltage(raw);
      c(i, j) = raw * rescale;
      if (rsum != nullptr) rsum[i - tile.row0] += raw;
      if (csum != nullptr) csum[j - tile.col0] += raw;
    }
  }
  if (ev != nullptr) {
    // Closed form for the reduction events the device-graph loop counts
    // dot by dot — equal because every dot charges the same chunk count.
    const std::size_t nl = lanes_.size();
    const std::uint64_t chunks = (k + nl - 1) / nl;
    const std::uint64_t dots =
        static_cast<std::uint64_t>(tile.rows) * static_cast<std::uint64_t>(tile.cols);
    ev->detection_events += dots * chunks;
    ev->ddot_ops += dots * chunks;
    ev->macs += dots * static_cast<std::uint64_t>(k);
  }
}

void FusedKernel::run_tile_fast(const Tile& tile, const Matrix& ae, const Matrix& be,
                                double rescale, Matrix& c, EventCounter* ev, double* rsum,
                                double* csum) const {
  const std::size_t k = ae.cols();
  // >=: prepared operands may pad the reduction axis with physical
  // column capacity (PreparedOperand shape contract); every loop here
  // is bounded by the A-side k, so padding is never read.
  PDAC_REQUIRE(be.cols() >= k, "FusedKernel: operand reduction lengths must agree");
  converters::ElectricalAdcConfig ac;
  ac.bits = adc_bits_;
  ac.v_ref = adc_full_scale_ > 0.0 ? adc_full_scale_
                                   : static_cast<double>(std::max<std::size_t>(k, 1));
  const converters::ElectricalAdc adc(ac);
  const std::size_t nl = lanes_.size();
  const std::uint64_t chunks = (k + nl - 1) / nl;

  // Closed quadratic form of the full-optics physics.  Every lane shares
  // one coefficient row (the constructor assigns the same LaneTransfer to
  // all active wavelengths — a class invariant), so the per-element rail
  // intensities collapse algebraically:
  //
  //   sp_e = ½[t²·x² + κ²·|f|²·y² − 2tκ·ps_im·x·y]
  //   sm_e = ½[κ²·x² + t²·|f|²·y² + 2tκ·ps_im·x·y]      |f|² = ps_re²+ps_im²
  //
  //   g₊·Σsp − g₋·Σsm + chunks·(d₊ − d₋)
  //     = cxx·Σx² + cyy·Σy² + cxy·Σxy + dark
  //
  // with cxx = ½(g₊t² − g₋κ²), cyy = ½|f|²(g₊κ² − g₋t²),
  // cxy = −tκ·ps_im·(g₊ + g₋), dark = chunks·(d₊ − d₋).  The whole tile
  // then reduces to plain dot products: Σx² once per row, Σy² once per
  // column, Σxy per output — all vectorized through common/simd.hpp.
  double cxx = 0.0;
  double cyy = 0.0;
  double cxy = 0.0;
  double dark = 0.0;
  // Σy² per tile column, hoisted once per tile (full optics only).  The
  // tiny tile-local allocation (≤ array_cols doubles) is the price of
  // not recomputing column norms per row.
  std::vector<double> syy;
  if (full_optics_) {
    const LaneTransfer& ln = lanes_.front();
    const double f2 = ln.ps_re * ln.ps_re + ln.ps_im * ln.ps_im;
    const double t2 = ln.t * ln.t;
    const double k2 = ln.jk_im * ln.jk_im;
    cxx = 0.5 * (det_.gain_plus * t2 - det_.gain_minus * k2);
    cyy = 0.5 * f2 * (det_.gain_plus * k2 - det_.gain_minus * t2);
    cxy = -ln.t * ln.jk_im * ln.ps_im * (det_.gain_plus + det_.gain_minus);
    dark = static_cast<double>(chunks) * (det_.dark_plus - det_.dark_minus);
    syy.resize(tile.cols);
    for (std::size_t j = 0; j < tile.cols; ++j) {
      syy[j] = simd::dot_self(be.row(tile.col0 + j).data(), k);
    }
  }

  constexpr std::size_t kBlock = 4;
  const std::size_t col_end = tile.col0 + tile.cols;
  for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
    const double* x = ae.row(i).data();
    const double sxx = full_optics_ ? simd::dot_self(x, k) : 0.0;
    std::size_t j = tile.col0;
    for (; j + kBlock <= col_end; j += kBlock) {
      const double* ys[kBlock];
      for (std::size_t b = 0; b < kBlock; ++b) ys[b] = be.row(j + b).data();
      double sxy[kBlock];
      simd::dot4(x, ys, k, sxy);
      for (std::size_t b = 0; b < kBlock; ++b) {
        double r = full_optics_
                       ? cxx * sxx + cyy * syy[j + b - tile.col0] + cxy * sxy[b] + dark
                       : sxy[b];
        if (adc_) r = adc.sample_to_voltage(r);
        c(i, j + b) = r * rescale;
        if (rsum != nullptr) rsum[i - tile.row0] += r;
        if (csum != nullptr) csum[j + b - tile.col0] += r;
      }
    }
    for (; j < col_end; ++j) {
      const double sxy = simd::dot(x, be.row(j).data(), k);
      double r = full_optics_ ? cxx * sxx + cyy * syy[j - tile.col0] + cxy * sxy + dark
                              : sxy;
      if (adc_) r = adc.sample_to_voltage(r);
      c(i, j) = r * rescale;
      if (rsum != nullptr) rsum[i - tile.row0] += r;
      if (csum != nullptr) csum[j - tile.col0] += r;
    }
  }
  if (ev != nullptr) {
    // Field-for-field identical to run_tile: the tier changes arithmetic
    // order, not device semantics — the analog machine still performs
    // dots·chunks detections and dots·k MACs.
    const std::uint64_t dots =
        static_cast<std::uint64_t>(tile.rows) * static_cast<std::uint64_t>(tile.cols);
    ev->detection_events += dots * chunks;
    ev->ddot_ops += dots * chunks;
    ev->macs += dots * static_cast<std::uint64_t>(k);
  }
}

void FusedKernel::run_tile_quant(const Tile& tile, const CodeMatrix& aq, const CodeMatrix& bq,
                                 double rescale, Matrix& c, EventCounter* ev, double* rsum,
                                 double* csum) const {
  PDAC_REQUIRE(quant_ready_,
               "FusedKernel: run_tile_quant needs an on-grid encode LUT (quant_ready)");
  const std::size_t k = aq.cols();
  PDAC_REQUIRE(bq.cols() >= k, "FusedKernel: operand reduction lengths must agree");
  converters::ElectricalAdcConfig ac;
  ac.bits = adc_bits_;
  ac.v_ref = adc_full_scale_ > 0.0 ? adc_full_scale_
                                   : static_cast<double>(std::max<std::size_t>(k, 1));
  const converters::ElectricalAdc adc(ac);
  const std::size_t nl = lanes_.size();
  const std::uint64_t chunks = (k + nl - 1) / nl;

  // Same quadratic form as run_tile_fast (see the derivation there), but
  // with the amplitude sums carried as exact integer sums over codes:
  // on-grid, x = cx/mc and y = cy/mc bitwise, so
  //   Σx² = Σcx²/mc², Σy² = Σcy²/mc², Σxy = Σcx·cy/mc²
  // with the integer numerators computed exactly (|Σcx·cy| ≤ k·mc² ≪ 2⁵³
  // also makes the int64→double conversion exact) — each sum then costs
  // ONE division instead of a k-term floating accumulation chain.
  const std::int32_t mc = max_code_;
  const double mc2 = static_cast<double>(mc) * static_cast<double>(mc);
  double cxx = 0.0;
  double cyy = 0.0;
  double cxy = 0.0;
  double dark = 0.0;
  std::vector<double> syy;  // Σy² per tile column, hoisted (full optics)
  if (full_optics_) {
    const LaneTransfer& ln = lanes_.front();
    const double f2 = ln.ps_re * ln.ps_re + ln.ps_im * ln.ps_im;
    const double t2 = ln.t * ln.t;
    const double k2 = ln.jk_im * ln.jk_im;
    cxx = 0.5 * (det_.gain_plus * t2 - det_.gain_minus * k2);
    cyy = 0.5 * f2 * (det_.gain_plus * k2 - det_.gain_minus * t2);
    cxy = -ln.t * ln.jk_im * ln.ps_im * (det_.gain_plus + det_.gain_minus);
    dark = static_cast<double>(chunks) * (det_.dark_plus - det_.dark_minus);
    syy.resize(tile.cols);
    for (std::size_t j = 0; j < tile.cols; ++j) {
      syy[j] =
          static_cast<double>(simd::dot_self_i16(bq.row(tile.col0 + j).data(), k, mc)) / mc2;
    }
  }

  constexpr std::size_t kBlock = 4;
  const std::size_t col_end = tile.col0 + tile.cols;
  for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
    const std::int16_t* x = aq.row(i).data();
    const double sxx =
        full_optics_ ? static_cast<double>(simd::dot_self_i16(x, k, mc)) / mc2 : 0.0;
    std::size_t j = tile.col0;
    for (; j + kBlock <= col_end; j += kBlock) {
      const std::int16_t* ys[kBlock];
      for (std::size_t b = 0; b < kBlock; ++b) ys[b] = bq.row(j + b).data();
      std::int64_t ixy[kBlock];
      simd::dot4_i16(x, ys, k, mc, ixy);
      for (std::size_t b = 0; b < kBlock; ++b) {
        const double sxy = static_cast<double>(ixy[b]) / mc2;
        double r = full_optics_ ? cxx * sxx + cyy * syy[j + b - tile.col0] + cxy * sxy + dark
                                : sxy;
        if (adc_) r = adc.sample_to_voltage(r);
        c(i, j + b) = r * rescale;
        if (rsum != nullptr) rsum[i - tile.row0] += r;
        if (csum != nullptr) csum[j + b - tile.col0] += r;
      }
    }
    for (; j < col_end; ++j) {
      const double sxy = static_cast<double>(simd::dot_i16(x, bq.row(j).data(), k, mc)) / mc2;
      double r = full_optics_ ? cxx * sxx + cyy * syy[j - tile.col0] + cxy * sxy + dark : sxy;
      if (adc_) r = adc.sample_to_voltage(r);
      c(i, j) = r * rescale;
      if (rsum != nullptr) rsum[i - tile.row0] += r;
      if (csum != nullptr) csum[j - tile.col0] += r;
    }
  }
  if (ev != nullptr) {
    // Field-for-field identical to run_tile: the tier changes the number
    // representation, not device semantics — the analog machine still
    // performs dots·chunks detections and dots·k MACs.
    const std::uint64_t dots =
        static_cast<std::uint64_t>(tile.rows) * static_cast<std::uint64_t>(tile.cols);
    ev->detection_events += dots * chunks;
    ev->ddot_ops += dots * chunks;
    ev->macs += dots * static_cast<std::uint64_t>(k);
  }
}

}  // namespace pdac::ptc
