#include "ptc/abft.hpp"

#include <algorithm>
#include <cfloat>
#include <cmath>

#include "common/require.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/noise_analysis.hpp"

namespace pdac::ptc {

double guard_tolerance(const GuardConfig& cfg, std::size_t k, std::size_t fan, double mag) {
  PDAC_REQUIRE(cfg.noise_zscore >= 0.0 && cfg.noise_sigma >= 0.0 && cfg.fp_slack >= 0.0,
               "guard_tolerance: band parameters must be non-negative");
  const double terms = static_cast<double>(fan + 1);
  const double fp = cfg.fp_slack * DBL_EPSILON * static_cast<double>(k) * terms *
                    std::max(std::abs(mag), 1.0);
  const double noise = cfg.noise_zscore * cfg.noise_sigma * std::sqrt(terms);
  return fp + noise;
}

double calibrate_guard_sigma(const DotEngineConfig& dot, std::size_t k) {
  double variance = 0.0;

  if (dot.adc_readout) {
    // apply_adc digitizes each raw dot over full scale 2·fs (fs defaults
    // to the reduction length); one LSB is 2·fs / 2^bits and the
    // quantization noise of a rounding converter is step/√12.
    const double fs = dot.adc_full_scale > 0.0 ? dot.adc_full_scale : static_cast<double>(k);
    const double step = 2.0 * fs / static_cast<double>(1u << dot.adc_bits);
    variance += step * step / 12.0;
  }

  const auto& pd = dot.pd_noise;
  if (pd.enabled && (pd.thermal_noise_std > 0.0 || pd.shot_noise_scale > 0.0)) {
    // Measure the per-chunk detection noise the way the SNR bench does,
    // then stretch it over the ⌈k/λ⌉ chunks a length-k reduction takes.
    SnrConfig snr;
    snr.wavelengths = dot.wavelengths;
    snr.noise = pd;
    const SnrReport rep = measure_ddot_snr(snr);
    const std::size_t nl = std::max<std::size_t>(dot.wavelengths, 1);
    const double chunks = std::ceil(static_cast<double>(std::max<std::size_t>(k, 1)) /
                                    static_cast<double>(nl));
    variance += rep.noise_rms * rep.noise_rms * chunks;
  }

  return std::sqrt(variance);
}

EventCounter checksum_lane_events(std::size_t h, std::size_t w, std::size_t k,
                                  std::size_t chunks, bool column_only) {
  EventCounter ev;
  // One extra A row and one extra B column modulated per tile step; the
  // h + w checksum outputs are detected, reduced and digitized like data
  // lanes.  The spare row/column computes inside the same tile step, so
  // occupancy cycles are unchanged.  Column-only mode keeps just the
  // spare A row (Σ_i x′_i) and its w column-lane outputs.
  const std::size_t lanes = column_only ? w : h + w;
  ev.modulation_events = (column_only ? 1 : 2) * k;
  ev.adc_events = lanes;
  ev.ddot_ops = lanes * chunks;
  ev.detection_events = lanes * chunks;
  ev.macs = lanes * k;
  ev.cycles = 0;
  return ev;
}

}  // namespace pdac::ptc
