// tile_scheduler.hpp — output-stationary tile partition for the GEMM
// execution engine.
//
// An (m × n) output matrix maps onto the H × W DDot array as a grid of
// tiles, row-major: the i-axis is cut into ⌈m/H⌉ stripes of height ≤ H,
// the j-axis into ⌈n/W⌉ stripes of width ≤ W.  One tile is one
// hardware "tile step": its H rows of A and W columns of B are each
// modulated once and broadcast across the array, so tiles are also the
// unit of event accounting ((h + w)·k modulations per step).
//
// Tiles are independent — every output element belongs to exactly one
// tile — which is what makes the engine embarrassingly parallel while
// staying bit-identical to serial execution: each element's reduction
// order is fixed inside its dot product, and the tile *index* fixes the
// order in which per-tile event counters are folded together after the
// workers join.
#pragma once

#include <cstddef>
#include <vector>

#include "common/thread_pool.hpp"

namespace pdac::ptc {

/// One output tile: rows [row0, row0+rows) × cols [col0, col0+cols).
struct Tile {
  std::size_t row0{};
  std::size_t col0{};
  std::size_t rows{};
  std::size_t cols{};
};

/// Row-major tile grid covering an (m × n) output with tiles of at most
/// (tile_rows × tile_cols) — edge tiles are ragged.  The returned order
/// matches PhotonicGemm::count_events' loop order exactly.
[[nodiscard]] std::vector<Tile> partition_tiles(std::size_t m, std::size_t n,
                                                std::size_t tile_rows, std::size_t tile_cols);

/// Same partition written into `out` (cleared first), so per-engine
/// scratch can reuse its allocation across repeated products.
void partition_tiles_into(std::size_t m, std::size_t n, std::size_t tile_rows,
                          std::size_t tile_cols, std::vector<Tile>& out);

/// Dispatch `body(tile_index, worker)` over every tile on the pool.
/// Workers receive disjoint contiguous runs of the tile list (static
/// partition), so per-worker device state needs no locking; per-tile
/// outputs indexed by tile_index are written exactly once.
void for_each_tile(ThreadPool& pool, const std::vector<Tile>& tiles,
                   const std::function<void(std::size_t tile_index, std::size_t worker)>& body);

}  // namespace pdac::ptc
