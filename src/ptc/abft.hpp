// abft.hpp — algorithm-based fault tolerance for the photonic GEMM path:
// checksum lanes, noise-calibrated tolerance bands, per-tile verdicts.
//
// Analog compute fails silently: a stuck MRR, dead receive PD or stepped
// TIA gain that strikes *between* scheduled self-tests corrupts every
// reduction it touches with no error flag anywhere (the hazard
// Al-Qadasi et al. flag for deep photonic pipelines, and that Mirage
// counters with digital residue checks around analog MACs).  The guard
// closes that window in-band, at tile granularity:
//
//   * every prepared B operand carries one checksum column per
//     array-width column stripe — the digital sum of the stripe's
//     encoded columns, Σ_j y′_j, computed by the controller at prepare
//     time and cached with the operand;
//   * every A operand gets one checksum row per array-height row stripe
//     (Σ_i x′_i), rebuilt with the per-product A-side encode pass;
//   * each H×W output tile is augmented with its checksum lane outputs:
//     row lane r_i = ⟨x′_i, Σ_j y′_j⟩ and column lane c_j = ⟨Σ_i x′_i,
//     y′_j⟩, and the digitized data outputs are summed against them —
//     Σ_j tile(i,j) must equal r_i and Σ_i tile(i,j) must equal c_j
//     within a tolerance band.
//
// Modeling note (DESIGN.md §12): the physical array runs the checksum
// lanes through one spare DDot row + column per tile step — the event
// charge below — while the *reference* side of the comparison is the
// controller's digital prediction from the operand amplitudes it
// calibrated.  The simulator computes the checksum-lane outputs in the
// amplitude domain (sums of encoded amplitudes, i.e. an ideal checksum
// modulator) rather than re-encoding a value-domain checksum column:
// encoding Σ_j b_j through the arccos-approximating P-DAC would fold the
// encoder's documented 8.5 % nonlinearity into every comparison and the
// band would have to swallow it, blinding the guard to exactly the
// faults it exists to catch.  With amplitude-domain checksums the
// fault-free residual is pure floating-point reassociation (≲ 1e−13
// relative) plus — when enabled — ADC readout quantization and detector
// noise, all of which guard_tolerance covers with provable headroom, so
// the false-positive rate on clean hardware is ~0 by construction while
// a latched modulator or dead PD bit lands orders of magnitude outside
// the band.
#pragma once

#include <cstddef>
#include <cstdint>

#include "ptc/event_counter.hpp"

namespace pdac::converters {
class Quantizer;
}

namespace pdac::ptc {

struct DotEngineConfig;

/// Guard knobs; aggregate-initializable so configs stay declarative.
struct GuardConfig {
  /// Master switch: off = the engine computes and charges nothing extra
  /// and results are bit-for-bit the unguarded ones.
  bool enabled{false};
  /// Multiplier on `noise_sigma` — the statistical half of the band.
  /// 8σ keeps the clean false-positive probability below ~1e−15 per
  /// comparison even for Gaussian-tailed noise.
  double noise_zscore{8.0};
  /// Per-dot readout noise sigma in raw (pre-rescale) dot units.  Leave
  /// 0 for the deterministic simulator path; calibrate_guard_sigma()
  /// derives it from the ADC step and the measured PD noise floor when
  /// either is active.
  double noise_sigma{0.0};
  /// Multiplier on the machine-epsilon reassociation bound — the
  /// deterministic half of the band.  The default is ~100× the worst
  /// residual observed over millions of clean tiles; a genuine stuck
  /// lane overshoots it by 6+ orders of magnitude.
  double fp_slack{64.0};
  /// Cheap guard mode: run only the column checksum lanes (the spare A
  /// row, Σ_i x′_i).  Halves the guard's extra MACs, DDots and ADC
  /// samples and still localizes corruption to a column stripe, at the
  /// price of losing row localization — and with it single-error
  /// correction, which needs the row×column intersection.
  bool column_only{false};
  /// Single-error correction (faults::GuardedBackend): when exactly one
  /// row lane and exactly one column lane mismatch and their residuals
  /// agree, the corrupted element is pinpointed at the intersection and
  /// corrected digitally from the checksum residual — no escalation rung
  /// fires.  Ignored under column_only (no row lanes to intersect).
  bool sec_correction{true};
  /// Hysteresis band for continuous drift (DESIGN.md §16): a residual in
  /// (tolerance, drift_band·tolerance] is *absorbed* — recorded as a
  /// drift observation (TileCheck::drift_ratio, GuardOutcome::
  /// drift_tiles, the faults::DriftTracker feed) but not counted as a
  /// mismatch, so no escalation rung fires for sub-accuracy wander.
  /// Only residuals beyond drift_band·tolerance (and NaNs, always) are
  /// excursions that mismatch.  The band is the explicit degraded-
  /// quality-vs-recovery-energy knob: output corruption it can admit is
  /// bounded by drift_band·tolerance — still reassociation-scale for
  /// the defaults, orders of magnitude under accuracy-relevant error.
  /// 1.0 (the default) collapses the band and reproduces the pre-drift
  /// verdicts bit-for-bit.  Values < 1 read as 1.
  double drift_band{1.0};
};

/// Tolerance band for one checksum comparison: `fan` digitized dot
/// products of length k summed against the digital reference, where
/// `mag` bounds the magnitude of the individual raw dot values involved.
/// Deterministic term: fp_slack · ε · k · (fan+1) · max(mag, 1); noise
/// term: zscore · noise_sigma · √(fan+1).
[[nodiscard]] double guard_tolerance(const GuardConfig& cfg, std::size_t k, std::size_t fan,
                                     double mag);

/// Noise-calibrated default sigma for a dot engine: the ADC readout's
/// quantization noise (step/√12 in raw dot units, when adc_readout is
/// on) plus the photodetector noise floor (per-chunk sigma × √chunks,
/// when pd_noise is active) for reductions of length k.  Returns 0 for
/// the fully deterministic path — the band then collapses to the
/// floating-point term and the comparison is exact to reassociation.
[[nodiscard]] double calibrate_guard_sigma(const DotEngineConfig& dot, std::size_t k);

/// Verdict for one guarded tile.
struct TileCheck {
  std::size_t tile{0};        ///< tile index in scheduler order
  bool ok{true};              ///< every row/column comparison inside the band
  double worst_residual{0.0}; ///< largest |analog sum − digital reference|
  double tolerance{0.0};      ///< band at the worst comparison's site
  /// Elements repaired in place by single-error correction; a corrected
  /// tile reads ok (its residual stays recorded for diagnostics).
  std::size_t corrected{0};
  /// Worst residual/tolerance ratio of the comparisons that landed in
  /// the hysteresis band (GuardConfig::drift_band) — in (1, drift_band].
  /// 0 when every comparison was inside the base tolerance.  A tile with
  /// drift_ratio > 0 and ok == true was absorbed, not escalated.
  double drift_ratio{0.0};
};

/// Aggregated guard outcome of one product (GemmResult::guard).  The
/// checksum-lane charge is kept in its own counter so the data-path
/// events stay field-for-field identical to the unguarded product —
/// callers fold `checksum_events` into their energy accounting
/// explicitly (arch::event_energy prices it).
struct GuardOutcome {
  bool enabled{false};
  std::size_t tiles_checked{0};
  std::size_t mismatched_tiles{0};
  /// First mismatched tile in scheduler order (detection site);
  /// SIZE_MAX when every tile verified.
  std::size_t first_mismatch{static_cast<std::size_t>(-1)};
  double worst_residual{0.0};
  double worst_tolerance{0.0};
  /// Tiles repaired in place by single-error correction: detected, not
  /// counted as mismatched (no recovery rung ran).
  std::size_t tiles_corrected{0};
  /// Tiles whose final verdict absorbed at least one in-band drift
  /// comparison (TileCheck::drift_ratio > 0): watched, not escalated.
  std::size_t drift_tiles{0};
  /// Largest absorbed residual/tolerance ratio across the product.
  double worst_drift_ratio{0.0};
  /// Checksum-lane charge: per H×W tile step one extra A row and one
  /// extra B column are modulated (2·k events), the H+W checksum lane
  /// outputs are digitized and their DDots reduced; the lanes ride a
  /// spare array row/column inside the same tile step, so they add no
  /// occupancy cycles.  Under column_only, only the spare A row runs
  /// (k modulations, W outputs) — the halved charge.
  EventCounter checksum_events;

  [[nodiscard]] bool clean() const { return mismatched_tiles == 0; }
};

/// Checksum-lane events for one h×w tile of reduction length k chunked
/// over `chunks` WDM passes — the documented extra charge per tile.
/// `column_only` drops the row lanes (the spare B column and its h
/// outputs), halving the guard MACs and ADC samples.
[[nodiscard]] EventCounter checksum_lane_events(std::size_t h, std::size_t w, std::size_t k,
                                                std::size_t chunks, bool column_only = false);

}  // namespace pdac::ptc
