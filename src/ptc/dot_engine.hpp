// dot_engine.hpp — one photonic dot-product lane: modulator drivers on
// both operand rails, WDM chunking, DDot detection, optional ADC readout.
//
// Two execution paths compute identical results (a property test pins
// them together):
//   * full-optics: build WdmField rails, run the Ddot device — the
//     physically faithful path;
//   * fast: use the driver's encoded amplitudes directly and accumulate
//     Σ x′_i·y′_i — valid because the DDot datapath is exact (Eq. 6),
//     so the only deviations from math come from the *encoders*.
// The fast path makes layer-scale experiments tractable; encode results
// are memoized per quantized code (the driver is deterministic).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "converters/electrical_adc.hpp"
#include "core/modulator_driver.hpp"
#include "ptc/ddot.hpp"
#include "ptc/event_counter.hpp"

namespace pdac::ptc {

struct DotEngineConfig {
  std::size_t wavelengths{8};  ///< WDM channels per DDot operation
  bool use_full_optics{false}; ///< run every chunk through the Ddot device
  bool adc_readout{false};     ///< digitize the accumulated result
  int adc_bits{8};
  double adc_full_scale{0.0};  ///< 0 = auto (vector length)
  /// Photodetector noise for dot_noisy() (ignored by the deterministic
  /// dot() path).
  photonics::NoiseConfig pd_noise{};
  /// Graceful degradation: per-wavelength health mask (non-zero = usable).
  /// Empty means all lanes healthy.  Dead lanes are skipped — operands
  /// pack onto the surviving wavelengths only, so a chunk reduces fewer
  /// elements and the same vector costs more cycles (throughput loss the
  /// event counts report honestly).
  std::vector<std::uint8_t> lane_mask{};
};

class PhotonicDotEngine {
 public:
  /// The driver must outlive the engine (it is the modulator bank).
  PhotonicDotEngine(const core::ModulatorDriver& driver, DotEngineConfig cfg);

  /// Inner product of normalized operands (|x_i|, |y_i| ≤ 1).  Events are
  /// accumulated into `ev` when non-null using the *standalone* dot
  /// convention: a lone dot product modulates both operands afresh, so
  /// each chunk charges 2·len modulation events.  (The GEMM engine
  /// instead charges modulations per tile — broadcast amortized — see
  /// gemm_engine.hpp for the reconciliation contract.)
  [[nodiscard]] double dot(std::span<const double> x, std::span<const double> y,
                           EventCounter* ev = nullptr) const;

  /// Same product through the full optical path with the configured
  /// photodetector noise drawn from `rng` — the functional companion of
  /// the SNR analysis (noise_analysis.hpp).  Applies the same ADC
  /// readout and event accounting as dot(): apart from the detector
  /// noise draw the two paths run the identical pipeline, so noise
  /// ablations compare like against like.
  [[nodiscard]] double dot_noisy(std::span<const double> x, std::span<const double> y,
                                 Rng& rng, EventCounter* ev = nullptr) const;

  /// Inner product of operands that are ALREADY encoded amplitudes (the
  /// output of encode()/encode_span()).  This is the tile-parallel GEMM
  /// engine's hot path: rows and columns are encoded once per tile
  /// stripe and broadcast, so the reduction itself performs no encoding.
  /// Counts only the reduction's own events (detection, DDot ops, MACs);
  /// modulation, ADC samples and cycle occupancy are charged by the
  /// caller, which knows the broadcast geometry.  The optional `ddot`
  /// lets each worker thread reduce through its own device instance;
  /// numerics are identical to dot() on the pre-image operands.
  /// The optional `scratch` stages the full-optics rails in caller-owned
  /// buffers so the device-graph path performs no per-dot allocation
  /// (bit-identical either way; pass one scratch per worker).
  [[nodiscard]] double dot_preencoded(std::span<const double> xe, std::span<const double> ye,
                                      EventCounter* ev = nullptr, const Ddot* ddot = nullptr,
                                      DdotScratch* scratch = nullptr) const;

  /// Encode a span of normalized values through the memoized driver LUT
  /// (out.size() must equal in.size()).  Pure and safe to call from
  /// multiple threads: the LUT is immutable after construction.
  void encode_span(std::span<const double> in, std::span<double> out) const;

  /// Same encode pass, additionally emitting each element's quantizer
  /// code as int16 — the integer tier's operand form.  Only meaningful
  /// when encode_on_quant_grid() holds (then out[i] == decode(codes[i])
  /// bitwise); the kernel's quant path requires it.
  void encode_span(std::span<const double> in, std::span<double> out,
                   std::span<std::int16_t> codes) const;

  /// True when the driver's whole encode LUT lies bitwise on the
  /// quantizer grid: lut[c] == quantizer().decode(c) for every code.
  /// This is the precondition of ExecutionPath::kKernelQuant
  /// (DESIGN.md §15): on-grid, an encoded amplitude IS its code scaled
  /// by 1/max_code, so integer dots over codes reproduce the double
  /// tiers exactly up to one final rounding.  Holds for
  /// core::BitTrueDacDriver; the ideal-DAC and P-DAC transfers are
  /// transcendental and land off-grid.
  [[nodiscard]] bool encode_on_quant_grid() const { return on_quant_grid_; }

  /// The b-bit operand quantizer the encode LUT is indexed by.
  [[nodiscard]] const converters::Quantizer& quantizer() const { return quant_; }

  /// A fresh Ddot configured like this engine's own — worker threads use
  /// one each so device objects are never shared mutably.
  [[nodiscard]] Ddot make_worker_ddot() const;

  /// The engine's own device chain — what the fused kernel (kernel.hpp)
  /// snapshots its coefficient table from.
  [[nodiscard]] const Ddot& ddot() const { return ddot_; }

  /// Encoded amplitude for a normalized value (memoized driver output).
  [[nodiscard]] double encode(double r) const;

  /// Usable wavelengths after the lane mask (== wavelengths when healthy).
  [[nodiscard]] std::size_t active_wavelengths() const { return active_lanes_.size(); }

  [[nodiscard]] const DotEngineConfig& config() const { return cfg_; }
  [[nodiscard]] const core::ModulatorDriver& driver() const { return driver_; }

 private:
  /// Digitize an accumulated readout when cfg_.adc_readout is on; `ev`
  /// (when non-null) is charged one ADC sample.
  [[nodiscard]] double apply_adc(double acc, std::size_t n, EventCounter* ev) const;

  const core::ModulatorDriver& driver_;
  DotEngineConfig cfg_;
  Ddot ddot_;
  converters::Quantizer quant_;
  std::vector<double> encode_lut_;       ///< index = code + max_code
  std::vector<std::size_t> active_lanes_; ///< channel indices operands pack onto
  bool on_quant_grid_{false};            ///< LUT == quantizer grid, bit for bit
};

}  // namespace pdac::ptc
