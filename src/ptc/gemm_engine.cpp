#include "ptc/gemm_engine.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "converters/quantizer.hpp"

namespace pdac::ptc {

PhotonicGemm::PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg)
    : cfg_(cfg),
      engine_(driver, cfg.dot),
      pool_(std::make_unique<ThreadPool>(cfg.threads)) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "PhotonicGemm: array dimensions must be positive");
  worker_ddots_.reserve(pool_->size());
  for (std::size_t w = 0; w < pool_->size(); ++w) {
    worker_ddots_.push_back(engine_.make_worker_ddot());
  }
}

GemmResult PhotonicGemm::multiply(const Matrix& a, const Matrix& b) const {
  return multiply_prepared(a, prepare_b(b));
}

PreparedOperand PhotonicGemm::prepare_b(const Matrix& b, std::uint64_t epoch) const {
  PreparedOperand pb;
  pb.rows = b.rows();
  pb.cols = b.cols();
  pb.scale = converters::max_abs_scale(b.data());
  pb.epoch = epoch;

  // Keep B column-major-friendly by transposing once, then normalize
  // into the modulators' (−1, 1) domain.
  norm_scratch_.resize(b.cols(), b.rows());
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) norm_scratch_(c, r) = b(r, c) / pb.scale;
  }

  // Amortized encoding: every B column goes through the shared encode
  // LUT exactly once, the software mirror of the hardware broadcasting
  // one modulated operand across a whole tile.  Rows are disjoint, so
  // the encode sweep is tile-parallel; encode() is a pure LUT lookup,
  // so the partitioning cannot change a single bit.
  pb.encoded = Matrix(norm_scratch_.rows(), norm_scratch_.cols());
  pool_->parallel_for(norm_scratch_.rows(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t r = begin; r < end; ++r) {
                          engine_.encode_span(norm_scratch_.row(r), pb.encoded.row(r));
                        }
                      });
  return pb;
}

GemmResult PhotonicGemm::multiply_prepared(const Matrix& a, const PreparedOperand& b) const {
  PDAC_REQUIRE(a.cols() == b.rows, "PhotonicGemm: inner dimensions must agree");
  const double a_scale = converters::max_abs_scale(a.data());
  const std::size_t k = a.cols();

  // A-side pipeline (normalize + encode), into per-engine scratch.
  norm_scratch_.resize(a.rows(), k);
  for (std::size_t i = 0; i < a.size(); ++i) norm_scratch_.data()[i] = a.data()[i] / a_scale;
  encode_scratch_.resize(a.rows(), k);
  const Matrix& ae = encode_scratch_;
  pool_->parallel_for(a.rows(), [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      engine_.encode_span(norm_scratch_.row(r), encode_scratch_.row(r));
    }
  });

  GemmResult res;
  res.a_scale = a_scale;
  res.b_scale = b.scale;
  res.c = Matrix(a.rows(), b.cols);
  const double rescale = a_scale * b.scale;

  partition_tiles_into(a.rows(), b.cols, cfg_.array_rows, cfg_.array_cols, tile_scratch_);
  const std::vector<Tile>& tiles = tile_scratch_;
  const std::size_t chunks = (k + engine_.active_wavelengths() - 1) / engine_.active_wavelengths();

  // Per-tile counters land in tile-index slots and are folded in index
  // order after the join, so accounting is deterministic at any thread
  // count (the numerics are deterministic element-wise anyway).
  event_scratch_.assign(tiles.size(), EventCounter{});

  for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t worker) {
    const Tile& tile = tiles[t];
    const Ddot& ddot = worker_ddots_[worker];
    EventCounter reduction;  // detection / ddot_ops / macs from the dots run
    for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
      for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
        res.c(i, j) = engine_.dot_preencoded(ae.row(i), b.encoded.row(j), &reduction, &ddot) * rescale;
      }
    }
    // Broadcast-amortization contract (see header): modulation, ADC and
    // cycle occupancy are tile-step quantities, not per-dot ones.  The
    // hardware modulates B columns per tile step even when the simulator
    // reuses a prepared encoding, so the charge is unconditional.
    reduction.modulation_events = (tile.rows + tile.cols) * k;
    reduction.adc_events = tile.rows * tile.cols;
    reduction.cycles = chunks;
    event_scratch_[t] = reduction;
  });

  for (const EventCounter& ev : event_scratch_) res.events += ev;
  return res;
}

EventCounter PhotonicGemm::count_events(std::size_t m, std::size_t k, std::size_t n) const {
  EventCounter ev;
  // Chunking follows the *usable* wavelengths: dead lanes fenced off by
  // the lane mask stretch every reduction over more cycles.
  const std::size_t nl = engine_.active_wavelengths();
  const std::size_t chunks = (k + nl - 1) / nl;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      // One tile step: h A-rows and w B-columns are modulated once each
      // and broadcast across the tile; every DDot reduces k elements.
      ev.modulation_events += (h + w) * k;
      ev.ddot_ops += h * w * chunks;
      ev.detection_events += h * w * chunks;
      ev.macs += h * w * k;
      ev.adc_events += h * w;
      ev.cycles += chunks;
    }
  }
  return ev;
}

}  // namespace pdac::ptc
