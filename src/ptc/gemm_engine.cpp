#include "ptc/gemm_engine.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/require.hpp"
#include "converters/quantizer.hpp"

namespace pdac::ptc {

PhotonicGemm::PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg)
    : cfg_(cfg),
      engine_(driver, cfg.dot),
      kernel_(engine_),
      pool_(std::make_unique<ThreadPool>(cfg.threads)) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "PhotonicGemm: array dimensions must be positive");
  PDAC_REQUIRE(cfg_.path != ExecutionPath::kKernelQuant || kernel_.quant_ready(),
               "PhotonicGemm: kKernelQuant requires a driver whose encode transfer lies "
               "exactly on the quantizer grid (core::BitTrueDacDriver); use "
               "nn::fastest_gemm_config to auto-select a valid path");
  worker_ddots_.reserve(pool_->size());
  for (std::size_t w = 0; w < pool_->size(); ++w) {
    worker_ddots_.push_back(engine_.make_worker_ddot());
  }
  worker_scratch_.resize(pool_->size());
}

GemmResult PhotonicGemm::multiply(const Matrix& a, const Matrix& b) const {
  return multiply_prepared(a, prepare_b(b));
}

namespace {

/// The max-abs fold of converters::max_abs_scale without its all-zero
/// fallback — the raw running maximum PreparedOperand::abs_max records so
/// appends can prove the fresh scale would come out bitwise identical.
/// std::max ignores NaN whichever side it lands on, so the fold is
/// order-independent — prepare_b and prepare_bt see the same value over
/// the transposed element order.
double raw_abs_max(std::span<const double> values) {
  double m = 0.0;
  for (const double v : values) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace

void PhotonicGemm::finish_prepare(PreparedOperand& pb) const {
  // Amortized encoding: every B column goes through the shared encode
  // LUT exactly once, the software mirror of the hardware broadcasting
  // one modulated operand across a whole tile.  Rows are disjoint, so
  // the encode sweep is tile-parallel; encode() is a pure LUT lookup,
  // so the partitioning cannot change a single bit.
  pb.encoded = Matrix(norm_scratch_.rows(), norm_scratch_.cols());
  const bool quant = cfg_.path == ExecutionPath::kKernelQuant;
  if (quant) pb.qcodes.resize(norm_scratch_.rows(), norm_scratch_.cols());
  pool_->parallel_for(norm_scratch_.rows(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t r = begin; r < end; ++r) {
                          if (quant) {
                            engine_.encode_span(norm_scratch_.row(r), pb.encoded.row(r),
                                                pb.qcodes.row(r));
                          } else {
                            engine_.encode_span(norm_scratch_.row(r), pb.encoded.row(r));
                          }
                        }
                      });

  // ABFT column checksums (abft.hpp): one digital sum of the encoded
  // columns per array-width stripe, cached with the operand so guarded
  // runs pay the O(n·k) sums once per prepare, not once per product.
  // Accumulation runs in ascending column order — the order the append
  // paths continue, which is what makes incremental checksum extension
  // floating-point-identical to this fresh build.
  if (cfg_.guard.enabled) {
    pb.checksum_stripe = cfg_.array_cols;
    const std::size_t stripes = (pb.cols + cfg_.array_cols - 1) / cfg_.array_cols;
    pb.checksum = Matrix(stripes, pb.rows);
    std::fill(pb.checksum.data().begin(), pb.checksum.data().end(), 0.0);
    for (std::size_t j = 0; j < pb.cols; ++j) {
      const auto src = pb.encoded.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = 0; p < pb.rows; ++p) dst[p] += src[p];
    }
  }
}

PreparedOperand PhotonicGemm::prepare_b(const Matrix& b, std::uint64_t epoch) const {
  PreparedOperand pb;
  pb.rows = b.rows();
  pb.cols = b.cols();
  pb.abs_max = raw_abs_max(b.data());
  pb.scale = pb.abs_max > 0.0 ? pb.abs_max : 1.0;  // == converters::max_abs_scale
  pb.epoch = epoch;

  // Keep B column-major-friendly by transposing once, then normalize
  // into the modulators' (−1, 1) domain.
  norm_scratch_.resize(b.cols(), b.rows());
  for (std::size_t r = 0; r < b.rows(); ++r) {
    for (std::size_t c = 0; c < b.cols(); ++c) norm_scratch_(c, r) = b(r, c) / pb.scale;
  }
  finish_prepare(pb);
  return pb;
}

PreparedOperand PhotonicGemm::prepare_bt(const Matrix& bt, std::uint64_t epoch) const {
  PreparedOperand pb;
  pb.rows = bt.cols();
  pb.cols = bt.rows();
  pb.abs_max = raw_abs_max(bt.data());
  pb.scale = pb.abs_max > 0.0 ? pb.abs_max : 1.0;
  pb.epoch = epoch;

  // Already in Bᵀ orientation: normalize straight into the staging
  // buffer.  Same per-element divide as prepare_b, same multiset under
  // the max-abs fold, so the result is bitwise the prepare_b of the
  // transposed source.
  norm_scratch_.resize(bt.rows(), bt.cols());
  for (std::size_t i = 0; i < bt.size(); ++i) {
    norm_scratch_.data()[i] = bt.data()[i] / pb.scale;
  }
  finish_prepare(pb);
  return pb;
}

bool PhotonicGemm::append_bt_rows(PreparedOperand& pb, const Matrix& bt,
                                  std::uint64_t epoch) const {
  const bool quant = cfg_.path == ExecutionPath::kKernelQuant;
  // Refuse anything the bit-identity proof does not cover: stale epoch,
  // shrunk/mismatched source, faults-layer operands (channel packing and
  // golden references are GuardedBackend's to extend), an operand whose
  // reduction axis was ever padded (mixed-axis growth), or tier/guard
  // staging that disagrees with this engine's config.
  if (pb.epoch != epoch || !pb.channels.empty() || pb.reference.size() > 0) return false;
  if (pb.rows == 0 || pb.rows != bt.cols() || pb.cols > bt.rows()) return false;
  if (pb.encoded.rows() != pb.cols || pb.encoded.cols() != pb.rows) return false;
  if (quant) {
    if (pb.qcodes.rows() != pb.cols || pb.qcodes.cols() != pb.rows) return false;
  } else if (pb.qcodes.size() > 0) {
    return false;
  }
  if (cfg_.guard.enabled) {
    if (pb.checksum_stripe != cfg_.array_cols || pb.checksum.cols() != pb.rows) return false;
  } else if (pb.checksum.size() > 0) {
    return false;
  }
  const std::size_t old_n = pb.cols;
  const std::size_t new_n = bt.rows();
  if (new_n == old_n) return true;

  // Scale stability: the fresh prepare of the full source folds the new
  // elements into the max — bit-identity needs them at or under the
  // recorded raw max.  NaN-safe: !(x <= y) also rejects NaN deltas.
  double dmax = 0.0;
  for (std::size_t j = old_n; j < new_n; ++j) {
    dmax = std::max(dmax, raw_abs_max(bt.row(j)));
  }
  if (!(dmax <= pb.abs_max)) return false;

  const std::size_t k = pb.rows;
  const std::size_t delta = new_n - old_n;
  norm_scratch_.resize(delta, k);
  for (std::size_t r = 0; r < delta; ++r) {
    const auto src = bt.row(old_n + r);
    const auto dst = norm_scratch_.row(r);
    for (std::size_t p = 0; p < k; ++p) dst[p] = src[p] / pb.scale;
  }

  // Row append: Matrix::resize preserves every existing row when the
  // column count is unchanged, so only the new rows are encoded.
  pb.encoded.resize(new_n, k);
  if (quant) pb.qcodes.resize(new_n, k);
  pool_->parallel_for(delta, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      if (quant) {
        engine_.encode_span(norm_scratch_.row(r), pb.encoded.row(old_n + r),
                            pb.qcodes.row(old_n + r));
      } else {
        engine_.encode_span(norm_scratch_.row(r), pb.encoded.row(old_n + r));
      }
    }
  });

  if (cfg_.guard.enabled) {
    // Continue the per-stripe running sums exactly where the fresh build
    // would: existing stripe rows already hold the ascending-j partial
    // sums through old_n, new stripe rows start from zero.
    const std::size_t stripes = (new_n + cfg_.array_cols - 1) / cfg_.array_cols;
    const std::size_t old_stripes = pb.checksum.rows();
    pb.checksum.resize(stripes, k);
    for (std::size_t s = old_stripes; s < stripes; ++s) {
      const auto row = pb.checksum.row(s);
      std::fill(row.begin(), row.end(), 0.0);
    }
    for (std::size_t j = old_n; j < new_n; ++j) {
      const auto src = pb.encoded.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = 0; p < k; ++p) dst[p] += src[p];
    }
  }
  pb.cols = new_n;
  return true;
}

bool PhotonicGemm::append_b_rows(PreparedOperand& pb, const Matrix& b,
                                 std::uint64_t epoch) const {
  const bool quant = cfg_.path == ExecutionPath::kKernelQuant;
  if (pb.epoch != epoch || !pb.channels.empty() || pb.reference.size() > 0) return false;
  if (pb.rows == 0 || pb.cols == 0 || pb.cols != b.cols() || pb.rows > b.rows()) return false;
  if (pb.encoded.rows() != pb.cols || pb.encoded.cols() < pb.rows) return false;
  if (quant && (pb.qcodes.rows() != pb.cols || pb.qcodes.cols() != pb.encoded.cols())) {
    return false;
  }
  if (!quant && pb.qcodes.size() > 0) return false;
  if (cfg_.guard.enabled &&
      (pb.checksum_stripe != cfg_.array_cols || pb.checksum.cols() != pb.encoded.cols())) {
    return false;
  }
  if (!cfg_.guard.enabled && pb.checksum.size() > 0) return false;
  const std::size_t old_k = pb.rows;
  const std::size_t new_k = b.rows();
  if (new_k == old_k) return true;

  double dmax = 0.0;
  for (std::size_t r = old_k; r < new_k; ++r) {
    dmax = std::max(dmax, raw_abs_max(b.row(r)));
  }
  if (!(dmax <= pb.abs_max)) return false;

  const std::size_t n = pb.cols;
  const std::size_t delta = new_k - old_k;
  // The reduction axis lives along matrix columns: appends land in
  // physical column capacity grown geometrically, with consumers bounded
  // by the logical length (PreparedOperand shape contract).
  grow_col_capacity(pb.encoded, new_k);
  if (quant) grow_col_capacity(pb.qcodes, new_k);

  // Stage the new elements of each Bᵀ row (n rows × delta new columns).
  norm_scratch_.resize(n, delta);
  for (std::size_t j = 0; j < n; ++j) {
    const auto dst = norm_scratch_.row(j);
    for (std::size_t p = 0; p < delta; ++p) dst[p] = b(old_k + p, j) / pb.scale;
  }
  pool_->parallel_for(n, [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      const auto enc = pb.encoded.row(r).subspan(old_k, delta);
      if (quant) {
        engine_.encode_span(norm_scratch_.row(r), enc, pb.qcodes.row(r).subspan(old_k, delta));
      } else {
        engine_.encode_span(norm_scratch_.row(r), enc);
      }
    }
  });

  if (cfg_.guard.enabled) {
    // New checksum columns only: each is a fresh ascending-j sum over its
    // stripe, the exact order finish_prepare uses — the old columns'
    // sums are untouched.
    grow_col_capacity(pb.checksum, new_k);
    for (std::size_t s = 0; s < pb.checksum.rows(); ++s) {
      const auto row = pb.checksum.row(s);
      for (std::size_t p = old_k; p < new_k; ++p) row[p] = 0.0;
    }
    for (std::size_t j = 0; j < n; ++j) {
      const auto src = pb.encoded.row(j);
      const auto dst = pb.checksum.row(j / cfg_.array_cols);
      for (std::size_t p = old_k; p < new_k; ++p) dst[p] += src[p];
    }
  }
  pb.rows = new_k;
  return true;
}

GemmResult PhotonicGemm::multiply_prepared(const Matrix& a, const PreparedOperand& b) const {
  PDAC_REQUIRE(a.cols() == b.rows, "PhotonicGemm: inner dimensions must agree");
  const bool guarded = cfg_.guard.enabled;
  if (guarded) {
    PDAC_REQUIRE(b.checksum_stripe == cfg_.array_cols &&
                     b.checksum.rows() == (b.cols + cfg_.array_cols - 1) / cfg_.array_cols,
                 "PhotonicGemm: guarded execution needs an operand prepared under the same "
                 "guarded config (prepare_b with guard.enabled)");
  }
  const bool quant = cfg_.path == ExecutionPath::kKernelQuant;
  if (quant) {
    // >= on the reduction axis: appended operands may carry physical
    // column-capacity padding past the logical length (PreparedOperand
    // shape contract); every kernel loop below is bounded by b.rows.
    PDAC_REQUIRE(b.qcodes.rows() == b.cols && b.qcodes.cols() >= b.rows,
                 "PhotonicGemm: quant execution needs an operand prepared under the quant "
                 "path (prepare_b with ExecutionPath::kKernelQuant)");
  }
  const double a_scale = converters::max_abs_scale(a.data());
  const std::size_t k = a.cols();

  // A-side pipeline (normalize + encode), into per-engine scratch; the
  // quant path captures each element's code alongside its amplitude.
  norm_scratch_.resize(a.rows(), k);
  for (std::size_t i = 0; i < a.size(); ++i) norm_scratch_.data()[i] = a.data()[i] / a_scale;
  encode_scratch_.resize(a.rows(), k);
  const Matrix& ae = encode_scratch_;
  if (quant) qcode_scratch_.resize(a.rows(), k);
  pool_->parallel_for(a.rows(), [&](std::size_t begin, std::size_t end, std::size_t) {
    for (std::size_t r = begin; r < end; ++r) {
      if (quant) {
        engine_.encode_span(norm_scratch_.row(r), encode_scratch_.row(r),
                            qcode_scratch_.row(r));
      } else {
        engine_.encode_span(norm_scratch_.row(r), encode_scratch_.row(r));
      }
    }
  });

  GemmResult res;
  res.a_scale = a_scale;
  res.b_scale = b.scale;
  res.c = Matrix(a.rows(), b.cols);
  const double rescale = a_scale * b.scale;

  partition_tiles_into(a.rows(), b.cols, cfg_.array_rows, cfg_.array_cols, tile_scratch_);
  const std::vector<Tile>& tiles = tile_scratch_;
  const std::size_t chunks = (k + engine_.active_wavelengths() - 1) / engine_.active_wavelengths();

  // Per-tile counters land in tile-index slots and are folded in index
  // order after the join, so accounting is deterministic at any thread
  // count (the numerics are deterministic element-wise anyway).
  event_scratch_.assign(tiles.size(), EventCounter{});

  // Guard setup: build the A row-stripe checksums (Σ_i x′_i per
  // array_rows-high stripe) once per product.  References compare
  // against the *golden* encodings — b.reference when the operand
  // carries a calibration-state snapshot (faults layer), b.encoded
  // otherwise (the immutable healthy path, where they coincide).
  const Matrix& bref = (guarded && b.reference.size() > 0) ? b.reference : b.encoded;
  if (guarded) {
    const std::size_t row_stripes = (a.rows() + cfg_.array_rows - 1) / cfg_.array_rows;
    xsum_scratch_.resize(row_stripes, k);
    std::fill(xsum_scratch_.data().begin(), xsum_scratch_.data().end(), 0.0);
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const auto src = ae.row(i);
      const auto dst = xsum_scratch_.row(i / cfg_.array_rows);
      for (std::size_t p = 0; p < k; ++p) dst[p] += src[p];
    }
    check_scratch_.assign(tiles.size(), TileCheck{});
  }

  const ExecutionPath path = cfg_.path;
  for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t worker) {
    const Tile& tile = tiles[t];
    EventCounter reduction;  // detection / ddot_ops / macs from the dots run
    // Raw (pre-rescale) tile sums for the checksum comparison; tiny and
    // tile-local, so the allocation stays off the unguarded path.
    std::vector<double> rsum, csum;
    if (guarded) {
      rsum.assign(tile.rows, 0.0);
      csum.assign(tile.cols, 0.0);
    }
    if (path == ExecutionPath::kKernel) {
      // Fused flat-array kernel: the whole tile in one pass, raw sums
      // accumulated in the same order as the device-graph loop below.
      kernel_.run_tile(tile, ae, b.encoded, rescale, res.c, &reduction,
                       guarded ? rsum.data() : nullptr, guarded ? csum.data() : nullptr);
    } else if (path == ExecutionPath::kKernelSimd) {
      // SIMD fast tier: tolerance-banded vs the scalar kernel, event
      // charges identical; the guard below runs on it unchanged.
      kernel_.run_tile_fast(tile, ae, b.encoded, rescale, res.c, &reduction,
                            guarded ? rsum.data() : nullptr, guarded ? csum.data() : nullptr);
    } else if (path == ExecutionPath::kKernelQuant) {
      // Integer tier: the same quadratic form over exact int16 code dots
      // (run_tile_quant); the guard below still compares the raw sums
      // against the double references, band unchanged.
      kernel_.run_tile_quant(tile, qcode_scratch_, b.qcodes, rescale, res.c, &reduction,
                             guarded ? rsum.data() : nullptr, guarded ? csum.data() : nullptr);
    } else {
      const Ddot& ddot = worker_ddots_[worker];
      DdotScratch& scratch = worker_scratch_[worker];
      for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
        for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
          // first(k) strips any column-capacity padding off the prepared
          // row — the device path takes equal-length spans.
          const double raw = engine_.dot_preencoded(ae.row(i), b.encoded.row(j).first(k),
                                                    &reduction, &ddot, &scratch);
          res.c(i, j) = raw * rescale;
          if (guarded) {
            rsum[i - tile.row0] += raw;
            csum[j - tile.col0] += raw;
          }
        }
      }
    }
    // Broadcast-amortization contract (see header): modulation, ADC and
    // cycle occupancy are tile-step quantities, not per-dot ones.  The
    // hardware modulates B columns per tile step even when the simulator
    // reuses a prepared encoding, so the charge is unconditional.
    reduction.modulation_events = (tile.rows + tile.cols) * k;
    reduction.adc_events = tile.rows * tile.cols;
    reduction.cycles = chunks;
    event_scratch_[t] = reduction;

    if (guarded) {
      TileCheck check;
      check.tile = t;
      // The deterministic band scales with the raw dot magnitudes, which
      // |x′·y′| ≤ 1 per element bounds by k.
      const double mag = static_cast<double>(k);
      const double tol_row = guard_tolerance(cfg_.guard, k, tile.cols, mag);
      const double tol_col = guard_tolerance(cfg_.guard, k, tile.rows, mag);
      const auto note = [&check](double residual, double tol) {
        // NaN residuals must read as mismatches, never as "in band".
        if (std::isnan(residual) || residual > check.worst_residual) {
          check.worst_residual = residual;
          check.tolerance = tol;
        }
        if (std::isnan(residual) || residual > tol) check.ok = false;
      };
      // Row lanes: Σ_j tile(i,j) vs ⟨golden x′_i, cached Σ_j y′_j⟩.
      const auto ysum = b.checksum.row(tile.col0 / cfg_.array_cols);
      for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
        const auto xr = ae.row(i);
        double ref = 0.0;
        for (std::size_t p = 0; p < k; ++p) ref += xr[p] * ysum[p];
        note(std::abs(rsum[i - tile.row0] - ref), tol_row);
      }
      // Column lanes: Σ_i tile(i,j) vs ⟨Σ_i x′_i, golden y′_j⟩.
      const auto xsum = xsum_scratch_.row(tile.row0 / cfg_.array_rows);
      for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
        const auto yr = bref.row(j);
        double ref = 0.0;
        for (std::size_t p = 0; p < k; ++p) ref += xsum[p] * yr[p];
        note(std::abs(csum[j - tile.col0] - ref), tol_col);
      }
      check_scratch_[t] = check;
    }
  });

  for (const EventCounter& ev : event_scratch_) res.events += ev;

  if (guarded) {
    res.guard.enabled = true;
    res.guard.tiles_checked = tiles.size();
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      const TileCheck& check = check_scratch_[t];
      if (!check.ok) {
        ++res.guard.mismatched_tiles;
        if (res.guard.first_mismatch == static_cast<std::size_t>(-1)) res.guard.first_mismatch = t;
      }
      // NaN-safe fold: a NaN tile residual must stick as the product's
      // worst, not vanish under an ordinary comparison.
      if (std::isnan(check.worst_residual) || check.worst_residual > res.guard.worst_residual) {
        res.guard.worst_residual = check.worst_residual;
        res.guard.worst_tolerance = check.tolerance;
      }
      res.guard.checksum_events += checksum_lane_events(tiles[t].rows, tiles[t].cols, k, chunks);
    }
  }
  return res;
}

EventCounter PhotonicGemm::count_events(std::size_t m, std::size_t k, std::size_t n) const {
  EventCounter ev;
  // Chunking follows the *usable* wavelengths: dead lanes fenced off by
  // the lane mask stretch every reduction over more cycles.
  const std::size_t nl = engine_.active_wavelengths();
  const std::size_t chunks = (k + nl - 1) / nl;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      // One tile step: h A-rows and w B-columns are modulated once each
      // and broadcast across the tile; every DDot reduces k elements.
      ev.modulation_events += (h + w) * k;
      ev.ddot_ops += h * w * chunks;
      ev.detection_events += h * w * chunks;
      ev.macs += h * w * k;
      ev.adc_events += h * w;
      ev.cycles += chunks;
    }
  }
  return ev;
}

}  // namespace pdac::ptc
