#include "ptc/gemm_engine.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "converters/quantizer.hpp"

namespace pdac::ptc {

PhotonicGemm::PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg)
    : cfg_(cfg), engine_(driver, cfg.dot) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "PhotonicGemm: array dimensions must be positive");
}

GemmResult PhotonicGemm::multiply(const Matrix& a, const Matrix& b) const {
  PDAC_REQUIRE(a.cols() == b.rows(), "PhotonicGemm: inner dimensions must agree");
  const double a_scale = converters::max_abs_scale(a.data());
  const double b_scale = converters::max_abs_scale(b.data());

  // Normalize operands into the modulators' (−1, 1) domain.
  Matrix an(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  // Keep B column-major-friendly by transposing once.
  Matrix bt = b.transposed();
  for (auto& v : bt.data()) v /= b_scale;

  GemmResult res;
  res.a_scale = a_scale;
  res.b_scale = b_scale;
  res.c = Matrix(a.rows(), b.cols());
  const double rescale = a_scale * b_scale;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      res.c(i, j) = engine_.dot(an.row(i), bt.row(j)) * rescale;
    }
  }
  res.events = count_events(a.rows(), a.cols(), b.cols());
  return res;
}

EventCounter PhotonicGemm::count_events(std::size_t m, std::size_t k, std::size_t n) const {
  EventCounter ev;
  // Chunking follows the *usable* wavelengths: dead lanes fenced off by
  // the lane mask stretch every reduction over more cycles.
  const std::size_t nl = engine_.active_wavelengths();
  const std::size_t chunks = (k + nl - 1) / nl;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      // One tile step: h A-rows and w B-columns are modulated once each
      // and broadcast across the tile; every DDot reduces k elements.
      ev.modulation_events += (h + w) * k;
      ev.ddot_ops += h * w * chunks;
      ev.detection_events += h * w * chunks;
      ev.macs += h * w * k;
      ev.adc_events += h * w;
      ev.cycles += chunks;
    }
  }
  return ev;
}

}  // namespace pdac::ptc
