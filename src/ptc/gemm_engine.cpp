#include "ptc/gemm_engine.hpp"

#include <algorithm>
#include <vector>

#include "common/require.hpp"
#include "converters/quantizer.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::ptc {

PhotonicGemm::PhotonicGemm(const core::ModulatorDriver& driver, GemmConfig cfg)
    : cfg_(cfg),
      engine_(driver, cfg.dot),
      pool_(std::make_unique<ThreadPool>(cfg.threads)) {
  PDAC_REQUIRE(cfg_.array_rows >= 1 && cfg_.array_cols >= 1,
               "PhotonicGemm: array dimensions must be positive");
}

GemmResult PhotonicGemm::multiply(const Matrix& a, const Matrix& b) const {
  PDAC_REQUIRE(a.cols() == b.rows(), "PhotonicGemm: inner dimensions must agree");
  const double a_scale = converters::max_abs_scale(a.data());
  const double b_scale = converters::max_abs_scale(b.data());
  const std::size_t k = a.cols();

  // Normalize operands into the modulators' (−1, 1) domain.
  Matrix an(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) an.data()[i] = a.data()[i] / a_scale;
  // Keep B column-major-friendly by transposing once.
  Matrix bt = b.transposed();
  for (auto& v : bt.data()) v /= b_scale;

  // Amortized encoding: every A row and B column goes through the shared
  // encode LUT exactly once, the software mirror of the hardware
  // broadcasting one modulated operand across a whole tile.  Rows are
  // disjoint, so the encode sweep itself is tile-parallel too.
  Matrix ae(an.rows(), k);
  Matrix be(bt.rows(), k);
  pool_->parallel_for(an.rows() + bt.rows(),
                      [&](std::size_t begin, std::size_t end, std::size_t) {
                        for (std::size_t r = begin; r < end; ++r) {
                          if (r < an.rows()) {
                            engine_.encode_span(an.row(r), ae.row(r));
                          } else {
                            engine_.encode_span(bt.row(r - an.rows()), be.row(r - an.rows()));
                          }
                        }
                      });

  GemmResult res;
  res.a_scale = a_scale;
  res.b_scale = b_scale;
  res.c = Matrix(a.rows(), b.cols());
  const double rescale = a_scale * b_scale;

  const std::vector<Tile> tiles =
      partition_tiles(a.rows(), b.cols(), cfg_.array_rows, cfg_.array_cols);
  const std::size_t chunks = (k + engine_.active_wavelengths() - 1) / engine_.active_wavelengths();

  // One Ddot per worker slot: device objects are never shared mutably.
  std::vector<Ddot> worker_ddots;
  worker_ddots.reserve(pool_->size());
  for (std::size_t w = 0; w < pool_->size(); ++w) worker_ddots.push_back(engine_.make_worker_ddot());

  // Per-tile counters land in tile-index slots and are folded in index
  // order after the join, so accounting is deterministic at any thread
  // count (the numerics are deterministic element-wise anyway).
  std::vector<EventCounter> tile_events(tiles.size());

  for_each_tile(*pool_, tiles, [&](std::size_t t, std::size_t worker) {
    const Tile& tile = tiles[t];
    const Ddot& ddot = worker_ddots[worker];
    EventCounter reduction;  // detection / ddot_ops / macs from the dots run
    for (std::size_t i = tile.row0; i < tile.row0 + tile.rows; ++i) {
      for (std::size_t j = tile.col0; j < tile.col0 + tile.cols; ++j) {
        res.c(i, j) = engine_.dot_preencoded(ae.row(i), be.row(j), &reduction, &ddot) * rescale;
      }
    }
    // Broadcast-amortization contract (see header): modulation, ADC and
    // cycle occupancy are tile-step quantities, not per-dot ones.
    reduction.modulation_events = (tile.rows + tile.cols) * k;
    reduction.adc_events = tile.rows * tile.cols;
    reduction.cycles = chunks;
    tile_events[t] = reduction;
  });

  for (const EventCounter& ev : tile_events) res.events += ev;
  return res;
}

EventCounter PhotonicGemm::count_events(std::size_t m, std::size_t k, std::size_t n) const {
  EventCounter ev;
  // Chunking follows the *usable* wavelengths: dead lanes fenced off by
  // the lane mask stretch every reduction over more cycles.
  const std::size_t nl = engine_.active_wavelengths();
  const std::size_t chunks = (k + nl - 1) / nl;
  for (std::size_t i0 = 0; i0 < m; i0 += cfg_.array_rows) {
    const std::size_t h = std::min(cfg_.array_rows, m - i0);
    for (std::size_t j0 = 0; j0 < n; j0 += cfg_.array_cols) {
      const std::size_t w = std::min(cfg_.array_cols, n - j0);
      // One tile step: h A-rows and w B-columns are modulated once each
      // and broadcast across the tile; every DDot reduces k elements.
      ev.modulation_events += (h + w) * k;
      ev.ddot_ops += h * w * chunks;
      ev.detection_events += h * w * chunks;
      ev.macs += h * w * k;
      ev.adc_events += h * w;
      ev.cycles += chunks;
    }
  }
  return ev;
}

}  // namespace pdac::ptc
