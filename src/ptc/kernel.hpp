// kernel.hpp — fused amplitude-domain compute kernel for the GEMM hot
// path (DESIGN.md §13).
//
// The device graph (Ddot: phase shifter → coupler → balanced detectors)
// is the authoritative physical model, but its inner loop carries costs
// that exist only in software: WdmField construction per chunk, complex
// arithmetic on purely real operand amplitudes, and per-element dispatch
// through device objects.  P-DAC's own contribution is replacing exact
// per-element machinery with a cheap closed form; the same move applies
// here.  At construction the kernel snapshots each lane's effective
// real-valued transfer — phase-shifter factor, coupler split (t, j·κ),
// PD responsivity×scale and dark current, with fenced lanes dropped from
// the packing — into a flat per-lane coefficient table, then executes
// encode → couple → detect → differential readout for whole tiles as one
// pass over contiguous double arrays.
//
// Bit-identity contract (fuzz-pinned by tests/test_kernel.cpp): the
// kernel replays the device graph's exact floating-point operation
// sequence — the naive complex-multiply expansions the library evaluates
// (including the ps_re·0.0-style terms that keep signed zeros honest),
// per-chunk intensity sums in ascending channel order, detector affine
// transfer, per-chunk differential accumulation, and the same ADC
// round-trip — so outputs AND event counts equal the device-graph path
// bit for bit at any thread count, clean or degraded.  Inactive (fenced
// or past-the-ragged-edge) channels contribute exactly +0.0 to both
// photocurrents in the device graph, and every partial intensity sum is
// non-negative, so skipping them cannot change a single bit.
//
// Staleness: a kernel is a snapshot.  PhotonicGemm's engine is immutable
// after construction, so its kernel never goes stale; the faults layer,
// whose lane transfers mutate, keys its own coefficient tables on the
// LaneBank epoch instead (faults/lane_table.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "ptc/ddot.hpp"
#include "ptc/dot_engine.hpp"
#include "ptc/event_counter.hpp"
#include "ptc/tile_scheduler.hpp"

namespace pdac::ptc {

/// Effective real-amplitude transfer of one DDot lane, exactly as the
/// device graph evaluates it on (x, 0)/(y, 0) operand amplitudes.
struct LaneTransfer {
  double ps_re{};  ///< phase-shifter factor, real part
  double ps_im{};  ///< phase-shifter factor, imaginary part
  double t{};      ///< coupler transmission
  double jk_re{};  ///< j·κ as the coupler evaluates it, real part
  double jk_im{};  ///< j·κ, imaginary part (= κ)
};

/// Affine transfer of the balanced detector pair: I± = gain±·ΣI + dark±.
struct DetectorTransfer {
  double gain_plus{1.0};
  double dark_plus{0.0};
  double gain_minus{1.0};
  double dark_minus{0.0};
};

class FusedKernel {
 public:
  /// Snapshot an engine's whole datapath: device transfers from its Ddot,
  /// lane packing from its lane mask, ADC behavior from its config.
  explicit FusedKernel(const PhotonicDotEngine& engine);

  /// Snapshot a standalone device chain (unit tests, custom devices).
  FusedKernel(const Ddot& ddot, const DotEngineConfig& cfg);

  /// Fused dot over pre-encoded amplitudes; bit-identical to
  /// PhotonicDotEngine::dot_preencoded, event charges included
  /// (detection/ddot per chunk, macs per element — modulation, ADC
  /// samples and cycles stay the caller's tile-level charge).
  [[nodiscard]] double dot(std::span<const double> xe, std::span<const double> ye,
                           EventCounter* ev = nullptr) const;

  /// One whole output tile in a single pass: every (i, j) dot of
  /// ae[tile rows] × be[tile cols], ADC-rounded, rescaled into `c`.
  /// When `rsum`/`csum` are non-null (ABFT-guarded products) the raw
  /// post-ADC dot values are accumulated per tile row/column in the same
  /// order as the device-graph loop.  `ev` receives the reduction events
  /// of every dot executed.
  void run_tile(const Tile& tile, const Matrix& ae, const Matrix& be, double rescale,
                Matrix& c, EventCounter* ev = nullptr, double* rsum = nullptr,
                double* csum = nullptr) const;

  /// SIMD fast tier of run_tile (ExecutionPath::kKernelSimd).  Same
  /// signature, same event charges field for field, same rsum/csum
  /// accumulation order — but tolerance-banded instead of bit-exact:
  /// the reduction is reassociated through common/simd.hpp blocking and,
  /// under full optics, the per-element physics is collapsed into its
  /// closed quadratic form (see the derivation in kernel.cpp), so raw
  /// values differ from the scalar tier by O(ε·k·|x||y|) — inside the
  /// ABFT guard band that multiply_prepared applies unchanged.
  void run_tile_fast(const Tile& tile, const Matrix& ae, const Matrix& be, double rescale,
                     Matrix& c, EventCounter* ev = nullptr, double* rsum = nullptr,
                     double* csum = nullptr) const;

  /// Integer tier of run_tile (ExecutionPath::kKernelQuant, DESIGN.md
  /// §15).  Operands are int16 quantizer codes; valid only when
  /// quant_ready() — the engine's encode LUT lies bitwise on the
  /// quantizer grid, so an encoded amplitude IS code/max_code and every
  /// Σx², Σy², Σxy of the quadratic form is an EXACT integer sum
  /// (common/simd.hpp dot_i16 family, int16×int16 → int64).  The scale
  /// 1/max_code² and the dark-current term are applied once in double at
  /// readout, so each raw value carries a single rounding instead of the
  /// double tiers' per-element chains — the same O(ε·k) reassociation
  /// family the guard band absorbs.  Event charges, ADC round-trip and
  /// rsum/csum order are field-for-field identical to run_tile; the
  /// integer sums themselves are ISA-independent (exact), so this tier's
  /// raw values are identical bits on every machine.
  void run_tile_quant(const Tile& tile, const CodeMatrix& aq, const CodeMatrix& bq,
                      double rescale, Matrix& c, EventCounter* ev = nullptr,
                      double* rsum = nullptr, double* csum = nullptr) const;

  /// True when run_tile_quant is usable: the kernel was snapshotted from
  /// an engine whose encode LUT is exactly the quantizer grid (e.g. a
  /// core::BitTrueDacDriver engine).  Off-grid drivers (ideal DAC,
  /// P-DAC) leave this false and callers fall back to the double tiers.
  [[nodiscard]] bool quant_ready() const { return quant_ready_; }

  [[nodiscard]] std::size_t active_wavelengths() const { return lanes_.size(); }
  [[nodiscard]] const std::vector<LaneTransfer>& lane_table() const { return lanes_; }
  [[nodiscard]] const DetectorTransfer& detector() const { return det_; }

 private:
  [[nodiscard]] double reduce(std::span<const double> xe, std::span<const double> ye) const;
  [[nodiscard]] double apply_adc(double acc, std::size_t n) const;

  /// One coefficient row per active (un-fenced) wavelength, in packing
  /// order — the flat table the inner loop streams.
  std::vector<LaneTransfer> lanes_;
  DetectorTransfer det_{};
  bool full_optics_{false};
  bool adc_{false};
  int adc_bits_{8};
  double adc_full_scale_{0.0};
  /// Integer-tier state: certified on-grid encode LUT + the operand
  /// quantizer's max code (code → amplitude is code/max_code_).
  bool quant_ready_{false};
  std::int32_t max_code_{127};
};

}  // namespace pdac::ptc
