#include "ptc/noise_analysis.hpp"

#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "ptc/ddot.hpp"

namespace pdac::ptc {

SnrReport measure_ddot_snr(const SnrConfig& cfg) {
  PDAC_REQUIRE(cfg.amplitude_scale > 0.0, "measure_ddot_snr: amplitude scale positive");
  PDAC_REQUIRE(cfg.trials >= 10, "measure_ddot_snr: need at least 10 trials");

  photonics::PhotodetectorConfig pd_cfg;
  pd_cfg.noise = cfg.noise;
  const Ddot noisy_ddot(photonics::PhaseShifter::minus_90(),
                        photonics::DirectionalCoupler::fifty_fifty(),
                        photonics::Photodetector(pd_cfg), photonics::Photodetector(pd_cfg));

  Rng rng(cfg.seed);
  const double s = cfg.amplitude_scale;
  const double norm = 1.0 / (s * s);  // detected currents scale with s²

  stats::Running signal, noise;
  for (int t = 0; t < cfg.trials; ++t) {
    photonics::DualRail rails{photonics::WdmField(cfg.wavelengths),
                              photonics::WdmField(cfg.wavelengths)};
    double clean = 0.0;
    for (std::size_t i = 0; i < cfg.wavelengths; ++i) {
      const double x = rng.uniform(-1.0, 1.0);
      const double y = rng.uniform(-1.0, 1.0);
      clean += x * y;
      rails.upper.set_amplitude(i, photonics::Complex{s * x, 0.0});
      rails.lower.set_amplitude(i, photonics::Complex{s * y, 0.0});
    }
    const double measured = noisy_ddot.compute_noisy(rails, rng).value() * norm;
    signal.add(clean);
    noise.add(measured - clean);
  }

  SnrReport rep;
  rep.signal_rms = std::sqrt(signal.variance() + signal.mean() * signal.mean());
  rep.noise_rms = std::sqrt(noise.variance() + noise.mean() * noise.mean());
  if (rep.noise_rms <= 0.0) {
    rep.snr_db = 200.0;  // effectively noiseless
  } else {
    rep.snr_db = 20.0 * std::log10(rep.signal_rms / rep.noise_rms);
  }
  rep.effective_bits = (rep.snr_db - 1.76) / 6.02;
  return rep;
}

double required_amplitude_scale(double target_bits, const SnrConfig& base,
                                double max_scale) {
  PDAC_REQUIRE(target_bits > 0.0, "required_amplitude_scale: target must be positive");
  auto enob_at = [&](double scale) {
    SnrConfig cfg = base;
    cfg.amplitude_scale = scale;
    return measure_ddot_snr(cfg).effective_bits;
  };
  double lo = 1e-3, hi = max_scale;
  if (enob_at(hi) < target_bits) return 0.0;
  if (enob_at(lo) >= target_bits) return lo;
  for (int iter = 0; iter < 40; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (enob_at(mid) >= target_bits) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace pdac::ptc
