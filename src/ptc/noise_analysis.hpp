// noise_analysis.hpp — detection SNR and effective resolution (ENOB) of
// the DDot readout under photodetector noise.
//
// The architecture model scales laser power with operand precision
// (power_params.hpp); this module supplies the physics behind that knob:
// for a given carrier amplitude (∝ √laser power per channel) and PD
// noise processes, Monte-Carlo-measure the SNR of the balanced DDot
// readout and convert it to effective bits, ENOB = (SNR_dB − 1.76)/6.02.
// Scaling laws this makes visible:
//   thermal-noise-limited: value noise ∝ 1/s² → +1 ENOB per laser-power
//     doubling,
//   shot-noise-limited:    value noise ∝ 1/s  → +1 ENOB per laser-power
//     *quadrupling*.
// The A8 bench compares these against the (milder) laser scaling the
// paper's own Fig. 11 numbers imply.
#pragma once

#include <cstdint>

#include "photonics/photodetector.hpp"

namespace pdac::ptc {

struct SnrConfig {
  std::size_t wavelengths{8};
  /// Field-amplitude scale applied to both operand rails; laser power per
  /// channel scales as the square of this.
  double amplitude_scale{1.0};
  photonics::NoiseConfig noise{};
  int trials{4000};
  std::uint64_t seed{1};
};

struct SnrReport {
  double signal_rms{};      ///< RMS of the noiseless dot-product values
  double noise_rms{};       ///< RMS of (noisy − noiseless) readouts
  double snr_db{};          ///< 20·log10(signal_rms / noise_rms)
  double effective_bits{};  ///< ENOB
};

/// Monte-Carlo SNR of the DDot readout: random operand vectors in
/// [−1, 1]^λ, fields scaled by `amplitude_scale`, detected with the
/// configured noise, then normalized back to value units.
SnrReport measure_ddot_snr(const SnrConfig& cfg);

/// Smallest amplitude scale whose measured ENOB reaches `target_bits`
/// (bisection over measure_ddot_snr; returns 0 if unreachable within
/// `max_scale`).
double required_amplitude_scale(double target_bits, const SnrConfig& base,
                                double max_scale = 1024.0);

}  // namespace pdac::ptc
