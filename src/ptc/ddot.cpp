#include "ptc/ddot.hpp"

#include "common/require.hpp"

namespace pdac::ptc {

Ddot::Ddot()
    : ps_(photonics::PhaseShifter::minus_90()),
      dc_(photonics::DirectionalCoupler::fifty_fifty()),
      pd_plus_(),
      pd_minus_() {}

Ddot::Ddot(photonics::PhaseShifter ps, photonics::DirectionalCoupler dc,
           photonics::Photodetector pd_plus, photonics::Photodetector pd_minus)
    : ps_(ps), dc_(dc), pd_plus_(pd_plus), pd_minus_(pd_minus) {}

DdotReading Ddot::compute(const photonics::DualRail& rails) const {
  PDAC_REQUIRE(rails.upper.channels() == rails.lower.channels(),
               "Ddot: rails must carry the same channel count");
  photonics::DualRail staged{rails.upper, ps_.apply(rails.lower)};
  const photonics::DualRail coupled = dc_.couple(staged);
  return DdotReading{pd_plus_.detect(coupled.upper), pd_minus_.detect(coupled.lower)};
}

DdotReading Ddot::compute_masked(const photonics::DualRail& rails,
                                 std::span<const std::uint8_t> mask) const {
  PDAC_REQUIRE(mask.size() >= rails.upper.channels(),
               "Ddot: mask must cover every rail channel");
  photonics::DualRail fenced{photonics::WdmField(rails.upper.channels()),
                             photonics::WdmField(rails.lower.channels())};
  for (std::size_t ch = 0; ch < rails.upper.channels(); ++ch) {
    if (mask[ch] == 0u) continue;
    fenced.upper.set_amplitude(ch, rails.upper.amplitude(ch));
    fenced.lower.set_amplitude(ch, rails.lower.amplitude(ch));
  }
  return compute(fenced);
}

DdotReading Ddot::compute(std::span<const double> x, std::span<const double> y) const {
  PDAC_REQUIRE(x.size() == y.size(), "Ddot: operand length mismatch");
  photonics::DualRail rails{photonics::WdmField(x.size()), photonics::WdmField(y.size())};
  for (std::size_t i = 0; i < x.size(); ++i) {
    rails.upper.set_amplitude(i, photonics::Complex{x[i], 0.0});
    rails.lower.set_amplitude(i, photonics::Complex{y[i], 0.0});
  }
  return compute(rails);
}

DdotReading Ddot::compute_noisy(const photonics::DualRail& rails, Rng& rng) const {
  photonics::DualRail staged{rails.upper, ps_.apply(rails.lower)};
  const photonics::DualRail coupled = dc_.couple(staged);
  return DdotReading{pd_plus_.detect_noisy(coupled.upper, rng),
                     pd_minus_.detect_noisy(coupled.lower, rng)};
}

}  // namespace pdac::ptc
