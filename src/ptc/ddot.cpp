#include "ptc/ddot.hpp"

#include "common/require.hpp"

namespace pdac::ptc {

namespace {

void resize_field(photonics::WdmField& f, std::size_t channels) {
  if (f.channels() != channels) f.amplitudes().resize(channels);
}

}  // namespace

Ddot::Ddot()
    : ps_(photonics::PhaseShifter::minus_90()),
      dc_(photonics::DirectionalCoupler::fifty_fifty()),
      pd_plus_(),
      pd_minus_() {}

Ddot::Ddot(photonics::PhaseShifter ps, photonics::DirectionalCoupler dc,
           photonics::Photodetector pd_plus, photonics::Photodetector pd_minus)
    : ps_(ps), dc_(dc), pd_plus_(pd_plus), pd_minus_(pd_minus) {}

DdotReading Ddot::compute(const photonics::DualRail& rails) const {
  PDAC_REQUIRE(rails.upper.channels() == rails.lower.channels(),
               "Ddot: rails must carry the same channel count");
  photonics::DualRail staged{rails.upper, ps_.apply(rails.lower)};
  const photonics::DualRail coupled = dc_.couple(staged);
  return DdotReading{pd_plus_.detect(coupled.upper), pd_minus_.detect(coupled.lower)};
}

DdotReading Ddot::compute(const photonics::DualRail& rails, DdotScratch& scratch) const {
  PDAC_REQUIRE(rails.upper.channels() == rails.lower.channels(),
               "Ddot: rails must carry the same channel count");
  const std::size_t n = rails.upper.channels();
  resize_field(scratch.shifted, n);
  resize_field(scratch.coupled.upper, n);
  resize_field(scratch.coupled.lower, n);
  // Same per-channel device evaluations as the allocating overload: the
  // upper rail passes through untouched, so coupling directly against the
  // source upper amplitudes skips only a verbatim copy.
  auto& sh = scratch.shifted.amplitudes();
  auto& cu = scratch.coupled.upper.amplitudes();
  auto& cl = scratch.coupled.lower.amplitudes();
  const auto& up = rails.upper.amplitudes();
  const auto& lo = rails.lower.amplitudes();
  for (std::size_t ch = 0; ch < n; ++ch) sh[ch] = ps_.apply(lo[ch]);
  for (std::size_t ch = 0; ch < n; ++ch) {
    const auto [u, l] = dc_.couple(up[ch], sh[ch]);
    cu[ch] = u;
    cl[ch] = l;
  }
  return DdotReading{pd_plus_.detect(scratch.coupled.upper),
                     pd_minus_.detect(scratch.coupled.lower)};
}

DdotReading Ddot::compute_masked(const photonics::DualRail& rails,
                                 std::span<const std::uint8_t> mask) const {
  DdotScratch scratch;
  return compute_masked(rails, mask, scratch);
}

DdotReading Ddot::compute_masked(const photonics::DualRail& rails,
                                 std::span<const std::uint8_t> mask,
                                 DdotScratch& scratch) const {
  PDAC_REQUIRE(mask.size() >= rails.upper.channels(),
               "Ddot: mask must cover every rail channel");
  const std::size_t n = rails.upper.channels();
  resize_field(scratch.rails.upper, n);
  resize_field(scratch.rails.lower, rails.lower.channels());
  auto& up = scratch.rails.upper.amplitudes();
  auto& lo = scratch.rails.lower.amplitudes();
  for (std::size_t ch = 0; ch < n; ++ch) {
    if (mask[ch] == 0u) {
      up[ch] = photonics::Complex{0.0, 0.0};
      lo[ch] = photonics::Complex{0.0, 0.0};
    } else {
      up[ch] = rails.upper.amplitude(ch);
      lo[ch] = rails.lower.amplitude(ch);
    }
  }
  return compute(scratch.rails, scratch);
}

DdotReading Ddot::compute(std::span<const double> x, std::span<const double> y) const {
  DdotScratch scratch;
  return compute(x, y, scratch);
}

DdotReading Ddot::compute(std::span<const double> x, std::span<const double> y,
                          DdotScratch& scratch) const {
  PDAC_REQUIRE(x.size() == y.size(), "Ddot: operand length mismatch");
  resize_field(scratch.rails.upper, x.size());
  resize_field(scratch.rails.lower, y.size());
  auto& up = scratch.rails.upper.amplitudes();
  auto& lo = scratch.rails.lower.amplitudes();
  for (std::size_t i = 0; i < x.size(); ++i) {
    up[i] = photonics::Complex{x[i], 0.0};
    lo[i] = photonics::Complex{y[i], 0.0};
  }
  return compute(scratch.rails, scratch);
}

DdotReading Ddot::compute_noisy(const photonics::DualRail& rails, Rng& rng) const {
  photonics::DualRail staged{rails.upper, ps_.apply(rails.lower)};
  const photonics::DualRail coupled = dc_.couple(staged);
  return DdotReading{pd_plus_.detect_noisy(coupled.upper, rng),
                     pd_minus_.detect_noisy(coupled.lower, rng)};
}

}  // namespace pdac::ptc
