// event_counter.hpp — hardware event accounting for the tensor core.
//
// The functional simulator counts every energy-bearing event while it
// computes; the architecture model (src/arch) later prices those events.
// Keeping counting separate from pricing lets the same functional run be
// evaluated under DAC-based and P-DAC-based cost models.
#pragma once

#include <cstdint>

namespace pdac::ptc {

struct EventCounter {
  std::uint64_t modulation_events{};  ///< operand values imprinted on carriers
  std::uint64_t detection_events{};   ///< balanced-PD readouts (one per DDot op)
  std::uint64_t adc_events{};         ///< output samples digitized
  std::uint64_t ddot_ops{};           ///< WDM dot-product chunk operations
  std::uint64_t macs{};               ///< multiply–accumulates performed
  std::uint64_t cycles{};             ///< occupancy cycles on the array

  EventCounter& operator+=(const EventCounter& o) {
    modulation_events += o.modulation_events;
    detection_events += o.detection_events;
    adc_events += o.adc_events;
    ddot_ops += o.ddot_ops;
    macs += o.macs;
    cycles += o.cycles;
    return *this;
  }
  friend EventCounter operator+(EventCounter a, const EventCounter& b) { return a += b; }
};

}  // namespace pdac::ptc
