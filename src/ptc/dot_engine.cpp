#include "ptc/dot_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::ptc {

namespace {

Ddot build_ddot(const DotEngineConfig& cfg) {
  photonics::PhotodetectorConfig pd;
  pd.noise = cfg.pd_noise;
  return Ddot(photonics::PhaseShifter::minus_90(),
              photonics::DirectionalCoupler::fifty_fifty(),
              photonics::Photodetector(pd), photonics::Photodetector(pd));
}

}  // namespace

PhotonicDotEngine::PhotonicDotEngine(const core::ModulatorDriver& driver, DotEngineConfig cfg)
    : driver_(driver),
      cfg_(cfg),
      ddot_(build_ddot(cfg)),
      quant_(driver.bits()) {
  PDAC_REQUIRE(cfg_.wavelengths >= 1, "PhotonicDotEngine: at least one wavelength");
  PDAC_REQUIRE(cfg_.lane_mask.empty() || cfg_.lane_mask.size() == cfg_.wavelengths,
               "PhotonicDotEngine: lane mask must cover every wavelength");
  for (std::size_t ch = 0; ch < cfg_.wavelengths; ++ch) {
    if (cfg_.lane_mask.empty() || cfg_.lane_mask[ch] != 0u) active_lanes_.push_back(ch);
  }
  PDAC_REQUIRE(!active_lanes_.empty(),
               "PhotonicDotEngine: lane mask leaves no usable wavelength");
  // Drivers are deterministic functions of the quantized code, so the
  // whole encoder transfer curve fits in a (2^b − 1)-entry table.
  const std::int32_t mc = quant_.max_code();
  encode_lut_.resize(static_cast<std::size_t>(2 * mc + 1));
  on_quant_grid_ = true;
  for (std::int32_t c = -mc; c <= mc; ++c) {
    const double amp = driver_.encode(quant_.decode(c));
    encode_lut_[static_cast<std::size_t>(c + mc)] = amp;
    // Exact-grid probe for the integer tier: the amplitude must BE the
    // code's decode, bit for bit, for every code.
    if (amp != quant_.decode(c)) on_quant_grid_ = false;
  }
}

Ddot PhotonicDotEngine::make_worker_ddot() const { return build_ddot(cfg_); }

double PhotonicDotEngine::encode(double r) const {
  const std::int32_t code = quant_.encode(math::clamp_unit(r));
  return encode_lut_[static_cast<std::size_t>(code + quant_.max_code())];
}

void PhotonicDotEngine::encode_span(std::span<const double> in, std::span<double> out) const {
  PDAC_REQUIRE(in.size() == out.size(), "PhotonicDotEngine: encode_span size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = encode(in[i]);
}

void PhotonicDotEngine::encode_span(std::span<const double> in, std::span<double> out,
                                    std::span<std::int16_t> codes) const {
  PDAC_REQUIRE(in.size() == out.size() && in.size() == codes.size(),
               "PhotonicDotEngine: encode_span size mismatch");
  const std::int32_t mc = quant_.max_code();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::int32_t code = quant_.encode(math::clamp_unit(in[i]));
    out[i] = encode_lut_[static_cast<std::size_t>(code + mc)];
    codes[i] = static_cast<std::int16_t>(code);
  }
}

double PhotonicDotEngine::apply_adc(double acc, std::size_t n, EventCounter* ev) const {
  if (!cfg_.adc_readout) return acc;
  const double fs =
      cfg_.adc_full_scale > 0.0 ? cfg_.adc_full_scale : static_cast<double>(std::max<std::size_t>(n, 1));
  converters::ElectricalAdcConfig ac;
  ac.bits = cfg_.adc_bits;
  ac.v_ref = fs;
  const converters::ElectricalAdc adc(ac);
  if (ev != nullptr) ev->adc_events += 1;
  return adc.sample_to_voltage(acc);
}

double PhotonicDotEngine::dot(std::span<const double> x, std::span<const double> y,
                              EventCounter* ev) const {
  PDAC_REQUIRE(x.size() == y.size(), "PhotonicDotEngine: operand length mismatch");
  const std::size_t n = x.size();
  // Operands pack onto the surviving wavelengths only; with dead lanes a
  // chunk reduces fewer elements, so the same vector takes more chunks.
  const std::size_t nl = active_lanes_.size();

  double acc = 0.0;
  std::size_t chunks = 0;
  for (std::size_t base = 0; base < n; base += nl, ++chunks) {
    const std::size_t len = std::min(nl, n - base);
    if (cfg_.use_full_optics) {
      photonics::DualRail rails{photonics::WdmField(cfg_.wavelengths),
                                photonics::WdmField(cfg_.wavelengths)};
      for (std::size_t i = 0; i < len; ++i) {
        const std::size_t ch = active_lanes_[i];
        rails.upper.set_amplitude(ch, photonics::Complex{encode(x[base + i]), 0.0});
        rails.lower.set_amplitude(ch, photonics::Complex{encode(y[base + i]), 0.0});
      }
      acc += ddot_.compute(rails).value();
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        acc += encode(x[base + i]) * encode(y[base + i]);
      }
    }
    if (ev != nullptr) {
      ev->modulation_events += 2 * len;
      ev->detection_events += 1;
      ev->ddot_ops += 1;
      ev->macs += len;
    }
  }

  acc = apply_adc(acc, n, ev);
  if (ev != nullptr) ev->cycles += chunks;
  return acc;
}

double PhotonicDotEngine::dot_preencoded(std::span<const double> xe, std::span<const double> ye,
                                         EventCounter* ev, const Ddot* ddot,
                                         DdotScratch* scratch) const {
  PDAC_REQUIRE(xe.size() == ye.size(), "PhotonicDotEngine: operand length mismatch");
  const std::size_t n = xe.size();
  const std::size_t nl = active_lanes_.size();
  const Ddot& dev = ddot != nullptr ? *ddot : ddot_;

  double acc = 0.0;
  for (std::size_t base = 0; base < n; base += nl) {
    const std::size_t len = std::min(nl, n - base);
    if (cfg_.use_full_optics) {
      if (scratch != nullptr) {
        // Caller-owned rails: overwrite every channel (inactive ones back
        // to exact +0) instead of constructing fresh fields per chunk —
        // the same amplitudes the allocating path stages.
        auto& up = scratch->rails.upper.amplitudes();
        auto& lo = scratch->rails.lower.amplitudes();
        up.assign(cfg_.wavelengths, photonics::Complex{0.0, 0.0});
        lo.assign(cfg_.wavelengths, photonics::Complex{0.0, 0.0});
        for (std::size_t i = 0; i < len; ++i) {
          const std::size_t ch = active_lanes_[i];
          up[ch] = photonics::Complex{xe[base + i], 0.0};
          lo[ch] = photonics::Complex{ye[base + i], 0.0};
        }
        acc += dev.compute(scratch->rails, *scratch).value();
      } else {
        photonics::DualRail rails{photonics::WdmField(cfg_.wavelengths),
                                  photonics::WdmField(cfg_.wavelengths)};
        for (std::size_t i = 0; i < len; ++i) {
          const std::size_t ch = active_lanes_[i];
          rails.upper.set_amplitude(ch, photonics::Complex{xe[base + i], 0.0});
          rails.lower.set_amplitude(ch, photonics::Complex{ye[base + i], 0.0});
        }
        acc += dev.compute(rails).value();
      }
    } else {
      for (std::size_t i = 0; i < len; ++i) {
        acc += xe[base + i] * ye[base + i];
      }
    }
    if (ev != nullptr) {
      ev->detection_events += 1;
      ev->ddot_ops += 1;
      ev->macs += len;
    }
  }
  // ADC quantization is applied for numeric fidelity, but the sample is
  // charged by the caller (tile-level accounting), never here.
  return apply_adc(acc, n, nullptr);
}

double PhotonicDotEngine::dot_noisy(std::span<const double> x, std::span<const double> y,
                                    Rng& rng, EventCounter* ev) const {
  PDAC_REQUIRE(x.size() == y.size(), "PhotonicDotEngine: operand length mismatch");
  const std::size_t n = x.size();
  const std::size_t nl = active_lanes_.size();
  double acc = 0.0;
  std::size_t chunks = 0;
  for (std::size_t base = 0; base < n; base += nl, ++chunks) {
    const std::size_t len = std::min(nl, n - base);
    photonics::DualRail rails{photonics::WdmField(cfg_.wavelengths),
                              photonics::WdmField(cfg_.wavelengths)};
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t ch = active_lanes_[i];
      rails.upper.set_amplitude(ch, photonics::Complex{encode(x[base + i]), 0.0});
      rails.lower.set_amplitude(ch, photonics::Complex{encode(y[base + i]), 0.0});
    }
    acc += ddot_.compute_noisy(rails, rng).value();
    if (ev != nullptr) {
      ev->modulation_events += 2 * len;
      ev->detection_events += 1;
      ev->ddot_ops += 1;
      ev->macs += len;
    }
  }
  acc = apply_adc(acc, n, ev);
  if (ev != nullptr) ev->cycles += chunks;
  return acc;
}

}  // namespace pdac::ptc
