#include "core/multi_segment_approx.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

MultiSegmentArccos::MultiSegmentArccos(std::vector<double> nodes)
    : nodes_(std::move(nodes)) {
  PDAC_REQUIRE(nodes_.size() >= 2, "MultiSegmentArccos: need at least two nodes");
  PDAC_REQUIRE(nodes_.front() == 0.0 && nodes_.back() == 1.0,
               "MultiSegmentArccos: nodes must span [0, 1]");
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    PDAC_REQUIRE(nodes_[i] > nodes_[i - 1], "MultiSegmentArccos: nodes must increase");
  }
  pieces_.reserve(nodes_.size() - 1);
  for (std::size_t i = 0; i + 1 < nodes_.size(); ++i) {
    const double x0 = nodes_[i];
    const double x1 = nodes_[i + 1];
    const double y0 = std::acos(x0);
    const double y1 = std::acos(x1);
    const double slope = (y1 - y0) / (x1 - x0);
    pieces_.push_back(LinearPiece{x0, x1, slope, y0 - slope * x0});
  }
}

MultiSegmentArccos MultiSegmentArccos::from_nodes(std::vector<double> nodes) {
  return MultiSegmentArccos(std::move(nodes));
}

MultiSegmentArccos MultiSegmentArccos::uniform(std::size_t segments) {
  PDAC_REQUIRE(segments >= 1, "MultiSegmentArccos: at least one segment");
  return MultiSegmentArccos(
      math::linspace(0.0, 1.0, segments + 1));
}

MultiSegmentArccos MultiSegmentArccos::optimized(std::size_t segments, int rounds) {
  PDAC_REQUIRE(segments >= 1, "MultiSegmentArccos: at least one segment");
  std::vector<double> nodes = math::linspace(0.0, 1.0, segments + 1);
  if (segments == 1) return MultiSegmentArccos(std::move(nodes));

  auto objective = [](const std::vector<double>& ns) {
    return MultiSegmentArccos(std::vector<double>(ns)).max_decode_error();
  };
  // Coordinate descent: refine one interior node at a time with a
  // golden-section search between its neighbours.
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 1; i + 1 < nodes.size(); ++i) {
      const double lo = nodes[i - 1] + 1e-4;
      const double hi = nodes[i + 1] - 1e-4;
      auto slice = [&](double x) {
        std::vector<double> trial = nodes;
        trial[i] = x;
        return objective(trial);
      };
      nodes[i] = math::golden_section_minimize(slice, lo, hi, 1e-6).x;
    }
  }
  return MultiSegmentArccos(std::move(nodes));
}

double MultiSegmentArccos::eval(double r) const {
  r = math::clamp_unit(r);
  const double a = std::abs(r);
  // Binary search for the piece containing |r|.
  const auto it = std::upper_bound(nodes_.begin(), nodes_.end(), a);
  const std::size_t idx =
      std::min<std::size_t>(pieces_.size() - 1,
                            static_cast<std::size_t>(
                                std::max<std::ptrdiff_t>(0, it - nodes_.begin() - 1)));
  const double phase = pieces_[idx].eval(a);
  // arccos(−r) = π − arccos(r); same identity holds for the chords.
  return r >= 0.0 ? phase : math::kPi - phase;
}

double MultiSegmentArccos::decoded(double r) const { return std::cos(eval(r)); }

double MultiSegmentArccos::decode_error(double r, double floor) const {
  return math::relative_error(decoded(r), math::clamp_unit(r), floor);
}

double MultiSegmentArccos::max_decode_error(double lo) const {
  auto err = [this](double r) { return decode_error(r); };
  return math::dense_maximize(err, lo, 1.0, 2048).value;
}

}  // namespace pdac::core
