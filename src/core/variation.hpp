// variation.hpp — Monte-Carlo robustness analysis of the P-DAC under
// fabrication/runtime variation.
//
// The paper's error analysis assumes ideal components.  A real P-DAC
// adds device variation on top of the 8.5 % approximation bound:
//   * TIA gain mismatch      — each binary-weighted gain off by N(0, σ_g)
//     relative error (process variation in the feedback network),
//   * bias/reference drift   — the segment bias voltage off by N(0, σ_b)
//     radians of equivalent phase,
//   * MZM splitting imbalance — the Eq. 3 k factor drawn from N(0, σ_k),
//   * Vπ drift               — thermal drift scaling every drive phase by
//     (1 + N(0, σ_v)).
// This module samples P-DAC instances, evaluates the worst-case and mean
// encode error over the full code space for each, and reports the
// distribution plus parametric yield against an error budget.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "core/fault_hook.hpp"
#include "core/pdac.hpp"
#include "core/tia_weights.hpp"
#include "photonics/mzm.hpp"

namespace pdac::core {

struct VariationConfig {
  double tia_gain_sigma{0.0};      ///< relative σ per TIA weight
  double bias_sigma{0.0};          ///< absolute σ on each bank bias [rad]
  double mzm_imbalance_sigma{0.0}; ///< σ of the MZM splitting imbalance k
  double vpi_drift_sigma{0.0};     ///< relative σ on the drive-phase scale
  std::uint64_t seed{1};
};

/// Per-instance outcome of one Monte-Carlo draw.
struct VariationSample {
  /// Max relative encode error over all codes, with the denominator
  /// floored at 5 % of full scale (matching sweep_encode_error) so that
  /// additive drift on near-zero codes does not read as unbounded error.
  double worst_error{};
  double mean_abs_error{};  ///< mean |encode − ideal| over all codes
};

struct VariationReport {
  std::vector<VariationSample> samples;
  stats::Running worst_error;
  stats::Running mean_abs_error;

  /// Fraction of sampled devices whose worst-case error stays within
  /// `error_budget` (parametric yield).
  [[nodiscard]] double yield(double error_budget) const;
  /// p-quantile of the worst-case error across devices (q in [0, 1]).
  [[nodiscard]] double worst_error_quantile(double q) const;
};

/// One fabricated-instance model: the nominal program with Gaussian
/// perturbations applied to every TIA weight, every bank bias, the MZM
/// imbalance and the drive-phase scale.  Exposed publicly so the
/// trimming routine (trimming.hpp) can calibrate it the way production
/// test would: by observing encode_code() only.
class PerturbedPdacModel {
 public:
  PerturbedPdacModel(const PdacConfig& cfg, const VariationConfig& var, Rng& rng);

  /// The observable: E_out/E_in for a code through the perturbed device.
  [[nodiscard]] double encode_code(std::int32_t code) const;

  /// Worst floored-relative encode error over the full code space.
  [[nodiscard]] double worst_error() const;
  /// Mean |encode − ideal| over the full code space.
  [[nodiscard]] double mean_abs_error() const;

  /// Trim interface: adjust a bank's weights/bias by the given deltas
  /// (what a per-bank gain-trim DAC would do in hardware).
  void apply_correction(Segment seg, const std::vector<double>& delta_weights,
                        double delta_bias);

  /// Runtime-fault overlay (fault_hook.hpp).  The default hook is the
  /// identity; encode_code() consults it on every evaluation, so the
  /// fault injector can impose/clear faults without forking the model.
  void set_fault_hook(const PdacFaultHook& hook) { fault_hook_ = hook; }
  void clear_fault_hook() { fault_hook_ = PdacFaultHook{}; }
  [[nodiscard]] const PdacFaultHook& fault_hook() const { return fault_hook_; }

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] const SegmentedTiaProgram& nominal_program() const {
    return nominal_program_;
  }
  [[nodiscard]] const TiaWeightBank& bank(Segment seg) const;

 private:
  [[nodiscard]] TiaWeightBank& bank_mutable(Segment seg);

  SegmentedTiaProgram nominal_program_;
  std::array<TiaWeightBank, 3> banks_;  ///< negative, middle, positive
  photonics::Mzm mzm_;
  PdacFaultHook fault_hook_{};
  double phase_scale_{1.0};
  int bits_;
  converters::Quantizer quant_;
};

/// Draw `trials` perturbed P-DAC instances and characterize each.
VariationReport monte_carlo_pdac(const PdacConfig& nominal, const VariationConfig& var,
                                 int trials);

/// Sign-magnitude-encoded counterpart of PerturbedPdacModel (see
/// SignMagnitudeTiaProgram): nominal behaviour is identical, but gain
/// mismatch is not amplified by two's-complement bit cancellation.
class PerturbedSignMagnitudeModel {
 public:
  PerturbedSignMagnitudeModel(const PdacConfig& cfg, const VariationConfig& var, Rng& rng);

  [[nodiscard]] double encode_code(std::int32_t code) const;
  [[nodiscard]] double worst_error() const;
  [[nodiscard]] double mean_abs_error() const;
  [[nodiscard]] int bits() const { return bits_; }

 private:
  SignMagnitudeTiaProgram program_;
  photonics::Mzm mzm_;
  double phase_scale_{1.0};
  int bits_;
  converters::Quantizer quant_;
};

/// Monte-Carlo characterization of the sign-magnitude variant — the
/// encoding ablation companion of monte_carlo_pdac.
VariationReport monte_carlo_sign_magnitude(const PdacConfig& nominal,
                                           const VariationConfig& var, int trials);

}  // namespace pdac::core
