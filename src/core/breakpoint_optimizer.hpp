// breakpoint_optimizer.hpp — numerical search for the optimal segment
// breakpoint k (paper Eq. 17, "after running the program to find the
// optimal k value … k ≈ 0.7236").
//
// This module *is* that program: it evaluates the integrated relative
// decode error of the 3-segment approximation as a function of k and
// minimizes it (dense scan + golden-section refinement).  The Fig. 8
// bench prints the resulting k*, the paper value, and the error curve.
#pragma once

#include <vector>

namespace pdac::core {

struct BreakpointSearchResult {
  double k_star{};            ///< argmin of the Eq. 17 objective
  double objective{};         ///< integrated relative error at k*
  double max_decode_error{};  ///< worst-case decode error at k* (paper: 8.5 %)
  int evaluations{};          ///< number of objective evaluations
};

/// One sample of the objective landscape (for plotting / the bench table).
struct BreakpointSample {
  double k{};
  double objective{};
  double max_decode_error{};
};

class BreakpointOptimizer {
 public:
  /// Search k ∈ [lo, hi] (defaults cover the whole open interval).
  BreakpointSearchResult optimize(double lo = 0.05, double hi = 0.95) const;

  /// Evaluate the Eq. 17 objective at a single k.
  double objective(double k) const;

  /// Sample the landscape at `n` evenly spaced breakpoints.
  std::vector<BreakpointSample> sweep(double lo, double hi, std::size_t n) const;
};

}  // namespace pdac::core
