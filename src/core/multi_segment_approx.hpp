// multi_segment_approx.hpp — generalization of the paper's 3-segment
// arccos program to N linear segments per half-domain.
//
// The paper stops at three segments (one comparator pair); a natural
// design question is how decode error trades against comparator/weight-
// bank count.  This module builds chord interpolants of arccos over
// node sets on [0, 1], extends them to [−1, 0) via the arccos symmetry
// f(−r) = π − f(r), and optimizes node placement to minimize the
// worst-case decode error.  Every piece is linear in r, so the same TIA
// weight compiler (tia_weights.hpp) can realize any member of this
// family in hardware; the added cost is one magnitude comparator per
// extra node.
//
// Relation to the paper's instance: Eq. 18 uses the *tangent* at r = 0
// for the middle piece and a chord to (1, 0) outside; a 2-segment chord
// program with an optimized interior node lands at a very similar error
// (the A2 bench prints both).
#pragma once

#include <cstddef>
#include <vector>

#include "core/arccos_approx.hpp"

namespace pdac::core {

class MultiSegmentArccos {
 public:
  /// Chord interpolant through (n_i, arccos(n_i)) for the given nodes.
  /// Nodes must be strictly increasing, start at 0 and end at 1.
  static MultiSegmentArccos from_nodes(std::vector<double> nodes);

  /// `segments` equal-width pieces on [0, 1].
  static MultiSegmentArccos uniform(std::size_t segments);

  /// Interior nodes placed by coordinate descent to minimize the
  /// worst-case decode error |cos(f(r)) − r| / |r|.
  static MultiSegmentArccos optimized(std::size_t segments, int rounds = 24);

  /// Phase for r ∈ [−1, 1] (clamped outside).
  [[nodiscard]] double eval(double r) const;
  /// cos(f(r)): the value the optics produce.
  [[nodiscard]] double decoded(double r) const;
  [[nodiscard]] double decode_error(double r, double floor = 1e-9) const;
  [[nodiscard]] double max_decode_error(double lo = 1e-3) const;

  /// Pieces on the positive half (the negative half is the symmetric
  /// image and shares hardware up to a sign/bias swap).
  [[nodiscard]] const std::vector<LinearPiece>& pieces() const { return pieces_; }
  [[nodiscard]] std::size_t segments() const { return pieces_.size(); }
  [[nodiscard]] const std::vector<double>& nodes() const { return nodes_; }

  /// Hardware cost proxies for the A2 ablation table.
  [[nodiscard]] std::size_t weight_banks() const { return 2 * segments() - 1; }
  [[nodiscard]] std::size_t comparators() const { return 2 * (segments() - 1); }

 private:
  explicit MultiSegmentArccos(std::vector<double> nodes);

  std::vector<double> nodes_;        ///< 0 = n₀ < … < n_k = 1
  std::vector<LinearPiece> pieces_;  ///< chord i covers [n_i, n_{i+1}]
};

}  // namespace pdac::core
