// trimming.hpp — post-fabrication calibration of a perturbed P-DAC.
//
// The A6 Monte-Carlo analysis (variation.hpp) shows that untrimmed gain
// mismatch and Vπ drift quickly erode the 8.5 % approximation bound.
// Binary-weighted electrical DACs solve the same problem with gain
// trimming; this module does the photonic equivalent *using only the
// device's observable output*:
//
//   1. probe: drive a set of codes per segment and measure E_out/E_in;
//   2. invert: phase = arccos(measured) — unique because the drive phase
//      lives in [0, π];
//   3. fit: the phase is linear in the code bits, so least squares over
//      the probes recovers the *effective* weights and bias of each bank
//      (Vπ drift folds into the estimate as a common scale and is
//      corrected for free; MZM imbalance is quadrature and invisible,
//      which is fine because it never affected the encoding);
//   4. correct: apply (nominal − estimated) to the bank gains.
#pragma once

#include "core/variation.hpp"

namespace pdac::core {

struct TrimmingConfig {
  /// Probe codes per weight bank; must be ≥ bits + 1 (the unknown count).
  /// More probes average measurement noise; the default gives 2× cover.
  int probes_per_bank{0};  ///< 0 = auto (2·(bits + 1))
  /// Roll the corrections back when the fit fails (see TrimResult::
  /// fit_failed), leaving the device in its pre-trim state instead of a
  /// corrupted one.  The fault-recovery self-test enables this so an
  /// unrecoverable lane is left no worse than it was found.
  bool revert_on_failure{false};
};

struct TrimResult {
  int probes_used{};
  double worst_error_before{};
  double worst_error_after{};
  double mean_abs_error_before{};
  double mean_abs_error_after{};
  /// True when the post-trim worst error exceeds the pre-trim worst
  /// error: the least-squares fit was corrupted because the observable no
  /// longer responds linearly to the code (e.g. a stuck MRR or dead
  /// receive PD).  Such a lane is not recoverable by gain trimming; the
  /// self-test loop (faults/self_test.hpp) treats this as "lane dead".
  bool fit_failed{false};
};

/// Calibrate `device` in place; returns before/after error metrics.
TrimResult trim_pdac(PerturbedPdacModel& device, const TrimmingConfig& cfg = {});

}  // namespace pdac::core
