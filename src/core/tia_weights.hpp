// tia_weights.hpp — compiling a linear phase function into TIA weights
// (paper §III-C closing remark: "the function in (18) is now linear,
// allowing us to easily assign the TIAs' weights").
//
// A b-bit two's-complement code c represents r = c / (2^{b−1} − 1).  For
// a linear segment f(r) = a·r + c₀ the MZM drive voltage decomposes over
// the code bits:
//   V′₁ = a·(Σ_i ±2^i·bit_i) / (2^{b−1} − 1) + c₀
//       = Σ_i w_i·bit_i + bias,   w_i = ±a·2^i/(2^{b−1}−1),  bias = c₀
// so each TIA's gain is w_i and the bias is realized by the reference
// voltage.  The 3-segment program holds one weight bank per segment and
// a pair of magnitude comparators ("leq" logic in the paper) that pick
// the active bank from the code's top bits.
#pragma once

#include <cstdint>
#include <vector>

#include "converters/oe_interface.hpp"
#include "core/arccos_approx.hpp"

namespace pdac::core {

/// TIA weights + bias realizing one linear piece at a given bit width.
struct TiaWeightBank {
  std::vector<double> weights;  ///< per bit, LSB first, MSB negative
  double bias{};
  Segment segment{Segment::kMiddle};
};

/// Build the weight bank for an arbitrary linear piece.
TiaWeightBank compile_linear_piece(const LinearPiece& piece, Segment seg, int bits);

/// The complete 3-bank program for a piecewise approximation.
class SegmentedTiaProgram {
 public:
  SegmentedTiaProgram(const PiecewiseLinearArccos& approx, int bits);

  [[nodiscard]] int bits() const { return bits_; }
  /// Code threshold equivalent to the breakpoint: |code| > threshold
  /// selects an outer bank.
  [[nodiscard]] std::int32_t breakpoint_code() const { return k_code_; }

  /// Which bank a signed code selects (the comparator logic).
  [[nodiscard]] Segment select(std::int32_t code) const;

  [[nodiscard]] const TiaWeightBank& bank(Segment s) const;

  /// Drive phase for a code: bias + Σ w_i·bit_i of the selected bank —
  /// evaluated exactly as the analog hardware would sum it.
  [[nodiscard]] double drive_phase(std::int32_t code) const;

  /// OE-interface configuration implementing one bank (for wiring the
  /// program into the photonic receive path).
  [[nodiscard]] converters::OeInterfaceConfig oe_config(Segment s) const;

 private:
  int bits_;
  std::int32_t max_code_;
  std::int32_t k_code_;
  TiaWeightBank negative_;
  TiaWeightBank middle_;
  TiaWeightBank positive_;
};

/// Alternative bit encoding: sign-magnitude instead of two's complement.
///
/// Motivation (see the A6 variation study): in two's complement a small
/// negative code sets *many* bits whose large weights nearly cancel, so
/// TIA gain mismatch is amplified by the cancellation ratio.  In
/// sign-magnitude the b−1 magnitude bits sum proportionally to |r| (no
/// cancellation) and the sign bit selects a mirrored bank realizing
/// f(r) = π − f(|r|) (the arccos symmetry).  Both programs compute the
/// identical nominal function; they differ only in variation robustness
/// and in needing a sign-select mux instead of an MSB weight.
class SignMagnitudeTiaProgram {
 public:
  /// One bank: weights over the b−1 magnitude bits plus a bias.
  struct Bank {
    std::vector<double> weights;
    double bias{};
  };

  SignMagnitudeTiaProgram(const PiecewiseLinearArccos& approx, int bits);

  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] std::int32_t breakpoint_code() const { return k_code_; }

  /// Drive phase for a signed code, evaluated as the hardware would:
  /// the |code| comparator picks middle/outer, the sign bit picks the
  /// mirrored bank, the magnitude bits sum through the weights.
  [[nodiscard]] double drive_phase(std::int32_t code) const;

  /// Bank accessor: (outer?, negative?) → the four programmed banks.
  [[nodiscard]] const Bank& bank(bool outer, bool negative) const;
  Bank& bank_mutable(bool outer, bool negative);

 private:
  int bits_;
  std::int32_t max_code_;
  std::int32_t k_code_;
  Bank banks_[2][2];  ///< [outer][negative]
};

}  // namespace pdac::core
