#include "core/breakpoint_optimizer.hpp"

#include "common/math_utils.hpp"
#include "common/require.hpp"
#include "core/arccos_approx.hpp"

namespace pdac::core {

double BreakpointOptimizer::objective(double k) const {
  return PiecewiseLinearArccos::with_breakpoint(k).integrated_error();
}

BreakpointSearchResult BreakpointOptimizer::optimize(double lo, double hi) const {
  PDAC_REQUIRE(lo > 0.0 && hi < 1.0 && lo < hi, "BreakpointOptimizer: range inside (0, 1)");
  int evals = 0;
  auto f = [this, &evals](double k) {
    ++evals;
    return objective(k);
  };

  // Dense scan first so a non-unimodal landscape cannot trap the
  // golden-section refinement in a local valley.
  constexpr std::size_t kScan = 181;
  double best_k = lo;
  double best_v = f(lo);
  for (auto k : math::linspace(lo, hi, kScan)) {
    const double v = f(k);
    if (v < best_v) {
      best_v = v;
      best_k = k;
    }
  }
  const double step = (hi - lo) / static_cast<double>(kScan - 1);
  const double a = std::max(lo, best_k - step);
  const double b = std::min(hi, best_k + step);
  const auto refined = math::golden_section_minimize(f, a, b, 1e-10);

  BreakpointSearchResult r;
  r.k_star = refined.x;
  r.objective = refined.value;
  r.max_decode_error = PiecewiseLinearArccos::with_breakpoint(refined.x).max_decode_error();
  r.evaluations = evals;
  return r;
}

std::vector<BreakpointSample> BreakpointOptimizer::sweep(double lo, double hi,
                                                         std::size_t n) const {
  std::vector<BreakpointSample> out;
  out.reserve(n);
  for (auto k : math::linspace(lo, hi, n)) {
    const auto approx = PiecewiseLinearArccos::with_breakpoint(k);
    out.push_back(BreakpointSample{k, approx.integrated_error(), approx.max_decode_error()});
  }
  return out;
}

}  // namespace pdac::core
