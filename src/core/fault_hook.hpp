// fault_hook.hpp — non-invasive runtime-fault overlay for P-DAC lane
// models (the device side of the src/faults subsystem).
//
// The A6 Monte-Carlo (variation.hpp) covers *static fabrication*
// variation; at runtime a lane can additionally break: a receive
// photodetector dies or degrades, the MRR modulator sticks at one
// transmission point, the shared laser droops.  Rather than forking the
// encode path per failure mode, every lane model consults one overlay
// struct that defaults to the identity — a healthy lane computes
// bit-identically to a hook-free lane (a property test pins this down).
//
// The hook deliberately models what *cannot* be repaired by gain
// trimming: dead PD bits produce no photocurrent for any TIA gain, and a
// stuck MRR ignores the drive entirely.  Drift-class faults (bias walk,
// TIA gain steps) are instead written into the bank weights through
// apply_correction(), exactly where a re-trim can calibrate them out.
#pragma once

#include <cstdint>
#include <optional>

namespace pdac::core {

/// Runtime fault state of one P-DAC modulator lane.
struct PdacFaultHook {
  /// Receive-PD bit positions producing no photocurrent (dead per-bit
  /// PDs): the corresponding TIA inputs see nothing whatever the code.
  std::uint32_t dead_pd_bits{0};
  /// Uniform responsivity derating of the per-bit receive PDs (1 = nominal).
  double pd_responsivity_scale{1.0};
  /// Stuck MRR modulator: the output field amplitude is pinned to this
  /// value regardless of the code driven.
  std::optional<double> stuck_output{};
  /// Laser power droop reaching this lane: scales the carrier amplitude.
  double carrier_scale{1.0};

  /// True when the overlay changes nothing (healthy lane).
  [[nodiscard]] bool is_identity() const {
    return dead_pd_bits == 0u && pd_responsivity_scale == 1.0 &&
           !stuck_output.has_value() && carrier_scale == 1.0;
  }
};

}  // namespace pdac::core
