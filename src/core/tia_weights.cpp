#include "core/tia_weights.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

TiaWeightBank compile_linear_piece(const LinearPiece& piece, Segment seg, int bits) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "compile_linear_piece: bits in [2, 16]");
  TiaWeightBank bank;
  bank.segment = seg;
  bank.bias = piece.intercept;
  const double denom = static_cast<double>((1 << (bits - 1)) - 1);
  bank.weights.resize(static_cast<std::size_t>(bits));
  for (int i = 0; i < bits; ++i) {
    double w = piece.slope * std::exp2(i) / denom;
    if (i == bits - 1) w = -w;  // two's-complement sign bit carries −2^{b−1}
    bank.weights[static_cast<std::size_t>(i)] = w;
  }
  return bank;
}

SegmentedTiaProgram::SegmentedTiaProgram(const PiecewiseLinearArccos& approx, int bits)
    : bits_(bits) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "SegmentedTiaProgram: bits in [2, 16]");
  max_code_ = static_cast<std::int32_t>((1 << (bits - 1)) - 1);
  // The comparator threshold is the quantized breakpoint.  Codes strictly
  // above it select the outer banks, mirroring f(r)'s open interval.
  k_code_ = static_cast<std::int32_t>(std::lround(approx.breakpoint() * max_code_));
  negative_ = compile_linear_piece(approx.piece(Segment::kNegativeOuter),
                                   Segment::kNegativeOuter, bits);
  middle_ = compile_linear_piece(approx.piece(Segment::kMiddle), Segment::kMiddle, bits);
  positive_ = compile_linear_piece(approx.piece(Segment::kPositiveOuter),
                                   Segment::kPositiveOuter, bits);
}

Segment SegmentedTiaProgram::select(std::int32_t code) const {
  if (code > k_code_) return Segment::kPositiveOuter;
  if (code < -k_code_) return Segment::kNegativeOuter;
  return Segment::kMiddle;
}

const TiaWeightBank& SegmentedTiaProgram::bank(Segment s) const {
  switch (s) {
    case Segment::kNegativeOuter: return negative_;
    case Segment::kPositiveOuter: return positive_;
    case Segment::kMiddle: break;
  }
  return middle_;
}

double SegmentedTiaProgram::drive_phase(std::int32_t code) const {
  PDAC_REQUIRE(code >= -max_code_ - 1 && code <= max_code_,
               "SegmentedTiaProgram: code out of range");
  const TiaWeightBank& b = bank(select(code));
  const auto pattern = static_cast<std::uint32_t>(code) & ((1u << bits_) - 1u);
  double v = b.bias;
  for (int i = 0; i < bits_; ++i) {
    if (((pattern >> i) & 1u) != 0u) v += b.weights[static_cast<std::size_t>(i)];
  }
  return v;
}

SignMagnitudeTiaProgram::SignMagnitudeTiaProgram(const PiecewiseLinearArccos& approx,
                                                 int bits)
    : bits_(bits) {
  PDAC_REQUIRE(bits >= 2 && bits <= 16, "SignMagnitudeTiaProgram: bits in [2, 16]");
  max_code_ = static_cast<std::int32_t>((1 << (bits - 1)) - 1);
  k_code_ = static_cast<std::int32_t>(std::lround(approx.breakpoint() * max_code_));

  // Positive-half pieces; the negative banks are their π-mirrors.
  const LinearPiece& mid = approx.piece(Segment::kMiddle);
  const LinearPiece& out = approx.piece(Segment::kPositiveOuter);
  const double denom = static_cast<double>(max_code_);
  for (int outer = 0; outer < 2; ++outer) {
    const LinearPiece& piece = outer ? out : mid;
    for (int negative = 0; negative < 2; ++negative) {
      Bank& b = banks_[outer][negative];
      const double sign = negative ? -1.0 : 1.0;  // f(−r) = π − f(r)
      b.bias = negative ? math::kPi - piece.intercept : piece.intercept;
      b.weights.resize(static_cast<std::size_t>(bits_ - 1));
      for (int i = 0; i < bits_ - 1; ++i) {
        b.weights[static_cast<std::size_t>(i)] = sign * piece.slope * std::exp2(i) / denom;
      }
    }
  }
}

double SignMagnitudeTiaProgram::drive_phase(std::int32_t code) const {
  PDAC_REQUIRE(code >= -max_code_ && code <= max_code_,
               "SignMagnitudeTiaProgram: code out of range");
  const bool negative = code < 0;
  const auto magnitude = static_cast<std::uint32_t>(negative ? -code : code);
  const bool outer = static_cast<std::int32_t>(magnitude) > k_code_;
  const Bank& b = banks_[outer ? 1 : 0][negative ? 1 : 0];
  double phase = b.bias;
  for (int i = 0; i < bits_ - 1; ++i) {
    if ((magnitude >> i) & 1u) phase += b.weights[static_cast<std::size_t>(i)];
  }
  return phase;
}

const SignMagnitudeTiaProgram::Bank& SignMagnitudeTiaProgram::bank(bool outer,
                                                                   bool negative) const {
  return banks_[outer ? 1 : 0][negative ? 1 : 0];
}

SignMagnitudeTiaProgram::Bank& SignMagnitudeTiaProgram::bank_mutable(bool outer,
                                                                     bool negative) {
  return banks_[outer ? 1 : 0][negative ? 1 : 0];
}

converters::OeInterfaceConfig SegmentedTiaProgram::oe_config(Segment s) const {
  const TiaWeightBank& b = bank(s);
  converters::OeInterfaceConfig cfg;
  cfg.weights = b.weights;
  cfg.bias = b.bias;
  return cfg;
}

}  // namespace pdac::core
