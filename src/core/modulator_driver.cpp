#include "core/modulator_driver.hpp"

#include <cmath>

#include "common/math_utils.hpp"
#include "common/require.hpp"

namespace pdac::core {

IdealDacDriver::IdealDacDriver(IdealDacDriverConfig cfg)
    : cfg_(cfg), quant_(cfg.bits), dac_([&cfg] {
        converters::ElectricalDacConfig d = cfg.dac;
        d.bits = cfg.bits;  // the DAC resolution tracks the operand width
        return d;
      }()),
      mzm_(cfg.mzm) {}

double IdealDacDriver::synthesized_phase(double r) const {
  const double rq = quant_.quantize(math::clamp_unit(r));
  const double phase = std::acos(rq);  // the controller's exact computation
  // The DAC synthesizes the arm voltage with b-bit resolution over the
  // phase range [0, π] (full-range drive).  Normalize, quantize, restore.
  const double normalized = phase / math::kPi * 2.0 - 1.0;  // [0,π] -> [-1,1]
  const double quantized = quant_.quantize(normalized);
  return (quantized + 1.0) * 0.5 * math::kPi;
}

double IdealDacDriver::encode(double r) const {
  const photonics::Complex out =
      mzm_.modulate_pushpull(photonics::Complex{1.0, 0.0}, synthesized_phase(r));
  return out.real();
}

units::Energy IdealDacDriver::conversion_energy() const {
  return dac_.energy_per_conversion() + cfg_.controller_energy;
}

PdacDriver::PdacDriver(PdacDriverConfig cfg) : cfg_(cfg), device_(cfg.pdac) {
  PDAC_REQUIRE(cfg_.clock.hertz() > 0.0, "PdacDriver: clock must be positive");
}

double PdacDriver::encode(double r) const { return device_.convert_value(math::clamp_unit(r)); }

units::Energy PdacDriver::conversion_energy() const { return device_.power() / cfg_.clock; }

BitTrueDacDriver::BitTrueDacDriver(IdealDacDriverConfig cfg)
    : cfg_(cfg), quant_(cfg.bits), dac_([&cfg] {
        converters::ElectricalDacConfig d = cfg.dac;
        d.bits = cfg.bits;
        return d;
      }()) {}

double BitTrueDacDriver::encode(double r) const {
  return quant_.quantize(math::clamp_unit(r));
}

units::Energy BitTrueDacDriver::conversion_energy() const {
  return dac_.energy_per_conversion() + cfg_.controller_energy;
}

std::unique_ptr<ModulatorDriver> make_ideal_dac_driver(int bits) {
  IdealDacDriverConfig cfg;
  cfg.bits = bits;
  return std::make_unique<IdealDacDriver>(cfg);
}

std::unique_ptr<ModulatorDriver> make_pdac_driver(int bits, double breakpoint) {
  PdacDriverConfig cfg;
  cfg.pdac.bits = bits;
  cfg.pdac.breakpoint = breakpoint;
  return std::make_unique<PdacDriver>(cfg);
}

std::unique_ptr<ModulatorDriver> make_bit_true_driver(int bits) {
  IdealDacDriverConfig cfg;
  cfg.bits = bits;
  return std::make_unique<BitTrueDacDriver>(cfg);
}

}  // namespace pdac::core
