// modulator_driver.hpp — the two ways of putting a value on a carrier.
//
// The photonic tensor core needs one modulator driver per operand lane.
// This interface abstracts over the paper's two designs so the GEMM
// engine, the examples and the accuracy ablations can swap them freely:
//
//   IdealDacDriver — baseline: a controller computes V′₁ = arccos(r)
//     exactly, an electrical b-bit DAC synthesizes the voltage (adding
//     voltage-quantization error), the MZM modulates.  Costs controller
//     energy + DAC energy per conversion.
//
//   PdacDriver — proposed: the P-DAC converts the optical digital word
//     with the 3-segment linear program (adding the ≤8.5 % approximation
//     error), no controller, no electrical DAC.
//
// Both quantize the operand to b bits first; both return E_out/E_in for a
// unit carrier, i.e. the analog value actually computed with.
#pragma once

#include <memory>
#include <string>

#include "common/units.hpp"
#include "converters/electrical_dac.hpp"
#include "core/pdac.hpp"
#include "photonics/mzm.hpp"

namespace pdac::core {

class ModulatorDriver {
 public:
  virtual ~ModulatorDriver() = default;

  /// Encode a normalized value r ∈ [−1, 1]: returns the field amplitude
  /// the modulator imprints on a unit carrier (sign via optical phase).
  [[nodiscard]] virtual double encode(double r) const = 0;

  [[nodiscard]] virtual int bits() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Energy charged to the conversion chain per encoded value (the part
  /// the P-DAC changes; detection/ADC energy is charged elsewhere).
  [[nodiscard]] virtual units::Energy conversion_energy() const = 0;
};

struct IdealDacDriverConfig {
  int bits{8};
  photonics::MzmConfig mzm{};
  converters::ElectricalDacConfig dac{};
  /// Controller energy for the arccos computation per conversion.
  units::Energy controller_energy{units::picojoules(0.384).joules()};
};

class IdealDacDriver final : public ModulatorDriver {
 public:
  explicit IdealDacDriver(IdealDacDriverConfig cfg);

  [[nodiscard]] double encode(double r) const override;
  [[nodiscard]] int bits() const override { return cfg_.bits; }
  [[nodiscard]] std::string name() const override { return "ideal-dac"; }
  [[nodiscard]] units::Energy conversion_energy() const override;

  /// The phase actually synthesized for r (after DAC voltage quantization).
  [[nodiscard]] double synthesized_phase(double r) const;

 private:
  IdealDacDriverConfig cfg_;
  converters::Quantizer quant_;
  converters::ElectricalDac dac_;
  photonics::Mzm mzm_;
};

struct PdacDriverConfig {
  PdacConfig pdac{};
  units::Frequency clock{units::gigahertz(5.0).hertz()};
};

class PdacDriver final : public ModulatorDriver {
 public:
  explicit PdacDriver(PdacDriverConfig cfg);

  [[nodiscard]] double encode(double r) const override;
  [[nodiscard]] int bits() const override { return cfg_.pdac.bits; }
  [[nodiscard]] std::string name() const override { return "p-dac"; }
  [[nodiscard]] units::Energy conversion_energy() const override;

  [[nodiscard]] const Pdac& device() const { return device_; }

 private:
  PdacDriverConfig cfg_;
  Pdac device_;
};

/// An idealized, perfectly-calibrated DAC→MZM chain whose measured
/// end-to-end transfer lands exactly on the quantizer grid:
/// encode(r) == Quantizer::quantize(r) bit for bit.  This is the b-bit
/// data path the paper's numeric analysis assumes — the operand IS its
/// code — and the precondition of the fused kernel's integer tier
/// (ptc::ExecutionPath::kKernelQuant, DESIGN.md §15): under this driver
/// the engine's encode LUT is {c / max_code}, so tiles can be carried as
/// int16 codes and reduced with exact integer dot products.  The ideal
/// DAC and P-DAC drivers keep their device nonlinearities and are
/// off-grid; the integer tier falls back to the double tiers for them.
/// Energy is charged like the ideal-DAC chain (controller + electrical
/// DAC): the driver idealizes the transfer, not the cost.
class BitTrueDacDriver final : public ModulatorDriver {
 public:
  explicit BitTrueDacDriver(IdealDacDriverConfig cfg);

  [[nodiscard]] double encode(double r) const override;
  [[nodiscard]] int bits() const override { return cfg_.bits; }
  [[nodiscard]] std::string name() const override { return "bit-true-dac"; }
  [[nodiscard]] units::Energy conversion_energy() const override;

 private:
  IdealDacDriverConfig cfg_;
  converters::Quantizer quant_;
  converters::ElectricalDac dac_;
};

/// Factory helpers used across examples/benches.
std::unique_ptr<ModulatorDriver> make_ideal_dac_driver(int bits);
std::unique_ptr<ModulatorDriver> make_pdac_driver(int bits, double breakpoint = 0.7236);
std::unique_ptr<ModulatorDriver> make_bit_true_driver(int bits);

}  // namespace pdac::core
