// arccos_approx.hpp — the approximation at the heart of the P-DAC
// (paper §III-C, Eq. 14–18, Fig. 8).
//
// To imprint an analog value r on a carrier the MZM must be driven with
// phase V′₁ = arccos(r).  A weighted-TIA bank can only realize *linear*
// functions of the digital code, so P-DAC replaces arccos with piecewise
// linear segments:
//
//   1-segment (first-order Taylor, Eq. 15):
//       f(r) = π/2 − r                  max decode error 15.9 % at r = ±1
//   3-segment (Eq. 18, breakpoint k):
//       f(r) = π/2 − r                  |r| ≤ k
//       f(r) = (k − π/2)/(k − 1)·(1−r)  k < r ≤ 1
//       f(r) = π − f(−r)                −1 ≤ r < −k   (arccos symmetry)
//   with k ≈ 0.7236 minimizing the integrated relative decode error
//   (Eq. 17); max decode error ≈ 8.5 % at r = ±k.
//
// "Decode error" is |cos(f(r)) − r| / |r|: the deviation of the value the
// optics actually produce from the value requested.
#pragma once

#include <string>

namespace pdac::core {

/// First-order Taylor approximation of arccos (paper Eq. 15).
double arccos_taylor1(double r);

/// Truncated Taylor series π/2 − Σ_{n} C(2n,n)/(4^n (2n+1)) r^{2n+1},
/// up to `terms` odd powers (terms=1 reproduces arccos_taylor1).  Used by
/// the segment-count ablation.
double arccos_taylor(double r, int terms);

/// Identifier of the active linear segment for a given r.
enum class Segment { kNegativeOuter, kMiddle, kPositiveOuter };

/// One linear piece f(r) = slope·r + intercept on [lo, hi].
struct LinearPiece {
  double lo{};
  double hi{};
  double slope{};
  double intercept{};

  [[nodiscard]] double eval(double r) const { return slope * r + intercept; }
};

/// The paper's 3-segment piecewise-linear arccos approximation.
class PiecewiseLinearArccos {
 public:
  /// Build the Eq. 18 function for an arbitrary breakpoint k ∈ (0, 1).
  static PiecewiseLinearArccos with_breakpoint(double k);
  /// The paper's published instance (k = 0.7236, slope −3.0651,
  /// intercept 0.07648 on the negative outer segment).
  static PiecewiseLinearArccos paper();

  /// f(r): the phase the P-DAC drives the MZM with.  r is clamped to
  /// [−1, 1] (codes can never leave that range).
  [[nodiscard]] double eval(double r) const;

  /// cos(f(r)): the analog value the optics actually produce.
  [[nodiscard]] double decoded(double r) const;

  /// |cos(f(r)) − r| / max(|r|, floor): paper's error metric.
  [[nodiscard]] double decode_error(double r, double floor = 1e-9) const;

  [[nodiscard]] Segment segment(double r) const;
  [[nodiscard]] double breakpoint() const { return k_; }

  /// The three pieces, ordered negative-outer, middle, positive-outer —
  /// exactly what gets programmed into the TIA weight banks.
  [[nodiscard]] const LinearPiece& piece(Segment s) const;

  /// Integrated relative decode error over [0, 1] (paper Eq. 17, the
  /// objective the breakpoint optimizer minimizes).
  [[nodiscard]] double integrated_error() const;

  /// Worst-case decode error over |r| ∈ [lo, 1]; paper reports 8.5 %.
  [[nodiscard]] double max_decode_error(double lo = 1e-3) const;

 private:
  explicit PiecewiseLinearArccos(double k);

  double k_;
  LinearPiece negative_;
  LinearPiece middle_;
  LinearPiece positive_;
};

std::string to_string(Segment s);

}  // namespace pdac::core
