// error_model.hpp — analytic and empirical error characterization of the
// P-DAC encoding (supports the paper's feasibility argument in §III-C
// and our accuracy ablations).
#pragma once

#include <cstddef>
#include <functional>

#include "common/stats.hpp"
#include "core/arccos_approx.hpp"
#include "core/modulator_driver.hpp"

namespace pdac::core {

/// Summary of an encode-error sweep over the operand domain.
struct EncodeErrorReport {
  stats::Running abs_error;     ///< |encode(r) − r|
  stats::Running rel_error;     ///< |encode(r) − r| / max(|r|, floor)
  double worst_abs{};
  double worst_rel{};
  double worst_rel_at{};        ///< the r achieving worst_rel
};

/// Sweep a driver over `n` evenly spaced operands in [−1, 1].  The
/// relative-error denominator is floored at `rel_floor` (5 % of full
/// scale by default) so half-LSB quantization noise near r = 0 does not
/// masquerade as huge relative error and hide the approximation's true
/// worst case at r = ±k.
EncodeErrorReport sweep_encode_error(const ModulatorDriver& driver, std::size_t n = 4001,
                                     double rel_floor = 5e-2);

/// Expected |cos(f(r)) − r| under an operand density `pdf` on [−1, 1]
/// (numerical integration).  LLM activations concentrate near zero,
/// where the middle Taylor segment is nearly exact — this quantifies the
/// paper's "inherent tolerance" argument.
double expected_abs_error(const PiecewiseLinearArccos& approx,
                          const std::function<double(double)>& pdf);

/// Convenience densities for the expected-error analysis.
double uniform_pdf(double r);
/// Truncated normal on [−1, 1] with the given std (mean 0).
std::function<double(double)> gaussian_pdf(double stddev);

}  // namespace pdac::core
